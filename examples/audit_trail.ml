(* Security audit trail (the paper's introduction): record access events on
   write-once storage, then hunt for suspicious patterns — a password-
   guessing burst and off-hours activity.

     dune exec examples/audit_trail.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)
let hour = 3_600_000_000L

let () =
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ~capacity:4096 ())) in
  let srv = ok (Clio.Server.create ~clock ~alloc_volume:alloc ()) in
  let audit = ok (History.Audit.create srv) in
  let rng = Sim.Rng.create 2024L in

  (* A normal working day... *)
  Sim.Clock.advance clock (Int64.mul 9L hour);
  for i = 0 to 199 do
    Sim.Clock.advance clock (Int64.of_int (60_000_000 + Sim.Rng.int rng 60_000_000));
    let user = Printf.sprintf "user%02d" (Sim.Rng.int rng 8) in
    ignore
      (ok
         (History.Audit.log_event audit
            {
              History.Audit.principal = user;
              action = (if i mod 3 = 0 then "open" else "login");
              target = (if i mod 3 = 0 then "/project/specs" else "console");
              outcome = History.Audit.Granted;
            }))
  done;

  (* ...someone hammering su at 3am... *)
  let start_of_next_day = Int64.mul 24L hour in
  Sim.Clock.advance clock (Int64.sub start_of_next_day (Int64.rem (Sim.Clock.peek clock) start_of_next_day));
  Sim.Clock.advance clock (Int64.mul 3L hour);
  for _ = 1 to 6 do
    Sim.Clock.advance clock 400_000L;
    ignore
      (ok
         (History.Audit.log_event audit
            {
              History.Audit.principal = "mallory";
              action = "su";
              target = "root";
              outcome = History.Audit.Denied;
            }))
  done;
  ignore (ok (Clio.Server.force srv));

  Printf.printf "principals on record: %s\n"
    (String.concat ", " (List.sort compare (History.Audit.principals audit)));

  (* Detector 1: repeated denials within a short window. *)
  let bursts =
    ok (History.Audit.denial_bursts audit ~principal:"mallory" ~window_us:5_000_000L ~threshold:5)
  in
  Printf.printf "\ndenial bursts for mallory (>=5 denials in 5s): %d\n" (List.length bursts);
  List.iter (fun t -> Printf.printf "  burst completing at t=%Ld\n" t) bursts;

  (* Detector 2: anything outside 08:00-18:00. *)
  let off =
    ok
      (History.Audit.off_hours_activity audit ~day_us:(Int64.mul 24L hour)
         ~work_start:(Int64.mul 8L hour) ~work_end:(Int64.mul 18L hour))
  in
  Printf.printf "\noff-hours events: %d\n" (List.length off);
  List.iter
    (fun r ->
      Printf.printf "  t=%Ld %s %s %s (%s)\n" r.History.Audit.timestamp
        r.History.Audit.event.History.Audit.principal r.History.Audit.event.History.Audit.action
        r.History.Audit.event.History.Audit.target
        (match r.History.Audit.event.History.Audit.outcome with
        | History.Audit.Granted -> "granted"
        | History.Audit.Denied -> "DENIED"))
    off;

  (* The trail itself is append-only — even the investigator cannot rewrite
     it, which is the point of putting it on WORM storage. *)
  print_endline "\nfull trail for mallory:";
  List.iter
    (fun r ->
      Printf.printf "  t=%Ld %s -> %s\n" r.History.Audit.timestamp
        r.History.Audit.event.History.Audit.action
        (match r.History.Audit.event.History.Audit.outcome with
        | History.Audit.Granted -> "granted"
        | History.Audit.Denied -> "DENIED"))
    (ok (History.Audit.events_for audit ~principal:"mallory"))
