(* Accessing the log service over the UIO RPC protocol — how every client
   reached Clio in the V-System. The transport charges the paper's IPC cost
   on a simulated clock, so the printed totals show what the 1987 numbers
   were made of.

     dune exec examples/remote_client.exe *)

let okr = function Ok v -> v | Error msg -> failwith ("rpc: " ^ msg)
let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let () =
  (* Server side: a log server on an in-memory WORM volume. *)
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ~capacity:4096 ())) in
  let srv = ok (Clio.Server.create ~clock ~nvram:(Worm.Nvram.create ()) ~alloc_volume:alloc ()) in
  let rpc = Uio.Rpc_server.create srv in

  (* Client side: only a transport handle — the paper's same-machine IPC
     costs 750 us per round trip. *)
  let transport = Uio.Transport.local ~latency_us:750L ~clock (Uio.Rpc_server.handle rpc) in
  let client = Uio.Client.connect transport in

  let log = okr (Uio.Client.ensure_log client "/sensors/temp") in
  Printf.printf "created /sensors/temp over the wire (log #%d)\n" log;

  let t0 = Sim.Clock.peek clock in
  for i = 0 to 19 do
    ignore (okr (Uio.Client.append client ~log (Printf.sprintf "reading %d: %d degrees" i (18 + (i mod 5)))))
  done;
  let elapsed_ms = Int64.to_float (Int64.sub (Sim.Clock.peek clock) t0) /. 1000.0 in
  Printf.printf "20 appends took %.1f ms of modeled time (%.2f ms each - IPC-dominated,\n"
    elapsed_ms (elapsed_ms /. 20.0);
  Printf.printf "matching the paper's 2.0-2.9 ms synchronous writes)\n\n";

  (* Reading through a remote cursor, newest first. *)
  let c = okr (Uio.Client.open_cursor client ~log Uio.Message.From_end) in
  print_endline "latest three readings:";
  for _ = 1 to 3 do
    match okr (Uio.Client.prev c) with
    | Some e -> Printf.printf "  [%Ld] %s\n" (Option.value e.Uio.Message.timestamp ~default:0L) e.Uio.Message.payload
    | None -> ()
  done;
  okr (Uio.Client.close_cursor c);

  Printf.printf "\ntransport: %d round trips, %d bytes sent, %d bytes received\n"
    (Uio.Transport.round_trips transport)
    (Uio.Transport.bytes_sent transport)
    (Uio.Transport.bytes_received transport)
