(* Accessing the log service over the UIO RPC protocol — how every client
   reached Clio in the V-System. The transport charges the paper's IPC cost
   on a simulated clock, so the printed totals show what the 1987 numbers
   were made of — and what wire protocol v2's batching buys back.

     dune exec examples/remote_client.exe *)

let okr = function Ok v -> v | Error e -> failwith ("rpc: " ^ Clio.Errors.to_string e)
let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let () =
  (* Server side: a log server on an in-memory WORM volume. *)
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ~capacity:4096 ())) in
  let srv = ok (Clio.Server.create ~clock ~nvram:(Worm.Nvram.create ()) ~alloc_volume:alloc ()) in
  let rpc = Uio.Rpc_server.create srv in

  (* Client side: only a transport handle — the paper's same-machine IPC
     costs 750 us per round trip. [connect] negotiates wire protocol v2. *)
  let transport = Uio.Transport.local ~latency_us:750L ~clock (Uio.Rpc_server.handle rpc) in
  let client = Uio.Client.connect transport in
  Printf.printf "negotiated wire protocol v%d\n" (Uio.Client.version client);

  let log = okr (Uio.Client.ensure_log client "/sensors/temp") in
  Printf.printf "created /sensors/temp over the wire (log #%d)\n\n" log;

  (* The V-era way: one synchronous append per round trip. *)
  let t0 = Sim.Clock.peek clock in
  for i = 0 to 19 do
    ignore
      (okr
         (Uio.Client.append client ~log
            (Printf.sprintf "reading %d: %d degrees" i (18 + (i mod 5)))))
  done;
  let elapsed_ms = Int64.to_float (Int64.sub (Sim.Clock.peek clock) t0) /. 1000.0 in
  Printf.printf "20 single appends took %.1f ms of modeled time (%.2f ms each -\n" elapsed_ms
    (elapsed_ms /. 20.0);
  Printf.printf "IPC-dominated, matching the paper's 2.0-2.9 ms synchronous writes)\n\n";

  (* The v2 way: the same 20 entries in one request, one force at batch
     end (group commit). *)
  let t0 = Sim.Clock.peek clock in
  let items =
    List.init 20 (fun i ->
        {
          Uio.Message.log;
          extra_members = [];
          data = Printf.sprintf "reading %d: %d degrees" (20 + i) (18 + (i mod 5));
        })
  in
  let stamps = okr (Uio.Client.append_batch ~force:true client items) in
  let elapsed_ms = Int64.to_float (Int64.sub (Sim.Clock.peek clock) t0) /. 1000.0 in
  Printf.printf "20 batched appends took %.1f ms of modeled time total (%d timestamps,\n"
    elapsed_ms (List.length stamps);
  Printf.printf "one round trip, one durability point)\n\n";

  (* Reading through a remote cursor, newest first — bracketed so it can
     never leak server-side, chunked so it costs one round trip. *)
  print_endline "latest three readings:";
  okr
    (Uio.Client.with_cursor client ~log Uio.Message.From_end (fun c ->
         let entries, _eof = okr (Uio.Client.prev_chunk ~max_entries:3 c) in
         List.iter
           (fun (e : Uio.Message.entry) ->
             Printf.printf "  [%Ld] %s\n"
               (Option.value e.Uio.Message.timestamp ~default:0L)
               e.Uio.Message.payload)
           entries;
         Ok ()));

  let c = Uio.Transport.counters transport in
  Printf.printf "\ntransport: %d round trips, %d bytes sent, %d bytes received\n"
    c.Uio.Transport.round_trips c.Uio.Transport.bytes_sent c.Uio.Transport.bytes_received
