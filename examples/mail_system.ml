(* The history-based mail system of section 4.2: mailboxes are log files,
   messages are never deleted, and the mail agent's own read pointers are a
   log too — so everything, including "which messages are unread", survives
   a crash by replay.

     dune exec examples/mail_system.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let () =
  let clock = Sim.Clock.simulated () in
  let devices = ref [] in
  let alloc ~vol_index:_ =
    let d = Worm.Mem_device.create ~capacity:4096 () in
    devices := !devices @ [ d ];
    Ok (Worm.Mem_device.io d)
  in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~clock ~nvram ~alloc_volume:alloc ()) in
  let mail = ok (History.Mail.create srv) in

  (* Deliveries. *)
  let t1 =
    ok
      (History.Mail.deliver mail ~mailbox:"smith" ~sender:"jones" ~subject:"lunch?"
         ~body:"noon at the usual place")
  in
  ignore
    (ok
       (History.Mail.deliver mail ~mailbox:"smith" ~sender:"cheriton" ~subject:"draft"
          ~body:"comments on the log service paper attached"));
  ignore
    (ok
       (History.Mail.deliver mail ~mailbox:"jones" ~sender:"smith" ~subject:"re: lunch?"
          ~body:"see you there"));

  let show_unread () =
    List.iter
      (fun mb ->
        let unread = ok (History.Mail.unread mail ~mailbox:mb) in
        Printf.printf "  %s: %d unread\n" mb (List.length unread);
        List.iter
          (fun m ->
            Printf.printf "    [%Ld] %s: %s\n" m.History.Mail.timestamp m.History.Mail.sender
              m.History.Mail.subject)
          unread)
      (List.sort compare (History.Mail.mailboxes mail))
  in
  print_endline "before reading:";
  show_unread ();

  (* smith reads the first message; the pointer move is itself logged. *)
  ok (History.Mail.mark_read mail ~mailbox:"smith" ~upto:t1);
  print_endline "\nafter smith reads the lunch invitation:";
  show_unread ();

  (* Crash the mail system (and the whole log server). Recovery = replay. *)
  ignore (ok (Clio.Server.force srv));
  let srv2 =
    ok
      (Clio.Server.recover ~clock ~nvram ~alloc_volume:alloc
         ~devices:(List.map Worm.Mem_device.io !devices) ())
  in
  let mail2 = ok (History.Mail.create srv2) in
  print_endline "\nafter crash + recovery (read pointers replayed from the log):";
  List.iter
    (fun mb ->
      Printf.printf "  %s: %d unread of %d total\n" mb
        (List.length (ok (History.Mail.unread mail2 ~mailbox:mb)))
        (List.length (ok (History.Mail.messages mail2 ~mailbox:mb))))
    (List.sort compare (History.Mail.mailboxes mail2));

  (* Nothing was ever deleted: the full history is a query away. *)
  print_endline "\nsmith's permanent mail history:";
  List.iter
    (fun m -> Printf.printf "  [%Ld] %s: %s\n" m.History.Mail.timestamp m.History.Mail.sender m.History.Mail.subject)
    (ok (History.Mail.messages mail2 ~mailbox:"smith"))
