(* Quickstart: create a log server on an in-memory write-once device, make a
   couple of log files, append, read forwards/backwards and by time.

     dune exec examples/quickstart.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let () =
  (* A log server needs a clock and a volume allocator; volumes are handed
     out on demand as previous ones fill (section 2.1's volume sequences).
     Here each volume is a 4096-block in-memory WORM device. *)
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ~capacity:4096 ())) in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~clock ~nvram ~alloc_volume:alloc ()) in

  (* Log files live in a directory-like hierarchy; a sublog's entries also
     belong to its ancestors. *)
  let mail = ok (Clio.Server.create_log srv "/mail") in
  let smith = ok (Clio.Server.create_log srv "/mail/smith") in
  let jones = ok (Clio.Server.create_log srv "/mail/jones") in

  (* Appends return the server timestamp, which uniquely identifies the
     entry forever. [force] gives transaction-commit durability. *)
  let t1 = ok (Clio.Server.append srv ~log:smith "first message for smith") in
  ignore (ok (Clio.Server.append srv ~log:jones "a message for jones"));
  ignore (ok (Clio.Server.append srv ~log:smith ~force:true "second message for smith"));
  Printf.printf "appended; first entry's timestamp = %Ld\n" (Option.get t1);

  (* Read one log file forward... *)
  print_endline "\nsmith's log:";
  ignore
    (ok
       (Clio.Server.fold_entries srv ~log:smith ~init:() (fun () e ->
            Printf.printf "  %Ld: %s\n" (Option.get e.Clio.Reader.timestamp) e.Clio.Reader.payload)));

  (* ...the parent log interleaves all children in arrival order... *)
  print_endline "\neverything under /mail:";
  ignore
    (ok
       (Clio.Server.fold_entries srv ~log:mail ~init:() (fun () e ->
            Printf.printf "  (%s) %s\n" (Clio.Server.path_of srv e.Clio.Reader.log)
              e.Clio.Reader.payload)));

  (* ...and cursors run backwards too ("prior to any previous point in
     time", section 2). *)
  print_endline "\nnewest first:";
  let c = ok (Clio.Server.cursor_end srv ~log:mail) in
  let rec back () =
    match ok (Clio.Server.prev c) with
    | Some e ->
      Printf.printf "  %s\n" e.Clio.Reader.payload;
      back ()
    | None -> ()
  in
  back ();

  (* Time search: first entry at or after a timestamp. *)
  let e = Option.get (ok (Clio.Server.entry_at_or_after srv ~log:smith (Option.get t1))) in
  Printf.printf "\ntime search at %Ld finds: %s\n" (Option.get t1) e.Clio.Reader.payload;

  Printf.printf "\nserver stats:\n%s\n"
    (Format.asprintf "%a" Clio.Stats.pp (Clio.Server.stats srv))
