(* The history-based file service of section 4.1: every update is logged,
   the "current" file system is just a cache, and any past version of any
   file — even a deleted one — remains readable.

     dune exec examples/file_history.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let () =
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ~capacity:8192 ())) in
  let srv = ok (Clio.Server.create ~clock ~alloc_volume:alloc ()) in
  let fs = ok (History.File_history.create srv ~root:"/fs") in

  (* A file evolves... *)
  ok (History.File_history.write_file fs ~name:"paper.tex" "\\title{Log Files}");
  Sim.Clock.advance clock 1_000_000L;
  ok (History.File_history.write_file fs ~name:"paper.tex" "\\title{Log Files}\n\\section{Intro}");
  Sim.Clock.advance clock 1_000_000L;
  ok
    (History.File_history.write_file fs ~name:"paper.tex"
       "\\title{Log Files}\n\\section{Intro}\n\\section{Design}");
  ok (History.File_history.write_file fs ~name:"notes.txt" "remember: N=16");
  ok (History.File_history.set_mode fs ~name:"paper.tex" 0o644);

  Printf.printf "files: %s\n" (String.concat ", " (History.File_history.list_files fs));
  Printf.printf "current paper.tex (%d bytes):\n%s\n\n"
    (ok (History.File_history.stat fs ~name:"paper.tex")).History.File_history.size
    (ok (History.File_history.read_file fs ~name:"paper.tex"));

  (* Every version is still there. *)
  let versions = ok (History.File_history.versions fs ~name:"paper.tex") in
  Printf.printf "paper.tex has %d versions:\n" (List.length versions);
  List.iteri
    (fun i t ->
      let v = Option.get (ok (History.File_history.read_file_at fs ~name:"paper.tex" ~time:t)) in
      Printf.printf "  v%d at t=%Ld: %d bytes\n" (i + 1) t (String.length v))
    versions;

  (* Time travel: the file as it was after the first save. *)
  let t1 = List.hd versions in
  Printf.printf "\npaper.tex as of t=%Ld:\n%s\n" t1
    (Option.get (ok (History.File_history.read_file_at fs ~name:"paper.tex" ~time:t1)));

  (* Deletion hides the file from the namespace but erases nothing. *)
  Sim.Clock.advance clock 1_000_000L;
  ok (History.File_history.remove fs ~name:"notes.txt");
  Printf.printf "\nafter rm notes.txt -> files: %s\n"
    (String.concat ", " (History.File_history.list_files fs));
  let t_before_rm = List.hd (ok (History.File_history.versions fs ~name:"notes.txt")) in
  Printf.printf "but its last version is still readable: %S\n"
    (Option.get (ok (History.File_history.read_file_at fs ~name:"notes.txt" ~time:t_before_rm)));

  (* "The current state is merely a cached summary of the history": throw
     the cache away and replay. *)
  ok (History.File_history.refresh fs);
  Printf.printf "\nafter cache rebuild, current paper.tex is intact (%d bytes)\n"
    (String.length (ok (History.File_history.read_file fs ~name:"paper.tex")))
