(* Fault-tolerance walkthrough (section 2.3): crash recovery with and
   without the battery-backed RAM tail, bad media, and corruption of
   previously written blocks.

     dune exec examples/recovery_demo.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)

let count srv log = ok (Clio.Server.fold_entries srv ~log ~init:0 (fun n _ -> n + 1))

let () =
  (* --- Part 1: crash recovery and the NVRAM tail (section 2.3.1) --- *)
  print_endline "== crash recovery ==";
  let clock = Sim.Clock.simulated () in
  let devices = ref [] in
  let alloc ~vol_index:_ =
    let d = Worm.Mem_device.create ~block_size:512 ~capacity:2048 () in
    devices := !devices @ [ d ];
    Ok (Worm.Mem_device.io d)
  in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~clock ~nvram ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/txn") in
  for i = 1 to 10 do
    (* Forced appends model transaction commits; with the NVRAM tail they
       cost no WORM block (no internal fragmentation). *)
    ignore (ok (Clio.Server.append srv ~log ~force:true (Printf.sprintf "commit %d" i)))
  done;
  ignore (ok (Clio.Server.append srv ~log "uncommitted scribble"));
  Printf.printf "before crash: %d entries (1 unforced)\n" (count srv log);

  (* The crash: all volatile state gone; devices and NVRAM survive. *)
  let srv =
    ok
      (Clio.Server.recover ~clock ~nvram ~alloc_volume:alloc
         ~devices:(List.map Worm.Mem_device.io !devices) ())
  in
  let log = ok (Clio.Server.resolve srv "/txn") in
  Printf.printf "after recovery: %d entries (all 10 commits; the scribble died with RAM)\n"
    (count srv log);
  Printf.printf "recovery examined %d blocks to rebuild entrymap info (Figure 4's cost)\n\n"
    (Clio.Server.stats srv).Clio.Stats.recovery_blocks_examined;

  (* --- Part 2: bad media (section 2.3.2) --- *)
  print_endline "== bad blocks on the medium ==";
  let base = Worm.Mem_device.create ~block_size:512 ~capacity:2048 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  Worm.Faulty_device.mark_bad faulty 5;
  Worm.Faulty_device.mark_bad faulty 6;
  let clock2 = Sim.Clock.simulated () in
  let alloc2 ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let config = { Clio.Config.default with block_size = 512 } in
  let srv2 = ok (Clio.Server.create ~config ~clock:clock2 ~alloc_volume:alloc2 ()) in
  let log2 = ok (Clio.Server.create_log srv2 "/data") in
  for i = 1 to 50 do
    ignore (ok (Clio.Server.append srv2 ~log:log2 (Printf.sprintf "record %02d with padding" i)))
  done;
  ignore (ok (Clio.Server.force srv2));
  Printf.printf "wrote 50 entries over 2 bad blocks; readable: %d, bad blocks hit: %d\n"
    (count srv2 log2)
    (Clio.Server.stats srv2).Clio.Stats.bad_blocks;
  let bb = count srv2 Clio.Ids.badblocks in
  Printf.printf "their locations are in the bad-block log (%d record(s))\n\n" bb;

  (* --- Part 3: corruption of written data --- *)
  print_endline "== corruption of a written block ==";
  let dev3 = Worm.Mem_device.create ~block_size:512 ~capacity:2048 () in
  let clock3 = Sim.Clock.simulated () in
  let alloc3 ~vol_index:_ = Ok (Worm.Mem_device.io dev3) in
  let srv3 = ok (Clio.Server.create ~config ~clock:clock3 ~alloc_volume:alloc3 ()) in
  let log3 = ok (Clio.Server.create_log srv3 "/data") in
  for i = 1 to 50 do
    ignore (ok (Clio.Server.append srv3 ~log:log3 (Printf.sprintf "record %02d with padding" i)))
  done;
  ignore (ok (Clio.Server.force srv3));
  (* A hardware fault rewrites block 3 with garbage. Drop the block cache so
     the server actually sees the medium. *)
  Worm.Mem_device.raw_poke dev3 3 (Bytes.make 512 '\xA5');
  Array.iter
    (fun v -> Blockcache.Cache.drop v.Clio.Vol.cache)
    (Clio.Server.state srv3).Clio.State.vols;
  Printf.printf "after corrupting block 3: %d of 50 entries readable\n" (count srv3 log3);
  Printf.printf "(the checksum catches the garbage; 'corrupted blocks should not render\n";
  Printf.printf " the remainder of the volume unusable')\n";
  (* The operator scrubs the block: burned to all-1s, scans skip it cleanly. *)
  ok (Clio.Server.scrub_block srv3 ~vol:0 ~block:3);
  Printf.printf "after scrubbing: still %d entries readable, block 3 now cleanly invalid\n"
    (count srv3 log3)
