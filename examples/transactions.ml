(* Atomic update using log files for recovery — the extension the paper's
   conclusion announces. A bank whose only durable state is a redo log:
   transfers are all-or-nothing, commits are forced writes, and recovery is
   replay.

     dune exec examples/transactions.exe *)

let ok = function Ok v -> v | Error e -> failwith (Clio.Errors.to_string e)
let balance store k = int_of_string (Option.get (History.Atomic.get store k))

let () =
  let clock = Sim.Clock.simulated () in
  let devices = ref [] in
  let alloc ~vol_index:_ =
    let d = Worm.Mem_device.create ~capacity:4096 () in
    devices := !devices @ [ d ];
    Ok (Worm.Mem_device.io d)
  in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~clock ~nvram ~alloc_volume:alloc ()) in
  let bank = ok (History.Atomic.create srv ~path:"/bank") in

  (* Seed the accounts in one transaction. *)
  let t = History.Atomic.begin_txn bank in
  History.Atomic.put t ~key:"alice" "1000";
  History.Atomic.put t ~key:"bob" "1000";
  ignore (ok (History.Atomic.commit t));
  Printf.printf "opened accounts: alice=%d bob=%d\n" (balance bank "alice") (balance bank "bob");

  (* A transfer is one transaction: debit + credit commit together or not
     at all. The commit is a single forced log entry. *)
  let transfer from_ to_ amount =
    let t = History.Atomic.begin_txn bank in
    let f = int_of_string (Option.get (History.Atomic.find t from_)) in
    let g = int_of_string (Option.get (History.Atomic.find t to_)) in
    if f < amount then begin
      History.Atomic.abort t;
      Printf.printf "  transfer %s->%s %d REFUSED (insufficient funds)\n" from_ to_ amount
    end
    else begin
      History.Atomic.put t ~key:from_ (string_of_int (f - amount));
      History.Atomic.put t ~key:to_ (string_of_int (g + amount));
      let ts = ok (History.Atomic.commit t) in
      Printf.printf "  transfer %s->%s %d committed at t=%Ld\n" from_ to_ amount (Option.get ts)
    end
  in
  transfer "alice" "bob" 250;
  transfer "bob" "alice" 100;
  transfer "alice" "bob" 5000;
  Printf.printf "balances: alice=%d bob=%d (sum %d)\n" (balance bank "alice") (balance bank "bob")
    (balance bank "alice" + balance bank "bob");

  (* Leave a transaction in flight... and crash. *)
  let in_flight = History.Atomic.begin_txn bank in
  History.Atomic.put in_flight ~key:"alice" "0";
  History.Atomic.put in_flight ~key:"bob" "0";
  print_endline "\nan embezzlement transaction is in flight (uncommitted) ... CRASH";

  let srv2 =
    ok
      (Clio.Server.recover ~clock ~nvram ~alloc_volume:alloc
         ~devices:(List.map Worm.Mem_device.io !devices) ())
  in
  let bank2 = ok (History.Atomic.create srv2 ~path:"/bank") in
  Printf.printf "recovered by replaying %d committed transactions: alice=%d bob=%d (sum %d)\n"
    (History.Atomic.replayed bank2) (balance bank2 "alice") (balance bank2 "bob")
    (balance bank2 "alice" + balance bank2 "bob");

  (* The redo log doubles as a complete, timestamped audit of every
     committed transfer — free, because it is the storage. *)
  let log = ok (Clio.Server.resolve srv2 "/bank") in
  let n = ok (Clio.Server.fold_entries srv2 ~log ~init:0 (fun n _ -> n + 1)) in
  Printf.printf "the redo log holds %d committed transactions as audit history\n" n
