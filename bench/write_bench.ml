(* Section 3.2: the cost of (synchronously) writing a log entry. The paper
   measured 2.0 ms for a null entry and 2.9 ms for 50 bytes on a Sun-3, of
   which 0.5-1 ms was IPC, ~400 us timestamp generation, and ~70 us
   entrymap upkeep. We benchmark the same operations with Bechamel. *)

open Bechamel

let make_server () =
  let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:65536 ~cache_blocks:1024 () in
  let log = Util.ok (Clio.Server.ensure_log f.Util.srv "/bench") in
  (f, log)

let tests () =
  let f_null, log_null = make_server () in
  let f_50, log_50 = make_server () in
  let f_force, log_force = make_server () in
  let f_pure =
    Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:1_000_000 ~cache_blocks:64
      ~nvram_tail:false ()
  in
  let log_pure = Util.ok (Clio.Server.ensure_log f_pure.Util.srv "/bench") in
  let payload50 = String.make 50 'p' in
  ( f_force.Util.srv,
    Test.make_grouped ~name:"write"
    [
      Test.make ~name:"null entry (async)"
        (Staged.stage (fun () -> Util.ok (Clio.Server.append f_null.Util.srv ~log:log_null "")));
      Test.make ~name:"50-byte entry (async)"
        (Staged.stage (fun () -> Util.ok (Clio.Server.append f_50.Util.srv ~log:log_50 payload50)));
      Test.make ~name:"50-byte entry (forced, NVRAM tail)"
        (Staged.stage (fun () ->
             Util.ok (Clio.Server.append ~force:true f_force.Util.srv ~log:log_force payload50)));
      Test.make ~name:"50-byte entry (forced, pure WORM)"
        (Staged.stage (fun () ->
             Util.ok (Clio.Server.append ~force:true f_pure.Util.srv ~log:log_pure payload50)));
      Test.make ~name:"timestamp generation"
        (Staged.stage
           (let st = Clio.Server.state f_null.Util.srv in
            fun () -> ignore (Clio.State.fresh_ts st)));
    ] )

let entrymap_upkeep_cost () =
  (* The paper isolates entrymap upkeep at ~70 us/entry. Ours is the
     per-flushed-block [Pending.note_block] (bitmap updates at every level)
     plus the amortized encode of one entrymap entry every N blocks,
     divided by the ~15 entries a 1 KB block holds. *)
  let pending = Clio.Entrymap.Pending.create ~fanout:16 ~levels:5 in
  let results =
    Util.run_bechamel
      (Bechamel.Test.make ~name:"note_block (per flushed block)"
         (Bechamel.Staged.stage
            (let i = ref 0 in
             fun () ->
               incr i;
               Clio.Entrymap.Pending.note_block pending ~block:(!i mod 100_000) [ 4; 5 ])))
  in
  let note_ns = match results with (_, ns) :: _ -> ns | [] -> nan in
  let entries_per_block = 15.0 in
  Printf.printf "\n  entrymap upkeep: %s per flushed block => ~%s per entry (amortized)\n"
    (Util.ns_to_string note_ns)
    (Util.ns_to_string (note_ns /. entries_per_block));
  print_endline "  (paper: ~70 us per entry on a Sun-3, 'generally negligible')"

(* Put the paper's cost structure back together: run the same appends
   through the UIO RPC layer with the V-System's measured IPC latency
   charged on the simulated clock, and add the paper's 400 us Sun-3
   timestamp cost. The total should land on the paper's 2.0/2.9 ms. *)
let modeled_ipc_writes () =
  Util.subsection "modeled V-System totals: our server + the paper's IPC and timestamp costs";
  let run ~payload ~ipc_us =
    let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:65536 ~cache_blocks:1024 () in
    let rpc = Uio.Rpc_server.create f.Util.srv in
    let transport =
      Uio.Transport.local ~latency_us:ipc_us ~clock:f.Util.clock (Uio.Rpc_server.handle rpc)
    in
    let client = Uio.Client.connect transport in
    let log = Util.ok (Uio.Client.create_log client "/w") in
    let n = if Util.quick () then 200 else 2000 in
    let sim0 = Sim.Clock.peek f.Util.clock in
    let wall0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Util.ok (Uio.Client.append client ~log payload))
    done;
    let wall_us = (Unix.gettimeofday () -. wall0) *. 1e6 /. float_of_int n in
    let sim_us =
      Int64.to_float (Int64.sub (Sim.Clock.peek f.Util.clock) sim0) /. float_of_int n
    in
    (* modeled total = charged IPC (in sim_us) + paper's timestamp cost +
       our real server-side work *)
    sim_us +. 400.0 +. wall_us
  in
  let columns = [ "operation"; "modeled total"; "paper (Sun-3)" ] in
  Util.table ~columns
    [
      [ "null entry, local IPC (750 us)";
        Printf.sprintf "%.2f ms" (run ~payload:"" ~ipc_us:750L /. 1000.0);
        "2.0 ms" ];
      [ "50-byte entry, local IPC (750 us)";
        Printf.sprintf "%.2f ms" (run ~payload:(String.make 50 'p') ~ipc_us:750L /. 1000.0);
        "2.9 ms" ];
      [ "50-byte entry, remote IPC (2750 us)";
        Printf.sprintf "%.2f ms" (run ~payload:(String.make 50 'p') ~ipc_us:2750L /. 1000.0);
        "(IPC 2.5-3 ms)" ];
    ];
  print_endline
    "  (modeled total = paper's IPC latency + paper's 400 us timestamping + our\n\
    \   measured server-side work; the Sun-3 numbers were IPC-dominated and so are\n\
    \   these reconstructions)"

let run () =
  Util.section "SECTION 3.2 - log writing latency";
  let srv, test = tests () in
  let results = Util.run_bechamel test in
  let columns = [ "operation"; "time/entry"; "paper (Sun-3)" ] in
  let paper = function
    | "write/null entry (async)" -> "2.0 ms (sync incl. IPC)"
    | "write/50-byte entry (async)" -> "2.9 ms (sync incl. IPC)"
    | "write/timestamp generation" -> "~400 us"
    | "write/50-byte entry (forced, NVRAM tail)" -> "n/a (proposed design)"
    | "write/50-byte entry (forced, pure WORM)" -> "n/a"
    | _ -> ""
  in
  Util.table ~columns
    (List.map (fun (name, ns) -> [ name; Util.ns_to_string ns; paper name ]) results);
  Util.emit_bench_json ~name:"write"
    ~rows:
      (List.map
         (fun (name, ns) ->
           Obs.Json.Obj [ ("operation", Obs.Json.Str name); ("ns_per_entry", Obs.Json.Float ns) ])
         results)
    srv;
  entrymap_upkeep_cost ();
  print_endline
    "  (the paper's numbers include a 0.5-1 ms V-System IPC round trip; ours are\n\
    \   in-process calls - compare orders of magnitude relative to the IPC floor)";
  modeled_ipc_writes ()
