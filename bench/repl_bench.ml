(* Replication: what the lag costs and what batching buys back. The
   shipped unit is the verbatim device block, so replication traffic is
   pure block streaming and its cost is round-trip bound — exactly the
   IPC-floor story of the paper's section 3, replayed over [Repl_blocks].

   Two phases:
     lag      - a replica synced after every burst; rows sweep the batch
                size at the paper's two IPC latencies and report the worst
                observed lag plus the round trips and modeled time spent
                keeping up.
     catchup  - the replica is offline for the whole write phase, then one
                drain ships the entire backlog; throughput is the settled
                backlog over the modeled wall time.

   Every row re-verifies the invariants CI enforces: the replica's volumes
   byte-identical to the primary's ([diverged] = false) and no block ever
   shipped twice below a received ack ([reshipped] = 0). *)

type row = {
  phase : string;
  batch_blocks : int;
  ipc_us : int64;
  blocks : int;  (** settled blocks shipped to the replica *)
  round_trips : int;
  modeled_ms : float;
  max_lag : int;
  reshipped : int;
  diverged : bool;
}

let capacity = 65536

let mk_replica config =
  Repl.Replica.create ~config ~nvram:(Worm.Nvram.create ())
    ~clock:(Sim.Clock.simulated ())
    ~alloc:(fun ~vol_index:_ ->
      Ok
        (Worm.Mem_device.io
           (Worm.Mem_device.create ~block_size:config.Clio.Config.block_size ~capacity ())))
    ~primary_hint:"bench-primary" ()

let io_image (io : Worm.Block_io.t) =
  let frontier = match io.Worm.Block_io.frontier () with Some x -> x | None -> 0 in
  List.init frontier (fun i ->
      match io.Worm.Block_io.read i with Ok b -> Bytes.to_string b | Error _ -> "<err>")

let check_diverged devices r =
  let prim = List.map Worm.Mem_device.io !devices in
  if List.length prim <> Repl.Replica.nvols r then true
  else
    List.exists
      (fun (i, pio) ->
        match Repl.Replica.device r i with
        | None -> true
        | Some rio -> io_image pio <> io_image rio)
      (List.mapi (fun i pio -> (i, pio)) prim)

let settled_blocks srv =
  let st = Clio.Server.state srv in
  Array.fold_left (fun acc v -> acc + Clio.Vol.device_frontier v) 0 st.Clio.State.vols

let payload i = Printf.sprintf "entry %06d: fifty bytes of log data, padded out...." i

let drain sh srv =
  let rec go k =
    Repl.Shipper.sync sh;
    if Clio.Server.repl_lag_blocks srv > 0 && k < 100 then go (k + 1)
  in
  go 0

(* [bursts] bursts of [per_burst] entries; sync after each burst when
   [sync_each], else only one drain at the end (the catch-up phase). *)
let run_one ~phase ~batch_blocks ~ipc_us ~bursts ~per_burst ~sync_each =
  let config =
    { Clio.Config.default with block_size = 256; repl_batch_blocks = batch_blocks }
  in
  let clock = Sim.Clock.simulated () in
  let devices = ref [] in
  let alloc ~vol_index:_ =
    let d = Worm.Mem_device.create ~block_size:256 ~capacity () in
    devices := !devices @ [ d ];
    Ok (Worm.Mem_device.io d)
  in
  let srv =
    Util.ok (Clio.Server.create ~config ~clock ~nvram:(Worm.Nvram.create ()) ~alloc_volume:alloc ())
  in
  let log = Util.ok (Clio.Server.create_log srv "/bench") in
  let r = mk_replica config in
  let transport = Uio.Transport.local ~latency_us:ipc_us ~clock (Repl.Replica.handler r) in
  let sh = Repl.Shipper.create srv [ ("replica", transport) ] in
  let before = Uio.Transport.counters transport in
  let sim0 = Sim.Clock.peek clock in
  let max_lag = ref 0 in
  let n = ref 0 in
  for _ = 1 to bursts do
    for _ = 1 to per_burst do
      incr n;
      ignore (Util.ok (Clio.Server.append srv ~log (payload !n)))
    done;
    ignore (Util.ok (Clio.Server.force srv));
    let lag = settled_blocks srv - Repl.Replica.blocks_applied r in
    if lag > !max_lag then max_lag := lag;
    if sync_each then drain sh srv
  done;
  drain sh srv;
  let after = Uio.Transport.counters transport in
  let d = Uio.Transport.diff ~after ~before in
  ( srv,
    {
      phase;
      batch_blocks;
      ipc_us;
      blocks = settled_blocks srv;
      round_trips = d.Uio.Transport.round_trips;
      modeled_ms = Int64.to_float (Int64.sub (Sim.Clock.peek clock) sim0) /. 1000.0;
      max_lag = !max_lag;
      reshipped = Repl.Shipper.reshipped sh;
      diverged = check_diverged devices r;
    } )

let run () =
  Util.section "REPLICATION - lag vs batch size, catch-up throughput";
  let quick = Util.quick () in
  let bursts = if quick then 6 else 20 in
  let per_burst = if quick then 50 else 200 in
  let batches = if quick then [ 8; 32 ] else [ 1; 8; 32; 128 ] in
  let ipcs = [ 1000L; 3000L ] in
  let lag_runs =
    List.concat_map
      (fun batch_blocks ->
        List.map
          (fun ipc_us ->
            run_one ~phase:"lag" ~batch_blocks ~ipc_us ~bursts ~per_burst ~sync_each:true)
          ipcs)
      batches
  in
  let catchup_runs =
    List.map
      (fun ipc_us ->
        run_one ~phase:"catchup" ~batch_blocks:32 ~ipc_us ~bursts ~per_burst ~sync_each:false)
      ipcs
  in
  let runs = lag_runs @ catchup_runs in
  let rows = List.map snd runs in
  let catchup_rows = List.map snd catchup_runs in
  let columns =
    [ "phase"; "batch"; "IPC"; "blocks"; "round trips"; "modeled"; "max lag"; "reshipped"; "ok" ]
  in
  Util.table ~columns
    (List.map
       (fun r ->
         [
           r.phase;
           string_of_int r.batch_blocks;
           Printf.sprintf "%.1f ms" (Int64.to_float r.ipc_us /. 1000.0);
           string_of_int r.blocks;
           string_of_int r.round_trips;
           Printf.sprintf "%.1f ms" r.modeled_ms;
           string_of_int r.max_lag;
           string_of_int r.reshipped;
           (if r.diverged then "DIVERGED" else "byte-identical");
         ])
       rows);
  List.iter
    (fun r ->
      if r.diverged then failwith "replication bench: replica diverged from primary";
      if r.reshipped <> 0 then failwith "replication bench: acked blocks were re-shipped")
    rows;
  (match catchup_rows with
  | r :: _ when r.modeled_ms > 0.0 ->
    Printf.printf "  catch-up throughput at %.1f ms IPC: %.0f blocks/s (modeled)\n"
      (Int64.to_float r.ipc_us /. 1000.0)
      (float_of_int r.blocks /. (r.modeled_ms /. 1000.0))
  | _ -> ());
  (* JSON export for CI: one row object per table row; the validator
     asserts no row diverged and reshipped stays 0. The embedded metrics
     come from the last lag run's primary, whose "repl" section carries the
     ship/lag counters. *)
  let metrics_srv = fst (List.nth runs (List.length lag_runs - 1)) in
  let json_rows =
    List.map
      (fun r ->
        Obs.Json.Obj
          [
            ("phase", Obs.Json.Str r.phase);
            ("batch_blocks", Obs.Json.Int r.batch_blocks);
            ("ipc_us", Obs.Json.Int (Int64.to_int r.ipc_us));
            ("blocks", Obs.Json.Int r.blocks);
            ("round_trips", Obs.Json.Int r.round_trips);
            ("modeled_ms", Obs.Json.Float r.modeled_ms);
            ("max_lag", Obs.Json.Int r.max_lag);
            ("reshipped", Obs.Json.Int r.reshipped);
            ("diverged", Obs.Json.Bool r.diverged);
          ])
      rows
  in
  Util.emit_bench_json ~name:"repl" ~rows:json_rows metrics_srv
