(* Table 1: measured cost of a log entry read, for different search
   distances, given complete caching. N = 16, distances N^0..N^4 measured on
   a real volume (N^5 would need a gigabyte-class volume: reported
   analytically), all blocks cache-resident as in the paper. *)

let paper_rows =
  (* search distance, #entrymap entries, #blocks read, time(ms) from the
     paper's Table 1 (Sun-3, 1 KB blocks, N=16). *)
  [
    ("0", 0, 1, 1.46);
    ("N", 1, 3, 2.71);
    ("N^2", 3, 5, 3.82);
    ("N^3", 5, 7, 5.06);
    ("N^4", 7, 9, 6.51);
    ("N^5", 9, 11, 8.10);
  ]

let run () =
  Util.section "TABLE 1 - cost of a log entry read vs search distance (complete caching)";
  let fanout = 16 in
  let distances =
    if Util.quick () then [ 16; 256; 4096 ] else [ 16; 256; 4096; 65536 ]
  in
  let p = Util.build_planted ~fanout ~block_size:256 ~distances () in
  (* Complete caching: everything was cached on the way in (the cache is
     sized to the volume); confirm with a warm-up pass. *)
  List.iter (fun (_, _, log) -> ignore (Util.measure_locate p log)) p.Util.targets;
  let columns =
    [
      "distance";
      "entrymap read";
      "2k-1 model";
      "paper";
      "blocks read";
      "paper";
      "time";
      "paper (Sun-3)";
    ]
  in
  let measured =
    List.mapi
      (fun i (d_req, d_act, log) ->
        let examined, blocks, wall_us = Util.measure_locate p log in
        ignore d_req;
        (i, d_act, examined, blocks, wall_us))
      p.Util.targets
  in
  let rows =
    List.map
      (fun (i, d_act, examined, blocks, wall_us) ->
        let label, p_em, p_blk, p_ms = List.nth paper_rows (i + 1) in
        [
          Printf.sprintf "%s (%d)" label d_act;
          string_of_int examined;
          string_of_int (Clio.Analysis.locate_examinations ~fanout ~distance:d_act);
          string_of_int p_em;
          string_of_int blocks;
          string_of_int p_blk;
          Printf.sprintf "%.1f us" wall_us;
          Printf.sprintf "%.2f ms" p_ms;
        ])
      measured
  in
  (* Distance-0 row: re-read the block the cursor already points at. *)
  let zero_row =
    let _, _, log = List.hd p.Util.targets in
    ignore log;
    let s0 = Clio.Stats.snapshot (Clio.Server.stats p.Util.f.Util.srv) in
    let t0 = Unix.gettimeofday () in
    let _ = Util.ok (Clio.Server.last_entry p.Util.f.Util.srv ~log:(Util.ok (Clio.Server.resolve p.Util.f.Util.srv "/noise"))) in
    let wall = (Unix.gettimeofday () -. t0) *. 1e6 in
    let d = Clio.Stats.diff ~after:(Clio.Server.stats p.Util.f.Util.srv) ~before:s0 in
    [
      "0";
      string_of_int d.Clio.Stats.entrymap_records_examined;
      "0";
      "0";
      string_of_int d.Clio.Stats.locate_block_reads;
      "1";
      Printf.sprintf "%.1f us" wall;
      "1.46 ms";
    ]
  in
  Util.table ~columns (zero_row :: rows);
  Util.emit_bench_json ~name:"table1"
    ~rows:
      (List.map
         (fun (i, d_act, examined, blocks, wall_us) ->
           let label, _, _, _ = List.nth paper_rows (i + 1) in
           Obs.Json.Obj
             [
               ("distance_label", Obs.Json.Str label);
               ("distance_blocks", Obs.Json.Int d_act);
               ("entrymap_records_examined", Obs.Json.Int examined);
               ( "model_2k_minus_1",
                 Obs.Json.Int (Clio.Analysis.locate_examinations ~fanout ~distance:d_act) );
               ("blocks_read", Obs.Json.Int blocks);
               ("wall_us", Obs.Json.Float wall_us);
             ])
         measured)
    p.Util.f.Util.srv;
  Printf.printf
    "  N^5 (analytic): %d entrymap entries - the paper measured 9 and 11 blocks.\n"
    (Clio.Analysis.locate_examinations ~fanout ~distance:1_048_576);
  print_endline
    "  (absolute times differ by the hardware generation: the paper's 0.6 ms/cached-block\n\
    \   Sun-3 accesses are sub-microsecond here; the counts are the comparable columns)"
