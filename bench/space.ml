(* Section 3.5: space overhead per log entry. The paper's worked example is
   the V-System login/logout log: c ~ 1/15 (entry/block ratio), a ~ 8
   (log files per entrymap entry), N = 16 => entrymap overhead < 0.16
   bytes/entry, under 0.2% of the entry size and far below the header
   overhead. We regenerate that workload and account every byte. *)

let run_workload ~users ~events =
  let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:16384 ~cache_blocks:512 () in
  let rng = Sim.Rng.create 0x5EED5L in
  let records = Sim.Workload.login_trace ~rng ~users ~events ~mean_gap_us:50_000.0 in
  List.iter
    (fun r ->
      Sim.Clock.advance f.Util.clock r.Sim.Workload.gap_us;
      ignore (Util.ok (Clio.Server.append_path f.Util.srv ~path:r.Sim.Workload.path r.Sim.Workload.payload)))
    records;
  ignore (Util.ok (Clio.Server.force f.Util.srv));
  f

let run () =
  Util.section "SECTION 3.5 - space overhead per log entry (login-log workload)";
  let users = 7 and events = 20_000 in
  let f = run_workload ~users ~events in
  let s = Clio.Server.stats f.Util.srv in
  let per x = float_of_int x /. float_of_int s.Clio.Stats.entries_appended in
  let avg_entry = per s.Clio.Stats.bytes_client in
  let c = (avg_entry +. 12.0) /. 1024.0 in
  Printf.printf "  workload: %d login/logout events across %d users (+%d sublog creates)\n"
    events users (users + 1);
  Printf.printf "  average entry size: %.1f bytes client data  =>  c ~ 1/%.0f (paper: 1/15)\n\n"
    avg_entry (1.0 /. c);
  let columns = [ "overhead category"; "total bytes"; "bytes/entry"; "paper" ] in
  let rows =
    [
      [ "entry headers (+timestamps)"; string_of_int s.Clio.Stats.bytes_header;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_header);
        "4-14 B (header size)" ];
      [ "block index slots"; string_of_int s.Clio.Stats.bytes_index;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_index); "2 B" ];
      [ "block trailers"; string_of_int s.Clio.Stats.bytes_trailer;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_trailer); "(ours adds CRC)" ];
      [ "entrymap log entries"; string_of_int s.Clio.Stats.bytes_entrymap;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_entrymap); "< 0.16 B" ];
      [ "catalog + bad-block log"; string_of_int s.Clio.Stats.bytes_catalog;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_catalog); "amortized ~0" ];
      [ "forced-write padding"; string_of_int s.Clio.Stats.bytes_padding;
        Printf.sprintf "%.2f" (per s.Clio.Stats.bytes_padding); "0 (NVRAM tail)" ];
    ]
  in
  Util.table ~columns rows;
  let o_pred =
    Clio.Analysis.space_overhead_per_entry ~fanout:16 ~header_bytes:10.0 ~files_per_map:8.0
      ~entry_block_ratio:c
  in
  Printf.printf
    "\n  analytic entrymap bound (h=10,a=8,N=16,c=%.4f): %.3f bytes/entry;\n\
    \  measured %.3f bytes/entry = %.2f%% of the average entry (paper: <0.2%%).\n"
    c o_pred
    (per s.Clio.Stats.bytes_entrymap)
    (per s.Clio.Stats.bytes_entrymap /. avg_entry *. 100.0);
  Printf.printf "  total overhead %.2f bytes/entry on %.1f-byte entries (%.1f%%).\n"
    (per (Clio.Stats.overhead_bytes s))
    avg_entry
    (per (Clio.Stats.overhead_bytes s) /. avg_entry *. 100.0);

  (* The paper's table also implies the conclusion: header >> entrymap. *)
  Util.subsection "fanout sweep: entrymap bytes/entry vs N (same workload, 4000 events)";
  let columns = [ "N"; "entrymap B/entry"; "analytic bound" ] in
  let rows =
    List.map
      (fun fanout ->
        let f = Util.make_fixture ~fanout ~block_size:1024 ~capacity:8192 ~cache_blocks:256 () in
        let rng = Sim.Rng.create 77L in
        let records = Sim.Workload.login_trace ~rng ~users:7 ~events:4000 ~mean_gap_us:1000.0 in
        List.iter
          (fun r ->
            ignore
              (Util.ok (Clio.Server.append_path f.Util.srv ~path:r.Sim.Workload.path r.Sim.Workload.payload)))
          records;
        ignore (Util.ok (Clio.Server.force f.Util.srv));
        let s = Clio.Server.stats f.Util.srv in
        [
          string_of_int fanout;
          Printf.sprintf "%.3f" (float_of_int s.Clio.Stats.bytes_entrymap /. 4000.0);
          Printf.sprintf "%.3f"
            (Clio.Analysis.space_overhead_per_entry ~fanout ~header_bytes:10.0 ~files_per_map:8.0
               ~entry_block_ratio:c);
        ])
      [ 4; 8; 16; 32; 64 ]
  in
  Util.table ~columns rows
