(* Section 3.3.2's cost model: a cached block access costs ~0.6 ms on the
   paper's hardware while an optical-disk seek costs ~150 ms, so the cost of
   a long-distance read is dominated by cache misses. We rebuild that
   experiment on the timed device: the same locate, warm vs cold cache, with
   modeled optical/magnetic seek time. *)

let build ~model =
  let block_size = 256 in
  let capacity = 140_000 in
  let clock = Sim.Clock.simulated () in
  let base = Worm.Mem_device.create ~block_size ~capacity () in
  let timed = Worm.Timed_device.create ~clock ~model (Worm.Mem_device.io base) in
  let alloc ~vol_index:_ = Ok (Worm.Timed_device.io timed) in
  let config = { Clio.Config.default with block_size; cache_blocks = capacity } in
  let srv = Util.ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let rare = Util.ok (Clio.Server.ensure_log srv "/rare") in
  let noise = Util.ok (Clio.Server.ensure_log srv "/noise") in
  ignore (Util.ok (Clio.Server.append srv ~log:rare "needle"));
  let filler = String.make 170 'h' in
  for _ = 1 to 120_000 do
    ignore (Util.ok (Clio.Server.append srv ~log:noise filler))
  done;
  ignore (Util.ok (Clio.Server.force srv));
  (srv, timed, rare, noise)

let measure srv timed rare noise =
  (* Recent activity first: a read of the newest entry parks the head near
     the frontier, the realistic position for a server doing mostly-recent
     reads. *)
  ignore (Util.ok (Clio.Server.last_entry srv ~log:noise));
  let busy0 = Worm.Timed_device.busy_us timed in
  let e = Util.ok (Clio.Server.last_entry srv ~log:rare) in
  assert (e <> None);
  Int64.to_float (Int64.sub (Worm.Timed_device.busy_us timed) busy0) /. 1000.0

let run () =
  Util.section "SECTION 3.3.2 - long-distance reads: cache misses dominate (modeled device time)";
  let columns = [ "device model"; "cold cache"; "warm cache"; "paper's expectation" ] in
  let rows =
    List.map
      (fun (name, model, expect) ->
        let srv, timed, rare, noise = build ~model in
        Util.drop_caches srv;
        let cold = measure srv timed rare noise in
        let warm = measure srv timed rare noise in
        [ name; Printf.sprintf "%.1f ms" cold; Printf.sprintf "%.3f ms" warm; expect ])
      [
        ("optical WORM", Sim.Seek_model.optical, "\"several hundred milliseconds\"");
        ("magnetic disk", Sim.Seek_model.magnetic, "(seek ~30 ms vs ~150 ms)");
      ]
  in
  Util.table ~columns rows;
  print_endline
    "  (a cold long-distance read pays several seeks for entrymap entries plus the\n\
    \   target block; once cached, the same read costs no device time at all -\n\
    \   'the cost of a log read operation is determined primarily by the number of\n\
    \   cache misses')"
