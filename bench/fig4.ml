(* Figure 4: average cost of reconstructing entrymap information on server
   reboot, versus blocks written so far — theoretical (N·log_N b)/2 plus
   measured recovery on real volumes. Note the Figure 3 trade-off inverts:
   larger N makes recovery *more* expensive. *)

let analytic () =
  Util.subsection "Figure 4 (analytic): blocks examined on recovery vs written blocks";
  let fanouts = [ 4; 8; 16; 32; 64; 128 ] in
  let written = [ 100; 1_000; 10_000; 100_000; 1_000_000 ] in
  let columns = "b (blocks)" :: List.map (fun n -> Printf.sprintf "N=%d" n) fanouts in
  let rows =
    List.map
      (fun b ->
        string_of_int b
        :: List.map
             (fun n ->
               Printf.sprintf "%.0f"
                 (Clio.Analysis.recovery_examinations_avg ~fanout:n ~written:(float_of_int b)))
             fanouts)
      written
  in
  Util.table ~columns rows

let measured () =
  Util.subsection "Figure 4 (measured): real recovery after writing b blocks";
  let columns =
    [ "N"; "b (blocks)"; "examined"; "analytic avg"; "analytic worst"; "frontier probes" ]
  in
  let rows = ref [] in
  List.iter
    (fun fanout ->
      (* Grow one volume and re-recover at increasing sizes. *)
      let f = Util.make_fixture ~fanout ~block_size:256 ~capacity:40_000 ~cache_blocks:1024 () in
      let srv = ref f.Util.srv in
      let log = Util.ok (Clio.Server.ensure_log !srv "/w") in
      let filler = String.make 170 'w' in
      let written = ref 0 in
      List.iter
        (fun target ->
          while !written < target do
            ignore (Util.ok (Clio.Server.append !srv ~log filler));
            incr written
          done;
          ignore (Util.ok (Clio.Server.force !srv));
          let recovered = Util.recover f in
          let stats = Clio.Server.stats recovered in
          let st = Clio.Server.state recovered in
          let v = Util.ok (Clio.State.active st) in
          let b = Clio.Vol.written_limit v in
          rows :=
            [
              string_of_int fanout;
              string_of_int b;
              string_of_int stats.Clio.Stats.recovery_blocks_examined;
              Printf.sprintf "%.0f"
                (Clio.Analysis.recovery_examinations_avg ~fanout ~written:(float_of_int b));
              Printf.sprintf "%.0f"
                (Clio.Analysis.recovery_examinations_worst ~fanout ~written:(float_of_int b));
              string_of_int stats.Clio.Stats.frontier_probe_reads;
            ]
            :: !rows;
          srv := recovered)
        [ 100; 1_000; 10_000; 30_000 ])
    [ 4; 16; 64 ];
  Util.table ~columns (List.rev !rows);
  print_endline
    "  (the measured cost must fall between the analytic average and worst case;\n\
    \   it grows with N - the inverse of the Figure 3 locate trend, which is why\n\
    \   the paper settles on N in 16..32)"

let run () =
  Util.section "FIGURE 4 - cost of reconstructing entrymap information (recovery)";
  analytic ();
  measured ()
