(* Figure 3: average cost of locating an entry d blocks away, without
   caching — entrymap log entries examined, analytic curves for all N plus
   measured values on real volumes. *)

let analytic () =
  Util.subsection "Figure 3 (analytic): entrymap entries examined vs distance";
  let fanouts = [ 4; 8; 16; 32; 64; 128 ] in
  let distances = [ 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000 ] in
  let columns = "d (blocks)" :: List.map (fun n -> Printf.sprintf "N=%d" n) fanouts in
  let rows =
    List.map
      (fun d ->
        string_of_int d
        :: List.map
             (fun n ->
               Printf.sprintf "%.1f"
                 (Clio.Analysis.locate_examinations_avg ~fanout:n ~distance:(float_of_int d)))
             fanouts)
      distances
  in
  Util.table ~columns rows;
  print_endline
    "  (paper: little benefit beyond N=16..32, even for entries 10^7 blocks away)"

let measured () =
  Util.subsection "Figure 3 (measured): cold-cache locate on real volumes";
  let distances = [ 10; 100; 1_000; 10_000; 50_000 ] in
  let columns =
    [ "N"; "d requested"; "d actual"; "entrymap examined"; "predicted (2k-1)"; "blocks read" ]
  in
  let rows = ref [] in
  List.iter
    (fun fanout ->
      let p = Util.build_planted ~fanout ~block_size:256 ~distances () in
      List.iter
        (fun (d_req, d_act, log) ->
          Util.drop_caches p.Util.f.Util.srv;
          let examined, blocks, _ = Util.measure_locate p log in
          rows :=
            [
              string_of_int fanout;
              string_of_int d_req;
              string_of_int d_act;
              string_of_int examined;
              string_of_int (Clio.Analysis.locate_examinations ~fanout ~distance:d_act);
              string_of_int blocks;
            ]
            :: !rows)
        p.Util.targets)
    [ 4; 16; 64 ];
  Util.table ~columns (List.rev !rows)

let run () =
  Util.section "FIGURE 3 - cost of locating an entry d blocks away (no caching)";
  analytic ();
  measured ()
