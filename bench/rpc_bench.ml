(* Wire protocol v2 vs v1: what batching buys back from the IPC floor.
   The paper's numbers were IPC-dominated (0.5-1 ms same-machine, 2.5-3 ms
   remote); protocol v2 amortizes that per-round-trip cost with batched
   appends (group commit) and chunked cursor reads. We run the same
   1000-entry append+fold workload through both protocol versions at the
   paper's two IPC latencies and count what crossed the wire. *)

type run = {
  proto : string;
  ipc_us : int64;
  append_trips : int;
  fold_trips : int;
  bytes_sent : int;
  bytes_received : int;
  sim_ms : float;
}

let batch_size = 100

let run_workload ~n ~ipc_us ~max_version =
  let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:65536 () in
  let rpc = Uio.Rpc_server.create f.Util.srv in
  let transport =
    Uio.Transport.local ~latency_us:ipc_us ~clock:f.Util.clock (Uio.Rpc_server.handle rpc)
  in
  let client = Uio.Client.connect ~max_version transport in
  let log = Util.ok (Uio.Client.create_log client "/bench") in
  let payload i = Printf.sprintf "entry %06d: fifty bytes of log data, padded out...." i in
  let sim0 = Sim.Clock.peek f.Util.clock in
  let before = Uio.Transport.counters transport in
  (* Synchronous (forced) appends: v1 pays one round trip and one force per
     entry; v2 groups [batch_size] entries per request with one force each
     (group commit). *)
  (if max_version >= 2 then
     for b = 0 to (n / batch_size) - 1 do
       let items =
         List.init batch_size (fun i ->
             { Uio.Message.log; extra_members = []; data = payload ((b * batch_size) + i) })
       in
       ignore (Util.ok (Uio.Client.append_batch ~force:true client items))
     done
   else
     for i = 0 to n - 1 do
       ignore (Util.ok (Uio.Client.append ~force:true client ~log (payload i)))
     done);
  let mid = Uio.Transport.counters transport in
  let count = Util.ok (Uio.Client.fold_entries client ~log ~init:0 (fun k _ -> k + 1)) in
  assert (count = n);
  let after = Uio.Transport.counters transport in
  let d_append = Uio.Transport.diff ~after:mid ~before in
  let d_fold = Uio.Transport.diff ~after ~before:mid in
  let d_all = Uio.Transport.diff ~after ~before in
  ( f.Util.srv,
    {
      proto = Printf.sprintf "v%d" (Uio.Client.version client);
      ipc_us;
      append_trips = d_append.Uio.Transport.round_trips;
      fold_trips = d_fold.Uio.Transport.round_trips;
      bytes_sent = d_all.Uio.Transport.bytes_sent;
      bytes_received = d_all.Uio.Transport.bytes_received;
      sim_ms = Int64.to_float (Int64.sub (Sim.Clock.peek f.Util.clock) sim0) /. 1000.0;
    } )

let run () =
  Util.section "WIRE PROTOCOL v2 - round trips and modeled IPC time, 1000-entry append+fold";
  let n = if Util.quick () then 200 else 1000 in
  let runs =
    List.concat_map
      (fun ipc_us ->
        let _, v1 = run_workload ~n ~ipc_us ~max_version:1 in
        let srv, v2 = run_workload ~n ~ipc_us ~max_version:2 in
        [ (srv, v1); (srv, v2) ])
      [ 1000L; 3000L ]
  in
  let columns =
    [ "protocol"; "IPC"; "append trips"; "fold trips"; "bytes sent"; "bytes recv"; "modeled time" ]
  in
  Util.table ~columns
    (List.map
       (fun (_, r) ->
         [
           r.proto;
           Printf.sprintf "%Ld us" r.ipc_us;
           string_of_int r.append_trips;
           string_of_int r.fold_trips;
           string_of_int r.bytes_sent;
           string_of_int r.bytes_received;
           Printf.sprintf "%.1f ms" r.sim_ms;
         ])
       runs);
  (match runs with
  | (_, v1) :: (_, v2) :: _ ->
    let trips r = r.append_trips + r.fold_trips in
    Printf.printf
      "  v2 makes %.0fx fewer round trips (%d vs %d) for %d entries appended and read back\n"
      (float_of_int (trips v1) /. float_of_int (trips v2))
      (trips v1) (trips v2) n;
    Printf.printf
      "  (batch=%d with one force per batch; reads stream %d entries per chunk)\n" batch_size
      Uio.Client.default_chunk_entries
  | _ -> ());
  let srv = match runs with (srv, _) :: _ -> srv | [] -> assert false in
  Util.emit_bench_json ~name:"rpc"
    ~rows:
      (List.map
         (fun (_, r) ->
           Obs.Json.Obj
             [
               ("protocol", Obs.Json.Str r.proto);
               ("ipc_us", Obs.Json.Float (Int64.to_float r.ipc_us));
               ("entries", Obs.Json.Float (float_of_int n));
               ("append_round_trips", Obs.Json.Float (float_of_int r.append_trips));
               ("fold_round_trips", Obs.Json.Float (float_of_int r.fold_trips));
               ("bytes_sent", Obs.Json.Float (float_of_int r.bytes_sent));
               ("bytes_received", Obs.Json.Float (float_of_int r.bytes_received));
               ("modeled_ms", Obs.Json.Float r.sim_ms);
             ])
         runs)
    srv
