(* Read-path overhaul proof: cold vs warm locate curves (the locate memo
   must drive repeated descents to zero device reads) and sequential-scan
   throughput with batched read-ahead on the timed device (fewer seeks for
   the same blocks). Writes BENCH_read.json; CI asserts warm < cold device
   reads and that the read-ahead run issues fewer seeks. *)

let dev_reads_of_fixture (f : Util.fixture) =
  List.fold_left
    (fun acc d -> acc + (Worm.Mem_device.io d).Worm.Block_io.stats.Worm.Dev_stats.reads)
    0
    !(f.Util.devices)

(* Drop only the block cache, keeping the memo: the "warm" rows measure what
   the memo buys once buffers are gone. *)
let drop_block_cache_only srv =
  let st = Clio.Server.state srv in
  Array.iter (fun v -> Blockcache.Cache.drop v.Clio.Vol.cache) st.Clio.State.vols

(* ------------------------ cold vs warm locates ------------------------ *)

let locate_rows () =
  Util.subsection "locate: cold descent vs memoized repeat (device reads)";
  let distances = if Util.quick () then [ 10; 200 ] else [ 10; 100; 1_000; 10_000 ] in
  let fanout = 16 in
  let p = Util.build_planted ~fanout ~block_size:256 ~distances () in
  let srv = p.Util.f.Util.srv in
  let columns =
    [ "d (blocks)"; "cold dev reads"; "cold examined"; "warm dev reads"; "memo hits" ]
  in
  let measure log =
    let st = Clio.Server.state srv in
    let v = Util.ok (Clio.State.active st) in
    Util.ok (Clio.Locate.prev_block st v ~log ~before:max_int)
  in
  let rows =
    List.map
      (fun (_, d_act, log) ->
        (* Fully cold: no block cache, no memo. *)
        Util.drop_caches srv;
        let r0 = dev_reads_of_fixture p.Util.f in
        let s0 = Clio.Stats.snapshot (Clio.Server.stats srv) in
        let found_cold = measure log in
        let cold_reads = dev_reads_of_fixture p.Util.f - r0 in
        let cold_examined =
          (Clio.Server.stats srv).Clio.Stats.entrymap_records_examined
          - s0.Clio.Stats.entrymap_records_examined
        in
        (* Warm memo, cold buffers: the repeat must not touch the device. *)
        drop_block_cache_only srv;
        let r1 = dev_reads_of_fixture p.Util.f in
        let h0 = (Clio.Server.stats srv).Clio.Stats.locate_memo_hits in
        let found_warm = measure log in
        let warm_reads = dev_reads_of_fixture p.Util.f - r1 in
        let memo_hits = (Clio.Server.stats srv).Clio.Stats.locate_memo_hits - h0 in
        assert (found_cold = found_warm);
        (d_act, cold_reads, cold_examined, warm_reads, memo_hits))
      p.Util.targets
  in
  Util.table ~columns
    (List.map
       (fun (d, cr, ce, wr, mh) ->
         [ string_of_int d; string_of_int cr; string_of_int ce; string_of_int wr;
           string_of_int mh ])
       rows);
  print_endline
    "  (a warm repeat answers from the skip index: zero device reads even with\n\
    \   the block cache emptied - the paper's fully-cached locate, made durable\n\
    \   against buffer churn)";
  ( srv,
    List.map
      (fun (d, cr, ce, wr, mh) ->
        Obs.Json.Obj
          [
            ("phase", Obs.Json.Str "locate");
            ("distance_blocks", Obs.Json.Int d);
            ("cold_device_reads", Obs.Json.Int cr);
            ("cold_entrymap_examined", Obs.Json.Int ce);
            ("warm_device_reads", Obs.Json.Int wr);
            ("memo_hits", Obs.Json.Int mh);
          ])
      rows )

(* --------------------- sequential scan + read-ahead --------------------- *)

(* Identical deterministic workload on a seek-charging device, scanned end to
   end through the cursor; only [read_ahead_blocks] differs between runs. A
   small cache forces the scan to the device, which is where batching pays:
   the timed device charges one seek per contiguous run. *)
let build_scan ~read_ahead ~entries =
  let block_size = 256 in
  let capacity = entries + (entries / 8) + 256 in
  let clock = Sim.Clock.simulated () in
  let base = Worm.Mem_device.create ~block_size ~capacity () in
  let timed =
    Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical (Worm.Mem_device.io base)
  in
  let alloc ~vol_index:_ = Ok (Worm.Timed_device.io timed) in
  let config =
    {
      Clio.Config.default with
      block_size;
      cache_blocks = 32;
      read_ahead_blocks = read_ahead;
    }
  in
  let srv = Util.ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let data = Util.ok (Clio.Server.ensure_log srv "/data") in
  let filler = String.make 170 'd' in
  for i = 1 to entries do
    ignore (Util.ok (Clio.Server.append srv ~log:data (filler ^ string_of_int i)))
  done;
  ignore (Util.ok (Clio.Server.force srv));
  (srv, timed, data)

let scan_row ~read_ahead ~entries =
  let srv, timed, data = build_scan ~read_ahead ~entries in
  Util.drop_caches srv;
  let st = Clio.Server.state srv in
  let r0 =
    Array.fold_left
      (fun acc v -> acc + v.Clio.Vol.dev.Worm.Block_io.stats.Worm.Dev_stats.reads)
      0 st.Clio.State.vols
  in
  let seeks0 = Worm.Timed_device.seeks timed in
  let busy0 = Worm.Timed_device.busy_us timed in
  let n =
    Util.ok (Clio.Server.fold_entries srv ~log:data ~init:0 (fun acc _ -> acc + 1))
  in
  let seeks = Worm.Timed_device.seeks timed - seeks0 in
  let busy_ms = Int64.to_float (Int64.sub (Worm.Timed_device.busy_us timed) busy0) /. 1000.0 in
  let reads =
    Array.fold_left
      (fun acc v -> acc + v.Clio.Vol.dev.Worm.Block_io.stats.Worm.Dev_stats.reads)
      0 st.Clio.State.vols
    - r0
  in
  let s = Clio.Server.stats srv in
  (read_ahead, n, seeks, busy_ms, reads, s.Clio.Stats.readahead_batches,
   s.Clio.Stats.readahead_blocks)

let scan_rows () =
  Util.subsection "sequential scan: batched read-ahead vs block-at-a-time (timed device)";
  let entries = if Util.quick () then 400 else 4_000 in
  let runs = [ scan_row ~read_ahead:0 ~entries; scan_row ~read_ahead:8 ~entries ] in
  let columns =
    [ "read-ahead"; "entries"; "seeks"; "modeled time"; "dev reads"; "batches"; "prefetched" ]
  in
  Util.table ~columns
    (List.map
       (fun (ra, n, seeks, busy_ms, reads, batches, blocks) ->
         [
           string_of_int ra;
           string_of_int n;
           string_of_int seeks;
           Printf.sprintf "%.1f ms" busy_ms;
           string_of_int reads;
           string_of_int batches;
           string_of_int blocks;
         ])
       runs);
  (match runs with
  | [ (_, _, s0, b0, _, _, _); (_, _, s1, b1, _, _, _) ] ->
    Printf.printf "  read-ahead=8: %.1fx fewer seeks, %.1fx less modeled device time\n"
      (float_of_int s0 /. float_of_int (max 1 s1))
      (b0 /. Float.max 0.001 b1)
  | _ -> ());
  List.map
    (fun (ra, n, seeks, busy_ms, reads, batches, blocks) ->
      Obs.Json.Obj
        [
          ("phase", Obs.Json.Str "scan");
          ("read_ahead_blocks", Obs.Json.Int ra);
          ("entries", Obs.Json.Int n);
          ("seeks", Obs.Json.Int seeks);
          ("busy_ms", Obs.Json.Float busy_ms);
          ("device_reads", Obs.Json.Int reads);
          ("readahead_batches", Obs.Json.Int batches);
          ("readahead_blocks", Obs.Json.Int blocks);
        ])
    runs

let run () =
  Util.section
    "READ PATH - segmented cache, locate memoization, batched read-ahead";
  let srv, locate_json = locate_rows () in
  let scan_json = scan_rows () in
  Util.emit_bench_json ~name:"read" ~rows:(locate_json @ scan_json) srv
