(* Section 4 feasibility benchmarks: the RAM-cache economics and the
   delayed-write elision rate backing the history-based file server. *)

(* Section 4's arithmetic: "Suppose the cost of retrieving 1 kilobyte is
   100 ms from a log device, 30 ms from a magnetic disk cache, and 1 ms
   from a RAM cache ... as long as the cache hit ratio for the RAM cache is
   at least 70% of the disk cache's, the RAM cache has the better read
   access performance." Verified symbolically, then grounded with measured
   hit ratios of real caches of both sizes. *)
let cache_economics () =
  Util.section "SECTION 4 - RAM cache vs disk cache economics";
  let t_log = 100.0 and t_disk = 30.0 and t_ram = 1.0 in
  let avg_read ~hit ~t_cache = (hit *. t_cache) +. ((1.0 -. hit) *. t_log) in
  Util.subsection "the paper's break-even claim (analytic)";
  let columns = [ "disk-cache hit"; "RAM hit @ 70% of it"; "disk avg read"; "RAM avg read" ] in
  let rows =
    List.map
      (fun disk_hit ->
        let ram_hit = 0.70 *. disk_hit in
        [
          Printf.sprintf "%.0f%%" (disk_hit *. 100.0);
          Printf.sprintf "%.0f%%" (ram_hit *. 100.0);
          Printf.sprintf "%.1f ms" (avg_read ~hit:disk_hit ~t_cache:t_disk);
          Printf.sprintf "%.1f ms" (avg_read ~hit:ram_hit ~t_cache:t_ram);
        ])
      [ 0.5; 0.7; 0.9; 0.99 ]
  in
  Util.table ~columns rows;
  print_endline
    "  (at exactly 70% relative hit ratio the RAM cache matches or beats the disk\n\
    \   cache at every absolute hit rate - the paper's break-even)";

  Util.subsection "measured hit ratios: same workload, cache 1/8th the size";
  (* A RAM cache is smaller per dollar: measure how much hit ratio an
     8x-smaller cache loses on a zipf-ish re-read workload. *)
  let run ~cache_blocks =
    let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:8192 ~cache_blocks () in
    let log = Util.ok (Clio.Server.ensure_log f.Util.srv "/w") in
    for i = 0 to 3999 do
      ignore (Util.ok (Clio.Server.append f.Util.srv ~log (Printf.sprintf "%04d %s" i (String.make 200 'd'))))
    done;
    ignore (Util.ok (Clio.Server.force f.Util.srv));
    Util.drop_caches f.Util.srv;
    let st = Clio.Server.state f.Util.srv in
    let v = Util.ok (Clio.State.active st) in
    (* Re-read mostly-recent entries: 80% of reads in the newest 20%. *)
    let rng = Sim.Rng.create 31L in
    let limit = Clio.Vol.written_limit v in
    for _ = 1 to 4000 do
      let b =
        if Sim.Rng.chance rng 0.8 then limit - 1 - Sim.Rng.int rng (limit / 5)
        else 1 + Sim.Rng.int rng (limit - 2)
      in
      ignore (Clio.Vol.view_block v b)
    done;
    let hits = Blockcache.Cache.hits v.Clio.Vol.cache in
    let misses = Blockcache.Cache.misses v.Clio.Vol.cache in
    float_of_int hits /. float_of_int (max 1 (hits + misses))
  in
  let big = run ~cache_blocks:1024 in
  let small = run ~cache_blocks:128 in
  Printf.printf "  1024-block cache: %.1f%% hits; 128-block cache: %.1f%% hits (%.0f%% relative)\n"
    (big *. 100.0) (small *. 100.0)
    (small /. big *. 100.0);
  Printf.printf
    "  => avg read: big-disk-cache %.1f ms vs small-RAM-cache %.1f ms (model above)\n"
    (avg_read ~hit:big ~t_cache:t_disk)
    (avg_read ~hit:small ~t_cache:t_ram)

(* Section 4.1's delayed-write feasibility: how much of a churn workload
   never reaches the log device. *)
let delayed_write () =
  Util.section "SECTION 4.1 - delayed-write elision on an Ousterhout-style churn workload";
  let columns =
    [ "flush delay"; "updates"; "elided"; "elision %"; "bytes submitted"; "bytes logged" ]
  in
  let rows =
    List.map
      (fun (label, delay_us) ->
        let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:65536 ~cache_blocks:256 () in
        let dw = History.Delayed_write.create f.Util.srv ~flush_delay_us:delay_us in
        let rng = Sim.Rng.create 4242L in
        let records =
          Sim.Workload.churn_trace ~rng ~files:100 ~writes:8000 ~short_lived_fraction:0.5
        in
        let now = ref 0L in
        List.iter
          (fun r ->
            now := Int64.add !now (Int64.mul r.Sim.Workload.gap_us 500L);
            ignore
              (Util.ok (History.Delayed_write.update dw ~now:!now ~path:r.Sim.Workload.path
                   r.Sim.Workload.payload)))
          records;
        ignore (Util.ok (History.Delayed_write.flush_all dw));
        let s = History.Delayed_write.stats dw in
        [
          label;
          string_of_int s.History.Delayed_write.updates;
          string_of_int s.History.Delayed_write.elided;
          Printf.sprintf "%.0f%%"
            (float_of_int s.History.Delayed_write.elided
            /. float_of_int s.History.Delayed_write.updates
            *. 100.0);
          string_of_int s.History.Delayed_write.bytes_submitted;
          string_of_int s.History.Delayed_write.bytes_logged;
        ])
      [
        ("none", 0L);
        ("30 s", 30_000_000L);
        ("5 min", 300_000_000L);
        ("30 min", 1_800_000_000L);
      ]
  in
  Util.table ~columns rows;
  print_endline
    "  ('more than 50% of newly-written information is deleted within 5 minutes ...\n\
    \   with an appropriate delayed write policy, most newly-written data will not\n\
    \   lead to writes to the log device' - section 4.1)"

let run () =
  cache_economics ();
  delayed_write ()
