(* Shared benchmark plumbing: fixtures, target planting, table printing,
   and a thin wrapper over Bechamel. *)

let ok = function
  | Ok v -> v
  | Error e -> failwith ("bench: " ^ Clio.Errors.to_string e)

(* ------------------------------ printing ------------------------------ *)

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

let table ~columns rows =
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w row -> max w (String.length (List.nth row i))) (String.length c) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%s%s" (if i = 0 then "  " else "  | ")
          (Printf.sprintf "%*s" (List.nth widths i) cell))
      cells;
    print_newline ()
  in
  print_row columns;
  Printf.printf "  %s\n" (String.make (List.fold_left ( + ) (4 * List.length widths) widths) '-');
  List.iter print_row rows;
  flush stdout

(* ------------------------------ fixtures ------------------------------ *)

type fixture = {
  srv : Clio.Server.t;
  clock : Sim.Clock.t;
  nvram : Worm.Nvram.t;
  config : Clio.Config.t;
  devices : Worm.Mem_device.t list ref;
  alloc : vol_index:int -> (Worm.Block_io.t, Clio.Errors.t) result;
}

let make_fixture ?(fanout = 16) ?(block_size = 256) ?(capacity = 4096) ?cache_blocks
    ?(nvram_tail = true) () =
  let cache_blocks = match cache_blocks with Some c -> c | None -> capacity in
  let config = { Clio.Config.default with fanout; block_size; cache_blocks; nvram_tail } in
  let clock = Sim.Clock.simulated () in
  let devices = ref [] in
  let alloc ~vol_index:_ =
    let d = Worm.Mem_device.create ~block_size ~capacity () in
    devices := !devices @ [ d ];
    Ok (Worm.Mem_device.io d)
  in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~config ~clock ~nvram ~alloc_volume:alloc ()) in
  { srv; clock; nvram; config; devices; alloc }

let recover f =
  ok
    (Clio.Server.recover ~config:f.config ~clock:f.clock ~nvram:f.nvram ~alloc_volume:f.alloc
       ~devices:(List.map Worm.Mem_device.io !(f.devices)) ())

(* Both the block cache and the locate memo: "cold" rows must not be
   silently warmed by memoized entrymap decodes or skip-index hits. *)
let drop_caches srv =
  let st = Clio.Server.state srv in
  Array.iter (fun v -> Blockcache.Cache.drop v.Clio.Vol.cache) st.Clio.State.vols;
  Clio.Read_memo.clear st.Clio.State.read_memo

(* --------------------------- target planting --------------------------- *)

(* Build a single-volume log with ~[span] data blocks of /noise filler and
   one /t<i> entry planted so that it ends up ~d_i blocks before the end.
   Returns the actual measured distance of each target (entrymap records
   shift things slightly), newest-first search-ready. *)
type planted = {
  f : fixture;
  end_block : int;
  targets : (int * int * Clio.Ids.logfile) list;
      (** (requested distance, actual distance, log id) *)
}

let build_planted ~fanout ~block_size ~distances () =
  let span = List.fold_left max 0 distances + 32 in
  (* Entrymap and catalog records consume a fraction of the blocks. *)
  let capacity = span + (span / (fanout - 1)) + 128 in
  let f = make_fixture ~fanout ~block_size ~capacity () in
  let noise = ok (Clio.Server.ensure_log f.srv "/noise") in
  let targets =
    List.mapi (fun i d -> (d, ok (Clio.Server.ensure_log f.srv (Printf.sprintf "/t%d" i)))) distances
  in
  (* Plant by real device position: fill until the frontier reaches each
     target's position, drop the target, keep filling. Filler entries
     fragment across blocks, so positions are tracked via the frontier, not
     by counting entries. *)
  let filler = String.make (block_size - 90) 'n' in
  let st = Clio.Server.state f.srv in
  let frontier () =
    match Clio.State.active st with Ok v -> Clio.Vol.device_frontier v | Error _ -> 0
  in
  let total = span in
  let planted =
    List.map (fun (d, log) -> (total - d, d, log)) targets
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  List.iter
    (fun (pos, _, log) ->
      while frontier () < pos do
        ignore (ok (Clio.Server.append f.srv ~log:noise filler))
      done;
      ignore (ok (Clio.Server.append f.srv ~log "target")))
    planted;
  while frontier () < total do
    ignore (ok (Clio.Server.append f.srv ~log:noise filler))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let end_block = frontier () in
  let v = ok (Clio.State.active st) in
  let targets =
    List.map
      (fun (d, log) ->
        match ok (Clio.Locate.prev_block st v ~log ~before:max_int) with
        | Some blk -> (d, end_block - blk, log)
        | None -> (d, -1, log))
      targets
  in
  { f; end_block; targets }

(* Measure one backwards locate of [log] from the end of [p], returning
   (entrymap records examined, blocks read, wall time in microseconds). *)
let measure_locate p log =
  let st = Clio.Server.state p.f.srv in
  let v = ok (Clio.State.active st) in
  let s0 = Clio.Stats.snapshot (Clio.Server.stats p.f.srv) in
  let t0 = Unix.gettimeofday () in
  let found = ok (Clio.Locate.prev_block st v ~log ~before:max_int) in
  let wall_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let s1 = Clio.Server.stats p.f.srv in
  let d = Clio.Stats.diff ~after:s1 ~before:s0 in
  ignore found;
  (d.Clio.Stats.entrymap_records_examined, d.Clio.Stats.locate_block_reads, wall_us)

(* ------------------------------ bechamel ------------------------------ *)

(* CI smoke runs set CLIO_BENCH_QUICK=1; sections shrink their workloads
   (fewer iterations, smaller search distances) so a full pass takes
   seconds instead of minutes. *)
let quick () =
  match Sys.getenv_opt "CLIO_BENCH_QUICK" with
  | None | Some ("" | "0") -> false
  | Some _ -> true

let bechamel_quota () = if quick () then 0.05 else 0.5

let run_bechamel ?quota (test : Bechamel.Test.t) : (string * float) list =
  let quota = match quota with Some q -> q | None -> bechamel_quota () in
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ~compaction:false ()
  in
  let witness = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ witness ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let res = Analyze.all ols witness raw in
  Hashtbl.fold
    (fun name o acc ->
      let ns = match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> nan in
      (name, ns) :: acc)
    res []
  |> List.sort compare

let ns_to_string ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* ----------------------------- JSON export ----------------------------- *)

(* Bench sections that produce comparable numbers also write
   BENCH_<name>.json in the current directory: the printed rows in
   machine-readable form under ["rows"], plus the fixture server's full
   metrics export under ["metrics"] — the same object `clio stats --json`
   emits, so one consumer parses both. *)
let emit_bench_json ~name ~rows srv =
  let open Obs.Json in
  let json =
    Obj
      [
        ("bench", Str name);
        ("quick", Bool (quick ()));
        ("rows", List rows);
        ("metrics", Clio.Server.metrics_obj srv);
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" name in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string_pretty json);
      Out_channel.output_char oc '\n');
  Printf.printf "  [wrote %s]\n%!" path
