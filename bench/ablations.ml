(* Ablations for the design choices DESIGN.md calls out. *)

(* N trade-off: locate cost vs recovery cost, the section 3.3/3.4 tension. *)
let ablate_n () =
  Util.section "ABLATION - fanout N: locate vs recovery (the 16..32 sweet spot)";
  let columns =
    [ "N"; "locate d=10^4 (maps)"; "locate d=10^7 (maps)"; "recover b=10^6 (blocks)" ]
  in
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          string_of_int (Clio.Analysis.locate_examinations ~fanout:n ~distance:10_000);
          string_of_int (Clio.Analysis.locate_examinations ~fanout:n ~distance:10_000_000);
          Printf.sprintf "%.0f"
            (Clio.Analysis.recovery_examinations_avg ~fanout:n ~written:1e6);
        ])
      [ 2; 4; 8; 16; 32; 64; 128; 256 ]
  in
  Util.table ~columns rows;
  print_endline
    "  (locate keeps improving only marginally past N=16-32 while recovery cost\n\
    \   keeps climbing linearly in N - hence the paper's choice)"

(* Forced writes: pure-WORM padding burn vs the battery-backed RAM tail. *)
let ablate_force () =
  Util.section "ABLATION - forced writes: pure WORM vs battery-backed RAM tail (section 2.3.1)";
  let run ~nvram_tail ~force_every =
    let f = Util.make_fixture ~fanout:16 ~block_size:1024 ~capacity:65536 ~cache_blocks:64 ~nvram_tail () in
    let log = Util.ok (Clio.Server.ensure_log f.Util.srv "/txn") in
    for i = 0 to 1999 do
      ignore
        (Util.ok
           (Clio.Server.append f.Util.srv ~log ~force:(i mod force_every = 0)
              "commit record of about fifty bytes, more or less.."))
    done;
    ignore (Util.ok (Clio.Server.force f.Util.srv));
    let s = Clio.Server.stats f.Util.srv in
    (s.Clio.Stats.blocks_flushed, s.Clio.Stats.bytes_padding, s.Clio.Stats.nvram_syncs)
  in
  let columns =
    [ "mode"; "force every"; "blocks burned"; "padding bytes"; "nvram syncs" ]
  in
  let rows =
    List.concat_map
      (fun force_every ->
        let wb, wp, _ = run ~nvram_tail:false ~force_every in
        let nb, np, ns = run ~nvram_tail:true ~force_every in
        [
          [ "pure WORM"; string_of_int force_every; string_of_int wb; string_of_int wp; "-" ];
          [ "NVRAM tail"; string_of_int force_every; string_of_int nb; string_of_int np;
            string_of_int ns ];
        ])
      [ 1; 4; 16 ]
  in
  Util.table ~columns rows;
  print_endline
    "  (2000 x ~60-byte entries: with a force per commit, pure WORM burns a block\n\
    \   per entry - 'considerable internal fragmentation' - while the NVRAM tail\n\
    \   writes only full blocks)"

(* Locate schemes: entrymap tree vs binary skip locate vs naive scan. *)
let ablate_locate () =
  Util.section "ABLATION - locate scheme: entrymap tree vs Daniels binary locate vs full scan";
  let p = Util.build_planted ~fanout:16 ~block_size:256 ~distances:[ 100; 1_000; 10_000; 50_000 ] () in
  let st = Clio.Server.state p.Util.f.Util.srv in
  let v = Util.ok (Clio.State.active st) in
  let chain = Baseline.Skip_chain.create ~block_entries:1 in
  for _ = 1 to p.Util.end_block do
    Baseline.Skip_chain.append chain
  done;
  let columns =
    [ "distance"; "entrymap maps read"; "entrymap blocks"; "skip-chain blocks"; "full-scan blocks" ]
  in
  let rows =
    List.map
      (fun (_, d_act, log) ->
        Util.drop_caches p.Util.f.Util.srv;
        let maps, blocks, _ = Util.measure_locate p log in
        let _, skip_blocks = Baseline.Skip_chain.locate_back chain ~distance:d_act in
        let _, scanned = Util.ok (Baseline.Naive_scan.prev_block st v ~log ~before:max_int) in
        [
          string_of_int d_act;
          string_of_int maps;
          string_of_int blocks;
          string_of_int skip_blocks;
          string_of_int scanned;
        ])
      p.Util.targets
  in
  Util.table ~columns rows;
  print_endline
    "  (both indexed schemes are logarithmic - section 5.1 - but the entrymap's\n\
    \   upper levels live in a handful of well-known, cache-friendly blocks,\n\
    \   while skip-chain hops touch scattered old blocks)"

(* Conventional FS baseline: device writes per append as a file grows. *)
let ablate_fs () =
  Util.section "ABLATION - append cost: log file vs Unix-style indirect-block FS (section 1)";
  let block = 1024 in
  let dev = Baseline.Rw_device.create ~block_size:block ~capacity:400_000 () in
  let fs = Baseline.Indirect_fs.format ~churn:3 dev in
  let file = Util.ok (Baseline.Indirect_fs.create_file fs "grow") in
  let f = Util.make_fixture ~fanout:16 ~block_size:block ~capacity:300_000 ~cache_blocks:64 () in
  let log = Util.ok (Clio.Server.ensure_log f.Util.srv "/grow") in
  let chunk = String.make block 'g' in
  let columns =
    [ "file size (blocks)"; "FS writes/append"; "log writes/append"; "FS scatter (gaps)" ]
  in
  let sample at =
    (* Grow both to [at] blocks, then measure the next 50 appends. *)
    let size_blocks () = Baseline.Indirect_fs.size fs file / block in
    while size_blocks () < at do
      Util.ok (Baseline.Indirect_fs.append fs file chunk)
    done;
    Baseline.Rw_device.reset_counters dev;
    for _ = 1 to 50 do
      Util.ok (Baseline.Indirect_fs.append fs file chunk)
    done;
    let fs_writes = float_of_int (Baseline.Rw_device.writes dev) /. 50.0 in
    let st = Clio.Server.stats f.Util.srv in
    let flushed0 = st.Clio.Stats.blocks_flushed in
    for _ = 1 to 50 do
      ignore (Util.ok (Clio.Server.append f.Util.srv ~log chunk))
    done;
    let log_writes =
      float_of_int ((Clio.Server.stats f.Util.srv).Clio.Stats.blocks_flushed - flushed0) /. 50.0
    in
    let blocks = Baseline.Indirect_fs.blocks_of_file fs file in
    let gaps =
      let rec count = function
        | a :: (b :: _ as rest) -> (if b <> a + 1 then 1 else 0) + count rest
        | _ -> 0
      in
      count blocks
    in
    [
      string_of_int at;
      Printf.sprintf "%.2f" fs_writes;
      Printf.sprintf "%.2f" log_writes;
      string_of_int gaps;
    ]
  in
  Util.table ~columns (List.map sample [ 10; 260; 2_000; 20_000 ]);
  print_endline
    "  (as the file crosses into single- then double-indirect territory, every\n\
    \   append rewrites 3-4 blocks and the file scatters; the log file stays at\n\
    \   ~1 write per block regardless of size - the paper's core motivation)"

(* Sublogs: reading a sparse sublog vs scanning its parent. *)
let ablate_sublog () =
  Util.section "ABLATION - sublogs: selective retrieval vs scanning the parent (section 2.1)";
  let f = Util.make_fixture ~fanout:16 ~block_size:256 ~capacity:32768 ~cache_blocks:32768 () in
  let rare = Util.ok (Clio.Server.ensure_log f.Util.srv "/events/rare") in
  let busy = Util.ok (Clio.Server.ensure_log f.Util.srv "/events/busy") in
  let parent = Util.ok (Clio.Server.resolve f.Util.srv "/events") in
  for i = 0 to 9999 do
    if i mod 1000 = 0 then ignore (Util.ok (Clio.Server.append f.Util.srv ~log:rare "rare event"))
    else
      ignore
        (Util.ok (Clio.Server.append f.Util.srv ~log:busy (Printf.sprintf "busy %d padding" i)))
  done;
  ignore (Util.ok (Clio.Server.force f.Util.srv));
  let time_read log =
    let s0 = Clio.Stats.snapshot (Clio.Server.stats f.Util.srv) in
    let n = Util.ok (Clio.Server.fold_entries f.Util.srv ~log ~init:0 (fun n _ -> n + 1)) in
    let d = Clio.Stats.diff ~after:(Clio.Server.stats f.Util.srv) ~before:s0 in
    (n, d.Clio.Stats.locate_block_reads)
  in
  let n_rare, blocks_rare = time_read rare in
  let n_parent, blocks_parent = time_read parent in
  let columns = [ "read"; "entries"; "locate block reads" ] in
  Util.table ~columns
    [
      [ "/events/rare (sublog)"; string_of_int n_rare; string_of_int blocks_rare ];
      [ "/events (whole parent)"; string_of_int n_parent; string_of_int blocks_parent ];
    ];
  print_endline
    "  ('the sublog facility provides an additional way to efficiently locate a\n\
    \   small, selected set of entries within a larger log file')"

(* Swallow (section 5.1), measured on a working implementation: backward
   access is linear in version count, forward scanning reads the whole
   device, recovery rescans everything. *)
let ablate_swallow () =
  Util.section "ABLATION - Swallow object repository vs log files (section 5.1, measured)";
  let dev = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:256 ~capacity:40_000 ()) in
  let s = Baseline.Swallow.create dev in
  (* 50 objects, versions interleaved: object 0 gets 1 version per 100. *)
  for i = 1 to 30_000 do
    ignore (Util.ok (Baseline.Swallow.write_version s (if i mod 100 = 0 then 0 else 1 + (i mod 49)) "v"))
  done;
  (* The same history as a Clio sublog. *)
  let f = Util.make_fixture ~fanout:16 ~block_size:256 ~capacity:40_000 () in
  let rare = Util.ok (Clio.Server.ensure_log f.Util.srv "/obj0") in
  let busy = Util.ok (Clio.Server.ensure_log f.Util.srv "/others") in
  for i = 1 to 30_000 do
    ignore
      (Util.ok
         (Clio.Server.append f.Util.srv
            ~log:(if i mod 100 = 0 then rare else busy)
            (String.make 170 'v')))
  done;
  ignore (Util.ok (Clio.Server.force f.Util.srv));
  let columns = [ "operation"; "Swallow block reads"; "Clio block reads" ] in
  (* Backward: 50 versions of object 0 back. *)
  let _, sw_back = Util.ok (Baseline.Swallow.read_back s 0 ~steps:50) in
  Util.drop_caches f.Util.srv;
  let s0 = (Clio.Server.stats f.Util.srv).Clio.Stats.locate_block_reads in
  let c = Util.ok (Clio.Server.cursor_end f.Util.srv ~log:rare) in
  for _ = 1 to 51 do
    ignore (Util.ok (Clio.Server.prev c))
  done;
  let clio_back = (Clio.Server.stats f.Util.srv).Clio.Stats.locate_block_reads - s0 in
  (* Forward from the beginning: all versions of object 0. *)
  let _, sw_fwd = Util.ok (Baseline.Swallow.history_forward s 0 ~from_block:0) in
  Util.drop_caches f.Util.srv;
  let s0 = (Clio.Server.stats f.Util.srv).Clio.Stats.locate_block_reads in
  let n = Util.ok (Clio.Server.fold_entries f.Util.srv ~log:rare ~init:0 (fun n _ -> n + 1)) in
  let clio_fwd = (Clio.Server.stats f.Util.srv).Clio.Stats.locate_block_reads - s0 in
  (* Recovery. *)
  let sw_rebuild = Util.ok (Baseline.Swallow.rebuild_index s) in
  let recovered = Util.recover f in
  let clio_rebuild = (Clio.Server.stats recovered).Clio.Stats.recovery_blocks_examined in
  Util.table ~columns
    [
      [ "walk 50 versions back"; string_of_int sw_back; string_of_int clio_back ];
      [ Printf.sprintf "forward scan (all %d versions)" n; string_of_int sw_fwd;
        string_of_int clio_fwd ];
      [ "rebuild index after crash"; string_of_int sw_rebuild; string_of_int clio_rebuild ];
    ];
  print_endline
    "  ('it is impossible to scan forwards through an object history without\n\
    \   reading every subsequent block on the storage device' - and Swallow has no\n\
    \   entrymap, so recovery rescans the whole volume)"

(* Section 3.3.2's amortization: "if log entries are batched, so that each\n
   'long distance' read is followed by a large number of 'short distance'\n
   reads, then the cost of each long distance read is amortized". *)
let ablate_amortize () =
  Util.section "ABLATION - batched reads amortize the long-distance seek (section 3.3.2)";
  let columns = [ "batch size"; "modeled device ms total"; "ms per entry read" ] in
  let rows =
    List.map
      (fun batch ->
        let block_size = 256 in
        let clock = Sim.Clock.simulated () in
        let base = Worm.Mem_device.create ~block_size ~capacity:140_000 () in
        let timed = Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical (Worm.Mem_device.io base) in
        let alloc ~vol_index:_ = Ok (Worm.Timed_device.io timed) in
        let config = { Clio.Config.default with block_size; cache_blocks = 140_000 } in
        let srv = Util.ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
        let old = Util.ok (Clio.Server.ensure_log srv "/old") in
        let noise = Util.ok (Clio.Server.ensure_log srv "/noise") in
        (* A batch of old entries, then a long stretch of noise. *)
        for i = 1 to batch do
          ignore (Util.ok (Clio.Server.append srv ~log:old (Printf.sprintf "old %d %s" i (String.make 150 'o'))))
        done;
        for _ = 1 to 100_000 do
          ignore (Util.ok (Clio.Server.append srv ~log:noise (String.make 170 'n')))
        done;
        ignore (Util.ok (Clio.Server.force srv));
        Util.drop_caches srv;
        (* Park the head at the end (recent activity), then read the whole
           old batch. *)
        ignore (Util.ok (Clio.Server.last_entry srv ~log:noise));
        let busy0 = Worm.Timed_device.busy_us timed in
        let n = Util.ok (Clio.Server.fold_entries srv ~log:old ~init:0 (fun n _ -> n + 1)) in
        assert (n = batch);
        let ms = Int64.to_float (Int64.sub (Worm.Timed_device.busy_us timed) busy0) /. 1000.0 in
        [ string_of_int batch; Printf.sprintf "%.1f" ms; Printf.sprintf "%.2f" (ms /. float_of_int batch) ]
      )
      [ 1; 10; 100; 1000 ]
  in
  Util.table ~columns rows;
  print_endline
    "  (the first read pays the seeks; the rest of the batch is sequential and\n\
    \   nearly free, so cost per entry collapses with batch size)"

(* Section 3.3.1: "Extensive log reading interferes with the performance of
   log writing, and vice versa. Thus, the log device should ideally have
   separate read and write heads." Alternate old-entry reads with appends
   and compare modeled device time with one shared head vs two. *)
let ablate_heads () =
  Util.section "ABLATION - separate read/write heads (section 3.3.1)";
  let run ~separate_heads =
    let block_size = 256 in
    let clock = Sim.Clock.simulated () in
    let base = Worm.Mem_device.create ~block_size ~capacity:60_000 () in
    let timed =
      Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical ~separate_heads
        (Worm.Mem_device.io base)
    in
    let alloc ~vol_index:_ = Ok (Worm.Timed_device.io timed) in
    let config = { Clio.Config.default with block_size; cache_blocks = 64 } in
    let srv = Util.ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
    let old = Util.ok (Clio.Server.ensure_log srv "/old") in
    let live = Util.ok (Clio.Server.ensure_log srv "/live") in
    for i = 1 to 200 do
      ignore (Util.ok (Clio.Server.append srv ~log:old (Printf.sprintf "old %d %s" i (String.make 150 'o'))))
    done;
    for _ = 1 to 40_000 do
      ignore (Util.ok (Clio.Server.append srv ~log:live (String.make 170 'n')))
    done;
    ignore (Util.ok (Clio.Server.force srv));
    (* Mixed phase: audit reads far back interleaved with fresh appends. *)
    Util.drop_caches srv;
    let c = Util.ok (Clio.Server.cursor_end srv ~log:old) in
    let busy0 = Worm.Timed_device.busy_us timed in
    for _ = 1 to 100 do
      ignore (Util.ok (Clio.Server.prev c));
      ignore (Util.ok (Clio.Server.append ~force:true srv ~log:live (String.make 170 'w')))
    done;
    Int64.to_float (Int64.sub (Worm.Timed_device.busy_us timed) busy0) /. 1000.0
  in
  let shared = run ~separate_heads:false in
  let separate = run ~separate_heads:true in
  Util.table ~columns:[ "head configuration"; "modeled device ms (100 read+write pairs)" ]
    [
      [ "one shared head"; Printf.sprintf "%.0f" shared ];
      [ "separate read/write heads"; Printf.sprintf "%.0f" separate ];
    ];
  Printf.printf "  separate heads are %.1fx faster on the mixed workload\n" (shared /. separate);
  print_endline
    "  (with one head, every append drags the head back to the frontier and every\n\
    \   audit read drags it away again; with two, the write head stays parked)"

let run () =
  ablate_n ();
  ablate_force ();
  ablate_locate ();
  ablate_fs ();
  ablate_sublog ();
  ablate_swallow ();
  ablate_amortize ();
  ablate_heads ()
