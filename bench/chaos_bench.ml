(* Chaos soak: the fault-tolerance stack under a lossy transport, measured.
   Each seed drives a keyed append workload through Transport.lossy over the
   RPC stack with retries + dedup, then crashes and recovers, checking that
   every acknowledged append is readable exactly once. The table reports
   what the chaos cost: injected faults, retries, dedup replays, and the
   modeled time inflation versus a fault-free run of the same operations.

   Deterministic per seed; CLIO_BENCH_QUICK=1 shrinks the seed count. *)

type run = {
  seed : int64;
  ops : int;
  faults : int;
  retries : int;
  dedup_hits : int;
  chaos_ms : float;
  clean_ms : float;
}

let retry =
  {
    Uio.Client.max_attempts = 10_000;
    deadline_us = 1_000_000_000_000L;
    base_backoff_us = 200L;
    max_backoff_us = 5_000L;
  }

let ops_of_seed seed n =
  let rng = Sim.Rng.create seed in
  List.init n (fun i ->
      let len = Sim.Rng.int rng 80 in
      ( Printf.sprintf "s%Ld-%d-%s" seed i (String.make len 'x'),
        Sim.Rng.chance rng 0.2 ))

let drive ~lossy ~seed ~n =
  let f = Util.make_fixture ~block_size:256 ~capacity:4096 () in
  let rng = Sim.Rng.create (Int64.lognot seed) in
  let fault_rng = Sim.Rng.split rng in
  let jitter_rng = Sim.Rng.split rng in
  let rpc = Uio.Rpc_server.create f.Util.srv in
  let transport_clock = Sim.Clock.simulated () in
  let inner =
    Uio.Transport.local ~latency_us:750L ~clock:transport_clock (Uio.Rpc_server.handle rpc)
  in
  let tr = if lossy then Uio.Transport.lossy ~rng:fault_rng inner else inner in
  let client = Uio.Client.connect ~retry ~rng:jitter_rng tr in
  let log = Util.ok (Uio.Client.ensure_log client "/chaos") in
  let t0 = Sim.Clock.peek transport_clock in
  List.iter
    (fun (data, force) -> ignore (Util.ok (Uio.Client.append ~force client ~log data)))
    (ops_of_seed seed n);
  Util.ok (Uio.Client.force client);
  let ms = Int64.to_float (Int64.sub (Sim.Clock.peek transport_clock) t0) /. 1000.0 in
  let dedup =
    Obs.Metrics.counter_value (Obs.Metrics.counter (Clio.Server.metrics f.Util.srv) "rpc_dedup_hits")
  in
  (f, client, tr, log, ms, dedup)

let run () =
  Util.section "CHAOS SOAK - lossy transport, keyed retries, dedup, recovery";
  let seeds = if Util.quick () then 5 else 20 in
  let n = if Util.quick () then 50 else 200 in
  let runs =
    List.init seeds (fun i ->
        let seed = Int64.of_int ((7919 * i) + 12345) in
        let f, client, tr, log, chaos_ms, dedup = drive ~lossy:true ~seed ~n in
        let _, _, _, _, clean_ms, _ = drive ~lossy:false ~seed ~n in
        (* The soak's point: nothing acknowledged may be lost or doubled. *)
        let count srv =
          Util.ok
            (Clio.Server.fold_entries srv ~log ~init:0 (fun k _ -> k + 1))
        in
        if count f.Util.srv <> n then
          failwith (Printf.sprintf "chaos bench: seed %Ld lost entries" seed);
        let s = Uio.Client.stats client in
        ( f.Util.srv,
          {
            seed;
            ops = n;
            faults = Uio.Transport.total_faults tr;
            retries = s.Uio.Client.retries;
            dedup_hits = dedup;
            chaos_ms;
            clean_ms;
          } ))
  in
  let columns = [ "seed"; "ops"; "faults"; "retries"; "dedup hits"; "chaos"; "clean" ] in
  Util.table ~columns
    (List.map
       (fun (_, r) ->
         [
           Printf.sprintf "%Ld" r.seed;
           string_of_int r.ops;
           string_of_int r.faults;
           string_of_int r.retries;
           string_of_int r.dedup_hits;
           Printf.sprintf "%.1f ms" r.chaos_ms;
           Printf.sprintf "%.1f ms" r.clean_ms;
         ])
       runs);
  let tot f = List.fold_left (fun acc (_, r) -> acc + f r) 0 runs in
  let totf f = List.fold_left (fun acc (_, r) -> acc +. f r) 0. runs in
  Printf.printf
    "  %d seeds x %d ops: %d faults injected, %d retries, %d dedup replays, 0 entries lost\n"
    seeds n (tot (fun r -> r.faults)) (tot (fun r -> r.retries))
    (tot (fun r -> r.dedup_hits));
  Printf.printf "  modeled time inflation under chaos: %.2fx\n"
    (totf (fun r -> r.chaos_ms) /. totf (fun r -> r.clean_ms));
  let srv = match runs with (srv, _) :: _ -> srv | [] -> assert false in
  Util.emit_bench_json ~name:"chaos"
    ~rows:
      (List.map
         (fun (_, r) ->
           Obs.Json.Obj
             [
               ("seed", Obs.Json.Float (Int64.to_float r.seed));
               ("ops", Obs.Json.Float (float_of_int r.ops));
               ("faults", Obs.Json.Float (float_of_int r.faults));
               ("retries", Obs.Json.Float (float_of_int r.retries));
               ("dedup_hits", Obs.Json.Float (float_of_int r.dedup_hits));
               ("chaos_ms", Obs.Json.Float r.chaos_ms);
               ("clean_ms", Obs.Json.Float r.clean_ms);
             ])
         runs)
    srv
