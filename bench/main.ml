(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 3), plus the ablations listed in DESIGN.md.

     dune exec bench/main.exe             run everything
     dune exec bench/main.exe -- table1   run one section

   Section names: fig3 table1 write rpc fig4 space coldread read chaos repl
                  ablate-n ablate-force ablate-locate ablate-fs ablate-sublog
                  ablations (all five) *)

let sections : (string * (unit -> unit)) list =
  [
    ("fig3", Fig3.run);
    ("table1", Table1.run);
    ("write", Write_bench.run);
    ("rpc", Rpc_bench.run);
    ("fig4", Fig4.run);
    ("space", Space.run);
    ("coldread", Coldread.run);
    ("read", Read_bench.run);
    ("ablate-n", Ablations.ablate_n);
    ("ablate-force", Ablations.ablate_force);
    ("ablate-locate", Ablations.ablate_locate);
    ("ablate-fs", Ablations.ablate_fs);
    ("ablate-sublog", Ablations.ablate_sublog);
    ("ablate-swallow", Ablations.ablate_swallow);
    ("amortize", Ablations.ablate_amortize);
    ("ablate-heads", Ablations.ablate_heads);
    ("cache-econ", History_bench.cache_economics);
    ("delay", History_bench.delayed_write);
    ("chaos", Chaos_bench.run);
    ("repl", Repl_bench.run);
  ]

let usage () =
  prerr_endline "usage: main.exe [section ...]";
  prerr_endline ("sections: all " ^ String.concat " " (List.map fst sections) ^ " ablations");
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = if args = [] then [ "all" ] else args in
  print_endline "Clio benchmark harness - reproduces the evaluation of";
  print_endline "\"Log Files: An Extended File Service Exploiting Write-Once Storage\" (SOSP 1987)";
  List.iter
    (fun arg ->
      match arg with
      | "all" -> List.iter (fun (_, f) -> f ()) sections
      | "ablations" -> Ablations.run ()
      | name -> (
        match List.assoc_opt name sections with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown section %S\n" name;
          usage ()))
    args;
  print_newline ()
