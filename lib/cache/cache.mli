(** Segmented, scan-resistant block cache over a log device — the paper's
    shared "buffer pool".

    Clio was built as an extension of an existing file server precisely to
    reuse its block cache (section 2); the whole performance analysis of
    section 3.3 is phrased in terms of which entrymap and data blocks are
    cached. A single flat LRU serves that analysis poorly: one sequential
    cursor scan evicts the hot entrymap interior nodes every other locate
    depends on. This cache therefore splits residency into

    - a {e meta} partition for entrymap/metadata blocks (never displaced by
      data traffic), and
    - a {e data} partition run as a segmented LRU: first touch lands in a
      probation segment, a second touch promotes to a protected segment, and
      the protected victim is demoted back to probation. A one-pass scan
      churns probation only.

    The cache presents the same {!Worm.Block_io.t} interface downstream
    (including a batched [read_many] that forwards misses to the device in
    one call), so server code is oblivious to caching. Because the medium is
    write-once, cached blocks can never go stale — except through
    invalidation, which evicts. *)

type t

(** Which partition a block belongs in. *)
type partition = Meta | Data

(** Per-partition counters, for {!Server.metrics_json} and benches. *)
type segment_stats = {
  meta_hits : int;
  meta_misses : int;
  data_hits : int;
  data_misses : int;
  meta_resident : int;
  probation_resident : int;
  protected_resident : int;
  meta_evictions : int;
  data_evictions : int;
  promotions : int;  (** probation → protected moves (second touches) *)
}

val create :
  ?capacity_blocks:int ->
  ?meta_blocks:int ->
  ?classify:(bytes -> partition) ->
  ?metrics:Obs.Metrics.t ->
  Worm.Block_io.t ->
  t
(** [capacity_blocks] defaults to 1024 (1 MB of 1 KB blocks) and is split
    between the partitions: [meta_blocks] (default 1/8th) for the meta side,
    the rest for data, itself split evenly between probation and protected.
    [classify] decides a fetched/appended block's partition (default:
    everything [Data]). When [metrics] is given, per-partition hits, misses
    and evictions are mirrored into its shared [cache_*] counters. *)

val io : t -> Worm.Block_io.t
(** The caching view. Appended blocks are inserted into the cache on the way
    down (the paper's "log entry in the block cache" write path). Reads
    return a private copy: mutating a returned block never corrupts the
    cache's resident buffer. *)

val hits : t -> int
val misses : t -> int
val resident : t -> int

val segments : t -> segment_stats

val contains : t -> int -> bool
(** True if block [idx] is cached in any partition (does not promote). *)

val preload : t -> int -> (unit, Worm.Block_io.error) result
(** Force block [idx] into the cache — used by benchmarks that measure the
    fully-cached costs of Table 1. *)

val drop : t -> unit
(** Empty every partition (cold-cache experiments). *)

val reset_counters : t -> unit
