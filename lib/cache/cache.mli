(** Block cache over a log device — the paper's shared "buffer pool".

    Clio was built as an extension of an existing file server precisely to
    reuse its block cache (section 2); the whole performance analysis of
    section 3.3 is phrased in terms of which entrymap and data blocks are
    cached. This module provides read-through caching with hit/miss counters
    and presents the same {!Worm.Block_io.t} interface downstream, so the
    server code is oblivious to caching.

    Because the medium is write-once, cached blocks can never go stale —
    except through invalidation, which evicts. *)

type t

val create : ?capacity_blocks:int -> ?metrics:Obs.Metrics.t -> Worm.Block_io.t -> t
(** [capacity_blocks] defaults to 1024 (1 MB of 1 KB blocks). When [metrics]
    is given, hits and misses are mirrored into its shared [cache_hits] /
    [cache_misses] counters (on top of this cache's own counters). *)

val io : t -> Worm.Block_io.t
(** The caching view. Appended blocks are inserted into the cache on the way
    down (the paper's "log entry in the block cache" write path). Reads
    return a private copy: mutating a returned block never corrupts the
    cache's resident buffer. *)

val hits : t -> int
val misses : t -> int
val resident : t -> int

val contains : t -> int -> bool
(** True if block [idx] is cached (does not promote). *)

val preload : t -> int -> (unit, Worm.Block_io.error) result
(** Force block [idx] into the cache — used by benchmarks that measure the
    fully-cached costs of Table 1. *)

val drop : t -> unit
(** Empty the cache (cold-cache experiments). *)

val reset_counters : t -> unit
