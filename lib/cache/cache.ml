type t = {
  inner : Worm.Block_io.t;
  lru : bytes Lru.t;
  mutable hits : int;
  mutable misses : int;
  obs_hits : Obs.Metrics.counter option;
  obs_misses : Obs.Metrics.counter option;
}

let create ?(capacity_blocks = 1024) ?metrics inner =
  let obs_hits = Option.map (fun m -> Obs.Metrics.counter m "cache_hits") metrics in
  let obs_misses = Option.map (fun m -> Obs.Metrics.counter m "cache_misses") metrics in
  { inner; lru = Lru.create ~capacity:capacity_blocks; hits = 0; misses = 0; obs_hits; obs_misses }

let bump c = match c with Some c -> Obs.Metrics.incr c | None -> ()

(* Cached blocks are handed out as copies in both directions: the cache owns
   its buffers exclusively. Returning the resident [bytes] aliased let a
   caller's in-place mutation silently corrupt every later hit (and any CRC
   check made against it). *)
let read t idx : (bytes, Worm.Block_io.error) result =
  match Lru.find t.lru idx with
  | Some b ->
    t.hits <- t.hits + 1;
    bump t.obs_hits;
    Ok (Bytes.copy b)
  | None -> (
    t.misses <- t.misses + 1;
    bump t.obs_misses;
    match t.inner.Worm.Block_io.read idx with
    | Ok b ->
      ignore (Lru.add t.lru idx (Bytes.copy b));
      Ok b
    | Error _ as e -> e)

let append t data =
  match t.inner.Worm.Block_io.append data with
  | Ok idx ->
    ignore (Lru.add t.lru idx (Bytes.copy data));
    Ok idx
  | Error _ as e -> e

let invalidate t idx =
  Lru.remove t.lru idx;
  t.inner.Worm.Block_io.invalidate idx

let io t : Worm.Block_io.t =
  {
    t.inner with
    read = read t;
    append = append t;
    invalidate = invalidate t;
  }

let hits t = t.hits
let misses t = t.misses
let resident t = Lru.length t.lru
let contains t idx = Lru.peek t.lru idx <> None

let preload t idx =
  match read t idx with Ok _ -> Ok () | Error e -> Error e

let drop t = Lru.clear t.lru

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
