type partition = Meta | Data

type segment_stats = {
  meta_hits : int;
  meta_misses : int;
  data_hits : int;
  data_misses : int;
  meta_resident : int;
  probation_resident : int;
  protected_resident : int;
  meta_evictions : int;
  data_evictions : int;
  promotions : int;
}

type t = {
  inner : Worm.Block_io.t;
  meta : bytes Lru.t;
  probation : bytes Lru.t;
  protected : bytes Lru.t;
  classify : bytes -> partition;
  mutable hits : int;
  mutable misses : int;
  mutable meta_hits : int;
  mutable meta_misses : int;
  mutable data_hits : int;
  mutable data_misses : int;
  mutable meta_evictions : int;
  mutable data_evictions : int;
  mutable promotions : int;
  obs_hits : Obs.Metrics.counter option;
  obs_misses : Obs.Metrics.counter option;
  obs_meta_hits : Obs.Metrics.counter option;
  obs_meta_misses : Obs.Metrics.counter option;
  obs_data_hits : Obs.Metrics.counter option;
  obs_data_misses : Obs.Metrics.counter option;
  obs_evictions : Obs.Metrics.counter option;
}

let create ?(capacity_blocks = 1024) ?meta_blocks ?(classify = fun _ -> Data) ?metrics inner =
  let c name = Option.map (fun m -> Obs.Metrics.counter m name) metrics in
  (* The entrymap interior nodes every locate descends through are a small
     fraction of the traffic but the highest-value residents; they get their
     own partition so a data scan can never push them out. The data side is
     segmented LRU: first touch lands in probation, only a second touch earns
     protected residency, so a one-pass scan churns probation alone. *)
  let meta_cap =
    match meta_blocks with Some m -> max 1 m | None -> max 1 (capacity_blocks / 8)
  in
  let data_cap = max 2 (capacity_blocks - meta_cap) in
  let probation_cap = max 1 (data_cap / 2) in
  let protected_cap = max 1 (data_cap - probation_cap) in
  {
    inner;
    meta = Lru.create ~capacity:meta_cap;
    probation = Lru.create ~capacity:probation_cap;
    protected = Lru.create ~capacity:protected_cap;
    classify;
    hits = 0;
    misses = 0;
    meta_hits = 0;
    meta_misses = 0;
    data_hits = 0;
    data_misses = 0;
    meta_evictions = 0;
    data_evictions = 0;
    promotions = 0;
    obs_hits = c "cache_hits";
    obs_misses = c "cache_misses";
    obs_meta_hits = c "cache_meta_hits";
    obs_meta_misses = c "cache_meta_misses";
    obs_data_hits = c "cache_data_hits";
    obs_data_misses = c "cache_data_misses";
    obs_evictions = c "cache_evictions";
  }

let bump c = match c with Some c -> Obs.Metrics.incr c | None -> ()

let count_hit t p =
  t.hits <- t.hits + 1;
  bump t.obs_hits;
  match p with
  | Meta ->
    t.meta_hits <- t.meta_hits + 1;
    bump t.obs_meta_hits
  | Data ->
    t.data_hits <- t.data_hits + 1;
    bump t.obs_data_hits

let count_miss_partition t p =
  match p with
  | Meta ->
    t.meta_misses <- t.meta_misses + 1;
    bump t.obs_meta_misses
  | Data ->
    t.data_misses <- t.data_misses + 1;
    bump t.obs_data_misses

(* Resident lookup with the segmented promotion policy: a probation hit is
   the block's second touch, which moves it to the protected segment; the
   protected segment's own LRU victim is demoted back to probation (one more
   chance) rather than dropped outright. *)
let find_resident t idx =
  match Lru.find t.meta idx with
  | Some b -> Some (Meta, b)
  | None -> (
    match Lru.find t.protected idx with
    | Some b -> Some (Data, b)
    | None -> (
      match Lru.find t.probation idx with
      | Some b ->
        Lru.remove t.probation idx;
        (match Lru.add t.protected idx b with
        | Some (k, v) -> (
          match Lru.add t.probation k v with
          | Some _ ->
            t.data_evictions <- t.data_evictions + 1;
            bump t.obs_evictions
          | None -> ())
        | None -> ());
        t.promotions <- t.promotions + 1;
        Some (Data, b)
      | None -> None))

let insert t idx b =
  let p = t.classify b in
  (match p with
  | Meta -> (
    match Lru.add t.meta idx (Bytes.copy b) with
    | Some _ ->
      t.meta_evictions <- t.meta_evictions + 1;
      bump t.obs_evictions
    | None -> ())
  | Data -> (
    match Lru.add t.probation idx (Bytes.copy b) with
    | Some _ ->
      t.data_evictions <- t.data_evictions + 1;
      bump t.obs_evictions
    | None -> ()));
  p

(* Cached blocks are handed out as copies in both directions: the cache owns
   its buffers exclusively. Returning the resident [bytes] aliased let a
   caller's in-place mutation silently corrupt every later hit (and any CRC
   check made against it). *)
let read t idx : (bytes, Worm.Block_io.error) result =
  match find_resident t idx with
  | Some (p, b) ->
    count_hit t p;
    Ok (Bytes.copy b)
  | None -> (
    t.misses <- t.misses + 1;
    bump t.obs_misses;
    match t.inner.Worm.Block_io.read idx with
    | Ok b ->
      count_miss_partition t (insert t idx b);
      Ok b
    | Error _ as e -> e)

(* Batched read: resident blocks are served (and promoted) from the cache;
   the misses go to the device in one [read_many] call, so a seek-charging
   device pays one head movement per contiguous run of absent blocks. *)
let read_many t idxs : (bytes, Worm.Block_io.error) result list =
  let first_pass =
    List.map
      (fun idx ->
        match find_resident t idx with
        | Some (p, b) ->
          count_hit t p;
          (idx, Some (Ok (Bytes.copy b)))
        | None ->
          t.misses <- t.misses + 1;
          bump t.obs_misses;
          (idx, None))
      idxs
  in
  let missing = List.filter_map (fun (idx, r) -> if r = None then Some idx else None) first_pass in
  let fetched =
    if missing = [] then []
    else
      List.combine missing (Worm.Block_io.read_many t.inner missing)
  in
  List.iter
    (fun (idx, r) -> match r with Ok b -> ignore (count_miss_partition t (insert t idx b)) | Error _ -> ())
    fetched;
  let remaining = ref fetched in
  List.map
    (fun (_, r) ->
      match r with
      | Some r -> r
      | None ->
        let _, r = List.hd !remaining in
        remaining := List.tl !remaining;
        r)
    first_pass

let append t data =
  match t.inner.Worm.Block_io.append data with
  | Ok idx ->
    ignore (insert t idx data);
    Ok idx
  | Error _ as e -> e

let invalidate t idx =
  Lru.remove t.meta idx;
  Lru.remove t.probation idx;
  Lru.remove t.protected idx;
  t.inner.Worm.Block_io.invalidate idx

let io t : Worm.Block_io.t =
  {
    t.inner with
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
  }

let hits t = t.hits
let misses t = t.misses
let resident t = Lru.length t.meta + Lru.length t.probation + Lru.length t.protected

let contains t idx =
  Lru.peek t.meta idx <> None
  || Lru.peek t.probation idx <> None
  || Lru.peek t.protected idx <> None

let segments t =
  {
    meta_hits = t.meta_hits;
    meta_misses = t.meta_misses;
    data_hits = t.data_hits;
    data_misses = t.data_misses;
    meta_resident = Lru.length t.meta;
    probation_resident = Lru.length t.probation;
    protected_resident = Lru.length t.protected;
    meta_evictions = t.meta_evictions;
    data_evictions = t.data_evictions;
    promotions = t.promotions;
  }

let preload t idx =
  match read t idx with Ok _ -> Ok () | Error e -> Error e

let drop t =
  Lru.clear t.meta;
  Lru.clear t.probation;
  Lru.clear t.protected

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.meta_hits <- 0;
  t.meta_misses <- 0;
  t.data_hits <- 0;
  t.data_misses <- 0;
  t.meta_evictions <- 0;
  t.data_evictions <- 0;
  t.promotions <- 0
