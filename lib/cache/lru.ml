type 'a node = {
  key : int;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* least recently used *)
}

let create ~capacity =
  assert (capacity > 0);
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
    unlink t n;
    push_front t n;
    Some n.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some n -> Some n.value

let add t k v =
  (match Hashtbl.find_opt t.table k with
  | Some n ->
    n.value <- v;
    unlink t n;
    push_front t n
  | None ->
    let n = { key = k; value = v; prev = None; next = None } in
    Hashtbl.replace t.table k n;
    push_front t n);
  if Hashtbl.length t.table > t.capacity then
    match t.tail with
    | None -> None
    | Some lru ->
      unlink t lru;
      Hashtbl.remove t.table lru.key;
      Some (lru.key, lru.value)
  else None

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      f n.key n.value;
      go n.next
  in
  go t.head

let keys_mru_order t =
  let acc = ref [] in
  iter t (fun k _ -> acc := k :: !acc);
  List.rev !acc
