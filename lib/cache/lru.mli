(** Bounded least-recently-used map with integer keys.

    The block cache's eviction structure. O(1) find / add / touch / evict via
    a hash table over an intrusive doubly-linked list. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] must be positive. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> int -> 'a option
(** [find t k] returns the value and promotes [k] to most-recently-used. *)

val peek : 'a t -> int -> 'a option
(** Like {!find} without promoting. *)

val add : 'a t -> int -> 'a -> (int * 'a) option
(** [add t k v] inserts or replaces the binding, promoting it; returns the
    evicted (key, value) if the capacity was exceeded. *)

val remove : 'a t -> int -> unit
val clear : 'a t -> unit

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Iterates from most- to least-recently-used. *)

val keys_mru_order : 'a t -> int list
