type t =
  | Simulated of { mutable current : int64; tick : int64 }
  | Wall

let now = function
  | Simulated s ->
    let v = s.current in
    s.current <- Int64.add s.current s.tick;
    v
  | Wall -> Int64.of_float (Unix.gettimeofday () *. 1e6)

let advance t us =
  match t with
  | Simulated s -> s.current <- Int64.add s.current us
  | Wall -> ()

let peek = function
  | Simulated s -> s.current
  | Wall -> Int64.of_float (Unix.gettimeofday () *. 1e6)

let simulated ?(start = 0L) ?(tick = 1L) () = Simulated { current = start; tick }

let wall () = Wall
