(** Time sources.

    All Clio timestamps are microseconds since an arbitrary epoch, as
    [int64]. The log server takes an explicit clock so tests and benchmarks
    run on simulated time while the CLI uses wall-clock time. *)

type t

val now : t -> int64
(** [now t] returns the current time in microseconds. On a simulated clock
    each call advances time by the clock's tick, so successive timestamps are
    strictly increasing (the paper relies on timestamp monotonicity within a
    volume for time search). *)

val advance : t -> int64 -> unit
(** [advance t us] moves a simulated clock forward by [us] microseconds.
    No-op on a wall clock. *)

val peek : t -> int64
(** [peek t] reads the current time without advancing a simulated clock. *)

val simulated : ?start:int64 -> ?tick:int64 -> unit -> t
(** [simulated ()] is a deterministic clock starting at [start] (default 0)
    advancing by [tick] (default 1 microsecond) per [now] call. *)

val wall : unit -> t
(** [wall ()] reads [Unix.gettimeofday]. *)
