type t = {
  name : string;
  seek_us : dist:int -> int64;
  transfer_us : bytes:int -> int64;
}

(* Seek cost: nothing on-track, a small head-switch cost for near-sequential
   movement (streaming within a track group), and settle + sweep
   proportional to distance for real seeks — calibrated so that the mean
   random seek on a 1 GB / 1 KB-block device (expected distance = capacity/3
   ~ 349k blocks) lands near the figure quoted in the paper. *)
let linear_seek ~track_blocks ~track_us ~settle_us ~us_per_1k_blocks ~dist =
  if dist = 0 then 0L
  else if dist <= track_blocks then track_us
  else Int64.add settle_us (Int64.of_int (dist * us_per_1k_blocks / 1000))

let optical =
  {
    name = "optical-worm";
    (* 35 ms settle + 330 us per 1k blocks: mean seek over 1M blocks is
       35 ms + 349k * 0.33 us ~ 150 ms, matching [Bell 84]. Sequential
       movement within a ~32-block track costs a 2 ms head step. *)
    seek_us =
      (fun ~dist ->
        linear_seek ~track_blocks:32 ~track_us:2_000L ~settle_us:35_000L
          ~us_per_1k_blocks:330 ~dist);
    transfer_us = (fun ~bytes -> Int64.of_int (bytes * 10 / 6));
  }

let magnetic =
  {
    name = "magnetic";
    (* 8 ms settle + 63 us per 1k blocks: mean seek over 1M blocks ~ 30 ms;
       track-to-track ~1 ms. *)
    seek_us =
      (fun ~dist ->
        linear_seek ~track_blocks:32 ~track_us:1_000L ~settle_us:8_000L ~us_per_1k_blocks:63
          ~dist);
    transfer_us = (fun ~bytes -> Int64.of_int bytes);
  }

let ram =
  {
    name = "ram";
    seek_us = (fun ~dist:_ -> 0L);
    transfer_us = (fun ~bytes -> Int64.of_int (bytes / 100));
  }

let uniform ~name ~per_op_us =
  {
    name;
    seek_us = (fun ~dist -> if dist = 0 then 0L else per_op_us);
    transfer_us = (fun ~bytes:_ -> 0L);
  }

let average_seek_us t ~capacity = t.seek_us ~dist:(max 1 (capacity / 3))
