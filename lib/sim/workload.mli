(** Synthetic workload generators.

    Each generator produces a deterministic stream of [record]s — (log path,
    payload, inter-arrival time) triples — from an {!Rng.t} seed. These stand
    in for the traces the paper measured (the V-System login/logout log of
    section 3.5, mail delivery of section 4.2, transaction commits of
    section 2.1, and the Ousterhout BSD trace characteristics cited in
    section 4.1). *)

type record = {
  path : string;  (** target log file, as a slash-separated sublog path *)
  payload : string;  (** client data bytes *)
  gap_us : int64;  (** inter-arrival time before this record *)
  forced : bool;  (** whether the client requires a synchronous force *)
}

val login_trace :
  rng:Rng.t -> users:int -> events:int -> mean_gap_us:float -> record list
(** Login/logout records as in section 3.5: small fixed-format entries
    ("in"/"out", user, tty) written to per-user sublogs of "/usage". With
    1 KB blocks the default record size gives c (entry/block ratio) close to
    the paper's measured 1/15, and the user count controls a (active files
    per entrymap entry). *)

val mail_trace :
  rng:Rng.t ->
  mailboxes:int ->
  messages:int ->
  mean_body:int ->
  mean_gap_us:float ->
  record list
(** Mail deliveries to "/mail/<user>" sublogs (section 4.2): bodies are
    exponentially sized around [mean_body]. *)

val transaction_trace :
  rng:Rng.t -> streams:int -> commits:int -> mean_update:int -> record list
(** Database-style transaction logging (section 2.1): every commit record is
    forced (synchronous), exercising the forced-write / internal
    fragmentation path. *)

val churn_trace :
  rng:Rng.t -> files:int -> writes:int -> short_lived_fraction:float -> record list
(** File-update records in the style of Ousterhout's BSD analysis cited in
    section 4.1: a [short_lived_fraction] of writes go to files that are
    immediately superseded (candidates for delayed-write elision). *)

val uniform_entries :
  rng:Rng.t -> path:string -> count:int -> size:int -> record list
(** [count] equal-sized entries to one log file; the building block for the
    evaluation-section micro-benchmarks. *)

val total_payload : record list -> int
(** Sum of payload sizes, for space-overhead accounting. *)
