(** Storage-device timing models.

    The paper's evaluation reasons about the large cost asymmetry between a
    cached block access (~0.6 ms), a magnetic-disk read (~30 ms average
    seek) and an optical-disk read (~150 ms average seek, [Bell 84]). A
    [Seek_model.t] converts a head movement plus a transfer into simulated
    microseconds; {!Worm.Timed_device} charges these against a
    {!Sim.Clock}. *)

type t = {
  name : string;
  seek_us : dist:int -> int64;
      (** Cost to move the head [dist] blocks (0 = already on track). *)
  transfer_us : bytes:int -> int64;  (** Cost to transfer [bytes]. *)
}

val optical : t
(** 12-inch write-once optical disk, average seek ~150 ms: modeled as
    35 ms settle + distance-proportional sweep (2 ms track-to-track for
    near-sequential movement), 0.6 MB/s transfer. *)

val magnetic : t
(** Magnetic disk of the era: average seek ~30 ms (1 ms track-to-track),
    1 MB/s transfer. *)

val ram : t
(** Battery-backed RAM / main memory: no seek, 10 ns/byte. *)

val uniform : name:string -> per_op_us:int64 -> t
(** A flat per-operation cost, for controlled experiments. *)

val average_seek_us : t -> capacity:int -> int64
(** Monte-Carlo-free estimate of the mean seek cost over uniformly random
    head movements on a device with [capacity] blocks (uses the expected
    distance [capacity/3]). *)
