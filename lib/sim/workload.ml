type record = {
  path : string;
  payload : string;
  gap_us : int64;
  forced : bool;
}

let gap rng mean = Int64.of_float (Rng.exponential rng mean)

let login_trace ~rng ~users ~events ~mean_gap_us =
  (* Sessions alternate in/out per user; the record format mimics a wtmp
     line: direction, user name, tty, padded to ~60 bytes so that with 1 KB
     blocks c ~ 1/15 as measured in section 3.5. *)
  let logged_in = Array.make users false in
  let make _ =
    let u = Rng.int rng users in
    let dir = if logged_in.(u) then "out" else "in" in
    logged_in.(u) <- not logged_in.(u);
    let line = Printf.sprintf "%-3s user%04d tty%02d" dir u (Rng.int rng 32) in
    let payload = line ^ String.make (max 0 (60 - String.length line)) ' ' in
    {
      path = Printf.sprintf "/usage/user%04d" u;
      payload;
      gap_us = gap rng mean_gap_us;
      forced = false;
    }
  in
  List.init events make

let mail_trace ~rng ~mailboxes ~messages ~mean_body ~mean_gap_us =
  let make i =
    let u = Rng.int rng mailboxes in
    let body_len = max 16 (int_of_float (Rng.exponential rng (float_of_int mean_body))) in
    let header = Printf.sprintf "From: user%d@host\nSubject: msg %d\n\n" (Rng.int rng 64) i in
    let body = String.init body_len (fun j -> Char.chr (97 + ((i + j) mod 26))) in
    {
      path = Printf.sprintf "/mail/user%03d" u;
      payload = header ^ body;
      gap_us = gap rng mean_gap_us;
      forced = false;
    }
  in
  List.init messages make

let transaction_trace ~rng ~streams ~commits ~mean_update =
  let make i =
    let s = Rng.int rng streams in
    let len = max 8 (int_of_float (Rng.exponential rng (float_of_int mean_update))) in
    let payload =
      Printf.sprintf "txn %08d " i ^ String.init len (fun j -> Char.chr (48 + ((i * 7 + j) mod 10)))
    in
    {
      path = Printf.sprintf "/txn/stream%02d" s;
      payload;
      gap_us = gap rng 500.0;
      forced = true;
    }
  in
  List.init commits make

let churn_trace ~rng ~files ~writes ~short_lived_fraction =
  let make i =
    let short = Rng.chance rng short_lived_fraction in
    let f = if short then Rng.int rng (max 1 (files / 10)) else Rng.int rng files in
    let payload = Printf.sprintf "update %d of file%04d %s" i f (String.make 40 'x') in
    {
      path = Printf.sprintf "/fs/file%04d" f;
      payload;
      gap_us = gap rng 2000.0;
      forced = false;
    }
  in
  List.init writes make

let uniform_entries ~rng ~path ~count ~size =
  let make i =
    let payload = String.init size (fun j -> Char.chr (32 + ((i + j) mod 95))) in
    { path; payload; gap_us = gap rng 100.0; forced = false }
  in
  List.init count make

let total_payload records =
  List.fold_left (fun acc r -> acc + String.length r.payload) 0 records
