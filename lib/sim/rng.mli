(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the simulator takes an explicit [Rng.t] so
    that tests, benchmarks and fault-injection runs are reproducible from a
    seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] returns a uniform value in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform value in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean; used for inter-arrival times in workload generators. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)
