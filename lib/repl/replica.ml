(* A read replica: raw WORM devices populated exclusively by the primary's
   shipper, a server rebuilt from them on demand, and an RPC endpoint that
   intercepts Repl_* traffic before the plain dispatcher sees it.

   The invariant everything rests on: the replica's devices are written only
   by [apply] (verbatim shipped bytes, in order, at the shipped indices), so
   they are byte-identical to the primary's settled storage up to the
   frontier. The server layered on top is therefore the same server recovery
   would build on the primary after a crash — replication is recovery,
   continuously. *)

type t = {
  config : Clio.Config.t;
  clock : Sim.Clock.t;
  nvram : Worm.Nvram.t option;
  alloc : vol_index:int -> (Worm.Block_io.t, Clio.Errors.t) result;
      (** hands out the raw device backing a newly shipped volume *)
  primary_hint : string;
  devices : (int, Worm.Block_io.t) Hashtbl.t;  (** vol_index -> raw device *)
  mutable epoch : int;
  mutable seq_uid : int64;  (** 0L until the first shipment names one *)
  mutable promoted : bool;
  mutable srv : Clio.Server.t option;  (** None until first rebuild *)
  mutable rpc : Uio.Rpc_server.t option;
  mutable dirty : bool;  (** devices/NVRAM changed since [srv] was built *)
  (* Lifetime counters. A rebuild starts a fresh [Stats.t], so the replica
     carries these across and writes them back into each new server. *)
  mutable blocks_applied : int;
  mutable tail_applies : int;
  mutable epoch_rejects : int;
}

let ( let* ) = Clio.Errors.( let* )

let create ?config ?nvram ~clock ~alloc ~primary_hint () =
  {
    config = (match config with Some c -> c | None -> Clio.Config.default);
    clock;
    nvram;
    alloc;
    primary_hint;
    devices = Hashtbl.create 4;
    epoch = 1;
    seq_uid = 0L;
    promoted = false;
    srv = None;
    rpc = None;
    dirty = false;
    blocks_applied = 0;
    tail_applies = 0;
    epoch_rejects = 0;
  }

let epoch t = t.epoch
let blocks_applied t = t.blocks_applied
let tail_applies t = t.tail_applies
let epoch_rejects t = t.epoch_rejects

let nvols t = Hashtbl.length t.devices

let device t i = Hashtbl.find_opt t.devices i

let frontier_of dev =
  match dev.Worm.Block_io.frontier () with Some f -> f | None -> 0

let role t : Clio.State.role =
  if t.promoted then Clio.State.Primary { epoch = t.epoch }
  else Clio.State.Replica { epoch = t.epoch; primary_hint = t.primary_hint }

let carry_counters t srv =
  let s = Clio.Server.stats srv in
  ignore (Clio.Stats.set_field s "repl_blocks_applied" t.blocks_applied);
  ignore (Clio.Stats.set_field s "repl_tail_applies" t.tail_applies);
  ignore (Clio.Stats.set_field s "repl_epoch_rejects" t.epoch_rejects)

(* Recovery over the shipped devices — exactly the code path a rebooted
   primary runs, so catalog, entrymaps and the NVRAM-staged tail replay
   identically. The rebuilt server is then demoted to its real role. *)
let rebuild t =
  let devices =
    Hashtbl.fold (fun i d acc -> (i, d) :: acc) t.devices []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  if devices = [] then Error (Clio.Errors.Bad_record "replica holds no volumes yet")
  else
    let alloc_volume ~vol_index:_ = Error (Clio.Errors.Not_primary t.primary_hint) in
    let* srv =
      Clio.Server.recover ~config:t.config ~clock:t.clock ?nvram:t.nvram ~alloc_volume
        ~devices ()
    in
    Clio.Server.set_role srv (role t);
    carry_counters t srv;
    t.srv <- Some srv;
    (match t.rpc with
    | None -> t.rpc <- Some (Uio.Rpc_server.create srv)
    | Some rpc -> Uio.Rpc_server.set_server rpc srv);
    t.dirty <- false;
    Ok srv

let server t =
  match t.srv with
  | Some srv when not t.dirty -> Ok srv
  | _ -> rebuild t

(* Drop the staged tail image once applied settled blocks have passed the
   block it names: the settled bytes supersede it. Without this, a tail that
   the primary's bad-block retry displaced to a later index would survive
   the recovery stale-check (the named block reads back invalidated, not
   valid) and resurrect already-settled entries on promotion. *)
let drop_stale_tail t ~frontier =
  match t.nvram with
  | None -> ()
  | Some nv -> (
    match Worm.Nvram.load nv with
    | Some (block, _) when block < frontier -> Worm.Nvram.clear nv
    | _ -> ())

let ack t ~vol_index ~next_block =
  Uio.Message.R_repl_ack { epoch = t.epoch; vol_index; next_block }

let apply_blocks t ~seq_uid ~vol_index ~first_block blocks =
  if t.seq_uid <> 0L && seq_uid <> t.seq_uid then
    Error (Clio.Errors.Bad_record "replication shipment from a different volume sequence")
  else begin
    t.seq_uid <- seq_uid;
    match device t vol_index with
    | None when vol_index <> nvols t || first_block <> 0 ->
      (* A volume we have never seen must arrive from its header on;
         NACK-ack frontier 0 so the shipper restarts that stream. *)
      Ok (ack t ~vol_index ~next_block:0)
    | found ->
      let* dev =
        match found with
        | Some d -> Ok d
        | None ->
          let* d = t.alloc ~vol_index in
          Hashtbl.replace t.devices vol_index d;
          Ok d
      in
      let frontier = frontier_of dev in
      if first_block > frontier then
        (* Gap: an earlier shipment was lost. NACK-ack where we really are. *)
        Ok (ack t ~vol_index ~next_block:frontier)
      else begin
        (* Skip the prefix we already hold (idempotent re-delivery), append
           the rest in order, insisting the device lands each block exactly
           where the primary had it. *)
        let rec go idx = function
          | [] -> Ok ()
          | image :: rest ->
            if idx < frontier then go (idx + 1) rest
            else if String.length image <> dev.Worm.Block_io.block_size then
              Error (Clio.Errors.Bad_record "shipped block has the wrong size")
            else begin
              match dev.Worm.Block_io.append (Bytes.of_string image) with
              | Ok got when got = idx ->
                t.blocks_applied <- t.blocks_applied + 1;
                t.dirty <- true;
                go (idx + 1) rest
              | Ok got ->
                Error
                  (Clio.Errors.Bad_record
                     (Printf.sprintf "replica device diverged: block %d landed at %d" idx got))
              | Error e -> Error (Clio.Errors.Device e)
            end
        in
        let* () = go first_block blocks in
        let f = frontier_of dev in
        drop_stale_tail t ~frontier:f;
        Ok (ack t ~vol_index ~next_block:f)
      end
  end

let apply_tail t ~seq_uid ~vol_index ~block image =
  if t.seq_uid <> 0L && seq_uid <> t.seq_uid then
    Error (Clio.Errors.Bad_record "replication shipment from a different volume sequence")
  else
    match device t vol_index with
    | None -> Ok (ack t ~vol_index ~next_block:0)
    | Some dev ->
      let frontier = frontier_of dev in
      (* Only a fully caught-up replica stages the tail: the image is
         meaningful only at the exact frontier, and only for the active
         (last) volume. A lagging replica acks its unchanged frontier. *)
      (if frontier = block && vol_index = nvols t - 1 then
         match t.nvram with
         | Some nv ->
           Worm.Nvram.store nv ~block (Bytes.of_string image);
           t.tail_applies <- t.tail_applies + 1;
           t.dirty <- true
         | None -> ());
      Ok (ack t ~vol_index ~next_block:frontier)

let frontiers t =
  List.init (nvols t) (fun i ->
      (i, match device t i with Some d -> frontier_of d | None -> 0))

(* Epoch gate, shared by every Repl_* message. A stale sender gets
   [Stale_epoch] (that is how a deposed primary learns it was fenced); a
   newer epoch is adopted — if we had promoted ourselves, a newer primary
   re-demotes us. *)
let check_epoch t e =
  if e < t.epoch then begin
    t.epoch_rejects <- t.epoch_rejects + 1;
    (match t.srv with Some srv -> carry_counters t srv | None -> ());
    Error (Clio.Errors.Stale_epoch t.epoch)
  end
  else begin
    if e > t.epoch then begin
      t.epoch <- e;
      t.promoted <- false;
      match t.srv with Some srv -> Clio.Server.set_role srv (role t) | None -> ()
    end;
    Ok ()
  end

let encode r = Uio.Message.encode_response r
let encode_err e = Uio.Message.encode_response (Uio.Message.R_error_t e)

let handle_repl t (req : Uio.Message.request) =
  match req with
  | Uio.Message.Repl_frontier { epoch } ->
    let* () = check_epoch t epoch in
    Ok
      (Uio.Message.R_repl_frontier
         { epoch = t.epoch; seq_uid = t.seq_uid; vols = frontiers t })
  | Uio.Message.Repl_blocks { epoch; seq_uid; vol_index; first_block; blocks } ->
    let* () = check_epoch t epoch in
    apply_blocks t ~seq_uid ~vol_index ~first_block blocks
  | Uio.Message.Repl_tail { epoch; seq_uid; vol_index; block; image } ->
    let* () = check_epoch t epoch in
    apply_tail t ~seq_uid ~vol_index ~block image
  | _ -> assert false

let handler t raw =
  match Uio.Message.decode_request raw with
  | Ok
      ((Uio.Message.Repl_frontier _ | Uio.Message.Repl_blocks _ | Uio.Message.Repl_tail _)
       as req) -> (
    match handle_repl t req with Ok r -> encode r | Error e -> encode_err e)
  | Ok _ | Error _ -> (
    (* Client traffic: lazily rebuild the server over whatever has been
       applied so far, then let the ordinary dispatcher answer. The rebuilt
       server's Replica role refuses writes with [Not_primary] + hint. *)
    match server t with
    | Error e -> encode_err e
    | Ok _ -> (
      match t.rpc with
      | Some rpc -> Uio.Rpc_server.handle rpc raw
      | None -> encode_err (Clio.Errors.Bad_record "replica has no server")))

let promote t =
  t.epoch <- t.epoch + 1;
  t.promoted <- true;
  t.dirty <- true;
  (* Rebuild replays the NVRAM-staged tail image through ordinary recovery,
     so every entry the primary had acknowledged — settled or staged — is
     served by the new primary. *)
  let* srv = rebuild t in
  Ok srv
