(** A read replica of one Clio volume sequence.

    The replica owns a set of raw WORM devices written {e only} by applying
    the primary's shipments ({!Shipper}): verbatim settled blocks, in
    order, at the primary's indices — so its storage is byte-identical to
    the primary's up to the shipped frontier. Serving reads is then just
    recovery: the replica lazily rebuilds a {!Clio.Server.t} from its
    devices (plus the NVRAM-staged volatile tail, when the primary shipped
    one) and lets the ordinary {!Uio.Rpc_server} dispatch client traffic
    against it. The rebuilt server carries the [Replica] role, so every
    mutating request answers [Errors.Not_primary] with the primary's
    address, while reads, locate and time search work locally.

    {b Epochs and failover.} Every replication message carries the sender's
    epoch. {!promote} mints the next epoch and rebuilds through ordinary
    recovery — replaying the staged tail, so every append the old primary
    acknowledged durably is served. From then on the deposed primary's
    shipments answer [Errors.Stale_epoch]; on seeing it the old primary
    fences itself (see {!Shipper}). A shipment carrying a {e newer} epoch
    re-demotes a promoted replica. *)

type t

val create :
  ?config:Clio.Config.t ->
  ?nvram:Worm.Nvram.t ->
  clock:Sim.Clock.t ->
  alloc:(vol_index:int -> (Worm.Block_io.t, Clio.Errors.t) result) ->
  primary_hint:string ->
  unit ->
  t
(** An empty replica. [alloc] hands out the raw device that will back each
    shipped volume (called when a shipment opens a new volume index);
    [primary_hint] is the redirect address embedded in [Not_primary]
    refusals. [nvram] stages the primary's volatile tail between rebuilds —
    without it, tail shipments are acknowledged but not retained. *)

val handler : t -> string -> string
(** The replica's wire endpoint, suitable for [Transport.local]: [Repl_*]
    requests are applied directly (epoch-gated); everything else goes to
    the embedded RPC dispatcher over a lazily rebuilt server. Total. *)

val server : t -> (Clio.Server.t, Clio.Errors.t) result
(** The server over the currently applied state, rebuilding if shipments
    arrived since the last build. Fails while the replica holds no volumes. *)

val promote : t -> (Clio.Server.t, Clio.Errors.t) result
(** Fail over to this replica: mint epoch+1, rebuild through recovery
    (replaying the staged tail) and assert the [Primary] role. The returned
    server accepts writes; subsequent shipments from the deposed primary
    are refused with [Stale_epoch]. *)

(** {1 Introspection} *)

val epoch : t -> int
val nvols : t -> int

val device : t -> int -> Worm.Block_io.t option
(** The raw device of volume [i] (tests compare these byte-for-byte with
    the primary's). *)

val blocks_applied : t -> int
(** Lifetime settled blocks applied (survives rebuilds). *)

val tail_applies : t -> int
val epoch_rejects : t -> int
