(** Primary-side replication: ships settled WORM blocks (and the volatile
    tail image) to {!Replica} endpoints over any {!Uio.Transport}.

    One {!sync} pass per peer does a frontier exchange, streams the settled
    gap in [Config.repl_batch_blocks]-sized batches of verbatim device
    blocks, and — once the peer has no settled gap — ships the current tail
    image, explicitly marked volatile ([Repl_tail]). Retries are safe by
    construction (the replica's apply is idempotent), so the shipper
    resends through timeouts and disconnects with bounded attempts and
    clock-charging backoff.

    {b Fencing.} A [Stale_epoch] refusal means some replica was promoted
    past us: the shipper marks the peer fenced and demotes its own server
    to the [Fenced] role, after which every local write answers
    [Not_primary] naming the peer that outranked us. *)

type t

val create :
  ?max_attempts:int ->
  ?backoff_us:int64 ->
  Clio.Server.t ->
  (string * Uio.Transport.t) list ->
  t
(** [create srv peers] ships [srv]'s volume sequence to each named peer
    transport. [max_attempts] (default 30) bounds resends per request;
    [backoff_us] (default 500) scales the linear inter-attempt backoff
    charged to the transport's clock. *)

val sync : t -> unit
(** One replication pass over every live peer; updates the primary's
    [repl_*] counters and the [repl_lag_blocks] gauge (worst peer). A no-op
    once the server is no longer primary. *)

val reshipped : t -> int
(** Settled blocks re-sent below a peer's highest {e received} ack —
    genuinely redundant wire work. Stays 0 under any fault schedule:
    lost-ack retries do not count (no ack was received), and the frontier
    exchange resumes exactly at the replica's ack. *)

val peer_names : t -> string list
val fenced_peers : t -> string list
