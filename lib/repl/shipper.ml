(* Primary-side replication driver. One [sync] pass per peer: exchange
   frontiers, stream the settled gap in [Config.repl_batch_blocks]-sized
   runs of verbatim device blocks, then ship the volatile tail image to
   peers that are fully caught up.

   Everything is pull-shaped from the primary's point of view but push-
   shaped on the wire: the replica's frontier (and the cumulative ack after
   every batch) tells the shipper exactly where to resume, so lost
   shipments, lost acks and duplicated deliveries all converge — the
   replica's frontier-skip apply is idempotent, and a retry after a lost
   ack re-sends bytes the replica simply skips. [reshipped] counts the
   genuinely wasted case — blocks re-sent below the highest ack we have
   actually received — and stays 0 under any fault schedule. *)

type peer = {
  name : string;
  transport : Uio.Transport.t;
  acked : (int, int) Hashtbl.t;  (** vol_index -> highest received cumulative ack *)
  mutable fenced : bool;  (** this peer outranks us (or speaks a foreign sequence) *)
}

type t = {
  srv : Clio.Server.t;
  peers : peer list;
  max_attempts : int;
  backoff_us : int64;
  mutable reshipped : int;
}

let create ?(max_attempts = 30) ?(backoff_us = 500L) srv peers =
  let peers =
    List.map
      (fun (name, transport) ->
        { name; transport; acked = Hashtbl.create 4; fenced = false })
      peers
  in
  { srv; peers; max_attempts; backoff_us; reshipped = 0 }

let reshipped t = t.reshipped
let peer_names t = List.map (fun p -> p.name) t.peers
let fenced_peers t = List.filter_map (fun p -> if p.fenced then Some p.name else None) t.peers

let stats t = Clio.Server.stats t.srv

(* Bounded resend loop over a possibly-lossy transport. Safe to retry
   blindly: every replication request is idempotent by construction (the
   replica skips below its frontier, re-stages an identical tail image,
   re-answers a frontier). Backoff advances the transport's clock so
   waiting costs simulated time. *)
let call t peer req =
  let wire = Uio.Message.encode_request req in
  let clock = Uio.Transport.clock peer.transport in
  let rec go attempt =
    match Uio.Transport.call peer.transport wire with
    | exception Uio.Transport.Timeout when attempt + 1 < t.max_attempts ->
      Sim.Clock.advance clock (Int64.mul t.backoff_us (Int64.of_int (attempt + 1)));
      go (attempt + 1)
    | exception Uio.Transport.Disconnected when attempt + 1 < t.max_attempts ->
      Sim.Clock.advance clock (Int64.mul t.backoff_us (Int64.of_int (attempt + 1)));
      go (attempt + 1)
    | exception Uio.Transport.Timeout -> Error Clio.Errors.Timeout
    | exception Uio.Transport.Disconnected -> Error Clio.Errors.Disconnected
    | raw -> (
      match Uio.Message.decode_response raw with
      | Ok (Uio.Message.R_error msg) -> Error (Clio.Errors.Remote msg)
      | Ok (Uio.Message.R_error_t e) -> Error e
      | Ok r -> Ok r
      | Error e -> Error e)
  in
  go 0

let fence t peer ~epoch =
  peer.fenced <- true;
  Clio.Server.set_role t.srv (Clio.State.Fenced { epoch; hint = peer.name })

let note_ack peer ~vol_index ~next_block =
  let prev = Option.value ~default:0 (Hashtbl.find_opt peer.acked vol_index) in
  if next_block > prev then Hashtbl.replace peer.acked vol_index next_block

(* Stream [from, settled) of one volume to [peer]. Returns how far the
   replica acknowledged (which is also where the next sync resumes). *)
let ship_vol t peer ~epoch ~seq_uid ~vol_index v ~from ~settled =
  let dev = v.Clio.Vol.dev in
  let batch = (Clio.Server.config t.srv).Clio.Config.repl_batch_blocks in
  let rec go cur =
    if cur >= settled || peer.fenced then cur
    else begin
      let n = min batch (settled - cur) in
      let idxs = List.init n (fun i -> cur + i) in
      let reads = Worm.Block_io.read_many dev idxs in
      let ok, blocks =
        List.fold_left
          (fun (ok, acc) r ->
            match r with Ok b -> (ok, Bytes.to_string b :: acc) | Error _ -> (false, acc))
          (true, []) reads
      in
      if not ok then cur
      else begin
        let blocks = List.rev blocks in
        let high = Option.value ~default:0 (Hashtbl.find_opt peer.acked vol_index) in
        List.iter (fun i -> if i < high then t.reshipped <- t.reshipped + 1) idxs;
        match
          call t peer
            (Uio.Message.Repl_blocks { epoch; seq_uid; vol_index; first_block = cur; blocks })
        with
        | Ok (Uio.Message.R_repl_ack { next_block; _ }) ->
          let s = stats t in
          s.Clio.Stats.repl_blocks_shipped <- s.Clio.Stats.repl_blocks_shipped + n;
          note_ack peer ~vol_index ~next_block;
          if next_block <= cur then cur (* no progress; retry next sync *)
          else go next_block
        | Ok _ -> cur
        | Error (Clio.Errors.Stale_epoch e) ->
          fence t peer ~epoch:e;
          cur
        | Error _ -> cur
      end
    end
  in
  go from

let ship_tail t peer ~epoch ~seq_uid ~vol_index v =
  if (not v.Clio.Vol.tail_open) || Clio.Block_format.Builder.is_empty v.Clio.Vol.tail then ()
  else begin
    let image = Clio.Block_format.Builder.finish ~forced:true v.Clio.Vol.tail in
    match
      call t peer
        (Uio.Message.Repl_tail
           {
             epoch;
             seq_uid;
             vol_index;
             block = v.Clio.Vol.tail_index;
             image = Bytes.to_string image;
           })
    with
    | Ok (Uio.Message.R_repl_ack _) ->
      let s = stats t in
      s.Clio.Stats.repl_tail_ships <- s.Clio.Stats.repl_tail_ships + 1
    | Ok _ -> ()
    | Error (Clio.Errors.Stale_epoch e) -> fence t peer ~epoch:e
    | Error _ -> ()
  end

(* One replication pass for one peer: frontier exchange, gap streaming per
   volume, tail shipment when fully caught up. Returns the peer's lag in
   settled blocks as of this pass. *)
let sync_peer t peer =
  let st = Clio.Server.state t.srv in
  let epoch = Clio.Server.epoch t.srv in
  let seq_uid = st.Clio.State.seq_uid in
  match call t peer (Uio.Message.Repl_frontier { epoch }) with
  | Error (Clio.Errors.Stale_epoch e) ->
    fence t peer ~epoch:e;
    0
  | Error _ ->
    (* Peer unreachable this pass; report lag from what we know. *)
    Array.to_list st.Clio.State.vols
    |> List.mapi (fun i v ->
           let settled = Clio.Vol.device_frontier v in
           let acked = Option.value ~default:0 (Hashtbl.find_opt peer.acked i) in
           max 0 (settled - acked))
    |> List.fold_left ( + ) 0
  | Ok (Uio.Message.R_repl_frontier { seq_uid = rsuid; vols = rvols; _ }) ->
    if rsuid <> 0L && rsuid <> seq_uid then begin
      (* A replica holding a foreign volume sequence can never be caught
         up by shipping; stop talking to it rather than corrupt it. *)
      peer.fenced <- true;
      0
    end
    else begin
      let nvols = Array.length st.Clio.State.vols in
      let had_gap = ref false in
      let lag = ref 0 in
      Array.iteri
        (fun vol_index v ->
          if not peer.fenced then begin
            let settled = Clio.Vol.device_frontier v in
            let rf =
              Option.value ~default:0 (List.assoc_opt vol_index rvols)
            in
            note_ack peer ~vol_index ~next_block:rf;
            if rf < settled then had_gap := true;
            let reached =
              if rf < settled then
                ship_vol t peer ~epoch ~seq_uid ~vol_index v ~from:rf ~settled
              else rf
            in
            lag := !lag + max 0 (settled - reached)
          end)
        st.Clio.State.vols;
      if !had_gap then begin
        let s = stats t in
        s.Clio.Stats.repl_catchup_rounds <- s.Clio.Stats.repl_catchup_rounds + 1
      end;
      (* Only a peer with no settled gap can meaningfully stage the tail. *)
      if (not peer.fenced) && !lag = 0 && nvols > 0 then
        ship_tail t peer ~epoch ~seq_uid ~vol_index:(nvols - 1)
          st.Clio.State.vols.(nvols - 1);
      !lag
    end
  | Ok _ -> 0

let sync t =
  match Clio.Server.role t.srv with
  | Clio.State.Replica _ | Clio.State.Fenced _ -> ()
  | Clio.State.Primary _ ->
    (* Re-check the role between peers: fencing discovered while syncing
       one peer must stop the pass — a deposed primary has no business
       pushing its tail to the replicas it hasn't talked to yet. *)
    let worst =
      List.fold_left
        (fun acc peer ->
          match Clio.Server.role t.srv with
          | Clio.State.Primary _ when not peer.fenced -> max acc (sync_peer t peer)
          | _ -> acc)
        0 t.peers
    in
    Clio.Server.set_repl_lag_blocks t.srv worst
