(** In-memory write-once device.

    The workhorse for tests and benchmarks: enforces the full WORM contract
    (append-at-frontier only, invalidate-to-all-1s, no rewrites) over an
    array of block states. *)

type t

val create :
  ?block_size:int -> ?capacity:int -> ?reports_frontier:bool -> unit -> t
(** [create ()] makes a device with [block_size] (default 1024) and
    [capacity] blocks (default 4096). If [reports_frontier] is false the
    device refuses frontier queries, exercising the recovery binary search of
    section 2.3.1. *)

val io : t -> Block_io.t
(** The device's operation record. *)

val written_blocks : t -> int
(** Number of blocks no longer writable (written or invalidated). *)

val raw_poke : t -> int -> bytes -> unit
(** [raw_poke t idx data] bypasses the WORM contract and replaces block
    [idx]'s contents — the hook used by {!Faulty_device} and corruption tests
    to model hardware/software failures writing garbage (section 2.3.2). If
    [idx] was unwritten it becomes readable garbage without moving the
    frontier. *)

val raw_peek : t -> int -> bytes option
(** [raw_peek t idx] reads without counting toward stats; [None] if
    unwritten. *)
