(** File-backed write-once device.

    Persists a simulated WORM volume in a regular file so the CLI and the
    examples survive process restarts. The backing file is rewriteable, so
    the write-once contract is enforced in software: a software-level
    equivalent of the paper's preference that "the append-only restriction
    \[be enforced\] at the lowest possible level of the system".

    On-disk layout: a 4 KB superblock (magic, version, geometry), a
    one-byte-per-block state map, then the block data. *)

type t

val create : path:string -> ?block_size:int -> ?capacity:int -> unit -> (t, Block_io.error) result
(** [create ~path ()] initializes a fresh volume file, failing if [path]
    already holds one with different geometry. *)

val open_existing : path:string -> (t, Block_io.error) result
(** [open_existing ~path] reopens a volume created by {!create}. *)

val io : t -> Block_io.t
val close : t -> unit
