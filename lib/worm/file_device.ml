let magic = 0x43_4C_49_4F (* "CLIO" *)
let format_version = 1
let superblock_size = 4096

type t = {
  fd : Unix.file_descr;
  block_size : int;
  capacity : int;
  state : Bytes.t;  (* one byte per block: 0 unwritten, 1 written, 2 invalid *)
  mutable frontier : int;
  stats : Dev_stats.t;
}

let state_offset = superblock_size
let data_offset t idx = superblock_size + t.capacity + (idx * t.block_size)

let pwrite fd ~off buf =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let n = Bytes.length buf in
  let rec go pos =
    if pos < n then begin
      let w = Unix.write fd buf pos (n - pos) in
      go (pos + w)
    end
  in
  go 0

let pread fd ~off len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let buf = Bytes.create len in
  let rec go pos =
    if pos < len then begin
      let r = Unix.read fd buf pos (len - pos) in
      if r = 0 then failwith "short read" else go (pos + r)
    end
  in
  go 0;
  buf

let write_superblock fd ~block_size ~capacity =
  let sb = Bytes.make superblock_size '\000' in
  Bytes.set_int32_le sb 0 (Int32.of_int magic);
  Bytes.set_int32_le sb 4 (Int32.of_int format_version);
  Bytes.set_int32_le sb 8 (Int32.of_int block_size);
  Bytes.set_int32_le sb 12 (Int32.of_int capacity);
  pwrite fd ~off:0 sb

let read_superblock fd =
  let sb = pread fd ~off:0 superblock_size in
  let m = Int32.to_int (Bytes.get_int32_le sb 0) in
  let v = Int32.to_int (Bytes.get_int32_le sb 4) in
  if m <> magic then Error (Block_io.Io_error "bad volume magic")
  else if v <> format_version then Error (Block_io.Io_error "unsupported volume version")
  else
    let block_size = Int32.to_int (Bytes.get_int32_le sb 8) in
    let capacity = Int32.to_int (Bytes.get_int32_le sb 12) in
    Ok (block_size, capacity)

let settle_frontier t =
  while t.frontier < t.capacity && Bytes.get t.state t.frontier <> '\000' do
    t.frontier <- t.frontier + 1
  done

let wrap_io f = try f () with Unix.Unix_error (e, _, _) -> Error (Block_io.Io_error (Unix.error_message e)) | Failure m -> Error (Block_io.Io_error m)

let create ~path ?(block_size = 1024) ?(capacity = 4096) () =
  wrap_io (fun () ->
      if Sys.file_exists path && (Unix.stat path).Unix.st_size > 0 then
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
        match read_superblock fd with
        | Error e ->
          Unix.close fd;
          Error e
        | Ok (bs, cap) ->
          if bs <> block_size || cap <> capacity then begin
            Unix.close fd;
            Error (Block_io.Io_error "existing volume has different geometry")
          end
          else begin
            let state = pread fd ~off:state_offset capacity in
            let t = { fd; block_size; capacity; state; frontier = 0; stats = Dev_stats.create () } in
            settle_frontier t;
            Ok t
          end
      else begin
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
        write_superblock fd ~block_size ~capacity;
        pwrite fd ~off:state_offset (Bytes.make capacity '\000');
        Ok { fd; block_size; capacity; state = Bytes.make capacity '\000'; frontier = 0; stats = Dev_stats.create () }
      end)

let open_existing ~path =
  wrap_io (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      match read_superblock fd with
      | Error e ->
        Unix.close fd;
        Error e
      | Ok (block_size, capacity) ->
        let state = pread fd ~off:state_offset capacity in
        let t = { fd; block_size; capacity; state; frontier = 0; stats = Dev_stats.create () } in
        settle_frontier t;
        Ok t)

let set_state t idx c =
  Bytes.set t.state idx c;
  pwrite t.fd ~off:(state_offset + idx) (Bytes.make 1 c)

let read t idx : (bytes, Block_io.error) result =
  t.stats.Dev_stats.reads <- t.stats.Dev_stats.reads + 1;
  if idx < 0 || idx >= t.capacity then Error (Out_of_range idx)
  else
    match Bytes.get t.state idx with
    | '\000' -> Error (Unwritten idx)
    | '\002' ->
      t.stats.Dev_stats.bytes_read <- t.stats.Dev_stats.bytes_read + t.block_size;
      Ok (Block_io.invalidated_block t.block_size)
    | _ ->
      wrap_io (fun () ->
          let b = pread t.fd ~off:(data_offset t idx) t.block_size in
          t.stats.Dev_stats.bytes_read <- t.stats.Dev_stats.bytes_read + t.block_size;
          Ok b)

(* Batched read: indices that are consecutive, in range and all plainly
   written are served with one pread per contiguous run; anything else
   (unwritten, invalidated, out of range) falls back to the per-block path
   so every error case stays identical to [read]. *)
let read_many t idxs : (bytes, Block_io.error) result list =
  let plain idx =
    idx >= 0 && idx < t.capacity
    && Bytes.get t.state idx <> '\000'
    && Bytes.get t.state idx <> '\002'
  in
  let run_results run =
    if List.length run > 1 && List.for_all plain run then begin
      let first = List.hd run in
      let n = List.length run in
      match
        wrap_io (fun () -> Ok (pread t.fd ~off:(data_offset t first) (n * t.block_size)))
      with
      | Ok big ->
        List.mapi
          (fun i idx ->
            t.stats.Dev_stats.reads <- t.stats.Dev_stats.reads + 1;
            t.stats.Dev_stats.bytes_read <- t.stats.Dev_stats.bytes_read + t.block_size;
            ignore idx;
            Ok (Bytes.sub big (i * t.block_size) t.block_size))
          run
      | Error _ -> List.map (read t) run
    end
    else List.map (read t) run
  in
  List.concat_map run_results (Block_io.contiguous_runs idxs)

let append t data : (int, Block_io.error) result =
  t.stats.Dev_stats.appends <- t.stats.Dev_stats.appends + 1;
  if Bytes.length data <> t.block_size then Error (Wrong_size (Bytes.length data))
  else begin
    settle_frontier t;
    if t.frontier >= t.capacity then Error Out_of_space
    else
      wrap_io (fun () ->
          let idx = t.frontier in
          pwrite t.fd ~off:(data_offset t idx) data;
          set_state t idx '\001';
          t.frontier <- idx + 1;
          t.stats.Dev_stats.bytes_written <- t.stats.Dev_stats.bytes_written + t.block_size;
          Ok idx)
  end

let invalidate t idx : (unit, Block_io.error) result =
  t.stats.Dev_stats.invalidates <- t.stats.Dev_stats.invalidates + 1;
  if idx < 0 || idx >= t.capacity then Error (Out_of_range idx)
  else
    wrap_io (fun () ->
        set_state t idx '\002';
        Ok ())

let frontier t () =
  t.stats.Dev_stats.frontier_queries <- t.stats.Dev_stats.frontier_queries + 1;
  settle_frontier t;
  Some t.frontier

let io t : Block_io.t =
  {
    block_size = t.block_size;
    capacity = t.capacity;
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
    frontier = frontier t;
    flush = (fun () -> wrap_io (fun () -> Unix.fsync t.fd; Ok ()));
    stats = t.stats;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
