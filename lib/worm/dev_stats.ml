type t = {
  mutable reads : int;
  mutable appends : int;
  mutable invalidates : int;
  mutable frontier_queries : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create () =
  {
    reads = 0;
    appends = 0;
    invalidates = 0;
    frontier_queries = 0;
    bytes_read = 0;
    bytes_written = 0;
  }

let reset t =
  t.reads <- 0;
  t.appends <- 0;
  t.invalidates <- 0;
  t.frontier_queries <- 0;
  t.bytes_read <- 0;
  t.bytes_written <- 0

let snapshot t =
  {
    reads = t.reads;
    appends = t.appends;
    invalidates = t.invalidates;
    frontier_queries = t.frontier_queries;
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
  }

let diff ~after ~before =
  {
    reads = after.reads - before.reads;
    appends = after.appends - before.appends;
    invalidates = after.invalidates - before.invalidates;
    frontier_queries = after.frontier_queries - before.frontier_queries;
    bytes_read = after.bytes_read - before.bytes_read;
    bytes_written = after.bytes_written - before.bytes_written;
  }

let pp ppf t =
  Format.fprintf ppf "reads=%d appends=%d invalidates=%d bytes_read=%d bytes_written=%d"
    t.reads t.appends t.invalidates t.bytes_read t.bytes_written
