type t = { mutable saved : (int * bytes) option; mutable syncs : int }

let create () = { saved = None; syncs = 0 }

let store t ~block data =
  t.saved <- Some (block, Bytes.copy data);
  t.syncs <- t.syncs + 1

let load t =
  match t.saved with
  | None -> None
  | Some (b, data) -> Some (b, Bytes.copy data)

let clear t = t.saved <- None
let syncs t = t.syncs
