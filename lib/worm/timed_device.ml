type t = {
  inner : Block_io.t;
  clock : Sim.Clock.t;
  model : Sim.Seek_model.t;
  separate_heads : bool;
  mutable read_head : int;
  mutable write_head : int;
  mutable busy_us : int64;
  mutable seeks : int;
  h_read_us : Obs.Histogram.t option;
  h_write_us : Obs.Histogram.t option;
}

let create ~clock ~model ?(separate_heads = true) ?metrics inner =
  let h_read_us = Option.map (fun m -> Obs.Metrics.histogram m "dev_read_us") metrics in
  let h_write_us = Option.map (fun m -> Obs.Metrics.histogram m "dev_write_us") metrics in
  {
    inner;
    clock;
    model;
    separate_heads;
    read_head = 0;
    write_head = 0;
    busy_us = 0L;
    seeks = 0;
    h_read_us;
    h_write_us;
  }

let charge t us =
  t.busy_us <- Int64.add t.busy_us us;
  Sim.Clock.advance t.clock us

let sample h us = match h with Some h -> Obs.Histogram.record h (Int64.to_int us) | None -> ()

let charge_read t idx bytes =
  let dist = abs (idx - t.read_head) in
  t.read_head <- idx;
  t.seeks <- t.seeks + 1;
  let us =
    Int64.add (t.model.Sim.Seek_model.seek_us ~dist) (t.model.Sim.Seek_model.transfer_us ~bytes)
  in
  sample t.h_read_us us;
  charge t us

let charge_write t idx bytes =
  let from = if t.separate_heads then t.write_head else t.read_head in
  let dist = abs (idx - from) in
  t.write_head <- idx;
  if not t.separate_heads then t.read_head <- idx;
  t.seeks <- t.seeks + 1;
  let us =
    Int64.add (t.model.Sim.Seek_model.seek_us ~dist) (t.model.Sim.Seek_model.transfer_us ~bytes)
  in
  sample t.h_write_us us;
  charge t us

let read t idx =
  match t.inner.Block_io.read idx with
  | Ok b ->
    charge_read t idx (Bytes.length b);
    Ok b
  | Error _ as e ->
    (* A failed read still seeks. *)
    charge_read t idx 0;
    e

(* Batched read: each contiguous run of indices costs one seek (to its first
   block) plus the transfer of every block actually read — the head sweeps
   the run without repositioning. This is the device-level half of the
   read-ahead story: K predicted blocks fetched in one batch cost one head
   movement instead of K. *)
let read_many t idxs =
  let run_results run =
    let results = List.map t.inner.Block_io.read run in
    let first = List.hd run in
    let dist = abs (first - t.read_head) in
    t.read_head <- List.nth run (List.length run - 1);
    t.seeks <- t.seeks + 1;
    let bytes =
      List.fold_left
        (fun acc r -> match r with Ok b -> acc + Bytes.length b | Error _ -> acc)
        0 results
    in
    let us =
      Int64.add (t.model.Sim.Seek_model.seek_us ~dist)
        (t.model.Sim.Seek_model.transfer_us ~bytes)
    in
    sample t.h_read_us us;
    charge t us;
    results
  in
  List.concat_map run_results (Block_io.contiguous_runs idxs)

let append t data =
  match t.inner.Block_io.append data with
  | Ok idx ->
    charge_write t idx (Bytes.length data);
    Ok idx
  | Error _ as e -> e

let invalidate t idx =
  match t.inner.Block_io.invalidate idx with
  | Ok () ->
    charge_write t idx t.inner.Block_io.block_size;
    Ok ()
  | Error _ as e -> e

let io t : Block_io.t =
  {
    t.inner with
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
  }

let busy_us t = t.busy_us
let head_position t = t.read_head
let seeks t = t.seeks
