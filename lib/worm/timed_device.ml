type t = {
  inner : Block_io.t;
  clock : Sim.Clock.t;
  model : Sim.Seek_model.t;
  separate_heads : bool;
  mutable read_head : int;
  mutable write_head : int;
  mutable busy_us : int64;
  h_read_us : Obs.Histogram.t option;
  h_write_us : Obs.Histogram.t option;
}

let create ~clock ~model ?(separate_heads = true) ?metrics inner =
  let h_read_us = Option.map (fun m -> Obs.Metrics.histogram m "dev_read_us") metrics in
  let h_write_us = Option.map (fun m -> Obs.Metrics.histogram m "dev_write_us") metrics in
  {
    inner;
    clock;
    model;
    separate_heads;
    read_head = 0;
    write_head = 0;
    busy_us = 0L;
    h_read_us;
    h_write_us;
  }

let charge t us =
  t.busy_us <- Int64.add t.busy_us us;
  Sim.Clock.advance t.clock us

let sample h us = match h with Some h -> Obs.Histogram.record h (Int64.to_int us) | None -> ()

let charge_read t idx bytes =
  let dist = abs (idx - t.read_head) in
  t.read_head <- idx;
  let us =
    Int64.add (t.model.Sim.Seek_model.seek_us ~dist) (t.model.Sim.Seek_model.transfer_us ~bytes)
  in
  sample t.h_read_us us;
  charge t us

let charge_write t idx bytes =
  let from = if t.separate_heads then t.write_head else t.read_head in
  let dist = abs (idx - from) in
  t.write_head <- idx;
  if not t.separate_heads then t.read_head <- idx;
  let us =
    Int64.add (t.model.Sim.Seek_model.seek_us ~dist) (t.model.Sim.Seek_model.transfer_us ~bytes)
  in
  sample t.h_write_us us;
  charge t us

let read t idx =
  match t.inner.Block_io.read idx with
  | Ok b ->
    charge_read t idx (Bytes.length b);
    Ok b
  | Error _ as e ->
    (* A failed read still seeks. *)
    charge_read t idx 0;
    e

let append t data =
  match t.inner.Block_io.append data with
  | Ok idx ->
    charge_write t idx (Bytes.length data);
    Ok idx
  | Error _ as e -> e

let invalidate t idx =
  match t.inner.Block_io.invalidate idx with
  | Ok () ->
    charge_write t idx t.inner.Block_io.block_size;
    Ok ()
  | Error _ as e -> e

let io t : Block_io.t =
  {
    t.inner with
    read = read t;
    append = append t;
    invalidate = invalidate t;
  }

let busy_us t = t.busy_us
let head_position t = t.read_head
