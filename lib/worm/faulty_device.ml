type fault =
  | Corrupt_written of bytes
  | Bad_unwritten
  | Bad_unfixable
  | Garbage_visible of bytes

type t = {
  inner : Block_io.t;
  rng : Sim.Rng.t;
  faults : (int, fault) Hashtbl.t;
  mutable injected : int;
  mutable bad_block_rate : float;
  mutable corrupt_rate : float;
}

let create ?rng inner =
  let rng = match rng with Some r -> r | None -> Sim.Rng.create 0xFAB7L in
  {
    inner;
    rng;
    faults = Hashtbl.create 16;
    injected = 0;
    bad_block_rate = 0.;
    corrupt_rate = 0.;
  }

let garbage t size =
  Bytes.init size (fun _ -> Char.chr (Sim.Rng.int t.rng 256))

let corrupt_block t idx =
  Hashtbl.replace t.faults idx (Corrupt_written (garbage t t.inner.Block_io.block_size));
  t.injected <- t.injected + 1

let mark_bad t idx =
  Hashtbl.replace t.faults idx Bad_unwritten;
  t.injected <- t.injected + 1

let mark_unfixable t idx =
  Hashtbl.replace t.faults idx Bad_unfixable;
  t.injected <- t.injected + 1

let spray_garbage_after_frontier t ~count =
  match t.inner.Block_io.frontier () with
  | None -> ()
  | Some f ->
    for i = f to min (f + count - 1) (t.inner.Block_io.capacity - 1) do
      Hashtbl.replace t.faults i (Garbage_visible (garbage t t.inner.Block_io.block_size));
      t.injected <- t.injected + 1
    done

let set_auto_faults ?(bad_block_rate = 0.) ?(corrupt_rate = 0.) t =
  t.bad_block_rate <- bad_block_rate;
  t.corrupt_rate <- corrupt_rate

let clear_faults t =
  Hashtbl.reset t.faults;
  t.bad_block_rate <- 0.;
  t.corrupt_rate <- 0.

let faults_injected t = t.injected

let read t idx : (bytes, Block_io.error) result =
  match Hashtbl.find_opt t.faults idx with
  | Some (Corrupt_written g) | Some (Garbage_visible g) -> Ok (Bytes.copy g)
  | Some Bad_unwritten | Some Bad_unfixable -> Ok (garbage t t.inner.Block_io.block_size)
  | None -> t.inner.Block_io.read idx

(* Native batch path: healthy indices ride the inner device's batched read
   (keeping its one-seek-per-run accounting), faulted ones are overlaid
   from the fault table — same per-block answers as [read]. *)
let read_many t idxs : (bytes, Block_io.error) result list =
  let healthy = List.filter (fun i -> not (Hashtbl.mem t.faults i)) idxs in
  let inner_results : (int, (bytes, Block_io.error) result) Hashtbl.t =
    Hashtbl.create (List.length healthy)
  in
  List.iter2
    (fun i r -> Hashtbl.replace inner_results i r)
    healthy
    (Block_io.read_many t.inner healthy);
  List.map
    (fun idx ->
      match Hashtbl.find_opt t.faults idx with
      | Some (Corrupt_written g) | Some (Garbage_visible g) -> Ok (Bytes.copy g)
      | Some Bad_unwritten | Some Bad_unfixable ->
        Ok (garbage t t.inner.Block_io.block_size)
      | None -> Hashtbl.find inner_results idx)
    idxs

let append t data : (int, Block_io.error) result =
  (* Probabilistic mode: the medium turns out to be damaged exactly where
     the drive is about to write — the everyday WORM failure the server's
     invalidate-and-retry loop exists for. Drawn per append attempt. *)
  (if t.bad_block_rate > 0. then
     match t.inner.Block_io.frontier () with
     | Some f when (not (Hashtbl.mem t.faults f)) && Sim.Rng.chance t.rng t.bad_block_rate ->
       mark_bad t f
     | _ -> ());
  (* The drive positions at its frontier; if the medium is damaged there the
     write fails and the server must invalidate the block and retry. *)
  match t.inner.Block_io.frontier () with
  | Some f
    when Hashtbl.find_opt t.faults f = Some Bad_unwritten
         || Hashtbl.find_opt t.faults f = Some Bad_unfixable ->
    Error (Bad_block f)
  | _ -> (
    match t.inner.Block_io.append data with
    | Ok idx ->
      (* A real append lands on top of any sprayed garbage. *)
      (match Hashtbl.find_opt t.faults idx with
      | Some (Garbage_visible _) -> Hashtbl.remove t.faults idx
      | _ -> ());
      (* Probabilistic decay: the freshly burnt block immediately reads
         back as garbage. *)
      if t.corrupt_rate > 0. && Sim.Rng.chance t.rng t.corrupt_rate then corrupt_block t idx;
      Ok idx
    | Error _ as e -> e)

let invalidate t idx =
  match Hashtbl.find_opt t.faults idx with
  | Some Bad_unfixable ->
    (* The damage defeats even the invalidation write: the drive cannot
       burn the all-ones pattern, so the frontier cannot move past it. *)
    Error (Block_io.Bad_block idx)
  | _ ->
    Hashtbl.remove t.faults idx;
    t.inner.Block_io.invalidate idx

let io t : Block_io.t =
  {
    t.inner with
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
  }
