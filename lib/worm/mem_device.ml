type slot = Unwritten | Written of bytes | Invalidated

type t = {
  block_size : int;
  capacity : int;
  reports_frontier : bool;
  slots : slot array;
  mutable frontier : int;  (* lowest index an append may use *)
  stats : Dev_stats.t;
}

let create ?(block_size = 1024) ?(capacity = 4096) ?(reports_frontier = true) () =
  {
    block_size;
    capacity;
    reports_frontier;
    slots = Array.make capacity Unwritten;
    frontier = 0;
    stats = Dev_stats.create ();
  }

(* The frontier skips blocks consumed by invalidation. *)
let rec settle_frontier t =
  if t.frontier < t.capacity then
    match t.slots.(t.frontier) with
    | Unwritten -> ()
    | Written _ | Invalidated ->
      t.frontier <- t.frontier + 1;
      settle_frontier t

(* Reads return a private copy, never the live slot buffer: Block_io.read's
   contract lets callers mutate the result, and handing out the backing
   array would let that mutation corrupt every later read of the block. *)
let read t idx : (bytes, Block_io.error) result =
  t.stats.Dev_stats.reads <- t.stats.Dev_stats.reads + 1;
  if idx < 0 || idx >= t.capacity then Error (Out_of_range idx)
  else
    match t.slots.(idx) with
    | Unwritten -> Error (Unwritten idx)
    | Written b ->
      t.stats.Dev_stats.bytes_read <- t.stats.Dev_stats.bytes_read + Bytes.length b;
      Ok (Bytes.copy b)
    | Invalidated ->
      t.stats.Dev_stats.bytes_read <- t.stats.Dev_stats.bytes_read + t.block_size;
      Ok (Block_io.invalidated_block t.block_size)

let read_many t idxs = List.map (read t) idxs

let append t data : (int, Block_io.error) result =
  t.stats.Dev_stats.appends <- t.stats.Dev_stats.appends + 1;
  if Bytes.length data <> t.block_size then Error (Wrong_size (Bytes.length data))
  else begin
    settle_frontier t;
    if t.frontier >= t.capacity then Error Out_of_space
    else begin
      let idx = t.frontier in
      t.slots.(idx) <- Written (Bytes.copy data);
      t.frontier <- idx + 1;
      t.stats.Dev_stats.bytes_written <- t.stats.Dev_stats.bytes_written + t.block_size;
      Ok idx
    end
  end

let invalidate t idx : (unit, Block_io.error) result =
  t.stats.Dev_stats.invalidates <- t.stats.Dev_stats.invalidates + 1;
  if idx < 0 || idx >= t.capacity then Error (Out_of_range idx)
  else begin
    t.slots.(idx) <- Invalidated;
    Ok ()
  end

let frontier t =
  t.stats.Dev_stats.frontier_queries <- t.stats.Dev_stats.frontier_queries + 1;
  if not t.reports_frontier then None
  else begin
    settle_frontier t;
    Some t.frontier
  end

let io t : Block_io.t =
  {
    block_size = t.block_size;
    capacity = t.capacity;
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
    frontier = (fun () -> frontier t);
    flush = (fun () -> Ok ());
    stats = t.stats;
  }

let written_blocks t =
  let n = ref 0 in
  Array.iter (function Unwritten -> () | Written _ | Invalidated -> incr n) t.slots;
  !n

let raw_poke t idx data =
  if idx >= 0 && idx < t.capacity then t.slots.(idx) <- Written (Bytes.copy data)

let raw_peek t idx =
  if idx < 0 || idx >= t.capacity then None
  else
    match t.slots.(idx) with
    | Unwritten -> None
    | Written b -> Some (Bytes.copy b)
    | Invalidated -> Some (Block_io.invalidated_block t.block_size)
