(** The log-device abstraction.

    The paper requires only that a log device be "a non-volatile,
    block-oriented storage device that supports random access for reading,
    and append-only write access" (section 2). A [Block_io.t] is a record of
    operations so wrappers (timing, caching, fault injection) compose without
    functor plumbing.

    Semantics every implementation must obey:
    - blocks are written exactly once, in strictly increasing order, at the
      current frontier;
    - a written block's contents never change, except that any block may be
      {e invalidated} — overwritten with all 1s (0xFF), which write-once
      media permit physically (section 2.3.2);
    - reads of never-written blocks fail with [Unwritten];
    - reads of invalidated blocks succeed and return all-0xFF bytes. *)

type error =
  | Out_of_space  (** the volume is full; mount a successor volume *)
  | Write_once_violation  (** attempted rewrite of a written block *)
  | Unwritten of int  (** read of a never-written block *)
  | Bad_block of int  (** the medium is damaged at this block *)
  | Out_of_range of int  (** block index outside [\[0, capacity)] *)
  | Wrong_size of int  (** buffer length differs from the block size *)
  | Io_error of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t = {
  block_size : int;
  capacity : int;  (** total blocks on the medium *)
  read : int -> (bytes, error) result;
      (** [read idx] returns a {e private} buffer holding block [idx]: the
          caller owns it and may mutate it freely. Implementations must not
          hand out their live backing storage. *)
  read_many : (int list -> (bytes, error) result list) option;
      (** Optional batched read: one result per requested index, in order.
          Devices that charge per head movement serve each contiguous run of
          indices with a single seek; [None] means the device has no native
          batch path and {!val-read_many} falls back to a [read] loop. *)
  append : bytes -> (int, error) result;
      (** [append data] writes [data] (exactly [block_size] bytes) at the
          frontier and returns the block index used. *)
  invalidate : int -> (unit, error) result;
      (** [invalidate idx] burns block [idx] to all 1s. Permitted on written,
          unwritten and bad blocks; an invalidated block at or beyond the
          frontier is skipped by subsequent appends. *)
  frontier : unit -> int option;
      (** [frontier ()] returns the next block an append would use, or [None]
          if the device cannot report it (forcing the binary search of
          section 2.3.1 during recovery). *)
  flush : unit -> (unit, error) result;
  stats : Dev_stats.t;
}

val read_many : t -> int list -> (bytes, error) result list
(** [read_many t idxs] reads each index, using the device's native batch op
    when it has one and a [read] loop otherwise. Results align with [idxs]. *)

val contiguous_runs : int list -> int list list
(** Split an ascending index list into maximal runs of consecutive indices
    ([\[3;4;5;9;10\]] → [\[\[3;4;5\];\[9;10\]\]]) — the unit a seek-charging
    device serves per head movement. *)

val is_invalidated_pattern : bytes -> bool
(** [is_invalidated_pattern b] is true iff [b] is all 0xFF. *)

val invalidated_block : int -> bytes
(** [invalidated_block size] is a fresh all-0xFF buffer. *)
