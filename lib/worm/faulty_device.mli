(** Fault-injection wrapper, modeling the failures of section 2.3.2.

    Three failure classes:
    - {e corrupt written blocks}: a previously written block's contents are
      replaced with garbage (detected by the server through its block
      checksum);
    - {e bad unwritten blocks}: the medium is damaged where nothing was
      written yet; appends landing there fail with [Bad_block] and reads
      return garbage instead of [Unwritten];
    - {e garbage beyond the frontier}: a crashed writer sprayed random data
      past the true end of the log, confusing frontier discovery.

    Injection is explicit (deterministic tests) or probabilistic from an
    {!Sim.Rng.t} via {!set_auto_faults} — equal seeds give equal fault
    schedules. *)

type t

val create : ?rng:Sim.Rng.t -> Block_io.t -> t
(** [rng] drives garbage contents and the probabilistic mode (default seed
    [0xFAB7]). *)

val io : t -> Block_io.t

val corrupt_block : t -> int -> unit
(** Replace a written block's visible contents with pseudo-random garbage. *)

val mark_bad : t -> int -> unit
(** Damage an unwritten block: future appends there fail with [Bad_block]. *)

val mark_unfixable : t -> int -> unit
(** Like {!mark_bad}, but the block also rejects invalidation: the server
    cannot move the frontier past it and must surface the device error
    rather than retry forever. *)

val spray_garbage_after_frontier : t -> count:int -> unit
(** Make the [count] blocks after the current frontier read back as garbage
    (they remain appendable — the garbage is overwritten by a real append),
    simulating a failure that wrote junk past the log's end. *)

val set_auto_faults : ?bad_block_rate:float -> ?corrupt_rate:float -> t -> unit
(** Probabilistic injection, drawn from the device's rng per append:
    with [bad_block_rate], the block at the frontier turns out damaged just
    before the write (the append fails with [Bad_block]; the server's
    invalidate-and-retry recovers); with [corrupt_rate], the freshly
    written block immediately decays to garbage (detected later by
    checksum). Omitted rates reset to 0. *)

val clear_faults : t -> unit
(** Forget all pending block faults {e and} disable probabilistic
    injection — the device behaves perfectly from here on. *)

val faults_injected : t -> int
