(** Battery-backed RAM for the tail block (section 2.3.1).

    "Ideally, in order to efficiently support frequent forced writes, the
    tail end of the log device is implemented as rewriteable non-volatile
    storage, such as battery backed-up RAM."

    An [Nvram.t] lives {e outside} the log server: when tests simulate a
    crash they discard the server but keep the device and the NVRAM, then
    recover. Contents persist until explicitly cleared. *)

type t

val create : unit -> t

val store : t -> block:int -> bytes -> unit
(** [store t ~block data] durably saves the partial contents of tail block
    [block]. Overwrites any previous save (NVRAM is rewriteable). *)

val load : t -> (int * bytes) option
(** The saved (block index, contents), if any. *)

val clear : t -> unit
(** Called once the tail block has been committed to the WORM medium. *)

val syncs : t -> int
(** Number of [store] calls — the cost a forced write pays in NVRAM mode
    instead of burning a partial WORM block. *)
