(** Mirrored write-once devices (paper footnote 11: "our design does not
    preclude the possibility of replication occurring at the log device
    level (that is, with mirrored disks)").

    Appends go to both replicas; reads come from the primary unless a
    caller-supplied validator rejects the bytes, in which case the replica
    answers. The log layer passes its block checksum as the validator, so a
    block corrupted on one platter is healed transparently — and the repair
    is observable in the stats. *)

type t

val create :
  validate:(bytes -> bool) -> Block_io.t -> Block_io.t -> (t, Block_io.error) result
(** [create ~validate primary replica]. The devices must share geometry. An
    unreadable or invalid primary block falls back to the replica (the
    replica's answer is served even if also invalid — the upper layer's
    classification applies). *)

val io : t -> Block_io.t

val fallback_reads : t -> int
(** Reads the primary could not serve validly. *)

val divergent_appends : t -> int
(** Appends where the two replicas reported different block indices (a
    replica with bad blocks skids ahead) — tolerated, counted. *)
