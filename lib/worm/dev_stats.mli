(** Per-device operation counters.

    Every device implementation and wrapper carries one of these; the
    evaluation benchmarks read them to report block reads/appends exactly as
    the paper's Table 1 does. *)

type t = {
  mutable reads : int;
  mutable appends : int;
  mutable invalidates : int;
  mutable frontier_queries : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

val create : unit -> t
val reset : t -> unit
val snapshot : t -> t
(** [snapshot t] is an independent copy, for before/after deltas. *)

val diff : after:t -> before:t -> t
(** Field-wise [after - before]. *)

val pp : Format.formatter -> t -> unit
