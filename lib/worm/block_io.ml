type error =
  | Out_of_space
  | Write_once_violation
  | Unwritten of int
  | Bad_block of int
  | Out_of_range of int
  | Wrong_size of int
  | Io_error of string

let pp_error ppf = function
  | Out_of_space -> Format.fprintf ppf "out of space"
  | Write_once_violation -> Format.fprintf ppf "write-once violation"
  | Unwritten b -> Format.fprintf ppf "block %d unwritten" b
  | Bad_block b -> Format.fprintf ppf "block %d is bad" b
  | Out_of_range b -> Format.fprintf ppf "block %d out of range" b
  | Wrong_size n -> Format.fprintf ppf "buffer size %d differs from block size" n
  | Io_error msg -> Format.fprintf ppf "i/o error: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  block_size : int;
  capacity : int;
  read : int -> (bytes, error) result;
  read_many : (int list -> (bytes, error) result list) option;
  append : bytes -> (int, error) result;
  invalidate : int -> (unit, error) result;
  frontier : unit -> int option;
  flush : unit -> (unit, error) result;
  stats : Dev_stats.t;
}

let read_many t idxs =
  match t.read_many with Some f -> f idxs | None -> List.map t.read idxs

(* Maximal runs of consecutive indices in an ascending list: one head
   movement serves a whole run on devices that charge per seek. *)
let contiguous_runs idxs =
  match idxs with
  | [] -> []
  | first :: rest ->
    let runs, last =
      List.fold_left
        (fun (runs, run) idx ->
          match run with
          | hd :: _ when idx = hd + 1 -> (runs, idx :: run)
          | _ -> (List.rev run :: runs, [ idx ]))
        ([], [ first ])
        rest
    in
    List.rev (List.rev last :: runs)

let is_invalidated_pattern b =
  let n = Bytes.length b in
  let rec go i = i >= n || (Bytes.get b i = '\xff' && go (i + 1)) in
  go 0

let invalidated_block size = Bytes.make size '\xff'
