(** Timing wrapper: charges seek + transfer costs to a simulated clock.

    Models the head position of the underlying drive (the paper notes the
    seek time "typically dominates the cost of reading a block" on optical
    disk, section 3.3.1) and supports the separate read/write head
    configuration recommended in section 3.3.1: with [separate_heads] the
    write head stays parked at the frontier, so appends never pay a seek back
    from the last read position. *)

type t

val create :
  clock:Sim.Clock.t ->
  model:Sim.Seek_model.t ->
  ?separate_heads:bool ->
  ?metrics:Obs.Metrics.t ->
  Block_io.t ->
  t
(** With [metrics], each op's simulated seek+transfer time is sampled into
    that registry's [dev_read_us] / [dev_write_us] histograms. *)

val io : t -> Block_io.t
(** The wrapped device: same semantics, plus time accounting. *)

val busy_us : t -> int64
(** Total device time charged so far (also advanced on the clock). *)

val head_position : t -> int
(** Current read-head block position. *)

val seeks : t -> int
(** Head movements charged so far: one per single-block read/write, one per
    contiguous run served by the batched [read_many] path. *)
