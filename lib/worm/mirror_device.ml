type t = {
  primary : Block_io.t;
  replica : Block_io.t;
  validate : bytes -> bool;
  mutable fallback_reads : int;
  mutable divergent_appends : int;
}

let create ~validate primary replica =
  if
    primary.Block_io.block_size <> replica.Block_io.block_size
    || primary.Block_io.capacity <> replica.Block_io.capacity
  then Error (Block_io.Io_error "mirror replicas have different geometry")
  else Ok { primary; replica; validate; fallback_reads = 0; divergent_appends = 0 }

let read t idx : (bytes, Block_io.error) result =
  match t.primary.Block_io.read idx with
  | Ok b when t.validate b -> Ok b
  | (Ok _ | Error _) as primary_result -> (
    match t.replica.Block_io.read idx with
    | Ok b ->
      t.fallback_reads <- t.fallback_reads + 1;
      Ok b
    | Error _ -> (
      (* Neither replica has a valid copy: surface the primary's view. *)
      match primary_result with Ok b -> Ok b | Error _ as e -> e))

(* Native batch path: one batched read against the primary, then the same
   per-block validate-or-fall-back the single-read path applies — so a
   damaged block in the middle of a run still comes back from the replica
   (and counts a fallback), while the healthy run cost one primary seek. *)
let read_many t idxs : (bytes, Block_io.error) result list =
  List.map2
    (fun idx primary_result ->
      match primary_result with
      | Ok b when t.validate b -> Ok b
      | Ok _ | Error _ -> (
        match t.replica.Block_io.read idx with
        | Ok b ->
          t.fallback_reads <- t.fallback_reads + 1;
          Ok b
        | Error _ -> primary_result))
    idxs
    (Block_io.read_many t.primary idxs)

let append t data : (int, Block_io.error) result =
  match t.primary.Block_io.append data with
  | Error _ as e -> e
  | Ok idx -> (
    match t.replica.Block_io.append data with
    | Ok idx2 ->
      if idx <> idx2 then t.divergent_appends <- t.divergent_appends + 1;
      Ok idx
    | Error _ ->
      (* The replica is full/broken; the mirror degrades to the primary. *)
      t.divergent_appends <- t.divergent_appends + 1;
      Ok idx)

let invalidate t idx =
  let r1 = t.primary.Block_io.invalidate idx in
  let _r2 = t.replica.Block_io.invalidate idx in
  r1

let io t : Block_io.t =
  {
    t.primary with
    read = read t;
    read_many = Some (read_many t);
    append = append t;
    invalidate = invalidate t;
    frontier = t.primary.Block_io.frontier;
    flush =
      (fun () ->
        match (t.primary.Block_io.flush (), t.replica.Block_io.flush ()) with
        | Ok (), Ok () -> Ok ()
        | (Error _ as e), _ | _, (Error _ as e) -> e);
  }

let fallback_reads t = t.fallback_reads
let divergent_appends t = t.divergent_appends
