(** Named counters, gauges and latency histograms for one server instance.

    Handles ([counter], [Histogram.t]) are resolved once at instrumentation
    setup and then bumped with plain field writes, so the steady-state cost
    of a metric is an increment — no per-operation hash lookups. *)

type t

(** A monotonically increasing named count. *)
type counter

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create by name. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> int -> unit
(** Set a point-in-time value (overwrites). *)

val histogram : t -> string -> Histogram.t
(** Get-or-create by name. By convention latency histograms end in [_us]
    and size histograms in [_bytes]. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * int) list
val histograms : t -> (string * Histogram.t) list

val to_json : t -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
    mean,p50,p90,p99},...}}]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human rendering; zero-count entries are skipped. *)

val reset : t -> unit
(** Zero every counter, gauge and histogram (handles stay valid). *)
