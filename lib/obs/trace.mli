(** Lightweight per-operation span tracing.

    A span covers one operation (append, locate, recover, ...); spans nest —
    a flush inside an append records at depth 1 under the append's depth 0.
    Time comes from a [now] closure supplied at creation, so a server on a
    simulated {!Sim.Clock} traces simulated microseconds exactly and a wall
    clock traces real ones.

    Tracing is {e off by default}: [enter] on a disabled tracer returns a
    constant token and touches nothing, so instrumented code costs one
    branch. Completed spans go to a bounded in-memory ring (newest kept)
    and, optionally, to a JSONL sink as they finish. *)

type t

type span = {
  id : int;  (** creation order, 1-based *)
  name : string;
  depth : int;  (** nesting level at entry, 0 = top *)
  start_us : int;  (** clock value when the span opened *)
  mutable dur_us : int;
}

type token
(** An open span (or nothing, when tracing is disabled). *)

val create : ?capacity:int -> now:(unit -> int) -> unit -> t
(** [capacity] bounds the retained completed spans (default 8192). *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val set_sink : t -> (string -> unit) option -> unit
(** When set, every finished span is also emitted as one JSON line. *)

val enter : t -> string -> token
val exit : t -> token -> unit

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [enter]/[exit] around [f], exception-safe. *)

val spans : t -> span list
(** Retained completed spans, oldest first. *)

val clear : t -> unit
val span_to_json : span -> Json.t
val to_jsonl : t -> string
(** One JSON object per line, oldest first, trailing newline. *)
