(** Log-scaled histogram for latency and size samples.

    Non-negative integer samples (microseconds, bytes, counts) are binned
    exactly below 32 and into power-of-two octaves with 16 sub-buckets each
    above, bounding the relative quantile error at ~6% while keeping
    [record] a handful of integer operations — cheap enough to leave on in
    the hot write path. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Add one sample. Negative values clamp to 0. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float
(** nan when empty. *)

val percentile : t -> float -> float
(** [percentile t 0.99]: estimated sample value at quantile [q] in [0,1],
    linearly interpolated within the containing bucket. nan when empty. *)

val reset : t -> unit

val to_json : t -> Json.t
(** [{"count":..,"sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,
    "p99":..}] — the schema every latency field of the metrics export and
    the [BENCH_*.json] files share. *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering: [count=12 mean=3.1us p50=2 p90=7 p99=11 max=14]. *)
