type counter = { mutable value : int }

type t = {
  counters_tbl : (string, counter) Hashtbl.t;
  gauges_tbl : (string, int ref) Hashtbl.t;
  histograms_tbl : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters_tbl = Hashtbl.create 16;
    gauges_tbl = Hashtbl.create 16;
    histograms_tbl = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some c -> c
  | None ->
    let c = { value = 0 } in
    Hashtbl.replace t.counters_tbl name c;
    c

let incr ?(by = 1) c = c.value <- c.value + by
let counter_value c = c.value

let gauge t name v =
  match Hashtbl.find_opt t.gauges_tbl name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges_tbl name (ref v)

let histogram t name =
  match Hashtbl.find_opt t.histograms_tbl name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.replace t.histograms_tbl name h;
    h

let sorted_names l = List.sort (fun (a, _) (b, _) -> compare a b) l

let counters t =
  sorted_names (Hashtbl.fold (fun n c acc -> (n, c.value) :: acc) t.counters_tbl [])

let gauges t = sorted_names (Hashtbl.fold (fun n r acc -> (n, !r) :: acc) t.gauges_tbl [])

let histograms t =
  sorted_names (Hashtbl.fold (fun n h acc -> (n, h) :: acc) t.histograms_tbl [])

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) (gauges t)));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, Histogram.to_json h)) (histograms t)) );
    ]

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (n, v) -> if v <> 0 then Format.fprintf ppf "%-28s %d@," n v)
    (counters t);
  List.iter (fun (n, v) -> Format.fprintf ppf "%-28s %d@," n v) (gauges t);
  List.iter
    (fun (n, h) ->
      if Histogram.count h > 0 then Format.fprintf ppf "%-28s %a@," n Histogram.pp h)
    (histograms t);
  Format.pp_close_box ppf ()

let reset t =
  Hashtbl.iter (fun _ c -> c.value <- 0) t.counters_tbl;
  Hashtbl.iter (fun _ r -> r := 0) t.gauges_tbl;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms_tbl
