(* Values < [exact_limit] get their own bucket; larger values share an
   octave [2^o, 2^(o+1)) split into [subs] linear sub-buckets. With
   subs = 16 the widest bucket spans 1/16th of its octave, so a quantile
   interpolated within it is off by at most ~6% of the true value. *)

let sub_bits = 4
let subs = 1 lsl sub_bits
let exact_limit = 2 * subs (* 32: values 0..31 are exact *)

(* Octaves 5..62 (values 32 .. 2^63-1), [subs] buckets each. *)
let nbuckets = exact_limit + ((63 - (sub_bits + 1)) * subs)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

let log2_floor v =
  let o = ref 0 and x = ref v in
  while !x >= 2 do
    incr o;
    x := !x lsr 1
  done;
  !o

let bucket_of v =
  if v < exact_limit then v
  else begin
    let o = log2_floor v in
    let sub = (v lsr (o - sub_bits)) land (subs - 1) in
    exact_limit + ((o - sub_bits - 1) * subs) + sub
  end

(* Inclusive lower bound of bucket [i], and exclusive upper bound. *)
let bucket_lo i =
  if i < exact_limit then i
  else begin
    let o = sub_bits + 1 + ((i - exact_limit) / subs) in
    let sub = (i - exact_limit) mod subs in
    (1 lsl o) lor (sub lsl (o - sub_bits))
  end

let bucket_hi i =
  if i < exact_limit then i + 1
  else begin
    let o = sub_bits + 1 + ((i - exact_limit) / subs) in
    bucket_lo i + (1 lsl (o - sub_bits))
  end

let record t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then nan else float_of_int t.sum /. float_of_int t.count

let percentile t q =
  if t.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int t.count in
    let rec find i seen =
      if i >= nbuckets then float_of_int t.max_v
      else begin
        let n = t.buckets.(i) in
        if n = 0 then find (i + 1) seen
        else begin
          let seen' = seen + n in
          if float_of_int seen' >= rank then begin
            (* Interpolate within the bucket, clamped to observed extremes. *)
            let lo = float_of_int (max (bucket_lo i) (min_value t)) in
            let hi = float_of_int (min (bucket_hi i) (t.max_v + 1)) in
            let frac =
              if n = 0 then 0.0 else (rank -. float_of_int seen) /. float_of_int n
            in
            let frac = Float.max 0.0 (Float.min 1.0 frac) in
            lo +. (frac *. (hi -. lo))
          end
          else find (i + 1) seen'
        end
      end
    in
    find 0 0
  end

let reset t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("p50", Json.Float (percentile t 0.50));
      ("p90", Json.Float (percentile t 0.90));
      ("p99", Json.Float (percentile t 0.99));
    ]

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "count=0"
  else
    Format.fprintf ppf "count=%d mean=%.1f p50=%.0f p90=%.0f p99=%.0f max=%d" t.count (mean t)
      (percentile t 0.50) (percentile t 0.90) (percentile t 0.99) t.max_v
