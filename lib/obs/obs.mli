(** Observability: metrics, latency histograms and operation tracing.

    Dependency-free (stdlib only). One {!t} bundles a metrics registry and a
    tracer around a shared microsecond clock; the server keeps one per
    instance and threads it through every layer. *)

module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  now : unit -> int;  (** microseconds; simulated or wall, caller's choice *)
}

val create : ?trace_capacity:int -> now:(unit -> int) -> unit -> t
(** Tracing starts disabled; flip it with [Trace.set_enabled t.trace]. *)

val time : t -> Histogram.t -> string -> (unit -> 'a) -> 'a
(** [time t h name f] runs [f], records its clock duration into [h], and —
    when tracing is enabled — wraps it in a span called [name]. This is the
    one instrumentation primitive the server layers use; when tracing is
    off it costs two clock reads and a histogram increment. *)
