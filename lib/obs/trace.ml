type span = {
  id : int;
  name : string;
  depth : int;
  start_us : int;
  mutable dur_us : int;
}

type token = span option

type t = {
  now : unit -> int;
  capacity : int;
  ring : span Queue.t;
  mutable enabled : bool;
  mutable depth : int;
  mutable next_id : int;
  mutable sink : (string -> unit) option;
}

let create ?(capacity = 8192) ~now () =
  { now; capacity; ring = Queue.create (); enabled = false; depth = 0; next_id = 1; sink = None }

let set_enabled t flag =
  t.enabled <- flag;
  if not flag then t.depth <- 0

let enabled t = t.enabled
let set_sink t sink = t.sink <- sink

let span_to_json (s : span) =
  Json.Obj
    [
      ("id", Json.Int s.id);
      ("name", Json.Str s.name);
      ("depth", Json.Int s.depth);
      ("start_us", Json.Int s.start_us);
      ("dur_us", Json.Int s.dur_us);
    ]

let enter t name : token =
  if not t.enabled then None
  else begin
    let s = { id = t.next_id; name; depth = t.depth; start_us = t.now (); dur_us = 0 } in
    t.next_id <- t.next_id + 1;
    t.depth <- t.depth + 1;
    Some s
  end

let exit t (tok : token) =
  match tok with
  | None -> ()
  | Some s ->
    s.dur_us <- max 0 (t.now () - s.start_us);
    if t.depth > 0 then t.depth <- t.depth - 1;
    Queue.add s t.ring;
    if Queue.length t.ring > t.capacity then ignore (Queue.pop t.ring);
    (match t.sink with Some emit -> emit (Json.to_string (span_to_json s)) | None -> ())

let with_span t name f =
  let tok = enter t name in
  match f () with
  | r ->
    exit t tok;
    r
  | exception e ->
    exit t tok;
    raise e

let spans t = List.of_seq (Queue.to_seq t.ring)

let clear t =
  Queue.clear t.ring;
  t.depth <- 0

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Queue.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (span_to_json s));
      Buffer.add_char buf '\n')
    t.ring;
  Buffer.contents buf
