module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

type t = {
  metrics : Metrics.t;
  trace : Trace.t;
  now : unit -> int;
}

let create ?trace_capacity ~now () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity:trace_capacity ~now (); now }

let time t h name f =
  let tok = Trace.enter t.trace name in
  let t0 = t.now () in
  match f () with
  | r ->
    Histogram.record h (t.now () - t0);
    Trace.exit t.trace tok;
    r
  | exception e ->
    Histogram.record h (t.now () - t0);
    Trace.exit t.trace tok;
    raise e
