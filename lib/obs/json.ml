type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec emit ~indent ~level buf v =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string buf "\n" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> Buffer.add_string buf (escape s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    sep ();
    List.iteri
      (fun i item ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        emit ~indent ~level:(level + 1) buf item)
      items;
    sep ();
    pad level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    sep ();
    List.iteri
      (fun i (k, item) ->
        if i > 0 then begin
          Buffer.add_char buf ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then ": " else ":");
        emit ~indent ~level:(level + 1) buf item)
      fields;
    sep ();
    pad level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  emit ~indent:true ~level:0 buf v;
  Buffer.contents buf
