(** Minimal JSON emitter — just enough to render metrics, traces and bench
    results without pulling a dependency into the observability layer.

    Values are built as a tree and serialized with correct string escaping
    and deterministic field order (whatever order the caller supplies). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. [Float nan]/[infinity] render as [null]
    (JSON has no encoding for them). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val escape : string -> string
(** The quoted, escaped form of a string literal. *)
