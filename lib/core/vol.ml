type t = {
  hdr : Volume.header;
  dev : Worm.Block_io.t;
  cache : Blockcache.Cache.t;
  io : Worm.Block_io.t;
  pending : Entrymap.Pending.t;
  tail : Block_format.Builder.t;
  mutable tail_index : int;
  mutable tail_open : bool;
  mutable sealed : bool;
  mutable online : bool;
  read_gen : int ref;
}

(* Partition hint for the segmented cache: entrymap (and other internal)
   blocks are the interior nodes every locate descends through — they go to
   the meta partition so a data scan can never displace them. The first
   record of a block starts at offset 0, so one header decode suffices. *)
let classify_block b =
  match Header.decode b ~pos:0 with
  | Ok (h, _) when Ids.is_internal h.Header.logfile -> Blockcache.Cache.Meta
  | Ok _ | Error _ -> Blockcache.Cache.Data

let make ~config ?metrics ~hdr dev =
  let cache =
    Blockcache.Cache.create ~capacity_blocks:config.Config.cache_blocks
      ~classify:classify_block ?metrics dev
  in
  let cache_io = Blockcache.Cache.io cache in
  (* Invalidation is the only way a settled block's contents can change on
     write-once media; bumping the generation here lazily flushes every
     read-path memo entry for this volume. *)
  let read_gen = ref 0 in
  let io =
    {
      cache_io with
      Worm.Block_io.invalidate =
        (fun idx ->
          incr read_gen;
          cache_io.Worm.Block_io.invalidate idx);
    }
  in
  let levels = Config.levels config ~capacity:hdr.Volume.capacity in
  {
    hdr;
    dev;
    cache;
    io;
    pending = Entrymap.Pending.create ~fanout:hdr.Volume.fanout ~levels;
    tail = Block_format.Builder.create ~block_size:hdr.Volume.block_size;
    tail_index = 0;
    tail_open = false;
    sealed = false;
    online = true;
    read_gen;
  }

let levels t = Entrymap.Pending.levels t.pending
let fanout t = t.hdr.Volume.fanout

let pow_fanout t l =
  let rec go acc l = if l = 0 then acc else go (acc * fanout t) (l - 1) in
  go 1 l

let device_frontier t =
  match t.dev.Worm.Block_io.frontier () with
  | Some f -> f
  | None -> if t.tail_open then t.tail_index else t.tail_index

let written_limit t =
  if t.tail_open && not (Block_format.Builder.is_empty t.tail) then t.tail_index + 1
  else device_frontier t

type view =
  | Records of Block_format.record array
  | Invalid
  | Corrupted
  | Missing

let view_block t idx =
  if idx <= 0 || idx >= t.hdr.Volume.capacity then Invalid
  else if t.tail_open && idx = t.tail_index then
    Records (Block_format.Builder.records t.tail)
  else
    match t.io.Worm.Block_io.read idx with
    | Error (Worm.Block_io.Unwritten _) -> Missing
    | Error _ -> Missing
    | Ok b -> (
      match Block_format.classify b with
      | Block_format.Valid records -> Records records
      | Block_format.Invalidated -> Invalid
      | Block_format.Corrupt -> Corrupted)

let first_timestamp t idx =
  match view_block t idx with
  | Records records -> Block_format.first_timestamp records
  | Invalid | Corrupted | Missing -> None
