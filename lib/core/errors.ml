type t =
  | Device of Worm.Block_io.error
  | Corrupt_block of int
  | Bad_record of string
  | No_such_log of string
  | Log_exists of string
  | Invalid_name of string
  | Catalog_full
  | Entry_too_large of int
  | Volume_offline of int
  | Sequence_full
  | No_entry
  | Cursor_expired
  | Remote of string
  | Degraded
  | Timeout
  | Disconnected
  | Not_primary of string
  | Stale_epoch of int

let pp ppf = function
  | Device e -> Format.fprintf ppf "device: %a" Worm.Block_io.pp_error e
  | Corrupt_block b -> Format.fprintf ppf "block %d is corrupt" b
  | Bad_record msg -> Format.fprintf ppf "bad record: %s" msg
  | No_such_log name -> Format.fprintf ppf "no such log file: %s" name
  | Log_exists name -> Format.fprintf ppf "log file exists: %s" name
  | Invalid_name name -> Format.fprintf ppf "invalid log file name: %s" name
  | Catalog_full -> Format.fprintf ppf "catalog full (4095 log files)"
  | Entry_too_large n -> Format.fprintf ppf "entry too large: %d bytes" n
  | Volume_offline v -> Format.fprintf ppf "volume %d is offline" v
  | Sequence_full -> Format.fprintf ppf "volume sequence exhausted"
  | No_entry -> Format.fprintf ppf "no matching entry"
  | Cursor_expired -> Format.fprintf ppf "cursor expired (closed, evicted or stale token)"
  | Remote msg -> Format.fprintf ppf "remote error: %s" msg
  | Degraded -> Format.fprintf ppf "server degraded: writes disabled (read-only mode)"
  | Timeout -> Format.fprintf ppf "request timed out (deadline exceeded)"
  | Disconnected -> Format.fprintf ppf "transport disconnected"
  | Not_primary hint ->
    if hint = "" then Format.fprintf ppf "not the primary: writes refused"
    else Format.fprintf ppf "not the primary: writes refused (primary: %s)" hint
  | Stale_epoch e -> Format.fprintf ppf "stale replication epoch (current epoch is %d)" e

let to_string e = Format.asprintf "%a" pp e

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_dev = function Ok v -> Ok v | Error e -> Error (Device e)
