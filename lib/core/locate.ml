let ( let* ) = Errors.( let* )

let vol_index_of st (v : Vol.t) =
  let rec go i = if st.State.vols.(i) == v then i else go (i + 1) in
  go 0

(* All block examinations on the locate path are counted for the Table 1 /
   Figure 3 reproductions. *)
let view st v idx =
  st.State.stats.Stats.locate_block_reads <- st.State.stats.Stats.locate_block_reads + 1;
  Vol.view_block v idx

(* Slack-window scan for the entrymap entry posted at [boundary]; also
   reports the block index where it was found so the caller can decide
   whether the result is a settled (memoizable) fact. *)
let read_map_scan st v ~level ~boundary =
  let expected_base = boundary - Vol.pow_fanout v level in
  let slack = st.State.config.Config.entrymap_slack in
  let vol = vol_index_of st v in
  let fanout = Vol.fanout v in
  let stop = min (boundary + slack) (Vol.written_limit v) in
  let rec scan_block idx =
    if idx >= stop then Ok None
    else
      match view st v idx with
      | Vol.Missing -> Ok None
      | Vol.Invalid | Vol.Corrupted -> scan_block (idx + 1)
      | Vol.Records recs ->
        let rec scan_rec i =
          if i >= Array.length recs then scan_block (idx + 1)
          else begin
            let r = recs.(i) in
            if
              Header.is_start r.Block_format.header
              && r.Block_format.header.Header.logfile = Ids.entrymap
            then begin
              let* _, payload, _ =
                Assemble.entry_at st { Assemble.vol; block = idx; rec_index = i }
              in
              match Entrymap.decode ~fanout payload with
              | Error _ -> scan_rec (i + 1)
              | Ok entry ->
                if entry.Entrymap.level = level && entry.Entrymap.base = expected_base then
                  Ok (Some (entry, idx))
                else scan_rec (i + 1)
            end
            else scan_rec (i + 1)
          end
        in
        scan_rec 0
  in
  scan_block boundary

(* Memoizing wrapper: every entrymap read goes through here, so a repeated
   descent decodes each (level, boundary) entry at most once per generation.
   Memoization rules for write-once media:
   - a found entry is a settled fact once its block is below the device
     frontier (the open tail may still be displaced on flush);
   - absence is a settled fact only once the {e whole} slack window is below
     the frontier — a deferred entry can still land inside a window that
     overlaps unwritten blocks. *)
let read_map st v ~level ~boundary =
  let memo_on = st.State.config.Config.locate_memo in
  let vol = vol_index_of st v in
  let gen = !(v.Vol.read_gen) in
  match
    if memo_on then Read_memo.find_entry st.State.read_memo ~vol ~level ~boundary ~gen
    else None
  with
  | Some cached ->
    st.State.stats.Stats.entrymap_memo_hits <- st.State.stats.Stats.entrymap_memo_hits + 1;
    Ok cached
  | None -> (
    (* Tolerate assembly failures on displaced candidates: fall through to
       "missing" rather than failing the whole locate (and never memoize a
       tolerated failure). *)
    match read_map_scan st v ~level ~boundary with
    | Ok (Some (entry, idx)) ->
      if memo_on && idx < Vol.device_frontier v then
        Read_memo.store_entry st.State.read_memo ~vol ~level ~boundary ~gen (Some entry);
      Ok (Some entry)
    | Ok None ->
      let slack = st.State.config.Config.entrymap_slack in
      if memo_on && boundary + slack <= Vol.device_frontier v then
        Read_memo.store_entry st.State.read_memo ~vol ~level ~boundary ~gen None;
      Ok None
    | Error (Errors.Corrupt_block _) | Error Errors.No_entry -> Ok None
    | Error _ as e -> e)

let block_contains st v ~log idx =
  match view st v idx with
  | Vol.Records recs ->
    Array.exists
      (fun r -> Catalog.is_member st.State.catalog ~log r.Block_format.header)
      recs
  | Vol.Invalid | Vol.Corrupted | Vol.Missing -> false

(* The bitmap covering [base, base + N^level) — from pending if that range
   is still accumulating, else from the entrymap entry at its boundary.
   Every successful lookup counts as one entrymap examination: a pending hit
   is the in-memory analogue of the paper's cached entrymap entry. *)
type map_source = Map of Bitmap.t | Missing_map

let get_bitmap st v ~level ~base ~log =
  let count () =
    st.State.stats.Stats.entrymap_records_examined <-
      st.State.stats.Stats.entrymap_records_examined + 1
  in
  if Entrymap.Pending.covers v.Vol.pending ~level ~base then begin
    match Entrymap.Pending.query v.Vol.pending ~level ~base log with
    | Some bm ->
      count ();
      Ok (Map bm)
    | None -> Ok Missing_map
  end
  else begin
    let boundary = base + Vol.pow_fanout v level in
    if boundary > Vol.written_limit v then Ok Missing_map
    else
      let* entry = read_map st v ~level ~boundary in
      match entry with
      | None -> Ok Missing_map
      | Some e ->
        count ();
        (match List.assoc_opt log e.Entrymap.maps with
        | Some bm -> Ok (Map bm)
        | None -> Ok (Map (Bitmap.create (Vol.fanout v))))
  end

let align_down block span = block - (block mod span)

let tail_candidate st v ~log =
  if
    v.Vol.tail_open
    && (not (Block_format.Builder.is_empty v.Vol.tail))
    && block_contains st v ~log v.Vol.tail_index
  then Some v.Vol.tail_index
  else None

(* ---------------- conservative descent (missing maps) ---------------- *)

(* Greatest verified matching block in [base, base + N^level) ∩ [1, limit),
   searching lower levels when a map is missing (section 2.3.2). *)
let rec search_down_prev st v ~log ~level ~base ~limit =
  if base >= limit then Ok None
  else if level = 0 then begin
    if base >= 1 && block_contains st v ~log base then Ok (Some base) else Ok None
  end
  else begin
    let child_span = Vol.pow_fanout v (level - 1) in
    let* src = get_bitmap st v ~level ~base ~log in
    let covered g = match src with Map bm -> Bitmap.get bm g | Missing_map -> true in
    let g_hi = min (Vol.fanout v - 1) ((limit - 1 - base) / child_span) in
    let rec try_group g =
      if g < 0 then Ok None
      else if covered g then begin
        let* r =
          search_down_prev st v ~log ~level:(level - 1) ~base:(base + (g * child_span)) ~limit
        in
        match r with Some _ -> Ok r | None -> try_group (g - 1)
      end
      else try_group (g - 1)
    in
    try_group g_hi
  end

(* Smallest verified matching block in [max(base, from), base + N^level) ∩
   [1, limit). *)
let rec search_down_next st v ~log ~level ~base ~from ~limit =
  if base >= limit then Ok None
  else if level = 0 then begin
    if base >= max from 1 && base < limit && block_contains st v ~log base then Ok (Some base)
    else Ok None
  end
  else begin
    let child_span = Vol.pow_fanout v (level - 1) in
    let* src = get_bitmap st v ~level ~base ~log in
    let covered g = match src with Map bm -> Bitmap.get bm g | Missing_map -> true in
    let g_lo = if from <= base then 0 else (from - base) / child_span in
    let rec try_group g =
      if g >= Vol.fanout v || base + (g * child_span) >= limit then Ok None
      else if covered g then begin
        let* r =
          search_down_next st v ~log ~level:(level - 1) ~base:(base + (g * child_span)) ~from
            ~limit
        in
        match r with Some _ -> Ok r | None -> try_group (g + 1)
      end
      else try_group (g + 1)
    in
    try_group g_lo
  end

(* -------------------- skip index (locate memoization) ----------------- *)

(* A locate's verified answer over settled storage is an immutable fact:
   blocks below the device frontier can never gain or lose log membership
   except through invalidation (which bumps the volume generation). The two
   wrappers below consult the skip index before running the full descent and
   learn confirmed results afterwards — but only results strictly below the
   frontier; the open tail re-answers through [tail_candidate], which is
   always checked before these run. *)

let memo_next st v ~log ~from compute =
  if not st.State.config.Config.locate_memo then compute ()
  else begin
    let vol = vol_index_of st v in
    let gen = !(v.Vol.read_gen) in
    match Read_memo.find_next st.State.read_memo ~vol ~log ~from ~gen with
    | Some b ->
      st.State.stats.Stats.locate_memo_hits <- st.State.stats.Stats.locate_memo_hits + 1;
      Ok (Some b)
    | None ->
      let r = compute () in
      (match r with
      | Ok (Some b) when b < Vol.device_frontier v ->
        Read_memo.store_next st.State.read_memo ~vol ~log ~from ~gen b
      | _ -> ());
      r
  end

(* Prev links additionally key on the device frontier: a tail flush settles
   a new highest block without bumping the generation, and a pre-flush
   "greatest block < limit" answer must not survive it. *)
let memo_prev st v ~log ~limit compute =
  if not st.State.config.Config.locate_memo then compute ()
  else begin
    let vol = vol_index_of st v in
    let frontier = Vol.device_frontier v in
    let gen = !(v.Vol.read_gen) in
    match Read_memo.find_prev st.State.read_memo ~vol ~log ~limit ~frontier ~gen with
    | Some b ->
      st.State.stats.Stats.locate_memo_hits <- st.State.stats.Stats.locate_memo_hits + 1;
      Ok (Some b)
    | None ->
      let r = compute () in
      (match r with
      | Ok (Some b) when b < frontier ->
        Read_memo.store_prev st.State.read_memo ~vol ~log ~limit ~frontier ~gen b
      | _ -> ());
      r
  end

(* ------------------------- previous direction ------------------------ *)

(* Bottom-up, as the paper describes: examine the level-1 bitmap around the
   start position, climb while nothing is found (each climb examines one
   entrymap entry), then descend into the highest marked group (one entry
   per level). Near entries stay cheap; an entry N^k blocks away costs about
   2k-1 examinations (Table 1). *)
let prev_block st v ~log ~before =
  Obs.time st.State.obs st.State.probes.State.h_locate "locate.prev" @@ fun () ->
  let limit = min before (Vol.written_limit v) in
  if limit <= 1 then Ok None
  else if log = Ids.root then begin
    (* Every written block belongs to the volume-sequence log. *)
    memo_prev st v ~log ~limit @@ fun () ->
    let rec down idx =
      if idx < 1 then Ok None
      else
        match view st v idx with
        | Vol.Records recs when Array.length recs > 0 -> Ok (Some idx)
        | Vol.Records _ | Vol.Invalid | Vol.Corrupted | Vol.Missing -> down (idx - 1)
    in
    down (limit - 1)
  end
  else begin
    match tail_candidate st v ~log with
    | Some t when t < before -> Ok (Some t)
    | Some _ | None ->
      memo_prev st v ~log ~limit @@ fun () ->
      let top = Vol.levels v in
      (* Invariant: no matching block in [cur, limit). *)
      let rec climb level cur =
        if cur <= 1 then Ok None
        else if level > top then Ok None
        else begin
          let span = Vol.pow_fanout v level in
          let child_span = Vol.pow_fanout v (level - 1) in
          let base = align_down (cur - 1) span in
          let* src = get_bitmap st v ~level ~base ~log in
          match src with
          | Missing_map ->
            let* r = search_down_prev st v ~log ~level ~base ~limit:cur in
            (match r with Some _ -> Ok r | None -> climb (level + 1) base)
          | Map bm ->
            let g_cur = (cur - 1 - base) / child_span in
            let rec groups g =
              if g < 0 then climb (level + 1) base
              else if Bitmap.get bm g then begin
                let* r =
                  search_down_prev st v ~log ~level:(level - 1)
                    ~base:(base + (g * child_span)) ~limit:cur
                in
                match r with Some _ -> Ok r | None -> groups (g - 1)
              end
              else groups (g - 1)
            in
            groups g_cur
        end
      in
      climb 1 limit
  end

(* --------------------------- next direction -------------------------- *)

let next_block st v ~log ~from =
  Obs.time st.State.obs st.State.probes.State.h_locate "locate.next" @@ fun () ->
  let limit = Vol.written_limit v in
  let from = max from 1 in
  if from >= limit then Ok None
  else if log = Ids.root then begin
    memo_next st v ~log ~from @@ fun () ->
    let rec up idx =
      if idx >= limit then Ok None
      else
        match view st v idx with
        | Vol.Records recs when Array.length recs > 0 -> Ok (Some idx)
        | Vol.Records _ | Vol.Invalid | Vol.Corrupted | Vol.Missing -> up (idx + 1)
    in
    up from
  end
  else begin
    memo_next st v ~log ~from @@ fun () ->
    let top = Vol.levels v in
    let check_tail () =
      match tail_candidate st v ~log with
      | Some t when t >= from -> Ok (Some t)
      | Some _ | None -> Ok None
    in
    (* Invariant: no matching block in [from, cur). *)
    let rec climb level cur =
      if cur >= limit then check_tail ()
      else if level > top then check_tail ()
      else begin
        let span = Vol.pow_fanout v level in
        let child_span = Vol.pow_fanout v (level - 1) in
        let base = align_down cur span in
        let* src = get_bitmap st v ~level ~base ~log in
        match src with
        | Missing_map ->
          let* r = search_down_next st v ~log ~level ~base ~from:cur ~limit in
          (match r with Some _ -> Ok r | None -> climb (level + 1) (base + span))
        | Map bm ->
          let g_cur = (cur - base) / child_span in
          let rec groups g =
            if g >= Vol.fanout v || base + (g * child_span) >= limit then
              climb (level + 1) (base + span)
            else if Bitmap.get bm g then begin
              let* r =
                search_down_next st v ~log ~level:(level - 1) ~base:(base + (g * child_span))
                  ~from:cur ~limit
              in
              match r with Some _ -> Ok r | None -> groups (g + 1)
            end
            else groups (g + 1)
          in
          groups g_cur
      end
    in
    climb 1 from
  end
