let ( let* ) = Errors.( let* )

let find_frontier st (dev : Worm.Block_io.t) =
  match dev.frontier () with
  | Some f -> f
  | None ->
    (* Binary search for the first unreadable block: all written blocks
       precede all unwritten ones on an append-only medium. *)
    let probe idx =
      st.State.stats.Stats.frontier_probe_reads <-
        st.State.stats.Stats.frontier_probe_reads + 1;
      match dev.read idx with Ok _ -> true | Error _ -> false
    in
    let rec search lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if probe mid then search (mid + 1) hi else search lo mid
      end
    in
    search 0 dev.capacity

(* Walk down from the discovered frontier invalidating garbage blocks a
   crashed writer left past the last valid block (section 2.3.2); their
   locations are queued for the bad-block log. Returns the new frontier. *)
let quarantine_garbage st (v : Vol.t) upper =
  (* A crashed writer may have sprayed readable garbage past the reported
     frontier; probe forward until the first truly unreadable block. *)
  let upper = ref upper in
  let rec extend () =
    if !upper < v.hdr.Volume.capacity then begin
      st.State.stats.Stats.frontier_probe_reads <- st.State.stats.Stats.frontier_probe_reads + 1;
      match v.dev.Worm.Block_io.read !upper with
      | Ok _ ->
        incr upper;
        extend ()
      | Error _ -> ()
    end
  in
  extend ();
  let upper = !upper in
  let classify idx =
    match v.dev.Worm.Block_io.read idx with
    | Error _ -> `Unreadable
    | Ok b ->
      if idx = 0 then if Volume.is_volume_header b then `Valid else `Garbage
      else (
        match Block_format.classify b with
        | Block_format.Valid _ -> `Valid
        | Block_format.Invalidated -> `Valid (* deliberately burned: fine *)
        | Block_format.Corrupt -> `Garbage)
  in
  let rec collect i acc =
    if i < 0 then acc
    else
      match classify i with
      | `Valid -> acc
      | `Garbage | `Unreadable -> collect (i - 1) (i :: acc)
  in
  let garbage = collect (upper - 1) [] in
  List.iter
    (fun idx ->
      st.State.stats.Stats.bad_blocks <- st.State.stats.Stats.bad_blocks + 1;
      (match v.io.Worm.Block_io.invalidate idx with Ok () | Error _ -> ());
      st.State.badblock_queue <- idx :: st.State.badblock_queue)
    garbage;
  match v.dev.Worm.Block_io.frontier () with Some f -> max f upper | None -> upper

let align_down block span = block - (block mod span)

let rebuild_pending st (v : Vol.t) =
  let f = v.tail_index in
  if f > 1 then begin
    let fanout = Vol.fanout v in
    let reads_before = st.State.stats.Stats.locate_block_reads in
    let own = ref 0 in
    (* Every level's accumulating range must point at the range containing
       the last written block BEFORE any seeding: if the whole range turns
       out to be invalid blocks (quarantined garbage), no seed call would
       ever move the base off its initial value, and a stale base claims
       authoritative empty coverage of blocks whose entrymap entry is on
       the medium. *)
    for level = 1 to Vol.levels v do
      Entrymap.Pending.retarget v.pending ~level ~block:(f - 1)
    done;
    (* Level 1: examine the raw blocks written since the last level-1
       boundary (between 0 and N of them). *)
    let base1 = align_down (f - 1) fanout in
    for b = base1 to f - 1 do
      incr own;
      match Vol.view_block v b with
      | Vol.Records recs ->
        let files =
          Array.fold_left
            (fun acc r -> State.expand_members st r.Block_format.header @ acc)
            [] recs
          |> List.sort_uniq compare
        in
        if files <> [] then Entrymap.Pending.seed v.pending ~level:1 ~block:b files
      | Vol.Invalid | Vol.Corrupted | Vol.Missing -> ()
    done;
    (* Levels >= 2: examine the level-(l-1) entrymap entries written since
       the last level-l boundary (between 0 and N of them), falling back to
       raw blocks where an entry is missing. *)
    for level = 2 to Vol.levels v do
      let child_span = Vol.pow_fanout v (level - 1) in
      let base_l = align_down (f - 1) (Vol.pow_fanout v level) in
      let top_child = align_down (f - 1) child_span in
      let boundary = ref (base_l + child_span) in
      while !boundary <= top_child do
        let repr = !boundary - child_span in
        (match Locate.read_map st v ~level:(level - 1) ~boundary:!boundary with
        | Ok (Some e) ->
          List.iter
            (fun (id, bm) ->
              if not (Bitmap.is_empty bm) then
                Entrymap.Pending.seed v.pending ~level ~block:repr [ id ])
            e.Entrymap.maps
        | Ok None | Error _ ->
          (* Missing entrymap entry: assume nothing and search the raw
             blocks of that child range (section 2.3.2). *)
          for b = repr to !boundary - 1 do
            incr own;
            st.State.stats.Stats.fallback_blocks_scanned <-
              st.State.stats.Stats.fallback_blocks_scanned + 1;
            match Vol.view_block v b with
            | Vol.Records recs ->
              let files =
                Array.fold_left
                  (fun acc r -> State.expand_members st r.Block_format.header @ acc)
                  [] recs
                |> List.sort_uniq compare
              in
              if files <> [] then Entrymap.Pending.seed v.pending ~level ~block:b files
            | Vol.Invalid | Vol.Corrupted | Vol.Missing -> ()
          done);
        boundary := !boundary + child_span
      done;
      (* The child range still accumulating contributes the files of the
         level below, which was just rebuilt. *)
      let files = Entrymap.Pending.files_at v.pending ~level:(level - 1) in
      if files <> [] then Entrymap.Pending.seed v.pending ~level ~block:top_child files
    done;
    let map_reads = st.State.stats.Stats.locate_block_reads - reads_before in
    st.State.stats.Stats.recovery_blocks_examined <-
      st.State.stats.Stats.recovery_blocks_examined + !own + map_reads
  end

let restore_last_ts st (v : Vol.t) =
  let max_ts recs =
    Array.fold_left
      (fun acc (r : Block_format.record) ->
        match r.Block_format.header.Header.timestamp with
        | Some t when Int64.compare t acc > 0 -> t
        | Some _ | None -> acc)
      st.State.last_ts recs
  in
  if v.tail_open then st.State.last_ts <- max_ts (Block_format.Builder.records v.tail);
  let rec down idx =
    if idx >= 1 then
      match Vol.view_block v idx with
      | Vol.Records recs -> st.State.last_ts <- max_ts recs
      | Vol.Invalid | Vol.Corrupted -> down (idx - 1)
      | Vol.Missing -> down (idx - 1)
  in
  down (v.tail_index - 1);
  if Int64.compare v.hdr.Volume.created st.State.last_ts > 0 then
    st.State.last_ts <- v.hdr.Volume.created

let replay_catalog st =
  let last = State.nvols st - 1 in
  let cursor =
    Reader.at_position st ~log:Ids.catalog { Assemble.vol = last; block = 1; rec_index = 0 }
  in
  let rec loop () =
    let* e = Reader.next cursor in
    match e with
    | None -> Ok ()
    | Some e ->
      let* () = Catalog.replay st.State.catalog e.Reader.payload in
      loop ()
  in
  loop ()

let recover ~config ~clock ?nvram ~alloc_volume ~devices () =
  let* config = Config.validate config in
  let st = State.make ~config ~clock ?nvram ~alloc_volume () in
  Obs.time st.State.obs st.State.probes.State.h_recover "recover" @@ fun () ->
  st.State.stats.Stats.recoveries <- st.State.stats.Stats.recoveries + 1;
  (* Read and validate every volume header. *)
  let* headed =
    List.fold_left
      (fun acc dev ->
        let* acc = acc in
        let* block0 = Errors.of_dev (dev.Worm.Block_io.read 0) in
        let* hdr = Volume.decode_header block0 in
        Ok ((hdr, dev) :: acc))
      (Ok []) devices
  in
  let headed = List.sort (fun (a, _) (b, _) -> compare a.Volume.vol_index b.Volume.vol_index) headed in
  let* () =
    match headed with
    | [] -> Error (Errors.Bad_record "no volumes supplied")
    | (first, _) :: _ ->
      let seq = first.Volume.seq_uid in
      let rec check i = function
        | [] -> Ok ()
        | (h, _) :: rest ->
          if h.Volume.seq_uid <> seq then Error (Errors.Bad_record "volumes from different sequences")
          else if h.Volume.vol_index <> i then Error (Errors.Bad_record "volume sequence has gaps")
          else check (i + 1) rest
      in
      check 0 headed
  in
  let vols =
    List.map
      (fun (hdr, dev) ->
        let v = Vol.make ~config ~metrics:st.State.obs.Obs.metrics ~hdr dev in
        let upper = find_frontier st dev in
        let f = quarantine_garbage st v upper in
        v.Vol.tail_index <- max f 1;
        v)
      headed
  in
  let vols = Array.of_list vols in
  let n = Array.length vols in
  Array.iteri (fun i v -> if i < n - 1 then v.Vol.sealed <- true) vols;
  st.State.vols <- vols;
  (match List.rev headed with
  | (hdr, _) :: _ ->
    st.State.seq_uid <- hdr.Volume.seq_uid;
    let max_uid =
      List.fold_left
        (fun acc (h, _) ->
          let m = if Int64.compare h.Volume.vol_uid acc > 0 then h.Volume.vol_uid else acc in
          if Int64.compare h.Volume.seq_uid m > 0 then h.Volume.seq_uid else m)
        0L headed
    in
    st.State.next_vol_uid <- Int64.add max_uid 1L
  | [] -> ());
  Array.iter (fun v -> rebuild_pending st v) vols;
  (* Restore a forced tail block from battery-backed RAM (section 2.3.1). *)
  let active = vols.(n - 1) in
  let* () =
    match nvram with
    | None -> Ok ()
    | Some nv -> (
      match Worm.Nvram.load nv with
      | None -> Ok ()
      | Some (block, image) ->
        (* The image names the tail block it was staged for. [block]
           differing from the recovered tail has TWO causes that must not
           be conflated: the block reached the medium before the crash
           (stale — clear), or the crashed writer's torn burn left garbage
           there and quarantine invalidated it, advancing the tail past an
           image that never landed (NOT stale — the image holds
           force-acknowledged entries and must be restored at the new
           tail, or an acknowledged force is silently lost). Only a block
           that reads back as valid records proves the image landed. *)
        let stale =
          block <> active.Vol.tail_index
          &&
          match active.Vol.dev.Worm.Block_io.read block with
          | Ok b -> (
            match Block_format.classify b with
            | Block_format.Valid _ -> true
            | Block_format.Invalidated | Block_format.Corrupt -> false)
          | Error _ -> false
        in
        if stale then begin
          Worm.Nvram.clear nv;
          Ok ()
        end
        else (
          match Block_format.classify image with
          | Block_format.Valid records ->
            let* () = Block_format.Builder.load active.Vol.tail records in
            active.Vol.tail_open <- true;
            (* Re-queue any entrymap entries due at the (possibly moved)
               tail boundary; duplicates are harmless (locate takes the
               first match). *)
            let block = active.Vol.tail_index in
            let due = Entrymap.Pending.due_at active.Vol.pending ~block in
            List.iter
              (fun level ->
                match Entrymap.Pending.take active.Vol.pending ~level ~boundary:block with
                | Some e -> Queue.add (active, e) st.State.deferred_emissions
                | None -> ())
              due;
            Ok ()
          | Block_format.Invalidated | Block_format.Corrupt ->
            Worm.Nvram.clear nv;
            Ok ()))
  in
  let* () = replay_catalog st in
  (* The pending bitmaps were rebuilt before the catalog existed, so sublog
     ancestor bits are missing from them. Re-seeding is additive (same
     ranges, OR-ed bits), and the blocks are cache-warm from the first
     pass; only hierarchical catalogs need it. *)
  let hierarchical =
    List.exists
      (fun d -> d.Catalog.parent <> Ids.root)
      (Catalog.live_descriptors st.State.catalog)
  in
  if hierarchical then Array.iter (fun v -> rebuild_pending st v) vols;
  restore_last_ts st active;
  Ok st
