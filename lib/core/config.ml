type t = {
  block_size : int;
  fanout : int;
  cache_blocks : int;
  nvram_tail : bool;
  entrymap_slack : int;
  timestamp_all : bool;
  trace_ops : bool;
  breaker_threshold : int;
  locate_memo : bool;
  read_ahead_blocks : int;
  repl_batch_blocks : int;
}

let default =
  {
    block_size = 1024;
    fanout = 16;
    cache_blocks = 1024;
    nvram_tail = true;
    entrymap_slack = 4;
    timestamp_all = true;
    trace_ops = false;
    breaker_threshold = 8;
    locate_memo = true;
    read_ahead_blocks = 8;
    repl_batch_blocks = 32;
  }

let validate t =
  if t.fanout < 2 then Error (Errors.Bad_record "fanout must be >= 2")
  else if t.fanout > 4096 then Error (Errors.Bad_record "fanout must be <= 4096")
  else if t.block_size < 64 then Error (Errors.Bad_record "block size must be >= 64")
  else if t.entrymap_slack < 1 then Error (Errors.Bad_record "entrymap slack must be >= 1")
  else if t.cache_blocks < 1 then Error (Errors.Bad_record "cache must hold >= 1 block")
  else if t.read_ahead_blocks < 0 || t.read_ahead_blocks > 1024 then
    Error (Errors.Bad_record "read-ahead must be in [0, 1024] blocks")
  else if t.repl_batch_blocks < 1 || t.repl_batch_blocks > 4096 then
    Error (Errors.Bad_record "replication batch must be in [1, 4096] blocks")
  else Ok t

let levels t ~capacity =
  let rec go l p = if p >= capacity || l >= 12 then l else go (l + 1) (p * t.fanout) in
  go 1 t.fanout

let pow_fanout t l =
  let rec go acc l = if l = 0 then acc else go (acc * t.fanout) (l - 1) in
  go 1 l
