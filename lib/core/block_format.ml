type record = {
  header : Header.t;
  payload : string;
  continues : bool;
  offset : int;
  index : int;
}

let magic = 0xC110
let format_version = 1
let trailer_bytes = 12
let index_entry_bytes = 2
let flag_forced = 0x01

type status = Valid of record array | Invalidated | Corrupt

let ( let* ) = Errors.( let* )

let parse_records block ~count ~data_bytes =
  let bs = Bytes.length block in
  let index_pos i = bs - trailer_bytes - (index_entry_bytes * (i + 1)) in
  let rec go i offset acc =
    if i >= count then Ok (Array.of_list (List.rev acc))
    else begin
      let slot = Wire.get_u16 block (index_pos i) in
      let continues = slot land 0x8000 <> 0 in
      let footprint = slot land 0x7FFF in
      if footprint = 0 || offset + footprint > data_bytes then
        Error (Errors.Bad_record "record footprint out of range")
      else
        let* header, payload_pos = Header.decode block ~pos:offset in
        let payload_len = footprint - (payload_pos - offset) in
        if payload_len < 0 then Error (Errors.Bad_record "record shorter than header")
        else begin
          let payload = Bytes.sub_string block payload_pos payload_len in
          let r = { header; payload; continues; offset; index = i } in
          go (i + 1) (offset + footprint) (r :: acc)
        end
    end
  in
  go 0 0 []

let classify block =
  let bs = Bytes.length block in
  if bs < trailer_bytes then Corrupt
  else if Worm.Block_io.is_invalidated_pattern block then Invalidated
  else begin
    let tpos = bs - trailer_bytes in
    let m = Wire.get_u16 block tpos in
    let v = Wire.get_u8 block (tpos + 2) in
    let count = Wire.get_u16 block (tpos + 4) in
    let data_bytes = Wire.get_u16 block (tpos + 6) in
    let crc_stored = Wire.get_u32 block (tpos + 8) in
    if m <> magic || v <> format_version then Corrupt
    else if crc_stored <> Wire.crc32 block ~pos:0 ~len:(bs - 4) then Corrupt
    else if data_bytes + (index_entry_bytes * count) + trailer_bytes > bs then Corrupt
    else
      match parse_records block ~count ~data_bytes with
      | Ok records -> Valid records
      | Error _ -> Corrupt
  end

let is_forced block =
  let bs = Bytes.length block in
  bs >= trailer_bytes && Wire.get_u8 block (bs - trailer_bytes + 3) land flag_forced <> 0

let parse block =
  match classify block with
  | Valid records -> Ok records
  | Invalidated -> Error (Errors.Bad_record "block is invalidated")
  | Corrupt -> Error (Errors.Bad_record "block is corrupt")

let first_timestamp records =
  if Array.length records = 0 then None else records.(0).header.Header.timestamp

module Builder = struct
  type t = {
    block_size : int;
    mutable recs : record list;  (* newest first *)
    mutable count : int;
    mutable data_bytes : int;
  }

  let create ~block_size =
    assert (block_size > trailer_bytes + index_entry_bytes + 16);
    { block_size; recs = []; count = 0; data_bytes = 0 }

  let block_size t = t.block_size
  let count t = t.count
  let is_empty t = t.count = 0
  let data_bytes t = t.data_bytes

  let used t = t.data_bytes + (index_entry_bytes * t.count) + trailer_bytes
  let free_bytes t = t.block_size - used t - index_entry_bytes

  let add t header ~continues payload =
    let footprint = Header.byte_size header + String.length payload in
    if footprint > free_bytes t then Error (Errors.Entry_too_large footprint)
    else if footprint > 0x7FFF then Error (Errors.Entry_too_large footprint)
    else begin
      let r =
        { header; payload; continues; offset = t.data_bytes; index = t.count }
      in
      t.recs <- r :: t.recs;
      t.count <- t.count + 1;
      t.data_bytes <- t.data_bytes + footprint;
      Ok ()
    end

  let records t = Array.of_list (List.rev t.recs)

  let padding_if_finished t = t.block_size - used t

  let finish ?(forced = false) t =
    let block = Bytes.make t.block_size '\000' in
    let in_order = List.rev t.recs in
    List.iter
      (fun r ->
        let enc = Wire.Enc.create () in
        Header.encode enc r.header;
        let hdr = Wire.Enc.contents enc in
        Bytes.blit_string hdr 0 block r.offset (String.length hdr);
        Bytes.blit_string r.payload 0 block
          (r.offset + String.length hdr)
          (String.length r.payload);
        let footprint = String.length hdr + String.length r.payload in
        let slot = footprint lor (if r.continues then 0x8000 else 0) in
        let ipos = t.block_size - trailer_bytes - (index_entry_bytes * (r.index + 1)) in
        Wire.set_u16 block ipos slot)
      in_order;
    let tpos = t.block_size - trailer_bytes in
    Wire.set_u16 block tpos magic;
    Wire.set_u8 block (tpos + 2) format_version;
    Wire.set_u8 block (tpos + 3) (if forced then flag_forced else 0);
    Wire.set_u16 block (tpos + 4) t.count;
    Wire.set_u16 block (tpos + 6) t.data_bytes;
    Wire.set_u32 block (tpos + 8) (Wire.crc32 block ~pos:0 ~len:(t.block_size - 4));
    block

  let reset t =
    t.recs <- [];
    t.count <- 0;
    t.data_bytes <- 0

  let load t records =
    if not (is_empty t) then Error (Errors.Bad_record "builder not empty")
    else begin
      let rec go i =
        if i >= Array.length records then Ok ()
        else
          let r = records.(i) in
          let* () = add t r.header ~continues:r.continues r.payload in
          go (i + 1)
      in
      go 0
    end
end

let max_payload_in_empty_block ~block_size ~header =
  block_size - trailer_bytes - index_entry_bytes - Header.byte_size header
