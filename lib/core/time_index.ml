let ( let* ) = Errors.( let* )

(* First timestamp of block [idx], walking forward past blocks that cannot
   answer (invalidated, corrupt, or starting with a continuation record).
   Every probe is counted: these are the reads Table 1's search performs. *)
let first_ts_resolved st v ~limit idx =
  let rec go i =
    if i >= limit then None
    else begin
      st.State.stats.Stats.time_probe_reads <- st.State.stats.Stats.time_probe_reads + 1;
      match Vol.first_timestamp v i with Some ts -> Some ts | None -> go (i + 1)
    end
  in
  go idx

(* Largest block in [1, limit) whose first timestamp is <= ts, by N-ary
   descent probing multiples of N^(level-1) — the entrymap block positions. *)
let descend_volume st v ts =
  let limit = Vol.written_limit v in
  let rec descend level lo =
    if level = 0 then lo
    else begin
      let span = Vol.pow_fanout v (level - 1) in
      let rec walk best k =
        let cand = lo + (k * span) in
        if k > Vol.fanout v || cand >= limit then best
        else
          match first_ts_resolved st v ~limit cand with
          | None -> best
          | Some t -> if Int64.compare t ts <= 0 then walk cand (k + 1) else best
      in
      descend (level - 1) (walk lo 1)
    end
  in
  descend (Vol.levels v) 1

let seek st ts =
  Obs.time st.State.obs st.State.probes.State.h_time_search "time_search" @@ fun () ->
  if State.nvols st = 0 then Error (Errors.Bad_record "no volumes")
  else begin
    (* Pick the last volume whose first data block is not after [ts]. *)
    let rec pick i best =
      if i >= State.nvols st then Ok best
      else
        let* v = State.vol st i in
        match first_ts_resolved st v ~limit:(Vol.written_limit v) 1 with
        | Some t when Int64.compare t ts <= 0 -> pick (i + 1) i
        | Some _ -> Ok best
        | None -> pick (i + 1) best
    in
    let* vi = pick 0 0 in
    let* v = State.vol st vi in
    let block = descend_volume st v ts in
    Ok { Assemble.vol = vi; block; rec_index = 0 }
  end

let first_at_or_after st ~log ts =
  let* pos = seek st ts in
  let c = Reader.at_position st ~log pos in
  let rec scan () =
    let* e = Reader.next c in
    match e with
    | None -> Ok None
    | Some e -> (
      match e.Reader.timestamp with
      | Some t when Int64.compare t ts >= 0 -> Ok (Some e)
      | Some _ | None -> scan ())
  in
  scan ()

let last_before st ~log ts =
  (* Position after the boundary then walk backwards past any entries with
     timestamp >= ts (there may be a few in the boundary block). *)
  let* pos = seek st ts in
  let c = Reader.at_position st ~log { pos with Assemble.block = pos.Assemble.block + 1 } in
  (* First skip forward entries in the boundary block that are < ts to make
     sure we do not miss them, by scanning backward from one block past the
     seek point and filtering. *)
  let rec back () =
    let* e = Reader.prev c in
    match e with
    | None -> Ok None
    | Some e -> (
      match e.Reader.timestamp with
      | Some t when Int64.compare t ts < 0 -> Ok (Some e)
      | Some _ -> back ()
      | None -> back ())
  in
  back ()
