type t = { width : int; bits : Bytes.t }

let byte_width n = (n + 7) / 8

let create n =
  assert (n > 0);
  { width = n; bits = Bytes.make (byte_width n) '\000' }

let width t = t.width

let set t i =
  assert (i >= 0 && i < t.width);
  let b = Char.code (Bytes.get t.bits (i / 8)) in
  Bytes.set t.bits (i / 8) (Char.chr (b lor (1 lsl (i mod 8))))

let get t i =
  i >= 0 && i < t.width
  && Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let is_empty t =
  let n = Bytes.length t.bits in
  let rec go i = i >= n || (Bytes.get t.bits i = '\000' && go (i + 1)) in
  go 0

let copy t = { width = t.width; bits = Bytes.copy t.bits }

let union dst src =
  assert (dst.width = src.width);
  for i = 0 to Bytes.length dst.bits - 1 do
    let v = Char.code (Bytes.get dst.bits i) lor Char.code (Bytes.get src.bits i) in
    Bytes.set dst.bits i (Char.chr v)
  done

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    set t i
  done;
  t

let highest_set_below t j =
  let rec go i = if i < 0 then None else if get t i then Some i else go (i - 1) in
  go (min (j - 1) (t.width - 1))

let lowest_set_from t j =
  let rec go i = if i >= t.width then None else if get t i then Some i else go (i + 1) in
  go (max j 0)

let byte_length t = Bytes.length t.bits
let to_string t = Bytes.to_string t.bits

let of_string ~width s =
  if String.length s <> byte_width width then
    Error (Errors.Bad_record "bitmap length mismatch")
  else Ok { width; bits = Bytes.of_string s }

let pp ppf t =
  for i = 0 to t.width - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
