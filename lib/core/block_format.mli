(** On-medium block layout (Figure 1).

    Records are packed from the front of the block; an index of 16-bit
    record footprints grows backwards from the trailer, so a block can be
    scanned forwards (cumulative offsets) or backwards (index walk) — the
    property Figure 1 is about. The 12-byte trailer holds a magic, format
    version, flags, record count, data-byte count and a CRC-32 of the whole
    block, which is how corruption (section 2.3.2) is detected.

    Bit 15 of an index footprint marks a record whose entry continues in a
    later block ("a log entry may also be fragmented over more than one
    block", section 2.1 footnote 7). *)

type record = {
  header : Header.t;
  payload : string;  (** this fragment's client bytes *)
  continues : bool;  (** entry continues in a later block *)
  offset : int;  (** byte offset of the record in its block *)
  index : int;  (** record position within the block, 0-based *)
}

val trailer_bytes : int
(** 12. *)

val index_entry_bytes : int
(** 2 per record. *)

(** Classification of a raw device block. *)
type status =
  | Valid of record array
  | Invalidated  (** all-1s: the server burned it (section 2.3.2) *)
  | Corrupt  (** bad magic or checksum: random garbage was written *)

val classify : bytes -> status

val parse : bytes -> (record array, Errors.t) result
(** [classify] folded into a result ([Invalidated]/[Corrupt] become
    errors). *)

val is_forced : bytes -> bool
(** True if the block image carries the forced-flush trailer flag — set on
    blocks burned by an explicit force and on NVRAM-staged tail images, both
    of which mark a durability point recovery may rely on. *)

val first_timestamp : record array -> int64 option
(** Timestamp of record 0 — mandatory on every written block, the anchor of
    the time search (section 2.1). *)

(** Accumulates records for the block being written (the in-memory tail). *)
module Builder : sig
  type t

  val create : block_size:int -> t
  val block_size : t -> int
  val count : t -> int
  val is_empty : t -> bool

  val free_bytes : t -> int
  (** Bytes available for the next record's header + payload (the 2-byte
      index slot is already accounted for). *)

  val add : t -> Header.t -> continues:bool -> string -> (unit, Errors.t) result
  (** Fails with [Entry_too_large] if the record does not fit. *)

  val records : t -> record array
  (** Parsed view of the partial block, for reads of the unflushed tail. *)

  val data_bytes : t -> int
  val padding_if_finished : t -> int
  (** Wasted bytes a forced flush of this partial block would burn. *)

  val finish : ?forced:bool -> t -> bytes
  (** Serializes to a full block image (free space zeroed, index + trailer +
      CRC appended). The builder may keep being used only after a
      {!Builder.reset}. *)

  val reset : t -> unit

  val load : t -> record array -> (unit, Errors.t) result
  (** Re-populates an empty builder from previously parsed records — used
      when recovery restores the tail block from NVRAM. *)
end

val max_payload_in_empty_block : block_size:int -> header:Header.t -> int
(** How much payload a single record with [header] can carry in a fresh
    block — the fragmentation threshold used by the writer. *)
