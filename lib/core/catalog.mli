(** The catalog: log-file descriptors and the sublog hierarchy.

    Per section 2.2, any attribute of a log file as a whole (name, parent,
    permissions, creation time) is kept out of entry headers and logged in
    the {e catalog log file}; the in-memory table here is merely a cache of
    that log, rebuilt by {!replay} during server initialization
    (section 2.3.1).

    Sublogs (section 2.1): every log file has a parent, forming a tree rooted
    at the volume-sequence log (id 0, name "/"). An entry logged in a sublog
    belongs to every ancestor, and the tree doubles as the naming hierarchy
    ("/mail/smith"). *)

type descriptor = {
  id : Ids.logfile;
  parent : Ids.logfile;
  name : string;  (** path component, unique among siblings *)
  perms : int;
  created : int64;
}

type t

val create : unit -> t
(** A fresh catalog containing only the implicit root and the reserved
    internal files ("/.entrymap", "/.catalog", "/.badblocks"). *)

(** {1 Queries} *)

val find : t -> Ids.logfile -> descriptor option
val exists : t -> Ids.logfile -> bool
val children : t -> Ids.logfile -> descriptor list
val lookup_child : t -> Ids.logfile -> string -> descriptor option

val resolve_path : t -> string -> (descriptor, Errors.t) result
(** [resolve_path t "/mail/smith"] walks the hierarchy. "/" resolves to the
    root descriptor. *)

val path_of : t -> Ids.logfile -> string
(** Inverse of {!resolve_path}. *)

val ancestors : t -> Ids.logfile -> Ids.logfile list
(** Strict ancestors, nearest first, excluding the root: the ids whose
    entrymap bitmaps an entry in this file must also set. *)

val is_member : t -> log:Ids.logfile -> Header.t -> bool
(** Does an entry with this header belong to log file [log]? True when [log]
    is the root, equals a declared member, or is an ancestor of one. *)

val live_descriptors : t -> descriptor list
(** All non-root descriptors, in id order — what a new volume's catalog
    snapshot re-logs. *)

val next_free_id : t -> (Ids.logfile, Errors.t) result

(** {1 Mutation + logging} *)

type op =
  | Create of descriptor
  | Set_perms of { id : Ids.logfile; perms : int; at : int64 }

val apply : t -> op -> (unit, Errors.t) result
(** Applies an operation to the in-memory table. Creating an existing id is
    an error except during snapshot replay when the descriptor is identical
    (snapshots re-log live files at volume boundaries). *)

val encode_op : op -> string
val decode_op : string -> (op, Errors.t) result

val replay : t -> string -> (unit, Errors.t) result
(** Decode one catalog-log payload and apply it; tolerant of re-applied
    identical [Create]s. *)

val validate_name : string -> (string, Errors.t) result
(** Component names: 1–255 bytes, no '/', not "." or "..". *)
