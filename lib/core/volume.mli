(** Log volumes (section 2.1).

    A log volume is one removable write-once medium. Block 0 holds a raw
    volume header (not in log-block format) identifying the volume, its
    position in its volume sequence, and the geometry every later block obeys
    — so a volume is self-describing when remounted. Data blocks start at
    index 1. *)

type header = {
  block_size : int;
  capacity : int;
  fanout : int;
  seq_uid : int64;  (** identifies the volume sequence *)
  vol_index : int;  (** 0-based position within the sequence *)
  vol_uid : int64;
  prev_uid : int64;  (** [vol_uid] of the predecessor; 0 for the first *)
  created : int64;  (** microseconds *)
}

val encode_header : header -> bytes
(** A full block image of [header.block_size] bytes. *)

val decode_header : bytes -> (header, Errors.t) result

val is_volume_header : bytes -> bool
(** Cheap magic check, used when mounting unidentified media. *)
