type entry = {
  level : int;
  base : int;
  maps : (Ids.logfile * Bitmap.t) list;
}

let ( let* ) = Errors.( let* )

let encode e =
  let enc = Wire.Enc.create () in
  Wire.Enc.u8 enc e.level;
  Wire.Enc.u8 enc 0;
  Wire.Enc.u32 enc e.base;
  Wire.Enc.u16 enc (List.length e.maps);
  List.iter
    (fun (id, bm) ->
      Wire.Enc.u16 enc id;
      Wire.Enc.bytes enc (Bitmap.to_string bm))
    e.maps;
  Wire.Enc.contents enc

let decode ~fanout payload =
  let dec = Wire.Dec.of_string payload in
  let* level = Wire.Dec.u8 dec in
  let* _reserved = Wire.Dec.u8 dec in
  let* base = Wire.Dec.u32 dec in
  let* count = Wire.Dec.u16 dec in
  let bm_bytes = (fanout + 7) / 8 in
  let rec go i acc =
    if i >= count then Ok { level; base; maps = List.rev acc }
    else
      let* id = Wire.Dec.u16 dec in
      let* raw = Wire.Dec.bytes dec bm_bytes in
      let* bm = Bitmap.of_string ~width:fanout raw in
      go (i + 1) ((id, bm) :: acc)
  in
  go 0 []

let entry_overhead_bytes ~fanout ~files = 8 + (files * (2 + ((fanout + 7) / 8)))

module Pending = struct
  type level_state = {
    mutable base : int;  (* start of the range currently accumulating *)
    maps : (Ids.logfile, Bitmap.t) Hashtbl.t;
  }

  type t = {
    fanout : int;
    nlevels : int;
    states : level_state array;
  }

  let create ~fanout ~levels =
    assert (levels >= 1);
    {
      fanout;
      nlevels = levels;
      states = Array.init levels (fun _ -> { base = 0; maps = Hashtbl.create 8 });
    }

  let levels t = t.nlevels
  let fanout t = t.fanout

  let pow t l =
    let rec go acc l = if l = 0 then acc else go (acc * t.fanout) (l - 1) in
    go 1 l

  let align_down t ~level block =
    let span = pow t level in
    block - (block mod span)

  let retarget t ~level ~block =
    let st = t.states.(level - 1) in
    let base = align_down t ~level block in
    if st.base <> base then begin
      st.base <- base;
      Hashtbl.reset st.maps
    end

  let seed t ~level ~block files =
    let st = t.states.(level - 1) in
    let base = align_down t ~level block in
    if st.base <> base then begin
      (* Either we crossed a boundary (the old range was emitted by [take])
         or a boundary was skipped; in both cases start accumulating the
         new range. *)
      st.base <- base;
      Hashtbl.reset st.maps
    end;
    let group = (block - base) / pow t (level - 1) in
    List.iter
      (fun id ->
        let bm =
          match Hashtbl.find_opt st.maps id with
          | Some bm -> bm
          | None ->
            let bm = Bitmap.create t.fanout in
            Hashtbl.replace st.maps id bm;
            bm
        in
        Bitmap.set bm group)
      files

  let note_block t ~block files =
    for l = 1 to t.nlevels do
      seed t ~level:l ~block files
    done

  let due_at t ~block =
    if block = 0 then []
    else begin
      let rec go l acc =
        if l > t.nlevels then List.rev acc
        else if block mod pow t l = 0 then go (l + 1) (l :: acc)
        else List.rev acc
      in
      go 1 []
    end

  let take t ~level ~boundary =
    let st = t.states.(level - 1) in
    let expected_base = boundary - pow t level in
    if st.base > expected_base then
      (* Already accumulating a newer range (this boundary's emission was
         skipped); leave it untouched. *)
      None
    else if st.base < expected_base || Hashtbl.length st.maps = 0 then begin
      (* Stale older range or empty: advance and emit nothing. *)
      st.base <- boundary;
      Hashtbl.reset st.maps;
      None
    end
    else begin
      let maps =
        Hashtbl.fold (fun id bm acc -> (id, Bitmap.copy bm) :: acc) st.maps []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      st.base <- boundary;
      Hashtbl.reset st.maps;
      Some { level; base = expected_base; maps }
    end

  let covers t ~level ~base = t.states.(level - 1).base = base

  let query t ~level ~base id =
    let st = t.states.(level - 1) in
    if st.base <> base then None
    else
      match Hashtbl.find_opt st.maps id with
      | Some bm -> Some (Bitmap.copy bm)
      | None -> Some (Bitmap.create t.fanout)

  let files_at t ~level =
    let st = t.states.(level - 1) in
    Hashtbl.fold (fun id _ acc -> id :: acc) st.maps [] |> List.sort compare
end
