(** Little-endian codecs and the block checksum.

    All on-medium integers are little-endian. The CRC-32 (IEEE polynomial)
    stored in every block trailer is how the server detects the random
    corruption of section 2.3.2. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit
val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val crc32 : bytes -> pos:int -> len:int -> int
(** CRC-32 of a byte range, returned as a non-negative 32-bit value. *)

(** A growable byte buffer with the same primitive layout, for encoding
    variable-size payloads. *)
module Enc : sig
  type t

  val create : ?size:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val bytes : t -> string -> unit
  val raw : t -> bytes -> unit
  val contents : t -> string
  val length : t -> int
end

(** A cursor for decoding payloads with range checking. *)
module Dec : sig
  type t

  val of_string : string -> t
  val u8 : t -> (int, Errors.t) result
  val u16 : t -> (int, Errors.t) result
  val u32 : t -> (int, Errors.t) result
  val i64 : t -> (int64, Errors.t) result
  val bytes : t -> int -> (string, Errors.t) result
  val remaining : t -> int
  val at_end : t -> bool
end
