let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

(* Table-driven CRC-32 (IEEE 802.3 polynomial, reflected). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let crc32 b ~pos ~len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

module Enc = struct
  type t = Buffer.t

  let create ?(size = 64) () = Buffer.create size
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t v;
    u16 t (v lsr 16)

  let i64 t v = Buffer.add_int64_le t v
  let bytes t s = Buffer.add_string t s
  let raw t b = Buffer.add_bytes t b
  let contents = Buffer.contents
  let length = Buffer.length
end

module Dec = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need t n =
    if t.pos + n > String.length t.data then
      Error (Errors.Bad_record (Printf.sprintf "truncated payload at %d (+%d)" t.pos n))
    else Ok ()

  let ( let* ) = Errors.( let* )

  let u8 t =
    let* () = need t 1 in
    let v = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    Ok v

  (* Multi-byte reads check the full width upfront so a failed decode never
     half-advances the cursor. *)
  let u16 t =
    let* () = need t 2 in
    let v = Char.code t.data.[t.pos] lor (Char.code t.data.[t.pos + 1] lsl 8) in
    t.pos <- t.pos + 2;
    Ok v

  let u32 t =
    let* () = need t 4 in
    let* lo = u16 t in
    let* hi = u16 t in
    Ok (lo lor (hi lsl 16))

  let i64 t =
    let* () = need t 8 in
    let v = String.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    Ok v

  let bytes t n =
    let* () = need t n in
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    Ok s

  let remaining t = String.length t.data - t.pos
  let at_end t = remaining t = 0
end
