(** Server initialization after a crash (sections 2.3.1 and 3.4).

    The three steps the paper describes, per mounted volume:
    + locate the most recently written block — by querying the device, or by
      binary search when the device cannot report (~log₂ V probes);
    + reconstruct the missing (pending) entrymap information by examining
      recently written blocks: raw blocks for level 1, then the level-(l−1)
      entrymap entries for each level l — on average (N·log_N b)/2 block
      examinations (Figure 4);
    + read the catalog log file to rebuild the log-file descriptor table.

    Additionally: garbage blocks found past the last valid block (a crashed
    writer sprayed junk) are invalidated and queued for the bad-block log,
    and a tail block staged in battery-backed RAM is restored. *)

val find_frontier : State.t -> Worm.Block_io.t -> int
(** Next unwritten block index; counts probes in
    [stats.frontier_probe_reads]. *)

val rebuild_pending : State.t -> Vol.t -> unit
(** Reconstructs the volume's pending entrymap bitmaps; counts block
    examinations in [stats.recovery_blocks_examined]. *)

val recover :
  config:Config.t ->
  clock:Sim.Clock.t ->
  ?nvram:Worm.Nvram.t ->
  alloc_volume:(vol_index:int -> (Worm.Block_io.t, Errors.t) result) ->
  devices:Worm.Block_io.t list ->
  unit ->
  (State.t, Errors.t) result
(** Full server initialization from the volume-sequence devices (any order;
    they are sorted by the volume index in their headers). *)
