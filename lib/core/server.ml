type t = State.t

let ( let* ) = Errors.( let* )

(* ------------------------------- lifecycle ------------------------------ *)

let create ?(config = Config.default) ~clock ?nvram ~alloc_volume () =
  let* config = Config.validate config in
  let st = State.make ~config ~clock ?nvram ~alloc_volume () in
  let* () = Writer.init_sequence st in
  Ok st

let recover ?(config = Config.default) ~clock ?nvram ~alloc_volume ~devices () =
  Recovery.recover ~config ~clock ?nvram ~alloc_volume ~devices ()

(* ----------------------------- degraded mode ----------------------------- *)

(* Every mutating entry point passes through [write_guarded]: a tripped
   breaker refuses the write with [Degraded] before anything is staged, and
   a device error escaping a write spends one unit of the error budget
   (possibly tripping the breaker for the *next* write — the failing call
   itself still reports its device error, which is more actionable). Routine
   WORM housekeeping — a bad block successfully invalidated and retried —
   never surfaces as a device error, so it costs no budget. *)

let breaker st = st.State.breaker

(* Role gate: only a primary accepts writes. The check precedes the breaker
   so a replica's refusal always carries the redirect hint, whatever the
   local breaker state. *)
let write_guarded st f =
  match st.State.role with
  | State.Replica { primary_hint; _ } -> Error (Errors.Not_primary primary_hint)
  | State.Fenced { hint; _ } -> Error (Errors.Not_primary hint)
  | State.Primary _ ->
    if Breaker.is_open st.State.breaker then begin
      Breaker.record_rejected st.State.breaker;
      Error Errors.Degraded
    end
    else begin
      let r = f () in
      (match r with
      | Error (Errors.Device _) -> Breaker.record_error st.State.breaker
      | _ -> ());
      r
    end

let breaker_state st = Breaker.state (breaker st)
let reset_breaker st = Breaker.reset (breaker st)
let trip_breaker st = Breaker.trip (breaker st)

(* ------------------------------ replication ----------------------------- *)

let role st = st.State.role
let set_role st role = st.State.role <- role
let epoch st = State.role_epoch st.State.role
let repl_lag_blocks st = st.State.repl_lag_blocks
let set_repl_lag_blocks st lag = st.State.repl_lag_blocks <- max 0 lag

(* --------------------------------- naming ------------------------------- *)

let resolve st path =
  let* d = Catalog.resolve_path st.State.catalog path in
  Ok d.Catalog.id

let path_of st id = Catalog.path_of st.State.catalog id
let descriptor st id = Catalog.find st.State.catalog id

let list_logs st path =
  let* d = Catalog.resolve_path st.State.catalog path in
  Ok
    (List.filter
       (fun c -> not (Ids.is_internal c.Catalog.id))
       (Catalog.children st.State.catalog d.Catalog.id))

let split_parent path =
  match String.rindex_opt path '/' with
  | None -> Error (Errors.Invalid_name path)
  | Some i ->
    let parent = if i = 0 then "/" else String.sub path 0 i in
    let name = String.sub path (i + 1) (String.length path - i - 1) in
    if name = "" then Error (Errors.Invalid_name path) else Ok (parent, name)

let create_log_inner ?(perms = 0o644) st path =
  let* parent_path, name = split_parent path in
  let* parent = Catalog.resolve_path st.State.catalog parent_path in
  let* name = Catalog.validate_name name in
  if Catalog.lookup_child st.State.catalog parent.Catalog.id name <> None then
    Error (Errors.Log_exists path)
  else begin
    let* id = Catalog.next_free_id st.State.catalog in
    let d =
      {
        Catalog.id;
        parent = parent.Catalog.id;
        name;
        perms;
        created = State.fresh_ts st;
      }
    in
    let* () = Writer.log_catalog_op st (Catalog.Create d) in
    (* Catalog changes are metadata: make them durable immediately so a
       crash cannot orphan entries of a freshly created log file. *)
    let* () = Writer.force st in
    Ok id
  end

let ensure_log_inner ?(perms = 0o644) st path =
  let components = String.split_on_char '/' path |> List.filter (fun s -> s <> "") in
  if components = [] then Error (Errors.Invalid_name path)
  else begin
    let rec walk prefix = function
      | [] -> resolve st prefix
      | comp :: rest ->
        let here = if prefix = "/" then "/" ^ comp else prefix ^ "/" ^ comp in
        let* () =
          match Catalog.resolve_path st.State.catalog here with
          | Ok _ -> Ok ()
          | Error (Errors.No_such_log _) ->
            let* _id = create_log_inner ~perms st here in
            Ok ()
          | Error _ as e -> e
        in
        walk here rest
    in
    walk "/" components
  end

let create_log ?perms st path = write_guarded st (fun () -> create_log_inner ?perms st path)
let ensure_log ?perms st path = write_guarded st (fun () -> ensure_log_inner ?perms st path)

let set_perms st ~log perms =
  write_guarded st (fun () ->
      let* () =
        Writer.log_catalog_op st (Catalog.Set_perms { id = log; perms; at = State.fresh_ts st })
      in
      Writer.force st)

(* --------------------------------- writing ------------------------------ *)

let validate_append_target st ~log extra_members =
  let check id =
    if not (Ids.valid id) then Error (Errors.Bad_record "invalid log file id")
    else if id = Ids.root then Error (Errors.Bad_record "cannot append to the volume sequence log")
    else if Ids.is_internal id then Error (Errors.Bad_record "cannot append to an internal log file")
    else if not (Catalog.exists st.State.catalog id) then
      Error (Errors.No_such_log (string_of_int id))
    else Ok ()
  in
  let* () = check log in
  List.fold_left
    (fun acc id ->
      let* () = acc in
      check id)
    (Ok ()) extra_members

let append_inner ?(extra_members = []) ?(force = false) st ~log payload =
  let* () = validate_append_target st ~log extra_members in
  let timestamp =
    if st.State.config.Config.timestamp_all then Some (State.fresh_ts st) else None
  in
  let header = Header.make ?timestamp ~extra_members log in
  let* active = State.active st in
  let max_payload0 =
    Block_format.max_payload_in_empty_block
      ~block_size:active.Vol.hdr.Volume.block_size ~header
  in
  if max_payload0 < 1 && String.length payload > 0 then
    Error (Errors.Entry_too_large (String.length payload))
  else begin
    let* () = Writer.append_entry st ~header payload in
    st.State.stats.Stats.entries_appended <- st.State.stats.Stats.entries_appended + 1;
    let* () = if force then Writer.force st else Ok () in
    Ok header.Header.timestamp
  end

let append ?extra_members ?force st ~log payload =
  write_guarded st (fun () -> append_inner ?extra_members ?force st ~log payload)

let append_path ?extra_members ?force st ~path payload =
  write_guarded st (fun () ->
      let* log = ensure_log_inner st path in
      append_inner ?extra_members ?force st ~log payload)

type batch_item = {
  log : Ids.logfile;
  extra_members : Ids.logfile list;
  payload : string;
}

(* Group commit (wire protocol v2): validate every item up front so a bad
   target rejects the whole batch with nothing staged, then stage all
   entries back to back and force once at the end. Timestamps are assigned
   in arrival order, so interleaved appends to different log files keep
   their relative order. A device failure mid-batch aborts the remaining
   items; already-staged entries survive, exactly as separate appends
   interrupted at the same point would. *)
let append_batch_inner ?(force = false) st items =
  let* () =
    List.fold_left
      (fun acc { log; extra_members; payload } ->
        let* () = acc in
        let* () = validate_append_target st ~log extra_members in
        let header = Header.make ~extra_members log in
        let* active = State.active st in
        let max_payload0 =
          Block_format.max_payload_in_empty_block
            ~block_size:active.Vol.hdr.Volume.block_size ~header
        in
        if max_payload0 < 1 && String.length payload > 0 then
          Error (Errors.Entry_too_large (String.length payload))
        else Ok ())
      (Ok ()) items
  in
  let* timestamps =
    Writer.append_batch st
      (List.map (fun { log; extra_members; payload } -> (log, extra_members, payload)) items)
  in
  st.State.stats.Stats.entries_appended <-
    st.State.stats.Stats.entries_appended + List.length items;
  let* () = if force then Writer.force st else Ok () in
  Ok timestamps

let append_batch ?force st items =
  write_guarded st (fun () -> append_batch_inner ?force st items)

let force st = write_guarded st (fun () -> Writer.force st)

(* --------------------------------- reading ------------------------------ *)

let cursor_start st ~log = Reader.at_start st ~log
let cursor_end st ~log = Reader.at_end st ~log
let cursor_at st ~log pos = Reader.at_position st ~log pos

let cursor_at_time st ~log ts =
  let* pos = Time_index.seek st ts in
  Ok (Reader.at_position st ~log pos)

let next = Reader.next
let prev = Reader.prev

let first_entry st ~log = Reader.next (cursor_start st ~log)

let last_entry st ~log =
  let* c = cursor_end st ~log in
  Reader.prev c

let entry_at_or_after st ~log ts = Time_index.first_at_or_after st ~log ts
let entry_before st ~log ts = Time_index.last_before st ~log ts

let fold_entries st ~log ?from ~init f =
  let c =
    match from with
    | Some pos -> Reader.at_position st ~log pos
    | None -> Reader.at_start st ~log
  in
  let rec loop acc =
    let* e = Reader.next c in
    match e with None -> Ok acc | Some e -> loop (f acc e)
  in
  loop init

(* ------------------------------ maintenance ----------------------------- *)

let scrub_block st ~vol ~block =
  let* v = State.vol st vol in
  match Vol.view_block v block with
  | Vol.Corrupted ->
    let* () = Errors.of_dev (v.Vol.io.Worm.Block_io.invalidate block) in
    st.State.badblock_queue <- block :: st.State.badblock_queue;
    Ok ()
  | Vol.Invalid -> Ok ()
  | Vol.Records _ -> Error (Errors.Bad_record "refusing to scrub a valid block")
  | Vol.Missing -> Error (Errors.Bad_record "refusing to scrub an unwritten block")

let set_volume_offline st ~vol =
  if vol < 0 || vol >= State.nvols st then Error (Errors.Volume_offline vol)
  else if vol = State.nvols st - 1 then
    Error (Errors.Bad_record "cannot shelve the active volume")
  else begin
    st.State.vols.(vol).Vol.online <- false;
    Ok ()
  end

let set_volume_online st ~vol =
  if vol < 0 || vol >= State.nvols st then Error (Errors.Volume_offline vol)
  else begin
    st.State.vols.(vol).Vol.online <- true;
    Ok ()
  end

let volume_online st ~vol =
  vol >= 0 && vol < State.nvols st && st.State.vols.(vol).Vol.online

let set_auto_mount st flag = st.State.auto_mount <- flag
let auto_mounts st = st.State.mounts

let fsck ?verify_entrymap st = Fsck.check ?verify_entrymap st

let stats st = st.State.stats
let config st = st.State.config
let nvols st = State.nvols st

let volume_blocks_used st =
  Array.fold_left
    (fun acc v -> acc + Vol.device_frontier v)
    0 st.State.vols

let state st = st

(* ----------------------------- observability ----------------------------- *)

let obs st = st.State.obs
let metrics st = st.State.obs.Obs.metrics

let set_tracing st flag = Obs.Trace.set_enabled st.State.obs.Obs.trace flag
let tracing st = Obs.Trace.enabled st.State.obs.Obs.trace
let set_trace_sink st sink = Obs.Trace.set_sink st.State.obs.Obs.trace sink
let trace_spans st = Obs.Trace.spans st.State.obs.Obs.trace
let trace_jsonl st = Obs.Trace.to_jsonl st.State.obs.Obs.trace
let clear_trace st = Obs.Trace.clear st.State.obs.Obs.trace

let cache_totals st =
  Array.fold_left
    (fun (h, m, r) v ->
      let c = v.Vol.cache in
      (h + Blockcache.Cache.hits c, m + Blockcache.Cache.misses c, r + Blockcache.Cache.resident c))
    (0, 0, 0) st.State.vols

(* Per-partition aggregate across all mounted volumes' segmented caches. *)
let segment_totals st =
  Array.fold_left
    (fun (acc : Blockcache.Cache.segment_stats) v ->
      let s = Blockcache.Cache.segments v.Vol.cache in
      {
        Blockcache.Cache.meta_hits = acc.meta_hits + s.Blockcache.Cache.meta_hits;
        meta_misses = acc.meta_misses + s.Blockcache.Cache.meta_misses;
        data_hits = acc.data_hits + s.Blockcache.Cache.data_hits;
        data_misses = acc.data_misses + s.Blockcache.Cache.data_misses;
        meta_resident = acc.meta_resident + s.Blockcache.Cache.meta_resident;
        probation_resident = acc.probation_resident + s.Blockcache.Cache.probation_resident;
        protected_resident = acc.protected_resident + s.Blockcache.Cache.protected_resident;
        meta_evictions = acc.meta_evictions + s.Blockcache.Cache.meta_evictions;
        data_evictions = acc.data_evictions + s.Blockcache.Cache.data_evictions;
        promotions = acc.promotions + s.Blockcache.Cache.promotions;
      })
    {
      Blockcache.Cache.meta_hits = 0;
      meta_misses = 0;
      data_hits = 0;
      data_misses = 0;
      meta_resident = 0;
      probation_resident = 0;
      protected_resident = 0;
      meta_evictions = 0;
      data_evictions = 0;
      promotions = 0;
    }
    st.State.vols

let device_totals st =
  let acc = Worm.Dev_stats.create () in
  Array.iter
    (fun v ->
      let d = v.Vol.dev.Worm.Block_io.stats in
      acc.Worm.Dev_stats.reads <- acc.Worm.Dev_stats.reads + d.Worm.Dev_stats.reads;
      acc.Worm.Dev_stats.appends <- acc.Worm.Dev_stats.appends + d.Worm.Dev_stats.appends;
      acc.Worm.Dev_stats.invalidates <-
        acc.Worm.Dev_stats.invalidates + d.Worm.Dev_stats.invalidates;
      acc.Worm.Dev_stats.frontier_queries <-
        acc.Worm.Dev_stats.frontier_queries + d.Worm.Dev_stats.frontier_queries;
      acc.Worm.Dev_stats.bytes_read <- acc.Worm.Dev_stats.bytes_read + d.Worm.Dev_stats.bytes_read;
      acc.Worm.Dev_stats.bytes_written <-
        acc.Worm.Dev_stats.bytes_written + d.Worm.Dev_stats.bytes_written)
    st.State.vols;
  acc

(* One schema for every export path ([clio_cli stats --json], BENCH_*.json,
   the RPC metrics call): the registry's counters/gauges/histograms plus the
   derived cache, device and volume sections. *)
let metrics_obj st =
  let open Obs.Json in
  let hits, misses, resident = cache_totals st in
  let d = device_totals st in
  match Obs.Metrics.to_json (metrics st) with
  | Obj fields ->
    Obj
      (fields
      @ [
          ("stats", Stats.to_json st.State.stats);
          ( "cache",
            let s = segment_totals st in
            Obj
              [
                ("hits", Int hits);
                ("misses", Int misses);
                ("resident", Int resident);
                ("meta_hits", Int s.Blockcache.Cache.meta_hits);
                ("meta_misses", Int s.Blockcache.Cache.meta_misses);
                ("data_hits", Int s.Blockcache.Cache.data_hits);
                ("data_misses", Int s.Blockcache.Cache.data_misses);
                ("meta_resident", Int s.Blockcache.Cache.meta_resident);
                ("probation_resident", Int s.Blockcache.Cache.probation_resident);
                ("protected_resident", Int s.Blockcache.Cache.protected_resident);
                ("meta_evictions", Int s.Blockcache.Cache.meta_evictions);
                ("data_evictions", Int s.Blockcache.Cache.data_evictions);
                ("promotions", Int s.Blockcache.Cache.promotions);
              ] );
          ("read_memo", Obj [ ("resident", Int (Read_memo.resident st.State.read_memo)) ]);
          ( "device",
            Obj
              [
                ("reads", Int d.Worm.Dev_stats.reads);
                ("appends", Int d.Worm.Dev_stats.appends);
                ("invalidates", Int d.Worm.Dev_stats.invalidates);
                ("frontier_queries", Int d.Worm.Dev_stats.frontier_queries);
                ("bytes_read", Int d.Worm.Dev_stats.bytes_read);
                ("bytes_written", Int d.Worm.Dev_stats.bytes_written);
              ] );
          ( "volumes",
            Obj [ ("count", Int (nvols st)); ("blocks_used", Int (volume_blocks_used st)) ] );
          ("breaker", Breaker.to_json st.State.breaker);
          ( "repl",
            Obj
              [
                ("role", Str (State.role_name st.State.role));
                ("epoch", Int (State.role_epoch st.State.role));
                ("lag_blocks", Int st.State.repl_lag_blocks);
                ("blocks_shipped", Int st.State.stats.Stats.repl_blocks_shipped);
                ("blocks_applied", Int st.State.stats.Stats.repl_blocks_applied);
                ("tail_ships", Int st.State.stats.Stats.repl_tail_ships);
                ("tail_applies", Int st.State.stats.Stats.repl_tail_applies);
                ("catchup_rounds", Int st.State.stats.Stats.repl_catchup_rounds);
                ("epoch_rejects", Int st.State.stats.Stats.repl_epoch_rejects);
              ] );
        ])
  | other -> other

let metrics_json st = Obs.Json.to_string_pretty (metrics_obj st)

let dump_metrics ppf st =
  Obs.Metrics.pp ppf (metrics st);
  let hits, misses, resident = cache_totals st in
  let s = segment_totals st in
  Format.fprintf ppf
    "@\ncache: hits=%d misses=%d resident=%d (meta %d/%d, probation %d, protected %d, promotions %d)"
    hits misses resident s.Blockcache.Cache.meta_hits s.Blockcache.Cache.meta_misses
    s.Blockcache.Cache.probation_resident s.Blockcache.Cache.protected_resident
    s.Blockcache.Cache.promotions;
  Format.fprintf ppf "@\nread_memo: resident=%d" (Read_memo.resident st.State.read_memo);
  let d = device_totals st in
  Format.fprintf ppf "@\ndevice: %a" Worm.Dev_stats.pp d;
  Format.fprintf ppf "@\nbreaker: %a" Breaker.pp st.State.breaker

let dump_trace ppf st =
  List.iter
    (fun (s : Obs.Trace.span) ->
      Format.fprintf ppf "+%-10d %s%s (%d us)@\n" s.Obs.Trace.start_us
        (String.make (2 * s.Obs.Trace.depth) ' ')
        s.Obs.Trace.name s.Obs.Trace.dur_us)
    (trace_spans st)
