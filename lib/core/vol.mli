(** Per-volume runtime state: the cached device, the pending entrymap
    bitmaps, and the in-memory tail block under construction.

    The tail block is "virtual": reads of its planned index are served from
    the builder, which is how "read requests for recent data ... are likely
    to be satisfied from the file server's in-memory cache" (section 2.1)
    holds even before the block reaches the medium. *)

type t = {
  hdr : Volume.header;
  dev : Worm.Block_io.t;  (** raw device *)
  cache : Blockcache.Cache.t;
  io : Worm.Block_io.t;  (** cached view — all normal traffic goes here *)
  pending : Entrymap.Pending.t;
  tail : Block_format.Builder.t;
  mutable tail_index : int;  (** planned device index of the open tail *)
  mutable tail_open : bool;
  mutable sealed : bool;  (** full; no further appends *)
  mutable online : bool;
      (** mounted and readable; old volumes of a sequence may be shelved
          (section 2.1) and remounted on demand *)
  read_gen : int ref;
      (** Bumped on every block invalidation — the only event that can make
          a memoized fact about settled storage stale. {!Read_memo} entries
          are stamped with this and lazily dropped when it moves. *)
}

val make :
  config:Config.t -> ?metrics:Obs.Metrics.t -> hdr:Volume.header -> Worm.Block_io.t -> t
(** Wraps a device whose header block is already written/validated. [metrics]
    is forwarded to the block cache so per-server hit/miss counters aggregate
    across all volumes of the sequence. *)

val levels : t -> int
val fanout : t -> int
val pow_fanout : t -> int -> int

val device_frontier : t -> int
(** Next device block an append would use (queries the device; falls back to
    [tail_index] bookkeeping when the device cannot report). *)

val written_limit : t -> int
(** One past the highest block readable right now: the tail's planned index
    + 1 if the tail is open and non-empty, else the device frontier. *)

(** How a block looks to the log layer. *)
type view =
  | Records of Block_format.record array
  | Invalid  (** invalidated (all 1s) — skip it *)
  | Corrupted  (** garbage: data loss per section 2.3.2 *)
  | Missing  (** never written *)

val view_block : t -> int -> view
(** [view_block t idx]: index 0 (the volume header) reads as [Invalid] (not
    log data); the open tail's index is served from the builder. *)

val first_timestamp : t -> int -> int64 option
(** Timestamp of the first record of block [idx], if the block is valid. *)
