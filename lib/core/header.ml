type t = {
  version : int;
  logfile : Ids.logfile;
  timestamp : int64 option;
  extra_members : Ids.logfile list;
  chain : int;
}

let v_plain = 1
let v_timestamped = 2
let v_continuation = 3
let v_multi = 4

let make ?timestamp ?(extra_members = []) logfile =
  assert (Ids.valid logfile);
  List.iter (fun id -> assert (Ids.valid id)) extra_members;
  match (timestamp, extra_members) with
  | None, [] -> { version = v_plain; logfile; timestamp = None; extra_members = []; chain = 0 }
  | Some _, [] -> { version = v_timestamped; logfile; timestamp; extra_members = []; chain = 0 }
  | _, _ :: _ ->
    (* Multi-member entries always carry a timestamp so they stay uniquely
       identifiable in every member log file. *)
    let timestamp = match timestamp with Some _ -> timestamp | None -> Some 0L in
    { version = v_multi; logfile; timestamp; extra_members; chain = 0 }

(* The chain checksum is a resumable 16-bit polynomial rolling hash: its
   entire state is the 16-bit value itself, so a carried fragment's stored
   tag seeds the checksum of any fragments split off from it later. *)
let chain_seed = 0

let chain_update chain s =
  let c = ref (chain land 0xFFFF) in
  String.iter (fun ch -> c := ((!c * 31) + Char.code ch) land 0xFFFF) s;
  !c

let continuation ?(chain = 0) logfile =
  { version = v_continuation; logfile; timestamp = None; extra_members = []; chain }

let is_start t = t.version <> v_continuation

let byte_size t =
  match t.version with
  | 1 -> 2
  | 3 -> 4
  | 2 -> 10
  | 4 -> 11 + (2 * List.length t.extra_members)
  | _ -> assert false

let encode enc t =
  Wire.Enc.u16 enc ((t.version lsl 12) lor (t.logfile land 0xFFF));
  if t.version = v_continuation then Wire.Enc.u16 enc t.chain;
  (match (t.version, t.timestamp) with
  | (2 | 4), Some ts -> Wire.Enc.i64 enc ts
  | (2 | 4), None -> assert false
  | _ -> ());
  if t.version = v_multi then begin
    Wire.Enc.u8 enc (List.length t.extra_members);
    List.iter (fun id -> Wire.Enc.u16 enc id) t.extra_members
  end

let decode block ~pos =
  let len = Bytes.length block in
  let need n =
    if pos + n > len then Error (Errors.Bad_record "header past block end") else Ok ()
  in
  let ( let* ) = Errors.( let* ) in
  let* () = need 2 in
  let word = Wire.get_u16 block pos in
  let version = word lsr 12 in
  let logfile = word land 0xFFF in
  match version with
  | 1 -> Ok ({ version; logfile; timestamp = None; extra_members = []; chain = 0 }, pos + 2)
  | 3 ->
    let* () = need 4 in
    let chain = Wire.get_u16 block (pos + 2) in
    Ok ({ version; logfile; timestamp = None; extra_members = []; chain }, pos + 4)
  | 2 ->
    let* () = need 10 in
    let ts = Wire.get_i64 block (pos + 2) in
    Ok ({ version; logfile; timestamp = Some ts; extra_members = []; chain = 0 }, pos + 10)
  | 4 ->
    let* () = need 11 in
    let ts = Wire.get_i64 block (pos + 2) in
    let count = Wire.get_u8 block (pos + 10) in
    let* () = need (11 + (2 * count)) in
    let extra_members =
      List.init count (fun i -> Wire.get_u16 block (pos + 11 + (2 * i)) land 0xFFF)
    in
    Ok ({ version; logfile; timestamp = Some ts; extra_members; chain = 0 }, pos + 11 + (2 * count))
  | v -> Error (Errors.Bad_record (Printf.sprintf "unknown header version %d" v))

let members t = t.logfile :: t.extra_members

let pp ppf t =
  Format.fprintf ppf "v%d %a%s%s" t.version Ids.pp t.logfile
    (match t.timestamp with Some ts -> Printf.sprintf " @%Ld" ts | None -> "")
    (match t.extra_members with
    | [] -> ""
    | l -> " +" ^ String.concat "," (List.map string_of_int l))
