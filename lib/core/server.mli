(** The Clio log service: public facade.

    A [Server.t] manages one volume sequence on one or more write-once
    devices and serves {e log files}: named, readable, append-only files
    organized in a sublog hierarchy and accessed much like conventional
    files (section 2). All state outside the devices (and optional NVRAM) is
    volatile: {!recover} rebuilds it, and the property tests assert the
    rebuilt server is observationally identical.

    Example:
    {[
      let clock = Sim.Clock.simulated () in
      let alloc ~vol_index:_ = Ok (Worm.Mem_device.io (Worm.Mem_device.create ())) in
      let srv = Server.create ~clock ~alloc_volume:alloc () |> Result.get_ok in
      let log = Server.create_log srv "/mail/smith" |> Result.get_ok in
      let _ts = Server.append srv ~log "a message" in
      ...
    ]} *)

type t

(** {1 Lifecycle} *)

val create :
  ?config:Config.t ->
  clock:Sim.Clock.t ->
  ?nvram:Worm.Nvram.t ->
  alloc_volume:(vol_index:int -> (Worm.Block_io.t, Errors.t) result) ->
  unit ->
  (t, Errors.t) result
(** Start a brand-new volume sequence; volume 0 is allocated immediately. *)

val recover :
  ?config:Config.t ->
  clock:Sim.Clock.t ->
  ?nvram:Worm.Nvram.t ->
  alloc_volume:(vol_index:int -> (Worm.Block_io.t, Errors.t) result) ->
  devices:Worm.Block_io.t list ->
  unit ->
  (t, Errors.t) result
(** Reboot from existing volumes (section 2.3.1). *)

(** {1 Naming and the catalog} *)

val create_log : ?perms:int -> t -> string -> (Ids.logfile, Errors.t) result
(** [create_log t "/mail/smith"] creates a sublog under "/mail" (which must
    exist). Creating under "/" makes a top-level log file. *)

val ensure_log : ?perms:int -> t -> string -> (Ids.logfile, Errors.t) result
(** Like {!create_log} but creates missing intermediate components and
    succeeds if the log already exists. *)

val resolve : t -> string -> (Ids.logfile, Errors.t) result
val path_of : t -> Ids.logfile -> string
val descriptor : t -> Ids.logfile -> Catalog.descriptor option
val list_logs : t -> string -> (Catalog.descriptor list, Errors.t) result
(** Children of a log file, internal files excluded. *)

val set_perms : t -> log:Ids.logfile -> int -> (unit, Errors.t) result

(** {1 Writing} *)

val append :
  ?extra_members:Ids.logfile list ->
  ?force:bool ->
  t ->
  log:Ids.logfile ->
  string ->
  (int64 option, Errors.t) result
(** Append one entry. Returns the server timestamp it was tagged with (which
    uniquely identifies it, section 2.1) — [None] only when the
    configuration disables per-entry timestamps and the entry did not start
    a block. [force] makes the write synchronous (transaction-commit
    semantics, section 2.3.1). [extra_members] adds the entry to additional
    log files beyond [log] and its ancestors. *)

(** One entry of an {!append_batch} call. *)
type batch_item = {
  log : Ids.logfile;
  extra_members : Ids.logfile list;
  payload : string;
}

val append_batch :
  ?force:bool -> t -> batch_item list -> (int64 option list, Errors.t) result
(** Append many entries — possibly for different log files — in one call,
    applied in arrival order with group-commit semantics: entries share the
    staged tail block, and [force] issues a single durability point after
    the whole batch (instead of one per entry). Every item is validated
    before anything is staged, so a bad target rejects the batch atomically;
    a device failure mid-batch leaves the already-staged prefix, exactly as
    separate appends interrupted at that point would. Returns the assigned
    timestamps, one per item, in order. The staged bytes are identical to
    the same entries sent through {!append} one by one. *)

val append_path :
  ?extra_members:Ids.logfile list ->
  ?force:bool ->
  t ->
  path:string ->
  string ->
  (int64 option, Errors.t) result
(** [resolve] + [append], creating the log file if needed. *)

val force : t -> (unit, Errors.t) result

(** {1 Degraded mode}

    Every mutating entry point ({!append}, {!append_batch}, {!append_path},
    {!create_log}, {!ensure_log}, {!set_perms}, {!force}) spends one unit of
    an error budget each time it fails with a device error. When the budget
    ({!Config.breaker_threshold}, default 8) is exhausted, the breaker trips
    and the server enters degraded (read-only) mode: subsequent writes are
    refused up front with [Errors.Degraded], while reads, locate and
    timestamp search keep working. The breaker is volatile — {!recover}
    starts closed — and an operator can inspect/reset it via these accessors
    or [clio admin breaker]. *)

val breaker : t -> Breaker.t
val breaker_state : t -> Breaker.state

val reset_breaker : t -> unit
(** Close the breaker and zero the current error budget (cumulative totals
    in the metrics are preserved). *)

val trip_breaker : t -> unit
(** Force the breaker open (operator drill / testing). *)

(** {1 Replication role}

    Service-level replication (lib/repl) demotes a recovered server to
    [Replica] so every mutating entry point answers [Errors.Not_primary]
    with a redirect hint, while reads, locate and time search keep working
    against the locally applied volume bytes. Promotion re-asserts
    [Primary] at the next epoch; a primary fenced by a newer epoch is
    marked [Fenced] and also refuses writes. The role is volatile state —
    every {!create}/{!recover} starts as [Primary] at epoch 1 and the
    replication layer re-asserts the real role afterwards. *)

val role : t -> State.role
val set_role : t -> State.role -> unit

val epoch : t -> int
(** The epoch of the current role. *)

val repl_lag_blocks : t -> int
(** Primary-side gauge: settled blocks the furthest-behind replica had not
    acknowledged at the last shipper sync (0 when not shipping). *)

val set_repl_lag_blocks : t -> int -> unit

(** {1 Reading} *)

val cursor_start : t -> log:Ids.logfile -> Reader.cursor
val cursor_end : t -> log:Ids.logfile -> (Reader.cursor, Errors.t) result
val cursor_at : t -> log:Ids.logfile -> Assemble.position -> Reader.cursor
val cursor_at_time : t -> log:Ids.logfile -> int64 -> (Reader.cursor, Errors.t) result
(** Positioned so that [next] yields entries from (block-resolution) time
    [ts] onwards and [prev] yields earlier ones. *)

val next : Reader.cursor -> (Reader.entry option, Errors.t) result
val prev : Reader.cursor -> (Reader.entry option, Errors.t) result

val first_entry : t -> log:Ids.logfile -> (Reader.entry option, Errors.t) result
val last_entry : t -> log:Ids.logfile -> (Reader.entry option, Errors.t) result

val entry_at_or_after : t -> log:Ids.logfile -> int64 -> (Reader.entry option, Errors.t) result
val entry_before : t -> log:Ids.logfile -> int64 -> (Reader.entry option, Errors.t) result

val fold_entries :
  t ->
  log:Ids.logfile ->
  ?from:Assemble.position ->
  init:'a ->
  ('a -> Reader.entry -> 'a) ->
  ('a, Errors.t) result
(** Forward fold over every entry of a log file. *)

(** {1 Maintenance and introspection} *)

val scrub_block : t -> vol:int -> block:int -> (unit, Errors.t) result
(** Invalidate a corrupted block (overwrite with 1s) so scans skip it
    cleanly (section 2.3.2). Refuses to scrub valid blocks. *)

val set_volume_offline : t -> vol:int -> (unit, Errors.t) result
(** Shelve an older volume of the sequence (section 2.1). The active volume
    cannot be shelved. With auto-mounting (the default) a later read that
    needs it remounts it transparently; otherwise such reads fail with
    [Volume_offline]. *)

val set_volume_online : t -> vol:int -> (unit, Errors.t) result
val volume_online : t -> vol:int -> bool
val set_auto_mount : t -> bool -> unit
val auto_mounts : t -> int
(** Number of transparent remounts performed so far. *)

val fsck : ?verify_entrymap:bool -> t -> (Fsck.report, Errors.t) result
(** Deep structural verification; see {!Fsck}. *)

val stats : t -> Stats.t
val config : t -> Config.t
val nvols : t -> int
val volume_blocks_used : t -> int
(** Total device blocks consumed across the sequence (incl. headers). *)

val state : t -> State.t
(** Escape hatch for benchmarks and tests that need the internals. *)

(** {1 Observability}

    Every server carries an {!Obs.t}: latency histograms on the hot paths
    (append/force/flush/locate/read/time-search/recover), cache and device
    counters, and an off-by-default span tracer clocked by the server's
    {!Sim.Clock}. Enable tracing via {!Config.trace_ops} or {!set_tracing}. *)

val obs : t -> Obs.t
val metrics : t -> Obs.Metrics.t

val segment_totals : t -> Blockcache.Cache.segment_stats
(** Per-partition cache counters (meta / probation / protected) summed over
    all mounted volumes. *)

val metrics_obj : t -> Obs.Json.t
(** The full metrics document: the registry's counters/gauges/histograms
    plus ["stats"] (the {!Stats.t} fields), ["cache"] (hit/miss/resident
    and per-partition counters summed over volumes), ["read_memo"]
    (memoized-fact residency), ["device"] (op counts summed over volumes),
    ["volumes"] and ["breaker"] (degraded-mode state). [clio_cli stats
    --json] and the BENCH_*.json files embed exactly this object. *)

val metrics_json : t -> string
(** {!metrics_obj} pretty-printed. *)

val dump_metrics : Format.formatter -> t -> unit
(** Human rendering of the same data. *)

val set_tracing : t -> bool -> unit
val tracing : t -> bool

val set_trace_sink : t -> (string -> unit) option -> unit
(** Stream finished spans as JSONL lines in addition to the in-memory ring. *)

val trace_spans : t -> Obs.Trace.span list
val trace_jsonl : t -> string
val clear_trace : t -> unit

val dump_trace : Format.formatter -> t -> unit
(** Human rendering: start offset, indent by depth, name, duration. *)
