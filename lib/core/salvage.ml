type report = {
  logs_created : int;
  entries_copied : int;
  entries_lost : int;
  timestamp_map : (int64 * int64) list;
}

let ( let* ) = Errors.( let* )

(* Recreate the catalog with identical ids: walk descriptors in id order
   (parents have smaller ids than children — creation order guarantees it
   within one sequence). *)
let copy_catalog ~src ~dst =
  let st_src = Server.state src in
  let descriptors = Catalog.live_descriptors st_src.State.catalog in
  let* () =
    if Catalog.live_descriptors (Server.state dst).State.catalog <> [] then
      Error (Errors.Bad_record "destination sequence is not fresh")
    else Ok ()
  in
  let rec create = function
    | [] -> Ok ()
    | (d : Catalog.descriptor) :: rest ->
      let st_dst = Server.state dst in
      let nd =
        {
          Catalog.id = d.Catalog.id;
          parent = d.Catalog.parent;
          name = d.Catalog.name;
          perms = d.Catalog.perms;
          created = State.fresh_ts st_dst;
        }
      in
      let* () = Writer.log_catalog_op st_dst (Catalog.Create nd) in
      create rest
  in
  let* () = create descriptors in
  Ok (List.length descriptors)

let copy_entries ~src ~dst =
  (* One pass over the volume-sequence log keeps global (and therefore
     per-log) order; entries of internal files are regenerated, not
     copied. *)
  let cursor = Server.cursor_start src ~log:Ids.root in
  let rec go copied ts_map =
    let* e = Server.next cursor in
    match e with
    | None -> Ok (copied, List.rev ts_map)
    | Some e ->
      if Ids.is_internal e.Reader.log then go copied ts_map
      else begin
        let extra_members =
          List.filter (fun id -> id <> e.Reader.log) e.Reader.members
        in
        let* new_ts = Server.append ~extra_members dst ~log:e.Reader.log e.Reader.payload in
        let ts_map =
          match (e.Reader.timestamp, new_ts) with
          | Some old_ts, Some nts -> (old_ts, nts) :: ts_map
          | _ -> ts_map
        in
        go (copied + 1) ts_map
      end
  in
  go 0 []

(* Entries whose start records survive but cannot reassemble (a fragment sat
   in a corrupted block) are skipped by the reader; count them by comparing
   start records seen against entries yielded. *)
let count_unreadable ~src =
  let st = Server.state src in
  let lost = ref 0 in
  Array.iteri
    (fun vi v ->
      let limit = Vol.written_limit v in
      for b = 1 to limit - 1 do
        match Vol.view_block v b with
        | Vol.Records recs ->
          Array.iteri
            (fun ri r ->
              if
                Header.is_start r.Block_format.header
                && not (Ids.is_internal r.Block_format.header.Header.logfile)
              then
                match Assemble.entry_at st { Assemble.vol = vi; block = b; rec_index = ri } with
                | Ok _ -> ()
                | Error _ -> incr lost)
            recs
        | Vol.Invalid | Vol.Corrupted | Vol.Missing -> ()
      done)
    st.State.vols;
  !lost

let copy_sequence ~src ~dst =
  let* logs_created = copy_catalog ~src ~dst in
  let* entries_copied, timestamp_map = copy_entries ~src ~dst in
  let* () = Server.force dst in
  Ok { logs_created; entries_copied; entries_lost = count_unreadable ~src; timestamp_map }
