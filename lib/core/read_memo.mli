(** Read-path memoization: decoded entrymap entries and a per-log skip index
    of confirmed block positions.

    Everything below the active volume's frontier is write-once, so a locate
    descent's work product is immutable fact: "the level-[l] entrymap entry
    at boundary [b] decodes to [e]", "the first block ≥ [f] holding entries
    of log [L] is [b]". This module caches those facts so a warm repeated
    locate touches no device blocks at all (the paper's section 3.3 "fully
    cached" row) and so cursors can predict — and batch-prefetch — the
    blocks they are about to visit.

    Staleness has exactly one source on write-once media: invalidation
    (0xFF burn). Each volume carries a generation counter bumped on every
    invalidate; memo entries are stamped with the generation at store time
    and dropped on first contact when it has moved. Callers are responsible
    for only storing facts about {e settled} (below-frontier) blocks — the
    open tail keeps changing and must never enter the memo. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 8192) bounds each internal table; oldest facts are
    evicted first. *)

val clear : t -> unit
(** Forget everything (cold-read experiments). *)

val resident : t -> int
(** Total memoized facts, for metrics export. *)

(** {1 Entrymap entry memo} *)

val find_entry :
  t -> vol:int -> level:int -> boundary:int -> gen:int -> Entrymap.entry option option
(** [Some (Some e)] — entry known to decode to [e]; [Some None] — boundary
    known to have no (reachable) entry; [None] — not memoized. *)

val store_entry :
  t -> vol:int -> level:int -> boundary:int -> gen:int -> Entrymap.entry option -> unit

(** {1 Skip index (confirmed locate results)} *)

val find_next : t -> vol:int -> log:Ids.logfile -> from:int -> gen:int -> int option
val store_next : t -> vol:int -> log:Ids.logfile -> from:int -> gen:int -> int -> unit

val find_prev :
  t -> vol:int -> log:Ids.logfile -> limit:int -> frontier:int -> gen:int -> int option
(** Keyed by the effective search limit {e and} the device frontier: a tail
    flush settles a new block without necessarily moving the written limit,
    and must invalidate pre-flush links. *)

val store_prev :
  t -> vol:int -> log:Ids.logfile -> limit:int -> frontier:int -> gen:int -> int -> unit

(** {1 Read-ahead prediction} *)

val predict_next : t -> vol:int -> log:Ids.logfile -> from:int -> gen:int -> k:int -> int list
(** Up to [k] confirmed blocks of [log] at or after [from], by chaining
    stored next-links; empty when the chain is unknown. *)

val predict_prev :
  t -> vol:int -> log:Ids.logfile -> before:int -> frontier:int -> gen:int -> k:int -> int list
(** Up to [k] confirmed blocks of [log] strictly before [before], newest
    first, by chaining stored prev-links. *)
