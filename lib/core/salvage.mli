(** Copying a volume sequence's surviving contents to a fresh sequence.

    Section 2.3.2 considers (and for single corrupted blocks rejects as
    wasteful) the alternative of "copy[ing] the log entries in the
    uncorrupted blocks to a fresh volume". The operation is still needed in
    practice — media migration, retiring a badly damaged sequence, or
    compacting away invalidated blocks — so here it is: replay every
    readable client entry, per log file and in order, into a destination
    server.

    What is preserved: the catalog (names, hierarchy, permissions), every
    readable entry's payload, per-log entry order, and explicit multi-file
    memberships. What is not: physical positions and original timestamps —
    the destination assigns fresh ones (monotone in the same order), and
    the mapping is reported so clients holding old timestamps can be
    redirected. *)

type report = {
  logs_created : int;
  entries_copied : int;
  entries_lost : int;  (** start records whose entries could not reassemble *)
  timestamp_map : (int64 * int64) list;
      (** (source ts, destination ts), for entries that had timestamps *)
}

val copy_sequence : src:Server.t -> dst:Server.t -> (report, Errors.t) result
(** [dst] must be freshly created (no client log files). *)
