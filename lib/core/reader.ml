type entry = {
  log : Ids.logfile;
  members : Ids.logfile list;
  timestamp : int64 option;
  payload : string;
  pos : Assemble.position;
}

type cursor = {
  st : State.t;
  log : Ids.logfile;
  mutable point : Assemble.position;
      (* [next] yields the first matching start record at or after [point];
         [prev] the last one strictly before it. *)
  mutable ra_fwd : int * int;
      (* (vol, block): don't issue another forward read-ahead batch in [vol]
         until the cursor reaches [block] — the far edge of the last window. *)
  mutable ra_back : int * int; (* same, for backward motion (near edge) *)
}

let ( let* ) = Errors.( let* )

let log_of c = c.log

let no_window = (-1, 0)

let at_start st ~log =
  {
    st;
    log;
    point = { Assemble.vol = 0; block = 1; rec_index = 0 };
    ra_fwd = no_window;
    ra_back = no_window;
  }

let at_end st ~log =
  let* v = State.active st in
  let nv = State.nvols st in
  (* Park inside the open tail block at its current record count, not past
     it: the block keeps gaining records, and a drained cursor must see
     entries appended after it (the tail is part of the readable log). *)
  let point =
    if v.Vol.tail_open && not (Block_format.Builder.is_empty v.Vol.tail) then
      {
        Assemble.vol = nv - 1;
        block = v.Vol.tail_index;
        rec_index = Block_format.Builder.count v.Vol.tail;
      }
    else { Assemble.vol = nv - 1; block = Vol.written_limit v; rec_index = 0 }
  in
  Ok { st; log; point; ra_fwd = no_window; ra_back = no_window }

let at_position st ~log pos = { st; log; point = pos; ra_fwd = no_window; ra_back = no_window }

let make_entry c (header : Header.t) payload pos =
  c.st.State.stats.Stats.entries_read <- c.st.State.stats.Stats.entries_read + 1;
  {
    log = header.Header.logfile;
    members = Header.members header;
    timestamp = header.Header.timestamp;
    payload;
    pos;
  }

(* --------------------------- read-ahead --------------------------- *)

(* When a cursor crosses a block boundary and the entrymap names its next
   block, prefetch the K blocks the cursor is likely to visit after it in
   one batched device read: confirmed skip-index links when the path has
   been walked before, plain sequential neighbours otherwise. Prefetching is
   restricted to settled blocks and to cache misses, and failures are
   ignored — the per-block read path re-reports them with full context. *)
let read_ahead c ~vol ~(v : Vol.t) ~anchor ~dir =
  let k = c.st.State.config.Config.read_ahead_blocks in
  (* One batch per K-block window, not one per crossing: the cursor crosses a
     boundary at every block, and re-issuing there would top the window up one
     block at a time — a full seek per block, costing more than it saves. The
     cursor remembers the far edge of its last window and refires only when it
     gets there (or jumps elsewhere). *)
  let window_due =
    match dir with
    | `Fwd ->
      let rv, edge = c.ra_fwd in
      rv <> vol || anchor >= edge
    | `Back ->
      let rv, edge = c.ra_back in
      rv <> vol || anchor <= edge
  in
  if k > 0 && window_due then begin
    let gen = !(v.Vol.read_gen) in
    let frontier = Vol.device_frontier v in
    let predicted =
      match dir with
      | `Fwd -> (
        match
          Read_memo.predict_next c.st.State.read_memo ~vol ~log:c.log ~from:(anchor + 1) ~gen ~k
        with
        | [] -> List.init k (fun i -> anchor + 1 + i)
        | chain -> chain)
      | `Back -> (
        match
          Read_memo.predict_prev c.st.State.read_memo ~vol ~log:c.log ~before:anchor ~frontier
            ~gen ~k
        with
        | [] -> List.init k (fun i -> anchor - k + i)
        | chain -> List.rev chain (* ascending, for contiguous-run batching *))
    in
    let wanted =
      anchor :: predicted
      |> List.filter (fun i ->
             i >= 1 && i < frontier && not (Blockcache.Cache.contains v.Vol.cache i))
      |> List.sort_uniq compare
    in
    (match dir with
    | `Fwd -> c.ra_fwd <- (vol, anchor + k)
    | `Back -> c.ra_back <- (vol, anchor - k));
    if wanted <> [] then begin
      c.st.State.stats.Stats.readahead_batches <-
        c.st.State.stats.Stats.readahead_batches + 1;
      c.st.State.stats.Stats.readahead_blocks <-
        c.st.State.stats.Stats.readahead_blocks + List.length wanted;
      ignore (Worm.Block_io.read_many v.Vol.io wanted)
    end
  end

(* ------------------------------ next ------------------------------ *)

let rec next_inner c : (entry option, Errors.t) result =
  let p = c.point in
  if p.Assemble.vol >= State.nvols c.st then Ok None
  else begin
    let* v = State.vol c.st p.Assemble.vol in
    let limit = Vol.written_limit v in
    let advance_volume () =
      c.point <- { Assemble.vol = p.Assemble.vol + 1; block = 1; rec_index = 0 };
      next_inner c
    in
    if p.Assemble.block >= limit then
      if p.Assemble.vol + 1 < State.nvols c.st then advance_volume () else Ok None
    else if p.Assemble.rec_index = 0 then begin
      (* At a block boundary: let the entrymap tree pick the next block that
         has entries of this log file. *)
      let* b = Locate.next_block c.st v ~log:c.log ~from:p.Assemble.block in
      match b with
      | None -> if p.Assemble.vol + 1 < State.nvols c.st then advance_volume () else Ok None
      | Some b ->
        read_ahead c ~vol:p.Assemble.vol ~v ~anchor:b ~dir:`Fwd;
        c.point <- { p with block = b };
        scan_block c
    end
    else scan_block c
  end

and scan_block c : (entry option, Errors.t) result =
  let p = c.point in
  let* v = State.vol c.st p.Assemble.vol in
  match Vol.view_block v p.Assemble.block with
  | Vol.Invalid | Vol.Corrupted | Vol.Missing ->
    c.point <- { p with block = p.Assemble.block + 1; rec_index = 0 };
    next_inner c
  | Vol.Records recs ->
    let is_open_tail =
      p.Assemble.vol = State.nvols c.st - 1
      && v.Vol.tail_open
      && p.Assemble.block = v.Vol.tail_index
    in
    let rec scan i =
      if i >= Array.length recs then
        if is_open_tail then begin
          (* The open tail keeps growing: park at its current end so the
             cursor sees entries appended after this call. *)
          c.point <- { p with rec_index = Array.length recs };
          Ok None
        end
        else begin
          c.point <- { p with block = p.Assemble.block + 1; rec_index = 0 };
          next_inner c
        end
      else begin
        let r = recs.(i) in
        if
          Header.is_start r.Block_format.header
          && Catalog.is_member c.st.State.catalog ~log:c.log r.Block_format.header
        then begin
          let start_pos = { p with rec_index = i } in
          match Assemble.entry_at c.st start_pos with
          | Ok (header, payload, _end_pos) ->
            c.point <- { p with rec_index = i + 1 };
            Ok (Some (make_entry c header payload start_pos))
          | Error (Errors.Corrupt_block _) | Error Errors.No_entry ->
            (* Entry lost to corruption or an in-flight crash: skip it. *)
            scan (i + 1)
          | Error _ as e -> e
        end
        else scan (i + 1)
      end
    in
    scan p.Assemble.rec_index

(* ------------------------------ prev ------------------------------ *)

let rec prev_inner c : (entry option, Errors.t) result =
  let p = c.point in
  if p.Assemble.vol < 0 then Ok None
  else begin
    let* v = State.vol c.st p.Assemble.vol in
    let retreat_volume () =
      if p.Assemble.vol = 0 then Ok None
      else begin
        let* pv = State.vol c.st (p.Assemble.vol - 1) in
        c.point <-
          { Assemble.vol = p.Assemble.vol - 1; block = Vol.written_limit pv; rec_index = 0 };
        prev_inner c
      end
    in
    let jump_before block =
      let* b = Locate.prev_block c.st v ~log:c.log ~before:block in
      match b with
      | Some b ->
        read_ahead c ~vol:p.Assemble.vol ~v ~anchor:b ~dir:`Back;
        c.point <- { p with block = b; rec_index = max_int };
        scan_block_back c
      | None -> retreat_volume ()
    in
    if p.Assemble.block > Vol.written_limit v then begin
      c.point <- { p with block = Vol.written_limit v; rec_index = 0 };
      prev_inner c
    end
    else if p.Assemble.rec_index = 0 then jump_before p.Assemble.block
    else scan_block_back c
  end

and scan_block_back c : (entry option, Errors.t) result =
  let p = c.point in
  let* v = State.vol c.st p.Assemble.vol in
  let jump () =
    c.point <- { p with rec_index = 0 };
    prev_inner c
  in
  match Vol.view_block v p.Assemble.block with
  | Vol.Invalid | Vol.Corrupted | Vol.Missing -> jump ()
  | Vol.Records recs ->
    let hi = min (p.Assemble.rec_index - 1) (Array.length recs - 1) in
    (* Iterate start records only: reverse order is defined by entry start
       positions, and a block holding just continuation fragments simply
       sends the search further back (the fragments' start block is marked in
       the entrymap too). *)
    let rec scan i =
      if i < 0 then jump ()
      else begin
        let r = recs.(i) in
        if
          Header.is_start r.Block_format.header
          && Catalog.is_member c.st.State.catalog ~log:c.log r.Block_format.header
        then begin
          let start_pos = { p with rec_index = i } in
          match Assemble.entry_at c.st start_pos with
          | Ok (header, payload, _) ->
            c.point <- start_pos;
            Ok (Some (make_entry c header payload start_pos))
          | Error (Errors.Corrupt_block _) | Error Errors.No_entry -> scan (i - 1)
          | Error _ as e -> e
        end
        else scan (i - 1)
      end
    in
    scan hi

(* Public cursor steps: one read span + latency sample per call, however many
   blocks the step crosses internally. *)
let next c =
  Obs.time c.st.State.obs c.st.State.probes.State.h_read "read.next" (fun () -> next_inner c)

let prev c =
  Obs.time c.st.State.obs c.st.State.probes.State.h_read "read.prev" (fun () -> prev_inner c)
