type entry = {
  log : Ids.logfile;
  members : Ids.logfile list;
  timestamp : int64 option;
  payload : string;
  pos : Assemble.position;
}

type cursor = {
  st : State.t;
  log : Ids.logfile;
  mutable point : Assemble.position;
      (* [next] yields the first matching start record at or after [point];
         [prev] the last one strictly before it. *)
}

let ( let* ) = Errors.( let* )

let log_of c = c.log

let at_start st ~log = { st; log; point = { Assemble.vol = 0; block = 1; rec_index = 0 } }

let at_end st ~log =
  let* v = State.active st in
  let nv = State.nvols st in
  (* Park inside the open tail block at its current record count, not past
     it: the block keeps gaining records, and a drained cursor must see
     entries appended after it (the tail is part of the readable log). *)
  let point =
    if v.Vol.tail_open && not (Block_format.Builder.is_empty v.Vol.tail) then
      {
        Assemble.vol = nv - 1;
        block = v.Vol.tail_index;
        rec_index = Block_format.Builder.count v.Vol.tail;
      }
    else { Assemble.vol = nv - 1; block = Vol.written_limit v; rec_index = 0 }
  in
  Ok { st; log; point }

let at_position st ~log pos = { st; log; point = pos }

let make_entry c (header : Header.t) payload pos =
  c.st.State.stats.Stats.entries_read <- c.st.State.stats.Stats.entries_read + 1;
  {
    log = header.Header.logfile;
    members = Header.members header;
    timestamp = header.Header.timestamp;
    payload;
    pos;
  }

(* ------------------------------ next ------------------------------ *)

let rec next_inner c : (entry option, Errors.t) result =
  let p = c.point in
  if p.Assemble.vol >= State.nvols c.st then Ok None
  else begin
    let* v = State.vol c.st p.Assemble.vol in
    let limit = Vol.written_limit v in
    let advance_volume () =
      c.point <- { Assemble.vol = p.Assemble.vol + 1; block = 1; rec_index = 0 };
      next_inner c
    in
    if p.Assemble.block >= limit then
      if p.Assemble.vol + 1 < State.nvols c.st then advance_volume () else Ok None
    else if p.Assemble.rec_index = 0 then begin
      (* At a block boundary: let the entrymap tree pick the next block that
         has entries of this log file. *)
      let* b = Locate.next_block c.st v ~log:c.log ~from:p.Assemble.block in
      match b with
      | None -> if p.Assemble.vol + 1 < State.nvols c.st then advance_volume () else Ok None
      | Some b ->
        c.point <- { p with block = b };
        scan_block c
    end
    else scan_block c
  end

and scan_block c : (entry option, Errors.t) result =
  let p = c.point in
  let* v = State.vol c.st p.Assemble.vol in
  match Vol.view_block v p.Assemble.block with
  | Vol.Invalid | Vol.Corrupted | Vol.Missing ->
    c.point <- { p with block = p.Assemble.block + 1; rec_index = 0 };
    next_inner c
  | Vol.Records recs ->
    let is_open_tail =
      p.Assemble.vol = State.nvols c.st - 1
      && v.Vol.tail_open
      && p.Assemble.block = v.Vol.tail_index
    in
    let rec scan i =
      if i >= Array.length recs then
        if is_open_tail then begin
          (* The open tail keeps growing: park at its current end so the
             cursor sees entries appended after this call. *)
          c.point <- { p with rec_index = Array.length recs };
          Ok None
        end
        else begin
          c.point <- { p with block = p.Assemble.block + 1; rec_index = 0 };
          next_inner c
        end
      else begin
        let r = recs.(i) in
        if
          Header.is_start r.Block_format.header
          && Catalog.is_member c.st.State.catalog ~log:c.log r.Block_format.header
        then begin
          let start_pos = { p with rec_index = i } in
          match Assemble.entry_at c.st start_pos with
          | Ok (header, payload, _end_pos) ->
            c.point <- { p with rec_index = i + 1 };
            Ok (Some (make_entry c header payload start_pos))
          | Error (Errors.Corrupt_block _) | Error Errors.No_entry ->
            (* Entry lost to corruption or an in-flight crash: skip it. *)
            scan (i + 1)
          | Error _ as e -> e
        end
        else scan (i + 1)
      end
    in
    scan p.Assemble.rec_index

(* ------------------------------ prev ------------------------------ *)

let rec prev_inner c : (entry option, Errors.t) result =
  let p = c.point in
  if p.Assemble.vol < 0 then Ok None
  else begin
    let* v = State.vol c.st p.Assemble.vol in
    let retreat_volume () =
      if p.Assemble.vol = 0 then Ok None
      else begin
        let* pv = State.vol c.st (p.Assemble.vol - 1) in
        c.point <-
          { Assemble.vol = p.Assemble.vol - 1; block = Vol.written_limit pv; rec_index = 0 };
        prev_inner c
      end
    in
    let jump_before block =
      let* b = Locate.prev_block c.st v ~log:c.log ~before:block in
      match b with
      | Some b ->
        c.point <- { p with block = b; rec_index = max_int };
        scan_block_back c
      | None -> retreat_volume ()
    in
    if p.Assemble.block > Vol.written_limit v then begin
      c.point <- { p with block = Vol.written_limit v; rec_index = 0 };
      prev_inner c
    end
    else if p.Assemble.rec_index = 0 then jump_before p.Assemble.block
    else scan_block_back c
  end

and scan_block_back c : (entry option, Errors.t) result =
  let p = c.point in
  let* v = State.vol c.st p.Assemble.vol in
  let jump () =
    c.point <- { p with rec_index = 0 };
    prev_inner c
  in
  match Vol.view_block v p.Assemble.block with
  | Vol.Invalid | Vol.Corrupted | Vol.Missing -> jump ()
  | Vol.Records recs ->
    let hi = min (p.Assemble.rec_index - 1) (Array.length recs - 1) in
    (* Iterate start records only: reverse order is defined by entry start
       positions, and a block holding just continuation fragments simply
       sends the search further back (the fragments' start block is marked in
       the entrymap too). *)
    let rec scan i =
      if i < 0 then jump ()
      else begin
        let r = recs.(i) in
        if
          Header.is_start r.Block_format.header
          && Catalog.is_member c.st.State.catalog ~log:c.log r.Block_format.header
        then begin
          let start_pos = { p with rec_index = i } in
          match Assemble.entry_at c.st start_pos with
          | Ok (header, payload, _) ->
            c.point <- start_pos;
            Ok (Some (make_entry c header payload start_pos))
          | Error (Errors.Corrupt_block _) | Error Errors.No_entry -> scan (i - 1)
          | Error _ as e -> e
        end
        else scan (i - 1)
      end
    in
    scan hi

(* Public cursor steps: one read span + latency sample per call, however many
   blocks the step crosses internally. *)
let next c =
  Obs.time c.st.State.obs c.st.State.probes.State.h_read "read.next" (fun () -> next_inner c)

let prev c =
  Obs.time c.st.State.obs c.st.State.probes.State.h_read "read.prev" (fun () -> prev_inner c)
