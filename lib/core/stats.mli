(** Server-level instrumentation counters.

    These back the evaluation-section reproductions: Table 1 counts entrymap
    log entries and disk blocks read per locate; Figure 4 counts blocks
    examined during recovery; section 3.5 accounts every byte of overhead by
    category. *)

type t = {
  (* write path *)
  mutable entries_appended : int;
  mutable bytes_client : int;
  mutable bytes_header : int;  (** entry headers, incl. timestamps *)
  mutable bytes_index : int;  (** 2 bytes/record block index slots *)
  mutable bytes_trailer : int;  (** 12 bytes per flushed block *)
  mutable bytes_entrymap : int;  (** entrymap record payloads + headers *)
  mutable bytes_catalog : int;  (** catalog record payloads + headers *)
  mutable bytes_padding : int;  (** forced-write internal fragmentation *)
  mutable blocks_flushed : int;
  mutable forces : int;
  mutable nvram_syncs : int;
  mutable displaced_blocks : int;  (** tail landed past its planned index *)
  mutable bad_blocks : int;
  mutable flush_retries : int;  (** flush re-attempts after a bad block *)
  mutable volumes_sealed : int;
  (* read path *)
  mutable entries_read : int;
  mutable entrymap_records_examined : int;  (** Table 1, column 2 *)
  mutable locate_block_reads : int;  (** Table 1, column 3 contribution *)
  mutable fallback_blocks_scanned : int;  (** lower-level searching, 2.3.2 *)
  mutable time_probe_reads : int;
  (* recovery *)
  mutable recoveries : int;
  mutable frontier_probe_reads : int;
  mutable recovery_blocks_examined : int;  (** Figure 4 *)
  (* read-path memoization and read-ahead *)
  mutable locate_memo_hits : int;  (** prev/next answered by the skip index *)
  mutable entrymap_memo_hits : int;  (** entrymap decodes answered memoized *)
  mutable readahead_batches : int;  (** batched prefetches issued by cursors *)
  mutable readahead_blocks : int;  (** blocks requested across those batches *)
  (* replication *)
  mutable repl_blocks_shipped : int;  (** settled blocks sent to replicas *)
  mutable repl_blocks_applied : int;  (** settled blocks burned by a replica *)
  mutable repl_tail_ships : int;  (** volatile tail images sent *)
  mutable repl_tail_applies : int;  (** volatile tail images staged in NVRAM *)
  mutable repl_catchup_rounds : int;  (** syncs that found a frontier gap *)
  mutable repl_epoch_rejects : int;  (** shipments refused as [Stale_epoch] *)
}

val create : unit -> t
val reset : t -> unit
val snapshot : t -> t
val diff : after:t -> before:t -> t

val fields : t -> (string * int) list
(** Every counter as [(name, value)], in declaration order — derived from
    the same field table as [reset]/[snapshot]/[diff], so the four can never
    disagree about which fields exist. *)

val set_field : t -> string -> int -> bool
(** [set_field t name v] writes one counter by name; false if no such
    field. Exists for the drift-guard test and for external tooling. *)

val overhead_bytes : t -> int
(** Total non-client bytes consumed on the medium. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
