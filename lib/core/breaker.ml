type state = Closed | Open

type t = {
  threshold : int;
  mutable errors : int;
  mutable total_errors : int;
  mutable state : state;
  mutable trips : int;
  mutable rejected : int;
  c_errors : Obs.Metrics.counter;
  c_trips : Obs.Metrics.counter;
  c_rejected : Obs.Metrics.counter;
  metrics : Obs.Metrics.t;
}

let publish_state t =
  Obs.Metrics.gauge t.metrics "breaker_open" (match t.state with Open -> 1 | Closed -> 0)

let create ~metrics ~threshold () =
  let t =
    {
      threshold;
      errors = 0;
      total_errors = 0;
      state = Closed;
      trips = 0;
      rejected = 0;
      c_errors = Obs.Metrics.counter metrics "breaker_device_errors";
      c_trips = Obs.Metrics.counter metrics "breaker_trips";
      c_rejected = Obs.Metrics.counter metrics "breaker_writes_rejected";
      metrics;
    }
  in
  publish_state t;
  t

let state t = t.state
let is_open t = t.state = Open
let errors t = t.errors
let total_errors t = t.total_errors
let trips t = t.trips
let rejected t = t.rejected
let threshold t = t.threshold
let enabled t = t.threshold > 0

let trip t =
  if t.state = Closed then begin
    t.state <- Open;
    t.trips <- t.trips + 1;
    Obs.Metrics.incr t.c_trips;
    publish_state t
  end

let record_error t =
  t.errors <- t.errors + 1;
  t.total_errors <- t.total_errors + 1;
  Obs.Metrics.incr t.c_errors;
  if enabled t && t.errors >= t.threshold then trip t

let record_rejected t =
  t.rejected <- t.rejected + 1;
  Obs.Metrics.incr t.c_rejected

let reset t =
  t.errors <- 0;
  t.state <- Closed;
  publish_state t

let state_name t = match t.state with Closed -> "closed" | Open -> "open"

let to_json t =
  Obs.Json.Obj
    [
      ("state", Obs.Json.Str (state_name t));
      ("threshold", Obs.Json.Int t.threshold);
      ("errors", Obs.Json.Int t.errors);
      ("total_errors", Obs.Json.Int t.total_errors);
      ("trips", Obs.Json.Int t.trips);
      ("writes_rejected", Obs.Json.Int t.rejected);
    ]

let pp ppf t =
  Format.fprintf ppf "breaker: %s (errors %d/%d, trips %d, writes rejected %d)"
    (state_name t) t.errors
    (if enabled t then t.threshold else 0)
    t.trips t.rejected
