type report = {
  volumes : int;
  blocks_scanned : int;
  valid_blocks : int;
  invalidated_blocks : int;
  corrupt_blocks : (int * int) list;
  entries : int;
  truncated_entries : int;
  errors : string list;
}

let ( let* ) = Errors.( let* )

let pp_report ppf r =
  Format.fprintf ppf
    "volumes:%d scanned:%d valid:%d invalidated:%d corrupt:%d entries:%d truncated:%d errors:%d"
    r.volumes r.blocks_scanned r.valid_blocks r.invalidated_blocks
    (List.length r.corrupt_blocks) r.entries r.truncated_entries (List.length r.errors)

let is_healthy r = r.corrupt_blocks = [] && r.errors = []

type acc = {
  mutable blocks_scanned : int;
  mutable valid_blocks : int;
  mutable invalidated_blocks : int;
  mutable corrupt : (int * int) list;
  mutable entries : int;
  mutable truncated : int;
  mutable errors : string list;
}

let error acc fmt = Printf.ksprintf (fun s -> acc.errors <- s :: acc.errors) fmt

let check_volume_header st acc vi (v : Vol.t) =
  match v.Vol.dev.Worm.Block_io.read 0 with
  | Error e ->
    error acc "volume %d: header block unreadable: %s" vi (Worm.Block_io.error_to_string e)
  | Ok block0 -> (
    match Volume.decode_header block0 with
    | Error e -> error acc "volume %d: bad header: %s" vi (Errors.to_string e)
    | Ok hdr ->
      if hdr.Volume.vol_index <> vi then
        error acc "volume %d: header claims index %d" vi hdr.Volume.vol_index;
      if hdr.Volume.seq_uid <> st.State.seq_uid then
        error acc "volume %d: wrong sequence uid" vi;
      if vi > 0 then begin
        let prev = st.State.vols.(vi - 1) in
        if hdr.Volume.prev_uid <> prev.Vol.hdr.Volume.vol_uid then
          error acc "volume %d: broken predecessor link" vi
      end)

let scan_blocks st acc vi (v : Vol.t) =
  let limit = Vol.written_limit v in
  let last_ts = ref Int64.min_int in
  for b = 1 to limit - 1 do
    acc.blocks_scanned <- acc.blocks_scanned + 1;
    match Vol.view_block v b with
    | Vol.Missing -> () (* a hole below the frontier can only be device weirdness *)
    | Vol.Invalid -> acc.invalidated_blocks <- acc.invalidated_blocks + 1
    | Vol.Corrupted -> acc.corrupt <- (vi, b) :: acc.corrupt
    | Vol.Records recs ->
      acc.valid_blocks <- acc.valid_blocks + 1;
      if Array.length recs > 0 then begin
        let first = recs.(0) in
        (match first.Block_format.header.Header.timestamp with
        | Some ts ->
          if Int64.compare ts !last_ts < 0 then
            error acc "volume %d block %d: first timestamp regresses" vi b;
          last_ts := ts
        | None ->
          (* Continuation records legitimately have no timestamp; a start
             record without one violates the mandatory-first-timestamp
             rule. *)
          if Header.is_start first.Block_format.header then
            error acc "volume %d block %d: first start record lacks a timestamp" vi b);
        Array.iter
          (fun (r : Block_format.record) ->
            let id = r.Block_format.header.Header.logfile in
            if not (Catalog.exists st.State.catalog id) then
              error acc "volume %d block %d: record references unknown log file %d" vi b id)
          recs
      end
  done

(* Walk every entry of the volume-sequence log, proving each start record
   reassembles. *)
let check_entries st acc =
  let cursor = Reader.at_start st ~log:Ids.root in
  let rec go () =
    match Reader.next cursor with
    | Ok (Some _) ->
      acc.entries <- acc.entries + 1;
      go ()
    | Ok None -> ()
    | Error e -> error acc "entry walk failed: %s" (Errors.to_string e)
  in
  go ();
  (* Count the dangling in-flight entry at the very end, if any: the last
     record of the last readable block continuing into nothing. *)
  match State.active st with
  | Error _ -> ()
  | Ok v ->
    let limit = Vol.written_limit v in
    let rec last_block b =
      if b < 1 then ()
      else
        match Vol.view_block v b with
        | Vol.Records recs when Array.length recs > 0 ->
          let last = recs.(Array.length recs - 1) in
          if last.Block_format.continues then acc.truncated <- acc.truncated + 1
        | Vol.Records _ | Vol.Invalid | Vol.Corrupted | Vol.Missing -> last_block (b - 1)
    in
    last_block (limit - 1)

let verify_entrymap_tree st acc =
  let logs =
    Catalog.live_descriptors st.State.catalog |> List.map (fun d -> d.Catalog.id)
  in
  Array.iteri
    (fun vi v ->
      let limit = Vol.written_limit v in
      List.iter
        (fun log ->
          (* Ground truth by direct scan, then binary-search-style spot
             checks of locate at every position would be O(b^2); instead
             compare the full sets of blocks each method finds. *)
          let rec collect_scan b acc_blocks =
            if b >= limit then List.rev acc_blocks
            else
              collect_scan (b + 1)
                (if Locate.block_contains st v ~log b then b :: acc_blocks else acc_blocks)
          in
          let truth = collect_scan 1 [] in
          let rec collect_locate from acc_blocks =
            match Locate.next_block st v ~log ~from with
            | Ok (Some b) -> collect_locate (b + 1) (b :: acc_blocks)
            | Ok None -> List.rev acc_blocks
            | Error e ->
              error acc "locate failed on volume %d log %d: %s" vi log (Errors.to_string e);
              List.rev acc_blocks
          in
          let found = collect_locate 1 [] in
          if truth <> found then
            error acc "volume %d log %d: entrymap disagrees with scan (%d vs %d blocks)" vi log
              (List.length found) (List.length truth))
        logs)
    st.State.vols

let check ?(verify_entrymap = false) st =
  let acc =
    {
      blocks_scanned = 0;
      valid_blocks = 0;
      invalidated_blocks = 0;
      corrupt = [];
      entries = 0;
      truncated = 0;
      errors = [];
    }
  in
  let* () = if State.nvols st = 0 then Error (Errors.Bad_record "no volumes") else Ok () in
  Array.iteri
    (fun vi v ->
      check_volume_header st acc vi v;
      scan_blocks st acc vi v)
    st.State.vols;
  check_entries st acc;
  if verify_entrymap then verify_entrymap_tree st acc;
  Ok
    {
      volumes = State.nvols st;
      blocks_scanned = acc.blocks_scanned;
      valid_blocks = acc.valid_blocks;
      invalidated_blocks = acc.invalidated_blocks;
      corrupt_blocks = List.rev acc.corrupt;
      entries = acc.entries;
      truncated_entries = acc.truncated;
      errors = List.rev acc.errors;
    }
