(** Log-server configuration. *)

type t = {
  block_size : int;
      (** Device block size in bytes. The paper's measurements use 1 KB. *)
  fanout : int;
      (** N: entrymap bitmap width / search-tree degree. Section 3 concludes
          16–32 is the sweet spot; the measurements use 16. *)
  cache_blocks : int;  (** block-cache capacity (buffer pool size) *)
  nvram_tail : bool;
      (** Stage the tail block in battery-backed RAM (section 2.3.1). When
          false, a forced write burns the remainder of the current block. *)
  entrymap_slack : int;
      (** How many blocks past a well-known position to scan for a displaced
          entrymap entry before falling back a level (section 2.3.2). *)
  timestamp_all : bool;
      (** Timestamp every entry (the paper's full 14-byte header), not just
          the mandatory first-entry-per-block ones. *)
  trace_ops : bool;
      (** Record a span per operation in {!Obs.Trace} (metrics counters and
          latency histograms are always on; only span capture is gated). *)
  breaker_threshold : int;
      (** Device append errors tolerated before the {!Breaker} trips the
          server into degraded (read-only) mode; [<= 0] disables tripping.
          Reset the budget with [clio admin breaker --reset]. *)
  locate_memo : bool;
      (** Memoize decoded entrymap entries and confirmed locate results so
          repeated descents over settled storage touch no device blocks. *)
  read_ahead_blocks : int;
      (** How many predicted blocks a cursor prefetches in one batched device
          read when it crosses a block boundary; [0] disables read-ahead. *)
  repl_batch_blocks : int;
      (** How many settled blocks a replication shipper packs into one
          [Repl_blocks] message when streaming a catch-up gap — the batch is
          read off the primary's device in one [read_many] call. *)
}

val default : t
(** 1 KB blocks, N = 16, 1024-block cache, NVRAM tail on, slack 4,
    timestamps on — the configuration of the paper's section 3.2/3.3
    measurements — plus an 8-error breaker budget, locate memoization on,
    and 8-block cursor read-ahead. *)

val validate : t -> (t, Errors.t) result
(** Checks structural constraints (fanout ≥ 2, block size large enough for a
    maximal header plus trailer, etc.). *)

val levels : t -> capacity:int -> int
(** Number of entrymap levels worth maintaining for a volume of [capacity]
    blocks: the smallest L with N^L ≥ capacity (at least 1). *)

val pow_fanout : t -> int -> int
(** [pow_fanout t l] is N^l (no overflow guard; l is small). *)
