(* Bounded memo table: hash table + FIFO insertion queue. A FIFO bound (not
   LRU) is enough here — entries are cheap to recompute and the table only
   exists to make the steady state free. *)
module Bounded = struct
  type ('k, 'v) t = { cap : int; tbl : ('k, 'v) Hashtbl.t; fifo : 'k Queue.t }

  let create cap = { cap; tbl = Hashtbl.create 256; fifo = Queue.create () }
  let find t k = Hashtbl.find_opt t.tbl k
  let remove t k = Hashtbl.remove t.tbl k

  let set t k v =
    if not (Hashtbl.mem t.tbl k) then begin
      (* Evict oldest first; keys already replaced out of the table make the
         removal a no-op and the loop keeps going. *)
      while Hashtbl.length t.tbl >= t.cap && not (Queue.is_empty t.fifo) do
        Hashtbl.remove t.tbl (Queue.pop t.fifo)
      done;
      Queue.push k t.fifo
    end;
    Hashtbl.replace t.tbl k v

  let clear t =
    Hashtbl.reset t.tbl;
    Queue.clear t.fifo

  let length t = Hashtbl.length t.tbl
end

type t = {
  entries : (int * int * int, Entrymap.entry option * int) Bounded.t;
      (* (vol, level, boundary) -> decoded entrymap entry (or confirmed
         absence) at that boundary, stamped with the volume generation *)
  next_links : (int * int * int, int * int) Bounded.t;
      (* (vol, log, from) -> smallest settled block >= from holding entries
         of log, with nothing of log in [from, block) *)
  prev_links : (int * int * int * int, int * int) Bounded.t;
      (* (vol, log, limit, frontier) -> greatest settled block < limit
         holding entries of log. The device frontier is part of the key: a
         tail flush adds a settled block without necessarily moving the
         written limit, and links learned before the flush must not answer
         queries made after it. *)
}

let create ?(capacity = 8192) () =
  {
    entries = Bounded.create capacity;
    next_links = Bounded.create capacity;
    prev_links = Bounded.create capacity;
  }

let clear t =
  Bounded.clear t.entries;
  Bounded.clear t.next_links;
  Bounded.clear t.prev_links

let resident t =
  Bounded.length t.entries + Bounded.length t.next_links + Bounded.length t.prev_links

(* Every lookup is generation-checked: invalidating any block of a volume
   bumps its generation, and a stale entry is dropped on first contact. This
   is coarse (one invalidation flushes the whole volume's memo) but
   invalidations are rare — bad blocks and scrubbing — and write-once media
   guarantee everything else can never go stale. *)

let check_gen tbl key ~gen =
  match Bounded.find tbl key with
  | Some (v, g) when g = gen -> Some v
  | Some _ ->
    Bounded.remove tbl key;
    None
  | None -> None

let find_entry t ~vol ~level ~boundary ~gen = check_gen t.entries (vol, level, boundary) ~gen

let store_entry t ~vol ~level ~boundary ~gen entry =
  Bounded.set t.entries (vol, level, boundary) (entry, gen)

let find_next t ~vol ~log ~from ~gen = check_gen t.next_links (vol, log, from) ~gen
let store_next t ~vol ~log ~from ~gen block = Bounded.set t.next_links (vol, log, from) (block, gen)

let find_prev t ~vol ~log ~limit ~frontier ~gen =
  check_gen t.prev_links (vol, log, limit, frontier) ~gen

let store_prev t ~vol ~log ~limit ~frontier ~gen block =
  Bounded.set t.prev_links (vol, log, limit, frontier) (block, gen)

(* Read-ahead prediction: follow confirmed links outward from [start],
   collecting up to [k] blocks the cursor is about to visit. *)

let predict_next t ~vol ~log ~from ~gen ~k =
  let rec go from k acc =
    if k <= 0 then List.rev acc
    else
      match find_next t ~vol ~log ~from ~gen with
      | Some b -> go (b + 1) (k - 1) (b :: acc)
      | None -> List.rev acc
  in
  go from k []

let predict_prev t ~vol ~log ~before ~frontier ~gen ~k =
  let rec go before k acc =
    if k <= 0 then List.rev acc
    else
      match find_prev t ~vol ~log ~limit:before ~frontier ~gen with
      | Some b -> go b (k - 1) (b :: acc)
      | None -> List.rev acc
  in
  go before k []
