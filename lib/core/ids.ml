type logfile = int

let root = 0
let entrymap = 1
let catalog = 2
let badblocks = 3
let first_client = 4
let max_logfile = 4095
let is_reserved id = id < first_client
let is_internal id = id = entrymap || id = catalog || id = badblocks
let valid id = id >= 0 && id <= max_logfile
let pp ppf id = Format.fprintf ppf "#%d" id
