(** Error type shared by the whole log service. *)

type t =
  | Device of Worm.Block_io.error  (** propagated from the log device *)
  | Corrupt_block of int  (** checksum mismatch — section 2.3.2 data loss *)
  | Bad_record of string  (** malformed record or payload *)
  | No_such_log of string
  | Log_exists of string
  | Invalid_name of string
  | Catalog_full  (** all 4095 log-file ids are in use *)
  | Entry_too_large of int
  | Volume_offline of int  (** entry lives on a volume that is not mounted *)
  | Sequence_full  (** no successor volume could be allocated *)
  | No_entry  (** search found nothing *)
  | Cursor_expired
      (** an RPC cursor or continuation token no longer names live server
          state (closed, LRU-evicted, or superseded by a newer token) *)
  | Remote of string
      (** an error that crossed the wire without a typed encoding — the
          v1 string form, or a code this build does not know *)
  | Degraded
      (** the server's error-budget breaker is open: writes are refused
          until an operator resets it (reads keep working) *)
  | Timeout
      (** a request or its response was lost in transit and the per-call
          deadline budget ran out before a retry succeeded *)
  | Disconnected
      (** the transport reset mid-call; whether the request was applied is
          unknown unless the call carried an idempotency key *)
  | Not_primary of string
      (** a write reached a replica (or a fenced ex-primary); the payload is
          a redirect hint naming the primary, empty when unknown *)
  | Stale_epoch of int
      (** a replication message carried an epoch older than the one the
          receiver has seen; the payload is the receiver's current epoch.
          This is the fencing signal: a deposed primary's shipments are
          refused with it *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
(** Result bind, used pervasively in the implementation. *)

val of_dev : ('a, Worm.Block_io.error) result -> ('a, t) result
