type position = { vol : int; block : int; rec_index : int }

let compare_position a b =
  match compare a.vol b.vol with
  | 0 -> ( match compare a.block b.block with 0 -> compare a.rec_index b.rec_index | c -> c)
  | c -> c

let pp_position ppf p = Format.fprintf ppf "v%d/b%d/r%d" p.vol p.block p.rec_index

let ( let* ) = Errors.( let* )

(* [`Recs recs] - log data; [`Skip] - invalidated block (burned to 1s: it
   holds nothing, scans step over it); [`End] - never written. A corrupt
   block is an error: any fragment it held is lost (section 2.3.2). *)
let records_at st pos =
  let* v = State.vol st pos.vol in
  match Vol.view_block v pos.block with
  | Vol.Records recs -> Ok (`Recs recs)
  | Vol.Invalid -> Ok `Skip
  | Vol.Missing -> Ok `End
  | Vol.Corrupted -> Error (Errors.Corrupt_block pos.block)

(* Step to the next block position, crossing into the next volume's first
   data block when this volume's written region ends. *)
let next_block_pos st pos =
  let* v = State.vol st pos.vol in
  let limit = Vol.written_limit v in
  if pos.block + 1 < limit then Ok (Some { pos with block = pos.block + 1; rec_index = 0 })
  else if pos.vol + 1 < State.nvols st then
    Ok (Some { vol = pos.vol + 1; block = 1; rec_index = 0 })
  else Ok None

let entry_at st pos =
  let* recs = records_at st pos in
  match recs with
  | `Skip | `End -> Error (Errors.Bad_record "entry start block unreadable")
  | `Recs recs ->
    if pos.rec_index >= Array.length recs then Error (Errors.Bad_record "record index out of range")
    else begin
      let start = recs.(pos.rec_index) in
      if not (Header.is_start start.Block_format.header) then
        Error (Errors.Bad_record "position is a continuation record")
      else begin
        let id = start.Block_format.header.Header.logfile in
        let buf = Buffer.create (String.length start.Block_format.payload) in
        Buffer.add_string buf start.Block_format.payload;
        (* The chain checksum of everything accumulated so far: the next
           fragment must carry exactly this tag. A same-file continuation
           with a different tag belongs to a *different* entry — its own
           earlier fragments were lost with an invalidated block (a
           scrubbed corruption, or recovery quarantining a torn write) — so
           gluing it here would fabricate an entry that was never written. *)
        let chain = ref (Header.chain_update Header.chain_seed start.Block_format.payload) in
        (* Scan forward for version-3 records of [id], accumulating payload
           until a fragment ends the entry. *)
        let rec scan pos from_rec =
          let* recs = records_at st pos in
          match recs with
          | `End -> Error Errors.No_entry
          | `Skip ->
            (* Invalidated block: it holds nothing; the continuation landed
               in a later block (the write path skipped the bad medium). *)
            let* next = next_block_pos st { pos with rec_index = 0 } in
            (match next with Some p -> scan p 0 | None -> Error Errors.No_entry)
          | `Recs recs ->
            (* A *start* record of the same file before the continuation
               means the entry was truncated by a crash: fragments of one
               file never interleave with its starts in normal operation
               (section 2.3.1 volatile-tail loss). A continuation of the
               same file with the wrong chain tag means the same thing —
               our entry's real continuation is gone. *)
            let rec in_block i =
              if i >= Array.length recs then `Not_here
              else begin
                let h = recs.(i).Block_format.header in
                if h.Header.logfile <> id then in_block (i + 1)
                else if Header.is_start h then `Truncated
                else if h.Header.chain = !chain then `Found (recs.(i), i)
                else `Truncated
              end
            in
            let advance () =
              let* next = next_block_pos st { pos with rec_index = 0 } in
              match next with Some p -> scan p 0 | None -> Error Errors.No_entry
            in
            (match in_block from_rec with
            | `Found (r, i) ->
              Buffer.add_string buf r.Block_format.payload;
              chain := Header.chain_update !chain r.Block_format.payload;
              if r.Block_format.continues then
                (* The next fragment may sit later in this very block (a
                   volume roll re-stages carried fragments wherever they
                   fit), so keep scanning here before advancing. *)
                scan pos (i + 1)
              else Ok { pos with rec_index = i }
            | `Truncated -> Error Errors.No_entry
            | `Not_here -> advance ())
        in
        let* end_pos =
          if start.Block_format.continues then scan pos (pos.rec_index + 1) else Ok pos
        in
        Ok (start.Block_format.header, Buffer.contents buf, end_pos)
      end
    end

(* Walk a continuation record back to its entry's start: the nearest earlier
   record of the same file; keep stepping while we land on continuations. *)
let start_of st pos =
  let* recs0 = records_at st pos in
  match recs0 with
  | `Skip | `End -> Error (Errors.Bad_record "unreadable block")
  | `Recs recs0 ->
    if pos.rec_index >= Array.length recs0 then
      Error (Errors.Bad_record "record index out of range")
    else begin
      let id = recs0.(pos.rec_index).Block_format.header.Header.logfile in
      let prev_block_pos st pos =
        if pos.block > 1 then Ok (Some { pos with block = pos.block - 1 })
        else if pos.vol > 0 then
          let* v = State.vol st (pos.vol - 1) in
          let limit = Vol.written_limit v in
          if limit <= 1 then Ok None
          else Ok (Some { vol = pos.vol - 1; block = limit - 1; rec_index = 0 })
        else Ok None
      in
      let rec back pos from_rec =
        let* recs = records_at st pos in
        match recs with
        | `Skip | `End -> (
          (* Nothing here (invalidated / unwritten): keep walking back. *)
          let* prev = prev_block_pos st pos in
          match prev with
          | Some p -> back p max_int
          | None -> Error Errors.No_entry)
        | `Recs recs ->
          let hi = min (from_rec - 1) (Array.length recs - 1) in
          let rec in_block i =
            if i < 0 then `Not_here
            else
              let r = recs.(i) in
              if r.Block_format.header.Header.logfile = id then
                if Header.is_start r.Block_format.header then `Start i else `Cont i
              else in_block (i - 1)
          in
          (match in_block hi with
          | `Start i -> Ok { pos with rec_index = i }
          | `Cont i -> back { pos with rec_index = i } i
          | `Not_here -> (
            let* prev = prev_block_pos st pos in
            match prev with
            | Some p -> back p max_int
            | None -> Error Errors.No_entry))
      in
      if Header.is_start recs0.(pos.rec_index).Block_format.header then Ok pos
      else back pos pos.rec_index
    end
