(* Pre-resolved histogram handles for the hot paths: one Metrics lookup at
   server construction, a plain record access per operation afterwards. *)
type probes = {
  h_append : Obs.Histogram.t;
  h_force : Obs.Histogram.t;
  h_flush : Obs.Histogram.t;
  h_locate : Obs.Histogram.t;
  h_read : Obs.Histogram.t;
  h_time_search : Obs.Histogram.t;
  h_recover : Obs.Histogram.t;
  h_entry_bytes : Obs.Histogram.t;
  h_batch : Obs.Histogram.t;
}

(* Replication role. Epochs totally order primaries over a volume
   sequence's lifetime: promotion mints epoch+1 and every shipped message
   carries the sender's epoch, so a deposed primary's traffic is refused
   ([Errors.Stale_epoch]) the first time it reaches anyone who has seen the
   newer epoch — at which point it marks itself [Fenced]. *)
type role =
  | Primary of { epoch : int }
  | Replica of { epoch : int; primary_hint : string }
  | Fenced of { epoch : int; hint : string }

let role_name = function
  | Primary _ -> "primary"
  | Replica _ -> "replica"
  | Fenced _ -> "fenced"

let role_epoch = function
  | Primary { epoch } | Replica { epoch; _ } | Fenced { epoch; _ } -> epoch

type t = {
  config : Config.t;
  clock : Sim.Clock.t;
  catalog : Catalog.t;
  stats : Stats.t;
  obs : Obs.t;
  probes : probes;
  read_memo : Read_memo.t;
  nvram : Worm.Nvram.t option;
  alloc_volume : vol_index:int -> (Worm.Block_io.t, Errors.t) result;
  mutable vols : Vol.t array;
  mutable last_ts : int64;
  mutable badblock_queue : int list;
  mutable seq_uid : int64;
  mutable next_vol_uid : int64;
  mutable in_entry : bool;
  deferred_emissions : (Vol.t * Entrymap.entry) Queue.t;
  mutable auto_mount : bool;
  mutable mounts : int;
  breaker : Breaker.t;
  mutable role : role;
  mutable repl_lag_blocks : int;
}

let make ~config ~clock ?nvram ~alloc_volume () =
  let obs = Obs.create ~now:(fun () -> Int64.to_int (Sim.Clock.peek clock)) () in
  if config.Config.trace_ops then Obs.Trace.set_enabled obs.Obs.trace true;
  let m = obs.Obs.metrics in
  let probes =
    {
      h_append = Obs.Metrics.histogram m "append_us";
      h_force = Obs.Metrics.histogram m "force_us";
      h_flush = Obs.Metrics.histogram m "flush_us";
      h_locate = Obs.Metrics.histogram m "locate_us";
      h_read = Obs.Metrics.histogram m "read_entry_us";
      h_time_search = Obs.Metrics.histogram m "time_search_us";
      h_recover = Obs.Metrics.histogram m "recover_us";
      h_entry_bytes = Obs.Metrics.histogram m "entry_bytes";
      h_batch = Obs.Metrics.histogram m "batch_entries";
    }
  in
  {
    config;
    clock;
    catalog = Catalog.create ();
    stats = Stats.create ();
    obs;
    probes;
    read_memo = Read_memo.create ();
    nvram;
    alloc_volume;
    vols = [||];
    last_ts = 0L;
    badblock_queue = [];
    seq_uid = 0L;
    next_vol_uid = 1L;
    in_entry = false;
    deferred_emissions = Queue.create ();
    auto_mount = true;
    mounts = 0;
    breaker = Breaker.create ~metrics:m ~threshold:config.Config.breaker_threshold ();
    role = Primary { epoch = 1 };
    repl_lag_blocks = 0;
  }

let active t =
  let n = Array.length t.vols in
  if n = 0 then Error (Errors.Bad_record "no volumes attached") else Ok t.vols.(n - 1)

let vol t i =
  if i < 0 || i >= Array.length t.vols then Error (Errors.Volume_offline i)
  else begin
    let v = t.vols.(i) in
    if v.Vol.online then Ok v
    else if t.auto_mount then begin
      (* "made available on demand, either automatically or manually" *)
      v.Vol.online <- true;
      t.mounts <- t.mounts + 1;
      Ok v
    end
    else Error (Errors.Volume_offline i)
  end

let nvols t = Array.length t.vols

let fresh_ts t =
  let now = Sim.Clock.now t.clock in
  let ts = if Int64.compare now t.last_ts > 0 then now else Int64.add t.last_ts 1L in
  t.last_ts <- ts;
  ts

let fresh_vol_uid t =
  let uid = t.next_vol_uid in
  t.next_vol_uid <- Int64.add uid 1L;
  uid

let expand_members t header =
  let tbl = Hashtbl.create 8 in
  let add id =
    if id <> Ids.root && id <> Ids.entrymap && not (Hashtbl.mem tbl id) then
      Hashtbl.replace tbl id ()
  in
  List.iter
    (fun id ->
      add id;
      List.iter add (Catalog.ancestors t.catalog id))
    (Header.members header);
  Hashtbl.fold (fun id () acc -> id :: acc) tbl [] |> List.sort compare
