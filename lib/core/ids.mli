(** Log-file identifiers.

    A local log-file id is the 12-bit index into the volume sequence's
    catalog carried by every entry header (section 2.2). The low ids are
    reserved for the service's own log files. *)

type logfile = int
(** Always in [\[0, 4095\]]. *)

val root : logfile
(** Id 0: the volume sequence log file — the sequence of {e all} entries ever
    written to the volume sequence (section 2). Implicit: no entry header
    names it, every entry belongs to it. *)

val entrymap : logfile
(** Id 1: the entrymap log file (section 2.1). *)

val catalog : logfile
(** Id 2: the catalog log file holding log-file attributes (section 2.2). *)

val badblocks : logfile
(** Id 3: the log of corrupted never-written block locations
    (section 2.3.2). *)

val first_client : logfile
(** Lowest id handed to client log files. *)

val max_logfile : logfile
(** 4095 — the 12-bit limit. *)

val is_reserved : logfile -> bool
val is_internal : logfile -> bool
(** Internal files (entrymap, catalog, badblocks) are served by the log
    service itself; they are excluded from client directory listings but are
    ordinary log files otherwise. *)

val valid : logfile -> bool
val pp : Format.formatter -> logfile -> unit
