type header = {
  block_size : int;
  capacity : int;
  fanout : int;
  seq_uid : int64;
  vol_index : int;
  vol_uid : int64;
  prev_uid : int64;
  created : int64;
}

let magic = 0xC70F
let format_version = 1

let encode_header h =
  let b = Bytes.make h.block_size '\000' in
  Wire.set_u16 b 0 magic;
  Wire.set_u8 b 2 format_version;
  Wire.set_u32 b 4 h.block_size;
  Wire.set_u32 b 8 h.capacity;
  Wire.set_u16 b 12 h.fanout;
  Wire.set_i64 b 16 h.seq_uid;
  Wire.set_u32 b 24 h.vol_index;
  Wire.set_i64 b 28 h.vol_uid;
  Wire.set_i64 b 36 h.prev_uid;
  Wire.set_i64 b 44 h.created;
  Wire.set_u32 b (h.block_size - 4) (Wire.crc32 b ~pos:0 ~len:(h.block_size - 4));
  b

let is_volume_header b =
  Bytes.length b >= 52 && Wire.get_u16 b 0 = magic && Wire.get_u8 b 2 = format_version

let decode_header b =
  if Bytes.length b < 52 then Error (Errors.Bad_record "volume header too short")
  else if not (is_volume_header b) then Error (Errors.Bad_record "bad volume header magic")
  else begin
    let block_size = Wire.get_u32 b 4 in
    if block_size <> Bytes.length b then Error (Errors.Bad_record "volume header size mismatch")
    else if Wire.get_u32 b (block_size - 4) <> Wire.crc32 b ~pos:0 ~len:(block_size - 4) then
      Error (Errors.Corrupt_block 0)
    else
      Ok
        {
          block_size;
          capacity = Wire.get_u32 b 8;
          fanout = Wire.get_u16 b 12;
          seq_uid = Wire.get_i64 b 16;
          vol_index = Wire.get_u32 b 24;
          vol_uid = Wire.get_i64 b 28;
          prev_uid = Wire.get_i64 b 36;
          created = Wire.get_i64 b 44;
        }
  end
