let levels_for_distance ~fanout ~distance =
  let rec go k span = if span >= distance then k else go (k + 1) (span * fanout) in
  go 1 fanout

let locate_examinations ~fanout ~distance =
  if distance <= 0 then 0 else (2 * levels_for_distance ~fanout ~distance) - 1

let log_base b x = log x /. log b

let locate_examinations_avg ~fanout ~distance =
  if distance <= 1.0 then 0.0
  else Float.max 1.0 ((2.0 *. log_base (float_of_int fanout) distance) -. 1.0)

let recovery_examinations_avg ~fanout ~written =
  if written <= 1.0 then 0.0
  else float_of_int fanout *. log_base (float_of_int fanout) written /. 2.0

let recovery_examinations_worst ~fanout ~written =
  if written <= 1.0 then 0.0
  else float_of_int fanout *. log_base (float_of_int fanout) written

let frontier_probes ~capacity =
  int_of_float (ceil (log_base 2.0 (float_of_int (max 2 capacity))))

let entrymap_entries_per_block ~fanout = 1.0 /. float_of_int (fanout - 1)

let entrymap_entry_bytes ~fanout ~files = Entrymap.entry_overhead_bytes ~fanout ~files

let space_overhead_per_entry ~fanout ~header_bytes ~files_per_map ~entry_block_ratio =
  let n = float_of_int fanout in
  entry_block_ratio
  *. (header_bytes +. (files_per_map *. ((n /. 8.0) +. 2.0)))
  /. (n -. 1.0)
