(** Entrymap log entries and the pending (in-memory) bitmaps (section 2.1).

    A level-[l] entrymap entry is appended at the start of every block whose
    index is a multiple of N^l and describes the preceding N^l blocks: for
    each log file with entries in that range, an N-bit bitmap of which of the
    N sub-groups contain them. The entries across levels form the degree-N
    search tree of Figure 2.

    Between boundaries the same information accumulates in memory as
    {e pending} bitmaps — one per level — which (a) become the next entrymap
    entries and (b) serve lookups in the not-yet-mapped recent region. The
    paper's crash-recovery step "reconstruct missing entrymap information"
    (section 2.3.1) rebuilds exactly these. *)

(** {1 On-medium encoding} *)

type entry = {
  level : int;  (** 1-based *)
  base : int;  (** first block of the covered range [\[base, base + N^level)] *)
  maps : (Ids.logfile * Bitmap.t) list;  (** sorted by id *)
}

val encode : entry -> string
val decode : fanout:int -> string -> (entry, Errors.t) result

val entry_overhead_bytes : fanout:int -> files:int -> int
(** Encoded size for [files] maps — the [a·(N/8 + c)] term of the
    section 3.5 overhead analysis. *)

(** {1 Pending bitmaps} *)

module Pending : sig
  type t

  val create : fanout:int -> levels:int -> t
  val levels : t -> int
  val fanout : t -> int

  val note_block : t -> block:int -> Ids.logfile list -> unit
  (** [note_block t ~block files] records that the (just flushed) device
      block [block] contains entries of each of [files] (already expanded to
      include ancestors, excluding the root and internal-exempt files). If a
      level's stored range does not contain [block] (a boundary was skipped
      by bad-block displacement), that level resets to [block]'s range,
      dropping the stale range — the locate fallback covers it. *)

  val seed : t -> level:int -> block:int -> Ids.logfile list -> unit
  (** Like {!note_block} but touching a single level — used by recovery when
      level-[l] information is rebuilt from level-[l-1] entrymap entries
      rather than from raw blocks (section 2.3.1 / Figure 4). *)

  val retarget : t -> level:int -> block:int -> unit
  (** Point [level]'s accumulating range at the one containing [block],
      clearing its maps if that is a change. Recovery MUST call this even
      when it has nothing to seed (every block of the range invalidated):
      a level left at its initial base would otherwise claim authoritative
      empty coverage of a range whose truth lives in a written entrymap
      entry, hiding those blocks from every log. *)

  val due_at : t -> block:int -> int list
  (** Levels whose entrymap entry must be emitted when block [block] opens:
      all [l] with [block mod N^l = 0], in ascending order, capped at
      [levels]. *)

  val take : t -> level:int -> boundary:int -> entry option
  (** [take t ~level ~boundary] returns the entrymap entry to write at block
      [boundary] (covering [\[boundary - N^level, boundary)]) and resets that
      level's pending range to start at [boundary]. [None] if the range had
      no entries or the stored range is stale. *)

  val query : t -> level:int -> base:int -> Ids.logfile -> Bitmap.t option
  (** The pending bitmap for [base]'s range at [level], if that is the range
      currently accumulating. Returns an empty bitmap for files without
      entries (the range is covered; the file just has nothing there). *)

  val covers : t -> level:int -> base:int -> bool
  val files_at : t -> level:int -> Ids.logfile list
end
