(** Whole-server mutable context shared by the writer, reader and recovery
    paths. {!Server} is the public facade over this. *)

type t = {
  config : Config.t;
  clock : Sim.Clock.t;
  catalog : Catalog.t;
  stats : Stats.t;
  nvram : Worm.Nvram.t option;
  alloc_volume : vol_index:int -> (Worm.Block_io.t, Errors.t) result;
      (** hands out a fresh device when the active volume fills *)
  mutable vols : Vol.t array;  (** oldest first; the last is active *)
  mutable last_ts : int64;  (** enforces strictly monotonic timestamps *)
  mutable badblock_queue : int list;
      (** bad blocks awaiting a record in the bad-block log *)
  mutable seq_uid : int64;
  mutable next_vol_uid : int64;
  mutable in_entry : bool;
      (** an entry's fragments are being appended; entrymap emission must
          wait so fragments of one log file never interleave *)
  mutable deferred_emissions : (Vol.t * Entrymap.entry) list;
      (** entrymap entries captured at their boundary, awaiting emission
          (oldest first). Captured eagerly — the covered range is complete
          the moment its boundary block opens — and written as soon as no
          entry is mid-flight. *)
  mutable auto_mount : bool;
      (** remount shelved volumes transparently when a read needs them
          (section 2.1's "on demand ... automatically"); when false, such
          reads fail with [Volume_offline] *)
  mutable mounts : int;  (** automatic remounts performed *)
}

val make :
  config:Config.t ->
  clock:Sim.Clock.t ->
  ?nvram:Worm.Nvram.t ->
  alloc_volume:(vol_index:int -> (Worm.Block_io.t, Errors.t) result) ->
  unit ->
  t
(** A context with no volumes yet; the caller attaches them. *)

val active : t -> (Vol.t, Errors.t) result
val vol : t -> int -> (Vol.t, Errors.t) result
val nvols : t -> int

val fresh_ts : t -> int64
(** Strictly-increasing timestamp from the clock. *)

val fresh_vol_uid : t -> int64

val expand_members : t -> Header.t -> Ids.logfile list
(** The log-file ids whose entrymap bitmaps a record with this header must
    set: declared members plus all their ancestors, minus the root and the
    entrymap log itself (paper footnote 6), deduplicated. *)
