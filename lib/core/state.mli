(** Whole-server mutable context shared by the writer, reader and recovery
    paths. {!Server} is the public facade over this. *)

(** Pre-resolved latency/size histogram handles for the hot paths (resolved
    once in {!make}; bumping one is a record write, no name lookup). *)
type probes = {
  h_append : Obs.Histogram.t;
  h_force : Obs.Histogram.t;
  h_flush : Obs.Histogram.t;
  h_locate : Obs.Histogram.t;
  h_read : Obs.Histogram.t;
  h_time_search : Obs.Histogram.t;
  h_recover : Obs.Histogram.t;
  h_entry_bytes : Obs.Histogram.t;
  h_batch : Obs.Histogram.t;  (** entries per {!Server.append_batch} call *)
}

(** Replication role of this server over its volume sequence. Every server
    boots (and recovers) as [Primary] at epoch 1; {!Repl.Replica} demotes
    its rebuilt servers to [Replica], promotion mints [Primary] with the
    next epoch, and a primary whose shipment is refused with
    [Errors.Stale_epoch] marks itself [Fenced]. Replica and Fenced roles
    refuse every write with [Errors.Not_primary] carrying the hint. *)
type role =
  | Primary of { epoch : int }
  | Replica of { epoch : int; primary_hint : string }
  | Fenced of { epoch : int; hint : string }

val role_name : role -> string
(** ["primary"] / ["replica"] / ["fenced"] — the metrics rendering. *)

val role_epoch : role -> int

type t = {
  config : Config.t;
  clock : Sim.Clock.t;
  catalog : Catalog.t;
  stats : Stats.t;
  obs : Obs.t;  (** metrics registry + tracer, clocked by [clock] *)
  probes : probes;
  read_memo : Read_memo.t;
      (** memoized entrymap decodes + per-log skip index; staleness is
          handled via each volume's [read_gen] (see {!Vol.t}) *)
  nvram : Worm.Nvram.t option;
  alloc_volume : vol_index:int -> (Worm.Block_io.t, Errors.t) result;
      (** hands out a fresh device when the active volume fills *)
  mutable vols : Vol.t array;  (** oldest first; the last is active *)
  mutable last_ts : int64;  (** enforces strictly monotonic timestamps *)
  mutable badblock_queue : int list;
      (** bad blocks awaiting a record in the bad-block log *)
  mutable seq_uid : int64;
  mutable next_vol_uid : int64;
  mutable in_entry : bool;
      (** an entry's fragments are being appended; entrymap emission must
          wait so fragments of one log file never interleave *)
  deferred_emissions : (Vol.t * Entrymap.entry) Queue.t;
      (** entrymap entries captured at their boundary, awaiting emission
          (FIFO, oldest first). Captured eagerly — the covered range is
          complete the moment its boundary block opens — and written as soon
          as no entry is mid-flight. A queue, not a list: a long run of
          boundary blocks appends one entry per level and list-append made
          that O(n²). *)
  mutable auto_mount : bool;
      (** remount shelved volumes transparently when a read needs them
          (section 2.1's "on demand ... automatically"); when false, such
          reads fail with [Volume_offline] *)
  mutable mounts : int;  (** automatic remounts performed *)
  breaker : Breaker.t;
      (** error-budget circuit breaker for the write paths; volatile —
          recovery starts a fresh (closed) breaker *)
  mutable role : role;
      (** replication role; volatile — the replication layer re-asserts it
          after every recovery *)
  mutable repl_lag_blocks : int;
      (** primary-side gauge: settled blocks the furthest-behind replica has
          not acknowledged, as of the last shipper sync *)
}

val make :
  config:Config.t ->
  clock:Sim.Clock.t ->
  ?nvram:Worm.Nvram.t ->
  alloc_volume:(vol_index:int -> (Worm.Block_io.t, Errors.t) result) ->
  unit ->
  t
(** A context with no volumes yet; the caller attaches them. *)

val active : t -> (Vol.t, Errors.t) result
val vol : t -> int -> (Vol.t, Errors.t) result
val nvols : t -> int

val fresh_ts : t -> int64
(** Strictly-increasing timestamp from the clock. *)

val fresh_vol_uid : t -> int64

val expand_members : t -> Header.t -> Ids.logfile list
(** The log-file ids whose entrymap bitmaps a record with this header must
    set: declared members plus all their ancestors, minus the root and the
    entrymap log itself (paper footnote 6), deduplicated. *)
