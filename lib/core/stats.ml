type t = {
  mutable entries_appended : int;
  mutable bytes_client : int;
  mutable bytes_header : int;
  mutable bytes_index : int;
  mutable bytes_trailer : int;
  mutable bytes_entrymap : int;
  mutable bytes_catalog : int;
  mutable bytes_padding : int;
  mutable blocks_flushed : int;
  mutable forces : int;
  mutable nvram_syncs : int;
  mutable displaced_blocks : int;
  mutable bad_blocks : int;
  mutable flush_retries : int;
  mutable volumes_sealed : int;
  mutable entries_read : int;
  mutable entrymap_records_examined : int;
  mutable locate_block_reads : int;
  mutable fallback_blocks_scanned : int;
  mutable time_probe_reads : int;
  mutable recoveries : int;
  mutable frontier_probe_reads : int;
  mutable recovery_blocks_examined : int;
  mutable locate_memo_hits : int;
  mutable entrymap_memo_hits : int;
  mutable readahead_batches : int;
  mutable readahead_blocks : int;
  mutable repl_blocks_shipped : int;
  mutable repl_blocks_applied : int;
  mutable repl_tail_ships : int;
  mutable repl_tail_applies : int;
  mutable repl_catchup_rounds : int;
  mutable repl_epoch_rejects : int;
}

let create () =
  {
    entries_appended = 0;
    bytes_client = 0;
    bytes_header = 0;
    bytes_index = 0;
    bytes_trailer = 0;
    bytes_entrymap = 0;
    bytes_catalog = 0;
    bytes_padding = 0;
    blocks_flushed = 0;
    forces = 0;
    nvram_syncs = 0;
    displaced_blocks = 0;
    bad_blocks = 0;
    flush_retries = 0;
    volumes_sealed = 0;
    entries_read = 0;
    entrymap_records_examined = 0;
    locate_block_reads = 0;
    fallback_blocks_scanned = 0;
    time_probe_reads = 0;
    recoveries = 0;
    frontier_probe_reads = 0;
    recovery_blocks_examined = 0;
    locate_memo_hits = 0;
    entrymap_memo_hits = 0;
    readahead_batches = 0;
    readahead_blocks = 0;
    repl_blocks_shipped = 0;
    repl_blocks_applied = 0;
    repl_tail_ships = 0;
    repl_tail_applies = 0;
    repl_catchup_rounds = 0;
    repl_epoch_rejects = 0;
  }

(* The single source of truth relating field names to accessors, in
   declaration order. [fields], [reset], [snapshot] and [diff] all derive
   from it, so a new counter only needs a record field (the compiler forces
   [create] to cover it) and one row here; the drift-guard test in
   test_obs.ml fails if the row is forgotten. *)
let field_specs : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("entries_appended", (fun t -> t.entries_appended), fun t v -> t.entries_appended <- v);
    ("bytes_client", (fun t -> t.bytes_client), fun t v -> t.bytes_client <- v);
    ("bytes_header", (fun t -> t.bytes_header), fun t v -> t.bytes_header <- v);
    ("bytes_index", (fun t -> t.bytes_index), fun t v -> t.bytes_index <- v);
    ("bytes_trailer", (fun t -> t.bytes_trailer), fun t v -> t.bytes_trailer <- v);
    ("bytes_entrymap", (fun t -> t.bytes_entrymap), fun t v -> t.bytes_entrymap <- v);
    ("bytes_catalog", (fun t -> t.bytes_catalog), fun t v -> t.bytes_catalog <- v);
    ("bytes_padding", (fun t -> t.bytes_padding), fun t v -> t.bytes_padding <- v);
    ("blocks_flushed", (fun t -> t.blocks_flushed), fun t v -> t.blocks_flushed <- v);
    ("forces", (fun t -> t.forces), fun t v -> t.forces <- v);
    ("nvram_syncs", (fun t -> t.nvram_syncs), fun t v -> t.nvram_syncs <- v);
    ("displaced_blocks", (fun t -> t.displaced_blocks), fun t v -> t.displaced_blocks <- v);
    ("bad_blocks", (fun t -> t.bad_blocks), fun t v -> t.bad_blocks <- v);
    ("flush_retries", (fun t -> t.flush_retries), fun t v -> t.flush_retries <- v);
    ("volumes_sealed", (fun t -> t.volumes_sealed), fun t v -> t.volumes_sealed <- v);
    ("entries_read", (fun t -> t.entries_read), fun t v -> t.entries_read <- v);
    ( "entrymap_records_examined",
      (fun t -> t.entrymap_records_examined),
      fun t v -> t.entrymap_records_examined <- v );
    ("locate_block_reads", (fun t -> t.locate_block_reads), fun t v -> t.locate_block_reads <- v);
    ( "fallback_blocks_scanned",
      (fun t -> t.fallback_blocks_scanned),
      fun t v -> t.fallback_blocks_scanned <- v );
    ("time_probe_reads", (fun t -> t.time_probe_reads), fun t v -> t.time_probe_reads <- v);
    ("recoveries", (fun t -> t.recoveries), fun t v -> t.recoveries <- v);
    ( "frontier_probe_reads",
      (fun t -> t.frontier_probe_reads),
      fun t v -> t.frontier_probe_reads <- v );
    ( "recovery_blocks_examined",
      (fun t -> t.recovery_blocks_examined),
      fun t v -> t.recovery_blocks_examined <- v );
    ("locate_memo_hits", (fun t -> t.locate_memo_hits), fun t v -> t.locate_memo_hits <- v);
    ("entrymap_memo_hits", (fun t -> t.entrymap_memo_hits), fun t v -> t.entrymap_memo_hits <- v);
    ("readahead_batches", (fun t -> t.readahead_batches), fun t v -> t.readahead_batches <- v);
    ("readahead_blocks", (fun t -> t.readahead_blocks), fun t v -> t.readahead_blocks <- v);
    ( "repl_blocks_shipped",
      (fun t -> t.repl_blocks_shipped),
      fun t v -> t.repl_blocks_shipped <- v );
    ( "repl_blocks_applied",
      (fun t -> t.repl_blocks_applied),
      fun t v -> t.repl_blocks_applied <- v );
    ("repl_tail_ships", (fun t -> t.repl_tail_ships), fun t v -> t.repl_tail_ships <- v);
    ("repl_tail_applies", (fun t -> t.repl_tail_applies), fun t v -> t.repl_tail_applies <- v);
    ( "repl_catchup_rounds",
      (fun t -> t.repl_catchup_rounds),
      fun t v -> t.repl_catchup_rounds <- v );
    ( "repl_epoch_rejects",
      (fun t -> t.repl_epoch_rejects),
      fun t v -> t.repl_epoch_rejects <- v );
  ]

let fields t = List.map (fun (name, get, _) -> (name, get t)) field_specs
let set_field t name v =
  match List.find_opt (fun (n, _, _) -> n = name) field_specs with
  | Some (_, _, set) ->
    set t v;
    true
  | None -> false

let reset t = List.iter (fun (_, _, set) -> set t 0) field_specs

let snapshot t =
  let s = create () in
  List.iter (fun (_, get, set) -> set s (get t)) field_specs;
  s

let diff ~after ~before =
  let d = create () in
  List.iter (fun (_, get, set) -> set d (get after - get before)) field_specs;
  d

let overhead_bytes t =
  t.bytes_header + t.bytes_index + t.bytes_trailer + t.bytes_entrymap + t.bytes_catalog
  + t.bytes_padding

let to_json t = Obs.Json.Obj (List.map (fun (name, v) -> (name, Obs.Json.Int v)) (fields t))

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf ppf "%-28s %d@," name v)
    (fields t);
  Format.pp_close_box ppf ()
