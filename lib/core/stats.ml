type t = {
  mutable entries_appended : int;
  mutable bytes_client : int;
  mutable bytes_header : int;
  mutable bytes_index : int;
  mutable bytes_trailer : int;
  mutable bytes_entrymap : int;
  mutable bytes_catalog : int;
  mutable bytes_padding : int;
  mutable blocks_flushed : int;
  mutable forces : int;
  mutable nvram_syncs : int;
  mutable displaced_blocks : int;
  mutable bad_blocks : int;
  mutable volumes_sealed : int;
  mutable entries_read : int;
  mutable entrymap_records_examined : int;
  mutable locate_block_reads : int;
  mutable fallback_blocks_scanned : int;
  mutable time_probe_reads : int;
  mutable recoveries : int;
  mutable frontier_probe_reads : int;
  mutable recovery_blocks_examined : int;
}

let create () =
  {
    entries_appended = 0;
    bytes_client = 0;
    bytes_header = 0;
    bytes_index = 0;
    bytes_trailer = 0;
    bytes_entrymap = 0;
    bytes_catalog = 0;
    bytes_padding = 0;
    blocks_flushed = 0;
    forces = 0;
    nvram_syncs = 0;
    displaced_blocks = 0;
    bad_blocks = 0;
    volumes_sealed = 0;
    entries_read = 0;
    entrymap_records_examined = 0;
    locate_block_reads = 0;
    fallback_blocks_scanned = 0;
    time_probe_reads = 0;
    recoveries = 0;
    frontier_probe_reads = 0;
    recovery_blocks_examined = 0;
  }

let fields t =
  [
    ("entries_appended", t.entries_appended);
    ("bytes_client", t.bytes_client);
    ("bytes_header", t.bytes_header);
    ("bytes_index", t.bytes_index);
    ("bytes_trailer", t.bytes_trailer);
    ("bytes_entrymap", t.bytes_entrymap);
    ("bytes_catalog", t.bytes_catalog);
    ("bytes_padding", t.bytes_padding);
    ("blocks_flushed", t.blocks_flushed);
    ("forces", t.forces);
    ("nvram_syncs", t.nvram_syncs);
    ("displaced_blocks", t.displaced_blocks);
    ("bad_blocks", t.bad_blocks);
    ("volumes_sealed", t.volumes_sealed);
    ("entries_read", t.entries_read);
    ("entrymap_records_examined", t.entrymap_records_examined);
    ("locate_block_reads", t.locate_block_reads);
    ("fallback_blocks_scanned", t.fallback_blocks_scanned);
    ("time_probe_reads", t.time_probe_reads);
    ("recoveries", t.recoveries);
    ("frontier_probe_reads", t.frontier_probe_reads);
    ("recovery_blocks_examined", t.recovery_blocks_examined);
  ]

let reset t =
  t.entries_appended <- 0;
  t.bytes_client <- 0;
  t.bytes_header <- 0;
  t.bytes_index <- 0;
  t.bytes_trailer <- 0;
  t.bytes_entrymap <- 0;
  t.bytes_catalog <- 0;
  t.bytes_padding <- 0;
  t.blocks_flushed <- 0;
  t.forces <- 0;
  t.nvram_syncs <- 0;
  t.displaced_blocks <- 0;
  t.bad_blocks <- 0;
  t.volumes_sealed <- 0;
  t.entries_read <- 0;
  t.entrymap_records_examined <- 0;
  t.locate_block_reads <- 0;
  t.fallback_blocks_scanned <- 0;
  t.time_probe_reads <- 0;
  t.recoveries <- 0;
  t.frontier_probe_reads <- 0;
  t.recovery_blocks_examined <- 0

let snapshot t =
  let s = create () in
  s.entries_appended <- t.entries_appended;
  s.bytes_client <- t.bytes_client;
  s.bytes_header <- t.bytes_header;
  s.bytes_index <- t.bytes_index;
  s.bytes_trailer <- t.bytes_trailer;
  s.bytes_entrymap <- t.bytes_entrymap;
  s.bytes_catalog <- t.bytes_catalog;
  s.bytes_padding <- t.bytes_padding;
  s.blocks_flushed <- t.blocks_flushed;
  s.forces <- t.forces;
  s.nvram_syncs <- t.nvram_syncs;
  s.displaced_blocks <- t.displaced_blocks;
  s.bad_blocks <- t.bad_blocks;
  s.volumes_sealed <- t.volumes_sealed;
  s.entries_read <- t.entries_read;
  s.entrymap_records_examined <- t.entrymap_records_examined;
  s.locate_block_reads <- t.locate_block_reads;
  s.fallback_blocks_scanned <- t.fallback_blocks_scanned;
  s.time_probe_reads <- t.time_probe_reads;
  s.recoveries <- t.recoveries;
  s.frontier_probe_reads <- t.frontier_probe_reads;
  s.recovery_blocks_examined <- t.recovery_blocks_examined;
  s

let diff ~after ~before =
  let d = create () in
  d.entries_appended <- after.entries_appended - before.entries_appended;
  d.bytes_client <- after.bytes_client - before.bytes_client;
  d.bytes_header <- after.bytes_header - before.bytes_header;
  d.bytes_index <- after.bytes_index - before.bytes_index;
  d.bytes_trailer <- after.bytes_trailer - before.bytes_trailer;
  d.bytes_entrymap <- after.bytes_entrymap - before.bytes_entrymap;
  d.bytes_catalog <- after.bytes_catalog - before.bytes_catalog;
  d.bytes_padding <- after.bytes_padding - before.bytes_padding;
  d.blocks_flushed <- after.blocks_flushed - before.blocks_flushed;
  d.forces <- after.forces - before.forces;
  d.nvram_syncs <- after.nvram_syncs - before.nvram_syncs;
  d.displaced_blocks <- after.displaced_blocks - before.displaced_blocks;
  d.bad_blocks <- after.bad_blocks - before.bad_blocks;
  d.volumes_sealed <- after.volumes_sealed - before.volumes_sealed;
  d.entries_read <- after.entries_read - before.entries_read;
  d.entrymap_records_examined <- after.entrymap_records_examined - before.entrymap_records_examined;
  d.locate_block_reads <- after.locate_block_reads - before.locate_block_reads;
  d.fallback_blocks_scanned <- after.fallback_blocks_scanned - before.fallback_blocks_scanned;
  d.time_probe_reads <- after.time_probe_reads - before.time_probe_reads;
  d.recoveries <- after.recoveries - before.recoveries;
  d.frontier_probe_reads <- after.frontier_probe_reads - before.frontier_probe_reads;
  d.recovery_blocks_examined <- after.recovery_blocks_examined - before.recovery_blocks_examined;
  d

let overhead_bytes t =
  t.bytes_header + t.bytes_index + t.bytes_trailer + t.bytes_entrymap + t.bytes_catalog
  + t.bytes_padding

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, v) -> if v <> 0 then Format.fprintf ppf "%-28s %d@," name v)
    (fields t);
  Format.pp_close_box ppf ()
