(** Locating log entries by time (section 2.1).

    "The server uses a tree search, based on the timestamps in the log entry
    headers. A header timestamp is mandatory for the first log entry in each
    block, so the search succeeds to a resolution of at least a single
    block. At the upper levels of the tree, the search uses those blocks
    that happen to contain entrymap log entries" — i.e. the probe positions
    are the N^l multiples, which are exactly the blocks a reader is likely to
    have cached already.

    The server's timestamps are strictly increasing in write order, so
    first-timestamps are monotone across blocks and across volumes. *)

val seek : State.t -> int64 -> (Assemble.position, Errors.t) result
(** [seek st ts] returns a block-resolution position [p] such that every
    entry with timestamp ≥ [ts] starts at or after [p], and the block at [p]
    is the last one whose first timestamp is ≤ [ts] (so scanning forward
    from [p] finds the boundary exactly). If [ts] precedes everything, [p]
    is the start of the sequence. *)

val first_at_or_after :
  State.t -> log:Ids.logfile -> int64 -> (Reader.entry option, Errors.t) result
(** First entry of [log] whose timestamp is ≥ [ts] (entries without
    timestamps are attributed their block's resolution and skipped unless a
    later timestamped sibling qualifies). *)

val last_before :
  State.t -> log:Ids.logfile -> int64 -> (Reader.entry option, Errors.t) result
(** Last entry of [log] with timestamp < [ts]. *)
