let ( let* ) = Errors.( let* )

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let collect_files st records =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun r ->
      List.iter
        (fun id -> if not (Hashtbl.mem tbl id) then Hashtbl.replace tbl id ())
        (State.expand_members st r.Block_format.header))
    records;
  Hashtbl.fold (fun id () acc -> id :: acc) tbl []

let account st hdr_bytes frag_bytes id =
  let s = st.State.stats in
  if id = Ids.entrymap then
    s.Stats.bytes_entrymap <- s.Stats.bytes_entrymap + hdr_bytes + frag_bytes
  else if id = Ids.catalog || id = Ids.badblocks then
    s.Stats.bytes_catalog <- s.Stats.bytes_catalog + hdr_bytes + frag_bytes
  else begin
    s.Stats.bytes_header <- s.Stats.bytes_header + hdr_bytes;
    s.Stats.bytes_client <- s.Stats.bytes_client + frag_bytes
  end

(* ------------------------------------------------------------------ *)
(* Tail lifecycle, fragmentation, flushing, rollover                   *)
(* ------------------------------------------------------------------ *)

(* Opening a block at an N^l boundary makes that boundary's entrymap entries
   due. Emission is itself an append, so it is deferred until no entry is
   mid-flight — fragments of one log file must never interleave, or
   continuation reassembly would mix entries. A deferred entry may land a
   few records or blocks past its well-known position; the locate slack scan
   (section 2.3.2's displacement rule) absorbs that. *)
let rec open_tail st (v : Vol.t) : (unit, Errors.t) result =
  if v.tail_open then Ok ()
  else begin
    v.tail_index <- Vol.device_frontier v;
    v.tail_open <- true;
    let boundary = v.tail_index in
    (* Capture each due entrymap entry now — its covered range is complete
       the moment the boundary block opens — and write it once no entry is
       mid-flight. *)
    let due = Entrymap.Pending.due_at v.pending ~block:boundary in
    List.iter
      (fun level ->
        match Entrymap.Pending.take v.pending ~level ~boundary with
        | None -> ()
        | Some entry -> Queue.add (v, entry) st.State.deferred_emissions)
      due;
    if st.State.in_entry then Ok () else pump_emissions st
  end

and pump_emissions st : (unit, Errors.t) result =
  match Queue.take_opt st.State.deferred_emissions with
  | None -> Ok ()
  | Some (v, entry) ->
    let* active = State.active st in
    if v.Vol.sealed || v != active then pump_emissions st (* lost to a roll; locate falls back *)
    else begin
      let payload = Entrymap.encode entry in
      let header = Header.make ~timestamp:(State.fresh_ts st) Ids.entrymap in
      let* () =
        as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false payload)
      in
      pump_emissions st
    end

(* Run [f] with the in-entry flag set, then emit any entrymap entries that
   became due while it ran. *)
and as_entry st f : (unit, Errors.t) result =
  if st.State.in_entry then f ()
  else begin
    st.State.in_entry <- true;
    let r = f () in
    st.State.in_entry <- false;
    let* () = r in
    pump_emissions st
  end

(* Write [payload] as one or more fragment records on the active volume.
   The first fragment uses [first]; later fragments are version-3
   continuations. [continues_after] marks the final fragment as still
   continuing (used only when re-appending carried records that were
   themselves fragments of a larger entry). *)
and put_bytes st ~first ~continues_after payload : (unit, Errors.t) result =
  let total = String.length payload in
  let cont_id = first.Header.logfile in
  (* [chain] is the fragment-chain checksum of every entry byte already
     written before [offset]. A carried continuation record seeds it from
     its own stored tag, so re-fragmenting the carry keeps tags aligned
     with the original entry's byte stream. *)
  let rec put offset chain hdr =
    let* v = State.active st in
    let* () = open_tail st v in
    (* The first record of a block must carry a timestamp (section 2.1) —
       upgrade a plain start header in that position. Continuations cannot
       carry one; the time search tolerates the gap. *)
    let hdr =
      if
        Block_format.Builder.is_empty v.tail
        && Header.is_start hdr
        && hdr.Header.timestamp = None
      then Header.make ~timestamp:(State.fresh_ts st) hdr.Header.logfile
      else hdr
    in
    let hsize = Header.byte_size hdr in
    let avail = Block_format.Builder.free_bytes v.tail - hsize in
    let remaining = total - offset in
    if avail < 0 || (avail = 0 && remaining > 0) then
      if Block_format.Builder.is_empty v.tail then
        Error (Errors.Entry_too_large (hsize + remaining))
      else
        let* () = flush_tail st v in
        put offset chain hdr
    else begin
      let n = min avail remaining in
      let continues = offset + n < total || continues_after in
      let frag = String.sub payload offset n in
      let* () = Block_format.Builder.add v.tail hdr ~continues frag in
      account st hsize n cont_id;
      if offset + n < total then begin
        let* () = flush_tail st v in
        let chain = Header.chain_update chain frag in
        put (offset + n) chain (Header.continuation ~chain cont_id)
      end
      else Ok ()
    end
  in
  let chain0 =
    if Header.is_start first then Header.chain_seed else first.Header.chain
  in
  put 0 chain0 first

and flush_tail ?(forced = false) st (v : Vol.t) : (unit, Errors.t) result =
  if (not v.tail_open) || Block_format.Builder.is_empty v.tail then begin
    v.tail_open <- false;
    Ok ()
  end
  else begin
    let records = Block_format.Builder.records v.tail in
    let count = Block_format.Builder.count v.tail in
    let data_bytes = Block_format.Builder.data_bytes v.tail in
    let image = Block_format.Builder.finish ~forced v.tail in
    let rec attempt retries =
      match v.io.Worm.Block_io.append image with
      | Ok idx ->
        let s = st.State.stats in
        if idx <> v.tail_index then s.Stats.displaced_blocks <- s.Stats.displaced_blocks + 1;
        Entrymap.Pending.note_block v.pending ~block:idx (collect_files st records);
        s.Stats.blocks_flushed <- s.Stats.blocks_flushed + 1;
        s.Stats.bytes_trailer <- s.Stats.bytes_trailer + Block_format.trailer_bytes;
        s.Stats.bytes_index <- s.Stats.bytes_index + (Block_format.index_entry_bytes * count);
        s.Stats.bytes_padding <-
          s.Stats.bytes_padding
          + (v.hdr.Volume.block_size - data_bytes
            - (Block_format.index_entry_bytes * count)
            - Block_format.trailer_bytes);
        Block_format.Builder.reset v.tail;
        v.tail_open <- false;
        v.tail_index <- idx + 1;
        (match st.State.nvram with Some nv -> Worm.Nvram.clear nv | None -> ());
        drain_badblocks st
      | Error (Worm.Block_io.Bad_block f) ->
        (* Invalidate the damaged block so the frontier moves past it, and
           remember to record its location in the bad-block log
           (section 2.3.2). If the invalidation itself fails, the frontier
           cannot advance and retrying would hit the same block forever, so
           the failure must surface; the capacity cap is a backstop against
           a device that accepts invalidations without moving its frontier. *)
        let s = st.State.stats in
        s.Stats.bad_blocks <- s.Stats.bad_blocks + 1;
        s.Stats.flush_retries <- s.Stats.flush_retries + 1;
        if retries >= v.hdr.Volume.capacity then
          Error (Errors.Device (Worm.Block_io.Bad_block f))
        else begin
          match v.io.Worm.Block_io.invalidate f with
          | Error e -> Error (Errors.Device e)
          | Ok () ->
            st.State.badblock_queue <- f :: st.State.badblock_queue;
            attempt (retries + 1)
        end
      | Error Worm.Block_io.Out_of_space ->
        (* Volume full: seal it, continue on a successor, and re-stage the
           unflushed records there. A non-forced flush stops at staging (the
           new tail flushes when it fills); a forced one must reach
           durability on the new volume too. *)
        let* () = roll_volume st in
        let* () = replay_carry st records in
        if forced then begin
          let* v' = State.active st in
          flush_tail ~forced st v'
        end
        else Ok ()
      | Error e -> Error (Errors.Device e)
    in
    Obs.time st.State.obs st.State.probes.State.h_flush "flush" (fun () -> attempt 0)
  end

and roll_volume st : (unit, Errors.t) result =
  let* old = State.active st in
  old.sealed <- true;
  old.tail_open <- false;
  Block_format.Builder.reset old.tail;
  st.State.stats.Stats.volumes_sealed <- st.State.stats.Stats.volumes_sealed + 1;
  let vol_index = State.nvols st in
  let* dev = st.State.alloc_volume ~vol_index in
  let hdr =
    {
      Volume.block_size = dev.Worm.Block_io.block_size;
      capacity = dev.Worm.Block_io.capacity;
      fanout = st.State.config.Config.fanout;
      seq_uid = st.State.seq_uid;
      vol_index;
      vol_uid = State.fresh_vol_uid st;
      prev_uid = old.hdr.Volume.vol_uid;
      created = State.fresh_ts st;
    }
  in
  let* hdr_idx = Errors.of_dev (dev.Worm.Block_io.append (Volume.encode_header hdr)) in
  if hdr_idx <> 0 then Error (Errors.Bad_record "successor volume not blank")
  else begin
    let v = Vol.make ~config:st.State.config ~metrics:st.State.obs.Obs.metrics ~hdr dev in
    v.tail_index <- 1;
    st.State.vols <- Array.append st.State.vols [| v |];
    snapshot_catalog st
  end

and snapshot_catalog st : (unit, Errors.t) result =
  let rec log_all = function
    | [] -> Ok ()
    | d :: rest ->
      let payload = Catalog.encode_op (Catalog.Create d) in
      let header = Header.make ~timestamp:(State.fresh_ts st) Ids.catalog in
      let* () = as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false payload) in
      log_all rest
  in
  log_all (Catalog.live_descriptors st.State.catalog)

and drain_badblocks st : (unit, Errors.t) result =
  match st.State.badblock_queue with
  | [] -> Ok ()
  | blocks ->
    st.State.badblock_queue <- [];
    let enc = Wire.Enc.create () in
    Wire.Enc.u16 enc (List.length blocks);
    List.iter (fun b -> Wire.Enc.u32 enc b) blocks;
    let header = Header.make ~timestamp:(State.fresh_ts st) Ids.badblocks in
    as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false (Wire.Enc.contents enc))

and replay_carry st records : (unit, Errors.t) result =
  let rec go i =
    if i >= Array.length records then Ok ()
    else begin
      let r = records.(i) in
      (* Carried records are re-stamped: their old timestamps were assigned
         while volatile (never durable under that stamp), and on a
         successor volume they would precede the catalog snapshot's fresh
         stamps, breaking the block-timestamp monotonicity the time search
         depends on. *)
      let header =
        let h = r.Block_format.header in
        if Header.is_start h && h.Header.timestamp <> None then
          Header.make ~timestamp:(State.fresh_ts st) ~extra_members:h.Header.extra_members
            h.Header.logfile
        else h
      in
      let* () =
        as_entry st (fun () ->
            put_bytes st ~first:header ~continues_after:r.Block_format.continues
              r.Block_format.payload)
      in
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Public entry points                                                 *)
(* ------------------------------------------------------------------ *)

let init_sequence st : (unit, Errors.t) result =
  if State.nvols st > 0 then Error (Errors.Bad_record "sequence already initialized")
  else begin
    st.State.seq_uid <- State.fresh_vol_uid st;
    let* dev = st.State.alloc_volume ~vol_index:0 in
    let hdr =
      {
        Volume.block_size = dev.Worm.Block_io.block_size;
        capacity = dev.Worm.Block_io.capacity;
        fanout = st.State.config.Config.fanout;
        seq_uid = st.State.seq_uid;
        vol_index = 0;
        vol_uid = State.fresh_vol_uid st;
        prev_uid = 0L;
        created = State.fresh_ts st;
      }
    in
    let* hdr_idx = Errors.of_dev (dev.Worm.Block_io.append (Volume.encode_header hdr)) in
    if hdr_idx <> 0 then Error (Errors.Bad_record "first volume not blank")
    else begin
      let v = Vol.make ~config:st.State.config ~metrics:st.State.obs.Obs.metrics ~hdr dev in
      v.tail_index <- 1;
      st.State.vols <- [| v |];
      Ok ()
    end
  end

let append_entry st ~header payload =
  Obs.Histogram.record st.State.probes.State.h_entry_bytes (String.length payload);
  Obs.time st.State.obs st.State.probes.State.h_append "append" (fun () ->
      as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false payload))

(* Group-commit staging: every entry of the batch goes into the same tail
   builder back to back (flushing only when a block actually fills), under a
   single span. Durability is the caller's business — {!Server.append_batch}
   issues at most one [force] after the whole batch is staged, so N entries
   share one block flush instead of N. Each entry is stamped immediately
   before it is staged (not all up front): staging can itself consume
   timestamps (entrymap emissions, block-start upgrades), and interleaving
   keeps the on-media bytes identical to the same entries sent one by one. *)
let append_batch st items =
  Obs.Histogram.record st.State.probes.State.h_batch (List.length items);
  Obs.time st.State.obs st.State.probes.State.h_append "append_batch" (fun () ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (log, extra_members, payload) :: rest ->
          let timestamp =
            if st.State.config.Config.timestamp_all then Some (State.fresh_ts st) else None
          in
          let header = Header.make ?timestamp ~extra_members log in
          Obs.Histogram.record st.State.probes.State.h_entry_bytes (String.length payload);
          let* () =
            as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false payload)
          in
          go (header.Header.timestamp :: acc) rest
      in
      go [] items)

let force_inner st : (unit, Errors.t) result =
  let* v = State.active st in
  st.State.stats.Stats.forces <- st.State.stats.Stats.forces + 1;
  if (not v.tail_open) || Block_format.Builder.is_empty v.tail then Ok ()
  else
    match (st.State.config.Config.nvram_tail, st.State.nvram) with
    | true, Some nv ->
      (* Stage the partial tail in battery-backed RAM; it keeps filling and
         reaches the WORM medium only when full (section 2.3.1). The staged
         image must carry the forced flag like a burned force would: if it
         is replayed verbatim after a crash, recovery has to see that this
         block boundary was a durability point. *)
      let image = Block_format.Builder.finish ~forced:true v.tail in
      Worm.Nvram.store nv ~block:v.tail_index image;
      st.State.stats.Stats.nvram_syncs <- st.State.stats.Stats.nvram_syncs + 1;
      Ok ()
    | _ ->
      (* Pure write-once: burn the partial block, wasting its free space. *)
      flush_tail ~forced:true st v

let force st : (unit, Errors.t) result =
  Obs.time st.State.obs st.State.probes.State.h_force "force" (fun () -> force_inner st)

let log_catalog_op st op : (unit, Errors.t) result =
  let* () = Catalog.apply st.State.catalog op in
  let payload = Catalog.encode_op op in
  let header = Header.make ~timestamp:(State.fresh_ts st) Ids.catalog in
  as_entry st (fun () -> put_bytes st ~first:header ~continues_after:false payload)
