let ( let* ) = Errors.( let* )

let wrap ~seq payload =
  let b = Bytes.create (8 + String.length payload) in
  Wire.set_i64 b 0 seq;
  Bytes.blit_string payload 0 b 8 (String.length payload);
  Bytes.to_string b

let unwrap data =
  if String.length data < 8 then Error (Errors.Bad_record "entry too short for a sequence number")
  else begin
    let b = Bytes.of_string data in
    Ok (Wire.get_i64 b 0, String.sub data 8 (String.length data - 8))
  end

let find st ~log ~seq ~client_ts ~max_skew_us =
  let lo = Int64.sub client_ts max_skew_us in
  let hi = Int64.add client_ts max_skew_us in
  let* pos = Time_index.seek st lo in
  let cursor = Reader.at_position st ~log pos in
  let rec scan () =
    let* e = Reader.next cursor in
    match e with
    | None -> Ok None
    | Some e -> (
      let beyond =
        match e.Reader.timestamp with
        | Some t -> Int64.compare t hi > 0
        | None -> false
      in
      if beyond then Ok None
      else
        match unwrap e.Reader.payload with
        | Ok (s, _) when Int64.equal s seq -> Ok (Some e)
        | Ok _ | Error _ -> scan ())
  in
  scan ()
