(** Closed-form cost and overhead formulas from section 3.

    The benchmark harness prints these next to the measured values so the
    Figure 3 / Figure 4 / section 3.5 reproductions show theory and
    measurement side by side. *)

val levels_for_distance : fanout:int -> distance:int -> int
(** Smallest k with N^k ≥ d (k ≥ 1 for d ≥ 1). *)

val locate_examinations : fanout:int -> distance:int -> int
(** Worst-case entrymap log entries examined to locate an entry [distance]
    blocks away: 0 for distance 0, else 2k − 1 (climb k levels, descend
    k − 1) — the stair-step version of Figure 3's curves and exactly
    Table 1's second column at distances N^k. *)

val locate_examinations_avg : fanout:int -> distance:float -> float
(** Smooth version, 2·log_N d − 1, as plotted in Figure 3. *)

val recovery_examinations_avg : fanout:int -> written:float -> float
(** Average blocks examined to reconstruct entrymap information on reboot:
    (N·log_N b)/2 (Figure 4). *)

val recovery_examinations_worst : fanout:int -> written:float -> float
(** N·log_N b. *)

val frontier_probes : capacity:int -> int
(** log₂ V probes for the binary search of section 3.4 step 1. *)

val entrymap_entries_per_block : fanout:int -> float
(** e ≤ 1/(N−1): level-l entries appear every N^l blocks, summed over l. *)

val entrymap_entry_bytes : fanout:int -> files:int -> int
(** E = h_e + a·(N/8 + c): encoded size of an entrymap entry mentioning
    [files] log files. *)

val space_overhead_per_entry :
  fanout:int ->
  header_bytes:float ->
  files_per_map:float ->
  entry_block_ratio:float ->
  float
(** The section 3.5 bound on the per-entry overhead due to entrymap log
    entries: o_e ≤ c̄·(h_e + a·(N/8 + c'))/(N−1) bytes, with c̄ the fraction
    of a block one entry occupies and a the average number of log files per
    entrymap entry. For the paper's login log (c̄ = 1/15, a = 8, N = 16)
    this is < 0.16 bytes. *)
