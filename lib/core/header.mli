(** Log-entry record headers (section 2.2).

    The minimal header is 16 bits: a 4-bit version and the 12-bit local
    log-file id. The entry size is {e not} stored here — it lives in the
    per-block index at the end of each disk block (Figure 1). Versions:

    - [1] — entry start, no timestamp (the paper's minimal 4-byte header,
      2 bytes of which are the size held in the block index);
    - [2] — entry start followed by a 64-bit timestamp (the paper's "complete
      14-byte log entry header"); mandatory for the first entry of a block;
    - [3] — continuation fragment of an entry begun in an earlier block;
    - [4] — entry start with timestamp and a list of additional member
      log-file ids (section 2.1 allows "a log entry to be a member of more
      than one log file"). *)

type t = {
  version : int;
  logfile : Ids.logfile;  (** primary (most specific) log file *)
  timestamp : int64 option;
  extra_members : Ids.logfile list;  (** version-4 additional memberships *)
}

val make :
  ?timestamp:int64 -> ?extra_members:Ids.logfile list -> Ids.logfile -> t
(** Chooses the smallest version that can represent the fields. *)

val continuation : Ids.logfile -> t
(** A version-3 fragment header. *)

val is_start : t -> bool
val byte_size : t -> int
(** Encoded size: 2, 10, or 11 + 2·|extras|. *)

val encode : Wire.Enc.t -> t -> unit
val decode : bytes -> pos:int -> ((t * int), Errors.t) result
(** [decode block ~pos] returns the header and the offset just past it. *)

val members : t -> Ids.logfile list
(** Primary plus extras (no ancestor expansion — that is {!Catalog}'s job). *)

val pp : Format.formatter -> t -> unit
