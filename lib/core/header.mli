(** Log-entry record headers (section 2.2).

    The minimal header is 16 bits: a 4-bit version and the 12-bit local
    log-file id. The entry size is {e not} stored here — it lives in the
    per-block index at the end of each disk block (Figure 1). Versions:

    - [1] — entry start, no timestamp (the paper's minimal 4-byte header,
      2 bytes of which are the size held in the block index);
    - [2] — entry start followed by a 64-bit timestamp (the paper's "complete
      14-byte log entry header"); mandatory for the first entry of a block;
    - [3] — continuation fragment of an entry begun in an earlier block,
      tagged with a 16-bit rolling checksum of the entry's payload bytes
      that precede the fragment, so reassembly can reject a fragment of a
      {e different} entry when blocks between them were lost to invalidation
      (a scrubbed corrupt block, or recovery quarantining a torn write);
    - [4] — entry start with timestamp and a list of additional member
      log-file ids (section 2.1 allows "a log entry to be a member of more
      than one log file"). *)

type t = {
  version : int;
  logfile : Ids.logfile;  (** primary (most specific) log file *)
  timestamp : int64 option;
  extra_members : Ids.logfile list;  (** version-4 additional memberships *)
  chain : int;  (** version-3 fragment-chain checksum; 0 elsewhere *)
}

val make :
  ?timestamp:int64 -> ?extra_members:Ids.logfile list -> Ids.logfile -> t
(** Chooses the smallest version that can represent the fields. *)

val continuation : ?chain:int -> Ids.logfile -> t
(** A version-3 fragment header. [chain] is the checksum of every payload
    byte of the entry preceding this fragment (see {!chain_update}). *)

val chain_seed : int
(** Initial chain-checksum state (an entry with no bytes yet). *)

val chain_update : int -> string -> int
(** [chain_update c s] folds [s] into checksum state [c]. The state is the
    16-bit checksum itself, so a stored [chain] tag resumes the
    computation — splitting a carried fragment re-derives correct tags. *)

val is_start : t -> bool
val byte_size : t -> int
(** Encoded size: 2 (v1), 4 (v3), 10 (v2), or 11 + 2·|extras| (v4). *)

val encode : Wire.Enc.t -> t -> unit
val decode : bytes -> pos:int -> ((t * int), Errors.t) result
(** [decode block ~pos] returns the header and the offset just past it. *)

val members : t -> Ids.logfile list
(** Primary plus extras (no ancestor expansion — that is {!Catalog}'s job). *)

val pp : Format.formatter -> t -> unit
