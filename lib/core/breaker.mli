(** Error-budget circuit breaker guarding the server's write paths.

    The paper's media-failure handling (section 2.3.2) invalidates a bad
    block and retries — the right move for the occasional damaged spot on
    otherwise-healthy media. A device that keeps failing is different:
    every retry burns another block of write-once space, and an
    unfixable block (one that rejects even its invalidation write) pins
    the frontier forever. The breaker bounds that damage: each device
    error surfacing from the write path spends one unit of error budget;
    when [threshold] units are spent the breaker {e trips} and the server
    enters degraded (read-only) mode — writes answer [Errors.Degraded]
    while reads, locate, and timestamp search keep working. An operator
    inspects and resets it via [clio admin breaker] (or {!reset} through
    the server API), typically after swapping the device or salvaging to
    fresh media.

    All transitions are mirrored into the server's metrics registry:
    [breaker_device_errors], [breaker_trips], [breaker_writes_rejected]
    counters and the [breaker_open] gauge. *)

type state = Closed | Open

type t

val create : metrics:Obs.Metrics.t -> threshold:int -> unit -> t
(** [threshold] device errors trip the breaker; [threshold <= 0] disables
    tripping (errors are still counted). *)

val state : t -> state
val is_open : t -> bool
val enabled : t -> bool

val record_error : t -> unit
(** Spend one unit of error budget; trips the breaker when spent units
    reach the threshold. *)

val record_rejected : t -> unit
(** Count one write refused while open. *)

val trip : t -> unit
(** Force the breaker open (operator/test hook). Idempotent. *)

val reset : t -> unit
(** Close the breaker and restore the full error budget. *)

val errors : t -> int
(** Budget units spent since the last {!reset}. *)

val total_errors : t -> int
(** Device errors observed over the server's lifetime. *)

val trips : t -> int
val rejected : t -> int
val threshold : t -> int

val state_name : t -> string
(** ["closed"] or ["open"]. *)

val to_json : t -> Obs.Json.t
val pp : Format.formatter -> t -> unit
