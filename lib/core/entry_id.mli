(** Unique identification of asynchronously written entries (section 2.1).

    A client that does not wait for the write cannot learn the server
    timestamp. The paper's scheme: the client embeds (1) its own sequence
    number in the entry and (2) remembers its own clock reading; the
    timestamp later locates the entry's neighbourhood, the sequence number
    pins it exactly. "Its correctness depends on the sequence number not
    wrapping around within the maximum possible time skew between the client
    and the server."

    This module provides the client-side payload convention and the search. *)

val wrap : seq:int64 -> string -> string
(** Prefix [payload] with the client sequence number. *)

val unwrap : string -> (int64 * string, Errors.t) result
(** Recover (seq, original payload) from a wrapped entry. *)

val find :
  State.t ->
  log:Ids.logfile ->
  seq:int64 ->
  client_ts:int64 ->
  max_skew_us:int64 ->
  (Reader.entry option, Errors.t) result
(** Locate the entry with sequence number [seq] written around [client_ts]:
    a time search to [client_ts - max_skew_us], then a bounded forward scan
    while server timestamps remain ≤ [client_ts + max_skew_us]. *)
