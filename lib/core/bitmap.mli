(** Fixed-width bitmaps — the payload of entrymap log entries.

    An entrymap entry holds one [N]-bit bitmap per active log file
    (section 2.1); bit [j] says whether sub-group [j] of the covered block
    range contains entries of that file. *)

type t

val create : int -> t
(** [create n] is an all-zero bitmap of [n] bits. *)

val width : t -> int
val set : t -> int -> unit
val get : t -> int -> bool
val is_empty : t -> bool
val copy : t -> t
val union : t -> t -> unit
(** [union dst src] ors [src] into [dst]; widths must match. *)

val full : int -> t
(** [full n] has every bit set — used as the conservative stand-in when an
    entrymap entry is missing (section 2.3.2: "assume no such entrymap entry
    is present, at the cost of some additional searching"). *)

val highest_set_below : t -> int -> int option
(** [highest_set_below t j] is the largest set index strictly less than [j]. *)

val lowest_set_from : t -> int -> int option
(** [lowest_set_from t j] is the smallest set index ≥ [j]. *)

val byte_length : t -> int
val to_string : t -> string
(** Raw bytes, ceil(n/8) long, for on-medium encoding. *)

val of_string : width:int -> string -> (t, Errors.t) result
val pp : Format.formatter -> t -> unit
(** Renders as e.g. "0010010000010001" (Figure 2 style). *)
