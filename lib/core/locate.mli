(** Locating the blocks that hold a log file's entries (section 2.1).

    The entrymap log entries form a degree-N search tree (Figure 2); walking
    it finds the nearest block before/after a given position that contains
    entries of a given log file in ~(N−1)·log_N d bitmap examinations, the
    cost curve of Figure 3.

    Sources of bitmap information, in order:
    - the in-memory pending maps for each level's currently accumulating
      range (the recent region, usually cache-resident);
    - entrymap entries read from their well-known blocks, with a small
      forward slack scan for entries displaced by invalidated blocks or
      in-flight appends (section 2.3.2);
    - when an entry is missing entirely, the conservative fallback: treat
      the bitmap as all-ones and search the level below, degenerating to a
      raw block scan at level 1 — "at the cost of some additional searching
      of the lower levels of the entrymap search tree". *)

val read_map :
  State.t -> Vol.t -> level:int -> boundary:int -> (Entrymap.entry option, Errors.t) result
(** The entrymap entry due at block [boundary] (covering
    [\[boundary − N^level, boundary)]), scanning up to [entrymap_slack]
    blocks forward for a displaced copy. [Ok None] when absent. *)

val block_contains : State.t -> Vol.t -> log:Ids.logfile -> int -> bool
(** Ground truth: does block [idx] hold any record belonging to [log]
    (sublog membership included)? Reads the block. *)

val prev_block :
  State.t -> Vol.t -> log:Ids.logfile -> before:int -> (int option, Errors.t) result
(** Greatest data block index strictly below [before] containing entries of
    [log] on this volume, including the open tail block. *)

val next_block :
  State.t -> Vol.t -> log:Ids.logfile -> from:int -> (int option, Errors.t) result
(** Smallest data block index ≥ [from] containing entries of [log]. *)
