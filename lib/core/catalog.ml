type descriptor = {
  id : Ids.logfile;
  parent : Ids.logfile;
  name : string;
  perms : int;
  created : int64;
}

type t = {
  table : (Ids.logfile, descriptor) Hashtbl.t;
  by_name : (Ids.logfile * string, Ids.logfile) Hashtbl.t;
  mutable next_id : Ids.logfile;
}

let ( let* ) = Errors.( let* )

let root_descriptor =
  { id = Ids.root; parent = Ids.root; name = "/"; perms = 0o555; created = 0L }

let internal_descriptors =
  [
    { id = Ids.entrymap; parent = Ids.root; name = ".entrymap"; perms = 0o400; created = 0L };
    { id = Ids.catalog; parent = Ids.root; name = ".catalog"; perms = 0o400; created = 0L };
    { id = Ids.badblocks; parent = Ids.root; name = ".badblocks"; perms = 0o400; created = 0L };
  ]

let insert t d =
  Hashtbl.replace t.table d.id d;
  if d.id <> Ids.root then Hashtbl.replace t.by_name (d.parent, d.name) d.id

let create () =
  let t = { table = Hashtbl.create 64; by_name = Hashtbl.create 64; next_id = Ids.first_client } in
  insert t root_descriptor;
  List.iter (insert t) internal_descriptors;
  t

let find t id = Hashtbl.find_opt t.table id
let exists t id = Hashtbl.mem t.table id

let children t id =
  Hashtbl.fold
    (fun _ d acc -> if d.parent = id && d.id <> Ids.root then d :: acc else acc)
    t.table []
  |> List.sort (fun a b -> compare a.id b.id)

let lookup_child t parent name =
  match Hashtbl.find_opt t.by_name (parent, name) with
  | None -> None
  | Some id -> find t id

let split_path path = String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let resolve_path t path =
  if path = "" then Error (Errors.Invalid_name path)
  else
    let rec walk cur = function
      | [] -> (
        match find t cur with
        | Some d -> Ok d
        | None -> Error (Errors.No_such_log path))
      | comp :: rest -> (
        match lookup_child t cur comp with
        | Some d -> walk d.id rest
        | None -> Error (Errors.No_such_log path))
    in
    walk Ids.root (split_path path)

let path_of t id =
  let rec go id acc =
    if id = Ids.root then acc
    else
      match find t id with
      | None -> "?" :: acc
      | Some d -> go d.parent (d.name :: acc)
  in
  match go id [] with [] -> "/" | comps -> "/" ^ String.concat "/" comps

let ancestors t id =
  let rec go id acc =
    if id = Ids.root then List.rev acc
    else
      match find t id with
      | None -> List.rev acc
      | Some d ->
        if d.parent = Ids.root then List.rev acc
        else go d.parent (d.parent :: acc)
  in
  go id []

let is_ancestor_or_self t ~anc id =
  let rec go id steps =
    if steps > 64 then false
    else if id = anc then true
    else if id = Ids.root then false
    else match find t id with None -> false | Some d -> go d.parent (steps + 1)
  in
  go id 0

let is_member t ~log header =
  log = Ids.root
  || List.exists (fun m -> is_ancestor_or_self t ~anc:log m) (Header.members header)

let live_descriptors t =
  Hashtbl.fold
    (fun _ d acc ->
      if d.id = Ids.root || Ids.is_internal d.id then acc else d :: acc)
    t.table []
  |> List.sort (fun a b -> compare a.id b.id)

let next_free_id t =
  let rec scan id =
    if id > Ids.max_logfile then Error Errors.Catalog_full
    else if exists t id then scan (id + 1)
    else Ok id
  in
  scan t.next_id

type op =
  | Create of descriptor
  | Set_perms of { id : Ids.logfile; perms : int; at : int64 }

let validate_name name =
  let len = String.length name in
  if len = 0 || len > 255 then Error (Errors.Invalid_name name)
  else if name = "." || name = ".." then Error (Errors.Invalid_name name)
  else if String.contains name '/' then Error (Errors.Invalid_name name)
  else Ok name

let same_descriptor a b =
  a.id = b.id && a.parent = b.parent && a.name = b.name && a.created = b.created

let apply t op =
  match op with
  | Create d -> (
    let* _ = validate_name d.name in
    if not (Ids.valid d.id) || Ids.is_reserved d.id then
      Error (Errors.Bad_record "reserved or invalid log file id")
    else
      match find t d.id with
      | Some existing when same_descriptor existing d -> Ok () (* snapshot replay *)
      | Some _ -> Error (Errors.Log_exists d.name)
      | None ->
        if not (exists t d.parent) then Error (Errors.No_such_log (path_of t d.parent))
        else if lookup_child t d.parent d.name <> None then Error (Errors.Log_exists d.name)
        else begin
          insert t d;
          if d.id >= t.next_id then t.next_id <- d.id + 1;
          Ok ()
        end)
  | Set_perms { id; perms; at = _ } -> (
    match find t id with
    | None -> Error (Errors.No_such_log (string_of_int id))
    | Some d ->
      insert t { d with perms };
      Ok ())

let encode_op op =
  let enc = Wire.Enc.create () in
  (match op with
  | Create d ->
    Wire.Enc.u8 enc 1;
    Wire.Enc.u16 enc d.id;
    Wire.Enc.u16 enc d.parent;
    Wire.Enc.u16 enc d.perms;
    Wire.Enc.i64 enc d.created;
    Wire.Enc.u8 enc (String.length d.name);
    Wire.Enc.bytes enc d.name
  | Set_perms { id; perms; at } ->
    Wire.Enc.u8 enc 2;
    Wire.Enc.u16 enc id;
    Wire.Enc.u16 enc perms;
    Wire.Enc.i64 enc at);
  Wire.Enc.contents enc

let decode_op payload =
  let dec = Wire.Dec.of_string payload in
  let* kind = Wire.Dec.u8 dec in
  match kind with
  | 1 ->
    let* id = Wire.Dec.u16 dec in
    let* parent = Wire.Dec.u16 dec in
    let* perms = Wire.Dec.u16 dec in
    let* created = Wire.Dec.i64 dec in
    let* name_len = Wire.Dec.u8 dec in
    let* name = Wire.Dec.bytes dec name_len in
    Ok (Create { id; parent; name; perms; created })
  | 2 ->
    let* id = Wire.Dec.u16 dec in
    let* perms = Wire.Dec.u16 dec in
    let* at = Wire.Dec.i64 dec in
    Ok (Set_perms { id; perms; at })
  | k -> Error (Errors.Bad_record (Printf.sprintf "unknown catalog op %d" k))

let replay t payload =
  let* op = decode_op payload in
  apply t op
