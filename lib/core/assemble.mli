(** Reassembly of fragmented entries.

    An entry that overflows its block continues as version-3 records in later
    blocks (possibly on the next volume). Fragments of one log file never
    interleave — the writer defers entrymap emission to guarantee it — so the
    continuation of a record is the {e next} version-3 record carrying the
    same log-file id. *)

type position = { vol : int; block : int; rec_index : int }

val compare_position : position -> position -> int

val pp_position : Format.formatter -> position -> unit

val entry_at :
  State.t -> position -> (Header.t * string * position, Errors.t) result
(** [entry_at st pos] reads the full entry whose {e start} record is at
    [pos]: returns its header, the concatenated payload, and the position of
    its last fragment. Errors:
    - [Bad_record] if [pos] does not name a start record;
    - [Corrupt_block] if a fragment's block was lost to corruption;
    - [No_entry] if the final fragments were never written (crash while the
      entry was in flight) — callers treat the entry as nonexistent. *)

val start_of :
  State.t -> position -> (position, Errors.t) result
(** [start_of st pos] walks a continuation record at [pos] back to the start
    record of its entry (identity on start records). *)
