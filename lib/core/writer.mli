(** The append path.

    Responsibilities (sections 2.1–2.3):
    - pack entry records into the in-memory tail block, fragmenting entries
      that overflow a block (continuation records);
    - guarantee the first record of every block carries a timestamp;
    - emit entrymap log entries when a block opens at an N^l boundary;
    - flush full blocks to the device, skipping and logging bad blocks
      (invalidate + bad-block log, section 2.3.2);
    - seal a full volume and continue seamlessly on a freshly allocated
      successor, re-logging a catalog snapshot so the new volume is
      self-describing (section 2.1, volume sequences);
    - implement forced writes two ways: burn a padded partial block on pure
      WORM, or stage the tail in battery-backed RAM (section 2.3.1). *)

val init_sequence : State.t -> (unit, Errors.t) result
(** Allocates volume 0, writes its header and the (empty) catalog snapshot.
    The state must have no volumes attached. *)

val append_entry : State.t -> header:Header.t -> string -> (unit, Errors.t) result
(** Appends one logical entry to the active volume, fragmenting as needed.
    The header's timestamp (if any) must come from {!State.fresh_ts}. *)

val append_batch :
  State.t ->
  (Ids.logfile * Ids.logfile list * string) list ->
  (int64 option list, Errors.t) result
(** [append_batch st [(log, extra_members, payload); ...]] stages every
    entry of the batch, in arrival order, into the shared tail block under
    one observability span, stamping each entry as it is staged (so the
    on-media bytes match the same entries appended one by one). Returns the
    assigned timestamps. Group commit: the caller forces at most once, after
    the whole batch. Stops at the first staging error; entries staged before
    the failure remain staged. *)

val force : State.t -> (unit, Errors.t) result
(** Make everything appended so far durable: NVRAM staging when configured,
    otherwise a padded synchronous block write. *)

val flush_tail : ?forced:bool -> State.t -> Vol.t -> (unit, Errors.t) result
(** Push the open tail block to the device (used by [force] and internally
    when a block fills). No-op on an empty tail. *)

val log_catalog_op : State.t -> Catalog.op -> (unit, Errors.t) result
(** Apply a catalog change to the in-memory table and record it in the
    catalog log file ("any change to these attributes is also logged",
    section 2.2). *)

val replay_carry : State.t -> Block_format.record array -> (unit, Errors.t) result
(** Re-append previously parsed records verbatim (same headers, same
    continuation structure) — used when recovery restores the tail from
    NVRAM and when a volume roll carries unflushed records forward. *)
