(** Reading log files: bidirectional entry cursors.

    Per section 2, a log file opened for reading gives access to its entries
    "either subsequent to, or prior to, any previous point in time" — so
    cursors iterate both ways. Jumps between a log file's blocks go through
    the entrymap search tree ({!Locate}); scans within a block use the
    Figure-1 index. Entries in corrupted blocks are skipped (their data is
    lost, section 2.3.2); an entry left incomplete by a crash is never
    yielded. *)

type entry = {
  log : Ids.logfile;  (** primary log file *)
  members : Ids.logfile list;  (** declared memberships (primary + extras) *)
  timestamp : int64 option;
  payload : string;
  pos : Assemble.position;  (** start record of the entry *)
}

type cursor

val log_of : cursor -> Ids.logfile

val at_start : State.t -> log:Ids.logfile -> cursor
(** Positioned before the first entry of the volume sequence. *)

val at_end : State.t -> log:Ids.logfile -> (cursor, Errors.t) result
(** Positioned after the last entry (including the open tail block). *)

val at_position : State.t -> log:Ids.logfile -> Assemble.position -> cursor
(** Positioned just before [pos]: [next] yields the first matching entry
    starting at or after it, [prev] the last one starting strictly before. *)

val next : cursor -> (entry option, Errors.t) result
val prev : cursor -> (entry option, Errors.t) result
