(** Volume-sequence verifier ("fsck" for log files).

    Walks every block of every mounted volume, classifying it, checking the
    structural invariants the rest of the system relies on, and
    cross-checking the entrymap search tree against ground truth. Used by
    the CLI's [fsck] command and by tests as a deep post-condition.

    Checks performed:
    - block 0 of each volume decodes as a volume header with the right
      index and chain links;
    - every other written block classifies as valid log data or cleanly
      invalidated — corrupt blocks are reported, not fatal;
    - the first record of every valid block carries a timestamp;
    - first-block timestamps are nondecreasing in device order;
    - every entry reassembles (fragment chains resolve), except a possible
      truncated in-flight entry at the very end;
    - every log-file id appearing in a record exists in the catalog;
    - for each log file, the entrymap-driven locate agrees with an
      exhaustive scan at every block position (optional: expensive). *)

type report = {
  volumes : int;
  blocks_scanned : int;
  valid_blocks : int;
  invalidated_blocks : int;
  corrupt_blocks : (int * int) list;  (** (volume, block) *)
  entries : int;
  truncated_entries : int;  (** dangling in-flight entries (crash residue) *)
  errors : string list;  (** invariant violations — empty on a healthy store *)
}

val pp_report : Format.formatter -> report -> unit

val check : ?verify_entrymap:bool -> State.t -> (report, Errors.t) result
(** [check st] never fails on media damage (that lands in the report);
    [Error] only for internal problems. [verify_entrymap] (default false)
    adds the O(blocks · logfiles) locate-vs-scan cross-check. *)

val is_healthy : report -> bool
(** No corrupt blocks and no invariant violations. *)
