type t = { mutable blocks : int list (* newest first *) }

let create () = { blocks = [] }
let add_version t ~block = t.blocks <- block :: t.blocks
let versions t = List.length t.blocks

let back_cost t ~steps =
  assert (steps >= 0 && steps < max 1 (versions t));
  (* One read per hop: each version's block must be read to find the next
     back-pointer. *)
  steps

let forward_cost t ~from_version ~device_blocks =
  let n = versions t in
  assert (from_version >= 0 && from_version < n);
  (* Position of that version on the device; everything after it must be
     scanned. *)
  let blocks = List.rev t.blocks in
  let pos = List.nth blocks from_version in
  max 0 (device_blocks - pos)
