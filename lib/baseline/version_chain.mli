(** Swallow-style version chains (section 5.1).

    "In Swallow, each object version is linked to the previously written
    version of the same object. This link is the only location information
    that is written to permanent storage. ... It is impossible to scan
    forwards through an object history without reading every subsequent
    block on the storage device."

    The model: versions at known block positions, each holding only a
    back-pointer. Backward access to the k-th previous version costs k
    block reads; forward scanning from an old version costs a read of every
    later block on the device. *)

type t

val create : unit -> t
val add_version : t -> block:int -> unit
(** Record that a new version of the object was written at [block]. *)

val versions : t -> int

val back_cost : t -> steps:int -> int
(** Block reads to walk [steps] versions back from the newest. *)

val forward_cost : t -> from_version:int -> device_blocks:int -> int
(** Block reads to find all versions after [from_version] without forward
    pointers: every device block from that version's position to the
    frontier must be examined. *)
