(** Binary-tree locate structure, after Daniels et al. (section 5.1).

    The distributed-logging design of Daniels, Spector and Thompson tags
    entries with sequence numbers and locates them through "a binary tree
    structure". The paper's comparison: "the performance of this scheme is
    within a constant factor of ours (both schemes have logarithmic
    performance) ... but our scheme requires significantly fewer disk read
    operations, on average, to locate very distant log entries."

    The model: every entry of a log file carries back-pointers to the
    entries 1, 2, 4, 8, … positions earlier (a binary skip structure, the
    append-only realization of their tree). Pointers live with the entries,
    so following a pointer reads the {e block} holding the target entry —
    distinct blocks almost every hop, which is exactly why it loses to the
    entrymap's shared upper levels. *)

type t

val create : block_entries:int -> t
(** [block_entries] = how many entries share one device block (packing
    density), used to translate entry hops into distinct block reads. *)

val append : t -> unit
(** Record one more entry in the chain. *)

val length : t -> int

val locate_back : t -> distance:int -> int * int
(** [(pointer hops, distinct blocks read)] to reach the entry [distance]
    positions back from the newest, greedy largest-first skips. *)
