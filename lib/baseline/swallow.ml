type oid = int

type t = {
  dev : Worm.Block_io.t;
  index : (oid, int * int) Hashtbl.t;  (* oid -> (newest version block, count) *)
}

let header_bytes = 16
let magic = 0x51A1

let ( let* ) = Clio.Errors.( let* )

let create dev = { dev; index = Hashtbl.create 32 }

let encode_version t ~oid ~prev data =
  let bs = t.dev.Worm.Block_io.block_size in
  let b = Bytes.make bs '\000' in
  Clio.Wire.set_u16 b 0 magic;
  Clio.Wire.set_u16 b 2 (String.length data);
  Clio.Wire.set_u32 b 4 oid;
  (* prev = block of the previous version + 1; 0 means none. *)
  Clio.Wire.set_u32 b 8 (prev + 1);
  Bytes.blit_string data 0 b header_bytes (String.length data);
  b

let decode_version t block =
  let bs = t.dev.Worm.Block_io.block_size in
  if Bytes.length block < header_bytes then None
  else if Clio.Wire.get_u16 block 0 <> magic then None
  else begin
    let len = Clio.Wire.get_u16 block 2 in
    if len > bs - header_bytes then None
    else
      Some
        ( Clio.Wire.get_u32 block 4,
          Clio.Wire.get_u32 block 8 - 1,
          Bytes.sub_string block header_bytes len )
  end

let write_version t oid data =
  let bs = t.dev.Worm.Block_io.block_size in
  if String.length data > bs - header_bytes then
    Error (Clio.Errors.Entry_too_large (String.length data))
  else begin
    let prev, count = match Hashtbl.find_opt t.index oid with Some v -> v | None -> (-1, 0) in
    let* blk = Clio.Errors.of_dev (t.dev.Worm.Block_io.append (encode_version t ~oid ~prev data)) in
    Hashtbl.replace t.index oid (blk, count + 1);
    Ok blk
  end

let read_block t blk =
  let* b = Clio.Errors.of_dev (t.dev.Worm.Block_io.read blk) in
  match decode_version t b with
  | Some v -> Ok v
  | None -> Error (Clio.Errors.Corrupt_block blk)

let read_current t oid =
  match Hashtbl.find_opt t.index oid with
  | None -> Error Clio.Errors.No_entry
  | Some (blk, _) ->
    let* _, _, data = read_block t blk in
    Ok data

let read_back t oid ~steps =
  match Hashtbl.find_opt t.index oid with
  | None -> Error Clio.Errors.No_entry
  | Some (blk, _) ->
    let rec walk blk remaining reads =
      let* _, prev, data = read_block t blk in
      if remaining = 0 then Ok (data, reads + 1)
      else if prev < 0 then Error Clio.Errors.No_entry
      else walk prev (remaining - 1) (reads + 1)
    in
    walk blk steps 0

let frontier t =
  match t.dev.Worm.Block_io.frontier () with Some f -> f | None -> t.dev.Worm.Block_io.capacity

(* "It is impossible to scan forwards through an object history without
   reading every subsequent block on the storage device." *)
let history_forward t oid ~from_block =
  let stop = frontier t in
  let rec scan blk acc reads =
    if blk >= stop then Ok (List.rev acc, reads)
    else
      match t.dev.Worm.Block_io.read blk with
      | Error _ -> scan (blk + 1) acc (reads + 1)
      | Ok b -> (
        match decode_version t b with
        | Some (o, _, _) when o = oid -> scan (blk + 1) (blk :: acc) (reads + 1)
        | Some _ | None -> scan (blk + 1) acc (reads + 1))
  in
  scan (max 0 from_block) [] 0

let versions t oid =
  match Hashtbl.find_opt t.index oid with Some (_, n) -> n | None -> 0

let rebuild_index t =
  Hashtbl.reset t.index;
  let stop = frontier t in
  let counts = Hashtbl.create 32 in
  for blk = 0 to stop - 1 do
    match t.dev.Worm.Block_io.read blk with
    | Error _ -> ()
    | Ok b -> (
      match decode_version t b with
      | Some (oid, _, _) ->
        let n = match Hashtbl.find_opt counts oid with Some n -> n | None -> 0 in
        Hashtbl.replace counts oid (n + 1);
        Hashtbl.replace t.index oid (blk, n + 1)
      | None -> ())
  done;
  Ok stop
