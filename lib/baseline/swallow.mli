(** A working Swallow-style object repository (section 5.1), for measured —
    not just modeled — comparison.

    Svobodova's Swallow stores object {e versions} on write-once storage;
    "each object version is linked to the previously written version of the
    same object. This link is the only location information that is written
    to permanent storage." Consequences the paper calls out, all observable
    here:
    - reading the current version is cheap (a cached index points at it);
    - walking history {e backwards} costs one block read per version;
    - scanning {e forwards} through an object's history is impossible
      "without reading every subsequent block on the storage device";
    - after a crash, the in-memory index is rebuilt only by scanning the
      whole device (there is no entrymap equivalent).

    One version per device block, as the design's large-object assumption
    had it. *)

type t
type oid = int

val create : Worm.Block_io.t -> t
(** An empty repository on a WORM device. *)

val write_version : t -> oid -> string -> (int, Clio.Errors.t) result
(** Append a new version; returns its block. Data must fit one block (minus
    a 16-byte header). *)

val read_current : t -> oid -> (string, Clio.Errors.t) result
(** Via the volatile index: one block read. *)

val read_back : t -> oid -> steps:int -> (string * int, Clio.Errors.t) result
(** Walk [steps] back-pointers from the newest version; returns the data
    and the number of block reads performed. *)

val history_forward : t -> oid -> from_block:int -> (int list * int, Clio.Errors.t) result
(** All version blocks of [oid] at or after [from_block], oldest first —
    and the block reads it cost (every device block from [from_block] to
    the frontier, the design's weakness). *)

val versions : t -> oid -> int
val rebuild_index : t -> (int, Clio.Errors.t) result
(** Crash recovery: drop the index, rescan the device; returns blocks
    examined (all of them). *)
