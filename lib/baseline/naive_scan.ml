let contains st v ~log idx =
  match Clio.Vol.view_block v idx with
  | Clio.Vol.Records recs ->
    Array.exists
      (fun r ->
        Clio.Catalog.is_member st.Clio.State.catalog ~log r.Clio.Block_format.header)
      recs
  | Clio.Vol.Invalid | Clio.Vol.Corrupted | Clio.Vol.Missing -> false

let prev_block st v ~log ~before =
  let limit = min before (Clio.Vol.written_limit v) in
  let rec down idx examined =
    if idx < 1 then Ok (None, examined)
    else if contains st v ~log idx then Ok (Some idx, examined + 1)
    else down (idx - 1) (examined + 1)
  in
  down (limit - 1) 0

let next_block st v ~log ~from =
  let limit = Clio.Vol.written_limit v in
  let rec up idx examined =
    if idx >= limit then Ok (None, examined)
    else if contains st v ~log idx then Ok (Some idx, examined + 1)
    else up (idx + 1) (examined + 1)
  in
  up (max 1 from) 0
