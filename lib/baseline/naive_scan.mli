(** The no-index baseline (section 2.1).

    "In principle, a log server could locate the entries that are members of
    a particular log file by examining every entry in every block of the
    volume sequence. This, of course, would be prohibitively expensive,
    especially if a desired entry is far away."

    Operates on a real Clio volume, reading raw blocks with no entrymap
    help, and reports how many blocks it had to examine — the comparison
    column for the Figure 3 ablation. *)

val prev_block :
  Clio.State.t ->
  Clio.Vol.t ->
  log:Clio.Ids.logfile ->
  before:int ->
  (int option * int, Clio.Errors.t) result
(** [(found block, blocks examined)]. *)

val next_block :
  Clio.State.t ->
  Clio.Vol.t ->
  log:Clio.Ids.logfile ->
  from:int ->
  (int option * int, Clio.Errors.t) result
