type t = { block_entries : int; mutable n : int }

let create ~block_entries =
  assert (block_entries > 0);
  { block_entries; n = 0 }

let append t = t.n <- t.n + 1
let length t = t.n

let locate_back t ~distance =
  assert (distance >= 0 && distance < max 1 t.n);
  (* Greedy binary descent: from the newest entry, repeatedly take the
     largest power-of-two skip that does not overshoot. Each hop lands on an
     entry whose block must be read to follow its pointers. *)
  let rec go remaining hops blocks last_block =
    if remaining = 0 then (hops, blocks)
    else begin
      let rec largest p = if p * 2 <= remaining then largest (p * 2) else p in
      let skip = largest 1 in
      let pos = t.n - 1 - (distance - remaining) - skip in
      let blk = pos / t.block_entries in
      let blocks = if blk = last_block then blocks else blocks + 1 in
      go (remaining - skip) (hops + 1) blocks blk
    end
  in
  go distance 0 0 ((t.n - 1) / t.block_entries)
