(* Geometry: block 0 = superblock, blocks 1..inode_blocks = inode table,
   data blocks after that. An inode is 64 bytes: u64 size, 12 direct u32
   pointers, single- and double-indirect u32 pointers. The directory
   (name -> inode) is kept in memory; the benchmarks only measure the data
   path, which is fully on-device. *)

let ndirect = 12
let inode_bytes = 64
let inode_table_blocks = 64

type file = int (* inode number *)

type t = {
  dev : Rw_device.t;
  dir : (string, int) Hashtbl.t;
  mutable next_inode : int;
  mutable next_block : int;
  churn : int;  (* extra blocks skipped per allocation: other files' activity *)
  mutable churn_phase : int;
}

let ( let* ) = Clio.Errors.( let* )

let ptrs_per_block t = Rw_device.block_size t.dev / 4

let format ?(churn = 0) dev =
  let t =
    {
      dev;
      dir = Hashtbl.create 16;
      next_inode = 0;
      next_block = 1 + inode_table_blocks;
      churn;
      churn_phase = 0;
    }
  in
  Rw_device.write dev 0 (Bytes.make (Rw_device.block_size dev) '\000');
  t

let inodes_per_block t = Rw_device.block_size t.dev / inode_bytes

let inode_loc t ino =
  let per = inodes_per_block t in
  (1 + (ino / per), ino mod per * inode_bytes)

type inode = {
  mutable size : int;
  direct : int array;
  mutable single : int;
  mutable double : int;
}

let read_inode t ino =
  let blk, off = inode_loc t ino in
  let b = Rw_device.read t.dev blk in
  let size = Int64.to_int (Bytes.get_int64_le b off) in
  let direct = Array.init ndirect (fun i -> Int32.to_int (Bytes.get_int32_le b (off + 8 + (4 * i)))) in
  let single = Int32.to_int (Bytes.get_int32_le b (off + 8 + (4 * ndirect))) in
  let double = Int32.to_int (Bytes.get_int32_le b (off + 12 + (4 * ndirect))) in
  { size; direct; single; double }

let write_inode t ino inode =
  let blk, off = inode_loc t ino in
  let b = Rw_device.read t.dev blk in
  Bytes.set_int64_le b off (Int64.of_int inode.size);
  Array.iteri (fun i p -> Bytes.set_int32_le b (off + 8 + (4 * i)) (Int32.of_int p)) inode.direct;
  Bytes.set_int32_le b (off + 8 + (4 * ndirect)) (Int32.of_int inode.single);
  Bytes.set_int32_le b (off + 12 + (4 * ndirect)) (Int32.of_int inode.double);
  Rw_device.write t.dev blk b

let alloc_block t =
  let b = t.next_block in
  (* Simulate concurrent allocation by other files: skip churn blocks. *)
  t.churn_phase <- t.churn_phase + 1;
  let skip = if t.churn = 0 then 0 else 1 + (t.churn_phase mod t.churn) in
  t.next_block <- t.next_block + 1 + skip;
  if t.next_block >= Rw_device.capacity t.dev then failwith "indirect_fs: device full";
  b

let create_file t name =
  if Hashtbl.mem t.dir name then Error (Clio.Errors.Log_exists name)
  else begin
    let ino = t.next_inode in
    t.next_inode <- ino + 1;
    Hashtbl.replace t.dir name ino;
    write_inode t ino { size = 0; direct = Array.make ndirect 0; single = 0; double = 0 };
    Ok ino
  end

let open_file t name =
  match Hashtbl.find_opt t.dir name with
  | Some ino -> Ok ino
  | None -> Error (Clio.Errors.No_such_log name)

(* Allocate-or-fetch the pointer at [slot] of pointer block [pblk]. *)
let pointer_slot t ~alloc pblk slot =
  let ib = Rw_device.read t.dev pblk in
  let p = Int32.to_int (Bytes.get_int32_le ib (4 * slot)) in
  if p <> 0 || not alloc then p
  else begin
    let p = alloc_block t in
    Bytes.set_int32_le ib (4 * slot) (Int32.of_int p);
    Rw_device.write t.dev pblk ib;
    p
  end

let fresh_pointer_block t =
  let b = alloc_block t in
  Rw_device.write t.dev b (Bytes.make (Rw_device.block_size t.dev) '\000');
  b

(* Physical block holding file-block [k], allocating the path if [alloc].
   Returns 0 for a hole when not allocating. *)
let map_block t inode ~alloc k =
  let ppb = ptrs_per_block t in
  if k < ndirect then begin
    if inode.direct.(k) = 0 && alloc then inode.direct.(k) <- alloc_block t;
    Ok inode.direct.(k)
  end
  else if k < ndirect + ppb then begin
    if inode.single = 0 && alloc then inode.single <- fresh_pointer_block t;
    if inode.single = 0 then Ok 0
    else Ok (pointer_slot t ~alloc inode.single (k - ndirect))
  end
  else begin
    let k2 = k - ndirect - ppb in
    if k2 >= ppb * ppb then Error (Clio.Errors.Entry_too_large k)
    else begin
      if inode.double = 0 && alloc then inode.double <- fresh_pointer_block t;
      if inode.double = 0 then Ok 0
      else begin
        let l1 = Rw_device.read t.dev inode.double in
        let slot1 = k2 / ppb in
        let lblk = Int32.to_int (Bytes.get_int32_le l1 (4 * slot1)) in
        let lblk =
          if lblk <> 0 || not alloc then lblk
          else begin
            let b = fresh_pointer_block t in
            Bytes.set_int32_le l1 (4 * slot1) (Int32.of_int b);
            Rw_device.write t.dev inode.double l1;
            b
          end
        in
        if lblk = 0 then Ok 0 else Ok (pointer_slot t ~alloc lblk (k2 mod ppb))
      end
    end
  end

let append t ino data =
  let bs = Rw_device.block_size t.dev in
  let inode = read_inode t ino in
  let rec put off =
    if off >= String.length data then Ok ()
    else begin
      let k = inode.size / bs in
      let in_block = inode.size mod bs in
      let n = min (bs - in_block) (String.length data - off) in
      let* phys = map_block t inode ~alloc:true k in
      let b = if in_block = 0 then Bytes.make bs '\000' else Rw_device.read t.dev phys in
      Bytes.blit_string data off b in_block n;
      Rw_device.write t.dev phys b;
      inode.size <- inode.size + n;
      put (off + n)
    end
  in
  let* () = put 0 in
  write_inode t ino inode;
  Ok ()

let read_range t ino ~off ~len =
  let bs = Rw_device.block_size t.dev in
  let inode = read_inode t ino in
  if off + len > inode.size then Error (Clio.Errors.Bad_record "read past end of file")
  else begin
    let buf = Bytes.create len in
    let rec get pos =
      if pos >= len then Ok (Bytes.to_string buf)
      else begin
        let k = (off + pos) / bs in
        let in_block = (off + pos) mod bs in
        let n = min (bs - in_block) (len - pos) in
        let* phys = map_block t inode ~alloc:false k in
        let b = Rw_device.read t.dev phys in
        Bytes.blit b in_block buf pos n;
        get (pos + n)
      end
    in
    get 0
  end

let size t ino = (read_inode t ino).size

let blocks_of_file t ino =
  let bs = Rw_device.block_size t.dev in
  let inode = read_inode t ino in
  let nblocks = (inode.size + bs - 1) / bs in
  List.init nblocks (fun k ->
      match map_block t inode ~alloc:false k with Ok p -> p | Error _ -> 0)

let device t = t.dev
