(** In-memory rewriteable block device — the conventional magnetic-disk
    substrate the paper's introduction compares against. Counts reads and
    writes so the motivation benchmarks can report device operations per
    file-system append. *)

type t

val create : ?block_size:int -> ?capacity:int -> unit -> t
val block_size : t -> int
val capacity : t -> int
val read : t -> int -> bytes
(** Unwritten blocks read as zeroes. *)

val write : t -> int -> bytes -> unit
val reads : t -> int
val writes : t -> int
val reset_counters : t -> unit
