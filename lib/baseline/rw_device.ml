type t = {
  block_size : int;
  capacity : int;
  blocks : bytes option array;
  mutable reads : int;
  mutable writes : int;
}

let create ?(block_size = 1024) ?(capacity = 65536) () =
  { block_size; capacity; blocks = Array.make capacity None; reads = 0; writes = 0 }

let block_size t = t.block_size
let capacity t = t.capacity

let read t idx =
  t.reads <- t.reads + 1;
  match t.blocks.(idx) with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.block_size '\000'

let write t idx data =
  assert (Bytes.length data = t.block_size);
  t.writes <- t.writes + 1;
  t.blocks.(idx) <- Some (Bytes.copy data)

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0
