(** A Unix-style indirect-block file system on rewriteable storage.

    The baseline for the paper's motivating claim: "in indirect block file
    systems (such as Unix), blocks at the tail end of \[large, continually
    growing\] files become increasingly expensive to read and write", and the
    blocks end up scattered. Inodes hold a few direct pointers, then single
    and double indirect blocks; every append to a growing file rewrites the
    inode and any indirect blocks on its path.

    The benchmark counters ({!Rw_device.writes}) expose the per-append
    device-write amplification as the file grows. *)

type t
type file

val format : ?churn:int -> Rw_device.t -> t
(** Initialize an empty file system on a device. [churn] simulates block
    allocations by other activity: each allocation skips up to [churn]
    blocks, scattering a growing file exactly as the paper's introduction
    describes. *)

val create_file : t -> string -> (file, Clio.Errors.t) result
val open_file : t -> string -> (file, Clio.Errors.t) result

val append : t -> file -> string -> (unit, Clio.Errors.t) result
(** Append bytes at end-of-file (buffered within the final partial block,
    like the real thing: a small append still rewrites that block). *)

val read_range : t -> file -> off:int -> len:int -> (string, Clio.Errors.t) result
val size : t -> file -> int

val blocks_of_file : t -> file -> int list
(** Physical block numbers, in file order — used to measure scatter. *)

val device : t -> Rw_device.t
