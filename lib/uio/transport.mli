(** Request/response transports.

    The paper measures its writes through the V-System IPC: "0.5 ms-1 ms
    were taken up by the basic synchronous client-server IPC (write)
    operation. The corresponding time for an IPC operation between
    different workstations is 2.5 ms-3 ms." A transport carries one
    request's bytes to a handler and the response's bytes back, charging a
    modeled round-trip cost against a simulated clock, so benches can put
    the paper's IPC constants back into the totals — and so the v2 batching
    protocol's fewer-round-trips win is directly measurable.

    {b Fault injection.} {!lossy} wraps any transport in a deterministic
    chaos layer driven by a {!Sim.Rng.t}: requests and responses get
    dropped, duplicated, delayed past the patience window or cut by a
    connection reset, surfacing to the caller as {!Timeout} /
    {!Disconnected}. Equal seeds give equal fault schedules, so every chaos
    failure is replayable. *)

exception Timeout
(** The request or its response was lost (or arrived past the patience
    window). Whether the operation was applied is {e unknown} — exactly the
    ambiguity idempotency keys resolve. *)

exception Disconnected
(** Connection reset before the request was delivered. *)

type t

(** Accounting snapshot: round trips and bytes both ways since creation.
    An attempt that dies in flight still counts its round trip and request
    bytes; only [bytes_received] requires an actual response. *)
type counters = { round_trips : int; bytes_sent : int; bytes_received : int }

(** Faults injected so far by a {!lossy} transport. [dropped_responses]
    counts applied-but-ack-lost outcomes (including delays past the
    patience window); [delays] counts every delay fault, late or not. *)
type fault_counts = {
  mutable dropped_requests : int;
  mutable dropped_responses : int;
  mutable duplicates : int;
  mutable delays : int;
  mutable resets : int;
}

(** Per-call fault probabilities (independent draws, checked in the order
    reset, drop-request, then post-delivery duplicate / delay /
    drop-response), the client patience window [timeout_us], and the delay
    bound [max_delay_us] (a delay > [timeout_us] becomes a dropped
    response). *)
type lossy_config = {
  drop_request : float;
  drop_response : float;
  duplicate : float;
  delay : float;
  reset : float;
  timeout_us : int64;
  max_delay_us : int64;
}

val default_lossy : lossy_config
(** 5% drop each way, 5% duplicate, 5% delay (≤ 25 ms), 2% reset, 10 ms
    patience — harsh enough that a few hundred calls see every fault
    kind. *)

val local :
  ?latency_us:int64 -> clock:Sim.Clock.t -> (string -> string) -> t
(** In-process loopback to [handler], charging [latency_us] (default 0)
    per round trip. Use 500–1000 for the paper's same-machine IPC, and
    2500–3000 for its cross-workstation IPC. *)

val lossy :
  ?config:lossy_config -> ?metrics:Obs.Metrics.t -> rng:Sim.Rng.t -> t -> t
(** [lossy ~rng inner] is [inner] behind the chaos layer. A duplicate
    delivers the request to [inner] twice (both charged to [inner]'s
    counters); drops and late delays raise {!Timeout} after advancing the
    clock by the patience window, resets raise {!Disconnected} before
    delivery. With [metrics], each fault kind bumps a [lossy_*] counter. *)

val call : t -> string -> string
(** May raise {!Timeout} / {!Disconnected} on a {!lossy} transport. *)

val counters : t -> counters
val diff : after:counters -> before:counters -> counters
(** [diff ~after ~before] is the accounting delta between two snapshots —
    what a specific operation cost on the wire. *)

val latency_us : t -> int64
val clock : t -> Sim.Clock.t
(** The clock this transport charges — retry backoff advances it so waiting
    takes simulated time too. *)

val round_trips : t -> int
val bytes_sent : t -> int
val bytes_received : t -> int

val faults : t -> fault_counts option
(** [Some] on a {!lossy} transport, [None] otherwise. *)

val total_faults : t -> int
(** Sum over {!fault_counts}; [0] for non-lossy transports. *)
