(** Request/response transports.

    The paper measures its writes through the V-System IPC: "0.5 ms-1 ms
    were taken up by the basic synchronous client-server IPC (write)
    operation. The corresponding time for an IPC operation between
    different workstations is 2.5 ms-3 ms." A transport carries one
    request's bytes to a handler and the response's bytes back, charging a
    modeled round-trip cost against a simulated clock, so benches can put
    the paper's IPC constants back into the totals — and so the v2 batching
    protocol's fewer-round-trips win is directly measurable. *)

type t

(** Accounting snapshot: round trips and bytes both ways since creation. *)
type counters = { round_trips : int; bytes_sent : int; bytes_received : int }

val local :
  ?latency_us:int64 -> clock:Sim.Clock.t -> (string -> string) -> t
(** In-process loopback to [handler], charging [latency_us] (default 0)
    per round trip. Use 500–1000 for the paper's same-machine IPC, and
    2500–3000 for its cross-workstation IPC. *)

val call : t -> string -> string

val counters : t -> counters
val diff : after:counters -> before:counters -> counters
(** [diff ~after ~before] is the accounting delta between two snapshots —
    what a specific operation cost on the wire. *)

val latency_us : t -> int64
val round_trips : t -> int
val bytes_sent : t -> int
val bytes_received : t -> int
