(** Typed client stubs over a {!Transport.t} — the application's view of a
    remote log server, mirroring the {!Clio.Server} surface. Clients never
    see server internals; everything crosses the wire, with the transport
    charging the modeled IPC cost of section 3.2. *)

type t

val connect : Transport.t -> t

(** A remote cursor: closes explicitly (or leaks on the server, as in the
    paper's era). *)
type cursor

val create_log : ?perms:int -> t -> string -> (Clio.Ids.logfile, string) result
val ensure_log : ?perms:int -> t -> string -> (Clio.Ids.logfile, string) result
val resolve : t -> string -> (Clio.Ids.logfile, string) result
val path_of : t -> Clio.Ids.logfile -> (string, string) result
val list_logs : t -> string -> ((int * string * int) list, string) result
val set_perms : t -> log:Clio.Ids.logfile -> int -> (unit, string) result

val append :
  ?extra_members:Clio.Ids.logfile list ->
  ?force:bool ->
  t ->
  log:Clio.Ids.logfile ->
  string ->
  (int64 option, string) result

val force : t -> (unit, string) result

val open_cursor : t -> log:Clio.Ids.logfile -> Message.whence -> (cursor, string) result
val next : cursor -> (Message.entry option, string) result
val prev : cursor -> (Message.entry option, string) result
val close_cursor : cursor -> (unit, string) result

val entry_at_or_after :
  t -> log:Clio.Ids.logfile -> int64 -> (Message.entry option, string) result

val entry_before : t -> log:Clio.Ids.logfile -> int64 -> (Message.entry option, string) result

val fold_entries :
  t -> log:Clio.Ids.logfile -> init:'a -> ('a -> Message.entry -> 'a) -> ('a, string) result
(** Convenience forward fold (one RPC per entry — the V-era cost model). *)
