(** Typed client stubs over a {!Transport.t} — the application's view of a
    remote log server, mirroring the {!Clio.Server} surface. Clients never
    see server internals; everything crosses the wire, with the transport
    charging the modeled IPC cost of section 3.2.

    {!connect} negotiates the wire protocol (one [Hello] round trip) and
    then amortizes IPC with {!append_batch} (many entries, one request,
    group commit) and chunked cursor reads ({!next_chunk}/{!prev_chunk},
    which {!fold_entries} uses as read-ahead). Against a v1-only server —
    or with [~max_version:1] — every operation transparently falls back to
    one v1 round trip. All results carry typed {!Clio.Errors.t}; errors a
    v1 server sends as strings surface as [Errors.Remote].

    {b Fault tolerance (v3).} On a lossy transport, calls ride a retry loop
    with exponential backoff, jitter and a per-call deadline budget. On a
    v3 session every request except [Hello] travels inside a
    [Message.Keyed] idempotency envelope, so resending after a lost
    acknowledgement cannot apply an operation twice — the server's dedup
    window replays the original response, original timestamps included.
    Unkeyed requests are only retried when they are pure reads; a mutating
    request on a v1/v2 session that times out surfaces [Errors.Timeout]
    (applied-or-not genuinely unknown). *)

type t

(** When and how hard to retry a call that died in transit. [max_attempts]
    caps tries per call (1 = never retry); [deadline_us] is the per-call
    time budget on the transport's clock; backoff for attempt n is
    [min (base_backoff_us * 2^n) max_backoff_us], slept as half that plus
    uniform jitter up to the other half. *)
type retry_policy = {
  max_attempts : int;
  deadline_us : int64;
  base_backoff_us : int64;
  max_backoff_us : int64;
}

val default_retry : retry_policy
(** 10 attempts, 1 s deadline, 0.5 ms base backoff capped at 64 ms. *)

val no_retry : retry_policy
(** [max_attempts = 1]: every transport fault surfaces immediately. *)

(** Client-side resilience counters, live (same record the client
    mutates). *)
type stats = {
  mutable retries : int;  (** resends beyond each call's first attempt *)
  mutable timeouts : int;  (** attempts that ended in [Transport.Timeout] *)
  mutable disconnects : int;  (** attempts cut by [Transport.Disconnected] *)
  mutable deadline_exceeded : int;  (** calls abandoned on the deadline *)
}

val connect :
  ?max_version:int ->
  ?retry:retry_policy ->
  ?rng:Sim.Rng.t ->
  ?metrics:Obs.Metrics.t ->
  Transport.t ->
  t
(** Connect and negotiate. [max_version] (default {!Message.protocol_version})
    caps what the client offers; [~max_version:1] skips negotiation and
    forces the v1 one-round-trip-per-operation protocol. [retry] (default
    {!default_retry}) governs resends; [rng] drives backoff jitter and
    seeds the idempotency keys; with [metrics], the {!stats} events also
    bump [client_*] counters in that registry. *)

val version : t -> int
(** The negotiated protocol version (1, 2 or 3). *)

val stats : t -> stats

val redirect_hint : t -> string option
(** The primary's address from the most recent [Errors.Not_primary]
    refusal this client received (a replica rejecting a write names its
    primary). [None] until a write has been refused that way. *)

(** A remote cursor: server-side state reached by id, carrying the current
    continuation token for chunked reads. Close explicitly, or use
    {!with_cursor}; an unclosed cursor is eventually LRU-evicted by the
    server and its id answers [Errors.Cursor_expired]. *)
type cursor

val create_log : ?perms:int -> t -> string -> (Clio.Ids.logfile, Clio.Errors.t) result
val ensure_log : ?perms:int -> t -> string -> (Clio.Ids.logfile, Clio.Errors.t) result
val resolve : t -> string -> (Clio.Ids.logfile, Clio.Errors.t) result
val path_of : t -> Clio.Ids.logfile -> (string, Clio.Errors.t) result

val list_logs : t -> string -> (Message.dir_entry list, Clio.Errors.t) result
(** Children of a log file as {!Message.dir_entry} rows (id, full path,
    perms, sublog count). On a v1 session the legacy listing lacks counts:
    [entry_count] is 0 and the path is synthesized client-side. *)

val set_perms : t -> log:Clio.Ids.logfile -> int -> (unit, Clio.Errors.t) result

val append :
  ?extra_members:Clio.Ids.logfile list ->
  ?force:bool ->
  t ->
  log:Clio.Ids.logfile ->
  string ->
  (int64 option, Clio.Errors.t) result

val append_batch :
  ?force:bool -> t -> Message.batch_item list -> (int64 option list, Clio.Errors.t) result
(** Send many entries — possibly for different log files — in one request,
    applied in arrival order; [force] commits the whole batch with a single
    durability point at batch end (group commit: N appends share one block
    flush instead of N). Returns one timestamp per item, in order. Falls
    back to per-entry round trips (plus one final force) on a v1 session. *)

val force : t -> (unit, Clio.Errors.t) result

val open_cursor :
  t -> log:Clio.Ids.logfile -> Message.whence -> (cursor, Clio.Errors.t) result

val with_cursor :
  t ->
  log:Clio.Ids.logfile ->
  Message.whence ->
  (cursor -> ('a, Clio.Errors.t) result) ->
  ('a, Clio.Errors.t) result
(** Bracket: opens a cursor, runs the body, and guarantees [close_cursor] —
    on normal return, on [Error], and on exception. *)

val next : cursor -> (Message.entry option, Clio.Errors.t) result
val prev : cursor -> (Message.entry option, Clio.Errors.t) result
val close_cursor : cursor -> (unit, Clio.Errors.t) result

val default_chunk_entries : int
(** 128. *)

val default_chunk_bytes : int
(** 256 KiB. *)

val next_chunk :
  ?max_entries:int ->
  ?max_bytes:int ->
  cursor ->
  (Message.entry list * bool, Clio.Errors.t) result
(** One budgeted read: up to [max_entries] entries and roughly [max_bytes]
    payload bytes in a single round trip. The [bool] is end-of-log; until
    it is true, call again to continue (the continuation token advances
    inside the cursor). On a v1 session degrades to one entry per call. *)

val prev_chunk :
  ?max_entries:int ->
  ?max_bytes:int ->
  cursor ->
  (Message.entry list * bool, Clio.Errors.t) result

val entry_at_or_after :
  t -> log:Clio.Ids.logfile -> int64 -> (Message.entry option, Clio.Errors.t) result

val entry_before :
  t -> log:Clio.Ids.logfile -> int64 -> (Message.entry option, Clio.Errors.t) result

val fold_entries :
  ?chunk_entries:int ->
  ?chunk_bytes:int ->
  t ->
  log:Clio.Ids.logfile ->
  init:'a ->
  ('a -> Message.entry -> 'a) ->
  ('a, Clio.Errors.t) result
(** Forward fold streaming through chunked reads: ceil(n / chunk) round
    trips for n entries instead of the V-era one RPC per entry, with the
    cursor bracketed by {!with_cursor}. *)
