type whence = From_start | From_end | From_time of int64

(* Wire protocol versions. v1 is the original one-operation-per-round-trip
   protocol (request tags 1-14, response tags 1-8); v2 adds batched appends,
   chunked cursor reads, directory entries and typed errors (request tags
   15-19, response tags 9-13); v3 adds the [Keyed] idempotency envelope
   (request tag 20) and error codes 14-16 (Degraded/Timeout/Disconnected).
   A v3 server answers v1/v2 requests with the matching response shapes, so
   older clients interoperate unchanged.

   The replication messages (request tags 21-23, response tags 14-15, error
   codes 17-18) are a v3-era server-to-server extension: they are spoken
   between a shipper and a replica endpoint, not negotiated through Hello,
   so the client-facing protocol version stays 3. *)
let protocol_version = 3

type batch_item = {
  log : Clio.Ids.logfile;
  extra_members : Clio.Ids.logfile list;
  data : string;
}

type chunk = { cursor : int; seq : int; max_entries : int; max_bytes : int }

type dir_entry = {
  id : Clio.Ids.logfile;
  path : string;
  perms : int;
  entry_count : int;
}

type request =
  | Create_log of { path : string; perms : int }
  | Ensure_log of { path : string; perms : int }
  | Resolve of string
  | Path_of of Clio.Ids.logfile
  | List_logs of string
  | Set_perms of { log : Clio.Ids.logfile; perms : int }
  | Append of {
      log : Clio.Ids.logfile;
      extra_members : Clio.Ids.logfile list;
      force : bool;
      data : string;
    }
  | Force
  | Open_cursor of { log : Clio.Ids.logfile; whence : whence }
  | Next of int
  | Prev of int
  | Close_cursor of int
  | Entry_at_or_after of { log : Clio.Ids.logfile; ts : int64 }
  | Entry_before of { log : Clio.Ids.logfile; ts : int64 }
  (* ------------------------------- v2 ------------------------------- *)
  | Hello of { version : int }
  | Append_batch of { force : bool; items : batch_item list }
  | Next_chunk of chunk
  | Prev_chunk of chunk
  | List_dir of string
  (* ------------------------------- v3 ------------------------------- *)
  | Keyed of { key : int64; req : request }
      (* idempotency envelope: [key] is a client-generated id; the server
         keeps a bounded window of (key -> response) so a retried request
         after a lost ack replays the original answer. Never nested. *)
  (* --------------------- replication (server-to-server) --------------------- *)
  | Repl_frontier of { epoch : int }
      (* frontier exchange: the replica answers with its per-volume settled
         frontiers so the shipper knows what gap to stream *)
  | Repl_blocks of {
      epoch : int;
      seq_uid : int64;
      vol_index : int;
      first_block : int;
      blocks : string list;
    }
      (* a run of settled device blocks, verbatim bytes (invalidated blocks
         included), starting at [first_block] of volume [vol_index] *)
  | Repl_tail of {
      epoch : int;
      seq_uid : int64;
      vol_index : int;
      block : int;
      image : string;
    }
      (* the primary's volatile tail, explicitly marked as such: a forced
         block image destined for (unwritten) [block]. The replica stages it
         in NVRAM only when fully caught up; it never reaches the medium
         until the block actually settles *)

type entry = {
  log : Clio.Ids.logfile;
  timestamp : int64 option;
  payload : string;
}

type response =
  | R_unit
  | R_id of int
  | R_path of string
  | R_names of (int * string * int) list
  | R_timestamp of int64 option
  | R_entry of entry option
  | R_error of string
  (* ------------------------------- v2 ------------------------------- *)
  | R_version of int
  | R_timestamps of int64 option list
  | R_entries of { entries : entry list; seq : int; eof : bool }
  | R_error_t of Clio.Errors.t
  | R_dir of dir_entry list
  (* --------------------------- replication --------------------------- *)
  | R_repl_frontier of { epoch : int; seq_uid : int64; vols : (int * int) list }
      (* the replica's view: its current epoch, the volume sequence it
         holds (0 when it holds nothing yet) and one (vol_index, settled
         frontier) pair per volume *)
  | R_repl_ack of { epoch : int; vol_index : int; next_block : int }
      (* cumulative acknowledgement: every block of [vol_index] below
         [next_block] is settled on the replica. Doubles as a NACK — a
         shipment that left a gap is answered with the replica's unchanged
         frontier, telling the shipper where to restart *)

let is_v2_request = function
  | Hello _ | Append_batch _ | Next_chunk _ | Prev_chunk _ | List_dir _ | Keyed _
  | Repl_frontier _ | Repl_blocks _ | Repl_tail _ ->
    true
  | _ -> false

let is_v3_request = function
  | Keyed _ | Repl_frontier _ | Repl_blocks _ | Repl_tail _ -> true
  | _ -> false

let ( let* ) = Clio.Errors.( let* )

module E = Clio.Wire.Enc
module D = Clio.Wire.Dec

let put_string enc s =
  E.u32 enc (String.length s);
  E.bytes enc s

let get_string dec =
  let* n = D.u32 dec in
  D.bytes dec n

let put_ts_opt enc = function
  | None -> E.u8 enc 0
  | Some ts ->
    E.u8 enc 1;
    E.i64 enc ts

let get_ts_opt dec =
  let* tag = D.u8 dec in
  if tag = 0 then Ok None
  else
    let* ts = D.i64 dec in
    Ok (Some ts)

let rec get_list dec n get acc =
  if n = 0 then Ok (List.rev acc)
  else
    let* x = get dec in
    get_list dec (n - 1) get (x :: acc)

(* ------------------------------ errors ------------------------------ *)

(* Typed errors cross the wire with a fixed layout — code byte, subcode
   byte, one u32 integer argument, one length-prefixed detail string — so a
   decoder that does not know a code can still read the record and fall
   back to [Errors.Remote detail] (the string escape hatch). *)

let encode_error enc (e : Clio.Errors.t) =
  let put ?(sub = 0) ?(int_arg = 0) ?(detail = "") code =
    E.u8 enc code;
    E.u8 enc sub;
    E.u32 enc int_arg;
    put_string enc detail
  in
  match e with
  | Clio.Errors.Corrupt_block b -> put 1 ~int_arg:b
  | Clio.Errors.Bad_record s -> put 2 ~detail:s
  | Clio.Errors.No_such_log s -> put 3 ~detail:s
  | Clio.Errors.Log_exists s -> put 4 ~detail:s
  | Clio.Errors.Invalid_name s -> put 5 ~detail:s
  | Clio.Errors.Catalog_full -> put 6
  | Clio.Errors.Entry_too_large n -> put 7 ~int_arg:n
  | Clio.Errors.Volume_offline v -> put 8 ~int_arg:v
  | Clio.Errors.Sequence_full -> put 9
  | Clio.Errors.No_entry -> put 10
  | Clio.Errors.Cursor_expired -> put 11
  | Clio.Errors.Remote s -> put 12 ~detail:s
  | Clio.Errors.Degraded -> put 14
  | Clio.Errors.Timeout -> put 15
  | Clio.Errors.Disconnected -> put 16
  | Clio.Errors.Not_primary hint -> put 17 ~detail:hint
  | Clio.Errors.Stale_epoch e -> put 18 ~int_arg:e
  | Clio.Errors.Device d -> (
    match d with
    | Worm.Block_io.Out_of_space -> put 13 ~sub:1
    | Worm.Block_io.Write_once_violation -> put 13 ~sub:2
    | Worm.Block_io.Unwritten b -> put 13 ~sub:3 ~int_arg:b
    | Worm.Block_io.Bad_block b -> put 13 ~sub:4 ~int_arg:b
    | Worm.Block_io.Out_of_range b -> put 13 ~sub:5 ~int_arg:b
    | Worm.Block_io.Wrong_size n -> put 13 ~sub:6 ~int_arg:n
    | Worm.Block_io.Io_error s -> put 13 ~sub:7 ~detail:s)

let decode_error dec : (Clio.Errors.t, Clio.Errors.t) result =
  let* code = D.u8 dec in
  let* sub = D.u8 dec in
  let* int_arg = D.u32 dec in
  let* detail = get_string dec in
  let unknown () =
    Clio.Errors.Remote
      (if detail <> "" then detail
       else Printf.sprintf "unknown remote error code %d/%d" code sub)
  in
  Ok
    (match code with
    | 1 -> Clio.Errors.Corrupt_block int_arg
    | 2 -> Clio.Errors.Bad_record detail
    | 3 -> Clio.Errors.No_such_log detail
    | 4 -> Clio.Errors.Log_exists detail
    | 5 -> Clio.Errors.Invalid_name detail
    | 6 -> Clio.Errors.Catalog_full
    | 7 -> Clio.Errors.Entry_too_large int_arg
    | 8 -> Clio.Errors.Volume_offline int_arg
    | 9 -> Clio.Errors.Sequence_full
    | 10 -> Clio.Errors.No_entry
    | 11 -> Clio.Errors.Cursor_expired
    | 12 -> Clio.Errors.Remote detail
    | 14 -> Clio.Errors.Degraded
    | 15 -> Clio.Errors.Timeout
    | 16 -> Clio.Errors.Disconnected
    | 17 -> Clio.Errors.Not_primary detail
    | 18 -> Clio.Errors.Stale_epoch int_arg
    | 13 -> (
      match sub with
      | 1 -> Clio.Errors.Device Worm.Block_io.Out_of_space
      | 2 -> Clio.Errors.Device Worm.Block_io.Write_once_violation
      | 3 -> Clio.Errors.Device (Worm.Block_io.Unwritten int_arg)
      | 4 -> Clio.Errors.Device (Worm.Block_io.Bad_block int_arg)
      | 5 -> Clio.Errors.Device (Worm.Block_io.Out_of_range int_arg)
      | 6 -> Clio.Errors.Device (Worm.Block_io.Wrong_size int_arg)
      | 7 -> Clio.Errors.Device (Worm.Block_io.Io_error detail)
      | _ -> unknown ())
    | _ -> unknown ())

(* ----------------------------- requests ----------------------------- *)

let put_chunk enc { cursor; seq; max_entries; max_bytes } =
  E.u32 enc cursor;
  E.u32 enc seq;
  E.u16 enc max_entries;
  E.u32 enc max_bytes

let get_chunk dec =
  let* cursor = D.u32 dec in
  let* seq = D.u32 dec in
  let* max_entries = D.u16 dec in
  let* max_bytes = D.u32 dec in
  Ok { cursor; seq; max_entries; max_bytes }

let rec put_request enc r =
  match r with
  | Create_log { path; perms } ->
    E.u8 enc 1;
    E.u16 enc perms;
    put_string enc path
  | Ensure_log { path; perms } ->
    E.u8 enc 2;
    E.u16 enc perms;
    put_string enc path
  | Resolve path ->
    E.u8 enc 3;
    put_string enc path
  | Path_of id ->
    E.u8 enc 4;
    E.u16 enc id
  | List_logs path ->
    E.u8 enc 5;
    put_string enc path
  | Set_perms { log; perms } ->
    E.u8 enc 6;
    E.u16 enc log;
    E.u16 enc perms
  | Append { log; extra_members; force; data } ->
    E.u8 enc 7;
    E.u16 enc log;
    E.u8 enc (if force then 1 else 0);
    E.u8 enc (List.length extra_members);
    List.iter (fun id -> E.u16 enc id) extra_members;
    put_string enc data
  | Force -> E.u8 enc 8
  | Open_cursor { log; whence } ->
    E.u8 enc 9;
    E.u16 enc log;
    (match whence with
    | From_start -> E.u8 enc 0
    | From_end -> E.u8 enc 1
    | From_time ts ->
      E.u8 enc 2;
      E.i64 enc ts)
  | Next c ->
    E.u8 enc 10;
    E.u32 enc c
  | Prev c ->
    E.u8 enc 11;
    E.u32 enc c
  | Close_cursor c ->
    E.u8 enc 12;
    E.u32 enc c
  | Entry_at_or_after { log; ts } ->
    E.u8 enc 13;
    E.u16 enc log;
    E.i64 enc ts
  | Entry_before { log; ts } ->
    E.u8 enc 14;
    E.u16 enc log;
    E.i64 enc ts
  | Hello { version } ->
    E.u8 enc 15;
    E.u16 enc version
  | Append_batch { force; items } ->
    E.u8 enc 16;
    E.u8 enc (if force then 1 else 0);
    E.u16 enc (List.length items);
    List.iter
      (fun { log; extra_members; data } ->
        E.u16 enc log;
        E.u8 enc (List.length extra_members);
        List.iter (fun id -> E.u16 enc id) extra_members;
        put_string enc data)
      items
  | Next_chunk c ->
    E.u8 enc 17;
    put_chunk enc c
  | Prev_chunk c ->
    E.u8 enc 18;
    put_chunk enc c
  | List_dir path ->
    E.u8 enc 19;
    put_string enc path
  | Keyed { key; req } ->
    E.u8 enc 20;
    E.i64 enc key;
    put_request enc req
  | Repl_frontier { epoch } ->
    E.u8 enc 21;
    E.u32 enc epoch
  | Repl_blocks { epoch; seq_uid; vol_index; first_block; blocks } ->
    E.u8 enc 22;
    E.u32 enc epoch;
    E.i64 enc seq_uid;
    E.u16 enc vol_index;
    E.u32 enc first_block;
    E.u16 enc (List.length blocks);
    List.iter (put_string enc) blocks
  | Repl_tail { epoch; seq_uid; vol_index; block; image } ->
    E.u8 enc 23;
    E.u32 enc epoch;
    E.i64 enc seq_uid;
    E.u16 enc vol_index;
    E.u32 enc block;
    put_string enc image

let encode_request r =
  let enc = E.create () in
  put_request enc r;
  E.contents enc

let decode_request s =
  let dec = D.of_string s in
  let rec go ~keyed =
  let* tag = D.u8 dec in
  match tag with
  | 1 | 2 ->
    let* perms = D.u16 dec in
    let* path = get_string dec in
    Ok (if tag = 1 then Create_log { path; perms } else Ensure_log { path; perms })
  | 3 ->
    let* path = get_string dec in
    Ok (Resolve path)
  | 4 ->
    let* id = D.u16 dec in
    Ok (Path_of id)
  | 5 ->
    let* path = get_string dec in
    Ok (List_logs path)
  | 6 ->
    let* log = D.u16 dec in
    let* perms = D.u16 dec in
    Ok (Set_perms { log; perms })
  | 7 ->
    let* log = D.u16 dec in
    let* force = D.u8 dec in
    let* n = D.u8 dec in
    let* extra_members = get_list dec n D.u16 [] in
    let* data = get_string dec in
    Ok (Append { log; extra_members; force = force = 1; data })
  | 8 -> Ok Force
  | 9 ->
    let* log = D.u16 dec in
    let* w = D.u8 dec in
    let* whence =
      match w with
      | 0 -> Ok From_start
      | 1 -> Ok From_end
      | 2 ->
        let* ts = D.i64 dec in
        Ok (From_time ts)
      | _ -> Error (Clio.Errors.Bad_record "bad whence")
    in
    Ok (Open_cursor { log; whence })
  | 10 | 11 | 12 ->
    let* c = D.u32 dec in
    Ok (match tag with 10 -> Next c | 11 -> Prev c | _ -> Close_cursor c)
  | 13 | 14 ->
    let* log = D.u16 dec in
    let* ts = D.i64 dec in
    Ok (if tag = 13 then Entry_at_or_after { log; ts } else Entry_before { log; ts })
  | 15 ->
    let* version = D.u16 dec in
    Ok (Hello { version })
  | 16 ->
    let* force = D.u8 dec in
    let* n = D.u16 dec in
    let get_item dec =
      let* log = D.u16 dec in
      let* n_extra = D.u8 dec in
      let* extra_members = get_list dec n_extra D.u16 [] in
      let* data = get_string dec in
      Ok { log; extra_members; data }
    in
    let* items = get_list dec n get_item [] in
    Ok (Append_batch { force = force = 1; items })
  | 17 | 18 ->
    let* c = get_chunk dec in
    Ok (if tag = 17 then Next_chunk c else Prev_chunk c)
  | 19 ->
    let* path = get_string dec in
    Ok (List_dir path)
  | 20 ->
    if keyed then Error (Clio.Errors.Bad_record "nested keyed request")
    else
      let* key = D.i64 dec in
      let* req = go ~keyed:true in
      Ok (Keyed { key; req })
  | 21 ->
    let* epoch = D.u32 dec in
    Ok (Repl_frontier { epoch })
  | 22 ->
    let* epoch = D.u32 dec in
    let* seq_uid = D.i64 dec in
    let* vol_index = D.u16 dec in
    let* first_block = D.u32 dec in
    let* n = D.u16 dec in
    let* blocks = get_list dec n get_string [] in
    Ok (Repl_blocks { epoch; seq_uid; vol_index; first_block; blocks })
  | 23 ->
    let* epoch = D.u32 dec in
    let* seq_uid = D.i64 dec in
    let* vol_index = D.u16 dec in
    let* block = D.u32 dec in
    let* image = get_string dec in
    Ok (Repl_tail { epoch; seq_uid; vol_index; block; image })
  | t -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown request tag %d" t))
  in
  go ~keyed:false

(* ----------------------------- responses ----------------------------- *)

let put_entry enc (e : entry) =
  E.u16 enc e.log;
  put_ts_opt enc e.timestamp;
  put_string enc e.payload

let get_entry dec =
  let* log = D.u16 dec in
  let* timestamp = get_ts_opt dec in
  let* payload = get_string dec in
  Ok { log; timestamp; payload }

let encode_response r =
  let enc = E.create () in
  (match r with
  | R_unit -> E.u8 enc 1
  | R_id id ->
    E.u8 enc 2;
    E.u32 enc id
  | R_path p ->
    E.u8 enc 3;
    put_string enc p
  | R_names names ->
    E.u8 enc 4;
    E.u16 enc (List.length names);
    List.iter
      (fun (id, name, perms) ->
        E.u16 enc id;
        E.u16 enc perms;
        put_string enc name)
      names
  | R_timestamp ts ->
    E.u8 enc 5;
    put_ts_opt enc ts
  | R_entry None -> E.u8 enc 6
  | R_entry (Some e) ->
    E.u8 enc 7;
    put_entry enc e
  | R_error msg ->
    E.u8 enc 8;
    put_string enc msg
  | R_version v ->
    E.u8 enc 9;
    E.u16 enc v
  | R_timestamps ts ->
    E.u8 enc 10;
    E.u16 enc (List.length ts);
    List.iter (put_ts_opt enc) ts
  | R_entries { entries; seq; eof } ->
    E.u8 enc 11;
    E.u32 enc seq;
    E.u8 enc (if eof then 1 else 0);
    E.u16 enc (List.length entries);
    List.iter (put_entry enc) entries
  | R_error_t e ->
    E.u8 enc 12;
    encode_error enc e
  | R_dir entries ->
    E.u8 enc 13;
    E.u16 enc (List.length entries);
    List.iter
      (fun { id; path; perms; entry_count } ->
        E.u16 enc id;
        E.u16 enc perms;
        E.u32 enc entry_count;
        put_string enc path)
      entries
  | R_repl_frontier { epoch; seq_uid; vols } ->
    E.u8 enc 14;
    E.u32 enc epoch;
    E.i64 enc seq_uid;
    E.u16 enc (List.length vols);
    List.iter
      (fun (vol_index, frontier) ->
        E.u16 enc vol_index;
        E.u32 enc frontier)
      vols
  | R_repl_ack { epoch; vol_index; next_block } ->
    E.u8 enc 15;
    E.u32 enc epoch;
    E.u16 enc vol_index;
    E.u32 enc next_block);
  E.contents enc

let decode_response s =
  let dec = D.of_string s in
  let* tag = D.u8 dec in
  match tag with
  | 1 -> Ok R_unit
  | 2 ->
    let* id = D.u32 dec in
    Ok (R_id id)
  | 3 ->
    let* p = get_string dec in
    Ok (R_path p)
  | 4 ->
    let* n = D.u16 dec in
    let get_name dec =
      let* id = D.u16 dec in
      let* perms = D.u16 dec in
      let* name = get_string dec in
      Ok (id, name, perms)
    in
    let* names = get_list dec n get_name [] in
    Ok (R_names names)
  | 5 ->
    let* ts = get_ts_opt dec in
    Ok (R_timestamp ts)
  | 6 -> Ok (R_entry None)
  | 7 ->
    let* e = get_entry dec in
    Ok (R_entry (Some e))
  | 8 ->
    let* msg = get_string dec in
    Ok (R_error msg)
  | 9 ->
    let* v = D.u16 dec in
    Ok (R_version v)
  | 10 ->
    let* n = D.u16 dec in
    let* ts = get_list dec n get_ts_opt [] in
    Ok (R_timestamps ts)
  | 11 ->
    let* seq = D.u32 dec in
    let* eof = D.u8 dec in
    let* n = D.u16 dec in
    let* entries = get_list dec n get_entry [] in
    Ok (R_entries { entries; seq; eof = eof = 1 })
  | 12 ->
    let* e = decode_error dec in
    Ok (R_error_t e)
  | 13 ->
    let* n = D.u16 dec in
    let get_dir dec =
      let* id = D.u16 dec in
      let* perms = D.u16 dec in
      let* entry_count = D.u32 dec in
      let* path = get_string dec in
      Ok { id; path; perms; entry_count }
    in
    let* entries = get_list dec n get_dir [] in
    Ok (R_dir entries)
  | 14 ->
    let* epoch = D.u32 dec in
    let* seq_uid = D.i64 dec in
    let* n = D.u16 dec in
    let get_vol dec =
      let* vol_index = D.u16 dec in
      let* frontier = D.u32 dec in
      Ok (vol_index, frontier)
    in
    let* vols = get_list dec n get_vol [] in
    Ok (R_repl_frontier { epoch; seq_uid; vols })
  | 15 ->
    let* epoch = D.u32 dec in
    let* vol_index = D.u16 dec in
    let* next_block = D.u32 dec in
    Ok (R_repl_ack { epoch; vol_index; next_block })
  | t -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown response tag %d" t))

(* --------------------------- directory view --------------------------- *)

(* The one materialization of a directory listing, shared by the RPC
   dispatcher and the CLI so both render the same fields. [entry_count] is
   the number of direct sublogs (directory entries) of each child. *)
let dir_entries srv path =
  let* ds = Clio.Server.list_logs srv path in
  Ok
    (List.map
       (fun (d : Clio.Catalog.descriptor) ->
         let child_path = Clio.Server.path_of srv d.Clio.Catalog.id in
         let entry_count =
           match Clio.Server.list_logs srv child_path with
           | Ok children -> List.length children
           | Error _ -> 0
         in
         { id = d.Clio.Catalog.id; path = child_path; perms = d.Clio.Catalog.perms; entry_count })
       ds)
