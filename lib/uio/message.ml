type whence = From_start | From_end | From_time of int64

type request =
  | Create_log of { path : string; perms : int }
  | Ensure_log of { path : string; perms : int }
  | Resolve of string
  | Path_of of Clio.Ids.logfile
  | List_logs of string
  | Set_perms of { log : Clio.Ids.logfile; perms : int }
  | Append of {
      log : Clio.Ids.logfile;
      extra_members : Clio.Ids.logfile list;
      force : bool;
      data : string;
    }
  | Force
  | Open_cursor of { log : Clio.Ids.logfile; whence : whence }
  | Next of int
  | Prev of int
  | Close_cursor of int
  | Entry_at_or_after of { log : Clio.Ids.logfile; ts : int64 }
  | Entry_before of { log : Clio.Ids.logfile; ts : int64 }

type entry = {
  log : Clio.Ids.logfile;
  timestamp : int64 option;
  payload : string;
}

type response =
  | R_unit
  | R_id of int
  | R_path of string
  | R_names of (int * string * int) list
  | R_timestamp of int64 option
  | R_entry of entry option
  | R_error of string

let ( let* ) = Clio.Errors.( let* )

module E = Clio.Wire.Enc
module D = Clio.Wire.Dec

let put_string enc s =
  E.u32 enc (String.length s);
  E.bytes enc s

let get_string dec =
  let* n = D.u32 dec in
  D.bytes dec n

let put_ts_opt enc = function
  | None -> E.u8 enc 0
  | Some ts ->
    E.u8 enc 1;
    E.i64 enc ts

let get_ts_opt dec =
  let* tag = D.u8 dec in
  if tag = 0 then Ok None
  else
    let* ts = D.i64 dec in
    Ok (Some ts)

let encode_request r =
  let enc = E.create () in
  (match r with
  | Create_log { path; perms } ->
    E.u8 enc 1;
    E.u16 enc perms;
    put_string enc path
  | Ensure_log { path; perms } ->
    E.u8 enc 2;
    E.u16 enc perms;
    put_string enc path
  | Resolve path ->
    E.u8 enc 3;
    put_string enc path
  | Path_of id ->
    E.u8 enc 4;
    E.u16 enc id
  | List_logs path ->
    E.u8 enc 5;
    put_string enc path
  | Set_perms { log; perms } ->
    E.u8 enc 6;
    E.u16 enc log;
    E.u16 enc perms
  | Append { log; extra_members; force; data } ->
    E.u8 enc 7;
    E.u16 enc log;
    E.u8 enc (if force then 1 else 0);
    E.u8 enc (List.length extra_members);
    List.iter (fun id -> E.u16 enc id) extra_members;
    put_string enc data
  | Force -> E.u8 enc 8
  | Open_cursor { log; whence } ->
    E.u8 enc 9;
    E.u16 enc log;
    (match whence with
    | From_start -> E.u8 enc 0
    | From_end -> E.u8 enc 1
    | From_time ts ->
      E.u8 enc 2;
      E.i64 enc ts)
  | Next c ->
    E.u8 enc 10;
    E.u32 enc c
  | Prev c ->
    E.u8 enc 11;
    E.u32 enc c
  | Close_cursor c ->
    E.u8 enc 12;
    E.u32 enc c
  | Entry_at_or_after { log; ts } ->
    E.u8 enc 13;
    E.u16 enc log;
    E.i64 enc ts
  | Entry_before { log; ts } ->
    E.u8 enc 14;
    E.u16 enc log;
    E.i64 enc ts);
  E.contents enc

let decode_request s =
  let dec = D.of_string s in
  let* tag = D.u8 dec in
  match tag with
  | 1 | 2 ->
    let* perms = D.u16 dec in
    let* path = get_string dec in
    Ok (if tag = 1 then Create_log { path; perms } else Ensure_log { path; perms })
  | 3 ->
    let* path = get_string dec in
    Ok (Resolve path)
  | 4 ->
    let* id = D.u16 dec in
    Ok (Path_of id)
  | 5 ->
    let* path = get_string dec in
    Ok (List_logs path)
  | 6 ->
    let* log = D.u16 dec in
    let* perms = D.u16 dec in
    Ok (Set_perms { log; perms })
  | 7 ->
    let* log = D.u16 dec in
    let* force = D.u8 dec in
    let* n = D.u8 dec in
    let rec ids i acc =
      if i >= n then Ok (List.rev acc)
      else
        let* id = D.u16 dec in
        ids (i + 1) (id :: acc)
    in
    let* extra_members = ids 0 [] in
    let* data = get_string dec in
    Ok (Append { log; extra_members; force = force = 1; data })
  | 8 -> Ok Force
  | 9 ->
    let* log = D.u16 dec in
    let* w = D.u8 dec in
    let* whence =
      match w with
      | 0 -> Ok From_start
      | 1 -> Ok From_end
      | 2 ->
        let* ts = D.i64 dec in
        Ok (From_time ts)
      | _ -> Error (Clio.Errors.Bad_record "bad whence")
    in
    Ok (Open_cursor { log; whence })
  | 10 | 11 | 12 ->
    let* c = D.u32 dec in
    Ok (match tag with 10 -> Next c | 11 -> Prev c | _ -> Close_cursor c)
  | 13 | 14 ->
    let* log = D.u16 dec in
    let* ts = D.i64 dec in
    Ok (if tag = 13 then Entry_at_or_after { log; ts } else Entry_before { log; ts })
  | t -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown request tag %d" t))

let encode_response r =
  let enc = E.create () in
  (match r with
  | R_unit -> E.u8 enc 1
  | R_id id ->
    E.u8 enc 2;
    E.u32 enc id
  | R_path p ->
    E.u8 enc 3;
    put_string enc p
  | R_names names ->
    E.u8 enc 4;
    E.u16 enc (List.length names);
    List.iter
      (fun (id, name, perms) ->
        E.u16 enc id;
        E.u16 enc perms;
        put_string enc name)
      names
  | R_timestamp ts ->
    E.u8 enc 5;
    put_ts_opt enc ts
  | R_entry None -> E.u8 enc 6
  | R_entry (Some e) ->
    E.u8 enc 7;
    E.u16 enc e.log;
    put_ts_opt enc e.timestamp;
    put_string enc e.payload
  | R_error msg ->
    E.u8 enc 8;
    put_string enc msg);
  E.contents enc

let decode_response s =
  let dec = D.of_string s in
  let* tag = D.u8 dec in
  match tag with
  | 1 -> Ok R_unit
  | 2 ->
    let* id = D.u32 dec in
    Ok (R_id id)
  | 3 ->
    let* p = get_string dec in
    Ok (R_path p)
  | 4 ->
    let* n = D.u16 dec in
    let rec names i acc =
      if i >= n then Ok (R_names (List.rev acc))
      else
        let* id = D.u16 dec in
        let* perms = D.u16 dec in
        let* name = get_string dec in
        names (i + 1) ((id, name, perms) :: acc)
    in
    names 0 []
  | 5 ->
    let* ts = get_ts_opt dec in
    Ok (R_timestamp ts)
  | 6 -> Ok (R_entry None)
  | 7 ->
    let* log = D.u16 dec in
    let* timestamp = get_ts_opt dec in
    let* payload = get_string dec in
    Ok (R_entry (Some { log; timestamp; payload }))
  | 8 ->
    let* msg = get_string dec in
    Ok (R_error msg)
  | t -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown response tag %d" t))
