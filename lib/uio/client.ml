type retry_policy = {
  max_attempts : int;
  deadline_us : int64;
  base_backoff_us : int64;
  max_backoff_us : int64;
}

let default_retry =
  { max_attempts = 10; deadline_us = 1_000_000L; base_backoff_us = 500L; max_backoff_us = 64_000L }

let no_retry = { default_retry with max_attempts = 1 }

type stats = {
  mutable retries : int;
  mutable timeouts : int;
  mutable disconnects : int;
  mutable deadline_exceeded : int;
}

type t = {
  transport : Transport.t;
  mutable version : int;
  retry : retry_policy;
  rng : Sim.Rng.t;  (** backoff jitter + idempotency-key seed *)
  mutable next_key : int64;
  mutable redirect_hint : string option;
      (** primary address from the last [Not_primary] refusal, if any *)
  stats : stats;
  m_retries : Obs.Metrics.counter option;
  m_timeouts : Obs.Metrics.counter option;
  m_disconnects : Obs.Metrics.counter option;
  m_deadline : Obs.Metrics.counter option;
}

type cursor = { client : t; id : int; mutable seq : int }

let ( let* ) = Clio.Errors.( let* )

let protocol_error = Error (Clio.Errors.Remote "protocol error: unexpected response shape")

let bump cm = Option.iter Obs.Metrics.incr cm

let fresh_key t =
  let k = t.next_key in
  t.next_key <- Int64.add k 1L;
  k

(* Requests that are safe to resend even WITHOUT an idempotency key: pure
   reads whose answer may change but whose resend applies nothing. Every
   other request is only retried when the session speaks v3 and the request
   travels inside a [Keyed] envelope. *)
let idempotent_unkeyed = function
  | Message.Hello _ | Message.Resolve _ | Message.Path_of _ | Message.List_logs _
  | Message.List_dir _ | Message.Entry_at_or_after _ | Message.Entry_before _ ->
    true
  | _ -> false

let call_once t wire =
  match Transport.call t.transport wire with
  | exception Transport.Timeout ->
    t.stats.timeouts <- t.stats.timeouts + 1;
    bump t.m_timeouts;
    Error Clio.Errors.Timeout
  | exception Transport.Disconnected ->
    t.stats.disconnects <- t.stats.disconnects + 1;
    bump t.m_disconnects;
    Error Clio.Errors.Disconnected
  | raw -> (
    match Message.decode_response raw with
    | Ok (Message.R_error msg) -> Error (Clio.Errors.Remote msg)
    | Ok (Message.R_error_t e) ->
      (match e with
      | Clio.Errors.Not_primary hint when hint <> "" -> t.redirect_hint <- Some hint
      | _ -> ());
      Error e
    | Ok r -> Ok r
    | Error e -> Error e)

let backoff_us p ~attempt =
  let b = Int64.shift_left p.base_backoff_us (min attempt 16) in
  if Int64.compare b p.max_backoff_us > 0 || Int64.compare b 0L <= 0 then p.max_backoff_us
  else b

(* The retry loop. A keyed request is always safe to resend (the server's
   dedup window replays the original answer byte-for-byte); an unkeyed one
   only if [idempotent_unkeyed]. Backoff is exponential with half-window
   jitter and advances the transport's clock, so waiting costs simulated
   time; the deadline is a per-call budget on that same clock. When the
   budget or the attempt count runs out, the last transport error surfaces
   ([Timeout] / [Disconnected]) — for an unkeyed mutating request that
   error is genuinely ambiguous, and surfacing it is the honest answer. *)
let call t req =
  let keyed =
    t.version >= 3 && (match req with Message.Hello _ -> false | _ -> true)
  in
  let wire_req = if keyed then Message.Keyed { key = fresh_key t; req } else req in
  let retryable = keyed || idempotent_unkeyed req in
  let wire = Message.encode_request wire_req in
  if not retryable then call_once t wire
  else begin
    let p = t.retry in
    let clock = Transport.clock t.transport in
    let start = Sim.Clock.peek clock in
    let rec go attempt =
      match call_once t wire with
      | Error (Clio.Errors.Timeout | Clio.Errors.Disconnected) as r
        when attempt + 1 < p.max_attempts ->
        let elapsed = Int64.sub (Sim.Clock.peek clock) start in
        if Int64.compare elapsed p.deadline_us >= 0 then begin
          t.stats.deadline_exceeded <- t.stats.deadline_exceeded + 1;
          bump t.m_deadline;
          r
        end
        else begin
          t.stats.retries <- t.stats.retries + 1;
          bump t.m_retries;
          let b = backoff_us p ~attempt in
          let half = Int64.div b 2L in
          let jitter = Int64.of_int (Sim.Rng.int t.rng (Int64.to_int half + 1)) in
          Sim.Clock.advance clock (Int64.add half jitter);
          go (attempt + 1)
        end
      | r -> r
    in
    go 0
  end

(* Version negotiation happens once, at connect: a v3-capable server
   answers [R_version]; anything else (an old server rejecting the unknown
   tag, a transport mangling the reply) demotes the session to v1, where
   every operation is a single v1-tagged round trip. The Hello itself rides
   the retry loop (it is an idempotent read), so connecting over a lossy
   transport works. *)
let connect ?(max_version = Message.protocol_version) ?(retry = default_retry)
    ?(rng = Sim.Rng.create 0xC11E2717L) ?metrics transport =
  let mc name = Option.map (fun m -> Obs.Metrics.counter m name) metrics in
  let t =
    {
      transport;
      version = 1;
      retry;
      rng;
      next_key = Sim.Rng.next rng;
      redirect_hint = None;
      stats = { retries = 0; timeouts = 0; disconnects = 0; deadline_exceeded = 0 };
      m_retries = mc "client_retries";
      m_timeouts = mc "client_timeouts";
      m_disconnects = mc "client_disconnects";
      m_deadline = mc "client_deadline_exceeded";
    }
  in
  (if max_version >= 2 then
     match call t (Message.Hello { version = max_version }) with
     | Ok (Message.R_version v) -> t.version <- max 1 (min v max_version)
     | Ok _ | Error _ -> t.version <- 1);
  t

let version t = t.version
let stats t = t.stats
let redirect_hint t = t.redirect_hint

let expect_id t req =
  let* r = call t req in
  match r with Message.R_id id -> Ok id | _ -> protocol_error

let expect_unit t req =
  let* r = call t req in
  match r with Message.R_unit -> Ok () | _ -> protocol_error

let expect_entry t req =
  let* r = call t req in
  match r with Message.R_entry e -> Ok e | _ -> protocol_error

let create_log ?(perms = 0o644) t path = expect_id t (Message.Create_log { path; perms })
let ensure_log ?(perms = 0o644) t path = expect_id t (Message.Ensure_log { path; perms })
let resolve t path = expect_id t (Message.Resolve path)

let path_of t id =
  let* r = call t (Message.Path_of id) in
  match r with Message.R_path p -> Ok p | _ -> protocol_error

let list_logs t path =
  if t.version >= 2 then
    let* r = call t (Message.List_dir path) in
    match r with Message.R_dir ds -> Ok ds | _ -> protocol_error
  else
    (* v1 listing carries (id, name, perms) only: synthesize the path from
       the parent, and report 0 sublogs (the legacy shape lacks counts). *)
    let* r = call t (Message.List_logs path) in
    match r with
    | Message.R_names names ->
      let base = if path = "/" then "" else path in
      Ok
        (List.map
           (fun (id, name, perms) ->
             { Message.id; path = base ^ "/" ^ name; perms; entry_count = 0 })
           names)
    | _ -> protocol_error

let set_perms t ~log perms = expect_unit t (Message.Set_perms { log; perms })

let append ?(extra_members = []) ?(force = false) t ~log data =
  let* r = call t (Message.Append { log; extra_members; force; data }) in
  match r with Message.R_timestamp ts -> Ok ts | _ -> protocol_error

let force t = expect_unit t Message.Force

let append_batch ?(force = false) t items =
  if items = [] then Ok []
  else if t.version >= 2 then
    let* r = call t (Message.Append_batch { force; items }) in
    match r with Message.R_timestamps ts -> Ok ts | _ -> protocol_error
  else begin
    (* v1 fallback: one round trip per entry, then a single force — the
       group-commit durability contract holds either way. *)
    let rec go acc = function
      | [] ->
        let* () = if force then expect_unit t Message.Force else Ok () in
        Ok (List.rev acc)
      | { Message.log; extra_members; data } :: rest ->
        let* ts = append ~extra_members t ~log data in
        go (ts :: acc) rest
    in
    go [] items
  end

let open_cursor t ~log whence =
  let* id = expect_id t (Message.Open_cursor { log; whence }) in
  Ok { client = t; id; seq = 0 }

let next c = expect_entry c.client (Message.Next c.id)
let prev c = expect_entry c.client (Message.Prev c.id)
let close_cursor c = expect_unit c.client (Message.Close_cursor c.id)

let default_chunk_entries = 128
let default_chunk_bytes = 256 * 1024

let chunk_of c ~max_entries ~max_bytes =
  { Message.cursor = c.id; seq = c.seq; max_entries; max_bytes }

let chunk_call c req =
  let* r = call c.client req in
  match r with
  | Message.R_entries { entries; seq; eof } ->
    c.seq <- seq;
    Ok (entries, eof)
  | _ -> protocol_error

(* On a v1 session a chunk degrades to a single step: one entry per round
   trip, [eof] only when the cursor runs off the end — so chunked loops
   work (slowly) against v1 servers without a second code path. *)
let next_chunk ?(max_entries = default_chunk_entries) ?(max_bytes = default_chunk_bytes) c =
  if c.client.version >= 2 then
    chunk_call c (Message.Next_chunk (chunk_of c ~max_entries ~max_bytes))
  else
    let* e = next c in
    match e with None -> Ok ([], true) | Some e -> Ok ([ e ], false)

let prev_chunk ?(max_entries = default_chunk_entries) ?(max_bytes = default_chunk_bytes) c =
  if c.client.version >= 2 then
    chunk_call c (Message.Prev_chunk (chunk_of c ~max_entries ~max_bytes))
  else
    let* e = prev c in
    match e with None -> Ok ([], true) | Some e -> Ok ([ e ], false)

let with_cursor t ~log whence f =
  let* c = open_cursor t ~log whence in
  match f c with
  | Ok v ->
    let* () = close_cursor c in
    Ok v
  | Error _ as e ->
    (try ignore (close_cursor c) with _ -> ());
    e
  | exception exn ->
    (try ignore (close_cursor c) with _ -> ());
    raise exn

let entry_at_or_after t ~log ts = expect_entry t (Message.Entry_at_or_after { log; ts })
let entry_before t ~log ts = expect_entry t (Message.Entry_before { log; ts })

let fold_entries ?chunk_entries ?chunk_bytes t ~log ~init f =
  with_cursor t ~log Message.From_start (fun c ->
      let rec go acc =
        let* entries, eof = next_chunk ?max_entries:chunk_entries ?max_bytes:chunk_bytes c in
        let acc = List.fold_left f acc entries in
        if eof then Ok acc else go acc
      in
      go init)
