type t = { transport : Transport.t }
type cursor = { client : t; id : int }

let connect transport = { transport }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let call t req =
  let raw = Transport.call t.transport (Message.encode_request req) in
  match Message.decode_response raw with
  | Ok (Message.R_error msg) -> Error msg
  | Ok r -> Ok r
  | Error e -> Error (Clio.Errors.to_string e)

let protocol_error = Error "protocol error: unexpected response shape"

let expect_id t req =
  let* r = call t req in
  match r with Message.R_id id -> Ok id | _ -> protocol_error

let expect_unit t req =
  let* r = call t req in
  match r with Message.R_unit -> Ok () | _ -> protocol_error

let expect_entry t req =
  let* r = call t req in
  match r with Message.R_entry e -> Ok e | _ -> protocol_error

let create_log ?(perms = 0o644) t path = expect_id t (Message.Create_log { path; perms })
let ensure_log ?(perms = 0o644) t path = expect_id t (Message.Ensure_log { path; perms })
let resolve t path = expect_id t (Message.Resolve path)

let path_of t id =
  let* r = call t (Message.Path_of id) in
  match r with Message.R_path p -> Ok p | _ -> protocol_error

let list_logs t path =
  let* r = call t (Message.List_logs path) in
  match r with Message.R_names names -> Ok names | _ -> protocol_error

let set_perms t ~log perms = expect_unit t (Message.Set_perms { log; perms })

let append ?(extra_members = []) ?(force = false) t ~log data =
  let* r = call t (Message.Append { log; extra_members; force; data }) in
  match r with Message.R_timestamp ts -> Ok ts | _ -> protocol_error

let force t = expect_unit t Message.Force

let open_cursor t ~log whence =
  let* id = expect_id t (Message.Open_cursor { log; whence }) in
  Ok { client = t; id }

let next c = expect_entry c.client (Message.Next c.id)
let prev c = expect_entry c.client (Message.Prev c.id)
let close_cursor c = expect_unit c.client (Message.Close_cursor c.id)

let entry_at_or_after t ~log ts = expect_entry t (Message.Entry_at_or_after { log; ts })
let entry_before t ~log ts = expect_entry t (Message.Entry_before { log; ts })

let fold_entries t ~log ~init f =
  let* c = open_cursor t ~log Message.From_start in
  let rec go acc =
    let* e = next c in
    match e with
    | Some e -> go (f acc e)
    | None ->
      let* () = close_cursor c in
      Ok acc
  in
  go init
