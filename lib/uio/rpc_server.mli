(** Server-side dispatcher: decodes requests, runs them against a
    {!Clio.Server.t}, encodes responses.

    One [t] per connection — it holds peer state: the negotiated protocol
    version (v1 until the peer sends [Hello]) and the cursor table. Cursors
    live in a bounded LRU (capacity [max_cursors]): opening one past the cap
    evicts the least-recently-used, whose id then answers
    [Errors.Cursor_expired] — no more leaking until the server dies, as in
    the V-System era. Error replies are typed ([R_error_t]) once the peer
    negotiated v2, v1 strings otherwise.

    {b Idempotent retries (v3).} A [Message.Keyed] request is answered from
    a bounded per-connection dedup window when its key was seen before: the
    cached {e encoded} response is replayed byte-for-byte (original
    timestamps included) and the operation is not re-run. The window holds
    the last [dedup_window] keys (FIFO); replays bump the [rpc_dedup_hits]
    counter. *)

type t

val default_max_cursors : int
(** 64. *)

val default_dedup_window : int
(** 256. *)

val create : ?max_cursors:int -> ?dedup_window:int -> Clio.Server.t -> t
(** [dedup_window] bounds the idempotency-key replay cache; [0] disables
    dedup entirely (every keyed request re-runs). *)

val server : t -> Clio.Server.t

val set_server : t -> Clio.Server.t -> unit
(** Swap in a rebuilt server (a replica re-recovers after applying shipped
    blocks). All cursors are dropped — their ids answer [Cursor_expired],
    as after a reboot — while the negotiated version and the dedup window
    survive, because the connection itself never went away. *)

val handle : t -> string -> string
(** Total: malformed requests and failed operations come back as
    [R_error]/[R_error_t]; [handle] never raises. *)

val open_cursors : t -> int
val peer_version : t -> int
(** 1 until the peer's [Hello] negotiates higher. *)

val dedup_entries : t -> int
(** Live keys in the dedup window (for tests and introspection). *)
