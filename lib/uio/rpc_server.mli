(** Server-side dispatcher: decodes requests, runs them against a
    {!Clio.Server.t}, encodes responses. Cursors are kept in a server-side
    table keyed by small integers (closed explicitly or leaked until the
    server dies, as in the V-System). *)

type t

val create : Clio.Server.t -> t

val handle : t -> string -> string
(** Total: malformed requests and failed operations come back as
    [R_error]; [handle] never raises. *)

val open_cursors : t -> int
