(** Server-side dispatcher: decodes requests, runs them against a
    {!Clio.Server.t}, encodes responses.

    One [t] per connection — it holds peer state: the negotiated protocol
    version (v1 until the peer sends [Hello]) and the cursor table. Cursors
    live in a bounded LRU (capacity [max_cursors]): opening one past the cap
    evicts the least-recently-used, whose id then answers
    [Errors.Cursor_expired] — no more leaking until the server dies, as in
    the V-System era. Error replies are typed ([R_error_t]) once the peer
    negotiated v2, v1 strings otherwise. *)

type t

val default_max_cursors : int
(** 64. *)

val create : ?max_cursors:int -> Clio.Server.t -> t

val handle : t -> string -> string
(** Total: malformed requests and failed operations come back as
    [R_error]/[R_error_t]; [handle] never raises. *)

val open_cursors : t -> int
val peer_version : t -> int
(** 1 until the peer's [Hello] negotiates higher. *)
