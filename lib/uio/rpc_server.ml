(* One [t] per connection: the cursor table, the negotiated protocol
   version, the continuation sequence numbers and the idempotency-key dedup
   window are all peer state. *)

type slot = { cur : Clio.Reader.cursor; mutable seq : int }

type t = {
  mutable srv : Clio.Server.t;
  max_cursors : int;
  mutable cursors : slot Blockcache.Lru.t;
  mutable next_cursor : int;
  mutable peer_version : int;
  dedup_capacity : int;
  dedup : (int64, string) Hashtbl.t;  (** idempotency key -> encoded response *)
  dedup_order : int64 Queue.t;  (** FIFO of live keys, oldest first *)
  mutable h_rpc : Obs.Histogram.t;
  mutable c_requests : Obs.Metrics.counter;
  mutable c_errors : Obs.Metrics.counter;
  mutable c_evicted : Obs.Metrics.counter;
  mutable c_dedup : Obs.Metrics.counter;
}

let default_max_cursors = 64
let default_dedup_window = 256

let create ?(max_cursors = default_max_cursors) ?(dedup_window = default_dedup_window) srv =
  let m = Clio.Server.metrics srv in
  {
    srv;
    max_cursors = max 1 max_cursors;
    cursors = Blockcache.Lru.create ~capacity:(max 1 max_cursors);
    next_cursor = 1;
    peer_version = 1;
    dedup_capacity = max 0 dedup_window;
    dedup = Hashtbl.create 64;
    dedup_order = Queue.create ();
    h_rpc = Obs.Metrics.histogram m "rpc_us";
    c_requests = Obs.Metrics.counter m "rpc_requests";
    c_errors = Obs.Metrics.counter m "rpc_errors";
    c_evicted = Obs.Metrics.counter m "rpc_cursors_evicted";
    c_dedup = Obs.Metrics.counter m "rpc_dedup_hits";
  }

let server t = t.srv

(* Swap in a rebuilt server (a replica re-recovers after applying shipped
   blocks). Cursors point into the old server's volumes, so they are all
   dropped — a reader sees [Cursor_expired] and reopens, exactly as after a
   server reboot. The peer's negotiated version and dedup window survive:
   the connection itself never went away. Metric handles are re-resolved
   because the new server carries a fresh registry. *)
let set_server t srv =
  let m = Clio.Server.metrics srv in
  t.srv <- srv;
  t.cursors <- Blockcache.Lru.create ~capacity:t.max_cursors;
  t.h_rpc <- Obs.Metrics.histogram m "rpc_us";
  t.c_requests <- Obs.Metrics.counter m "rpc_requests";
  t.c_errors <- Obs.Metrics.counter m "rpc_errors";
  t.c_evicted <- Obs.Metrics.counter m "rpc_cursors_evicted";
  t.c_dedup <- Obs.Metrics.counter m "rpc_dedup_hits"

let rec request_name : Message.request -> string = function
  | Message.Keyed { req; _ } -> request_name req
  | Message.Create_log _ -> "rpc.create_log"
  | Message.Ensure_log _ -> "rpc.ensure_log"
  | Message.Resolve _ -> "rpc.resolve"
  | Message.Path_of _ -> "rpc.path_of"
  | Message.List_logs _ -> "rpc.list_logs"
  | Message.Set_perms _ -> "rpc.set_perms"
  | Message.Append _ -> "rpc.append"
  | Message.Force -> "rpc.force"
  | Message.Open_cursor _ -> "rpc.open_cursor"
  | Message.Next _ -> "rpc.next"
  | Message.Prev _ -> "rpc.prev"
  | Message.Close_cursor _ -> "rpc.close_cursor"
  | Message.Entry_at_or_after _ -> "rpc.entry_at_or_after"
  | Message.Entry_before _ -> "rpc.entry_before"
  | Message.Hello _ -> "rpc.hello"
  | Message.Append_batch _ -> "rpc.append_batch"
  | Message.Next_chunk _ -> "rpc.next_chunk"
  | Message.Prev_chunk _ -> "rpc.prev_chunk"
  | Message.List_dir _ -> "rpc.list_dir"
  | Message.Repl_frontier _ -> "rpc.repl_frontier"
  | Message.Repl_blocks _ -> "rpc.repl_blocks"
  | Message.Repl_tail _ -> "rpc.repl_tail"

let entry_of (e : Clio.Reader.entry) =
  {
    Message.log = e.Clio.Reader.log;
    timestamp = e.Clio.Reader.timestamp;
    payload = e.Clio.Reader.payload;
  }

(* Error replies follow the negotiated version: typed [R_error_t] once the
   peer said Hello with version >= 2, the v1 string form otherwise. *)
let error_reply t e =
  if t.peer_version >= 2 then Message.R_error_t e
  else Message.R_error (Clio.Errors.to_string e)

let reply t r f = match r with Ok v -> f v | Error e -> error_reply t e

let register_cursor t cur =
  let id = t.next_cursor in
  t.next_cursor <- id + 1;
  (match Blockcache.Lru.add t.cursors id { cur; seq = 0 } with
  | Some _evicted -> Obs.Metrics.incr t.c_evicted
  | None -> ());
  Message.R_id id

(* A continuation token is (cursor id, seq): the id fails once the cursor
   is closed or LRU-evicted, the seq fails once a newer chunk superseded
   it, so stale and replayed tokens surface as [Cursor_expired] instead of
   silently re-reading. *)
let find_slot t (c : Message.chunk) =
  match Blockcache.Lru.find t.cursors c.Message.cursor with
  | None -> Error Clio.Errors.Cursor_expired
  | Some slot ->
    if slot.seq <> c.Message.seq then Error Clio.Errors.Cursor_expired else Ok slot

(* Pull entries until the budget is spent: at most [max_entries], stopping
   early once the accumulated payload bytes reach [max_bytes] (always
   returning at least one entry when one is available). [eof] is only set
   when the cursor actually ran off the end, so a caller can keep asking
   until then. *)
let read_chunk step slot (c : Message.chunk) =
  let max_entries = max 1 c.Message.max_entries in
  let max_bytes = max 1 c.Message.max_bytes in
  let rec go n bytes acc =
    if n >= max_entries || (n > 0 && bytes >= max_bytes) then Ok (List.rev acc, false)
    else
      match step slot.cur with
      | Error e -> if acc = [] then Error e else Ok (List.rev acc, false)
      | Ok None -> Ok (List.rev acc, true)
      | Ok (Some e) ->
        go (n + 1) (bytes + String.length e.Clio.Reader.payload) (entry_of e :: acc)
  in
  go 0 0 []

let chunk_reply t step (c : Message.chunk) =
  match find_slot t c with
  | Error e -> error_reply t e
  | Ok slot ->
    reply t (read_chunk step slot c) (fun (entries, eof) ->
        slot.seq <- slot.seq + 1;
        Message.R_entries { entries; seq = slot.seq; eof })

let rec run_inner t (req : Message.request) : Message.response =
  match req with
  | Message.Create_log { path; perms } ->
    reply t (Clio.Server.create_log ~perms t.srv path) (fun id -> Message.R_id id)
  | Message.Ensure_log { path; perms } ->
    reply t (Clio.Server.ensure_log ~perms t.srv path) (fun id -> Message.R_id id)
  | Message.Resolve path ->
    reply t (Clio.Server.resolve t.srv path) (fun id -> Message.R_id id)
  | Message.Path_of id -> Message.R_path (Clio.Server.path_of t.srv id)
  | Message.List_logs path ->
    reply t (Clio.Server.list_logs t.srv path) (fun ds ->
        Message.R_names
          (List.map (fun d -> (d.Clio.Catalog.id, d.Clio.Catalog.name, d.Clio.Catalog.perms)) ds))
  | Message.Set_perms { log; perms } ->
    reply t (Clio.Server.set_perms t.srv ~log perms) (fun () -> Message.R_unit)
  | Message.Append { log; extra_members; force; data } ->
    reply t
      (Clio.Server.append ~extra_members ~force t.srv ~log data)
      (fun ts -> Message.R_timestamp ts)
  | Message.Force -> reply t (Clio.Server.force t.srv) (fun () -> Message.R_unit)
  | Message.Open_cursor { log; whence } ->
    let cursor =
      match whence with
      | Message.From_start -> Ok (Clio.Server.cursor_start t.srv ~log)
      | Message.From_end -> Clio.Server.cursor_end t.srv ~log
      | Message.From_time ts -> Clio.Server.cursor_at_time t.srv ~log ts
    in
    reply t cursor (register_cursor t)
  | Message.Next cid -> (
    match Blockcache.Lru.find t.cursors cid with
    | None -> error_reply t Clio.Errors.Cursor_expired
    | Some slot ->
      reply t (Clio.Server.next slot.cur) (fun e -> Message.R_entry (Option.map entry_of e)))
  | Message.Prev cid -> (
    match Blockcache.Lru.find t.cursors cid with
    | None -> error_reply t Clio.Errors.Cursor_expired
    | Some slot ->
      reply t (Clio.Server.prev slot.cur) (fun e -> Message.R_entry (Option.map entry_of e)))
  | Message.Close_cursor cid ->
    Blockcache.Lru.remove t.cursors cid;
    Message.R_unit
  | Message.Entry_at_or_after { log; ts } ->
    reply t (Clio.Server.entry_at_or_after t.srv ~log ts) (fun e ->
        Message.R_entry (Option.map entry_of e))
  | Message.Entry_before { log; ts } ->
    reply t (Clio.Server.entry_before t.srv ~log ts) (fun e ->
        Message.R_entry (Option.map entry_of e))
  | Message.Hello { version } ->
    t.peer_version <- max 1 (min version Message.protocol_version);
    Message.R_version t.peer_version
  | Message.Append_batch { force; items } ->
    let items =
      List.map
        (fun { Message.log; extra_members; data } ->
          { Clio.Server.log; extra_members; payload = data })
        items
    in
    reply t (Clio.Server.append_batch ~force t.srv items) (fun ts -> Message.R_timestamps ts)
  | Message.Next_chunk c -> chunk_reply t Clio.Server.next c
  | Message.Prev_chunk c -> chunk_reply t Clio.Server.prev c
  | Message.List_dir path ->
    reply t (Message.dir_entries t.srv path) (fun ds -> Message.R_dir ds)
  | Message.Repl_frontier _ | Message.Repl_blocks _ | Message.Repl_tail _ ->
    (* Replication traffic is intercepted by [Repl.Replica.handler] before
       it reaches the plain dispatcher; a shipper that reached one anyway
       is pointed at the wrong endpoint. *)
    error_reply t (Clio.Errors.Bad_record "replication message sent to a non-replica endpoint")
  | Message.Keyed { req; _ } ->
    (* Unreachable through [handle], which unwraps the envelope to consult
       the dedup window first; kept total for direct [run] callers. *)
    run_inner t req

(* Every request gets an rpc span (the op's own span nests under it), a
   latency sample and a request count; error replies are counted too. *)
let run t (req : Message.request) : Message.response =
  Obs.Metrics.incr t.c_requests;
  let response =
    Obs.time (Clio.Server.obs t.srv) t.h_rpc (request_name req) (fun () -> run_inner t req)
  in
  (match response with
  | Message.R_error _ | Message.R_error_t _ -> Obs.Metrics.incr t.c_errors
  | _ -> ());
  response

let run_safe t req =
  try run t req with exn -> error_reply t (Clio.Errors.Remote (Printexc.to_string exn))

(* The dedup window remembers the encoded response of the last
   [dedup_capacity] keyed requests (FIFO). A key is recorded once — the
   response a retry replays is byte-for-byte the first one, even if a
   concurrent duplicate raced in between. *)
let dedup_store t key resp =
  if t.dedup_capacity > 0 && not (Hashtbl.mem t.dedup key) then begin
    Hashtbl.replace t.dedup key resp;
    Queue.push key t.dedup_order;
    if Hashtbl.length t.dedup > t.dedup_capacity then begin
      let oldest = Queue.pop t.dedup_order in
      Hashtbl.remove t.dedup oldest
    end
  end

let handle t raw =
  match Message.decode_request raw with
  | Error e -> Message.encode_response (error_reply t e)
  | Ok (Message.Keyed { key; req }) -> (
    match Hashtbl.find_opt t.dedup key with
    | Some cached ->
      Obs.Metrics.incr t.c_dedup;
      cached
    | None ->
      let resp = Message.encode_response (run_safe t req) in
      dedup_store t key resp;
      resp)
  | Ok req -> Message.encode_response (run_safe t req)

let open_cursors t = Blockcache.Lru.length t.cursors
let peer_version t = t.peer_version
let dedup_entries t = Hashtbl.length t.dedup
