type t = {
  srv : Clio.Server.t;
  cursors : (int, Clio.Reader.cursor) Hashtbl.t;
  mutable next_cursor : int;
  h_rpc : Obs.Histogram.t;
  c_requests : Obs.Metrics.counter;
  c_errors : Obs.Metrics.counter;
}

let create srv =
  let m = Clio.Server.metrics srv in
  {
    srv;
    cursors = Hashtbl.create 16;
    next_cursor = 1;
    h_rpc = Obs.Metrics.histogram m "rpc_us";
    c_requests = Obs.Metrics.counter m "rpc_requests";
    c_errors = Obs.Metrics.counter m "rpc_errors";
  }

let request_name : Message.request -> string = function
  | Message.Create_log _ -> "rpc.create_log"
  | Message.Ensure_log _ -> "rpc.ensure_log"
  | Message.Resolve _ -> "rpc.resolve"
  | Message.Path_of _ -> "rpc.path_of"
  | Message.List_logs _ -> "rpc.list_logs"
  | Message.Set_perms _ -> "rpc.set_perms"
  | Message.Append _ -> "rpc.append"
  | Message.Force -> "rpc.force"
  | Message.Open_cursor _ -> "rpc.open_cursor"
  | Message.Next _ -> "rpc.next"
  | Message.Prev _ -> "rpc.prev"
  | Message.Close_cursor _ -> "rpc.close_cursor"
  | Message.Entry_at_or_after _ -> "rpc.entry_at_or_after"
  | Message.Entry_before _ -> "rpc.entry_before"

let entry_of (e : Clio.Reader.entry) =
  {
    Message.log = e.Clio.Reader.log;
    timestamp = e.Clio.Reader.timestamp;
    payload = e.Clio.Reader.payload;
  }

let reply_result r f =
  match r with Ok v -> f v | Error e -> Message.R_error (Clio.Errors.to_string e)

let run_inner t (req : Message.request) : Message.response =
  match req with
  | Message.Create_log { path; perms } ->
    reply_result (Clio.Server.create_log ~perms t.srv path) (fun id -> Message.R_id id)
  | Message.Ensure_log { path; perms } ->
    reply_result (Clio.Server.ensure_log ~perms t.srv path) (fun id -> Message.R_id id)
  | Message.Resolve path ->
    reply_result (Clio.Server.resolve t.srv path) (fun id -> Message.R_id id)
  | Message.Path_of id -> Message.R_path (Clio.Server.path_of t.srv id)
  | Message.List_logs path ->
    reply_result (Clio.Server.list_logs t.srv path) (fun ds ->
        Message.R_names
          (List.map (fun d -> (d.Clio.Catalog.id, d.Clio.Catalog.name, d.Clio.Catalog.perms)) ds))
  | Message.Set_perms { log; perms } ->
    reply_result (Clio.Server.set_perms t.srv ~log perms) (fun () -> Message.R_unit)
  | Message.Append { log; extra_members; force; data } ->
    reply_result
      (Clio.Server.append ~extra_members ~force t.srv ~log data)
      (fun ts -> Message.R_timestamp ts)
  | Message.Force -> reply_result (Clio.Server.force t.srv) (fun () -> Message.R_unit)
  | Message.Open_cursor { log; whence } ->
    let cursor =
      match whence with
      | Message.From_start -> Ok (Clio.Server.cursor_start t.srv ~log)
      | Message.From_end -> Clio.Server.cursor_end t.srv ~log
      | Message.From_time ts -> Clio.Server.cursor_at_time t.srv ~log ts
    in
    reply_result cursor (fun c ->
        let id = t.next_cursor in
        t.next_cursor <- id + 1;
        Hashtbl.replace t.cursors id c;
        Message.R_id id)
  | Message.Next cid -> (
    match Hashtbl.find_opt t.cursors cid with
    | None -> Message.R_error "no such cursor"
    | Some c ->
      reply_result (Clio.Server.next c) (fun e -> Message.R_entry (Option.map entry_of e)))
  | Message.Prev cid -> (
    match Hashtbl.find_opt t.cursors cid with
    | None -> Message.R_error "no such cursor"
    | Some c ->
      reply_result (Clio.Server.prev c) (fun e -> Message.R_entry (Option.map entry_of e)))
  | Message.Close_cursor cid ->
    Hashtbl.remove t.cursors cid;
    Message.R_unit
  | Message.Entry_at_or_after { log; ts } ->
    reply_result (Clio.Server.entry_at_or_after t.srv ~log ts) (fun e ->
        Message.R_entry (Option.map entry_of e))
  | Message.Entry_before { log; ts } ->
    reply_result (Clio.Server.entry_before t.srv ~log ts) (fun e ->
        Message.R_entry (Option.map entry_of e))

(* Every request gets an rpc span (the op's own span nests under it), a
   latency sample and a request count; error replies are counted too. *)
let run t (req : Message.request) : Message.response =
  Obs.Metrics.incr t.c_requests;
  let response =
    Obs.time (Clio.Server.obs t.srv) t.h_rpc (request_name req) (fun () -> run_inner t req)
  in
  (match response with Message.R_error _ -> Obs.Metrics.incr t.c_errors | _ -> ());
  response

let handle t raw =
  let response =
    match Message.decode_request raw with
    | Error e -> Message.R_error (Clio.Errors.to_string e)
    | Ok req -> ( try run t req with exn -> Message.R_error (Printexc.to_string exn))
  in
  Message.encode_response response

let open_cursors t = Hashtbl.length t.cursors
