type counters = { round_trips : int; bytes_sent : int; bytes_received : int }

type t = {
  handler : string -> string;
  latency_us : int64;
  clock : Sim.Clock.t;
  mutable c : counters;
}

let local ?(latency_us = 0L) ~clock handler =
  { handler; latency_us; clock; c = { round_trips = 0; bytes_sent = 0; bytes_received = 0 } }

let call t request =
  Sim.Clock.advance t.clock t.latency_us;
  let response = t.handler request in
  t.c <-
    {
      round_trips = t.c.round_trips + 1;
      bytes_sent = t.c.bytes_sent + String.length request;
      bytes_received = t.c.bytes_received + String.length response;
    };
  response

let counters t = t.c

let diff ~after ~before =
  {
    round_trips = after.round_trips - before.round_trips;
    bytes_sent = after.bytes_sent - before.bytes_sent;
    bytes_received = after.bytes_received - before.bytes_received;
  }

let latency_us t = t.latency_us
let round_trips t = t.c.round_trips
let bytes_sent t = t.c.bytes_sent
let bytes_received t = t.c.bytes_received
