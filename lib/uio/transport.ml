exception Timeout
exception Disconnected

type counters = { round_trips : int; bytes_sent : int; bytes_received : int }

type fault_counts = {
  mutable dropped_requests : int;
  mutable dropped_responses : int;
  mutable duplicates : int;
  mutable delays : int;
  mutable resets : int;
}

type lossy_config = {
  drop_request : float;
  drop_response : float;
  duplicate : float;
  delay : float;
  reset : float;
  timeout_us : int64;
  max_delay_us : int64;
}

let default_lossy =
  {
    drop_request = 0.05;
    drop_response = 0.05;
    duplicate = 0.05;
    delay = 0.05;
    reset = 0.02;
    timeout_us = 10_000L;
    max_delay_us = 25_000L;
  }

type t = {
  handler : string -> string;
  latency_us : int64;
  clock : Sim.Clock.t;
  mutable c : counters;
  faults : fault_counts option;
}

let local ?(latency_us = 0L) ~clock handler =
  {
    handler;
    latency_us;
    clock;
    c = { round_trips = 0; bytes_sent = 0; bytes_received = 0 };
    faults = None;
  }

(* The attempt is charged the moment the request leaves — round trip and
   request bytes count even when the handler (or a fault wrapper) raises,
   because the bytes did go out on the wire. Only the response bytes wait
   for an actual response. *)
let call t request =
  Sim.Clock.advance t.clock t.latency_us;
  t.c <-
    {
      t.c with
      round_trips = t.c.round_trips + 1;
      bytes_sent = t.c.bytes_sent + String.length request;
    };
  let response = t.handler request in
  t.c <- { t.c with bytes_received = t.c.bytes_received + String.length response };
  response

(* Faults are decided per call from the caller's [rng], so a seed fully
   determines the fault schedule. Order of checks: a reset or dropped
   request happens before the server sees anything; duplicate / delay /
   dropped response happen after the request was applied, which is exactly
   the dangerous applied-but-ack-lost window idempotency keys exist for. *)
let lossy ?(config = default_lossy) ?metrics ~rng inner =
  let fc =
    { dropped_requests = 0; dropped_responses = 0; duplicates = 0; delays = 0; resets = 0 }
  in
  let mc name = Option.map (fun m -> Obs.Metrics.counter m name) metrics in
  let m_dropreq = mc "lossy_dropped_requests" in
  let m_dropresp = mc "lossy_dropped_responses" in
  let m_dup = mc "lossy_duplicates" in
  let m_delay = mc "lossy_delays" in
  let m_reset = mc "lossy_resets" in
  let bump cm = Option.iter Obs.Metrics.incr cm in
  let handler request =
    if Sim.Rng.chance rng config.reset then begin
      fc.resets <- fc.resets + 1;
      bump m_reset;
      raise Disconnected
    end
    else if Sim.Rng.chance rng config.drop_request then begin
      (* never delivered: the client burns its whole patience window *)
      fc.dropped_requests <- fc.dropped_requests + 1;
      bump m_dropreq;
      Sim.Clock.advance inner.clock config.timeout_us;
      raise Timeout
    end
    else begin
      let response = call inner request in
      if Sim.Rng.chance rng config.duplicate then begin
        (* the network delivered the datagram twice; the server answers
           both, the client reads the first answer *)
        fc.duplicates <- fc.duplicates + 1;
        bump m_dup;
        ignore (call inner request)
      end;
      let late =
        Sim.Rng.chance rng config.delay
        && begin
             fc.delays <- fc.delays + 1;
             bump m_delay;
             let bound = Int64.to_int config.max_delay_us + 1 in
             let d = Int64.of_int (Sim.Rng.int rng (max 1 bound)) in
             Sim.Clock.advance inner.clock d;
             Int64.compare d config.timeout_us > 0
           end
      in
      if late || Sim.Rng.chance rng config.drop_response then begin
        (* applied, but the ack never made it back in time *)
        fc.dropped_responses <- fc.dropped_responses + 1;
        bump m_dropresp;
        if not late then Sim.Clock.advance inner.clock config.timeout_us;
        raise Timeout
      end;
      response
    end
  in
  {
    handler;
    latency_us = 0L;
    clock = inner.clock;
    c = { round_trips = 0; bytes_sent = 0; bytes_received = 0 };
    faults = Some fc;
  }

let counters t = t.c

let diff ~after ~before =
  {
    round_trips = after.round_trips - before.round_trips;
    bytes_sent = after.bytes_sent - before.bytes_sent;
    bytes_received = after.bytes_received - before.bytes_received;
  }

let latency_us t = t.latency_us
let clock t = t.clock
let round_trips t = t.c.round_trips
let bytes_sent t = t.c.bytes_sent
let bytes_received t = t.c.bytes_received
let faults t = t.faults

let total_faults t =
  match t.faults with
  | None -> 0
  | Some f -> f.dropped_requests + f.dropped_responses + f.duplicates + f.delays + f.resets
