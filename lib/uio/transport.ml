type t = {
  handler : string -> string;
  latency_us : int64;
  clock : Sim.Clock.t;
  mutable round_trips : int;
  mutable bytes_sent : int;
  mutable bytes_received : int;
}

let local ?(latency_us = 0L) ~clock handler =
  { handler; latency_us; clock; round_trips = 0; bytes_sent = 0; bytes_received = 0 }

let call t request =
  t.round_trips <- t.round_trips + 1;
  t.bytes_sent <- t.bytes_sent + String.length request;
  Sim.Clock.advance t.clock t.latency_us;
  let response = t.handler request in
  t.bytes_received <- t.bytes_received + String.length response;
  response

let round_trips t = t.round_trips
let bytes_sent t = t.bytes_sent
let bytes_received t = t.bytes_received
