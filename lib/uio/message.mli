(** The client-server message protocol.

    The paper's Clio is reached through the V-System's uniform I/O
    interface: "log files are named using the standard file directory
    mechanism, and are accessed and managed using the same I/O and utility
    routines that are used to access and manage conventional files" — i.e.
    clients talk to the log server over IPC. This module is that protocol:
    a binary request/response codec covering the whole public surface
    (naming, appending, cursors, time search), so a client needs only a
    transport, not the server's address space.

    {b Wire protocol v2.} The paper measures 0.5–3 ms of raw IPC per
    operation (section 3.2); protocol v2 amortizes it with fewer, bigger
    round trips:
    - {!Append_batch} carries many entries (for possibly-different log
      files) in one request, applied in arrival order with at most one
      force at batch end (group commit), answered by {!R_timestamps};
    - {!Next_chunk}/{!Prev_chunk} carry an entry/byte budget and return a
      vector of entries plus a continuation token ([seq]) and an [eof]
      flag in {!R_entries};
    - {!Hello} negotiates the version: the server answers {!R_version}
      [min(client, server)]. v1 requests (tags 1–14) still decode and get
      v1-shaped responses, so a v1 client interoperates unchanged; errors
      to v2-negotiated peers travel typed as {!R_error_t}.

    {b Wire protocol v3.} Adds end-to-end fault tolerance over lossy
    transports: the {!Keyed} envelope (tag 20) wraps any request with a
    client-generated idempotency key, letting a client retry after a lost
    acknowledgement without re-applying the operation — the server's
    per-connection dedup window replays the original response, original
    timestamps included. Error codes 14–16 travel [Degraded] (the server's
    write-path circuit breaker is open), [Timeout] and [Disconnected].

    {b Replication (server-to-server).} The [Repl_*] requests (tags 21–23),
    [R_repl_*] responses (tags 14–15) and error codes 17–18
    ([Not_primary]/[Stale_epoch]) are a v3-era extension spoken between a
    primary's shipper and a replica endpoint ({!Repl} library). Because
    WORM volumes are append-only and byte-stable, replication reduces to
    streaming verbatim settled blocks plus an explicitly-marked volatile
    tail image; every message carries the sender's epoch so a deposed
    primary is fenced with [Stale_epoch]. These messages are not part of
    the client negotiation — a plain server answers them with an error —
    so [protocol_version] stays 3.

    Cursors are server-side state named by small integers, as V-style
    file-access protocols did; the chunk [seq] makes their continuation
    tokens single-use, so a stale or replayed token is detected
    ([Errors.Cursor_expired]) instead of silently misreading. *)

type whence = From_start | From_end | From_time of int64

val protocol_version : int
(** The highest protocol version this build speaks (3). *)

(** One entry of an {!Append_batch} request. *)
type batch_item = {
  log : Clio.Ids.logfile;
  extra_members : Clio.Ids.logfile list;
  data : string;
}

(** A chunked cursor-read request: [cursor] and [seq] form the continuation
    token returned by the previous {!R_entries}; [max_entries]/[max_bytes]
    bound the reply (the server always returns at least one entry unless at
    end). *)
type chunk = { cursor : int; seq : int; max_entries : int; max_bytes : int }

(** A directory-listing row: the child's id, full path, permissions and
    number of direct sublogs (directory entries). Used by both the RPC
    client and the CLI. *)
type dir_entry = {
  id : Clio.Ids.logfile;
  path : string;
  perms : int;
  entry_count : int;
}

type request =
  | Create_log of { path : string; perms : int }
  | Ensure_log of { path : string; perms : int }
  | Resolve of string
  | Path_of of Clio.Ids.logfile
  | List_logs of string
  | Set_perms of { log : Clio.Ids.logfile; perms : int }
  | Append of {
      log : Clio.Ids.logfile;
      extra_members : Clio.Ids.logfile list;
      force : bool;
      data : string;
    }
  | Force
  | Open_cursor of { log : Clio.Ids.logfile; whence : whence }
  | Next of int
  | Prev of int
  | Close_cursor of int
  | Entry_at_or_after of { log : Clio.Ids.logfile; ts : int64 }
  | Entry_before of { log : Clio.Ids.logfile; ts : int64 }
  | Hello of { version : int }  (** v2: version negotiation *)
  | Append_batch of { force : bool; items : batch_item list }
      (** v2: group commit — one force at batch end at most *)
  | Next_chunk of chunk  (** v2: budgeted forward read *)
  | Prev_chunk of chunk  (** v2: budgeted backward read *)
  | List_dir of string  (** v2: listing with {!dir_entry} rows *)
  | Keyed of { key : int64; req : request }
      (** v3: idempotency envelope. [key] is a client-generated identifier
          for the enclosed request; the server remembers a bounded window of
          (key → response) per connection, so a retry of the same key — sent
          because the first ack was lost — replays the original response
          (same timestamps, nothing applied twice). Never nested. *)
  | Repl_frontier of { epoch : int }
      (** replication: frontier exchange. The replica answers
          {!R_repl_frontier} with its per-volume settled frontiers, so the
          shipper knows exactly which gap to stream. *)
  | Repl_blocks of {
      epoch : int;
      seq_uid : int64;
      vol_index : int;
      first_block : int;
      blocks : string list;
    }
      (** replication: a run of settled device blocks of volume
          [vol_index], verbatim bytes (invalidated all-ones blocks
          included), [blocks] occupying indices [first_block, first_block +
          length blocks). Application is idempotent: the replica skips
          blocks below its frontier and answers {!R_repl_ack}, so
          duplicated or re-sent shipments burn nothing twice. *)
  | Repl_tail of {
      epoch : int;
      seq_uid : int64;
      vol_index : int;
      block : int;
      image : string;
    }
      (** replication: the primary's volatile tail, explicitly marked as
          such — a forced block image destined for the still-unwritten
          [block]. A fully caught-up replica stages it in NVRAM (where
          promotion-time recovery replays it); a lagging replica ignores it
          and acks its unchanged frontier. *)

type entry = {
  log : Clio.Ids.logfile;
  timestamp : int64 option;
  payload : string;
}

type response =
  | R_unit
  | R_id of int
  | R_path of string
  | R_names of (int * string * int) list
      (** (id, name, perms) — the v1 listing shape, kept verbatim so v1
          clients still decode [List_logs] replies *)
  | R_timestamp of int64 option
  | R_entry of entry option
  | R_error of string  (** v1 string errors (and the unknown-code fallback) *)
  | R_version of int  (** v2: negotiated version *)
  | R_timestamps of int64 option list  (** v2: one per {!batch_item}, in order *)
  | R_entries of { entries : entry list; seq : int; eof : bool }
      (** v2: chunk payload plus the next continuation token; [eof] means
          the cursor saw the end (resp. start) of the log *)
  | R_error_t of Clio.Errors.t  (** v2: typed errors *)
  | R_dir of dir_entry list  (** v2 listing *)
  | R_repl_frontier of { epoch : int; seq_uid : int64; vols : (int * int) list }
      (** replication: the replica's epoch, the volume-sequence uid it
          holds ([0L] when empty) and one (vol_index, settled frontier)
          pair per volume it has. *)
  | R_repl_ack of { epoch : int; vol_index : int; next_block : int }
      (** replication: cumulative acknowledgement — every block of
          [vol_index] below [next_block] is settled on the replica. Doubles
          as the NACK for a shipment that would leave a gap: the replica
          answers its unchanged frontier, telling the shipper where to
          restart. *)

val is_v2_request : request -> bool

val is_v3_request : request -> bool
(** [true] exactly for {!Keyed} — requests a v2-or-older server would
    reject with an unknown-tag error. *)

val encode_request : request -> string
val decode_request : string -> (request, Clio.Errors.t) result
val encode_response : response -> string
val decode_response : string -> (response, Clio.Errors.t) result

val dir_entries : Clio.Server.t -> string -> (dir_entry list, Clio.Errors.t) result
(** The directory view both the RPC dispatcher and the CLI render: children
    of [path] (internal files excluded) with full paths and sublog counts. *)
