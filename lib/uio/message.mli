(** The client-server message protocol.

    The paper's Clio is reached through the V-System's uniform I/O
    interface: "log files are named using the standard file directory
    mechanism, and are accessed and managed using the same I/O and utility
    routines that are used to access and manage conventional files" — i.e.
    clients talk to the log server over IPC. This module is that protocol:
    a binary request/response codec covering the whole public surface
    (naming, appending, cursors, time search), so a client needs only a
    transport, not the server's address space.

    Cursors are server-side state named by small integers, as V-style
    file-access protocols did. *)

type whence = From_start | From_end | From_time of int64

type request =
  | Create_log of { path : string; perms : int }
  | Ensure_log of { path : string; perms : int }
  | Resolve of string
  | Path_of of Clio.Ids.logfile
  | List_logs of string
  | Set_perms of { log : Clio.Ids.logfile; perms : int }
  | Append of {
      log : Clio.Ids.logfile;
      extra_members : Clio.Ids.logfile list;
      force : bool;
      data : string;
    }
  | Force
  | Open_cursor of { log : Clio.Ids.logfile; whence : whence }
  | Next of int
  | Prev of int
  | Close_cursor of int
  | Entry_at_or_after of { log : Clio.Ids.logfile; ts : int64 }
  | Entry_before of { log : Clio.Ids.logfile; ts : int64 }

type entry = {
  log : Clio.Ids.logfile;
  timestamp : int64 option;
  payload : string;
}

type response =
  | R_unit
  | R_id of int
  | R_path of string
  | R_names of (int * string * int) list  (** (id, name, perms) *)
  | R_timestamp of int64 option
  | R_entry of entry option
  | R_error of string

val encode_request : request -> string
val decode_request : string -> (request, Clio.Errors.t) result
val encode_response : response -> string
val decode_response : string -> (response, Clio.Errors.t) result
