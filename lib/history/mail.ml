type message = {
  timestamp : int64;
  sender : string;
  subject : string;
  body : string;
}

type agent_event = Mark_read of { mailbox : string; upto : int64 }

type t = {
  srv : Clio.Server.t;
  agent : ((string, int64) Hashtbl.t, agent_event) Checkpoint.t;
}

let ( let* ) = Clio.Errors.( let* )
let mail_root = "/mail"
let agent_log = "/mailagent"

let encode_message m =
  let enc = Clio.Wire.Enc.create () in
  Clio.Wire.Enc.u16 enc (String.length m.sender);
  Clio.Wire.Enc.bytes enc m.sender;
  Clio.Wire.Enc.u16 enc (String.length m.subject);
  Clio.Wire.Enc.bytes enc m.subject;
  Clio.Wire.Enc.u32 enc (String.length m.body);
  Clio.Wire.Enc.bytes enc m.body;
  Clio.Wire.Enc.contents enc

let decode_message ~timestamp payload =
  let dec = Clio.Wire.Dec.of_string payload in
  let* slen = Clio.Wire.Dec.u16 dec in
  let* sender = Clio.Wire.Dec.bytes dec slen in
  let* jlen = Clio.Wire.Dec.u16 dec in
  let* subject = Clio.Wire.Dec.bytes dec jlen in
  let* blen = Clio.Wire.Dec.u32 dec in
  let* body = Clio.Wire.Dec.bytes dec blen in
  Ok { timestamp; sender; subject; body }

let encode_agent (Mark_read { mailbox; upto }) =
  let enc = Clio.Wire.Enc.create () in
  Clio.Wire.Enc.u16 enc (String.length mailbox);
  Clio.Wire.Enc.bytes enc mailbox;
  Clio.Wire.Enc.i64 enc upto;
  Clio.Wire.Enc.contents enc

let decode_agent payload =
  let dec = Clio.Wire.Dec.of_string payload in
  let* mlen = Clio.Wire.Dec.u16 dec in
  let* mailbox = Clio.Wire.Dec.bytes dec mlen in
  let* upto = Clio.Wire.Dec.i64 dec in
  Ok (Mark_read { mailbox; upto })

let apply_agent table (Mark_read { mailbox; upto }) =
  (match Hashtbl.find_opt table mailbox with
  | Some cur when Int64.compare cur upto >= 0 -> ()
  | Some _ | None -> Hashtbl.replace table mailbox upto);
  table

let create srv =
  let* _root = Clio.Server.ensure_log srv mail_root in
  let* agent =
    Checkpoint.create srv ~path:agent_log ~encode:encode_agent ~decode:decode_agent
      ~apply:apply_agent ~init:(Hashtbl.create 16)
  in
  Ok { srv; agent }

let deliver ?force t ~mailbox ~sender ~subject ~body =
  let payload = encode_message { timestamp = 0L; sender; subject; body } in
  let* ts = Clio.Server.append_path ?force t.srv ~path:(mail_root ^ "/" ^ mailbox) payload in
  match ts with
  | Some ts -> Ok ts
  | None -> Error (Clio.Errors.Bad_record "mail requires timestamped entries")

let mailboxes t =
  match Clio.Server.list_logs t.srv mail_root with
  | Error _ -> []
  | Ok ds -> List.map (fun d -> d.Clio.Catalog.name) ds

let messages ?(since = Int64.min_int) t ~mailbox =
  match Clio.Server.resolve t.srv (mail_root ^ "/" ^ mailbox) with
  | Error (Clio.Errors.No_such_log _) -> Ok []
  | Error e -> Error e
  | Ok log ->
    let* rev =
      Clio.Server.fold_entries t.srv ~log ~init:(Ok []) (fun acc e ->
          let* acc = acc in
          let ts = Option.value e.Clio.Reader.timestamp ~default:0L in
          if Int64.compare ts since <= 0 then Ok acc
          else
            let* m = decode_message ~timestamp:ts e.Clio.Reader.payload in
            Ok (m :: acc))
      |> Result.join
    in
    Ok (List.rev rev)

let read_pointer t ~mailbox =
  match Hashtbl.find_opt (Checkpoint.state t.agent) mailbox with
  | Some ts -> ts
  | None -> Int64.min_int

let unread t ~mailbox = messages ~since:(read_pointer t ~mailbox) t ~mailbox

let mark_read t ~mailbox ~upto =
  let* _ts = Checkpoint.post t.agent (Mark_read { mailbox; upto }) in
  Ok ()
