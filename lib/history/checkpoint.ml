type ('s, 'e) t = {
  srv : Clio.Server.t;
  log : Clio.Ids.logfile;
  encode : 'e -> string;
  decode : string -> ('e, Clio.Errors.t) result;
  apply : 's -> 'e -> 's;
  mutable cache : 's;
}

let ( let* ) = Clio.Errors.( let* )

let fold_log srv ~log ~decode ~apply ~until init =
  Clio.Server.fold_entries srv ~log ~init:(Ok init) (fun acc e ->
      let* s = acc in
      let in_range =
        match (until, e.Clio.Reader.timestamp) with
        | None, _ -> true
        | Some t, Some ts -> Int64.compare ts t <= 0
        | Some _, None -> true
      in
      if not in_range then Ok s
      else
        let* ev = decode e.Clio.Reader.payload in
        Ok (apply s ev))
  |> function
  | Ok r -> r
  | Error e -> Error e

let create srv ~path ~encode ~decode ~apply ~init =
  let* log = Clio.Server.ensure_log srv path in
  let* cache = fold_log srv ~log ~decode ~apply ~until:None init in
  Ok { srv; log; encode; decode; apply; cache }

let server t = t.srv
let log t = t.log
let state t = t.cache

let post ?force t ev =
  let* ts = Clio.Server.append ?force t.srv ~log:t.log (t.encode ev) in
  t.cache <- t.apply t.cache ev;
  Ok ts

let rebuild t ~init =
  let* cache = fold_log t.srv ~log:t.log ~decode:t.decode ~apply:t.apply ~until:None init in
  t.cache <- cache;
  Ok ()

let state_at t ~time ~init =
  fold_log t.srv ~log:t.log ~decode:t.decode ~apply:t.apply ~until:(Some time) init
