(** Security audit trails (section 1).

    "A logged history can be examined to monitor for, and detect,
    unauthorized or suspicious activity patterns that might represent
    security violations" — with the write-once medium guaranteeing the trail
    itself "cannot be circumvented or unduly compromised".

    Events go to per-principal sublogs of "/audit", so both whole-system
    sweeps (read "/audit") and per-principal investigations (read one
    sublog) are efficient. Includes two detectors of the kind the paper
    motivates: denial bursts and off-hours activity. *)

type outcome = Granted | Denied

type event = {
  principal : string;
  action : string;  (** e.g. "login", "open", "chmod" *)
  target : string;  (** object acted upon *)
  outcome : outcome;
}

type record = { timestamp : int64; event : event }

type t

val create : Clio.Server.t -> (t, Clio.Errors.t) result

val log_event : ?force:bool -> t -> event -> (int64, Clio.Errors.t) result

val principals : t -> string list

val events_for : t -> principal:string -> (record list, Clio.Errors.t) result
(** One principal's full trail (their sublog), oldest first. *)

val events_between : t -> from_ts:int64 -> to_ts:int64 -> (record list, Clio.Errors.t) result
(** System-wide trail slice, via the time search on "/audit". *)

val denial_bursts :
  t -> principal:string -> window_us:int64 -> threshold:int -> (int64 list, Clio.Errors.t) result
(** Timestamps at which [threshold] denials from [principal] fell within one
    [window_us] — a brute-force/guessing detector. *)

val off_hours_activity :
  t -> day_us:int64 -> work_start:int64 -> work_end:int64 -> (record list, Clio.Errors.t) result
(** Events whose time-of-day (timestamp mod [day_us]) falls outside
    [work_start, work_end). *)
