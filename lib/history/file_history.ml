type attrs = { mode : int; mtime : int64; size : int }

type event = Write of string | Chmod of int | Remove

type t = {
  srv : Clio.Server.t;
  root : string;
  root_log : Clio.Ids.logfile;
  cache : (string, string * attrs) Hashtbl.t;  (* live files only *)
}

let ( let* ) = Clio.Errors.( let* )

let encode ev =
  let enc = Clio.Wire.Enc.create () in
  (match ev with
  | Write data ->
    Clio.Wire.Enc.u8 enc 1;
    Clio.Wire.Enc.bytes enc data
  | Chmod mode ->
    Clio.Wire.Enc.u8 enc 2;
    Clio.Wire.Enc.u16 enc mode
  | Remove -> Clio.Wire.Enc.u8 enc 3);
  Clio.Wire.Enc.contents enc

let decode payload =
  if String.length payload < 1 then Error (Clio.Errors.Bad_record "empty file event")
  else
    match payload.[0] with
    | '\001' -> Ok (Write (String.sub payload 1 (String.length payload - 1)))
    | '\002' ->
      if String.length payload < 3 then Error (Clio.Errors.Bad_record "short chmod")
      else Ok (Chmod (Clio.Wire.get_u16 (Bytes.of_string payload) 1))
    | '\003' -> Ok Remove
    | c -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown file event %d" (Char.code c)))

let apply_event cache name ts = function
  | Write data ->
    let mode =
      match Hashtbl.find_opt cache name with Some (_, a) -> a.mode | None -> 0o644
    in
    Hashtbl.replace cache name (data, { mode; mtime = ts; size = String.length data })
  | Chmod mode -> (
    match Hashtbl.find_opt cache name with
    | Some (data, a) -> Hashtbl.replace cache name (data, { a with mode; mtime = ts })
    | None -> ())
  | Remove -> Hashtbl.remove cache name

let file_name_of t (e : Clio.Reader.entry) =
  let path = Clio.Server.path_of t.srv e.Clio.Reader.log in
  let prefix = t.root ^ "/" in
  let plen = String.length prefix in
  if String.length path > plen && String.sub path 0 plen = prefix then
    Some (String.sub path plen (String.length path - plen))
  else None

let replay t =
  Hashtbl.reset t.cache;
  let* () =
    Clio.Server.fold_entries t.srv ~log:t.root_log ~init:(Ok ()) (fun acc e ->
        let* () = acc in
        match file_name_of t e with
        | None -> Ok () (* not a per-file sublog entry *)
        | Some name ->
          let* ev = decode e.Clio.Reader.payload in
          let ts = Option.value e.Clio.Reader.timestamp ~default:0L in
          apply_event t.cache name ts ev;
          Ok ())
    |> function
    | Ok r -> r
    | Error e -> Error e
  in
  Ok ()

let create srv ~root =
  let* root_log = Clio.Server.ensure_log srv root in
  let t = { srv; root; root_log; cache = Hashtbl.create 64 } in
  let* () = replay t in
  Ok t

let refresh = replay

let file_log t name = Clio.Server.ensure_log t.srv (t.root ^ "/" ^ name)

let post ?force t name ev =
  let* log = file_log t name in
  let* ts = Clio.Server.append ?force t.srv ~log (encode ev) in
  apply_event t.cache name (Option.value ts ~default:0L) ev;
  Ok ()

let write_file ?force t ~name data = post ?force t name (Write data)
let set_mode t ~name mode = post t name (Chmod mode)
let remove t ~name = post t name Remove

let read_file t ~name =
  match Hashtbl.find_opt t.cache name with
  | Some (data, _) -> Ok data
  | None -> Error (Clio.Errors.No_such_log name)

let stat t ~name =
  match Hashtbl.find_opt t.cache name with
  | Some (_, a) -> Ok a
  | None -> Error (Clio.Errors.No_such_log name)

let list_files t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.cache [] |> List.sort compare

let fold_file_history t name ~init f =
  match Clio.Server.resolve t.srv (t.root ^ "/" ^ name) with
  | Error (Clio.Errors.No_such_log _) -> Ok init
  | Error e -> Error e
  | Ok log ->
    Clio.Server.fold_entries t.srv ~log ~init:(Ok init) (fun acc e ->
        let* s = acc in
        let* ev = decode e.Clio.Reader.payload in
        Ok (f s (Option.value e.Clio.Reader.timestamp ~default:0L) ev))
    |> Result.join

let read_file_at t ~name ~time =
  fold_file_history t name ~init:None (fun current ts ev ->
      if Int64.compare ts time > 0 then current
      else
        match ev with
        | Write data -> Some data
        | Remove -> None
        | Chmod _ -> current)

let versions t ~name =
  let* rev =
    fold_file_history t name ~init:[] (fun acc ts ev ->
        match ev with Write _ -> ts :: acc | Chmod _ | Remove -> acc)
  in
  Ok (List.rev rev)
