(** A CDFS-style fragmented-file store layered on log files (section 5.2).

    The paper argues that "a general file system, such as CDFS, that has
    been designed to use append-only storage, could be implemented on top of
    our logging service ... by using a log file as its storage device. This
    would allow the same (physical) device to be shared with other
    applications." This module is that construction, including CDFS's
    "fragmented files" extension: a version need only log the {e modified}
    byte ranges (deltas), not the whole file.

    Each file's deltas and version seals live in its own sublog of the
    store root; reconstructing version [k] folds the deltas up to the k-th
    seal. Because the substrate is a log file, the store coexists with any
    other log files on the same volume sequence — the sharing claim. *)

type t

val create : Clio.Server.t -> root:string -> (t, Clio.Errors.t) result

val write : t -> name:string -> off:int -> string -> (unit, Clio.Errors.t) result
(** Log a delta: bytes [off, off+len) of the working version. Extends the
    file if it writes past the current end. *)

val truncate : t -> name:string -> int -> (unit, Clio.Errors.t) result
(** Log a truncation of the working version to [len] bytes. *)

val seal_version : t -> name:string -> (int, Clio.Errors.t) result
(** Close the working version; subsequent deltas begin the next one.
    Returns the sealed version's number (1-based). *)

val versions : t -> name:string -> (int, Clio.Errors.t) result
(** Sealed versions so far. *)

val read : ?version:int -> t -> name:string -> (string, Clio.Errors.t) result
(** [read t ~name] is the working version (all deltas); [~version:k] is the
    state at the k-th seal. Reconstruction replays the file's sublog — the
    current version is additionally cached. *)

val files : t -> (string list, Clio.Errors.t) result
