type t = {
  srv : Clio.Server.t;
  root : string;
  cache : (string, Buffer.t) Hashtbl.t;  (* working version contents *)
}

type event = Delta of int * string | Truncate of int | Seal

let ( let* ) = Clio.Errors.( let* )

let encode = function
  | Delta (off, data) ->
    let enc = Clio.Wire.Enc.create () in
    Clio.Wire.Enc.u8 enc 1;
    Clio.Wire.Enc.u32 enc off;
    Clio.Wire.Enc.bytes enc data;
    Clio.Wire.Enc.contents enc
  | Truncate len ->
    let enc = Clio.Wire.Enc.create () in
    Clio.Wire.Enc.u8 enc 2;
    Clio.Wire.Enc.u32 enc len;
    Clio.Wire.Enc.contents enc
  | Seal -> "\003"

let decode payload =
  if String.length payload < 1 then Error (Clio.Errors.Bad_record "empty logfs event")
  else
    let dec = Clio.Wire.Dec.of_string payload in
    let* tag = Clio.Wire.Dec.u8 dec in
    match tag with
    | 1 ->
      let* off = Clio.Wire.Dec.u32 dec in
      let* data = Clio.Wire.Dec.bytes dec (Clio.Wire.Dec.remaining dec) in
      Ok (Delta (off, data))
    | 2 ->
      let* len = Clio.Wire.Dec.u32 dec in
      Ok (Truncate len)
    | 3 -> Ok Seal
    | t -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown logfs event %d" t))

let apply buf = function
  | Delta (off, data) ->
    let cur = Buffer.contents buf in
    let new_len = max (String.length cur) (off + String.length data) in
    let b = Bytes.make new_len '\000' in
    Bytes.blit_string cur 0 b 0 (String.length cur);
    Bytes.blit_string data 0 b off (String.length data);
    Buffer.clear buf;
    Buffer.add_bytes buf b
  | Truncate len ->
    let cur = Buffer.contents buf in
    let keep = String.sub cur 0 (min len (String.length cur)) in
    Buffer.clear buf;
    Buffer.add_string buf keep
  | Seal -> ()

let file_path t name = t.root ^ "/" ^ name

(* Rebuild one file's working version from its sublog. *)
let load_file t name =
  let buf = Buffer.create 64 in
  let* () =
    match Clio.Server.resolve t.srv (file_path t name) with
    | Error (Clio.Errors.No_such_log _) -> Ok ()
    | Error e -> Error e
    | Ok log ->
      Clio.Server.fold_entries t.srv ~log ~init:(Ok ()) (fun acc e ->
          let* () = acc in
          let* ev = decode e.Clio.Reader.payload in
          apply buf ev;
          Ok ())
      |> Result.join
  in
  Hashtbl.replace t.cache name buf;
  Ok buf

let create srv ~root =
  let* _ = Clio.Server.ensure_log srv root in
  let t = { srv; root; cache = Hashtbl.create 16 } in
  (* Warm the cache for every existing file. *)
  let* names = Clio.Server.list_logs srv root in
  let* () =
    List.fold_left
      (fun acc d ->
        let* () = acc in
        let* _ = load_file t d.Clio.Catalog.name in
        Ok ())
      (Ok ()) names
  in
  Ok t

let working t name =
  match Hashtbl.find_opt t.cache name with
  | Some buf -> Ok buf
  | None -> load_file t name

let post t name ev =
  let* buf = working t name in
  let* _ts = Clio.Server.append_path t.srv ~path:(file_path t name) (encode ev) in
  apply buf ev;
  Ok ()

let write t ~name ~off data = post t name (Delta (off, data))
let truncate t ~name len = post t name (Truncate len)

let count_seals t name =
  match Clio.Server.resolve t.srv (file_path t name) with
  | Error (Clio.Errors.No_such_log _) -> Ok 0
  | Error e -> Error e
  | Ok log ->
    Clio.Server.fold_entries t.srv ~log ~init:(Ok 0) (fun acc e ->
        let* n = acc in
        let* ev = decode e.Clio.Reader.payload in
        Ok (match ev with Seal -> n + 1 | Delta _ | Truncate _ -> n))
    |> Result.join

let seal_version t ~name =
  let* () = post t name Seal in
  count_seals t name

let versions t ~name = count_seals t name

let read ?version t ~name =
  match version with
  | None ->
    let* buf = working t name in
    Ok (Buffer.contents buf)
  | Some k ->
    if k < 1 then Error (Clio.Errors.Bad_record "versions are 1-based")
    else
      let* log =
        match Clio.Server.resolve t.srv (file_path t name) with
        | Ok log -> Ok log
        | Error (Clio.Errors.No_such_log _) -> Error Clio.Errors.No_entry
        | Error e -> Error e
      in
      let buf = Buffer.create 64 in
      let* seen =
        Clio.Server.fold_entries t.srv ~log ~init:(Ok 0) (fun acc e ->
            let* seen = acc in
            if seen >= k then Ok seen
            else
              let* ev = decode e.Clio.Reader.payload in
              apply buf ev;
              Ok (match ev with Seal -> seen + 1 | Delta _ | Truncate _ -> seen))
        |> Result.join
      in
      if seen < k then Error Clio.Errors.No_entry else Ok (Buffer.contents buf)

let files t =
  let* ds = Clio.Server.list_logs t.srv t.root in
  Ok (List.map (fun d -> d.Clio.Catalog.name) ds |> List.sort compare)
