(** The history-based application pattern (section 4).

    "A history-based application ... uses an underlying (append-only)
    logging service for permanent storage, recording its entire persistent
    state in one or more log files. The application's current state is an
    (at least partially) cached summary of the contents of these log files.
    This state can be completely reconstructed from the log files."

    A [Checkpoint.t] captures that pattern once: applications declare an
    event codec and a fold, post events (logged, then applied to the cached
    state), and get reconstruction — both of the current state and of any
    {e historical} state ("consistently access both a new version of an
    object, and a previous version") — for free. *)

type ('s, 'e) t

val create :
  Clio.Server.t ->
  path:string ->
  encode:('e -> string) ->
  decode:(string -> ('e, Clio.Errors.t) result) ->
  apply:('s -> 'e -> 's) ->
  init:'s ->
  (('s, 'e) t, Clio.Errors.t) result
(** Opens (creating if needed) the log file at [path] and folds its existing
    entries into the cached state — this {e is} the application's recovery
    procedure. *)

val server : ('s, 'e) t -> Clio.Server.t
val log : ('s, 'e) t -> Clio.Ids.logfile

val state : ('s, 'e) t -> 's
(** The cached current state. *)

val post : ?force:bool -> ('s, 'e) t -> 'e -> (int64 option, Clio.Errors.t) result
(** Log the event, then fold it into the cache. [force] gives
    transaction-commit durability. Returns the entry's timestamp. *)

val rebuild : ('s, 'e) t -> init:'s -> (unit, Clio.Errors.t) result
(** Discard the cache and re-fold the entire log (what a restart does). *)

val state_at : ('s, 'e) t -> time:int64 -> init:'s -> ('s, Clio.Errors.t) result
(** The state as of [time]: fold only events with timestamps ≤ [time].
    History-based time travel. *)
