(** A history-based file service (section 4.1).

    "The file server maintains, in one or more log files, a file history for
    each file that it stores. The file history includes all updates to the
    contents and properties of files ... The file server can extract, from
    the file history, either the current version of a file, or an earlier
    version. (The contents of the current version are typically cached.)"

    Each file's history is a sublog of the service root, so per-file version
    scans are cheap (the sublog mechanism of section 2.1), while the root
    log replays the whole namespace on recovery. Nothing is ever erased: a
    removed file is a logged tombstone, and every earlier version remains
    readable by time. *)

type t

type attrs = { mode : int; mtime : int64; size : int }

val create : Clio.Server.t -> root:string -> (t, Clio.Errors.t) result
(** Opens the service rooted at [root] (e.g. "/fs"), replaying any existing
    history — creation and recovery are the same operation. *)

val write_file : ?force:bool -> t -> name:string -> string -> (unit, Clio.Errors.t) result
(** Store a new version of [name] (whole-file update, like most 1980s file
    servers). *)

val set_mode : t -> name:string -> int -> (unit, Clio.Errors.t) result
val remove : t -> name:string -> (unit, Clio.Errors.t) result

val read_file : t -> name:string -> (string, Clio.Errors.t) result
(** Current version, from the cache. *)

val stat : t -> name:string -> (attrs, Clio.Errors.t) result
val list_files : t -> string list
(** Live (non-removed) files, sorted. *)

val read_file_at : t -> name:string -> time:int64 -> (string option, Clio.Errors.t) result
(** The version that was current at [time]; [None] if the file did not exist
    then. Reads only the file's own sublog. *)

val versions : t -> name:string -> (int64 list, Clio.Errors.t) result
(** Timestamps of all content versions, oldest first. *)

val refresh : t -> (unit, Clio.Errors.t) result
(** Drop the cache and replay — the recovery path, exposed for tests. *)
