(** Atomic update using log files for recovery — the extension the paper
    announces in its conclusion ("we plan to implement atomic update of
    (regular) files, using log files for recovery").

    A transactional key-value store whose only persistent state is a redo
    log: every committed transaction is exactly one log entry holding all
    its writes. Atomicity falls out of the log service's entry semantics —
    an entry is either fully durable or (if a crash truncated it) never
    yielded by any reader — so there is no separate commit record, no undo,
    and recovery is plain replay. Commits are forced writes ("log entries
    are written synchronously to the log device when forced (such as on a
    transaction commit)", section 2.3.1). *)

type t
type txn

val create : Clio.Server.t -> path:string -> (t, Clio.Errors.t) result
(** Open (or recover, by replay) the store whose redo log lives at [path]. *)

val get : t -> string -> string option
val keys : t -> string list

val begin_txn : t -> txn
(** Transactions see their own tentative writes; concurrent transactions
    are isolated from each other until commit (last-committer-wins at the
    key level — the store is a recovery demonstration, not a concurrency
    -control one). *)

val put : txn -> key:string -> string -> unit
val remove : txn -> key:string -> unit
val find : txn -> string -> string option
(** Read through the transaction: tentative writes shadow the store. *)

val commit : ?force:bool -> txn -> (int64 option, Clio.Errors.t) result
(** Log all the transaction's writes as one entry ([force] defaults to
    true), then apply them to the cached state. After [commit] returns, the
    transaction is durable; if the process dies mid-commit, recovery sees
    either all of it or none of it. A transaction can be committed once. *)

val abort : txn -> unit
(** Drop the tentative writes; nothing was ever logged. *)

val replayed : t -> int
(** Committed transactions folded in by {!create} — for tests. *)
