(** A history-based electronic-mail system (section 4.2).

    "Associated with each mailbox is a log file corresponding to mail
    messages that have been delivered to this mailbox. The local mail agent
    maintains pointers into this 'mail history'. In addition, it caches
    copies of mail messages from the history ... a user's mail messages are
    permanently accessible, and the storage of the mail messages themselves
    is decoupled from the mail system's directory management and query
    facilities."

    Mailboxes are sublogs of "/mail"; the agent's own mutable state (per-user
    read pointers) is itself a log ("/mailagent"), so the whole system
    recovers by replay. Messages are never deleted — "marking read" only
    moves a pointer, as in Walnut. *)

type message = {
  timestamp : int64;  (** delivery time; unique id within the mailbox *)
  sender : string;
  subject : string;
  body : string;
}

type t

val create : Clio.Server.t -> (t, Clio.Errors.t) result
(** Open (or recover) the mail system on a log server. *)

val deliver :
  ?force:bool ->
  t ->
  mailbox:string ->
  sender:string ->
  subject:string ->
  body:string ->
  (int64, Clio.Errors.t) result
(** Append a message to a mailbox's history; returns its delivery
    timestamp. *)

val mailboxes : t -> string list

val messages : ?since:int64 -> t -> mailbox:string -> (message list, Clio.Errors.t) result
(** All messages (optionally delivered after [since]), oldest first —
    straight off the mailbox sublog. *)

val unread : t -> mailbox:string -> (message list, Clio.Errors.t) result
(** Messages after the mailbox's read pointer. *)

val mark_read : t -> mailbox:string -> upto:int64 -> (unit, Clio.Errors.t) result
(** Advance the read pointer (logged, so it survives restarts). *)

val read_pointer : t -> mailbox:string -> int64
