type stats = {
  updates : int;
  flushed : int;
  elided : int;
  bytes_submitted : int;
  bytes_logged : int;
}

type staged = { data : string; deadline : int64 }

type t = {
  srv : Clio.Server.t;
  flush_delay_us : int64;
  stage : (string, staged) Hashtbl.t;
  mutable updates : int;
  mutable flushed : int;
  mutable elided : int;
  mutable bytes_submitted : int;
  mutable bytes_logged : int;
}

let ( let* ) = Clio.Errors.( let* )

let create srv ~flush_delay_us =
  {
    srv;
    flush_delay_us;
    stage = Hashtbl.create 64;
    updates = 0;
    flushed = 0;
    elided = 0;
    bytes_submitted = 0;
    bytes_logged = 0;
  }

let flush_one t path (s : staged) =
  let* _ts = Clio.Server.append_path t.srv ~path s.data in
  t.flushed <- t.flushed + 1;
  t.bytes_logged <- t.bytes_logged + String.length s.data;
  Ok ()

let tick t ~now =
  let due =
    Hashtbl.fold
      (fun path s acc -> if Int64.compare s.deadline now <= 0 then (path, s) :: acc else acc)
      t.stage []
  in
  List.fold_left
    (fun acc (path, s) ->
      let* () = acc in
      Hashtbl.remove t.stage path;
      flush_one t path s)
    (Ok ()) due

let update t ~now ~path data =
  let* () = tick t ~now in
  t.updates <- t.updates + 1;
  t.bytes_submitted <- t.bytes_submitted + String.length data;
  (match Hashtbl.find_opt t.stage path with
  | Some _ -> t.elided <- t.elided + 1 (* superseded before it aged out *)
  | None -> ());
  (* Keep the original deadline on supersede? No staged entry survives
     longer than one delay from its FIRST pending write, bounding staleness:
     reuse the existing deadline if present. *)
  let deadline =
    match Hashtbl.find_opt t.stage path with
    | Some s -> s.deadline
    | None -> Int64.add now t.flush_delay_us
  in
  Hashtbl.replace t.stage path { data; deadline };
  Ok ()

let flush_all t =
  let all = Hashtbl.fold (fun path s acc -> (path, s) :: acc) t.stage [] in
  List.fold_left
    (fun acc (path, s) ->
      let* () = acc in
      Hashtbl.remove t.stage path;
      flush_one t path s)
    (Ok ()) all

let pending t = Hashtbl.length t.stage

let stats t =
  {
    updates = t.updates;
    flushed = t.flushed;
    elided = t.elided;
    bytes_submitted = t.bytes_submitted;
    bytes_logged = t.bytes_logged;
  }
