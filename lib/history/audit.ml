type outcome = Granted | Denied

type event = {
  principal : string;
  action : string;
  target : string;
  outcome : outcome;
}

type record = { timestamp : int64; event : event }

type t = { srv : Clio.Server.t; root : Clio.Ids.logfile }

let ( let* ) = Clio.Errors.( let* )
let audit_root = "/audit"

let encode ev =
  let enc = Clio.Wire.Enc.create () in
  Clio.Wire.Enc.u8 enc (match ev.outcome with Granted -> 1 | Denied -> 0);
  Clio.Wire.Enc.u16 enc (String.length ev.principal);
  Clio.Wire.Enc.bytes enc ev.principal;
  Clio.Wire.Enc.u16 enc (String.length ev.action);
  Clio.Wire.Enc.bytes enc ev.action;
  Clio.Wire.Enc.u16 enc (String.length ev.target);
  Clio.Wire.Enc.bytes enc ev.target;
  Clio.Wire.Enc.contents enc

let decode payload =
  let dec = Clio.Wire.Dec.of_string payload in
  let* oc = Clio.Wire.Dec.u8 dec in
  let* plen = Clio.Wire.Dec.u16 dec in
  let* principal = Clio.Wire.Dec.bytes dec plen in
  let* alen = Clio.Wire.Dec.u16 dec in
  let* action = Clio.Wire.Dec.bytes dec alen in
  let* tlen = Clio.Wire.Dec.u16 dec in
  let* target = Clio.Wire.Dec.bytes dec tlen in
  Ok { principal; action; target; outcome = (if oc = 1 then Granted else Denied) }

let create srv =
  let* root = Clio.Server.ensure_log srv audit_root in
  Ok { srv; root }

let log_event ?force t ev =
  let* ts = Clio.Server.append_path ?force t.srv ~path:(audit_root ^ "/" ^ ev.principal) (encode ev) in
  match ts with
  | Some ts -> Ok ts
  | None -> Error (Clio.Errors.Bad_record "audit requires timestamped entries")

let principals t =
  match Clio.Server.list_logs t.srv audit_root with
  | Error _ -> []
  | Ok ds -> List.map (fun d -> d.Clio.Catalog.name) ds

let collect t ~log ~keep =
  let* rev =
    Clio.Server.fold_entries t.srv ~log ~init:(Ok []) (fun acc e ->
        let* acc = acc in
        let timestamp = Option.value e.Clio.Reader.timestamp ~default:0L in
        let* event = decode e.Clio.Reader.payload in
        let r = { timestamp; event } in
        Ok (if keep r then r :: acc else acc))
    |> Result.join
  in
  Ok (List.rev rev)

let events_for t ~principal =
  match Clio.Server.resolve t.srv (audit_root ^ "/" ^ principal) with
  | Error (Clio.Errors.No_such_log _) -> Ok []
  | Error e -> Error e
  | Ok log -> collect t ~log ~keep:(fun _ -> true)

let events_between t ~from_ts ~to_ts =
  (* Jump to from_ts with the timestamp search, then scan while <= to_ts. *)
  let* cursor = Clio.Server.cursor_at_time t.srv ~log:t.root from_ts in
  let rec loop acc =
    let* e = Clio.Server.next cursor in
    match e with
    | None -> Ok (List.rev acc)
    | Some e -> (
      let ts = Option.value e.Clio.Reader.timestamp ~default:0L in
      if Int64.compare ts to_ts > 0 then Ok (List.rev acc)
      else if Int64.compare ts from_ts < 0 then loop acc
      else
        let* event = decode e.Clio.Reader.payload in
        loop ({ timestamp = ts; event } :: acc))
  in
  loop []

let denial_bursts t ~principal ~window_us ~threshold =
  let* records = events_for t ~principal in
  let denials =
    List.filter_map
      (fun r -> match r.event.outcome with Denied -> Some r.timestamp | Granted -> None)
      records
    |> Array.of_list
  in
  let n = Array.length denials in
  let hits = ref [] in
  for i = 0 to n - threshold do
    let j = i + threshold - 1 in
    if Int64.compare (Int64.sub denials.(j) denials.(i)) window_us <= 0 then
      hits := denials.(j) :: !hits
  done;
  Ok (List.rev !hits)

let off_hours_activity t ~day_us ~work_start ~work_end =
  collect t ~log:t.root ~keep:(fun r ->
      let tod = Int64.rem r.timestamp day_us in
      Int64.compare tod work_start < 0 || Int64.compare tod work_end >= 0)
