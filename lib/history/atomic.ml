type op = Put of string * string | Remove of string

type t = {
  srv : Clio.Server.t;
  log : Clio.Ids.logfile;
  state : (string, string) Hashtbl.t;
  mutable replayed : int;
}

type txn = {
  store : t;
  writes : (string, op) Hashtbl.t;  (* keyed by key: last write wins *)
  mutable order : string list;  (* keys in first-write order, newest first *)
  mutable committed : bool;
}

let ( let* ) = Clio.Errors.( let* )

let encode_ops ops =
  let enc = Clio.Wire.Enc.create () in
  Clio.Wire.Enc.u16 enc (List.length ops);
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
        Clio.Wire.Enc.u8 enc 1;
        Clio.Wire.Enc.u16 enc (String.length k);
        Clio.Wire.Enc.bytes enc k;
        Clio.Wire.Enc.u32 enc (String.length v);
        Clio.Wire.Enc.bytes enc v
      | Remove k ->
        Clio.Wire.Enc.u8 enc 2;
        Clio.Wire.Enc.u16 enc (String.length k);
        Clio.Wire.Enc.bytes enc k)
    ops;
  Clio.Wire.Enc.contents enc

let decode_ops payload =
  let dec = Clio.Wire.Dec.of_string payload in
  let* n = Clio.Wire.Dec.u16 dec in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      let* kind = Clio.Wire.Dec.u8 dec in
      let* klen = Clio.Wire.Dec.u16 dec in
      let* k = Clio.Wire.Dec.bytes dec klen in
      match kind with
      | 1 ->
        let* vlen = Clio.Wire.Dec.u32 dec in
        let* v = Clio.Wire.Dec.bytes dec vlen in
        go (i + 1) (Put (k, v) :: acc)
      | 2 -> go (i + 1) (Remove k :: acc)
      | k -> Error (Clio.Errors.Bad_record (Printf.sprintf "unknown txn op %d" k))
  in
  go 0 []

let apply_ops state ops =
  List.iter
    (fun op ->
      match op with
      | Put (k, v) -> Hashtbl.replace state k v
      | Remove k -> Hashtbl.remove state k)
    ops

let create srv ~path =
  let* log = Clio.Server.ensure_log srv path in
  let t = { srv; log; state = Hashtbl.create 64; replayed = 0 } in
  let* () =
    Clio.Server.fold_entries srv ~log ~init:(Ok ()) (fun acc e ->
        let* () = acc in
        let* ops = decode_ops e.Clio.Reader.payload in
        apply_ops t.state ops;
        t.replayed <- t.replayed + 1;
        Ok ())
    |> Result.join
  in
  Ok t

let get t k = Hashtbl.find_opt t.state k
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.state [] |> List.sort compare
let replayed t = t.replayed

let begin_txn store =
  { store; writes = Hashtbl.create 8; order = []; committed = false }

let note_key txn k = if not (Hashtbl.mem txn.writes k) then txn.order <- k :: txn.order

let put txn ~key v =
  assert (not txn.committed);
  note_key txn key;
  Hashtbl.replace txn.writes key (Put (key, v))

let remove txn ~key =
  assert (not txn.committed);
  note_key txn key;
  Hashtbl.replace txn.writes key (Remove key)

let find txn k =
  match Hashtbl.find_opt txn.writes k with
  | Some (Put (_, v)) -> Some v
  | Some (Remove _) -> None
  | None -> get txn.store k

let ops_of txn = List.rev_map (fun k -> Hashtbl.find txn.writes k) txn.order

let commit ?(force = true) txn =
  if txn.committed then Error (Clio.Errors.Bad_record "transaction already committed")
  else begin
    let ops = ops_of txn in
    if ops = [] then begin
      txn.committed <- true;
      Ok None
    end
    else begin
      (* The single append is the commit point: the whole transaction is one
         log entry. *)
      let* ts = Clio.Server.append ~force txn.store.srv ~log:txn.store.log (encode_ops ops) in
      apply_ops txn.store.state ops;
      txn.committed <- true;
      Ok ts
    end
  end

let abort txn = txn.committed <- true
