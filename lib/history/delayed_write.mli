(** Delayed-write staging for a history-based file server (section 4.1).

    The paper's feasibility argument leans on Ousterhout's BSD measurements:
    "more than 50% of newly-written information is deleted within 5
    minutes. This suggests that with an appropriate delayed write (or a
    'flush back') policy, most newly-written data will not lead to writes
    to the log device."

    This module is that policy: updates sit in a volatile staging buffer
    for [flush_delay_us]; an update superseded before its deadline never
    reaches the log. The elision statistics quantify the claim (see the
    [ablate-delay] benchmark). *)

type t

type stats = {
  updates : int;  (** updates submitted *)
  flushed : int;  (** updates that reached the log *)
  elided : int;  (** updates superseded while staged — never logged *)
  bytes_submitted : int;
  bytes_logged : int;
}

val create : Clio.Server.t -> flush_delay_us:int64 -> t

val update : t -> now:int64 -> path:string -> string -> (unit, Clio.Errors.t) result
(** Stage a whole-file update; flushes anything whose deadline has passed
    first. A staged update to the same path is superseded (elided). *)

val tick : t -> now:int64 -> (unit, Clio.Errors.t) result
(** Flush every staged update whose deadline is ≤ [now]. *)

val flush_all : t -> (unit, Clio.Errors.t) result
(** Drain the stage (shutdown). Staged data is volatile until flushed —
    exactly the delayed-write durability trade the paper accepts. *)

val pending : t -> int
val stats : t -> stats
