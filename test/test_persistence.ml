(* Integration over real file-backed volumes: a server's state persists
   across process-style close/reopen cycles, and the deep verifier stays
   happy. Also the regression test for the recovery ordering bug fsck
   found: sublog ancestor bits must survive recovery. *)

open Testkit

let with_tmp_dir f =
  let dir = Filename.temp_file "clio_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let vol_path dir i = Filename.concat dir (Printf.sprintf "vol-%03d.img" i)

let alloc dir ~vol_index =
  match Worm.File_device.create ~path:(vol_path dir vol_index) ~block_size:512 ~capacity:256 () with
  | Ok d -> Ok (Worm.File_device.io d)
  | Error e -> Error (Clio.Errors.Device e)

let config = { Clio.Config.default with block_size = 512; fanout = 4 }

let open_store dir =
  let rec devices i acc =
    let p = vol_path dir i in
    if Sys.file_exists p then
      devices (i + 1) (Worm.File_device.io (Result.get_ok (Worm.File_device.open_existing ~path:p)) :: acc)
    else List.rev acc
  in
  ok
    (Clio.Server.recover ~config ~clock:(Sim.Clock.simulated ~start:1_000_000L ())
       ~alloc_volume:(alloc dir) ~devices:(devices 0 []) ())

let test_file_backed_roundtrip () =
  with_tmp_dir (fun dir ->
      let srv =
        ok
          (Clio.Server.create ~config ~clock:(Sim.Clock.simulated ())
             ~alloc_volume:(alloc dir) ())
      in
      let log = ok (Clio.Server.create_log srv "/persist") in
      let payloads = List.init 200 (fun i -> Printf.sprintf "durable %03d padding" i) in
      List.iter (fun p -> ignore (ok (Clio.Server.append srv ~log p))) payloads;
      ignore (ok (Clio.Server.force srv));
      (* "Process restart": reopen from the files alone. *)
      let srv2 = open_store dir in
      let log2 = ok (Clio.Server.resolve srv2 "/persist") in
      check_payloads "persisted" payloads (all_payloads srv2 ~log:log2);
      let r = ok (Clio.Server.fsck ~verify_entrymap:true srv2) in
      Alcotest.(check (list string)) "healthy store" [] r.Clio.Fsck.errors)

let test_file_backed_multivolume () =
  with_tmp_dir (fun dir ->
      let srv =
        ok (Clio.Server.create ~config ~clock:(Sim.Clock.simulated ()) ~alloc_volume:(alloc dir) ())
      in
      let log = ok (Clio.Server.create_log srv "/big") in
      for i = 0 to 499 do
        ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "%04d %s" i (String.make 300 'f'))))
      done;
      ignore (ok (Clio.Server.force srv));
      Alcotest.(check bool) "multiple volume files" true
        (Sys.file_exists (vol_path dir 1));
      let srv2 = open_store dir in
      let log2 = ok (Clio.Server.resolve srv2 "/big") in
      Alcotest.(check int) "all entries across files" 500
        (List.length (all_payloads srv2 ~log:log2)))

let test_reopen_append_reopen () =
  with_tmp_dir (fun dir ->
      let srv =
        ok (Clio.Server.create ~config ~clock:(Sim.Clock.simulated ()) ~alloc_volume:(alloc dir) ())
      in
      ignore (ok (Clio.Server.append_path srv ~path:"/gens" "gen0"));
      ignore (ok (Clio.Server.force srv));
      let srv2 = open_store dir in
      ignore (ok (Clio.Server.append_path srv2 ~path:"/gens" "gen1"));
      ignore (ok (Clio.Server.force srv2));
      let srv3 = open_store dir in
      let log = ok (Clio.Server.resolve srv3 "/gens") in
      check_payloads "all generations" [ "gen0"; "gen1" ] (all_payloads srv3 ~log))

(* Regression: sublog ancestor bits in recovered pending maps (fsck deep
   found this on the CLI store). *)
let test_sublog_locate_after_recovery () =
  let f = make_fixture ~config:{ Clio.Config.default with fanout = 4 } () in
  let parent = create_log f "/mail" in
  let smith = create_log f "/mail/smith" in
  let jones = create_log f "/mail/jones" in
  ignore (append f ~log:smith "for smith");
  ignore (append f ~log:jones "for jones");
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  (* Reading the PARENT must find both entries even though only the pending
     bitmaps (not device entrymap entries) cover these recent blocks. *)
  let parent = ok (Clio.Server.resolve srv (Clio.Server.path_of srv parent)) in
  check_payloads "parent sees children after recovery" [ "for smith"; "for jones" ]
    (all_payloads srv ~log:parent);
  let r = ok (Clio.Server.fsck ~verify_entrymap:true srv) in
  Alcotest.(check (list string)) "deep fsck clean" [] r.Clio.Fsck.errors

let test_deep_hierarchy_recovery_equivalence () =
  let f = make_fixture ~config:{ Clio.Config.default with fanout = 4 } () in
  let _a = create_log f "/a" in
  let _ab = create_log f "/a/b" in
  let abc = create_log f "/a/b/c" in
  let ad = create_log f "/a/d" in
  let rng = Sim.Rng.create 17L in
  for i = 0 to 200 do
    let log = if Sim.Rng.bool rng then abc else ad in
    ignore (append f ~log (Printf.sprintf "x%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let st = Clio.Server.state srv in
  let v = ok (Clio.State.active st) in
  List.iter
    (fun path ->
      let log = ok (Clio.Server.resolve srv path) in
      for pos = 1 to Clio.Vol.written_limit v do
        let truth, _ = ok (Baseline.Naive_scan.prev_block st v ~log ~before:pos) in
        let fast = ok (Clio.Locate.prev_block st v ~log ~before:pos) in
        Alcotest.(check (option int)) (Printf.sprintf "%s prev %d" path pos) truth fast
      done)
    [ "/a"; "/a/b"; "/a/b/c"; "/a/d" ]

let () =
  run "persistence"
    [
      ( "file-device",
        [
          Alcotest.test_case "roundtrip" `Quick test_file_backed_roundtrip;
          Alcotest.test_case "multivolume" `Quick test_file_backed_multivolume;
          Alcotest.test_case "reopen/append/reopen" `Quick test_reopen_append_reopen;
        ] );
      ( "hierarchy-recovery",
        [
          Alcotest.test_case "sublog locate after recovery" `Quick test_sublog_locate_after_recovery;
          Alcotest.test_case "deep hierarchy equivalence" `Quick test_deep_hierarchy_recovery_equivalence;
        ] );
    ]
