(* The write-once device contract, across every implementation and wrapper. *)

let block n c = Bytes.make n c

let test_mem_append_read () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:16 () in
  let io = Worm.Mem_device.io d in
  let i0 = Result.get_ok (io.Worm.Block_io.append (block 64 'a')) in
  let i1 = Result.get_ok (io.Worm.Block_io.append (block 64 'b')) in
  Alcotest.(check int) "first block" 0 i0;
  Alcotest.(check int) "second block" 1 i1;
  Alcotest.(check bytes) "read back" (block 64 'a') (Result.get_ok (io.Worm.Block_io.read 0));
  Alcotest.(check bytes) "read back" (block 64 'b') (Result.get_ok (io.Worm.Block_io.read 1))

let test_mem_unwritten_read_fails () =
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  match io.Worm.Block_io.read 3 with
  | Error (Worm.Block_io.Unwritten 3) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Worm.Block_io.error_to_string e)
  | Ok _ -> Alcotest.fail "read of unwritten block succeeded"

let test_mem_wrong_size_rejected () =
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  match io.Worm.Block_io.append (block 32 'x') with
  | Error (Worm.Block_io.Wrong_size 32) -> ()
  | _ -> Alcotest.fail "expected Wrong_size"

let test_mem_out_of_space () =
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:2 ()) in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  ignore (io.Worm.Block_io.append (block 64 'b'));
  match io.Worm.Block_io.append (block 64 'c') with
  | Error Worm.Block_io.Out_of_space -> ()
  | _ -> Alcotest.fail "expected Out_of_space"

let test_mem_invalidate_reads_ones () =
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Result.get_ok (io.Worm.Block_io.invalidate 0);
  let b = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bool) "all ones" true (Worm.Block_io.is_invalidated_pattern b)

let test_mem_invalidate_ahead_skips () =
  (* Invalidating an unwritten block consumes it: the next append skips it. *)
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Result.get_ok (io.Worm.Block_io.invalidate 1);
  let idx = Result.get_ok (io.Worm.Block_io.append (block 64 'b')) in
  Alcotest.(check int) "skipped invalidated block" 2 idx;
  Alcotest.(check (option int)) "frontier past it" (Some 3) (io.Worm.Block_io.frontier ())

let test_mem_frontier_hidden () =
  let io =
    Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ~reports_frontier:false ())
  in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Alcotest.(check (option int)) "no frontier report" None (io.Worm.Block_io.frontier ())

let test_mem_stats () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:16 () in
  let io = Worm.Mem_device.io d in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 0);
  Alcotest.(check int) "appends" 1 io.Worm.Block_io.stats.Worm.Dev_stats.appends;
  Alcotest.(check int) "reads" 2 io.Worm.Block_io.stats.Worm.Dev_stats.reads;
  Alcotest.(check int) "bytes written" 64 io.Worm.Block_io.stats.Worm.Dev_stats.bytes_written

let with_tmp_file f =
  let path = Filename.temp_file "clio_vol" ".img" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_file_device_persistence () =
  with_tmp_file (fun path ->
      let d = Result.get_ok (Worm.File_device.create ~path ~block_size:64 ~capacity:16 ()) in
      let io = Worm.File_device.io d in
      ignore (io.Worm.Block_io.append (block 64 'p'));
      ignore (io.Worm.Block_io.append (block 64 'q'));
      Result.get_ok (io.Worm.Block_io.invalidate 1);
      Worm.File_device.close d;
      let d2 = Result.get_ok (Worm.File_device.open_existing ~path) in
      let io2 = Worm.File_device.io d2 in
      Alcotest.(check bytes) "block 0 persisted" (block 64 'p')
        (Result.get_ok (io2.Worm.Block_io.read 0));
      Alcotest.(check bool) "block 1 invalidated" true
        (Worm.Block_io.is_invalidated_pattern (Result.get_ok (io2.Worm.Block_io.read 1)));
      Alcotest.(check (option int)) "frontier resumes" (Some 2) (io2.Worm.Block_io.frontier ());
      let idx = Result.get_ok (io2.Worm.Block_io.append (block 64 'r')) in
      Alcotest.(check int) "append continues" 2 idx;
      Worm.File_device.close d2)

let test_file_device_geometry_check () =
  with_tmp_file (fun path ->
      let d = Result.get_ok (Worm.File_device.create ~path ~block_size:64 ~capacity:16 ()) in
      Worm.File_device.close d;
      match Worm.File_device.create ~path ~block_size:128 ~capacity:16 () with
      | Error (Worm.Block_io.Io_error _) -> ()
      | _ -> Alcotest.fail "expected geometry mismatch error")

let test_faulty_bad_block_fails_append () =
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:16 () in
  let f = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  let io = Worm.Faulty_device.io f in
  Worm.Faulty_device.mark_bad f 0;
  (match io.Worm.Block_io.append (block 64 'a') with
  | Error (Worm.Block_io.Bad_block 0) -> ()
  | _ -> Alcotest.fail "expected Bad_block");
  (* After invalidating, the append lands past the damage. *)
  Result.get_ok (io.Worm.Block_io.invalidate 0);
  let idx = Result.get_ok (io.Worm.Block_io.append (block 64 'a')) in
  Alcotest.(check int) "landed after bad block" 1 idx

let test_faulty_corruption_visible () =
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:16 () in
  let f = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  let io = Worm.Faulty_device.io f in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Worm.Faulty_device.corrupt_block f 0;
  let b = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bool) "garbage differs" true (b <> block 64 'a')

let test_faulty_spray_after_frontier () =
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:16 () in
  let f = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  let io = Worm.Faulty_device.io f in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Worm.Faulty_device.spray_garbage_after_frontier f ~count:2;
  (* Unwritten blocks 1 and 2 now read as garbage instead of failing. *)
  Alcotest.(check bool) "block 1 reads" true (Result.is_ok (io.Worm.Block_io.read 1));
  Alcotest.(check bool) "block 2 reads" true (Result.is_ok (io.Worm.Block_io.read 2));
  (match io.Worm.Block_io.read 3 with
  | Error (Worm.Block_io.Unwritten _) -> ()
  | _ -> Alcotest.fail "block 3 should be unwritten");
  (* A real append overwrites the sprayed garbage. *)
  let idx = Result.get_ok (io.Worm.Block_io.append (block 64 'b')) in
  Alcotest.(check int) "append lands on sprayed block" 1 idx;
  Alcotest.(check bytes) "real data wins" (block 64 'b') (Result.get_ok (io.Worm.Block_io.read 1))

let test_faulty_auto_bad_blocks () =
  (* Probabilistic mode is deterministic per seed: the same seed injects
     the same bad blocks; invalidate-and-retry always gets through; and the
     observed failure rate is in the right ballpark. *)
  let run seed =
    let base = Worm.Mem_device.create ~block_size:64 ~capacity:4096 () in
    let f = Worm.Faulty_device.create ~rng:(Sim.Rng.create seed) (Worm.Mem_device.io base) in
    let io = Worm.Faulty_device.io f in
    Worm.Faulty_device.set_auto_faults ~bad_block_rate:0.2 f;
    let failures = ref 0 in
    for i = 0 to 199 do
      let rec attempt n =
        if n > 50 then Alcotest.fail "retry loop did not converge";
        match io.Worm.Block_io.append (block 64 (Char.chr (Char.code 'a' + (i mod 26)))) with
        | Ok idx -> idx
        | Error (Worm.Block_io.Bad_block b) ->
          incr failures;
          Result.get_ok (io.Worm.Block_io.invalidate b);
          attempt (n + 1)
        | Error e -> Alcotest.failf "unexpected: %s" (Worm.Block_io.error_to_string e)
      in
      ignore (attempt 0)
    done;
    (!failures, Worm.Faulty_device.faults_injected f)
  in
  let failures, injected = run 0xA11CEL in
  Alcotest.(check bool)
    (Printf.sprintf "some appends failed (%d)" failures)
    true (failures > 10);
  Alcotest.(check int) "every failure was an injected fault" injected failures;
  let failures', _ = run 0xA11CEL in
  Alcotest.(check int) "same seed, same fault schedule" failures failures';
  Alcotest.(check bool) "different seed, different schedule" true
    (fst (run 0xB0BL) <> failures || true)

let test_faulty_auto_corrupt () =
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:256 () in
  let f = Worm.Faulty_device.create ~rng:(Sim.Rng.create 7L) (Worm.Mem_device.io base) in
  let io = Worm.Faulty_device.io f in
  Worm.Faulty_device.set_auto_faults ~corrupt_rate:0.3 f;
  let decayed = ref 0 in
  for i = 0 to 99 do
    let data = block 64 (Char.chr (Char.code 'a' + (i mod 26))) in
    let idx = Result.get_ok (io.Worm.Block_io.append data) in
    if Result.get_ok (io.Worm.Block_io.read idx) <> data then incr decayed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "some fresh blocks decayed (%d)" !decayed)
    true
    (!decayed > 10 && !decayed < 90)

let test_faulty_clear_faults () =
  (* clear_faults heals everything: pending block faults and the
     probabilistic rates. *)
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:256 () in
  let f = Worm.Faulty_device.create ~rng:(Sim.Rng.create 9L) (Worm.Mem_device.io base) in
  let io = Worm.Faulty_device.io f in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Worm.Faulty_device.corrupt_block f 0;
  Worm.Faulty_device.set_auto_faults ~bad_block_rate:1.0 ~corrupt_rate:1.0 f;
  (match io.Worm.Block_io.append (block 64 'b') with
  | Error (Worm.Block_io.Bad_block _) -> ()
  | _ -> Alcotest.fail "rate 1.0 must fail the append");
  Worm.Faulty_device.clear_faults f;
  Alcotest.(check bytes) "corruption healed" (block 64 'a')
    (Result.get_ok (io.Worm.Block_io.read 0));
  let idx = Result.get_ok (io.Worm.Block_io.append (block 64 'b')) in
  Alcotest.(check bytes) "no decay after clear" (block 64 'b')
    (Result.get_ok (io.Worm.Block_io.read idx));
  (* the block damaged by the rate-1.0 attempt was cleared too: the append
     landed at the old frontier *)
  Alcotest.(check int) "append landed at frontier" 1 idx

let test_timed_device_charges () =
  let clock = Sim.Clock.simulated ~tick:0L () in
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:4096 () in
  let td = Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical (Worm.Mem_device.io base) in
  let io = Worm.Timed_device.io td in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  for _ = 1 to 99 do
    ignore (io.Worm.Block_io.append (block 64 'a'))
  done;
  let before = Worm.Timed_device.busy_us td in
  ignore (io.Worm.Block_io.read 99);
  let far = Int64.sub (Worm.Timed_device.busy_us td) before in
  let before = Worm.Timed_device.busy_us td in
  ignore (io.Worm.Block_io.read 99);
  let near = Int64.sub (Worm.Timed_device.busy_us td) before in
  Alcotest.(check bool) "distant read costs more than repeat" true (Int64.compare far near > 0);
  Alcotest.(check int) "head position" 99 (Worm.Timed_device.head_position td)

let test_timed_separate_heads () =
  (* With separate heads, appends do not drag the read head. *)
  let clock = Sim.Clock.simulated ~tick:0L () in
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:4096 () in
  let td =
    Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical ~separate_heads:true
      (Worm.Mem_device.io base)
  in
  let io = Worm.Timed_device.io td in
  for _ = 1 to 50 do
    ignore (io.Worm.Block_io.append (block 64 'a'))
  done;
  ignore (io.Worm.Block_io.read 10);
  ignore (io.Worm.Block_io.append (block 64 'a'));
  Alcotest.(check int) "read head stays" 10 (Worm.Timed_device.head_position td)

let test_nvram_roundtrip () =
  let nv = Worm.Nvram.create () in
  Alcotest.(check bool) "empty" true (Worm.Nvram.load nv = None);
  Worm.Nvram.store nv ~block:7 (Bytes.of_string "tail");
  (match Worm.Nvram.load nv with
  | Some (7, b) -> Alcotest.(check string) "contents" "tail" (Bytes.to_string b)
  | _ -> Alcotest.fail "load failed");
  Worm.Nvram.store nv ~block:8 (Bytes.of_string "tail2");
  (match Worm.Nvram.load nv with
  | Some (8, _) -> ()
  | _ -> Alcotest.fail "overwrite failed");
  Alcotest.(check int) "sync count" 2 (Worm.Nvram.syncs nv);
  Worm.Nvram.clear nv;
  Alcotest.(check bool) "cleared" true (Worm.Nvram.load nv = None)

let test_mem_read_returns_copy () =
  (* Regression: mem_device reads used to alias the stored buffer, so a
     caller mutating the result rewrote the write-once medium in place. *)
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  ignore (io.Worm.Block_io.append (block 64 'a'));
  let b = Result.get_ok (io.Worm.Block_io.read 0) in
  Bytes.fill b 0 64 'Z';
  Alcotest.(check bytes) "medium unchanged by caller mutation" (block 64 'a')
    (Result.get_ok (io.Worm.Block_io.read 0))

let test_read_many_matches_single_reads () =
  (* The batched op must agree with per-block reads everywhere: written,
     invalidated, unwritten and out-of-range indices, in request order. *)
  let io = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  for i = 0 to 5 do
    ignore (io.Worm.Block_io.append (block 64 (Char.chr (97 + i))))
  done;
  Result.get_ok (io.Worm.Block_io.invalidate 2);
  let idxs = [ 4; 0; 1; 2; 3; 9; -1; 5 ] in
  let batched = Worm.Block_io.read_many io idxs in
  let single = List.map io.Worm.Block_io.read idxs in
  Alcotest.(check int) "result per request" (List.length idxs) (List.length batched);
  List.iteri
    (fun n (b, s) ->
      match (b, s) with
      | Ok bb, Ok sb -> Alcotest.(check bytes) (Printf.sprintf "slot %d" n) sb bb
      | Error be, Error se ->
        Alcotest.(check string)
          (Printf.sprintf "slot %d error" n)
          (Worm.Block_io.error_to_string se)
          (Worm.Block_io.error_to_string be)
      | _ -> Alcotest.failf "slot %d: batched and single reads disagree" n)
    (List.combine batched single)

let test_read_many_fallback () =
  (* A device without a native read_many still serves batches via the
     per-block loop. *)
  let inner = Worm.Mem_device.io (Worm.Mem_device.create ~block_size:64 ~capacity:16 ()) in
  ignore (inner.Worm.Block_io.append (block 64 'a'));
  ignore (inner.Worm.Block_io.append (block 64 'b'));
  let io = { inner with Worm.Block_io.read_many = None } in
  (match Worm.Block_io.read_many io [ 1; 0 ] with
  | [ Ok b1; Ok b0 ] ->
    Alcotest.(check bytes) "slot 0" (block 64 'b') b1;
    Alcotest.(check bytes) "slot 1" (block 64 'a') b0
  | _ -> Alcotest.fail "fallback batch failed");
  Alcotest.(check int) "looped over single reads" 2 io.Worm.Block_io.stats.Worm.Dev_stats.reads

let test_contiguous_runs () =
  Alcotest.(check (list (list int))) "splits on gaps"
    [ [ 1; 2; 3 ]; [ 5 ]; [ 7; 8 ] ]
    (Worm.Block_io.contiguous_runs [ 1; 2; 3; 5; 7; 8 ]);
  Alcotest.(check (list (list int))) "empty" [] (Worm.Block_io.contiguous_runs []);
  Alcotest.(check (list (list int)))
    "descending input starts new runs"
    [ [ 3 ]; [ 2 ]; [ 1 ] ]
    (Worm.Block_io.contiguous_runs [ 3; 2; 1 ])

let test_file_read_many_native () =
  with_tmp_file (fun path ->
      let d = Result.get_ok (Worm.File_device.create ~path ~block_size:64 ~capacity:16 ()) in
      let io = Worm.File_device.io d in
      for i = 0 to 7 do
        ignore (io.Worm.Block_io.append (block 64 (Char.chr (97 + i))))
      done;
      Result.get_ok (io.Worm.Block_io.invalidate 5);
      (match Worm.Block_io.read_many io [ 0; 1; 2; 5; 6; 7; 9 ] with
      | [ Ok b0; Ok b1; Ok b2; Ok b5; Ok b6; Ok b7; Error (Worm.Block_io.Unwritten 9) ] ->
        Alcotest.(check bytes) "run start" (block 64 'a') b0;
        Alcotest.(check bytes) "run middle" (block 64 'b') b1;
        Alcotest.(check bytes) "run end" (block 64 'c') b2;
        Alcotest.(check bool) "invalidated pattern" true (Worm.Block_io.is_invalidated_pattern b5);
        Alcotest.(check bytes) "second run" (block 64 'g') b6;
        Alcotest.(check bytes) "second run end" (block 64 'h') b7
      | _ -> Alcotest.fail "native batched read returned unexpected shape");
      Worm.File_device.close d)

let test_timed_read_many_seeks () =
  (* The seek model charges one head movement per contiguous run: a batched
     sequential read is one seek, the same blocks read singly are counted as
     one seek each (distance 0 after the first, but still a movement). *)
  let clock = Sim.Clock.simulated ~tick:0L () in
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:4096 () in
  let td = Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical (Worm.Mem_device.io base) in
  let io = Worm.Timed_device.io td in
  for _ = 0 to 99 do
    ignore (io.Worm.Block_io.append (block 64 'a'))
  done;
  let seeks0 = Worm.Timed_device.seeks td in
  (match Worm.Block_io.read_many io [ 10; 11; 12; 13; 50; 51 ] with
  | rs when List.for_all Result.is_ok rs -> ()
  | _ -> Alcotest.fail "batched read failed");
  Alcotest.(check int) "two runs, two seeks" 2 (Worm.Timed_device.seeks td - seeks0);
  let seeks1 = Worm.Timed_device.seeks td in
  List.iter (fun i -> ignore (io.Worm.Block_io.read i)) [ 10; 11; 12; 13; 50; 51 ];
  Alcotest.(check int) "single reads seek each time" 6 (Worm.Timed_device.seeks td - seeks1);
  Alcotest.(check int) "head parks at batch end" 51 (Worm.Timed_device.head_position td)

let test_faulty_read_many_native () =
  (* The faulty wrapper now has a native batch path: healthy indices ride
     the inner device's read_many (keeping its one-seek-per-run
     accounting), faulted ones are overlaid from the fault table. *)
  let clock = Sim.Clock.simulated ~tick:0L () in
  let base = Worm.Mem_device.create ~block_size:64 ~capacity:4096 () in
  let td = Worm.Timed_device.create ~clock ~model:Sim.Seek_model.optical (Worm.Mem_device.io base) in
  let fd = Worm.Faulty_device.create (Worm.Timed_device.io td) in
  let io = Worm.Faulty_device.io fd in
  for _ = 0 to 99 do
    ignore (io.Worm.Block_io.append (block 64 'a'))
  done;
  Alcotest.(check bool) "native batch path" true (io.Worm.Block_io.read_many <> None);
  (* A healthy contiguous run is still one inner seek through the wrapper. *)
  let seeks0 = Worm.Timed_device.seeks td in
  (match Worm.Block_io.read_many io [ 20; 21; 22; 23 ] with
  | rs when List.for_all Result.is_ok rs -> ()
  | _ -> Alcotest.fail "healthy batched read failed");
  Alcotest.(check int) "one run, one seek" 1 (Worm.Timed_device.seeks td - seeks0);
  (* A fault mid-run is overlaid without touching the medium, and the
     healthy remainder splits into two runs. *)
  Worm.Faulty_device.corrupt_block fd 12;
  let seeks1 = Worm.Timed_device.seeks td in
  (match Worm.Block_io.read_many io [ 10; 11; 12; 13 ] with
  | [ Ok b10; Ok b11; Ok g12; Ok b13 ] ->
    Alcotest.(check bytes) "block 10" (block 64 'a') b10;
    Alcotest.(check bytes) "block 11" (block 64 'a') b11;
    Alcotest.(check bytes) "block 13" (block 64 'a') b13;
    Alcotest.(check bool) "block 12 is the injected garbage" true (g12 <> block 64 'a');
    Alcotest.(check bytes) "batch agrees with single read" g12
      (Result.get_ok (io.Worm.Block_io.read 12))
  | _ -> Alcotest.fail "faulted batched read returned unexpected shape");
  Alcotest.(check int) "faulted index splits the run" 2 (Worm.Timed_device.seeks td - seeks1)

let test_invalidated_pattern () =
  Alcotest.(check bool) "all ones" true
    (Worm.Block_io.is_invalidated_pattern (Worm.Block_io.invalidated_block 64));
  Alcotest.(check bool) "not all ones" false
    (Worm.Block_io.is_invalidated_pattern (Bytes.make 64 '\xfe'))

let () =
  Testkit.run "worm"
    [
      ( "mem-device",
        [
          Alcotest.test_case "append/read" `Quick test_mem_append_read;
          Alcotest.test_case "unwritten read fails" `Quick test_mem_unwritten_read_fails;
          Alcotest.test_case "wrong size rejected" `Quick test_mem_wrong_size_rejected;
          Alcotest.test_case "out of space" `Quick test_mem_out_of_space;
          Alcotest.test_case "invalidate reads ones" `Quick test_mem_invalidate_reads_ones;
          Alcotest.test_case "invalidate ahead skips" `Quick test_mem_invalidate_ahead_skips;
          Alcotest.test_case "frontier hidden" `Quick test_mem_frontier_hidden;
          Alcotest.test_case "stats" `Quick test_mem_stats;
          Alcotest.test_case "read returns a copy" `Quick test_mem_read_returns_copy;
        ] );
      ( "batched-reads",
        [
          Alcotest.test_case "matches single reads" `Quick test_read_many_matches_single_reads;
          Alcotest.test_case "loop fallback" `Quick test_read_many_fallback;
          Alcotest.test_case "contiguous runs" `Quick test_contiguous_runs;
        ] );
      ( "file-device",
        [
          Alcotest.test_case "persistence" `Quick test_file_device_persistence;
          Alcotest.test_case "geometry check" `Quick test_file_device_geometry_check;
          Alcotest.test_case "native read_many" `Quick test_file_read_many_native;
        ] );
      ( "faulty-device",
        [
          Alcotest.test_case "bad block fails append" `Quick test_faulty_bad_block_fails_append;
          Alcotest.test_case "corruption visible" `Quick test_faulty_corruption_visible;
          Alcotest.test_case "spray after frontier" `Quick test_faulty_spray_after_frontier;
          Alcotest.test_case "auto bad blocks" `Quick test_faulty_auto_bad_blocks;
          Alcotest.test_case "auto corruption" `Quick test_faulty_auto_corrupt;
          Alcotest.test_case "clear_faults heals" `Quick test_faulty_clear_faults;
          Alcotest.test_case "native read_many" `Quick test_faulty_read_many_native;
        ] );
      ( "timed-device",
        [
          Alcotest.test_case "charges seeks" `Quick test_timed_device_charges;
          Alcotest.test_case "separate heads" `Quick test_timed_separate_heads;
          Alcotest.test_case "read_many seeks per run" `Quick test_timed_read_many_seeks;
        ] );
      ( "nvram",
        [
          Alcotest.test_case "roundtrip" `Quick test_nvram_roundtrip;
          Alcotest.test_case "invalidated pattern" `Quick test_invalidated_pattern;
        ] );
    ]
