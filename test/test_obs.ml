(* The observability layer: JSON rendering, histograms, metrics, tracing,
   the Stats field table, and the server-level metrics surface. *)

open Testkit

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------- json ---------------------------------- *)

let test_json_render () =
  let open Obs.Json in
  Alcotest.(check string)
    "object"
    {|{"a":1,"b":"x","c":[true,null],"d":2.5}|}
    (to_string
       (Obj [ ("a", Int 1); ("b", Str "x"); ("c", List [ Bool true; Null ]); ("d", Float 2.5) ]));
  Alcotest.(check string) "escaping" {|"q\"s\\b\nn\tt"|} (to_string (Str "q\"s\\b\nn\tt"));
  Alcotest.(check string) "control chars" {|"\u0001"|} (to_string (Str "\x01"));
  Alcotest.(check string) "nan is null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "integral float" "3.0" (to_string (Float 3.0))

(* ----------------------------- histogram -------------------------------- *)

let test_histogram_exact_range () =
  let h = Obs.Histogram.create () in
  for v = 0 to 31 do
    Obs.Histogram.record h v
  done;
  Alcotest.(check int) "count" 32 (Obs.Histogram.count h);
  Alcotest.(check int) "sum" (31 * 32 / 2) (Obs.Histogram.sum h);
  Alcotest.(check int) "min" 0 (Obs.Histogram.min_value h);
  Alcotest.(check int) "max" 31 (Obs.Histogram.max_value h);
  (* Below the exact limit the percentile is exact. *)
  Alcotest.(check bool) "p50 near 16" true (abs_float (Obs.Histogram.percentile h 0.5 -. 15.5) <= 1.0)

let test_histogram_quantile_error () =
  (* Uniform samples over a wide range: quantile estimates must stay within
     the structural ~6% relative error bound. *)
  let h = Obs.Histogram.create () in
  for v = 1 to 100_000 do
    Obs.Histogram.record h v
  done;
  List.iter
    (fun q ->
      let est = Obs.Histogram.percentile h q in
      let exact = q *. 100_000. in
      let rel = abs_float (est -. exact) /. exact in
      if rel > 0.07 then Alcotest.failf "q=%.2f est=%.0f exact=%.0f rel=%.3f" q est exact rel)
    [ 0.5; 0.9; 0.99; 0.999 ];
  Alcotest.(check int) "max tracked exactly" 100_000 (Obs.Histogram.max_value h)

let test_histogram_negative_and_reset () =
  let h = Obs.Histogram.create () in
  Obs.Histogram.record h (-5);
  Alcotest.(check int) "clamped to 0" 0 (Obs.Histogram.max_value h);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Obs.Histogram.count h);
  Alcotest.(check bool) "empty mean is nan" true (Float.is_nan (Obs.Histogram.mean h))

(* ------------------------------ metrics --------------------------------- *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "ops" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter m "ops" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "get-or-create shares state" 6 (Obs.Metrics.counter_value c);
  Obs.Metrics.gauge m "depth" 3;
  Obs.Metrics.gauge m "depth" 7;
  Alcotest.(check (list (pair string int))) "gauge overwrites" [ ("depth", 7) ]
    (Obs.Metrics.gauges m);
  let h = Obs.Metrics.histogram m "lat_us" in
  Obs.Histogram.record h 10;
  Alcotest.(check (list string)) "sorted names" [ "lat_us" ]
    (List.map fst (Obs.Metrics.histograms m));
  (match Obs.Metrics.to_json m with
  | Obs.Json.Obj fields ->
    Alcotest.(check (list string)) "json sections" [ "counters"; "gauges"; "histograms" ]
      (List.map fst fields)
  | _ -> Alcotest.fail "metrics json must be an object");
  Obs.Metrics.reset m;
  Alcotest.(check int) "reset zeroes counters" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "reset zeroes histograms" 0 (Obs.Histogram.count h)

(* ------------------------------- trace ---------------------------------- *)

let mk_trace () =
  let t = ref 0 in
  let now () = !t in
  let tr = Obs.Trace.create ~capacity:4 ~now () in
  (tr, t)

let test_trace_disabled_is_free () =
  let tr, _ = mk_trace () in
  let tok = Obs.Trace.enter tr "op" in
  Obs.Trace.exit tr tok;
  Alcotest.(check int) "no spans retained" 0 (List.length (Obs.Trace.spans tr))

let test_trace_nesting_and_ring () =
  let tr, t = mk_trace () in
  Obs.Trace.set_enabled tr true;
  let outer = Obs.Trace.enter tr "append" in
  t := 5;
  let inner = Obs.Trace.enter tr "flush" in
  t := 9;
  Obs.Trace.exit tr inner;
  t := 10;
  Obs.Trace.exit tr outer;
  (match Obs.Trace.spans tr with
  | [ a; b ] ->
    Alcotest.(check string) "inner finishes first" "flush" a.Obs.Trace.name;
    Alcotest.(check int) "inner depth" 1 a.Obs.Trace.depth;
    Alcotest.(check int) "inner duration" 4 a.Obs.Trace.dur_us;
    Alcotest.(check string) "outer second" "append" b.Obs.Trace.name;
    Alcotest.(check int) "outer depth" 0 b.Obs.Trace.depth;
    Alcotest.(check int) "outer duration" 10 b.Obs.Trace.dur_us
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* The ring keeps only the newest [capacity] spans. *)
  for i = 0 to 9 do
    Obs.Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let names = List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.spans tr) in
  Alcotest.(check (list string)) "bounded, newest kept" [ "s6"; "s7"; "s8"; "s9" ] names

let test_trace_sink_jsonl () =
  let tr, t = mk_trace () in
  Obs.Trace.set_enabled tr true;
  let lines = ref [] in
  Obs.Trace.set_sink tr (Some (fun l -> lines := l :: !lines));
  Obs.Trace.with_span tr "op" (fun () -> t := 3);
  Alcotest.(check int) "one line" 1 (List.length !lines);
  Alcotest.(check bool) "line mentions op" true (contains ~affix:{|"name":"op"|} (List.hd !lines));
  let jsonl = Obs.Trace.to_jsonl tr in
  Alcotest.(check bool) "jsonl ends with newline" true (String.get jsonl (String.length jsonl - 1) = '\n')

(* ----------------------------- stats table ------------------------------ *)

let test_stats_field_table_complete () =
  (* Drift guard: every mutable int field of Stats.t must appear in the
     field table — adding a field without extending the table breaks
     reset/snapshot/diff/to_json silently otherwise. All fields are
     immediate ints, so the record's runtime size equals its field count. *)
  let s = Clio.Stats.create () in
  let n_fields = List.length (Clio.Stats.fields s) in
  Alcotest.(check int) "table covers every record field" (Obj.size (Obj.repr s)) n_fields;
  (* Round-trip each field through its getter/setter. *)
  List.iteri (fun i (name, _) -> ignore (Clio.Stats.set_field s name (i + 1))) (Clio.Stats.fields s);
  List.iteri
    (fun i (name, v) -> Alcotest.(check int) (name ^ " set") (i + 1) v)
    (Clio.Stats.fields s);
  Alcotest.(check bool) "unknown field rejected" false (Clio.Stats.set_field s "no_such" 1);
  (* reset/snapshot/diff derive from the same table. *)
  let snap = Clio.Stats.snapshot s in
  Alcotest.(check (list (pair string int))) "snapshot equal" (Clio.Stats.fields s)
    (Clio.Stats.fields snap);
  let d = Clio.Stats.diff ~after:snap ~before:snap in
  List.iter (fun (name, v) -> Alcotest.(check int) (name ^ " diff zero") 0 v) (Clio.Stats.fields d);
  Clio.Stats.reset s;
  List.iter (fun (name, v) -> Alcotest.(check int) (name ^ " reset") 0 v) (Clio.Stats.fields s)

(* --------------------------- emission ordering -------------------------- *)

let entrymap_entries_in_medium_order srv =
  (* Scan blocks in device order and decode every entrymap record. *)
  let st = Clio.Server.state srv in
  let v = ok (Clio.State.active st) in
  let fanout = Clio.Vol.fanout v in
  let out = ref [] in
  for b = 1 to Clio.Vol.written_limit v - 1 do
    match Clio.Vol.view_block v b with
    | Clio.Vol.Records recs ->
      Array.iter
        (fun (r : Clio.Block_format.record) ->
          if r.Clio.Block_format.header.Clio.Header.logfile = Clio.Ids.entrymap then
            match Clio.Entrymap.decode ~fanout r.Clio.Block_format.payload with
            | Ok e -> out := e :: !out
            | Error _ -> ())
        recs
    | _ -> ()
  done;
  List.rev !out

let test_multi_level_boundary_emission_order () =
  (* Regression for the deferred-emission queue: at a block index divisible
     by N^2, both the level-1 and level-2 entrymap entries become due at
     once. They must reach the medium in capture order — level 1 (covering
     the last N blocks) before level 2 (covering the last N^2) — matching
     what the locate tree expects near boundaries. The old list-append code
     preserved order at O(n^2) cost; the queue must preserve it at O(1). *)
  let config = { Clio.Config.default with block_size = 256; fanout = 2 } in
  let f = make_fixture ~config ~block_size:256 ~capacity:64 () in
  let log = create_log f "/emit" in
  let filler = String.make 200 'e' in
  for i = 0 to 19 do
    ignore (append f ~log (Printf.sprintf "%02d%s" i filler))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let entries = entrymap_entries_in_medium_order f.srv in
  Alcotest.(check bool) "has level-2 entries" true
    (List.exists (fun e -> e.Clio.Entrymap.level = 2) entries);
  (* For every boundary where multiple levels were due, lower levels must
     appear first: walking the medium, a level-l entry with base b is always
     preceded by the level-(l-1) entry of base b + N^l - N^(l-1). *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      if b.Clio.Entrymap.base + Clio.Config.pow_fanout config b.Clio.Entrymap.level
         = a.Clio.Entrymap.base + Clio.Config.pow_fanout config a.Clio.Entrymap.level
      then
        Alcotest.(check bool)
          (Printf.sprintf "levels ascend at shared boundary (base %d)" a.Clio.Entrymap.base)
          true
          (a.Clio.Entrymap.level < b.Clio.Entrymap.level);
      check rest
    | _ -> ()
  in
  check entries;
  (* And the log still reads back fully. *)
  Alcotest.(check int) "all entries readable" 20 (List.length (all_payloads f.srv ~log))

(* -------------------------- server obs surface -------------------------- *)

let test_server_metrics_surface () =
  let f = make_fixture () in
  let log = create_log f "/m" in
  for i = 0 to 49 do
    ignore (append f ~log (Printf.sprintf "entry %d padding padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  ignore (all_payloads f.srv ~log);
  let m = Clio.Server.metrics f.srv in
  let hist name = List.assoc name (Obs.Metrics.histograms m) in
  Alcotest.(check int) "append histogram counts every append" 50
    (Obs.Histogram.count (hist "append_us"));
  Alcotest.(check bool) "flush histogram non-empty" true
    (Obs.Histogram.count (hist "flush_us") > 0);
  Alcotest.(check bool) "locate histogram non-empty" true
    (Obs.Histogram.count (hist "locate_us") > 0);
  Alcotest.(check bool) "read histogram non-empty" true
    (Obs.Histogram.count (hist "read_entry_us") > 0);
  Alcotest.(check bool) "cache counters mirrored" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter m "cache_hits") > 0);
  (* The exported document embeds stats / cache / device / volumes /
     breaker. *)
  (match Clio.Server.metrics_obj f.srv with
  | Obs.Json.Obj fields ->
    List.iter
      (fun k ->
        Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k fields))
      [
        "counters"; "gauges"; "histograms"; "stats"; "cache"; "device"; "volumes"; "breaker";
      ]
  | _ -> Alcotest.fail "metrics_obj must be an object");
  let js = Clio.Server.metrics_json f.srv in
  Alcotest.(check bool) "json mentions p99" true (contains ~affix:{|"p99"|} js)

let test_server_tracing_spans () =
  let config = { Clio.Config.default with trace_ops = true } in
  let f = make_fixture ~config () in
  Alcotest.(check bool) "trace_ops enables tracing" true (Clio.Server.tracing f.srv);
  let log = create_log f "/t" in
  for i = 0 to 9 do
    ignore (append f ~log (Printf.sprintf "entry %d with some padding here" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let spans = Clio.Server.trace_spans f.srv in
  let names = List.map (fun s -> s.Obs.Trace.name) spans in
  Alcotest.(check bool) "append spans" true (List.mem "append" names);
  Alcotest.(check bool) "force span" true (List.mem "force" names);
  let flushes = List.filter (fun s -> s.Obs.Trace.name = "flush") spans in
  Alcotest.(check bool) "flush spans nest" true
    (flushes <> [] && List.for_all (fun s -> s.Obs.Trace.depth >= 1) flushes);
  let jsonl = Clio.Server.trace_jsonl f.srv in
  Alcotest.(check bool) "jsonl one line per span" true
    (List.length (String.split_on_char '\n' (String.trim jsonl)) = List.length spans);
  Clio.Server.clear_trace f.srv;
  Alcotest.(check int) "clear" 0 (List.length (Clio.Server.trace_spans f.srv));
  Clio.Server.set_tracing f.srv false;
  ignore (append f ~log "untraced");
  Alcotest.(check int) "disabled traces nothing" 0 (List.length (Clio.Server.trace_spans f.srv))

let test_tracing_off_by_default () =
  let f = make_fixture () in
  let log = create_log f "/off" in
  ignore (append f ~log "x");
  Alcotest.(check bool) "off by default" false (Clio.Server.tracing f.srv);
  Alcotest.(check int) "no spans" 0 (List.length (Clio.Server.trace_spans f.srv))

let () =
  Testkit.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "render+escape" `Quick test_json_render ] );
      ( "histogram",
        [
          Alcotest.test_case "exact range" `Quick test_histogram_exact_range;
          Alcotest.test_case "quantile error" `Quick test_histogram_quantile_error;
          Alcotest.test_case "negative+reset" `Quick test_histogram_negative_and_reset;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "trace",
        [
          Alcotest.test_case "disabled free" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "nesting+ring" `Quick test_trace_nesting_and_ring;
          Alcotest.test_case "sink jsonl" `Quick test_trace_sink_jsonl;
        ] );
      ( "stats",
        [ Alcotest.test_case "field table drift guard" `Quick test_stats_field_table_complete ] );
      ( "writer",
        [
          Alcotest.test_case "multi-level emission order" `Quick
            test_multi_level_boundary_emission_order;
        ] );
      ( "server",
        [
          Alcotest.test_case "metrics surface" `Quick test_server_metrics_surface;
          Alcotest.test_case "tracing spans" `Quick test_server_tracing_spans;
          Alcotest.test_case "tracing off by default" `Quick test_tracing_off_by_default;
        ] );
    ]
