(** Shared helpers for the test suites. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Clio.Errors.to_string e)

let err = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

(** A test fixture: a server over in-memory WORM devices, with every piece a
    simulated crash must preserve kept addressable. *)
type fixture = {
  mutable srv : Clio.Server.t;
  clock : Sim.Clock.t;
  nvram : Worm.Nvram.t option;
  config : Clio.Config.t;
  devices : (int, Worm.Mem_device.t) Hashtbl.t;
  alloc : vol_index:int -> (Worm.Block_io.t, Clio.Errors.t) result;
}

let make_fixture ?(config = Clio.Config.default) ?(block_size = 256) ?(capacity = 1024)
    ?(nvram = true) ?(reports_frontier = true) () =
  let config = { config with Clio.Config.block_size } in
  let clock = Sim.Clock.simulated () in
  let devices = Hashtbl.create 4 in
  let alloc ~vol_index =
    let d = Worm.Mem_device.create ~block_size ~capacity ~reports_frontier () in
    Hashtbl.replace devices vol_index d;
    Ok (Worm.Mem_device.io d)
  in
  let nvram = if nvram then Some (Worm.Nvram.create ()) else None in
  let srv = ok (Clio.Server.create ~config ~clock ?nvram ~alloc_volume:alloc ()) in
  { srv; clock; nvram; config; devices; alloc }

let fixture_devices f =
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) f.devices []
  |> List.sort compare
  |> List.map (fun (_, d) -> Worm.Mem_device.io d)

(** Simulate a crash: throw the server away, recover from devices (+NVRAM). *)
let crash_and_recover f =
  let srv =
    ok
      (Clio.Server.recover ~config:f.config ~clock:f.clock ?nvram:f.nvram
         ~alloc_volume:f.alloc ~devices:(fixture_devices f) ())
  in
  f.srv <- srv;
  srv

let append f ~log ?extra_members ?force payload =
  ok (Clio.Server.append ?extra_members ?force f.srv ~log payload)

let create_log f path = ok (Clio.Server.create_log f.srv path)

let all_payloads srv ~log =
  List.rev
    (ok
       (Clio.Server.fold_entries srv ~log ~init:[] (fun acc e ->
            e.Clio.Reader.payload :: acc)))

let all_payloads_backward srv ~log =
  let c = ok (Clio.Server.cursor_end srv ~log) in
  let rec go acc =
    match ok (Clio.Server.prev c) with
    | Some e -> go (e.Clio.Reader.payload :: acc)
    | None -> acc
  in
  go []

(* Both the block cache and the locate memo: a "cold" measurement must not
   be silently warmed by memoized entrymap decodes. *)
let drop_caches srv =
  let st = Clio.Server.state srv in
  Array.iter (fun v -> Blockcache.Cache.drop v.Clio.Vol.cache) st.Clio.State.vols;
  Clio.Read_memo.clear st.Clio.State.read_memo

let check_payloads = Alcotest.(check (list string))

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let run name suites = Alcotest.run ~compact:true name suites
