(* Entry-header encoding (section 2.2's 2/10-byte headers + extensions). *)

let encode_to_block h =
  let enc = Clio.Wire.Enc.create () in
  Clio.Header.encode enc h;
  let s = Clio.Wire.Enc.contents enc in
  let block = Bytes.make 64 '\000' in
  Bytes.blit_string s 0 block 0 (String.length s);
  (block, String.length s)

let roundtrip h =
  let block, len = encode_to_block h in
  let h2, stop = Testkit.ok (Clio.Header.decode block ~pos:0) in
  Alcotest.(check int) "consumed bytes" len stop;
  Alcotest.(check int) "byte_size agrees" len (Clio.Header.byte_size h);
  h2

let test_minimal () =
  let h = Clio.Header.make 42 in
  Alcotest.(check int) "version 1" 1 h.Clio.Header.version;
  Alcotest.(check int) "2 bytes" 2 (Clio.Header.byte_size h);
  let h2 = roundtrip h in
  Alcotest.(check int) "logfile" 42 h2.Clio.Header.logfile;
  Alcotest.(check bool) "no ts" true (h2.Clio.Header.timestamp = None)

let test_timestamped () =
  let h = Clio.Header.make ~timestamp:123456789L 7 in
  Alcotest.(check int) "version 2" 2 h.Clio.Header.version;
  Alcotest.(check int) "10 bytes" 10 (Clio.Header.byte_size h);
  let h2 = roundtrip h in
  Alcotest.(check (option int64)) "ts" (Some 123456789L) h2.Clio.Header.timestamp

let test_continuation () =
  let h = Clio.Header.continuation 9 in
  Alcotest.(check bool) "not a start" false (Clio.Header.is_start h);
  let h2 = roundtrip h in
  Alcotest.(check int) "id" 9 h2.Clio.Header.logfile;
  Alcotest.(check bool) "still continuation" false (Clio.Header.is_start h2);
  Alcotest.(check int) "4 bytes" 4 (Clio.Header.byte_size h);
  let tagged = Clio.Header.continuation ~chain:0xBEEF 9 in
  Alcotest.(check int) "chain tag survives" 0xBEEF (roundtrip tagged).Clio.Header.chain

let test_multi_member () =
  let h = Clio.Header.make ~timestamp:5L ~extra_members:[ 10; 11; 12 ] 9 in
  Alcotest.(check int) "version 4" 4 h.Clio.Header.version;
  Alcotest.(check int) "byte size" (11 + 6) (Clio.Header.byte_size h);
  let h2 = roundtrip h in
  Alcotest.(check (list int)) "members" [ 9; 10; 11; 12 ] (Clio.Header.members h2)

let test_multi_member_without_ts_gets_one () =
  let h = Clio.Header.make ~extra_members:[ 10 ] 9 in
  Alcotest.(check bool) "ts forced" true (h.Clio.Header.timestamp <> None)

let test_max_logfile_id () =
  let h = Clio.Header.make 4095 in
  let h2 = roundtrip h in
  Alcotest.(check int) "12-bit id" 4095 h2.Clio.Header.logfile

let test_decode_truncated () =
  let block = Bytes.make 1 '\000' in
  match Clio.Header.decode block ~pos:0 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_decode_bad_version () =
  let block = Bytes.make 8 '\000' in
  Clio.Wire.set_u16 block 0 ((9 lsl 12) lor 5);
  match Clio.Header.decode block ~pos:0 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected unknown version error"

let test_decode_truncated_timestamp () =
  let block = Bytes.make 4 '\000' in
  Clio.Wire.set_u16 block 0 ((2 lsl 12) lor 5);
  match Clio.Header.decode block ~pos:0 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected truncated timestamp"

let gen_header =
  QCheck2.Gen.(
    let id = int_range 0 4095 in
    let ts = map (fun v -> Int64.of_int (abs v)) int in
    oneof
      [
        map (fun i -> Clio.Header.make i) id;
        map2 (fun i t -> Clio.Header.make ~timestamp:t i) id ts;
        map (fun i -> Clio.Header.continuation i) id;
        map2 (fun i c -> Clio.Header.continuation ~chain:c i) id (int_range 0 0xFFFF);
        map3
          (fun i t extras -> Clio.Header.make ~timestamp:t ~extra_members:extras i)
          id ts
          (list_size (int_range 1 8) id);
      ])

let prop_roundtrip =
  Testkit.qtest "headers roundtrip" gen_header (fun h ->
      let block, len = encode_to_block h in
      match Clio.Header.decode block ~pos:0 with
      | Error _ -> false
      | Ok (h2, stop) ->
        stop = len
        && h2.Clio.Header.version = h.Clio.Header.version
        && h2.Clio.Header.logfile = h.Clio.Header.logfile
        && h2.Clio.Header.timestamp = h.Clio.Header.timestamp
        && h2.Clio.Header.extra_members = h.Clio.Header.extra_members)

let prop_decode_at_offset =
  Testkit.qtest "decode works at any offset" QCheck2.Gen.(pair gen_header (int_range 0 20))
    (fun (h, off) ->
      let enc = Clio.Wire.Enc.create () in
      Clio.Header.encode enc h;
      let s = Clio.Wire.Enc.contents enc in
      let block = Bytes.make 64 '\xAA' in
      Bytes.blit_string s 0 block off (String.length s);
      match Clio.Header.decode block ~pos:off with
      | Ok (h2, stop) -> stop = off + String.length s && h2.Clio.Header.logfile = h.Clio.Header.logfile
      | Error _ -> false)

let () =
  Testkit.run "header"
    [
      ( "header",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "timestamped" `Quick test_timestamped;
          Alcotest.test_case "continuation" `Quick test_continuation;
          Alcotest.test_case "multi-member" `Quick test_multi_member;
          Alcotest.test_case "multi-member ts forced" `Quick test_multi_member_without_ts_gets_one;
          Alcotest.test_case "max id" `Quick test_max_logfile_id;
          Alcotest.test_case "decode truncated" `Quick test_decode_truncated;
          Alcotest.test_case "decode bad version" `Quick test_decode_bad_version;
          Alcotest.test_case "decode truncated ts" `Quick test_decode_truncated_timestamp;
          prop_roundtrip;
          prop_decode_at_offset;
        ] );
    ]
