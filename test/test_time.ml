(* Timestamp search (section 2.1) and asynchronous entry identification. *)

open Testkit

(* A log whose entry payloads record their own timestamps, for ground truth. *)
let build_timed_log ?(entries = 300) ?(gap = 100L) f =
  let log = create_log f "/timed" in
  let stamps = ref [] in
  for i = 0 to entries - 1 do
    Sim.Clock.advance f.clock gap;
    let ts = Option.get (append f ~log (Printf.sprintf "entry %d" i)) in
    stamps := ts :: !stamps
  done;
  ignore (ok (Clio.Server.force f.srv));
  (log, Array.of_list (List.rev !stamps))

let test_first_at_or_after_exact () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  List.iter
    (fun i ->
      let e = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log stamps.(i))) in
      Alcotest.(check string) (Printf.sprintf "exact ts %d" i) (Printf.sprintf "entry %d" i)
        e.Clio.Reader.payload)
    [ 0; 1; 7; 100; 150; 298; 299 ]

let test_first_at_or_after_between () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  (* A time strictly between entries i and i+1 must yield i+1. *)
  List.iter
    (fun i ->
      let between = Int64.add stamps.(i) 1L in
      let e = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log between)) in
      Alcotest.(check string) (Printf.sprintf "between %d and %d" i (i + 1))
        (Printf.sprintf "entry %d" (i + 1))
        e.Clio.Reader.payload)
    [ 0; 42; 200; 298 ]

let test_before_everything_and_after_everything () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  let first = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log 0L)) in
  Alcotest.(check string) "ancient time -> first entry" "entry 0" first.Clio.Reader.payload;
  Alcotest.(check bool) "far future -> none" true
    (ok (Clio.Server.entry_at_or_after f.srv ~log (Int64.add stamps.(299) 1_000_000L)) = None)

let test_last_before () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  List.iter
    (fun i ->
      let e = Option.get (ok (Clio.Server.entry_before f.srv ~log stamps.(i))) in
      Alcotest.(check string) (Printf.sprintf "before ts %d" i) (Printf.sprintf "entry %d" (i - 1))
        e.Clio.Reader.payload)
    [ 1; 50; 299 ];
  Alcotest.(check bool) "before the dawn -> none" true
    (ok (Clio.Server.entry_before f.srv ~log stamps.(0)) = None)

let test_time_filtering_per_sublog () =
  let f = make_fixture () in
  let a = ok (Clio.Server.ensure_log f.srv "/m/a") in
  let b = ok (Clio.Server.ensure_log f.srv "/m/b") in
  let mid = ref 0L in
  for i = 0 to 99 do
    Sim.Clock.advance f.clock 10L;
    let ts = Option.get (append f ~log:(if i mod 2 = 0 then a else b) (Printf.sprintf "%d" i)) in
    if i = 50 then mid := ts
  done;
  (* Searching log a from mid must land on the next a-entry (52). *)
  let e = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log:a (Int64.add !mid 1L))) in
  Alcotest.(check string) "sublog time search" "52" e.Clio.Reader.payload

let test_seek_probe_count_logarithmic () =
  let f = make_fixture ~capacity:8192 () in
  let log, stamps = build_timed_log ~entries:3000 f in
  ignore log;
  let st = Clio.Server.state f.srv in
  let before = (Clio.Server.stats f.srv).Clio.Stats.time_probe_reads in
  ignore (ok (Clio.Time_index.seek st stamps.(1500)));
  let probes = (Clio.Server.stats f.srv).Clio.Stats.time_probe_reads - before in
  let v = ok (Clio.State.active st) in
  let blocks = Clio.Vol.written_limit v in
  (* N-ary search probes at most fanout * levels + a few, far below b. *)
  Alcotest.(check bool)
    (Printf.sprintf "probes %d << blocks %d" probes blocks)
    true
    (probes < blocks / 4)

let test_seek_block_resolution_correct () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  ignore log;
  let st = Clio.Server.state f.srv in
  List.iter
    (fun i ->
      let pos = ok (Clio.Time_index.seek st stamps.(i)) in
      let v = ok (Clio.State.vol st pos.Clio.Assemble.vol) in
      (* The block's first timestamp must be <= target... *)
      (match Clio.Vol.first_timestamp v pos.Clio.Assemble.block with
      | Some t -> Alcotest.(check bool) "first_ts <= target" true (Int64.compare t stamps.(i) <= 0)
      | None -> ());
      (* ...and the next block's must be > target (it is the last such). *)
      match Clio.Vol.first_timestamp v (pos.Clio.Assemble.block + 1) with
      | Some t -> Alcotest.(check bool) "next block past target" true (Int64.compare t stamps.(i) > 0)
      | None -> ())
    [ 10; 100; 290 ]

let test_entry_id_find () =
  (* Section 2.1's async identification: client seq + client timestamp. *)
  let f = make_fixture () in
  let log = create_log f "/async" in
  let client_stamps = Array.make 100 0L in
  for i = 0 to 99 do
    Sim.Clock.advance f.clock 1000L;
    (* The client's clock is skewed by up to 400us from the server's. *)
    client_stamps.(i) <- Int64.add (Sim.Clock.peek f.clock) (Int64.of_int ((i mod 9) * 100 - 400));
    ignore (append f ~log (Clio.Entry_id.wrap ~seq:(Int64.of_int i) (Printf.sprintf "payload %d" i)))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  List.iter
    (fun i ->
      match
        ok
          (Clio.Entry_id.find st ~log ~seq:(Int64.of_int i) ~client_ts:client_stamps.(i)
             ~max_skew_us:2000L)
      with
      | Some e ->
        let _, payload = ok (Clio.Entry_id.unwrap e.Clio.Reader.payload) in
        Alcotest.(check string) (Printf.sprintf "found %d" i) (Printf.sprintf "payload %d" i) payload
      | None -> Alcotest.failf "entry %d not found" i)
    [ 0; 13; 50; 99 ];
  (* A sequence number that was never written is not found. *)
  Alcotest.(check bool) "absent seq" true
    (ok (Clio.Entry_id.find st ~log ~seq:777L ~client_ts:client_stamps.(50) ~max_skew_us:2000L)
    = None)

let test_entry_id_wrap_unwrap () =
  let w = Clio.Entry_id.wrap ~seq:42L "hello" in
  let seq, payload = ok (Clio.Entry_id.unwrap w) in
  Alcotest.(check int64) "seq" 42L seq;
  Alcotest.(check string) "payload" "hello" payload;
  match Clio.Entry_id.unwrap "short" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected unwrap failure"

let test_cursor_at_time_bidirectional () =
  let f = make_fixture () in
  let log, stamps = build_timed_log f in
  let c = ok (Clio.Server.cursor_at_time f.srv ~log stamps.(100)) in
  (* Forward from the seek point reaches entry 100 quickly. *)
  let rec forward_until_100 () =
    match ok (Clio.Server.next c) with
    | Some e when e.Clio.Reader.payload = "entry 100" -> true
    | Some _ -> forward_until_100 ()
    | None -> false
  in
  Alcotest.(check bool) "reaches entry 100" true (forward_until_100 ())

let () =
  run "time"
    [
      ( "search",
        [
          Alcotest.test_case "at-or-after exact" `Quick test_first_at_or_after_exact;
          Alcotest.test_case "at-or-after between" `Quick test_first_at_or_after_between;
          Alcotest.test_case "boundaries" `Quick test_before_everything_and_after_everything;
          Alcotest.test_case "last before" `Quick test_last_before;
          Alcotest.test_case "per-sublog" `Quick test_time_filtering_per_sublog;
          Alcotest.test_case "probe count logarithmic" `Quick test_seek_probe_count_logarithmic;
          Alcotest.test_case "block resolution" `Quick test_seek_block_resolution_correct;
          Alcotest.test_case "cursor at time" `Quick test_cursor_at_time_bidirectional;
        ] );
      ( "entry-id",
        [
          Alcotest.test_case "wrap/unwrap" `Quick test_entry_id_wrap_unwrap;
          Alcotest.test_case "find by seq+ts" `Quick test_entry_id_find;
        ] );
    ]
