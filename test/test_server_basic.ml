(* Server facade: naming, appending, reading, sublogs, multi-membership. *)

open Testkit

let test_create_and_append_read () =
  let f = make_fixture () in
  let log = create_log f "/app" in
  List.iter (fun s -> ignore (append f ~log s)) [ "one"; "two"; "three" ];
  check_payloads "forward" [ "one"; "two"; "three" ] (all_payloads f.srv ~log);
  check_payloads "backward" [ "one"; "two"; "three" ] (all_payloads_backward f.srv ~log)

let test_empty_log_reads_nothing () =
  let f = make_fixture () in
  let log = create_log f "/empty" in
  check_payloads "empty forward" [] (all_payloads f.srv ~log);
  Alcotest.(check bool) "no first" true (ok (Clio.Server.first_entry f.srv ~log) = None);
  Alcotest.(check bool) "no last" true (ok (Clio.Server.last_entry f.srv ~log) = None)

let test_empty_payload_entries () =
  (* "Null" entries — the paper's section 3.2 write benchmark uses them. *)
  let f = make_fixture () in
  let log = create_log f "/null" in
  for _ = 1 to 10 do
    ignore (append f ~log "")
  done;
  Alcotest.(check int) "ten null entries" 10 (List.length (all_payloads f.srv ~log))

let test_timestamps_strictly_increase () =
  let f = make_fixture () in
  let log = create_log f "/ts" in
  let ts = List.init 50 (fun i -> Option.get (append f ~log (string_of_int i))) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> Int64.compare a b < 0 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing ts)

let test_first_last () =
  let f = make_fixture () in
  let log = create_log f "/fl" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "e%02d" i))
  done;
  Alcotest.(check string) "first" "e00" (Option.get (ok (Clio.Server.first_entry f.srv ~log))).Clio.Reader.payload;
  Alcotest.(check string) "last" "e99" (Option.get (ok (Clio.Server.last_entry f.srv ~log))).Clio.Reader.payload

let test_sublog_membership () =
  let f = make_fixture () in
  let parent = create_log f "/mail" in
  let smith = create_log f "/mail/smith" in
  let jones = create_log f "/mail/jones" in
  ignore (append f ~log:smith "to smith 1");
  ignore (append f ~log:jones "to jones 1");
  ignore (append f ~log:smith "to smith 2");
  check_payloads "smith sees own" [ "to smith 1"; "to smith 2" ] (all_payloads f.srv ~log:smith);
  check_payloads "jones sees own" [ "to jones 1" ] (all_payloads f.srv ~log:jones);
  check_payloads "parent sees all, in order"
    [ "to smith 1"; "to jones 1"; "to smith 2" ]
    (all_payloads f.srv ~log:parent)

let test_deep_sublog_nesting () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let _b = create_log f "/a/b" in
  let c = create_log f "/a/b/c" in
  ignore (append f ~log:c "deep");
  check_payloads "grandparent sees" [ "deep" ] (all_payloads f.srv ~log:a);
  let b = ok (Clio.Server.resolve f.srv "/a/b") in
  check_payloads "parent sees" [ "deep" ] (all_payloads f.srv ~log:b)

let test_root_log_sees_everything () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  ignore (append f ~log:a "client data");
  (* The volume-sequence log (id 0) contains client data, catalog entries,
     and any entrymap entries. *)
  let all = all_payloads f.srv ~log:Clio.Ids.root in
  Alcotest.(check bool) "root superset" true (List.length all >= 2);
  Alcotest.(check bool) "client entry present" true (List.mem "client data" all)

let test_extra_members () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  ignore (ok (Clio.Server.append f.srv ~log:a ~extra_members:[ b ] "both"));
  ignore (append f ~log:a "only a");
  check_payloads "a sees both" [ "both"; "only a" ] (all_payloads f.srv ~log:a);
  check_payloads "b sees shared" [ "both" ] (all_payloads f.srv ~log:b)

let test_append_validation () =
  let f = make_fixture () in
  (match Clio.Server.append f.srv ~log:Clio.Ids.root "x" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "append to root must fail");
  (match Clio.Server.append f.srv ~log:Clio.Ids.entrymap "x" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "append to internal must fail");
  match Clio.Server.append f.srv ~log:99 "x" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "append to unknown must fail"

let test_create_log_errors () =
  let f = make_fixture () in
  ignore (create_log f "/a");
  (match Clio.Server.create_log f.srv "/a" with
  | Error (Clio.Errors.Log_exists _) -> ()
  | _ -> Alcotest.fail "duplicate create must fail");
  (match Clio.Server.create_log f.srv "/missing/child" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "missing parent must fail");
  match Clio.Server.create_log f.srv "/" with
  | Error (Clio.Errors.Invalid_name _) -> ()
  | _ -> Alcotest.fail "creating root must fail"

let test_ensure_log_mkdir_p () =
  let f = make_fixture () in
  let id = ok (Clio.Server.ensure_log f.srv "/x/y/z") in
  Alcotest.(check int) "resolves same" id (ok (Clio.Server.resolve f.srv "/x/y/z"));
  Alcotest.(check int) "idempotent" id (ok (Clio.Server.ensure_log f.srv "/x/y/z"));
  ignore (ok (Clio.Server.resolve f.srv "/x/y"))

let test_list_logs_hides_internals () =
  let f = make_fixture () in
  ignore (create_log f "/visible");
  let names = List.map (fun d -> d.Clio.Catalog.name) (ok (Clio.Server.list_logs f.srv "/")) in
  Alcotest.(check bool) "client log listed" true (List.mem "visible" names);
  Alcotest.(check bool) "no internals" true
    (not (List.exists (fun n -> String.length n > 0 && n.[0] = '.') names))

let test_set_perms_logged () =
  let f = make_fixture () in
  let log = create_log f "/p" in
  ok (Clio.Server.set_perms f.srv ~log 0o400);
  Alcotest.(check int) "perms updated" 0o400 (Option.get (Clio.Server.descriptor f.srv log)).Clio.Catalog.perms;
  (* Survives recovery because the change was logged. *)
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/p") in
  Alcotest.(check int) "perms recovered" 0o400 (Option.get (Clio.Server.descriptor srv log)).Clio.Catalog.perms

let test_append_path_creates () =
  let f = make_fixture () in
  ignore (ok (Clio.Server.append_path f.srv ~path:"/auto/created" "hello"));
  let log = ok (Clio.Server.resolve f.srv "/auto/created") in
  check_payloads "written" [ "hello" ] (all_payloads f.srv ~log)

let test_interleaved_logs_order () =
  let f = make_fixture () in
  let logs = Array.init 8 (fun i -> create_log f (Printf.sprintf "/log%d" i)) in
  for i = 0 to 399 do
    ignore (append f ~log:logs.(i mod 8) (Printf.sprintf "%d" i))
  done;
  Array.iteri
    (fun k log ->
      let expect = List.init 50 (fun j -> Printf.sprintf "%d" ((j * 8) + k)) in
      check_payloads (Printf.sprintf "log%d isolated and ordered" k) expect
        (all_payloads f.srv ~log))
    logs

let test_cursor_mixed_directions () =
  let f = make_fixture () in
  let log = create_log f "/mix" in
  for i = 0 to 9 do
    ignore (append f ~log (string_of_int i))
  done;
  let c = ok (Clio.Server.cursor_end f.srv ~log) in
  let p () = (Option.get (ok (Clio.Server.prev c))).Clio.Reader.payload in
  let n () = (Option.get (ok (Clio.Server.next c))).Clio.Reader.payload in
  Alcotest.(check string) "prev 9" "9" (p ());
  Alcotest.(check string) "prev 8" "8" (p ());
  Alcotest.(check string) "next 8 again" "8" (n ());
  Alcotest.(check string) "next 9" "9" (n ());
  Alcotest.(check bool) "at end" true (ok (Clio.Server.next c) = None)

let test_reading_while_tail_open () =
  (* Recent, unflushed entries must be readable (in-memory tail). *)
  let f = make_fixture () in
  let log = create_log f "/tail" in
  ignore (append f ~log "unflushed");
  check_payloads "tail visible" [ "unflushed" ] (all_payloads f.srv ~log);
  check_payloads "tail visible backward" [ "unflushed" ] (all_payloads_backward f.srv ~log)

let test_many_logs_catalog_capacity () =
  let f = make_fixture ~capacity:8192 () in
  for i = 0 to 199 do
    ignore (create_log f (Printf.sprintf "/bulk%03d" i))
  done;
  Alcotest.(check int) "200 logs listed" 200 (List.length (ok (Clio.Server.list_logs f.srv "/")))

let test_entries_fill_many_blocks () =
  let f = make_fixture () in
  let log = create_log f "/big" in
  let n = 500 in
  for i = 0 to n - 1 do
    ignore (append f ~log (Printf.sprintf "entry-%04d" i))
  done;
  let got = all_payloads f.srv ~log in
  Alcotest.(check int) "all present" n (List.length got);
  Alcotest.(check bool) "many blocks flushed" true ((Clio.Server.stats f.srv).Clio.Stats.blocks_flushed > 10)


let test_live_cursor_sees_new_entries () =
  (* A cursor parked at the end observes entries appended afterwards — the
     tail is always part of the readable log. *)
  let f = make_fixture () in
  let log = create_log f "/live" in
  ignore (append f ~log "before");
  let c = ok (Clio.Server.cursor_end f.srv ~log) in
  Alcotest.(check bool) "at end" true (ok (Clio.Server.next c) = None);
  ignore (append f ~log "after");
  Alcotest.(check string) "sees the new entry" "after"
    (Option.get (ok (Clio.Server.next c))).Clio.Reader.payload

let test_cursor_survives_volume_roll () =
  (* Iterate while appends roll the sequence onto a successor volume: the
     cursor follows into the new volume. *)
  let f =
    make_fixture ~config:{ Clio.Config.default with fanout = 4 } ~block_size:256 ~capacity:16 ()
  in
  let log = create_log f "/roll" in
  ignore (append f ~log "first");
  let c = ok (Clio.Server.cursor_end f.srv ~log) in
  Alcotest.(check bool) "drained" true (ok (Clio.Server.next c) = None);
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "gen2 %02d padding padding pad" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled meanwhile" true (Clio.Server.nvols f.srv > 1);
  let rec drain n = match ok (Clio.Server.next c) with Some _ -> drain (n + 1) | None -> n in
  Alcotest.(check int) "cursor crossed volumes" 100 (drain 0)

let test_fanout_two_edge () =
  (* N = 2: a boundary every other block, maps of two bits, deep trees. *)
  let f = make_fixture ~config:{ Clio.Config.default with fanout = 2 } ~block_size:256 () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  for i = 0 to 199 do
    ignore (append f ~log:(if i mod 7 = 0 then a else b) (Printf.sprintf "%d padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = ok (Clio.State.active st) in
  for pos = 1 to Clio.Vol.written_limit v do
    let truth, _ = ok (Baseline.Naive_scan.prev_block st v ~log:a ~before:pos) in
    Alcotest.(check (option int)) (Printf.sprintf "N=2 prev %d" pos) truth
      (ok (Clio.Locate.prev_block st v ~log:a ~before:pos))
  done;
  let r = ok (Clio.Server.fsck ~verify_entrymap:true f.srv) in
  Alcotest.(check (list string)) "N=2 fsck" [] r.Clio.Fsck.errors

let () =
  run "server_basic"
    [
      ( "append-read",
        [
          Alcotest.test_case "create/append/read" `Quick test_create_and_append_read;
          Alcotest.test_case "empty log" `Quick test_empty_log_reads_nothing;
          Alcotest.test_case "null entries" `Quick test_empty_payload_entries;
          Alcotest.test_case "timestamps increase" `Quick test_timestamps_strictly_increase;
          Alcotest.test_case "first/last" `Quick test_first_last;
          Alcotest.test_case "cursor mixed directions" `Quick test_cursor_mixed_directions;
          Alcotest.test_case "tail readable" `Quick test_reading_while_tail_open;
          Alcotest.test_case "fills many blocks" `Quick test_entries_fill_many_blocks;
          Alcotest.test_case "interleaved logs" `Quick test_interleaved_logs_order;
          Alcotest.test_case "live cursor" `Quick test_live_cursor_sees_new_entries;
          Alcotest.test_case "cursor survives roll" `Quick test_cursor_survives_volume_roll;
          Alcotest.test_case "fanout 2 edge" `Quick test_fanout_two_edge;
        ] );
      ( "sublogs",
        [
          Alcotest.test_case "membership" `Quick test_sublog_membership;
          Alcotest.test_case "deep nesting" `Quick test_deep_sublog_nesting;
          Alcotest.test_case "root sees everything" `Quick test_root_log_sees_everything;
          Alcotest.test_case "extra members" `Quick test_extra_members;
        ] );
      ( "naming",
        [
          Alcotest.test_case "append validation" `Quick test_append_validation;
          Alcotest.test_case "create errors" `Quick test_create_log_errors;
          Alcotest.test_case "ensure mkdir -p" `Quick test_ensure_log_mkdir_p;
          Alcotest.test_case "list hides internals" `Quick test_list_logs_hides_internals;
          Alcotest.test_case "set perms logged" `Quick test_set_perms_logged;
          Alcotest.test_case "append_path creates" `Quick test_append_path_creates;
          Alcotest.test_case "many logs" `Quick test_many_logs_catalog_capacity;
        ] );
    ]
