(* Log volume corruption (section 2.3.2): checksums, invalidation, the
   bad-block log, and entrymap displacement fallback. *)

open Testkit

let poke f ~vol ~block data =
  let dev = Hashtbl.find f.devices vol in
  Worm.Mem_device.raw_poke dev block data;
  drop_caches f.srv

let test_corrupt_block_detected_and_skipped () =
  let f = make_fixture () in
  let log = create_log f "/c" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "entry %02d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  poke f ~vol:0 ~block:3 (Bytes.make 256 'Z');
  let got = all_payloads f.srv ~log in
  Alcotest.(check bool) "some entries lost" true (List.length got < 100);
  Alcotest.(check bool) "most entries survive" true (List.length got > 80);
  (* Order is preserved among survivors. *)
  let nums = List.map (fun p -> Scanf.sscanf p "entry %d" Fun.id) got in
  Alcotest.(check bool) "sorted" true (List.sort compare nums = nums)

let test_corruption_does_not_hide_later_entries () =
  let f = make_fixture () in
  let log = create_log f "/c2" in
  ignore (append f ~log "early");
  ignore (ok (Clio.Server.force f.srv));
  for i = 0 to 49 do
    ignore (append f ~log (Printf.sprintf "mid %d some padding here" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  ignore (append f ~log "late");
  ignore (ok (Clio.Server.force f.srv));
  poke f ~vol:0 ~block:2 (Bytes.make 256 '\x55');
  let got = all_payloads f.srv ~log in
  Alcotest.(check bool) "early survives" true (List.mem "early" got);
  Alcotest.(check bool) "late survives" true (List.mem "late" got)

let test_scrub_block () =
  let f = make_fixture () in
  let log = create_log f "/s" in
  for i = 0 to 49 do
    ignore (append f ~log (Printf.sprintf "data %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  poke f ~vol:0 ~block:2 (Bytes.make 256 'Q');
  ok (Clio.Server.scrub_block f.srv ~vol:0 ~block:2);
  (* After scrubbing, the block reads as cleanly invalidated. *)
  let st = Clio.Server.state f.srv in
  let v = ok (Clio.State.vol st 0) in
  Alcotest.(check bool) "invalid now" true (Clio.Vol.view_block v 2 = Clio.Vol.Invalid);
  (* Scrubbing valid or unwritten blocks is refused. *)
  (match Clio.Server.scrub_block f.srv ~vol:0 ~block:1 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "must refuse valid block");
  match Clio.Server.scrub_block f.srv ~vol:0 ~block:900 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "must refuse unwritten block"

let test_bad_blocks_logged () =
  let block_size = 256 in
  let base = Worm.Mem_device.create ~block_size ~capacity:512 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  Worm.Faulty_device.mark_bad faulty 5;
  Worm.Faulty_device.mark_bad faulty 9;
  let alloc ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/bb") in
  for i = 0 to 99 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "entry %d with some padding" i)))
  done;
  ignore (ok (Clio.Server.force srv));
  Alcotest.(check int) "all entries written" 100 (List.length (all_payloads srv ~log));
  Alcotest.(check int) "two bad blocks hit" 2 (Clio.Server.stats srv).Clio.Stats.bad_blocks;
  (* The bad-block log records their locations (decodable payload). *)
  let records = all_payloads srv ~log:Clio.Ids.badblocks in
  let decoded =
    List.concat_map
      (fun p ->
        let dec = Clio.Wire.Dec.of_string p in
        let n = ok (Clio.Wire.Dec.u16 dec) in
        List.init n (fun _ -> ok (Clio.Wire.Dec.u32 dec)))
      records
  in
  Alcotest.(check bool) "block 5 recorded" true (List.mem 5 decoded);
  Alcotest.(check bool) "block 9 recorded" true (List.mem 9 decoded)

let test_flush_retries_counted () =
  (* A fixable bad block: flush invalidates it, retries once, succeeds, and
     the retry is visible in the stats. *)
  let block_size = 256 in
  let base = Worm.Mem_device.create ~block_size ~capacity:64 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  Worm.Faulty_device.mark_bad faulty 1;
  let alloc ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/r") in
  ignore (ok (Clio.Server.append srv ~log "payload"));
  ignore (ok (Clio.Server.force srv));
  let s = Clio.Server.stats srv in
  Alcotest.(check int) "one retry" 1 s.Clio.Stats.flush_retries;
  Alcotest.(check int) "one bad block" 1 s.Clio.Stats.bad_blocks;
  Alcotest.(check (list string)) "data survives" [ "payload" ] (all_payloads srv ~log)

let test_unfixable_bad_block_fails_flush () =
  (* Regression: when invalidating the bad block also fails, the frontier
     cannot advance. flush_tail used to swallow the invalidate error and
     retry the same block forever; it must surface a device error instead. *)
  let block_size = 256 in
  let base = Worm.Mem_device.create ~block_size ~capacity:64 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  let alloc ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/u") in
  (* The catalog entry is durable on block 1; damage the next block beyond
     repair before the data flush reaches it. *)
  Worm.Faulty_device.mark_unfixable faulty 2;
  ignore (ok (Clio.Server.append srv ~log "doomed"));
  (match Clio.Server.force srv with
  | Error (Clio.Errors.Device (Worm.Block_io.Bad_block 2)) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Clio.Errors.to_string e)
  | Ok () -> Alcotest.fail "flush over an unfixable bad block must fail");
  let s = Clio.Server.stats srv in
  Alcotest.(check int) "exactly one attempt recorded" 1 s.Clio.Stats.flush_retries

let test_displaced_entrymap_still_found () =
  (* Make the block where a level-1 entrymap entry belongs a bad block: the
     entry is displaced to a later block, and locate still works via the
     slack scan. *)
  let block_size = 256 in
  let fanout = 4 in
  let base = Worm.Mem_device.create ~block_size ~capacity:512 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  (* Block 8 is a level-1 boundary (N=4). *)
  Worm.Faulty_device.mark_bad faulty 8;
  let alloc ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size; fanout } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/d") in
  let filler = String.make 190 'f' in
  for i = 0 to 59 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "%02d%s" i filler)))
  done;
  ignore (ok (Clio.Server.force srv));
  (* Everything readable, forwards and backwards. *)
  Alcotest.(check int) "forward" 60 (List.length (all_payloads srv ~log));
  Alcotest.(check int) "backward" 60 (List.length (all_payloads_backward srv ~log));
  (* And locate agrees with ground truth everywhere. *)
  let st = Clio.Server.state srv in
  let v = ok (Clio.State.active st) in
  for pos = 1 to Clio.Vol.written_limit v do
    let naive, _ = ok (Baseline.Naive_scan.prev_block st v ~log ~before:pos) in
    let fast = ok (Clio.Locate.prev_block st v ~log ~before:pos) in
    Alcotest.(check (option int)) (Printf.sprintf "prev %d" pos) naive fast
  done

let test_corrupted_entrymap_falls_back () =
  (* Corrupt the block holding a level-1 entrymap entry *after* it was
     written: locate must degrade to lower-level search yet stay correct. *)
  let config = { Clio.Config.default with fanout = 4 } in
  let f = make_fixture ~config () in
  let log = create_log f "/fb" in
  let filler = String.make 190 'x' in
  for i = 0 to 40 do
    ignore (append f ~log (Printf.sprintf "%02d%s" i filler))
  done;
  ignore (ok (Clio.Server.force f.srv));
  (* Block 8 holds the map for [4,8). Corrupt it. *)
  poke f ~vol:0 ~block:8 (Bytes.make 256 '\x99');
  let st = Clio.Server.state f.srv in
  let v = ok (Clio.State.active st) in
  for pos = 1 to Clio.Vol.written_limit v do
    let naive, _ = ok (Baseline.Naive_scan.prev_block st v ~log ~before:pos) in
    let fast = ok (Clio.Locate.prev_block st v ~log ~before:pos) in
    Alcotest.(check (option int)) (Printf.sprintf "prev %d with dead map" pos) naive fast
  done

let test_corruption_survives_recovery () =
  let f = make_fixture () in
  let log = create_log f "/cr" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "entry %d padded out a bit" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  poke f ~vol:0 ~block:4 (Bytes.make 256 'W');
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/cr") in
  let got = all_payloads srv ~log in
  Alcotest.(check bool) "survivors readable after recovery" true (List.length got > 80)


(* Regression: a corrupt block adjacent to the frontier gets quarantined
   (invalidated) by recovery; the restored NVRAM tail begins with a
   continuation fragment of an entry whose start was in the lost block.
   Reassembly used to cross the invalidated gap and glue that foreign
   fragment onto the previous entry's start fragment, fabricating a payload
   that was never written. The fragment-chain checksum in version-3 headers
   must reject the splice. *)
let test_quarantine_does_not_splice_entries () =
  let f = make_fixture ~block_size:256 ~capacity:2048 () in
  let log = create_log f "/fz" in
  let payload i =
    Printf.sprintf "%06d:%s" i (String.make (20 + (i * 7 mod 160)) (Char.chr (97 + (i mod 26))))
  in
  let written = List.init 79 payload in
  List.iter (fun p -> ignore (append f ~log p)) written;
  (* Stage the open tail in NVRAM so it survives the crash... *)
  ignore (ok (Clio.Server.force f.srv));
  (* ...then corrupt the last block that reached the medium: its entries
     (including the middle of any fragment chain into the tail) are lost. *)
  let st = Clio.Server.state f.srv in
  let frontier = Clio.Vol.device_frontier (ok (Clio.State.active st)) in
  poke f ~vol:0 ~block:(frontier - 1) (Bytes.make 256 '\xC3');
  let srv = crash_and_recover f in
  let got = all_payloads srv ~log in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "fabricated payload %S" p)
        true (List.mem p written))
    got;
  (* The quarantined block must be accounted as bad, not silently healthy. *)
  Alcotest.(check bool) "bad block counted" true
    ((Clio.Server.stats srv).Clio.Stats.bad_blocks >= 1)

let test_corrupt_volume_header_rejected () =
  let f = make_fixture () in
  ignore (create_log f "/x");
  ignore (ok (Clio.Server.force f.srv));
  let dev = Hashtbl.find f.devices 0 in
  Worm.Mem_device.raw_poke dev 0 (Bytes.make 256 'H');
  match
    Clio.Server.recover ~config:f.config ~clock:f.clock ~alloc_volume:f.alloc
      ~devices:(fixture_devices f) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt volume header must fail recovery"

let () =
  run "corruption"
    [
      ( "detection",
        [
          Alcotest.test_case "detected and skipped" `Quick test_corrupt_block_detected_and_skipped;
          Alcotest.test_case "later entries visible" `Quick test_corruption_does_not_hide_later_entries;
          Alcotest.test_case "scrub" `Quick test_scrub_block;
          Alcotest.test_case "volume header" `Quick test_corrupt_volume_header_rejected;
        ] );
      ( "bad-blocks",
        [
          Alcotest.test_case "logged" `Quick test_bad_blocks_logged;
          Alcotest.test_case "flush retries counted" `Quick test_flush_retries_counted;
          Alcotest.test_case "unfixable fails flush" `Quick test_unfixable_bad_block_fails_flush;
          Alcotest.test_case "displaced entrymap" `Quick test_displaced_entrymap_still_found;
          Alcotest.test_case "corrupted entrymap fallback" `Quick test_corrupted_entrymap_falls_back;
          Alcotest.test_case "survives recovery" `Quick test_corruption_survives_recovery;
          Alcotest.test_case "quarantine cannot splice" `Quick
            test_quarantine_does_not_splice_entries;
        ] );
    ]
