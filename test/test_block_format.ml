(* The Figure-1 block layout: build, serialize, classify, scan both ways. *)

module BF = Clio.Block_format

let add b hdr ?(continues = false) payload =
  Testkit.ok (BF.Builder.add b hdr ~continues payload)

let test_empty_builder () =
  let b = BF.Builder.create ~block_size:256 in
  Alcotest.(check bool) "empty" true (BF.Builder.is_empty b);
  Alcotest.(check int) "count" 0 (BF.Builder.count b);
  let image = BF.Builder.finish b in
  match BF.classify image with
  | BF.Valid records -> Alcotest.(check int) "no records" 0 (Array.length records)
  | _ -> Alcotest.fail "empty block should classify valid"

let test_roundtrip_records () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make ~timestamp:10L 4) "first";
  add b (Clio.Header.make 5) "second";
  add b (Clio.Header.continuation 4) ~continues:true "frag";
  let image = BF.Builder.finish b in
  match BF.classify image with
  | BF.Valid records ->
    Alcotest.(check int) "three records" 3 (Array.length records);
    Alcotest.(check string) "payload 0" "first" records.(0).BF.payload;
    Alcotest.(check string) "payload 1" "second" records.(1).BF.payload;
    Alcotest.(check string) "payload 2" "frag" records.(2).BF.payload;
    Alcotest.(check bool) "continues flag" true records.(2).BF.continues;
    Alcotest.(check bool) "not continuing" false records.(0).BF.continues;
    Alcotest.(check (option int64)) "first ts" (Some 10L) (BF.first_timestamp records);
    Alcotest.(check int) "indices" 1 records.(1).BF.index
  | _ -> Alcotest.fail "classify failed"

let test_builder_records_match_parse () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make ~timestamp:1L 4) "abc";
  add b (Clio.Header.make 7) "defg";
  let virtual_view = BF.Builder.records b in
  let parsed = Testkit.ok (BF.parse (BF.Builder.finish b)) in
  Alcotest.(check int) "same count" (Array.length parsed) (Array.length virtual_view);
  Array.iteri
    (fun i r ->
      Alcotest.(check string) "same payload" parsed.(i).BF.payload r.BF.payload;
      Alcotest.(check int) "same id" parsed.(i).BF.header.Clio.Header.logfile
        r.BF.header.Clio.Header.logfile)
    virtual_view

let test_free_bytes_accounting () =
  let b = BF.Builder.create ~block_size:256 in
  let f0 = BF.Builder.free_bytes b in
  (* trailer 12 + index slot 2 for the would-be next record *)
  Alcotest.(check int) "initial free" (256 - 12 - 2) f0;
  add b (Clio.Header.make 4) "12345";
  let f1 = BF.Builder.free_bytes b in
  Alcotest.(check int) "after one record" (f0 - 2 (* header *) - 5 (* payload *) - 2 (* its slot *)) f1

let test_overflow_rejected () =
  let b = BF.Builder.create ~block_size:64 in
  match BF.Builder.add b (Clio.Header.make 4) ~continues:false (String.make 64 'x') with
  | Error (Clio.Errors.Entry_too_large _) -> ()
  | _ -> Alcotest.fail "expected Entry_too_large"

let test_fill_to_capacity () =
  let b = BF.Builder.create ~block_size:256 in
  let hdr () = Clio.Header.make 4 in
  let rec fill n =
    let free = BF.Builder.free_bytes b in
    if free >= 3 then begin
      add b (hdr ()) (String.make (min 5 (free - 2)) 'x');
      fill (n + 1)
    end
    else n
  in
  let n = fill 0 in
  Alcotest.(check bool) "packed many" true (n > 20);
  let image = BF.Builder.finish b in
  match BF.classify image with
  | BF.Valid records -> Alcotest.(check int) "all parsed" n (Array.length records)
  | _ -> Alcotest.fail "classify failed"

let test_invalidated_classification () =
  Alcotest.(check bool) "all-ones block" true
    (BF.classify (Worm.Block_io.invalidated_block 256) = BF.Invalidated)

let test_corrupt_classification () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make ~timestamp:1L 4) "data";
  let image = BF.Builder.finish b in
  (* Flip one payload byte: the CRC must catch it. *)
  Bytes.set image 5 (Char.chr (Char.code (Bytes.get image 5) lxor 0x40));
  Alcotest.(check bool) "corrupt detected" true (BF.classify image = BF.Corrupt);
  Alcotest.(check bool) "garbage detected" true (BF.classify (Bytes.make 256 'Z') = BF.Corrupt);
  Alcotest.(check bool) "tiny block corrupt" true (BF.classify (Bytes.make 4 'Z') = BF.Corrupt)

let test_forced_flag_padding () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make ~timestamp:1L 4) "x";
  let pad = BF.Builder.padding_if_finished b in
  Alcotest.(check int) "padding accounts everything" (256 - 12 - 2 - 10 - 1) pad;
  let image = BF.Builder.finish ~forced:true b in
  Alcotest.(check bool) "still valid" true (match BF.classify image with BF.Valid _ -> true | _ -> false)

let test_reset_and_reuse () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make 4) "x";
  ignore (BF.Builder.finish b);
  BF.Builder.reset b;
  Alcotest.(check bool) "reset empties" true (BF.Builder.is_empty b);
  add b (Clio.Header.make 5) "y";
  let records = Testkit.ok (BF.parse (BF.Builder.finish b)) in
  Alcotest.(check int) "fresh contents" 5 records.(0).BF.header.Clio.Header.logfile

let test_load_restores () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make ~timestamp:2L 4) "one";
  add b (Clio.Header.continuation 4) ~continues:true "two";
  let records = BF.Builder.records b in
  let b2 = BF.Builder.create ~block_size:256 in
  Testkit.ok (BF.Builder.load b2 records);
  Alcotest.(check bytes) "identical image" (BF.Builder.finish b) (BF.Builder.finish b2)

let test_load_requires_empty () =
  let b = BF.Builder.create ~block_size:256 in
  add b (Clio.Header.make 4) "x";
  match BF.Builder.load b [||] with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected load on non-empty to fail"

let test_max_payload_estimate () =
  let header = Clio.Header.make ~timestamp:1L 4 in
  let max_payload = BF.max_payload_in_empty_block ~block_size:256 ~header in
  let b = BF.Builder.create ~block_size:256 in
  add b header (String.make max_payload 'x');
  Alcotest.(check int) "exactly full" 0 (BF.Builder.free_bytes b + 2);
  let b2 = BF.Builder.create ~block_size:256 in
  match BF.Builder.add b2 header ~continues:false (String.make (max_payload + 1) 'x') with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "one more byte should not fit"

(* Random blocks roundtrip: build from random records, serialize, reparse. *)
let gen_record =
  QCheck2.Gen.(
    pair
      (pair (int_range 0 4095) (option (map Int64.of_int (int_range 0 1000000))))
      (pair (string_size (int_range 0 40)) bool))

let prop_roundtrip =
  Testkit.qtest "random blocks roundtrip" QCheck2.Gen.(list_size (int_range 0 8) gen_record)
    (fun records ->
      let b = BF.Builder.create ~block_size:1024 in
      let added =
        List.filter
          (fun ((id, ts), (payload, continues)) ->
            let hdr = match ts with Some t -> Clio.Header.make ~timestamp:t id | None -> Clio.Header.make id in
            Result.is_ok (BF.Builder.add b hdr ~continues payload))
          records
      in
      match BF.classify (BF.Builder.finish b) with
      | BF.Valid parsed ->
        Array.length parsed = List.length added
        && List.for_all2
             (fun ((id, ts), (payload, continues)) r ->
               r.BF.header.Clio.Header.logfile = id
               && r.BF.header.Clio.Header.timestamp = ts
               && r.BF.payload = payload && r.BF.continues = continues)
             added (Array.to_list parsed)
      | _ -> false)

let prop_crc_catches_any_flip =
  Testkit.qtest "any single bit flip is caught" QCheck2.Gen.(int_range 0 (256 * 8 - 1))
    (fun bit ->
      let b = BF.Builder.create ~block_size:256 in
      add b (Clio.Header.make ~timestamp:1L 4) "payload bytes here";
      let image = BF.Builder.finish b in
      let byte = bit / 8 in
      Bytes.set image byte (Char.chr (Char.code (Bytes.get image byte) lxor (1 lsl (bit mod 8))));
      match BF.classify image with
      | BF.Valid _ -> false
      | BF.Corrupt | BF.Invalidated -> true)

let () =
  Testkit.run "block_format"
    [
      ( "builder",
        [
          Alcotest.test_case "empty" `Quick test_empty_builder;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_records;
          Alcotest.test_case "virtual view matches parse" `Quick test_builder_records_match_parse;
          Alcotest.test_case "free bytes accounting" `Quick test_free_bytes_accounting;
          Alcotest.test_case "overflow rejected" `Quick test_overflow_rejected;
          Alcotest.test_case "fill to capacity" `Quick test_fill_to_capacity;
          Alcotest.test_case "forced padding" `Quick test_forced_flag_padding;
          Alcotest.test_case "reset and reuse" `Quick test_reset_and_reuse;
          Alcotest.test_case "load restores" `Quick test_load_restores;
          Alcotest.test_case "load requires empty" `Quick test_load_requires_empty;
          Alcotest.test_case "max payload estimate" `Quick test_max_payload_estimate;
          prop_roundtrip;
        ] );
      ( "classify",
        [
          Alcotest.test_case "invalidated" `Quick test_invalidated_classification;
          Alcotest.test_case "corrupt" `Quick test_corrupt_classification;
          prop_crc_catches_any_flip;
        ] );
    ]
