(* Volume headers (block 0) and analysis formulas live here too. *)

let hdr =
  {
    Clio.Volume.block_size = 512;
    capacity = 2048;
    fanout = 16;
    seq_uid = 77L;
    vol_index = 3;
    vol_uid = 1234L;
    prev_uid = 1233L;
    created = 55_000L;
  }

let test_roundtrip () =
  let b = Clio.Volume.encode_header hdr in
  Alcotest.(check int) "full block image" 512 (Bytes.length b);
  let h2 = Testkit.ok (Clio.Volume.decode_header b) in
  Alcotest.(check bool) "identical" true (h2 = hdr)

let test_magic_check () =
  let b = Clio.Volume.encode_header hdr in
  Bytes.set b 0 'X';
  (match Clio.Volume.decode_header b with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected magic failure");
  Alcotest.(check bool) "is_volume_header false" false (Clio.Volume.is_volume_header b)

let test_crc_check () =
  let b = Clio.Volume.encode_header hdr in
  Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 1));
  match Clio.Volume.decode_header b with
  | Error (Clio.Errors.Corrupt_block 0) -> ()
  | _ -> Alcotest.fail "expected CRC failure"

let test_not_a_log_block () =
  (* A volume header must never classify as a valid log block. *)
  let b = Clio.Volume.encode_header hdr in
  match Clio.Block_format.classify b with
  | Clio.Block_format.Corrupt -> ()
  | _ -> Alcotest.fail "volume header must not parse as log data"

let test_size_mismatch () =
  let b = Clio.Volume.encode_header hdr in
  let shorter = Bytes.sub b 0 256 in
  match Clio.Volume.decode_header shorter with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected size mismatch"

let () =
  Testkit.run "volume"
    [
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "magic check" `Quick test_magic_check;
          Alcotest.test_case "crc check" `Quick test_crc_check;
          Alcotest.test_case "not a log block" `Quick test_not_a_log_block;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
        ] );
    ]
