(* Atomic update via log files (the section-6 extension) and the
   delayed-write staging of section 4.1. *)

open Testkit

module A = History.Atomic

let store f path = ok (A.create f.srv ~path)

let test_put_get_commit () =
  let f = make_fixture () in
  let s = store f "/kv" in
  let txn = A.begin_txn s in
  A.put txn ~key:"alpha" "1";
  A.put txn ~key:"beta" "2";
  Alcotest.(check (option string)) "txn sees own writes" (Some "1") (A.find txn "alpha");
  Alcotest.(check (option string)) "store does not yet" None (A.get s "alpha");
  ignore (ok (A.commit txn));
  Alcotest.(check (option string)) "visible after commit" (Some "1") (A.get s "alpha");
  Alcotest.(check (list string)) "keys" [ "alpha"; "beta" ] (A.keys s)

let test_abort_discards () =
  let f = make_fixture () in
  let s = store f "/kv" in
  let txn = A.begin_txn s in
  A.put txn ~key:"ghost" "boo";
  A.abort txn;
  Alcotest.(check (option string)) "nothing applied" None (A.get s "ghost");
  (* And nothing was logged: replay sees zero transactions. *)
  let s2 = store f "/kv" in
  Alcotest.(check int) "no entries" 0 (A.replayed s2)

let test_remove_and_overwrite () =
  let f = make_fixture () in
  let s = store f "/kv" in
  let t1 = A.begin_txn s in
  A.put t1 ~key:"k" "v1";
  ignore (ok (A.commit t1));
  let t2 = A.begin_txn s in
  A.put t2 ~key:"k" "v2";
  A.put t2 ~key:"k" "v3";
  (* last write within the txn wins *)
  ignore (ok (A.commit t2));
  Alcotest.(check (option string)) "overwritten" (Some "v3") (A.get s "k");
  let t3 = A.begin_txn s in
  A.remove t3 ~key:"k";
  Alcotest.(check (option string)) "txn sees removal" None (A.find t3 "k");
  ignore (ok (A.commit t3));
  Alcotest.(check (option string)) "removed" None (A.get s "k")

let test_empty_commit_logs_nothing () =
  let f = make_fixture () in
  let s = store f "/kv" in
  let txn = A.begin_txn s in
  (match ok (A.commit txn) with
  | None -> ()
  | Some _ -> Alcotest.fail "empty commit must not log");
  let s2 = store f "/kv" in
  Alcotest.(check int) "no entries" 0 (A.replayed s2)

let test_double_commit_rejected () =
  let f = make_fixture () in
  let s = store f "/kv" in
  let txn = A.begin_txn s in
  A.put txn ~key:"x" "y";
  ignore (ok (A.commit txn));
  match A.commit txn with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "double commit must fail"

let test_recovery_replays_committed_only () =
  let f = make_fixture () in
  let s = store f "/bank" in
  (* Committed transfer... *)
  let t1 = A.begin_txn s in
  A.put t1 ~key:"acct:a" "50";
  A.put t1 ~key:"acct:b" "150";
  ignore (ok (A.commit t1));
  (* ...an aborted one... *)
  let t2 = A.begin_txn s in
  A.put t2 ~key:"acct:a" "0";
  A.abort t2;
  (* ...and an uncommitted one in flight at the crash. *)
  let t3 = A.begin_txn s in
  A.put t3 ~key:"acct:b" "99999";
  ignore (crash_and_recover f);
  let s2 = store f "/bank" in
  Alcotest.(check int) "one committed txn replayed" 1 (A.replayed s2);
  Alcotest.(check (option string)) "a" (Some "50") (A.get s2 "acct:a");
  Alcotest.(check (option string)) "b" (Some "150") (A.get s2 "acct:b")

let test_atomicity_of_multi_key_commits () =
  (* After any number of "transfers", the invariant sum(a,b) holds in every
     recovered state — all-or-nothing per transaction. *)
  let f = make_fixture () in
  let s = store f "/bank" in
  let t0 = A.begin_txn s in
  A.put t0 ~key:"a" "500";
  A.put t0 ~key:"b" "500";
  ignore (ok (A.commit t0));
  let rng = Sim.Rng.create 42L in
  for _ = 1 to 30 do
    let a = int_of_string (Option.get (A.get s "a")) in
    let b = int_of_string (Option.get (A.get s "b")) in
    let amount = Sim.Rng.int rng 100 in
    let txn = A.begin_txn s in
    A.put txn ~key:"a" (string_of_int (a - amount));
    A.put txn ~key:"b" (string_of_int (b + amount));
    ignore (ok (A.commit txn))
  done;
  ignore (crash_and_recover f);
  let s2 = store f "/bank" in
  let total =
    int_of_string (Option.get (A.get s2 "a")) + int_of_string (Option.get (A.get s2 "b"))
  in
  Alcotest.(check int) "conserved across crash" 1000 total

let test_large_transaction_fragments () =
  (* A transaction bigger than a block is still one atomic entry. *)
  let f = make_fixture ~block_size:256 () in
  let s = store f "/kv" in
  let txn = A.begin_txn s in
  for i = 0 to 19 do
    A.put txn ~key:(Printf.sprintf "key%02d" i) (String.make 100 'v')
  done;
  ignore (ok (A.commit txn));
  ignore (crash_and_recover f);
  let s2 = store f "/kv" in
  Alcotest.(check int) "all 20 keys" 20 (List.length (A.keys s2))

(* ------------------------------ delayed write ------------------------------ *)

module DW = History.Delayed_write

let test_elision_of_short_lived_data () =
  let f = make_fixture () in
  let dw = DW.create f.srv ~flush_delay_us:1000L in
  (* Ten updates to one file in quick succession: only the survivor should
     reach the log. *)
  for i = 0 to 9 do
    ignore (ok (DW.update dw ~now:(Int64.of_int (i * 10)) ~path:"/fs/hot" (Printf.sprintf "v%d" i)))
  done;
  ignore (ok (DW.tick dw ~now:10_000L));
  let s = DW.stats dw in
  Alcotest.(check int) "ten updates" 10 s.DW.updates;
  Alcotest.(check int) "nine elided" 9 s.DW.elided;
  Alcotest.(check int) "one logged" 1 s.DW.flushed;
  (* The survivor is the newest version. *)
  let log = ok (Clio.Server.resolve f.srv "/fs/hot") in
  check_payloads "latest version" [ "v9" ] (all_payloads f.srv ~log)

let test_aged_data_flushes () =
  let f = make_fixture () in
  let dw = DW.create f.srv ~flush_delay_us:100L in
  ignore (ok (DW.update dw ~now:0L ~path:"/fs/a" "a1"));
  (* Enough time passes: the next update flushes the old one first. *)
  ignore (ok (DW.update dw ~now:500L ~path:"/fs/a" "a2"));
  let s = DW.stats dw in
  Alcotest.(check int) "first one flushed, not elided" 1 s.DW.flushed;
  Alcotest.(check int) "no elision" 0 s.DW.elided

let test_flush_all_drains () =
  let f = make_fixture () in
  let dw = DW.create f.srv ~flush_delay_us:1_000_000L in
  ignore (ok (DW.update dw ~now:0L ~path:"/fs/x" "x"));
  ignore (ok (DW.update dw ~now:0L ~path:"/fs/y" "y"));
  Alcotest.(check int) "two pending" 2 (DW.pending dw);
  ignore (ok (DW.flush_all dw));
  Alcotest.(check int) "drained" 0 (DW.pending dw);
  Alcotest.(check int) "both logged" 2 (DW.stats dw).DW.flushed

let test_ousterhout_churn_elision_rate () =
  (* With half the writes short-lived (superseded quickly), a delayed-write
     policy elides a large share — the section 4.1 feasibility claim. *)
  let f = make_fixture ~capacity:16384 () in
  let dw = DW.create f.srv ~flush_delay_us:300_000_000L (* 5 simulated minutes *) in
  let rng = Sim.Rng.create 7L in
  let records = Sim.Workload.churn_trace ~rng ~files:50 ~writes:2000 ~short_lived_fraction:0.5 in
  let now = ref 0L in
  List.iter
    (fun r ->
      now := Int64.add !now (Int64.mul r.Sim.Workload.gap_us 1000L);
      ignore (ok (DW.update dw ~now:!now ~path:r.Sim.Workload.path r.Sim.Workload.payload)))
    records;
  ignore (ok (DW.flush_all dw));
  let s = DW.stats dw in
  let elision = float_of_int s.DW.elided /. float_of_int s.DW.updates in
  Alcotest.(check bool)
    (Printf.sprintf "elision rate %.0f%% is substantial" (elision *. 100.0))
    true (elision > 0.5);
  Alcotest.(check int) "accounting adds up" s.DW.updates (s.DW.flushed + s.DW.elided)

let () =
  run "atomic"
    [
      ( "transactions",
        [
          Alcotest.test_case "put/get/commit" `Quick test_put_get_commit;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "remove and overwrite" `Quick test_remove_and_overwrite;
          Alcotest.test_case "empty commit" `Quick test_empty_commit_logs_nothing;
          Alcotest.test_case "double commit rejected" `Quick test_double_commit_rejected;
          Alcotest.test_case "recovery replays committed only" `Quick test_recovery_replays_committed_only;
          Alcotest.test_case "multi-key atomicity" `Quick test_atomicity_of_multi_key_commits;
          Alcotest.test_case "large txn fragments" `Quick test_large_transaction_fragments;
        ] );
      ( "delayed-write",
        [
          Alcotest.test_case "elision of short-lived data" `Quick test_elision_of_short_lived_data;
          Alcotest.test_case "aged data flushes" `Quick test_aged_data_flushes;
          Alcotest.test_case "flush_all drains" `Quick test_flush_all_drains;
          Alcotest.test_case "churn elision rate" `Quick test_ousterhout_churn_elision_rate;
        ] );
    ]
