(* Salvage: migrating a sequence's surviving entries to fresh media. *)

open Testkit

let fresh_dst ?(block_size = 256) () =
  let f = make_fixture ~block_size () in
  f

let test_copy_healthy_sequence () =
  let src_f = make_fixture () in
  let a = create_log src_f "/a" in
  let b = create_log src_f "/a/b" in
  let c = create_log src_f "/c" in
  let payloads_b = List.init 40 (fun i -> Printf.sprintf "b%02d" i) in
  let payloads_c = List.init 20 (fun i -> Printf.sprintf "c%02d" i) in
  List.iter (fun p -> ignore (append src_f ~log:b p)) payloads_b;
  List.iter (fun p -> ignore (append src_f ~log:c p)) payloads_c;
  ignore (ok (Clio.Server.force src_f.srv));
  let dst_f = fresh_dst () in
  let r = ok (Clio.Salvage.copy_sequence ~src:src_f.srv ~dst:dst_f.srv) in
  Alcotest.(check int) "three logs" 3 r.Clio.Salvage.logs_created;
  Alcotest.(check int) "sixty entries" 60 r.Clio.Salvage.entries_copied;
  Alcotest.(check int) "nothing lost" 0 r.Clio.Salvage.entries_lost;
  (* Same ids, same names, same contents, same order. *)
  Alcotest.(check int) "id preserved" a (ok (Clio.Server.resolve dst_f.srv "/a"));
  Alcotest.(check int) "sublog id preserved" b (ok (Clio.Server.resolve dst_f.srv "/a/b"));
  check_payloads "b copied" payloads_b (all_payloads dst_f.srv ~log:b);
  check_payloads "c copied" payloads_c (all_payloads dst_f.srv ~log:c);
  (* Sublog membership survives: the parent sees its child's entries. *)
  check_payloads "parent sees child" payloads_b (all_payloads dst_f.srv ~log:a);
  (* Destination is structurally healthy. *)
  let rep = ok (Clio.Server.fsck ~verify_entrymap:true dst_f.srv) in
  Alcotest.(check (list string)) "dst fsck" [] rep.Clio.Fsck.errors

let test_copy_skips_corrupted_entries () =
  let src_f = make_fixture () in
  let log = create_log src_f "/data" in
  for i = 0 to 99 do
    ignore (append src_f ~log (Printf.sprintf "entry %02d padding pad" i))
  done;
  ignore (ok (Clio.Server.force src_f.srv));
  Worm.Mem_device.raw_poke (Hashtbl.find src_f.devices 0) 4 (Bytes.make 256 'J');
  drop_caches src_f.srv;
  let dst_f = fresh_dst () in
  let r = ok (Clio.Salvage.copy_sequence ~src:src_f.srv ~dst:dst_f.srv) in
  Alcotest.(check bool) "most copied" true (r.Clio.Salvage.entries_copied > 80);
  Alcotest.(check bool) "some lost" true (r.Clio.Salvage.entries_copied < 100);
  (* The destination has no trace of the corruption. *)
  let rep = ok (Clio.Server.fsck dst_f.srv) in
  Alcotest.(check bool) "dst healthy" true (Clio.Fsck.is_healthy rep);
  let got = all_payloads dst_f.srv ~log in
  Alcotest.(check int) "copied = readable" r.Clio.Salvage.entries_copied (List.length got)

let test_timestamp_map_is_monotone () =
  let src_f = make_fixture () in
  let log = create_log src_f "/t" in
  for i = 0 to 29 do
    Sim.Clock.advance src_f.clock 1000L;
    ignore (append src_f ~log (string_of_int i))
  done;
  ignore (ok (Clio.Server.force src_f.srv));
  let dst_f = fresh_dst () in
  let r = ok (Clio.Salvage.copy_sequence ~src:src_f.srv ~dst:dst_f.srv) in
  Alcotest.(check int) "30 mapped" 30 (List.length r.Clio.Salvage.timestamp_map);
  let rec monotone = function
    | (o1, n1) :: ((o2, n2) :: _ as rest) ->
      Int64.compare o1 o2 < 0 && Int64.compare n1 n2 < 0 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "order-preserving" true (monotone r.Clio.Salvage.timestamp_map);
  (* Old timestamps redirect to the copied entries. *)
  let old_ts, new_ts = List.nth r.Clio.Salvage.timestamp_map 10 in
  ignore old_ts;
  let e = Option.get (ok (Clio.Server.entry_at_or_after dst_f.srv ~log new_ts)) in
  Alcotest.(check string) "redirected" "10" e.Clio.Reader.payload

let test_refuses_dirty_destination () =
  let src_f = make_fixture () in
  ignore (create_log src_f "/x");
  let dst_f = fresh_dst () in
  ignore (create_log dst_f "/already-here");
  match Clio.Salvage.copy_sequence ~src:src_f.srv ~dst:dst_f.srv with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "dirty destination must be rejected"

let test_multivolume_source_compacts () =
  (* A source with forced-write padding across several volumes fits in
     fewer blocks after salvage. *)
  let src_f =
    make_fixture ~config:{ Clio.Config.default with fanout = 4; nvram_tail = false }
      ~block_size:256 ~capacity:64 ~nvram:false ()
  in
  let log = create_log src_f "/frag" in
  for i = 0 to 199 do
    ignore (append src_f ~log ~force:true (Printf.sprintf "commit %03d" i))
  done;
  Alcotest.(check bool) "source sprawls" true (Clio.Server.nvols src_f.srv > 2);
  let dst_f = fresh_dst () in
  let r = ok (Clio.Salvage.copy_sequence ~src:src_f.srv ~dst:dst_f.srv) in
  Alcotest.(check int) "all commits" 200 r.Clio.Salvage.entries_copied;
  Alcotest.(check bool) "destination is compact" true
    (Clio.Server.volume_blocks_used dst_f.srv * 4 < Clio.Server.volume_blocks_used src_f.srv);
  check_payloads "order kept" (List.init 200 (Printf.sprintf "commit %03d"))
    (all_payloads dst_f.srv ~log)

let () =
  run "salvage"
    [
      ( "copy",
        [
          Alcotest.test_case "healthy sequence" `Quick test_copy_healthy_sequence;
          Alcotest.test_case "skips corrupted" `Quick test_copy_skips_corrupted_entries;
          Alcotest.test_case "timestamp map" `Quick test_timestamp_map_is_monotone;
          Alcotest.test_case "dirty destination" `Quick test_refuses_dirty_destination;
          Alcotest.test_case "compacts padding" `Quick test_multivolume_source_compacts;
        ] );
    ]
