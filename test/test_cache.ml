(* LRU and the block cache (the paper's buffer pool). *)

let test_lru_basic () =
  let l = Blockcache.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair int string))) "no eviction" None (Blockcache.Lru.add l 1 "a");
  Alcotest.(check (option (pair int string))) "no eviction" None (Blockcache.Lru.add l 2 "b");
  Alcotest.(check (option string)) "find 1" (Some "a") (Blockcache.Lru.find l 1);
  (* 2 is now least-recently-used. *)
  (match Blockcache.Lru.add l 3 "c" with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "expected eviction of 2");
  Alcotest.(check (option string)) "2 gone" None (Blockcache.Lru.find l 2);
  Alcotest.(check int) "length" 2 (Blockcache.Lru.length l)

let test_lru_replace () =
  let l = Blockcache.Lru.create ~capacity:2 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 1 "a2");
  Alcotest.(check int) "no duplicate" 1 (Blockcache.Lru.length l);
  Alcotest.(check (option string)) "replaced" (Some "a2") (Blockcache.Lru.find l 1)

let test_lru_peek_does_not_promote () =
  let l = Blockcache.Lru.create ~capacity:2 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 2 "b");
  ignore (Blockcache.Lru.peek l 1);
  (match Blockcache.Lru.add l 3 "c" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "peek should not promote")

let test_lru_remove_and_clear () =
  let l = Blockcache.Lru.create ~capacity:4 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 2 "b");
  Blockcache.Lru.remove l 1;
  Alcotest.(check (option string)) "removed" None (Blockcache.Lru.find l 1);
  Blockcache.Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Blockcache.Lru.length l)

let test_lru_mru_order () =
  let l = Blockcache.Lru.create ~capacity:4 in
  List.iter (fun k -> ignore (Blockcache.Lru.add l k "")) [ 1; 2; 3 ];
  ignore (Blockcache.Lru.find l 1);
  Alcotest.(check (list int)) "order" [ 1; 3; 2 ] (Blockcache.Lru.keys_mru_order l)

let test_lru_stress () =
  let l = Blockcache.Lru.create ~capacity:16 in
  for i = 0 to 999 do
    ignore (Blockcache.Lru.add l (i mod 40) (string_of_int i))
  done;
  Alcotest.(check int) "bounded" 16 (Blockcache.Lru.length l)

let test_lru_capacity_one_churn () =
  (* The smallest legal cache must behave: every add evicts the previous
     sole resident, and the survivor is always readable. *)
  let l = Blockcache.Lru.create ~capacity:1 in
  Alcotest.(check (option (pair int string))) "first add free" None (Blockcache.Lru.add l 0 "v0");
  for i = 1 to 99 do
    match Blockcache.Lru.add l i (Printf.sprintf "v%d" i) with
    | Some (k, _) when k = i - 1 -> ()
    | Some (k, _) -> Alcotest.failf "evicted %d, expected %d" k (i - 1)
    | None -> Alcotest.fail "expected an eviction"
  done;
  Alcotest.(check int) "one resident" 1 (Blockcache.Lru.length l);
  Alcotest.(check (option string)) "survivor" (Some "v99") (Blockcache.Lru.find l 99)

let test_lru_replace_at_full_no_evict () =
  (* Re-adding a resident key to a full LRU is a value update, not an
     insertion: nothing may be evicted. *)
  let l = Blockcache.Lru.create ~capacity:2 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 2 "b");
  Alcotest.(check (option (pair int string)))
    "replace evicts nothing" None (Blockcache.Lru.add l 1 "a2");
  Alcotest.(check int) "still full" 2 (Blockcache.Lru.length l);
  Alcotest.(check (option string)) "updated" (Some "a2") (Blockcache.Lru.peek l 1);
  Alcotest.(check (option string)) "other intact" (Some "b") (Blockcache.Lru.peek l 2);
  (* And the replace refreshed key 1, so 2 is now the LRU victim. *)
  (match Blockcache.Lru.add l 3 "c" with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "expected eviction of 2 after replace refreshed 1")

let test_lru_mru_order_after_interleaved_remove () =
  let l = Blockcache.Lru.create ~capacity:8 in
  List.iter (fun k -> ignore (Blockcache.Lru.add l k "")) [ 1; 2; 3; 4; 5 ];
  Blockcache.Lru.remove l 3;
  ignore (Blockcache.Lru.find l 2);
  Blockcache.Lru.remove l 5;
  ignore (Blockcache.Lru.add l 6 "");
  Alcotest.(check (list int)) "order" [ 6; 2; 4; 1 ] (Blockcache.Lru.keys_mru_order l);
  (* Removing head and tail keeps the list linked. *)
  Blockcache.Lru.remove l 6;
  Blockcache.Lru.remove l 1;
  Alcotest.(check (list int)) "ends removed" [ 2; 4 ] (Blockcache.Lru.keys_mru_order l)

let mk_cached () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let c = Blockcache.Cache.create ~capacity_blocks:4 (Worm.Mem_device.io d) in
  (d, c, Blockcache.Cache.io c)

let test_cache_read_through () =
  let d, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  Blockcache.Cache.reset_counters c;
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 0);
  Alcotest.(check int) "one miss" 1 (Blockcache.Cache.misses c);
  Alcotest.(check int) "one hit" 1 (Blockcache.Cache.hits c);
  ignore d

let test_cache_appends_inserted () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Alcotest.(check bool) "appended block cached" true (Blockcache.Cache.contains c 0);
  ignore (io.Worm.Block_io.read 0);
  Alcotest.(check int) "hit without device read" 1 (Blockcache.Cache.hits c)

let test_cache_eviction () =
  (* Untouched (default-classified) blocks are all data and land in the
     probation segment, so a one-pass append stream keeps only its newest
     blocks resident — it cannot fill the whole cache. *)
  let _, c, io = mk_cached () in
  for i = 0 to 7 do
    ignore (io.Worm.Block_io.append (Bytes.make 64 (Char.chr (97 + i))))
  done;
  let s = Blockcache.Cache.segments c in
  Alcotest.(check bool) "bounded" true (Blockcache.Cache.resident c <= 4);
  Alcotest.(check int) "probation only"
    (Blockcache.Cache.resident c)
    s.Blockcache.Cache.probation_resident;
  Alcotest.(check bool) "old evicted" false (Blockcache.Cache.contains c 0);
  Alcotest.(check bool) "new resident" true (Blockcache.Cache.contains c 7);
  Alcotest.(check bool) "evictions counted" true (s.Blockcache.Cache.data_evictions > 0)

let test_cache_scan_resistance () =
  (* Twice-touched blocks are promoted to the protected segment; a long
     one-pass scan afterwards churns probation only and cannot displace
     them. This is the property the flat LRU lacked. *)
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let c = Blockcache.Cache.create ~capacity_blocks:8 (Worm.Mem_device.io d) in
  let io = Blockcache.Cache.io c in
  for i = 0 to 31 do
    ignore (io.Worm.Block_io.append (Bytes.make 64 (Char.chr (65 + (i mod 26)))))
  done;
  Blockcache.Cache.drop c;
  Blockcache.Cache.reset_counters c;
  (* Touch the hot set twice: first read fills probation, second promotes. *)
  List.iter (fun i -> ignore (io.Worm.Block_io.read i)) [ 0; 1; 0; 1 ];
  let s = Blockcache.Cache.segments c in
  Alcotest.(check int) "promotions" 2 s.Blockcache.Cache.promotions;
  Alcotest.(check int) "protected holds hot set" 2 s.Blockcache.Cache.protected_resident;
  (* One-pass scan over everything else. *)
  for i = 2 to 31 do
    ignore (io.Worm.Block_io.read i)
  done;
  Alcotest.(check bool) "hot block 0 survives scan" true (Blockcache.Cache.contains c 0);
  Alcotest.(check bool) "hot block 1 survives scan" true (Blockcache.Cache.contains c 1);
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 1);
  let s = Blockcache.Cache.segments c in
  Alcotest.(check bool) "post-scan hot reads are hits" true (s.Blockcache.Cache.data_hits >= 4)

let test_cache_meta_partition () =
  (* Blocks the classifier marks Meta live in their own partition: data
     traffic can never evict them, and their hits/misses are counted
     separately. *)
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let classify b = if Bytes.get b 0 = 'm' then Blockcache.Cache.Meta else Blockcache.Cache.Data in
  let c =
    Blockcache.Cache.create ~capacity_blocks:8 ~meta_blocks:2 ~classify (Worm.Mem_device.io d)
  in
  let io = Blockcache.Cache.io c in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'm'));
  for _ = 1 to 20 do
    ignore (io.Worm.Block_io.append (Bytes.make 64 'd'))
  done;
  Blockcache.Cache.drop c;
  Blockcache.Cache.reset_counters c;
  ignore (io.Worm.Block_io.read 0);
  (* Flood the data side. *)
  for i = 1 to 20 do
    ignore (io.Worm.Block_io.read i)
  done;
  Alcotest.(check bool) "meta survives data flood" true (Blockcache.Cache.contains c 0);
  ignore (io.Worm.Block_io.read 0);
  let s = Blockcache.Cache.segments c in
  Alcotest.(check int) "meta miss" 1 s.Blockcache.Cache.meta_misses;
  Alcotest.(check int) "meta hit" 1 s.Blockcache.Cache.meta_hits;
  Alcotest.(check int) "meta resident" 1 s.Blockcache.Cache.meta_resident;
  Alcotest.(check int) "data misses" 20 s.Blockcache.Cache.data_misses

let test_cache_read_many_mixed () =
  (* A batched read serves residents from the cache and fetches only the
     misses, returning results in request order. *)
  let d, c, io = mk_cached () in
  for i = 0 to 5 do
    ignore (io.Worm.Block_io.append (Bytes.make 64 (Char.chr (97 + i))))
  done;
  Blockcache.Cache.drop c;
  ignore (io.Worm.Block_io.read 2);
  Blockcache.Cache.reset_counters c;
  let before = (Worm.Mem_device.io d).Worm.Block_io.stats.Worm.Dev_stats.reads in
  let rs = Worm.Block_io.read_many io [ 0; 2; 4 ] in
  let after = (Worm.Mem_device.io d).Worm.Block_io.stats.Worm.Dev_stats.reads in
  List.iteri
    (fun n r ->
      let expect = Bytes.make 64 (Char.chr (97 + (2 * n))) in
      Alcotest.(check bytes) (Printf.sprintf "slot %d" n) expect (Result.get_ok r))
    rs;
  Alcotest.(check int) "one batched hit" 1 (Blockcache.Cache.hits c);
  Alcotest.(check int) "two batched misses" 2 (Blockcache.Cache.misses c);
  Alcotest.(check int) "device read only the misses" 2 (after - before);
  (* Probation holds one block here, so of the two fetches only the later
     survives; the batched hit on 2 promoted it to protected. *)
  Alcotest.(check bool) "hit promoted, newest fetch resident" true
    (Blockcache.Cache.contains c 2 && Blockcache.Cache.contains c 4)

let test_cache_invalidate_evicts () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Result.get_ok (io.Worm.Block_io.invalidate 0);
  Alcotest.(check bool) "evicted" false (Blockcache.Cache.contains c 0);
  let b = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bool) "reads invalidated pattern" true (Worm.Block_io.is_invalidated_pattern b)

let test_cache_masks_device_corruption () =
  (* Once cached, a block stays readable even if the medium is later
     corrupted — the paper's warm-cache behaviour. *)
  let d, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Worm.Mem_device.raw_poke d 0 (Bytes.make 64 'Z');
  Alcotest.(check bytes) "cache wins" (Bytes.make 64 'a') (Result.get_ok (io.Worm.Block_io.read 0));
  Blockcache.Cache.drop c;
  Alcotest.(check bytes) "device truth after drop" (Bytes.make 64 'Z')
    (Result.get_ok (io.Worm.Block_io.read 0))

let test_cache_hit_returns_copy () =
  (* Regression: a cache hit used to alias the resident buffer, so a caller
     mutating the returned bytes corrupted every later hit. *)
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  let b1 = Result.get_ok (io.Worm.Block_io.read 0) in
  Bytes.fill b1 0 64 'X';
  let b2 = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bytes) "hit unaffected by caller mutation" (Bytes.make 64 'a') b2;
  (* The insert path must copy too: mutating the appended buffer afterwards
     must not reach the cache. *)
  let src = Bytes.make 64 'b' in
  ignore (io.Worm.Block_io.append src);
  Bytes.fill src 0 64 'Y';
  Alcotest.(check bytes) "insert copied" (Bytes.make 64 'b')
    (Result.get_ok (io.Worm.Block_io.read 1));
  Alcotest.(check bool) "still cached" true (Blockcache.Cache.contains c 1)

let test_cache_metrics_mirror () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let m = Obs.Metrics.create () in
  let c = Blockcache.Cache.create ~capacity_blocks:4 ~metrics:m (Worm.Mem_device.io d) in
  let io = Blockcache.Cache.io c in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 0);
  let v name = List.assoc name (Obs.Metrics.counters m) in
  Alcotest.(check int) "shared miss counter" 1 (v "cache_misses");
  Alcotest.(check int) "shared hit counter" 1 (v "cache_hits")

let test_cache_preload () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  Result.get_ok (Blockcache.Cache.preload c 0);
  Alcotest.(check bool) "preloaded" true (Blockcache.Cache.contains c 0)

let () =
  Testkit.run "blockcache"
    [
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "peek no promote" `Quick test_lru_peek_does_not_promote;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_and_clear;
          Alcotest.test_case "mru order" `Quick test_lru_mru_order;
          Alcotest.test_case "stress bounded" `Quick test_lru_stress;
          Alcotest.test_case "capacity-1 churn" `Quick test_lru_capacity_one_churn;
          Alcotest.test_case "replace at full no evict" `Quick test_lru_replace_at_full_no_evict;
          Alcotest.test_case "mru order after remove" `Quick
            test_lru_mru_order_after_interleaved_remove;
        ] );
      ( "cache",
        [
          Alcotest.test_case "read-through" `Quick test_cache_read_through;
          Alcotest.test_case "appends inserted" `Quick test_cache_appends_inserted;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "scan resistance" `Quick test_cache_scan_resistance;
          Alcotest.test_case "meta partition" `Quick test_cache_meta_partition;
          Alcotest.test_case "read_many mixed" `Quick test_cache_read_many_mixed;
          Alcotest.test_case "invalidate evicts" `Quick test_cache_invalidate_evicts;
          Alcotest.test_case "masks device corruption" `Quick test_cache_masks_device_corruption;
          Alcotest.test_case "hit returns a copy" `Quick test_cache_hit_returns_copy;
          Alcotest.test_case "metrics mirror" `Quick test_cache_metrics_mirror;
          Alcotest.test_case "preload" `Quick test_cache_preload;
        ] );
    ]
