(* LRU and the block cache (the paper's buffer pool). *)

let test_lru_basic () =
  let l = Blockcache.Lru.create ~capacity:2 in
  Alcotest.(check (option (pair int string))) "no eviction" None (Blockcache.Lru.add l 1 "a");
  Alcotest.(check (option (pair int string))) "no eviction" None (Blockcache.Lru.add l 2 "b");
  Alcotest.(check (option string)) "find 1" (Some "a") (Blockcache.Lru.find l 1);
  (* 2 is now least-recently-used. *)
  (match Blockcache.Lru.add l 3 "c" with
  | Some (2, "b") -> ()
  | _ -> Alcotest.fail "expected eviction of 2");
  Alcotest.(check (option string)) "2 gone" None (Blockcache.Lru.find l 2);
  Alcotest.(check int) "length" 2 (Blockcache.Lru.length l)

let test_lru_replace () =
  let l = Blockcache.Lru.create ~capacity:2 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 1 "a2");
  Alcotest.(check int) "no duplicate" 1 (Blockcache.Lru.length l);
  Alcotest.(check (option string)) "replaced" (Some "a2") (Blockcache.Lru.find l 1)

let test_lru_peek_does_not_promote () =
  let l = Blockcache.Lru.create ~capacity:2 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 2 "b");
  ignore (Blockcache.Lru.peek l 1);
  (match Blockcache.Lru.add l 3 "c" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "peek should not promote")

let test_lru_remove_and_clear () =
  let l = Blockcache.Lru.create ~capacity:4 in
  ignore (Blockcache.Lru.add l 1 "a");
  ignore (Blockcache.Lru.add l 2 "b");
  Blockcache.Lru.remove l 1;
  Alcotest.(check (option string)) "removed" None (Blockcache.Lru.find l 1);
  Blockcache.Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Blockcache.Lru.length l)

let test_lru_mru_order () =
  let l = Blockcache.Lru.create ~capacity:4 in
  List.iter (fun k -> ignore (Blockcache.Lru.add l k "")) [ 1; 2; 3 ];
  ignore (Blockcache.Lru.find l 1);
  Alcotest.(check (list int)) "order" [ 1; 3; 2 ] (Blockcache.Lru.keys_mru_order l)

let test_lru_stress () =
  let l = Blockcache.Lru.create ~capacity:16 in
  for i = 0 to 999 do
    ignore (Blockcache.Lru.add l (i mod 40) (string_of_int i))
  done;
  Alcotest.(check int) "bounded" 16 (Blockcache.Lru.length l)

let mk_cached () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let c = Blockcache.Cache.create ~capacity_blocks:4 (Worm.Mem_device.io d) in
  (d, c, Blockcache.Cache.io c)

let test_cache_read_through () =
  let d, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  Blockcache.Cache.reset_counters c;
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 0);
  Alcotest.(check int) "one miss" 1 (Blockcache.Cache.misses c);
  Alcotest.(check int) "one hit" 1 (Blockcache.Cache.hits c);
  ignore d

let test_cache_appends_inserted () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Alcotest.(check bool) "appended block cached" true (Blockcache.Cache.contains c 0);
  ignore (io.Worm.Block_io.read 0);
  Alcotest.(check int) "hit without device read" 1 (Blockcache.Cache.hits c)

let test_cache_eviction () =
  let _, c, io = mk_cached () in
  for i = 0 to 7 do
    ignore (io.Worm.Block_io.append (Bytes.make 64 (Char.chr (97 + i))))
  done;
  Alcotest.(check int) "bounded" 4 (Blockcache.Cache.resident c);
  Alcotest.(check bool) "old evicted" false (Blockcache.Cache.contains c 0);
  Alcotest.(check bool) "new resident" true (Blockcache.Cache.contains c 7)

let test_cache_invalidate_evicts () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Result.get_ok (io.Worm.Block_io.invalidate 0);
  Alcotest.(check bool) "evicted" false (Blockcache.Cache.contains c 0);
  let b = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bool) "reads invalidated pattern" true (Worm.Block_io.is_invalidated_pattern b)

let test_cache_masks_device_corruption () =
  (* Once cached, a block stays readable even if the medium is later
     corrupted — the paper's warm-cache behaviour. *)
  let d, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Worm.Mem_device.raw_poke d 0 (Bytes.make 64 'Z');
  Alcotest.(check bytes) "cache wins" (Bytes.make 64 'a') (Result.get_ok (io.Worm.Block_io.read 0));
  Blockcache.Cache.drop c;
  Alcotest.(check bytes) "device truth after drop" (Bytes.make 64 'Z')
    (Result.get_ok (io.Worm.Block_io.read 0))

let test_cache_hit_returns_copy () =
  (* Regression: a cache hit used to alias the resident buffer, so a caller
     mutating the returned bytes corrupted every later hit. *)
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  let b1 = Result.get_ok (io.Worm.Block_io.read 0) in
  Bytes.fill b1 0 64 'X';
  let b2 = Result.get_ok (io.Worm.Block_io.read 0) in
  Alcotest.(check bytes) "hit unaffected by caller mutation" (Bytes.make 64 'a') b2;
  (* The insert path must copy too: mutating the appended buffer afterwards
     must not reach the cache. *)
  let src = Bytes.make 64 'b' in
  ignore (io.Worm.Block_io.append src);
  Bytes.fill src 0 64 'Y';
  Alcotest.(check bytes) "insert copied" (Bytes.make 64 'b')
    (Result.get_ok (io.Worm.Block_io.read 1));
  Alcotest.(check bool) "still cached" true (Blockcache.Cache.contains c 1)

let test_cache_metrics_mirror () =
  let d = Worm.Mem_device.create ~block_size:64 ~capacity:64 () in
  let m = Obs.Metrics.create () in
  let c = Blockcache.Cache.create ~capacity_blocks:4 ~metrics:m (Worm.Mem_device.io d) in
  let io = Blockcache.Cache.io c in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  ignore (io.Worm.Block_io.read 0);
  ignore (io.Worm.Block_io.read 0);
  let v name = List.assoc name (Obs.Metrics.counters m) in
  Alcotest.(check int) "shared miss counter" 1 (v "cache_misses");
  Alcotest.(check int) "shared hit counter" 1 (v "cache_hits")

let test_cache_preload () =
  let _, c, io = mk_cached () in
  ignore (io.Worm.Block_io.append (Bytes.make 64 'a'));
  Blockcache.Cache.drop c;
  Result.get_ok (Blockcache.Cache.preload c 0);
  Alcotest.(check bool) "preloaded" true (Blockcache.Cache.contains c 0)

let () =
  Testkit.run "blockcache"
    [
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "replace" `Quick test_lru_replace;
          Alcotest.test_case "peek no promote" `Quick test_lru_peek_does_not_promote;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_and_clear;
          Alcotest.test_case "mru order" `Quick test_lru_mru_order;
          Alcotest.test_case "stress bounded" `Quick test_lru_stress;
        ] );
      ( "cache",
        [
          Alcotest.test_case "read-through" `Quick test_cache_read_through;
          Alcotest.test_case "appends inserted" `Quick test_cache_appends_inserted;
          Alcotest.test_case "eviction" `Quick test_cache_eviction;
          Alcotest.test_case "invalidate evicts" `Quick test_cache_invalidate_evicts;
          Alcotest.test_case "masks device corruption" `Quick test_cache_masks_device_corruption;
          Alcotest.test_case "hit returns a copy" `Quick test_cache_hit_returns_copy;
          Alcotest.test_case "metrics mirror" `Quick test_cache_metrics_mirror;
          Alcotest.test_case "preload" `Quick test_cache_preload;
        ] );
    ]
