(* The CDFS-on-log-files layer (section 5.2) and the working Swallow
   repository (section 5.1). *)

open Testkit

(* -------------------------------- logfs -------------------------------- *)

let mk_fs f = ok (History.Logfs.create f.srv ~root:"/cdfs")

let test_write_read () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "hello world");
  Alcotest.(check string) "read back" "hello world" (ok (History.Logfs.read fs ~name:"doc"))

let test_fragmented_update () =
  (* The CDFS extension the paper describes: "only the modified portion of
     a file need be rewritten each time". *)
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "aaaaaaaaaa");
  ok (History.Logfs.write fs ~name:"doc" ~off:3 "XYZ");
  Alcotest.(check string) "patched" "aaaXYZaaaa" (ok (History.Logfs.read fs ~name:"doc"));
  (* Only the 3 modified bytes were logged, not the whole file. *)
  let s = Clio.Server.stats f.srv in
  Alcotest.(check bool) "delta-sized logging" true (s.Clio.Stats.bytes_client < 60)

let test_write_past_end_extends () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "ab");
  ok (History.Logfs.write fs ~name:"doc" ~off:5 "z");
  let got = ok (History.Logfs.read fs ~name:"doc") in
  Alcotest.(check int) "extended" 6 (String.length got);
  Alcotest.(check string) "hole zero-filled" "ab\000\000\000z" got

let test_truncate () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "0123456789");
  ok (History.Logfs.truncate fs ~name:"doc" 4);
  Alcotest.(check string) "truncated" "0123" (ok (History.Logfs.read fs ~name:"doc"));
  ok (History.Logfs.write fs ~name:"doc" ~off:4 "X");
  Alcotest.(check string) "grows again" "0123X" (ok (History.Logfs.read fs ~name:"doc"))

let test_versions () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "v1");
  Alcotest.(check int) "sealed 1" 1 (ok (History.Logfs.seal_version fs ~name:"doc"));
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "v2");
  Alcotest.(check int) "sealed 2" 2 (ok (History.Logfs.seal_version fs ~name:"doc"));
  ok (History.Logfs.write fs ~name:"doc" ~off:2 "+work");
  Alcotest.(check string) "version 1" "v1" (ok (History.Logfs.read ~version:1 fs ~name:"doc"));
  Alcotest.(check string) "version 2" "v2" (ok (History.Logfs.read ~version:2 fs ~name:"doc"));
  Alcotest.(check string) "working" "v2+work" (ok (History.Logfs.read fs ~name:"doc"));
  Alcotest.(check int) "count" 2 (ok (History.Logfs.versions fs ~name:"doc"));
  match History.Logfs.read ~version:3 fs ~name:"doc" with
  | Error Clio.Errors.No_entry -> ()
  | _ -> Alcotest.fail "unsealed version must not read"

let test_multiple_files_share_the_store () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"a" ~off:0 "AAA");
  ok (History.Logfs.write fs ~name:"b" ~off:0 "BBB");
  ok (History.Logfs.write fs ~name:"a" ~off:3 "aa");
  Alcotest.(check (list string)) "files" [ "a"; "b" ] (ok (History.Logfs.files fs));
  Alcotest.(check string) "a" "AAAaa" (ok (History.Logfs.read fs ~name:"a"));
  Alcotest.(check string) "b" "BBB" (ok (History.Logfs.read fs ~name:"b"))

let test_shares_device_with_other_logs () =
  (* The section 5.2 sharing claim: the CDFS store and ordinary log files
     coexist on one volume sequence. *)
  let f = make_fixture () in
  let fs = mk_fs f in
  let audit = create_log f "/audit" in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "file data");
  ignore (append f ~log:audit "audit data");
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "FILE");
  Alcotest.(check string) "fs intact" "FILE data" (ok (History.Logfs.read fs ~name:"doc"));
  check_payloads "log intact" [ "audit data" ] (all_payloads f.srv ~log:audit)

let test_recovery_via_replay () =
  let f = make_fixture () in
  let fs = mk_fs f in
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "persistent");
  ignore (ok (History.Logfs.seal_version fs ~name:"doc"));
  ok (History.Logfs.write fs ~name:"doc" ~off:0 "PERSISTENT");
  ignore (ok (Clio.Server.force f.srv));
  let _srv = crash_and_recover f in
  let fs2 = mk_fs f in
  Alcotest.(check string) "working recovered" "PERSISTENT" (ok (History.Logfs.read fs2 ~name:"doc"));
  Alcotest.(check string) "old version recovered" "persistent"
    (ok (History.Logfs.read ~version:1 fs2 ~name:"doc"))

(* ------------------------------- swallow ------------------------------- *)

let mk_swallow () =
  Baseline.Swallow.create (Worm.Mem_device.io (Worm.Mem_device.create ~block_size:256 ~capacity:2048 ()))

let test_swallow_roundtrip () =
  let s = mk_swallow () in
  ignore (ok (Baseline.Swallow.write_version s 1 "v1 of object 1"));
  ignore (ok (Baseline.Swallow.write_version s 2 "v1 of object 2"));
  ignore (ok (Baseline.Swallow.write_version s 1 "v2 of object 1"));
  Alcotest.(check string) "current 1" "v2 of object 1" (ok (Baseline.Swallow.read_current s 1));
  Alcotest.(check string) "current 2" "v1 of object 2" (ok (Baseline.Swallow.read_current s 2));
  Alcotest.(check int) "versions" 2 (Baseline.Swallow.versions s 1)

let test_swallow_back_walk_costs () =
  let s = mk_swallow () in
  for i = 1 to 20 do
    ignore (ok (Baseline.Swallow.write_version s 7 (Printf.sprintf "v%d" i)))
  done;
  let data, reads = ok (Baseline.Swallow.read_back s 7 ~steps:5) in
  Alcotest.(check string) "five back" "v15" data;
  Alcotest.(check int) "one read per hop" 6 reads

let test_swallow_forward_scan_is_total () =
  let s = mk_swallow () in
  (* Interleave two objects so object 1's versions are sparse. *)
  for i = 1 to 10 do
    ignore (ok (Baseline.Swallow.write_version s 1 (Printf.sprintf "a%d" i)));
    for _ = 1 to 9 do
      ignore (ok (Baseline.Swallow.write_version s 2 "filler"))
    done;
    ignore i
  done;
  let blocks, reads = ok (Baseline.Swallow.history_forward s 1 ~from_block:0) in
  Alcotest.(check int) "found all versions" 10 (List.length blocks);
  Alcotest.(check int) "read every device block" 100 reads;
  (* Ours, for contrast: locating all 10 with the entrymap costs O(10 log). *)
  Alcotest.(check bool) "clio would be far cheaper" true
    (10 * Clio.Analysis.locate_examinations ~fanout:16 ~distance:100 < reads)

let test_swallow_rebuild_scans_everything () =
  let s = mk_swallow () in
  for i = 1 to 50 do
    ignore (ok (Baseline.Swallow.write_version s (i mod 5) "data"))
  done;
  let examined = ok (Baseline.Swallow.rebuild_index s) in
  Alcotest.(check int) "full scan" 50 examined;
  Alcotest.(check string) "index correct after rebuild" "data"
    (ok (Baseline.Swallow.read_current s 3))

let test_swallow_too_large () =
  let s = mk_swallow () in
  match Baseline.Swallow.write_version s 1 (String.make 1000 'x') with
  | Error (Clio.Errors.Entry_too_large _) -> ()
  | _ -> Alcotest.fail "oversized version must fail"

let () =
  run "logfs"
    [
      ( "cdfs-on-log-files",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "fragmented update" `Quick test_fragmented_update;
          Alcotest.test_case "write past end" `Quick test_write_past_end_extends;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "versions" `Quick test_versions;
          Alcotest.test_case "multiple files" `Quick test_multiple_files_share_the_store;
          Alcotest.test_case "shares device" `Quick test_shares_device_with_other_logs;
          Alcotest.test_case "recovery" `Quick test_recovery_via_replay;
        ] );
      ( "swallow",
        [
          Alcotest.test_case "roundtrip" `Quick test_swallow_roundtrip;
          Alcotest.test_case "back walk costs" `Quick test_swallow_back_walk_costs;
          Alcotest.test_case "forward scan total" `Quick test_swallow_forward_scan_is_total;
          Alcotest.test_case "rebuild scans everything" `Quick test_swallow_rebuild_scans_everything;
          Alcotest.test_case "oversized rejected" `Quick test_swallow_too_large;
        ] );
    ]
