(* The section-4 history-based applications. *)

open Testkit

(* ----------------------------- checkpoint ----------------------------- *)

let counter_app f path =
  ok
    (History.Checkpoint.create f.srv ~path
       ~encode:(fun n -> string_of_int n)
       ~decode:(fun s ->
         match int_of_string_opt s with
         | Some n -> Ok n
         | None -> Error (Clio.Errors.Bad_record s))
       ~apply:(fun acc n -> acc + n)
       ~init:0)

let test_checkpoint_post_and_state () =
  let f = make_fixture () in
  let app = counter_app f "/counter" in
  ignore (ok (History.Checkpoint.post app 5));
  ignore (ok (History.Checkpoint.post app 7));
  Alcotest.(check int) "cached state" 12 (History.Checkpoint.state app)

let test_checkpoint_rebuild_equals_cache () =
  let f = make_fixture () in
  let app = counter_app f "/counter" in
  List.iter (fun n -> ignore (ok (History.Checkpoint.post app n))) [ 1; 2; 3; 4; 5 ];
  ok (History.Checkpoint.rebuild app ~init:0);
  Alcotest.(check int) "rebuild equals incremental" 15 (History.Checkpoint.state app)

let test_checkpoint_recovery_is_create () =
  let f = make_fixture () in
  let app = counter_app f "/counter" in
  List.iter (fun n -> ignore (ok (History.Checkpoint.post app n))) [ 10; 20 ];
  ignore (ok (Clio.Server.force f.srv));
  let _srv = crash_and_recover f in
  let app2 = counter_app f "/counter" in
  Alcotest.(check int) "state recovered by replay" 30 (History.Checkpoint.state app2)

let test_checkpoint_state_at_time () =
  let f = make_fixture () in
  let app = counter_app f "/counter" in
  ignore (ok (History.Checkpoint.post app 1));
  let t_mid = Option.get (ok (History.Checkpoint.post app 2)) in
  ignore (ok (History.Checkpoint.post app 4));
  Alcotest.(check int) "historical state" 3 (ok (History.Checkpoint.state_at app ~time:t_mid ~init:0));
  Alcotest.(check int) "current unchanged" 7 (History.Checkpoint.state app)

(* ---------------------------- file history ---------------------------- *)

let test_fs_write_read () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  ok (History.File_history.write_file fs ~name:"readme" "v1");
  Alcotest.(check string) "read back" "v1" (ok (History.File_history.read_file fs ~name:"readme"));
  ok (History.File_history.write_file fs ~name:"readme" "v2 longer");
  Alcotest.(check string) "updated" "v2 longer" (ok (History.File_history.read_file fs ~name:"readme"));
  Alcotest.(check int) "size" 9 (ok (History.File_history.stat fs ~name:"readme")).History.File_history.size

let test_fs_versions_and_time_travel () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  ok (History.File_history.write_file fs ~name:"doc" "draft");
  Sim.Clock.advance f.clock 1000L;
  ok (History.File_history.write_file fs ~name:"doc" "final");
  let versions = ok (History.File_history.versions fs ~name:"doc") in
  Alcotest.(check int) "two versions" 2 (List.length versions);
  let t1 = List.nth versions 0 in
  Alcotest.(check (option string)) "earlier version readable" (Some "draft")
    (ok (History.File_history.read_file_at fs ~name:"doc" ~time:t1));
  Alcotest.(check (option string)) "before creation: absent" None
    (ok (History.File_history.read_file_at fs ~name:"doc" ~time:(Int64.sub t1 1L)))

let test_fs_remove_is_logged_not_erased () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  ok (History.File_history.write_file fs ~name:"tmp" "contents");
  let t_alive = (ok (History.File_history.stat fs ~name:"tmp")).History.File_history.mtime in
  Sim.Clock.advance f.clock 1000L;
  ok (History.File_history.remove fs ~name:"tmp");
  (match History.File_history.read_file fs ~name:"tmp" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "removed file must not read");
  Alcotest.(check (list string)) "not listed" [] (History.File_history.list_files fs);
  (* ... but history remains. *)
  Alcotest.(check (option string)) "old version still accessible" (Some "contents")
    (ok (History.File_history.read_file_at fs ~name:"tmp" ~time:t_alive))

let test_fs_chmod () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  ok (History.File_history.write_file fs ~name:"bin" "#!x");
  ok (History.File_history.set_mode fs ~name:"bin" 0o755);
  Alcotest.(check int) "mode" 0o755 (ok (History.File_history.stat fs ~name:"bin")).History.File_history.mode

let test_fs_recovery () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  ok (History.File_history.write_file fs ~name:"a" "alpha");
  ok (History.File_history.write_file fs ~name:"b" "beta");
  ok (History.File_history.remove fs ~name:"a");
  ok (History.File_history.write_file fs ~name:"b" "beta2");
  ignore (ok (Clio.Server.force f.srv));
  let _srv = crash_and_recover f in
  let fs2 = ok (History.File_history.create f.srv ~root:"/fs") in
  Alcotest.(check (list string)) "files" [ "b" ] (History.File_history.list_files fs2);
  Alcotest.(check string) "contents" "beta2" (ok (History.File_history.read_file fs2 ~name:"b"))

let test_fs_refresh_matches_incremental () =
  let f = make_fixture () in
  let fs = ok (History.File_history.create f.srv ~root:"/fs") in
  for i = 0 to 30 do
    ok (History.File_history.write_file fs ~name:(Printf.sprintf "f%d" (i mod 7)) (Printf.sprintf "v%d" i))
  done;
  let before = List.map (fun n -> (n, ok (History.File_history.read_file fs ~name:n))) (History.File_history.list_files fs) in
  ok (History.File_history.refresh fs);
  let after = List.map (fun n -> (n, ok (History.File_history.read_file fs ~name:n))) (History.File_history.list_files fs) in
  Alcotest.(check bool) "replay equals incremental" true (before = after)

(* -------------------------------- mail -------------------------------- *)

let test_mail_deliver_and_list () =
  let f = make_fixture () in
  let m = ok (History.Mail.create f.srv) in
  ignore (ok (History.Mail.deliver m ~mailbox:"smith" ~sender:"jones" ~subject:"hi" ~body:"hello smith"));
  ignore (ok (History.Mail.deliver m ~mailbox:"smith" ~sender:"root" ~subject:"re: hi" ~body:"again"));
  ignore (ok (History.Mail.deliver m ~mailbox:"jones" ~sender:"smith" ~subject:"reply" ~body:"hey"));
  Alcotest.(check (list string)) "mailboxes" [ "jones"; "smith" ] (List.sort compare (History.Mail.mailboxes m));
  let msgs = ok (History.Mail.messages m ~mailbox:"smith") in
  Alcotest.(check int) "two messages" 2 (List.length msgs);
  let first = List.hd msgs in
  Alcotest.(check string) "sender" "jones" first.History.Mail.sender;
  Alcotest.(check string) "subject" "hi" first.History.Mail.subject;
  Alcotest.(check string) "body" "hello smith" first.History.Mail.body

let test_mail_unread_and_pointers () =
  let f = make_fixture () in
  let m = ok (History.Mail.create f.srv) in
  let t1 = ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"1" ~body:"x") in
  let _t2 = ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"2" ~body:"y") in
  Alcotest.(check int) "two unread" 2 (List.length (ok (History.Mail.unread m ~mailbox:"u")));
  ok (History.Mail.mark_read m ~mailbox:"u" ~upto:t1);
  let unread = ok (History.Mail.unread m ~mailbox:"u") in
  Alcotest.(check int) "one unread" 1 (List.length unread);
  Alcotest.(check string) "the right one" "2" (List.hd unread).History.Mail.subject

let test_mail_messages_permanent () =
  (* Marking read never deletes: the full history stays. *)
  let f = make_fixture () in
  let m = ok (History.Mail.create f.srv) in
  let t = ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"s" ~body:"b") in
  ok (History.Mail.mark_read m ~mailbox:"u" ~upto:t);
  Alcotest.(check int) "message still there" 1 (List.length (ok (History.Mail.messages m ~mailbox:"u")))

let test_mail_agent_state_recovers () =
  let f = make_fixture () in
  let m = ok (History.Mail.create f.srv) in
  let t1 = ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"1" ~body:"x") in
  ignore (ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"2" ~body:"y"));
  ok (History.Mail.mark_read m ~mailbox:"u" ~upto:t1);
  ignore (ok (Clio.Server.force f.srv));
  let _srv = crash_and_recover f in
  let m2 = ok (History.Mail.create f.srv) in
  Alcotest.(check int64) "read pointer recovered" t1 (History.Mail.read_pointer m2 ~mailbox:"u");
  Alcotest.(check int) "unread recovered" 1 (List.length (ok (History.Mail.unread m2 ~mailbox:"u")))

let test_mail_since_filter () =
  let f = make_fixture () in
  let m = ok (History.Mail.create f.srv) in
  let t1 = ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"old" ~body:"x") in
  ignore (ok (History.Mail.deliver m ~mailbox:"u" ~sender:"a" ~subject:"new" ~body:"y"));
  let recent = ok (History.Mail.messages ~since:t1 m ~mailbox:"u") in
  Alcotest.(check int) "one recent" 1 (List.length recent);
  Alcotest.(check string) "the new one" "new" (List.hd recent).History.Mail.subject

(* -------------------------------- audit -------------------------------- *)

let ev ?(outcome = History.Audit.Granted) principal action target =
  { History.Audit.principal; action; target; outcome }

let test_audit_per_principal () =
  let f = make_fixture () in
  let a = ok (History.Audit.create f.srv) in
  ignore (ok (History.Audit.log_event a (ev "alice" "login" "tty0")));
  ignore (ok (History.Audit.log_event a (ev "bob" "open" "/etc/passwd" ~outcome:History.Audit.Denied)));
  ignore (ok (History.Audit.log_event a (ev "alice" "logout" "tty0")));
  Alcotest.(check (list string)) "principals" [ "alice"; "bob" ]
    (List.sort compare (History.Audit.principals a));
  let alice = ok (History.Audit.events_for a ~principal:"alice") in
  Alcotest.(check int) "alice has two" 2 (List.length alice);
  Alcotest.(check string) "order preserved" "login" (List.hd alice).History.Audit.event.History.Audit.action

let test_audit_time_range () =
  let f = make_fixture () in
  let a = ok (History.Audit.create f.srv) in
  let stamps =
    List.map
      (fun i ->
        Sim.Clock.advance f.clock 1_000_000L;
        ok (History.Audit.log_event a (ev "u" "act" (string_of_int i))))
      [ 0; 1; 2; 3; 4 ]
  in
  let t1 = List.nth stamps 1 and t3 = List.nth stamps 3 in
  let slice = ok (History.Audit.events_between a ~from_ts:t1 ~to_ts:t3) in
  Alcotest.(check int) "three in range" 3 (List.length slice);
  Alcotest.(check string) "starts at 1" "1" (List.hd slice).History.Audit.event.History.Audit.target

let test_audit_denial_bursts () =
  let f = make_fixture () in
  let a = ok (History.Audit.create f.srv) in
  (* Three quick denials, a pause, then two more. *)
  List.iter
    (fun gap ->
      Sim.Clock.advance f.clock gap;
      ignore (ok (History.Audit.log_event a (ev "mallory" "su" "root" ~outcome:History.Audit.Denied))))
    [ 0L; 100L; 100L; 60_000_000L; 100L ];
  let bursts = ok (History.Audit.denial_bursts a ~principal:"mallory" ~window_us:10_000L ~threshold:3) in
  Alcotest.(check int) "exactly one burst" 1 (List.length bursts);
  (* Granted events never count toward bursts. *)
  ignore (ok (History.Audit.log_event a (ev "mallory" "login" "tty" ~outcome:History.Audit.Granted)));
  let bursts2 = ok (History.Audit.denial_bursts a ~principal:"mallory" ~window_us:10_000L ~threshold:3) in
  Alcotest.(check int) "unchanged" 1 (List.length bursts2)

let test_audit_off_hours () =
  let day = 86_400_000_000L in
  let f = make_fixture () in
  let a = ok (History.Audit.create f.srv) in
  (* 02:00 (off hours), then 12:00 (work hours). *)
  Sim.Clock.advance f.clock (Int64.mul 2L 3_600_000_000L);
  ignore (ok (History.Audit.log_event a (ev "nightowl" "login" "tty")));
  Sim.Clock.advance f.clock (Int64.mul 10L 3_600_000_000L);
  ignore (ok (History.Audit.log_event a (ev "dayjob" "login" "tty")));
  let sus =
    ok
      (History.Audit.off_hours_activity a ~day_us:day
         ~work_start:(Int64.mul 8L 3_600_000_000L)
         ~work_end:(Int64.mul 18L 3_600_000_000L))
  in
  Alcotest.(check int) "one off-hours event" 1 (List.length sus);
  Alcotest.(check string) "the night owl" "nightowl"
    (List.hd sus).History.Audit.event.History.Audit.principal

let test_audit_survives_recovery () =
  let f = make_fixture () in
  let a = ok (History.Audit.create f.srv) in
  for i = 0 to 20 do
    ignore (ok (History.Audit.log_event a (ev "carol" "op" (string_of_int i))))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let _srv = crash_and_recover f in
  let a2 = ok (History.Audit.create f.srv) in
  Alcotest.(check int) "trail intact" 21 (List.length (ok (History.Audit.events_for a2 ~principal:"carol")))

let () =
  run "history"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "post and state" `Quick test_checkpoint_post_and_state;
          Alcotest.test_case "rebuild" `Quick test_checkpoint_rebuild_equals_cache;
          Alcotest.test_case "recovery" `Quick test_checkpoint_recovery_is_create;
          Alcotest.test_case "state at time" `Quick test_checkpoint_state_at_time;
        ] );
      ( "file-history",
        [
          Alcotest.test_case "write/read" `Quick test_fs_write_read;
          Alcotest.test_case "versions + time travel" `Quick test_fs_versions_and_time_travel;
          Alcotest.test_case "remove is logged" `Quick test_fs_remove_is_logged_not_erased;
          Alcotest.test_case "chmod" `Quick test_fs_chmod;
          Alcotest.test_case "recovery" `Quick test_fs_recovery;
          Alcotest.test_case "refresh equals incremental" `Quick test_fs_refresh_matches_incremental;
        ] );
      ( "mail",
        [
          Alcotest.test_case "deliver and list" `Quick test_mail_deliver_and_list;
          Alcotest.test_case "unread and pointers" `Quick test_mail_unread_and_pointers;
          Alcotest.test_case "messages permanent" `Quick test_mail_messages_permanent;
          Alcotest.test_case "agent state recovers" `Quick test_mail_agent_state_recovers;
          Alcotest.test_case "since filter" `Quick test_mail_since_filter;
        ] );
      ( "audit",
        [
          Alcotest.test_case "per principal" `Quick test_audit_per_principal;
          Alcotest.test_case "time range" `Quick test_audit_time_range;
          Alcotest.test_case "denial bursts" `Quick test_audit_denial_bursts;
          Alcotest.test_case "off hours" `Quick test_audit_off_hours;
          Alcotest.test_case "survives recovery" `Quick test_audit_survives_recovery;
        ] );
    ]
