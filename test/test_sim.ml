(* Simulation substrate: rng determinism, clocks, seek models, workloads. *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next a) (Sim.Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  let xs = List.init 16 (fun _ -> Sim.Rng.next a) in
  let ys = List.init 16 (fun _ -> Sim.Rng.next b) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_bounds () =
  let r = Sim.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let v = Sim.Rng.int_in r 5 9 in
    Alcotest.(check bool) "in closed range" true (v >= 5 && v <= 9);
    let f = Sim.Rng.float r 3.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 3.5)
  done

let test_rng_split_independent () =
  let r = Sim.Rng.create 3L in
  let s = Sim.Rng.split r in
  Alcotest.(check bool) "split differs" true (Sim.Rng.next r <> Sim.Rng.next s)

let test_rng_shuffle_permutes () =
  let r = Sim.Rng.create 9L in
  let a = Array.init 50 Fun.id in
  Sim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_clock_monotonic () =
  let c = Sim.Clock.simulated () in
  let a = Sim.Clock.now c in
  let b = Sim.Clock.now c in
  Alcotest.(check bool) "strictly increasing" true (Int64.compare b a > 0)

let test_clock_advance () =
  let c = Sim.Clock.simulated ~start:100L ~tick:0L () in
  Sim.Clock.advance c 50L;
  Alcotest.(check int64) "advanced" 150L (Sim.Clock.peek c)

let test_clock_wall_sane () =
  let c = Sim.Clock.wall () in
  let t = Sim.Clock.now c in
  (* After 2020-01-01 in microseconds. *)
  Alcotest.(check bool) "wall clock is recent" true (Int64.compare t 1_577_836_800_000_000L > 0)

let test_seek_zero_distance_free () =
  List.iter
    (fun m ->
      Alcotest.(check int64)
        (m.Sim.Seek_model.name ^ " zero seek") 0L
        (m.Sim.Seek_model.seek_us ~dist:0))
    [ Sim.Seek_model.optical; Sim.Seek_model.magnetic; Sim.Seek_model.ram ]

let test_seek_monotone () =
  let m = Sim.Seek_model.optical in
  let a = m.Sim.Seek_model.seek_us ~dist:10 in
  let b = m.Sim.Seek_model.seek_us ~dist:100_000 in
  Alcotest.(check bool) "longer seeks cost more" true (Int64.compare b a > 0)

let test_seek_optical_slower_than_magnetic () =
  let d = 300_000 in
  let o = Sim.Seek_model.optical.Sim.Seek_model.seek_us ~dist:d in
  let g = Sim.Seek_model.magnetic.Sim.Seek_model.seek_us ~dist:d in
  Alcotest.(check bool) "optical slower" true (Int64.compare o g > 0)

let test_seek_calibration () =
  (* Mean random seek on a 1M-block device should be in the ballpark the
     paper quotes: ~150 ms optical, ~30 ms magnetic. *)
  let avg m = Int64.to_float (Sim.Seek_model.average_seek_us m ~capacity:1_000_000) /. 1000.0 in
  let o = avg Sim.Seek_model.optical and g = avg Sim.Seek_model.magnetic in
  Alcotest.(check bool) "optical ~150ms" true (o > 100.0 && o < 220.0);
  Alcotest.(check bool) "magnetic ~30ms" true (g > 15.0 && g < 60.0)

let test_workload_login_shape () =
  let rng = Sim.Rng.create 11L in
  let recs = Sim.Workload.login_trace ~rng ~users:20 ~events:500 ~mean_gap_us:1000.0 in
  Alcotest.(check int) "count" 500 (List.length recs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "usage path" true
        (String.length r.Sim.Workload.path > 7 && String.sub r.Sim.Workload.path 0 7 = "/usage/");
      Alcotest.(check int) "fixed size" 60 (String.length r.Sim.Workload.payload))
    recs

let test_workload_login_c_ratio () =
  (* The payload size is calibrated so c (entry/block) ~ 1/15 with 1 KB
     blocks, as measured in section 3.5 (entry incl. header ~ 64-70 B). *)
  let rng = Sim.Rng.create 11L in
  let recs = Sim.Workload.login_trace ~rng ~users:20 ~events:100 ~mean_gap_us:1000.0 in
  let avg = float_of_int (Sim.Workload.total_payload recs) /. 100.0 in
  let c = (avg +. 12.0) /. 1024.0 in
  Alcotest.(check bool) "c near 1/15" true (c > 1.0 /. 20.0 && c < 1.0 /. 10.0)

let test_workload_mail () =
  let rng = Sim.Rng.create 5L in
  let recs = Sim.Workload.mail_trace ~rng ~mailboxes:8 ~messages:100 ~mean_body:200 ~mean_gap_us:100.0 in
  Alcotest.(check int) "count" 100 (List.length recs);
  List.iter
    (fun r -> Alcotest.(check bool) "mail path" true (String.sub r.Sim.Workload.path 0 6 = "/mail/"))
    recs

let test_workload_transactions_forced () =
  let rng = Sim.Rng.create 5L in
  let recs = Sim.Workload.transaction_trace ~rng ~streams:4 ~commits:50 ~mean_update:100 in
  Alcotest.(check int) "count" 50 (List.length recs);
  List.iter (fun r -> Alcotest.(check bool) "forced" true r.Sim.Workload.forced) recs

let test_workload_deterministic () =
  let mk () =
    Sim.Workload.churn_trace ~rng:(Sim.Rng.create 77L) ~files:30 ~writes:200
      ~short_lived_fraction:0.5
  in
  Alcotest.(check bool) "same trace from same seed" true (mk () = mk ())

let () =
  Testkit.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "wall sane" `Quick test_clock_wall_sane;
        ] );
      ( "seek-model",
        [
          Alcotest.test_case "zero distance free" `Quick test_seek_zero_distance_free;
          Alcotest.test_case "monotone" `Quick test_seek_monotone;
          Alcotest.test_case "optical slower" `Quick test_seek_optical_slower_than_magnetic;
          Alcotest.test_case "calibration" `Quick test_seek_calibration;
        ] );
      ( "workload",
        [
          Alcotest.test_case "login shape" `Quick test_workload_login_shape;
          Alcotest.test_case "login c ratio" `Quick test_workload_login_c_ratio;
          Alcotest.test_case "mail" `Quick test_workload_mail;
          Alcotest.test_case "transactions forced" `Quick test_workload_transactions_forced;
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        ] );
    ]
