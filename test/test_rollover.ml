(* Volume sequences (section 2.1): filling volumes, sealing, successor
   volumes, catalog snapshots, cross-volume reads and recovery. *)

open Testkit

let small_fixture ?(capacity = 32) () =
  make_fixture ~config:{ Clio.Config.default with fanout = 4 } ~block_size:256 ~capacity ()

let test_roll_when_full () =
  let f = small_fixture () in
  let log = create_log f "/r" in
  for i = 0 to 399 do
    ignore (append f ~log (Printf.sprintf "entry %03d with some padding bytes" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled at least twice" true (Clio.Server.nvols f.srv >= 3);
  Alcotest.(check int) "sealed count"
    (Clio.Server.nvols f.srv - 1)
    (Clio.Server.stats f.srv).Clio.Stats.volumes_sealed;
  let got = all_payloads f.srv ~log in
  Alcotest.(check int) "no entry lost across rolls" 400 (List.length got)

let test_cross_volume_read_order () =
  let f = small_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  let expect_a = ref [] and expect_b = ref [] in
  for i = 0 to 149 do
    let p = Printf.sprintf "%03d padding padding padding" i in
    if i mod 2 = 0 then begin
      ignore (append f ~log:a p);
      expect_a := p :: !expect_a
    end
    else begin
      ignore (append f ~log:b p);
      expect_b := p :: !expect_b
    end
  done;
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "a ordered across volumes" (List.rev !expect_a) (all_payloads f.srv ~log:a);
  check_payloads "b ordered across volumes" (List.rev !expect_b) (all_payloads f.srv ~log:b);
  check_payloads "a backward" (List.rev !expect_a) (all_payloads_backward f.srv ~log:a)

let test_volume_headers_chain () =
  let f = small_fixture () in
  let log = create_log f "/chain" in
  for i = 0 to 399 do
    ignore (append f ~log (Printf.sprintf "chain %d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let n = Clio.State.nvols st in
  Alcotest.(check bool) "multiple volumes" true (n > 1);
  for i = 0 to n - 1 do
    let v = ok (Clio.State.vol st i) in
    Alcotest.(check int) "vol_index matches position" i v.Clio.Vol.hdr.Clio.Volume.vol_index;
    if i > 0 then begin
      let prev = ok (Clio.State.vol st (i - 1)) in
      Alcotest.(check int64) "prev_uid links"
        prev.Clio.Vol.hdr.Clio.Volume.vol_uid
        v.Clio.Vol.hdr.Clio.Volume.prev_uid
    end
  done

let test_catalog_snapshot_on_new_volume () =
  (* Each volume re-logs the live catalog, so the newest volume alone is
     enough to rebuild it. *)
  let f = small_fixture () in
  let _old = create_log f "/created-on-vol0" in
  let log = create_log f "/filler" in
  for i = 0 to 399 do
    ignore (append f ~log (Printf.sprintf "filler %d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled" true (Clio.Server.nvols f.srv > 1);
  let srv = crash_and_recover f in
  (* The log created on volume 0 is still resolvable after recovery (its
     descriptor came from the newest volume's snapshot). *)
  ignore (ok (Clio.Server.resolve srv "/created-on-vol0"))

let test_recovery_of_multivolume_sequence () =
  let f = small_fixture () in
  let log = create_log f "/mv" in
  let payloads = List.init 150 (fun i -> Printf.sprintf "mv %03d padding padding pad" i) in
  List.iter (fun p -> ignore (append f ~log p)) payloads;
  ignore (ok (Clio.Server.force f.srv));
  let nvols_before = Clio.Server.nvols f.srv in
  let srv = crash_and_recover f in
  Alcotest.(check int) "volumes remounted" nvols_before (Clio.Server.nvols srv);
  let log = ok (Clio.Server.resolve srv "/mv") in
  check_payloads "identical after recovery" payloads (all_payloads srv ~log)

let test_devices_order_insensitive () =
  (* recover sorts volumes by their header index, not list order. *)
  let f = small_fixture () in
  let log = create_log f "/ooo" in
  for i = 0 to 149 do
    ignore (append f ~log (Printf.sprintf "ooo %d padding padding pad" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let devices = List.rev (fixture_devices f) in
  let srv =
    ok
      (Clio.Server.recover ~config:f.config ~clock:f.clock ?nvram:f.nvram
         ~alloc_volume:f.alloc ~devices ())
  in
  let log = ok (Clio.Server.resolve srv "/ooo") in
  Alcotest.(check int) "all entries" 150 (List.length (all_payloads srv ~log))

let test_time_search_across_volumes () =
  let f = small_fixture ~capacity:24 () in
  let log = create_log f "/tv" in
  let stamps = ref [] in
  for i = 0 to 199 do
    Sim.Clock.advance f.clock 1000L;
    stamps := Option.get (append f ~log (Printf.sprintf "t%03d padding padding pad" i)) :: !stamps
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled" true (Clio.Server.nvols f.srv > 1);
  let stamps = Array.of_list (List.rev !stamps) in
  List.iter
    (fun i ->
      let e = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log stamps.(i))) in
      Alcotest.(check bool) (Printf.sprintf "time search hits %d" i) true
        (String.length e.Clio.Reader.payload >= 4
        && String.sub e.Clio.Reader.payload 0 4 = Printf.sprintf "t%03d" i))
    [ 5; 100; 195 ]

let test_sequence_exhaustion_is_clean () =
  (* Allocator refuses a successor: the append must fail without wedging. *)
  let clock = Sim.Clock.simulated () in
  let dev = Worm.Mem_device.create ~block_size:256 ~capacity:8 () in
  let allocated = ref false in
  let alloc ~vol_index:_ =
    if !allocated then Error Clio.Errors.Sequence_full
    else begin
      allocated := true;
      Ok (Worm.Mem_device.io dev)
    end
  in
  let config = { Clio.Config.default with block_size = 256; fanout = 4 } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/full") in
  let rec fill i =
    if i > 100 then Alcotest.fail "never filled"
    else
      match Clio.Server.append srv ~log (String.make 200 'x') with
      | Ok _ -> fill (i + 1)
      | Error Clio.Errors.Sequence_full -> i
      | Error e -> Alcotest.failf "unexpected error: %s" (Clio.Errors.to_string e)
  in
  let written = fill 0 in
  Alcotest.(check bool) "some entries made it" true (written > 0);
  (* Previously written entries remain readable. *)
  Alcotest.(check bool) "still readable" true (List.length (all_payloads srv ~log) >= written - 1)

let () =
  run "rollover"
    [
      ( "sequence",
        [
          Alcotest.test_case "rolls when full" `Quick test_roll_when_full;
          Alcotest.test_case "cross-volume order" `Quick test_cross_volume_read_order;
          Alcotest.test_case "headers chain" `Quick test_volume_headers_chain;
          Alcotest.test_case "catalog snapshot" `Quick test_catalog_snapshot_on_new_volume;
          Alcotest.test_case "recovery" `Quick test_recovery_of_multivolume_sequence;
          Alcotest.test_case "device order insensitive" `Quick test_devices_order_insensitive;
          Alcotest.test_case "time search across volumes" `Quick test_time_search_across_volumes;
          Alcotest.test_case "exhaustion clean" `Quick test_sequence_exhaustion_is_clean;
        ] );
    ]
