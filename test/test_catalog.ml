(* The catalog: descriptors, the sublog hierarchy, op codec and replay. *)

module C = Clio.Catalog

let mk () = C.create ()

let create cat ~id ~parent ~name =
  Testkit.ok (C.apply cat (C.Create { id; parent; name; perms = 0o644; created = 1L }))

let test_fresh_catalog_has_internals () =
  let cat = mk () in
  Alcotest.(check bool) "root" true (C.exists cat Clio.Ids.root);
  Alcotest.(check bool) "entrymap" true (C.exists cat Clio.Ids.entrymap);
  Alcotest.(check bool) "catalog" true (C.exists cat Clio.Ids.catalog);
  Alcotest.(check bool) "badblocks" true (C.exists cat Clio.Ids.badblocks);
  Alcotest.(check bool) "no clients" true (C.live_descriptors cat = [])

let test_create_and_resolve () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"mail";
  create cat ~id:5 ~parent:4 ~name:"smith";
  let d = Testkit.ok (C.resolve_path cat "/mail/smith") in
  Alcotest.(check int) "resolved id" 5 d.C.id;
  Alcotest.(check string) "path back" "/mail/smith" (C.path_of cat 5);
  Alcotest.(check string) "root path" "/" (C.path_of cat Clio.Ids.root);
  let r = Testkit.ok (C.resolve_path cat "/") in
  Alcotest.(check int) "root resolves" Clio.Ids.root r.C.id

let test_resolve_missing () =
  let cat = mk () in
  (match C.resolve_path cat "/nope" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "expected No_such_log");
  match C.resolve_path cat "" with
  | Error (Clio.Errors.Invalid_name _) -> ()
  | _ -> Alcotest.fail "expected Invalid_name"

let test_duplicate_rejected () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"mail";
  (match C.apply cat (C.Create { id = 5; parent = Clio.Ids.root; name = "mail"; perms = 0; created = 2L }) with
  | Error (Clio.Errors.Log_exists _) -> ()
  | _ -> Alcotest.fail "same name under same parent must fail");
  match C.apply cat (C.Create { id = 4; parent = Clio.Ids.root; name = "other"; perms = 0; created = 2L }) with
  | Error (Clio.Errors.Log_exists _) -> ()
  | _ -> Alcotest.fail "same id must fail"

let test_snapshot_replay_idempotent () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"mail";
  (* Re-applying the identical Create (a catalog snapshot on a successor
     volume) succeeds silently. *)
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"mail"

let test_same_name_different_parents () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  create cat ~id:5 ~parent:Clio.Ids.root ~name:"b";
  create cat ~id:6 ~parent:4 ~name:"x";
  create cat ~id:7 ~parent:5 ~name:"x";
  Alcotest.(check int) "a/x" 6 (Testkit.ok (C.resolve_path cat "/a/x")).C.id;
  Alcotest.(check int) "b/x" 7 (Testkit.ok (C.resolve_path cat "/b/x")).C.id

let test_reserved_id_rejected () =
  let cat = mk () in
  match C.apply cat (C.Create { id = Clio.Ids.catalog; parent = Clio.Ids.root; name = "evil"; perms = 0; created = 1L }) with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "reserved ids must be rejected"

let test_orphan_rejected () =
  let cat = mk () in
  match C.apply cat (C.Create { id = 4; parent = 99; name = "orphan"; perms = 0; created = 1L }) with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "unknown parent must be rejected"

let test_ancestors () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  create cat ~id:5 ~parent:4 ~name:"b";
  create cat ~id:6 ~parent:5 ~name:"c";
  Alcotest.(check (list int)) "c's ancestors" [ 5; 4 ] (C.ancestors cat 6);
  Alcotest.(check (list int)) "top-level has none" [] (C.ancestors cat 4)

let test_membership () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  create cat ~id:5 ~parent:4 ~name:"b";
  create cat ~id:6 ~parent:Clio.Ids.root ~name:"other";
  let h = Clio.Header.make 5 in
  Alcotest.(check bool) "self" true (C.is_member cat ~log:5 h);
  Alcotest.(check bool) "parent" true (C.is_member cat ~log:4 h);
  Alcotest.(check bool) "root" true (C.is_member cat ~log:Clio.Ids.root h);
  Alcotest.(check bool) "stranger" false (C.is_member cat ~log:6 h);
  Alcotest.(check bool) "child not member of parent entry" false
    (C.is_member cat ~log:5 (Clio.Header.make 4))

let test_membership_extra_members () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  create cat ~id:5 ~parent:Clio.Ids.root ~name:"b";
  create cat ~id:6 ~parent:5 ~name:"c";
  let h = Clio.Header.make ~timestamp:1L ~extra_members:[ 6 ] 4 in
  Alcotest.(check bool) "primary" true (C.is_member cat ~log:4 h);
  Alcotest.(check bool) "extra" true (C.is_member cat ~log:6 h);
  Alcotest.(check bool) "extra's ancestor" true (C.is_member cat ~log:5 h)

let test_children_listing () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"z";
  create cat ~id:5 ~parent:Clio.Ids.root ~name:"a";
  let kids = C.children cat Clio.Ids.root in
  (* Internal files are included here (filtered at the server layer). *)
  Alcotest.(check bool) "contains both" true
    (List.exists (fun d -> d.C.id = 4) kids && List.exists (fun d -> d.C.id = 5) kids)

let test_next_free_id () =
  let cat = mk () in
  Alcotest.(check int) "first" Clio.Ids.first_client (Testkit.ok (C.next_free_id cat));
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  Alcotest.(check int) "next" 5 (Testkit.ok (C.next_free_id cat))

let test_validate_name () =
  let bad n =
    match C.validate_name n with
    | Error (Clio.Errors.Invalid_name _) -> ()
    | _ -> Alcotest.failf "name %S should be invalid" n
  in
  bad "";
  bad ".";
  bad "..";
  bad "a/b";
  bad (String.make 256 'x');
  Alcotest.(check string) "ok name" "mail" (Testkit.ok (C.validate_name "mail"));
  Alcotest.(check string) "255 ok" (String.make 255 'x')
    (Testkit.ok (C.validate_name (String.make 255 'x')))

let test_op_codec_roundtrip () =
  let d = { C.id = 42; parent = 4; name = "logfile-x"; perms = 0o600; created = 99L } in
  (match Testkit.ok (C.decode_op (C.encode_op (C.Create d))) with
  | C.Create d2 ->
    Alcotest.(check int) "id" d.C.id d2.C.id;
    Alcotest.(check int) "parent" d.C.parent d2.C.parent;
    Alcotest.(check string) "name" d.C.name d2.C.name;
    Alcotest.(check int) "perms" d.C.perms d2.C.perms;
    Alcotest.(check int64) "created" d.C.created d2.C.created
  | _ -> Alcotest.fail "wrong op");
  match Testkit.ok (C.decode_op (C.encode_op (C.Set_perms { id = 7; perms = 0o400; at = 5L }))) with
  | C.Set_perms { id = 7; perms = 0o400; at = 5L } -> ()
  | _ -> Alcotest.fail "wrong op"

let test_decode_garbage () =
  (match C.decode_op "" with Error _ -> () | Ok _ -> Alcotest.fail "empty should fail");
  match C.decode_op "\042rubbish" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "unknown kind should fail"

let test_set_perms () =
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  Testkit.ok (C.apply cat (C.Set_perms { id = 4; perms = 0o400; at = 9L }));
  Alcotest.(check int) "updated" 0o400 (Option.get (C.find cat 4)).C.perms

let test_replay_stream () =
  (* Encode a stream of ops, replay into a fresh catalog, compare. *)
  let cat = mk () in
  create cat ~id:4 ~parent:Clio.Ids.root ~name:"a";
  create cat ~id:5 ~parent:4 ~name:"b";
  Testkit.ok (C.apply cat (C.Set_perms { id = 5; perms = 0o700; at = 3L }));
  let stream =
    List.map C.encode_op
      [
        C.Create { id = 4; parent = Clio.Ids.root; name = "a"; perms = 0o644; created = 1L };
        C.Create { id = 5; parent = 4; name = "b"; perms = 0o644; created = 1L };
        C.Set_perms { id = 5; perms = 0o700; at = 3L };
      ]
  in
  let cat2 = mk () in
  List.iter (fun payload -> Testkit.ok (C.replay cat2 payload)) stream;
  Alcotest.(check string) "same paths" (C.path_of cat 5) (C.path_of cat2 5);
  Alcotest.(check int) "same perms" 0o700 (Option.get (C.find cat2 5)).C.perms

let prop_name_roundtrip =
  Testkit.qtest "create op roundtrips any valid name"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 64))
    (fun name ->
      let d = { C.id = 10; parent = 0; name; perms = 1; created = 2L } in
      match C.decode_op (C.encode_op (C.Create d)) with
      | Ok (C.Create d2) -> d2.C.name = name
      | _ -> false)

let () =
  Testkit.run "catalog"
    [
      ( "structure",
        [
          Alcotest.test_case "fresh internals" `Quick test_fresh_catalog_has_internals;
          Alcotest.test_case "create/resolve" `Quick test_create_and_resolve;
          Alcotest.test_case "resolve missing" `Quick test_resolve_missing;
          Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "snapshot idempotent" `Quick test_snapshot_replay_idempotent;
          Alcotest.test_case "same name different parents" `Quick test_same_name_different_parents;
          Alcotest.test_case "reserved id rejected" `Quick test_reserved_id_rejected;
          Alcotest.test_case "orphan rejected" `Quick test_orphan_rejected;
          Alcotest.test_case "children" `Quick test_children_listing;
          Alcotest.test_case "next free id" `Quick test_next_free_id;
          Alcotest.test_case "validate name" `Quick test_validate_name;
          Alcotest.test_case "set perms" `Quick test_set_perms;
        ] );
      ( "membership",
        [
          Alcotest.test_case "ancestors" `Quick test_ancestors;
          Alcotest.test_case "sublog membership" `Quick test_membership;
          Alcotest.test_case "extra members" `Quick test_membership_extra_members;
        ] );
      ( "codec",
        [
          Alcotest.test_case "op roundtrip" `Quick test_op_codec_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
          Alcotest.test_case "replay stream" `Quick test_replay_stream;
          prop_name_roundtrip;
        ] );
    ]
