(* The verifier: healthy stores pass every invariant; injected damage is
   found and attributed. *)

open Testkit

let fsck ?verify_entrymap srv = ok (Clio.Server.fsck ?verify_entrymap srv)

let test_fresh_store_healthy () =
  let f = make_fixture () in
  let r = fsck ~verify_entrymap:true f.srv in
  Alcotest.(check bool) "healthy" true (Clio.Fsck.is_healthy r);
  Alcotest.(check int) "one volume" 1 r.Clio.Fsck.volumes

let test_busy_store_healthy () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/a/b" in
  for i = 0 to 299 do
    ignore (append f ~log:(if i mod 3 = 0 then b else a) (Printf.sprintf "e%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let r = fsck ~verify_entrymap:true f.srv in
  Alcotest.(check (list string)) "no errors" [] r.Clio.Fsck.errors;
  Alcotest.(check bool) "healthy" true (Clio.Fsck.is_healthy r);
  Alcotest.(check bool) "entries counted" true (r.Clio.Fsck.entries >= 300);
  Alcotest.(check bool) "blocks counted" true (r.Clio.Fsck.valid_blocks > 10)

let test_multivolume_healthy () =
  let f =
    make_fixture ~config:{ Clio.Config.default with fanout = 4 } ~block_size:256 ~capacity:32 ()
  in
  let log = create_log f "/mv" in
  for i = 0 to 699 do
    ignore (append f ~log (Printf.sprintf "entry %d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let r = fsck ~verify_entrymap:true f.srv in
  Alcotest.(check (list string)) "no errors" [] r.Clio.Fsck.errors;
  Alcotest.(check bool) "many volumes" true (r.Clio.Fsck.volumes > 2)

let test_detects_corruption () =
  let f = make_fixture () in
  let log = create_log f "/c" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "data %d padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Worm.Mem_device.raw_poke (Hashtbl.find f.devices 0) 3 (Bytes.make 256 'X');
  drop_caches f.srv;
  let r = fsck f.srv in
  Alcotest.(check bool) "unhealthy" false (Clio.Fsck.is_healthy r);
  Alcotest.(check (list (pair int int))) "block attributed" [ (0, 3) ] r.Clio.Fsck.corrupt_blocks

let test_scrubbed_block_is_clean () =
  let f = make_fixture () in
  let log = create_log f "/s" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "data %d padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Worm.Mem_device.raw_poke (Hashtbl.find f.devices 0) 3 (Bytes.make 256 'X');
  drop_caches f.srv;
  ok (Clio.Server.scrub_block f.srv ~vol:0 ~block:3);
  let r = fsck f.srv in
  Alcotest.(check (list (pair int int))) "no corruption left" [] r.Clio.Fsck.corrupt_blocks;
  Alcotest.(check bool) "invalidated counted" true (r.Clio.Fsck.invalidated_blocks >= 1)

let test_detects_truncated_entry () =
  (* Crash mid-fragmented-entry leaves a dangling continuation; fsck reports
     it as truncation, not as an error. *)
  let f = make_fixture ~block_size:256 ~nvram:false () in
  let log = create_log f "/t" in
  ignore (append f ~log "whole");
  ignore (ok (Clio.Server.force f.srv));
  ignore (append f ~log (String.make 700 'z'));
  let srv = crash_and_recover f in
  let r = ok (Clio.Server.fsck srv) in
  Alcotest.(check (list string)) "no invariant errors" [] r.Clio.Fsck.errors;
  Alcotest.(check bool) "truncation noticed" true (r.Clio.Fsck.truncated_entries <= 1)

let test_entrymap_verification_catches_scan_mismatch () =
  (* Healthy by construction: verify_entrymap on a sizeable store agrees. *)
  let f = make_fixture ~config:{ Clio.Config.default with fanout = 4 } () in
  let logs = Array.init 5 (fun i -> create_log f (Printf.sprintf "/l%d" i)) in
  let rng = Sim.Rng.create 3L in
  for i = 0 to 500 do
    ignore (append f ~log:logs.(Sim.Rng.int rng 5) (Printf.sprintf "x%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let r = fsck ~verify_entrymap:true f.srv in
  Alcotest.(check (list string)) "entrymap verified" [] r.Clio.Fsck.errors

let test_healthy_after_recovery () =
  let f = make_fixture () in
  let log = create_log f "/r" in
  for i = 0 to 199 do
    ignore (append f ~log (Printf.sprintf "r%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let r = ok (Clio.Server.fsck ~verify_entrymap:true srv) in
  Alcotest.(check (list string)) "no errors after recovery" [] r.Clio.Fsck.errors

let () =
  run "fsck"
    [
      ( "verifier",
        [
          Alcotest.test_case "fresh healthy" `Quick test_fresh_store_healthy;
          Alcotest.test_case "busy healthy" `Quick test_busy_store_healthy;
          Alcotest.test_case "multivolume healthy" `Quick test_multivolume_healthy;
          Alcotest.test_case "detects corruption" `Quick test_detects_corruption;
          Alcotest.test_case "scrubbed is clean" `Quick test_scrubbed_block_is_clean;
          Alcotest.test_case "truncated entry" `Quick test_detects_truncated_entry;
          Alcotest.test_case "entrymap verification" `Quick test_entrymap_verification_catches_scan_mismatch;
          Alcotest.test_case "healthy after recovery" `Quick test_healthy_after_recovery;
        ] );
    ]
