(* Little-endian codecs, encoder/decoder, CRC-32. *)

let test_fixed_width_roundtrip () =
  let b = Bytes.make 32 '\000' in
  Clio.Wire.set_u8 b 0 0xAB;
  Clio.Wire.set_u16 b 1 0xBEEF;
  Clio.Wire.set_u32 b 3 0xDEADBEEF;
  Clio.Wire.set_i64 b 7 (-123456789012345L);
  Alcotest.(check int) "u8" 0xAB (Clio.Wire.get_u8 b 0);
  Alcotest.(check int) "u16" 0xBEEF (Clio.Wire.get_u16 b 1);
  Alcotest.(check int) "u32" 0xDEADBEEF (Clio.Wire.get_u32 b 3);
  Alcotest.(check int64) "i64" (-123456789012345L) (Clio.Wire.get_i64 b 7)

let test_crc_known_vector () =
  (* CRC-32("123456789") = 0xCBF43926, the classic check value. *)
  let b = Bytes.of_string "123456789" in
  Alcotest.(check int) "check value" 0xCBF43926 (Clio.Wire.crc32 b ~pos:0 ~len:9)

let test_crc_empty () =
  Alcotest.(check int) "empty crc" 0 (Clio.Wire.crc32 Bytes.empty ~pos:0 ~len:0)

let test_crc_detects_flip () =
  let b = Bytes.make 100 'x' in
  let c1 = Clio.Wire.crc32 b ~pos:0 ~len:100 in
  Bytes.set b 57 'y';
  let c2 = Clio.Wire.crc32 b ~pos:0 ~len:100 in
  Alcotest.(check bool) "flip detected" true (c1 <> c2)

let test_crc_subrange () =
  let b = Bytes.of_string "AA123456789ZZ" in
  Alcotest.(check int) "range" 0xCBF43926 (Clio.Wire.crc32 b ~pos:2 ~len:9)

let test_enc_dec_roundtrip () =
  let enc = Clio.Wire.Enc.create () in
  Clio.Wire.Enc.u8 enc 42;
  Clio.Wire.Enc.u16 enc 65535;
  Clio.Wire.Enc.u32 enc 7_000_000;
  Clio.Wire.Enc.i64 enc Int64.min_int;
  Clio.Wire.Enc.bytes enc "hello";
  let dec = Clio.Wire.Dec.of_string (Clio.Wire.Enc.contents enc) in
  Alcotest.(check int) "u8" 42 (Testkit.ok (Clio.Wire.Dec.u8 dec));
  Alcotest.(check int) "u16" 65535 (Testkit.ok (Clio.Wire.Dec.u16 dec));
  Alcotest.(check int) "u32" 7_000_000 (Testkit.ok (Clio.Wire.Dec.u32 dec));
  Alcotest.(check int64) "i64" Int64.min_int (Testkit.ok (Clio.Wire.Dec.i64 dec));
  Alcotest.(check string) "bytes" "hello" (Testkit.ok (Clio.Wire.Dec.bytes dec 5));
  Alcotest.(check bool) "at end" true (Clio.Wire.Dec.at_end dec)

let test_dec_truncation_detected () =
  let dec = Clio.Wire.Dec.of_string "ab" in
  (match Clio.Wire.Dec.u32 dec with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected truncation error");
  (* And the cursor did not advance past the end. *)
  Alcotest.(check int) "remaining" 2 (Clio.Wire.Dec.remaining dec)

let prop_u16_roundtrip =
  Testkit.qtest "u16 roundtrip" QCheck2.Gen.(int_range 0 65535) (fun v ->
      let enc = Clio.Wire.Enc.create () in
      Clio.Wire.Enc.u16 enc v;
      Testkit.ok (Clio.Wire.Dec.u16 (Clio.Wire.Dec.of_string (Clio.Wire.Enc.contents enc))) = v)

let prop_i64_roundtrip =
  Testkit.qtest "i64 roundtrip" QCheck2.Gen.(map Int64.of_int int) (fun v ->
      let enc = Clio.Wire.Enc.create () in
      Clio.Wire.Enc.i64 enc v;
      Testkit.ok (Clio.Wire.Dec.i64 (Clio.Wire.Dec.of_string (Clio.Wire.Enc.contents enc))) = v)

let prop_crc_insensitive_to_context =
  Testkit.qtest "crc of subrange ignores surroundings" QCheck2.Gen.(string_size (int_range 1 64))
    (fun s ->
      let a = Bytes.of_string ("xx" ^ s ^ "yy") in
      let b = Bytes.of_string ("qq" ^ s ^ "zz") in
      Clio.Wire.crc32 a ~pos:2 ~len:(String.length s)
      = Clio.Wire.crc32 b ~pos:2 ~len:(String.length s))

let () =
  Testkit.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "fixed width roundtrip" `Quick test_fixed_width_roundtrip;
          Alcotest.test_case "enc/dec roundtrip" `Quick test_enc_dec_roundtrip;
          Alcotest.test_case "truncation detected" `Quick test_dec_truncation_detected;
          prop_u16_roundtrip;
          prop_i64_roundtrip;
        ] );
      ( "crc32",
        [
          Alcotest.test_case "known vector" `Quick test_crc_known_vector;
          Alcotest.test_case "empty" `Quick test_crc_empty;
          Alcotest.test_case "detects bit flip" `Quick test_crc_detects_flip;
          Alcotest.test_case "subrange" `Quick test_crc_subrange;
          prop_crc_insensitive_to_context;
        ] );
    ]
