(* Service-level replication (lib/repl): WORM block shipping, read
   replicas, catch-up after disconnects, failover with epoch fencing.

   The load-bearing invariant: because the shipped unit is the verbatim
   device block, a converged replica's volumes are byte-identical to the
   primary's settled storage — asserted here block by block, including
   under a seeded lossy transport across ≥ 30 fault schedules. *)

open Testkit

let okc label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Clio.Errors.to_string e)

let mk_replica f ~primary_hint =
  let block_size = f.config.Clio.Config.block_size in
  Repl.Replica.create ~config:f.config ~nvram:(Worm.Nvram.create ()) ~clock:f.clock
    ~alloc:(fun ~vol_index:_ ->
      Ok (Worm.Mem_device.io (Worm.Mem_device.create ~block_size ~capacity:1024 ())))
    ~primary_hint ()

let io_image (io : Worm.Block_io.t) =
  let frontier = match io.Worm.Block_io.frontier () with Some x -> x | None -> 0 in
  ( frontier,
    List.init frontier (fun i ->
        match io.Worm.Block_io.read i with
        | Ok b -> Bytes.to_string b
        | Error _ -> Printf.sprintf "<unreadable %d>" i) )

let assert_identical name f r =
  let prim = fixture_devices f in
  Alcotest.(check int) (name ^ ": volume count") (List.length prim) (Repl.Replica.nvols r);
  List.iteri
    (fun i pio ->
      match Repl.Replica.device r i with
      | None -> Alcotest.failf "%s: replica missing volume %d" name i
      | Some rio ->
        let pf, pbytes = io_image pio in
        let rf, rbytes = io_image rio in
        Alcotest.(check int) (Printf.sprintf "%s: vol %d frontier" name i) pf rf;
        Alcotest.(check (list string)) (Printf.sprintf "%s: vol %d bytes" name i) pbytes rbytes)
    prim

let drain sh srv =
  let rec go n =
    Repl.Shipper.sync sh;
    if Clio.Server.repl_lag_blocks srv > 0 && n < 50 then go (n + 1)
  in
  go 0

(* --------------------------- basic shipping --------------------------- *)

let test_ship_and_serve () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/a/b" in
  for i = 0 to 99 do
    ignore (append f ~log:(if i mod 3 = 0 then b else a) (Printf.sprintf "entry %03d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let r = mk_replica f ~primary_hint:"primary-1" in
  let tr = Uio.Transport.local ~latency_us:1000L ~clock:f.clock (Repl.Replica.handler r) in
  let sh = Repl.Shipper.create f.srv [ ("replica-1", tr) ] in
  Repl.Shipper.sync sh;
  assert_identical "ship" f r;
  Alcotest.(check int) "nothing reshipped" 0 (Repl.Shipper.reshipped sh);
  Alcotest.(check int) "lag gauge zero" 0 (Clio.Server.repl_lag_blocks f.srv);
  (* The replica serves ordinary read traffic over the same endpoint. *)
  let client = Uio.Client.connect tr in
  Alcotest.(check int) "v3 negotiated" 3 (Uio.Client.version client);
  let payloads log =
    List.rev
      (okc "fold"
         (Uio.Client.fold_entries client ~log ~init:[] (fun acc e ->
              e.Uio.Message.payload :: acc)))
  in
  check_payloads "log /a via replica" (all_payloads f.srv ~log:a) (payloads a);
  check_payloads "log /a/b via replica" (all_payloads f.srv ~log:b) (payloads b);
  (* ...but refuses writes with a typed redirect. *)
  (match Uio.Client.append client ~log:a "nope" with
  | Error (Clio.Errors.Not_primary hint) ->
    Alcotest.(check string) "redirect names the primary" "primary-1" hint
  | Ok _ -> Alcotest.fail "replica accepted a write"
  | Error e -> Alcotest.failf "wrong refusal: %s" (Clio.Errors.to_string e));
  Alcotest.(check (option string)) "client recorded the hint" (Some "primary-1")
    (Uio.Client.redirect_hint client);
  (* The replica's own metrics carry the role. *)
  let rsrv = okc "replica server" (Repl.Replica.server r) in
  (match Clio.Server.role rsrv with
  | Clio.State.Replica { primary_hint; _ } ->
    Alcotest.(check string) "role hint" "primary-1" primary_hint
  | _ -> Alcotest.fail "replica server must carry the Replica role");
  Alcotest.(check bool) "metrics carry repl section" true
    (let json = Clio.Server.metrics_json rsrv in
     let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains json "\"repl\"" && contains json "\"replica\"")

let test_tail_shipping () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  for i = 0 to 9 do
    ignore (append f ~log:a (Printf.sprintf "tail entry %d" i))
  done;
  (* No force: the entries live only in the primary's volatile tail (and
     its NVRAM). Shipping must mark them as such and the replica must still
     serve them. *)
  let r = mk_replica f ~primary_hint:"primary-1" in
  let tr = Uio.Transport.local ~latency_us:1000L ~clock:f.clock (Repl.Replica.handler r) in
  let sh = Repl.Shipper.create f.srv [ ("replica-1", tr) ] in
  Repl.Shipper.sync sh;
  assert_identical "settled part" f r;
  Alcotest.(check bool) "tail was shipped" true
    ((Clio.Server.stats f.srv).Clio.Stats.repl_tail_ships >= 1);
  Alcotest.(check bool) "tail was staged" true (Repl.Replica.tail_applies r >= 1);
  let rsrv = okc "replica server" (Repl.Replica.server r) in
  check_payloads "volatile tail visible on the replica"
    (all_payloads f.srv ~log:a)
    (all_payloads rsrv ~log:a)

let test_catchup_after_disconnect () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let r = mk_replica f ~primary_hint:"primary-1" in
  let tr = Uio.Transport.local ~latency_us:1000L ~clock:f.clock (Repl.Replica.handler r) in
  let sh = Repl.Shipper.create f.srv [ ("replica-1", tr) ] in
  for i = 0 to 49 do
    ignore (append f ~log:a (Printf.sprintf "first %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Repl.Shipper.sync sh;
  let applied_before = Repl.Replica.blocks_applied r in
  (* "Disconnect": the shipper simply doesn't run while the primary keeps
     writing; the next sync must ship exactly the gap. *)
  for i = 0 to 99 do
    ignore (append f ~log:a (Printf.sprintf "second %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Repl.Shipper.sync sh;
  assert_identical "after catch-up" f r;
  Alcotest.(check int) "nothing reshipped across the gap" 0 (Repl.Shipper.reshipped sh);
  Alcotest.(check bool) "catch-up applied only the gap" true
    (Repl.Replica.blocks_applied r > applied_before);
  let shipped = (Clio.Server.stats f.srv).Clio.Stats.repl_blocks_shipped in
  (* A sync with nothing new ships nothing. *)
  Repl.Shipper.sync sh;
  Alcotest.(check int) "idle sync ships no blocks" shipped
    (Clio.Server.stats f.srv).Clio.Stats.repl_blocks_shipped

(* ------------------------ promotion and fencing ------------------------ *)

let test_promote_and_fence () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  for i = 0 to 39 do
    ignore (append f ~log:a (Printf.sprintf "pre %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  for i = 0 to 6 do
    ignore (append f ~log:a (Printf.sprintf "tail %d" i))
  done;
  let r = mk_replica f ~primary_hint:"primary-1" in
  let tr = Uio.Transport.local ~latency_us:1000L ~clock:f.clock (Repl.Replica.handler r) in
  let sh = Repl.Shipper.create f.srv [ ("replica-1", tr) ] in
  Repl.Shipper.sync sh;
  let acked = all_payloads f.srv ~log:a in
  (* Fail over. The promoted server replays the staged tail through
     ordinary recovery, so every acknowledged append — settled or volatile
     — is served at epoch 2. *)
  let psrv = okc "promote" (Repl.Replica.promote r) in
  (match Clio.Server.role psrv with
  | Clio.State.Primary { epoch } -> Alcotest.(check int) "epoch minted" 2 epoch
  | _ -> Alcotest.fail "promotion must assert the Primary role");
  check_payloads "pre-failover acked appends" acked (all_payloads psrv ~log:a);
  ignore (okc "new primary accepts writes" (Clio.Server.append psrv ~log:a "post failover"));
  (* The deposed primary's next shipment is refused and fences it. *)
  Repl.Shipper.sync sh;
  Alcotest.(check (list string)) "peer fenced" [ "replica-1" ] (Repl.Shipper.fenced_peers sh);
  (match Clio.Server.role f.srv with
  | Clio.State.Fenced { hint; _ } ->
    Alcotest.(check string) "fence names the peer" "replica-1" hint
  | _ -> Alcotest.fail "stale primary must self-fence");
  Alcotest.(check bool) "replica counted the stale shipment" true
    (Repl.Replica.epoch_rejects r >= 1);
  (match Clio.Server.append f.srv ~log:a "fenced write" with
  | Error (Clio.Errors.Not_primary _) -> ()
  | _ -> Alcotest.fail "fenced primary must refuse writes")

(* --------------------- catalog replay determinism ---------------------- *)

(* Clone a device by replaying its readable blocks through ordinary appends
   — the same verbatim-bytes path the shipper uses. *)
let clone_io (io : Worm.Block_io.t) =
  let d =
    Worm.Mem_device.create ~block_size:io.Worm.Block_io.block_size
      ~capacity:io.Worm.Block_io.capacity ()
  in
  let cio = Worm.Mem_device.io d in
  let frontier = match io.Worm.Block_io.frontier () with Some x -> x | None -> 0 in
  for i = 0 to frontier - 1 do
    match io.Worm.Block_io.read i with
    | Ok b -> ignore (cio.Worm.Block_io.append b)
    | Error _ -> Alcotest.failf "clone: unreadable block %d" i
  done;
  cio

let test_replay_determinism () =
  let f = make_fixture () in
  let a = create_log f "/mail" in
  let b = create_log f "/mail/smith" in
  let c = create_log f "/usage" in
  ok (Clio.Server.set_perms f.srv ~log:b 0o600);
  for i = 0 to 59 do
    let log = match i mod 3 with 0 -> a | 1 -> b | _ -> c in
    ignore (append f ~log (Printf.sprintf "entry %02d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let recover_from devices =
    (* [force] with NVRAM present makes the tail durable in NVRAM, not on
       the device — so a faithful replay needs the same staged tail. *)
    ok
      (Clio.Server.recover ~config:f.config ~clock:(Sim.Clock.simulated ())
         ?nvram:f.nvram
         ~alloc_volume:(fun ~vol_index:_ ->
           Error (Clio.Errors.Bad_record "no allocation during replay"))
         ~devices ())
  in
  let s1 = recover_from (List.map clone_io (fixture_devices f)) in
  let s2 = recover_from (List.map clone_io (fixture_devices f)) in
  (* Two independent replays of the same bytes build identical catalogs:
     same ids, same listing rows in the same order, same entries. *)
  List.iter
    (fun path ->
      let d1 = ok (Uio.Message.dir_entries s1 path) in
      let d2 = ok (Uio.Message.dir_entries s2 path) in
      let live = ok (Uio.Message.dir_entries f.srv path) in
      Alcotest.(check bool)
        (Printf.sprintf "listing %s identical across replays" path)
        true (d1 = d2);
      Alcotest.(check bool)
        (Printf.sprintf "listing %s matches the live server" path)
        true (d1 = live))
    [ "/"; "/mail" ];
  List.iter
    (fun (name, log) ->
      check_payloads (name ^ " replay 1") (all_payloads f.srv ~log) (all_payloads s1 ~log);
      check_payloads (name ^ " replay 2") (all_payloads f.srv ~log) (all_payloads s2 ~log))
    [ ("/mail", a); ("/mail/smith", b); ("/usage", c) ]

(* ------------------------------ chaos soak ----------------------------- *)

(* ≥ 30 fixed seeds; every fault schedule must converge byte-identically,
   ship nothing twice, and fail over cleanly. *)
let soak_seeds = List.init 32 (fun i -> Int64.of_int ((7919 * i) + 12345))

let run_soak seed =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/a/b" in
  let mk_peer salt =
    let r = mk_replica f ~primary_hint:"primary" in
    let inner = Uio.Transport.local ~latency_us:1000L ~clock:f.clock (Repl.Replica.handler r) in
    let tr = Uio.Transport.lossy ~rng:(Sim.Rng.create (Int64.add seed salt)) inner in
    (r, tr)
  in
  let r1, t1 = mk_peer 1L in
  let r2, t2 = mk_peer 2L in
  let sh = Repl.Shipper.create f.srv [ ("r1", t1); ("r2", t2) ] in
  let rng = Sim.Rng.create seed in
  let n = ref 0 in
  for _round = 0 to 5 do
    let count = 5 + Sim.Rng.int rng 10 in
    for _ = 1 to count do
      incr n;
      let log = if Sim.Rng.int rng 3 = 0 then b else a in
      ignore (append f ~log (Printf.sprintf "entry %04d" !n))
    done;
    if Sim.Rng.int rng 2 = 0 then ignore (ok (Clio.Server.force f.srv));
    Repl.Shipper.sync sh
  done;
  drain sh f.srv;
  Alcotest.(check int) "converged (no lag)" 0 (Clio.Server.repl_lag_blocks f.srv);
  Alcotest.(check int) "exactly-once: nothing reshipped" 0 (Repl.Shipper.reshipped sh);
  assert_identical "replica 1" f r1;
  assert_identical "replica 2" f r2;
  let pa = all_payloads f.srv ~log:a in
  let pb = all_payloads f.srv ~log:b in
  List.iter
    (fun (name, r) ->
      let rsrv = okc (name ^ " server") (Repl.Replica.server r) in
      check_payloads (name ^ " /a") pa (all_payloads rsrv ~log:a);
      check_payloads (name ^ " /a/b") pb (all_payloads rsrv ~log:b))
    [ ("r1", r1); ("r2", r2) ];
  (* Failover under the same fault schedule: promote r1, fence the old
     primary, then let the new primary bring r2 to epoch 2. *)
  let psrv = okc "promote r1" (Repl.Replica.promote r1) in
  check_payloads "promoted serves all acked /a" pa (all_payloads psrv ~log:a);
  check_payloads "promoted serves all acked /a/b" pb (all_payloads psrv ~log:b);
  Repl.Shipper.sync sh;
  (match Clio.Server.role f.srv with
  | Clio.State.Fenced _ -> ()
  | _ -> Alcotest.fail "old primary must fence on Stale_epoch");
  (match Clio.Server.append f.srv ~log:a "fenced" with
  | Error (Clio.Errors.Not_primary _) -> ()
  | _ -> Alcotest.fail "fenced primary must refuse writes");
  ignore (okc "write on new primary" (Clio.Server.append psrv ~log:a "post failover"));
  ignore (okc "force on new primary" (Clio.Server.force psrv));
  let sh2 = Repl.Shipper.create psrv [ ("r2", t2) ] in
  drain sh2 psrv;
  Alcotest.(check int) "new primary converged r2" 0 (Clio.Server.repl_lag_blocks psrv);
  Alcotest.(check int) "epoch adopted by r2" 2 (Repl.Replica.epoch r2);
  let r2srv = okc "r2 server" (Repl.Replica.server r2) in
  check_payloads "r2 follows the new primary"
    (all_payloads psrv ~log:a)
    (all_payloads r2srv ~log:a)

let test_chaos_soak () = List.iter run_soak soak_seeds

let () =
  run "repl"
    [
      ( "shipping",
        [
          Alcotest.test_case "ship and serve" `Quick test_ship_and_serve;
          Alcotest.test_case "volatile tail" `Quick test_tail_shipping;
          Alcotest.test_case "catch-up" `Quick test_catchup_after_disconnect;
        ] );
      ( "failover",
        [
          Alcotest.test_case "promote and fence" `Quick test_promote_and_fence;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "catalog replay" `Quick test_replay_determinism;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "32-seed lossy soak" `Slow test_chaos_soak;
        ] );
    ]
