(* Entries larger than a block: fragmentation and reassembly (Figure 1,
   footnote 7), including entries spanning many blocks and volumes. *)

open Testkit

let pattern i len = String.init len (fun j -> Char.chr (33 + ((i * 31 + j) mod 94)))

let test_entry_spanning_two_blocks () =
  let f = make_fixture ~block_size:256 () in
  let log = create_log f "/frag" in
  let payload = pattern 1 400 in
  ignore (append f ~log payload);
  check_payloads "reassembled" [ payload ] (all_payloads f.srv ~log)

let test_entry_spanning_many_blocks () =
  let f = make_fixture ~block_size:256 () in
  let log = create_log f "/frag" in
  let payload = pattern 2 5000 in
  ignore (append f ~log payload);
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "20-block entry" [ payload ] (all_payloads f.srv ~log);
  check_payloads "backward too" [ payload ] (all_payloads_backward f.srv ~log)

let test_mixed_sizes () =
  let f = make_fixture ~block_size:256 () in
  let log = create_log f "/mix" in
  let sizes = [ 0; 1; 100; 300; 7; 1200; 50; 2500; 3; 999 ] in
  let payloads = List.mapi pattern sizes in
  List.iter (fun p -> ignore (append f ~log p)) payloads;
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "all reassembled in order" payloads (all_payloads f.srv ~log);
  check_payloads "all reassembled backward" payloads (all_payloads_backward f.srv ~log)

let test_interleaved_logs_with_fragments () =
  (* Fragmented entries of one log interleave at block level with whole
     entries of siblings; both must read back cleanly. *)
  let f = make_fixture ~block_size:256 () in
  let big = create_log f "/big" in
  let small = create_log f "/small" in
  let bigs = List.init 10 (fun i -> pattern i 700) in
  let smalls = List.init 10 (fun i -> Printf.sprintf "s%d" i) in
  List.iteri
    (fun i (b, s) ->
      ignore (append f ~log:big b);
      ignore (append f ~log:small s);
      ignore i)
    (List.combine bigs smalls);
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "big entries" bigs (all_payloads f.srv ~log:big);
  check_payloads "small entries" smalls (all_payloads f.srv ~log:small);
  check_payloads "small backward" smalls (all_payloads_backward f.srv ~log:small)

let test_fragments_across_volume_boundary () =
  let f = make_fixture ~block_size:256 ~capacity:32 () in
  let log = create_log f "/span" in
  let payloads = List.init 40 (fun i -> pattern i (200 + (i * 37 mod 500))) in
  List.iter (fun p -> ignore (append f ~log p)) payloads;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "several volumes" true (Clio.Server.nvols f.srv > 2);
  check_payloads "cross-volume reassembly" payloads (all_payloads f.srv ~log);
  check_payloads "cross-volume backward" payloads (all_payloads_backward f.srv ~log)

let test_entry_bigger_than_volume_tail () =
  (* An entry larger than the remaining space of the active volume. *)
  let f = make_fixture ~block_size:256 ~capacity:16 () in
  let log = create_log f "/huge" in
  let payload = pattern 9 (16 * 256) in
  ignore (append f ~log payload);
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "entry spans volumes" [ payload ] (all_payloads f.srv ~log)

let test_timestamp_identifies_fragmented_entry () =
  let f = make_fixture ~block_size:256 () in
  let log = create_log f "/tsf" in
  ignore (append f ~log "before");
  Sim.Clock.advance f.clock 1000L;
  let ts = Option.get (append f ~log (pattern 3 900)) in
  Sim.Clock.advance f.clock 1000L;
  ignore (append f ~log "after");
  let e = Option.get (ok (Clio.Server.entry_at_or_after f.srv ~log ts)) in
  Alcotest.(check int) "found by its timestamp" 900 (String.length e.Clio.Reader.payload)

let test_force_mid_stream_pure_worm () =
  (* Without NVRAM, a force burns the partial block; entries keep flowing. *)
  let f = make_fixture ~block_size:256 ~nvram:false ~config:{ Clio.Config.default with nvram_tail = false } () in
  let log = create_log f "/forced" in
  let payloads = List.init 30 (fun i -> pattern i (50 + (i mod 7) * 40)) in
  List.iteri
    (fun i p -> ignore (append f ~log ~force:(i mod 3 = 0) p))
    payloads;
  check_payloads "all entries intact" payloads (all_payloads f.srv ~log);
  Alcotest.(check bool) "padding was burned" true
    ((Clio.Server.stats f.srv).Clio.Stats.bytes_padding > 0)

let test_force_with_nvram_no_padding_burn () =
  let f = make_fixture ~block_size:256 () in
  let log = create_log f "/nv" in
  let before = (Clio.Server.stats f.srv).Clio.Stats.blocks_flushed in
  ignore (append f ~log ~force:true "tiny");
  ignore (append f ~log ~force:true "tiny2");
  (* NVRAM absorbed the forces: no device block was written. *)
  Alcotest.(check int) "no flush" before (Clio.Server.stats f.srv).Clio.Stats.blocks_flushed;
  Alcotest.(check bool) "nvram synced" true
    ((Clio.Server.stats f.srv).Clio.Stats.nvram_syncs >= 2);
  check_payloads "still readable" [ "tiny"; "tiny2" ] (all_payloads f.srv ~log)

let test_entry_too_large_for_header () =
  let f = make_fixture ~block_size:64 () in
  let log = create_log f "/small-blocks" in
  (* Entries still work with tiny blocks... *)
  let p = pattern 4 500 in
  ignore (append f ~log p);
  check_payloads "500B over 64B blocks" [ p ] (all_payloads f.srv ~log)

let prop_random_sizes_roundtrip =
  Testkit.qtest ~count:30 "random entry sizes roundtrip"
    QCheck2.Gen.(list_size (int_range 1 25) (int_range 0 1500))
    (fun sizes ->
      let f = make_fixture ~block_size:256 () in
      let log = create_log f "/q" in
      let payloads = List.mapi pattern sizes in
      List.iter (fun p -> ignore (append f ~log p)) payloads;
      all_payloads f.srv ~log = payloads && all_payloads_backward f.srv ~log = payloads)

let () =
  run "fragmentation"
    [
      ( "reassembly",
        [
          Alcotest.test_case "two blocks" `Quick test_entry_spanning_two_blocks;
          Alcotest.test_case "many blocks" `Quick test_entry_spanning_many_blocks;
          Alcotest.test_case "mixed sizes" `Quick test_mixed_sizes;
          Alcotest.test_case "interleaved with fragments" `Quick test_interleaved_logs_with_fragments;
          Alcotest.test_case "across volumes" `Quick test_fragments_across_volume_boundary;
          Alcotest.test_case "bigger than volume tail" `Quick test_entry_bigger_than_volume_tail;
          Alcotest.test_case "timestamp identifies" `Quick test_timestamp_identifies_fragmented_entry;
          Alcotest.test_case "tiny blocks" `Quick test_entry_too_large_for_header;
          prop_random_sizes_roundtrip;
        ] );
      ( "forced-writes",
        [
          Alcotest.test_case "pure WORM burns padding" `Quick test_force_mid_stream_pure_worm;
          Alcotest.test_case "NVRAM absorbs forces" `Quick test_force_with_nvram_no_padding_burn;
        ] );
    ]
