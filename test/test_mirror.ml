(* Mirrored log devices (footnote 11) and offline volumes (section 2.1). *)

open Testkit

let block_valid b =
  match Clio.Block_format.classify b with
  | Clio.Block_format.Valid _ | Clio.Block_format.Invalidated -> true
  | Clio.Block_format.Corrupt -> Clio.Volume.is_volume_header b

let mirror_fixture () =
  let a = Worm.Mem_device.create ~block_size:256 ~capacity:1024 () in
  let b = Worm.Mem_device.create ~block_size:256 ~capacity:1024 () in
  let m =
    Result.get_ok
      (Worm.Mirror_device.create ~validate:block_valid (Worm.Mem_device.io a)
         (Worm.Mem_device.io b))
  in
  let clock = Sim.Clock.simulated () in
  let alloc ~vol_index:_ = Ok (Worm.Mirror_device.io m) in
  let config = { Clio.Config.default with block_size = 256 } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  (srv, a, b, m)

let test_mirror_geometry_check () =
  let a = Worm.Mem_device.create ~block_size:256 ~capacity:64 () in
  let b = Worm.Mem_device.create ~block_size:512 ~capacity:64 () in
  match Worm.Mirror_device.create ~validate:(fun _ -> true) (Worm.Mem_device.io a) (Worm.Mem_device.io b) with
  | Error (Worm.Block_io.Io_error _) -> ()
  | _ -> Alcotest.fail "geometry mismatch must be rejected"

let test_mirror_replicates () =
  let srv, a, b, _ = mirror_fixture () in
  let log = ok (Clio.Server.create_log srv "/m") in
  for i = 0 to 49 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "entry %d" i)))
  done;
  ignore (ok (Clio.Server.force srv));
  (* Both replicas hold identical data. *)
  let ia = Worm.Mem_device.io a and ib = Worm.Mem_device.io b in
  (match ia.Worm.Block_io.frontier () with
  | Some fa ->
    Alcotest.(check (option int)) "same frontier" (Some fa) (ib.Worm.Block_io.frontier ());
    for blk = 0 to fa - 1 do
      Alcotest.(check bytes)
        (Printf.sprintf "block %d identical" blk)
        (Result.get_ok (ia.Worm.Block_io.read blk))
        (Result.get_ok (ib.Worm.Block_io.read blk))
    done
  | None -> Alcotest.fail "no frontier")

let test_mirror_heals_primary_corruption () =
  let srv, a, _, m = mirror_fixture () in
  let log = ok (Clio.Server.create_log srv "/m") in
  for i = 0 to 49 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "entry %02d padded a bit" i)))
  done;
  ignore (ok (Clio.Server.force srv));
  (* Corrupt three blocks on the primary only. *)
  List.iter (fun blk -> Worm.Mem_device.raw_poke a blk (Bytes.make 256 'Z')) [ 2; 3; 4 ];
  drop_caches srv;
  let got = ok (Clio.Server.fold_entries srv ~log ~init:0 (fun n _ -> n + 1)) in
  Alcotest.(check int) "nothing lost" 50 got;
  Alcotest.(check bool) "replica served the damage" true (Worm.Mirror_device.fallback_reads m >= 3);
  (* fsck agrees the store is healthy through the mirror. *)
  let r = ok (Clio.Server.fsck srv) in
  Alcotest.(check bool) "healthy via mirror" true (Clio.Fsck.is_healthy r)

let test_mirror_read_many_heals () =
  (* The mirror's native batch path: one batched read against the primary,
     per-block replica fallback for whatever fails validation. *)
  let a = Worm.Mem_device.create ~block_size:256 ~capacity:64 () in
  let b = Worm.Mem_device.create ~block_size:256 ~capacity:64 () in
  let m =
    Result.get_ok
      (Worm.Mirror_device.create
         ~validate:(fun blk -> Bytes.get blk 0 <> 'Z')
         (Worm.Mem_device.io a) (Worm.Mem_device.io b))
  in
  let io = Worm.Mirror_device.io m in
  for i = 0 to 9 do
    ignore (io.Worm.Block_io.append (Bytes.make 256 (Char.chr (Char.code '0' + i))))
  done;
  Alcotest.(check bool) "native batch path" true (io.Worm.Block_io.read_many <> None);
  Worm.Mem_device.raw_poke a 4 (Bytes.make 256 'Z');
  let reads0 = (Worm.Mem_device.io a).Worm.Block_io.stats.Worm.Dev_stats.reads in
  (match Worm.Block_io.read_many io [ 2; 3; 4; 5 ] with
  | [ Ok b2; Ok b3; Ok b4; Ok b5 ] ->
    Alcotest.(check bytes) "block 2" (Bytes.make 256 '2') b2;
    Alcotest.(check bytes) "block 3" (Bytes.make 256 '3') b3;
    Alcotest.(check bytes) "damaged block healed from replica" (Bytes.make 256 '4') b4;
    Alcotest.(check bytes) "block 5" (Bytes.make 256 '5') b5
  | _ -> Alcotest.fail "batched mirror read returned unexpected shape");
  Alcotest.(check int) "exactly one fallback" 1 (Worm.Mirror_device.fallback_reads m);
  (* The primary served the whole batch through its own batch op — the
     mem device counts one read per block either way, so just check the
     batch didn't silently reroute everything to the replica. *)
  let reads1 = (Worm.Mem_device.io a).Worm.Block_io.stats.Worm.Dev_stats.reads in
  Alcotest.(check bool) "primary actually read" true (reads1 > reads0)

let test_mirror_both_corrupt_is_visible () =
  let srv, a, b, _ = mirror_fixture () in
  let log = ok (Clio.Server.create_log srv "/m") in
  for i = 0 to 49 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "entry %02d padded a bit" i)))
  done;
  ignore (ok (Clio.Server.force srv));
  Worm.Mem_device.raw_poke a 2 (Bytes.make 256 'Z');
  Worm.Mem_device.raw_poke b 2 (Bytes.make 256 'Q');
  drop_caches srv;
  let got = ok (Clio.Server.fold_entries srv ~log ~init:0 (fun n _ -> n + 1)) in
  Alcotest.(check bool) "data in block 2 lost" true (got < 50)

let test_mirror_survives_recovery () =
  let srv, _, b, _ = mirror_fixture () in
  ignore srv;
  ignore b;
  (* Recovery over the mirrored device works like any other. *)
  let srv2, a2, _, m2 = mirror_fixture () in
  let log = ok (Clio.Server.create_log srv2 "/m") in
  for i = 0 to 29 do
    ignore (ok (Clio.Server.append srv2 ~log (Printf.sprintf "r%d" i)))
  done;
  ignore (ok (Clio.Server.force srv2));
  Worm.Mem_device.raw_poke a2 1 (Bytes.make 256 'W');
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size = 256 } in
  let srv3 =
    ok
      (Clio.Server.recover ~config ~clock
         ~alloc_volume:(fun ~vol_index:_ -> Ok (Worm.Mirror_device.io m2))
         ~devices:[ Worm.Mirror_device.io m2 ] ())
  in
  let log = ok (Clio.Server.resolve srv3 "/m") in
  Alcotest.(check int) "all entries after recovery through replica" 30
    (ok (Clio.Server.fold_entries srv3 ~log ~init:0 (fun n _ -> n + 1)))

(* ----------------------------- offline volumes ----------------------------- *)

let multivolume_fixture () =
  let f =
    make_fixture ~config:{ Clio.Config.default with fanout = 4 } ~block_size:256 ~capacity:32 ()
  in
  let log = create_log f "/mv" in
  for i = 0 to 699 do
    ignore (append f ~log (Printf.sprintf "entry %03d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled" true (Clio.Server.nvols f.srv > 2);
  (f, log)

let test_offline_blocks_reads_without_automount () =
  let f, log = multivolume_fixture () in
  Clio.Server.set_auto_mount f.srv false;
  ok (Clio.Server.set_volume_offline f.srv ~vol:0);
  Alcotest.(check bool) "offline" false (Clio.Server.volume_online f.srv ~vol:0);
  (match Clio.Server.fold_entries f.srv ~log ~init:0 (fun n _ -> n + 1) with
  | Error (Clio.Errors.Volume_offline 0) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "reading a shelved volume must fail");
  (* Recent reads that stay on the active volume still work. *)
  let c = ok (Clio.Server.cursor_end f.srv ~log) in
  Alcotest.(check bool) "recent read ok" true (ok (Clio.Server.prev c) <> None)

let test_automount_on_demand () =
  let f, log = multivolume_fixture () in
  ok (Clio.Server.set_volume_offline f.srv ~vol:0);
  ok (Clio.Server.set_volume_offline f.srv ~vol:1);
  (* auto_mount defaults to true: the scan remounts transparently. *)
  let n = ok (Clio.Server.fold_entries f.srv ~log ~init:0 (fun n _ -> n + 1)) in
  Alcotest.(check int) "everything readable" 700 n;
  Alcotest.(check bool) "mounts counted" true (Clio.Server.auto_mounts f.srv >= 2);
  Alcotest.(check bool) "volume back online" true (Clio.Server.volume_online f.srv ~vol:0)

let test_cannot_shelve_active () =
  let f, _ = multivolume_fixture () in
  match Clio.Server.set_volume_offline f.srv ~vol:(Clio.Server.nvols f.srv - 1) with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "active volume must not be shelvable"

let test_manual_remount () =
  let f, log = multivolume_fixture () in
  Clio.Server.set_auto_mount f.srv false;
  ok (Clio.Server.set_volume_offline f.srv ~vol:0);
  ok (Clio.Server.set_volume_online f.srv ~vol:0);
  Alcotest.(check int) "readable again" 700
    (ok (Clio.Server.fold_entries f.srv ~log ~init:0 (fun n _ -> n + 1)))

let () =
  run "mirror"
    [
      ( "mirror-device",
        [
          Alcotest.test_case "geometry check" `Quick test_mirror_geometry_check;
          Alcotest.test_case "replicates" `Quick test_mirror_replicates;
          Alcotest.test_case "heals primary corruption" `Quick test_mirror_heals_primary_corruption;
          Alcotest.test_case "both corrupt visible" `Quick test_mirror_both_corrupt_is_visible;
          Alcotest.test_case "read_many heals" `Quick test_mirror_read_many_heals;
          Alcotest.test_case "recovery via replica" `Quick test_mirror_survives_recovery;
        ] );
      ( "offline-volumes",
        [
          Alcotest.test_case "offline blocks reads" `Quick test_offline_blocks_reads_without_automount;
          Alcotest.test_case "automount on demand" `Quick test_automount_on_demand;
          Alcotest.test_case "cannot shelve active" `Quick test_cannot_shelve_active;
          Alcotest.test_case "manual remount" `Quick test_manual_remount;
        ] );
    ]
