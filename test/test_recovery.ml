(* Crash recovery (section 2.3.1): the recovered server must be
   observationally identical to the one that crashed. *)

open Testkit

let observable srv ~logs =
  List.map (fun log -> (log, all_payloads srv ~log)) logs

let test_recover_empty_server () =
  let f = make_fixture () in
  let srv = crash_and_recover f in
  Alcotest.(check int) "one volume" 1 (Clio.Server.nvols srv);
  Alcotest.(check bool) "no client logs" true (ok (Clio.Server.list_logs srv "/") = [])

let test_recover_preserves_entries_and_catalog () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/a/b" in
  for i = 0 to 199 do
    ignore (append f ~log:(if i mod 3 = 0 then b else a) (Printf.sprintf "e%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let before = observable f.srv ~logs:[ a; b ] in
  let srv = crash_and_recover f in
  Alcotest.(check int) "log ids stable" a (ok (Clio.Server.resolve srv "/a"));
  Alcotest.(check int) "sublog ids stable" b (ok (Clio.Server.resolve srv "/a/b"));
  let after = observable srv ~logs:[ a; b ] in
  Alcotest.(check bool) "entries identical" true (before = after)

let test_unforced_tail_lost_without_nvram () =
  (* Without a force, entries in the volatile tail are lost — the paper's
     stated semantics ("log entries are written synchronously ... when
     forced"). *)
  let f = make_fixture ~nvram:false () in
  let log = create_log f "/loss" in
  for i = 0 to 4 do
    ignore (append f ~log (Printf.sprintf "durable %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  ignore (append f ~log "volatile");
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/loss") in
  let got = all_payloads srv ~log in
  Alcotest.(check bool) "durable entries survive" true
    (List.filteri (fun i _ -> i < 5) got = List.init 5 (Printf.sprintf "durable %d"));
  Alcotest.(check bool) "volatile entry gone" true (not (List.mem "volatile" got))

let test_nvram_tail_survives () =
  let f = make_fixture () in
  let log = create_log f "/nv" in
  ignore (append f ~log "one");
  ignore (append f ~log ~force:true "two");
  (* The force staged the tail in NVRAM; no device write happened. *)
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/nv") in
  check_payloads "both entries recovered from NVRAM" [ "one"; "two" ] (all_payloads srv ~log);
  (* And the server can keep appending right where it left off. *)
  ignore (ok (Clio.Server.append srv ~log "three"));
  check_payloads "continues" [ "one"; "two"; "three" ] (all_payloads srv ~log)

let test_nvram_staged_image_carries_forced_flag () =
  (* Regression: the NVRAM force path built the staged image without the
     forced trailer flag, so a replayed image was indistinguishable from an
     ordinary (crash-truncatable) block. The staged bytes must look exactly
     like a forced flush would on the medium. *)
  let f = make_fixture () in
  let log = create_log f "/flag" in
  ignore (append f ~log ~force:true "durability point");
  (match f.nvram with
  | None -> Alcotest.fail "fixture must have NVRAM"
  | Some nv -> (
    match Worm.Nvram.load nv with
    | None -> Alcotest.fail "force must stage the tail in NVRAM"
    | Some (_block, image) ->
      Alcotest.(check bool) "forced flag set" true (Clio.Block_format.is_forced image)));
  (* The flag is preserved across recovery-and-refill: when the restored
     tail later reaches the medium it still parses. *)
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/flag") in
  check_payloads "entry recovered" [ "durability point" ] (all_payloads srv ~log)

let test_stale_nvram_ignored () =
  let f = make_fixture () in
  let log = create_log f "/stale" in
  ignore (append f ~log ~force:true "a");
  (* Fill past the staged block so it reaches the device; NVRAM now stale. *)
  for i = 0 to 50 do
    ignore (append f ~log (Printf.sprintf "fill %d %s" i (String.make 100 'x')))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/stale") in
  let got = all_payloads srv ~log in
  Alcotest.(check int) "nothing duplicated" 52 (List.length got)

let test_recovery_without_frontier_reporting () =
  (* Device cannot report its frontier: binary search must find it. *)
  let f = make_fixture ~reports_frontier:false () in
  let log = create_log f "/bs" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "e%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let probes = (Clio.Server.stats srv).Clio.Stats.frontier_probe_reads in
  Alcotest.(check bool) "binary search used" true (probes > 0);
  Alcotest.(check bool) "log2 probes" true (probes <= 2 * Clio.Analysis.frontier_probes ~capacity:1024);
  let log = ok (Clio.Server.resolve srv "/bs") in
  Alcotest.(check int) "all entries" 100 (List.length (all_payloads srv ~log))

let test_recovery_entrymap_equivalent () =
  (* After recovery, locate must behave exactly as before the crash: the
     pending maps were reconstructed, not lost. *)
  let config = { Clio.Config.default with fanout = 4 } in
  let f = make_fixture ~config () in
  let logs = Array.init 4 (fun i -> create_log f (Printf.sprintf "/l%d" i)) in
  let rng = Sim.Rng.create 5L in
  for i = 0 to 300 do
    ignore (append f ~log:logs.(Sim.Rng.int rng 4) (Printf.sprintf "x%d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let st = Clio.Server.state srv in
  let v = ok (Clio.State.active st) in
  Array.iter
    (fun log ->
      for pos = 1 to Clio.Vol.written_limit v do
        let naive, _ = ok (Baseline.Naive_scan.prev_block st v ~log ~before:pos) in
        let fast = ok (Clio.Locate.prev_block st v ~log ~before:pos) in
        Alcotest.(check (option int)) (Printf.sprintf "log %d prev %d" log pos) naive fast
      done)
    logs

let test_recovery_cost_tracks_figure4 () =
  (* Blocks examined during entrymap reconstruction stay within the paper's
     worst case N·log_N b (+ slack for the fallback scans). *)
  let config = { Clio.Config.default with fanout = 8 } in
  List.iter
    (fun entries ->
      let f = make_fixture ~config ~capacity:4096 () in
      let log = create_log f "/w" in
      for i = 0 to entries - 1 do
        ignore (append f ~log (Printf.sprintf "%d %s" i (String.make 80 'p')))
      done;
      ignore (ok (Clio.Server.force f.srv));
      let srv = crash_and_recover f in
      let examined = (Clio.Server.stats srv).Clio.Stats.recovery_blocks_examined in
      let st = Clio.Server.state srv in
      let v = ok (Clio.State.active st) in
      let b = float_of_int (Clio.Vol.written_limit v) in
      let worst = Clio.Analysis.recovery_examinations_worst ~fanout:8 ~written:b in
      Alcotest.(check bool)
        (Printf.sprintf "examined %d <= worst %.0f + slack (b=%.0f)" examined worst b)
        true
        (float_of_int examined <= worst +. 16.0))
    [ 50; 300; 1000 ]

let test_double_crash () =
  let f = make_fixture () in
  let log = create_log f "/twice" in
  ignore (append f ~log ~force:true "first era");
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/twice") in
  ignore (ok (Clio.Server.append ~force:true srv ~log "second era"));
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/twice") in
  check_payloads "both eras" [ "first era"; "second era" ] (all_payloads srv ~log)

let test_timestamps_stay_monotonic_across_recovery () =
  let f = make_fixture () in
  let log = create_log f "/mono" in
  let t1 = Option.get (append f ~log ~force:true "a") in
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/mono") in
  let t2 = Option.get (ok (Clio.Server.append srv ~log "b")) in
  Alcotest.(check bool) "monotone across crash" true (Int64.compare t2 t1 > 0)

let test_crash_mid_fragmented_entry () =
  (* Crash with only a prefix of a fragmented entry durable: the incomplete
     entry must be invisible, prior entries intact. *)
  let f = make_fixture ~block_size:256 ~nvram:false () in
  let log = create_log f "/partial" in
  ignore (append f ~log "complete");
  ignore (ok (Clio.Server.force f.srv));
  (* This entry spans several blocks; the final fragment stays in the
     volatile tail (no force afterwards). *)
  ignore (append f ~log (String.make 700 'z'));
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/partial") in
  let got = all_payloads srv ~log in
  Alcotest.(check bool) "complete entry present" true (List.mem "complete" got);
  Alcotest.(check bool) "incomplete entry suppressed" true
    (not (List.exists (fun p -> String.length p >= 700) got));
  (* The log remains appendable and readable. *)
  ignore (ok (Clio.Server.append srv ~log "after"));
  let got = all_payloads srv ~log in
  Alcotest.(check bool) "appendable after" true (List.mem "after" got)

let test_garbage_sprayed_past_frontier () =
  (* A failure wrote junk past the end of the log: recovery must invalidate
     it and record the locations in the bad-block log. *)
  let block_size = 256 in
  let base = Worm.Mem_device.create ~block_size ~capacity:1024 () in
  let faulty = Worm.Faulty_device.create (Worm.Mem_device.io base) in
  let alloc ~vol_index:_ = Ok (Worm.Faulty_device.io faulty) in
  let clock = Sim.Clock.simulated () in
  let config = { Clio.Config.default with block_size } in
  let srv = ok (Clio.Server.create ~config ~clock ~alloc_volume:alloc ()) in
  let log = ok (Clio.Server.create_log srv "/g") in
  for i = 0 to 19 do
    ignore (ok (Clio.Server.append srv ~log (Printf.sprintf "e%d" i)))
  done;
  ignore (ok (Clio.Server.force srv));
  Worm.Faulty_device.spray_garbage_after_frontier faulty ~count:3;
  let srv2 =
    ok
      (Clio.Server.recover ~config ~clock ~alloc_volume:alloc
         ~devices:[ Worm.Faulty_device.io faulty ] ())
  in
  let log = ok (Clio.Server.resolve srv2 "/g") in
  Alcotest.(check int) "entries intact" 20 (List.length (all_payloads srv2 ~log));
  Alcotest.(check bool) "garbage quarantined" true ((Clio.Server.stats srv2).Clio.Stats.bad_blocks >= 3);
  (* New appends land past the quarantined region and read back fine. *)
  ignore (ok (Clio.Server.append ~force:true srv2 ~log "fresh"));
  Alcotest.(check bool) "appendable" true (List.mem "fresh" (all_payloads srv2 ~log))

let test_recover_rejects_mixed_sequences () =
  let f1 = make_fixture () in
  let f2 = make_fixture () in
  ignore (create_log f1 "/x");
  ignore (create_log f2 "/y");
  ignore (ok (Clio.Server.force f1.srv));
  ignore (ok (Clio.Server.force f2.srv));
  let devices = fixture_devices f1 @ fixture_devices f2 in
  match
    Clio.Server.recover ~config:f1.config ~clock:f1.clock ~alloc_volume:f1.alloc ~devices ()
  with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "volumes from different sequences must be rejected"

(* ------------------------- mid-batch crash ---------------------------- *)

(* A fixture whose devices die (every append fails with [Io_error]) once a
   budget of successful appends runs out — the medium yanked mid-batch. The
   budget ref starts unlimited so setup traffic is unaffected; the test arms
   it just before the batch under scrutiny. *)
let budgeted_fixture () =
  let block_size = 256 and capacity = 1024 in
  let config = { Clio.Config.default with Clio.Config.block_size } in
  let clock = Sim.Clock.simulated () in
  let devices = Hashtbl.create 4 in
  let remaining = ref max_int in
  let alloc ~vol_index =
    let d = Worm.Mem_device.create ~block_size ~capacity () in
    Hashtbl.replace devices vol_index d;
    let io = Worm.Mem_device.io d in
    Ok
      {
        io with
        Worm.Block_io.append =
          (fun data ->
            if !remaining <= 0 then Error (Worm.Block_io.Io_error "device died")
            else begin
              decr remaining;
              io.Worm.Block_io.append data
            end);
      }
  in
  let nvram = Worm.Nvram.create () in
  let srv = ok (Clio.Server.create ~config ~clock ~nvram ~alloc_volume:alloc ()) in
  (srv, clock, config, nvram, devices, remaining)

let budgeted_images devices =
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) devices []
  |> List.sort compare
  |> List.map (fun (_, d) ->
         let io = Worm.Mem_device.io d in
         List.init io.Worm.Block_io.capacity (fun i ->
             match io.Worm.Block_io.read i with
             | Ok b -> Some (Bytes.to_string b)
             | Error _ -> None))

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
  | _ :: _, [] -> false

let prop_midbatch_crash =
  (* Arm a device-death budget, run the same entries as one append_batch
     and as N singles, crash both, recover both: the durable state must be
     byte-identical, and what survives must be exactly a prefix of the
     batch (the suffix cleanly absent — no torn entries, and the NVRAM
     image staged by the pre-batch force replays without resurrecting
     anything). *)
  let gen =
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 4) (string_size ~gen:(char_range 'a' 'z') (int_range 0 120)))
        (int_range 0 5)
        (list_size (int_range 1 16) (string_size ~gen:(char_range 'a' 'z') (int_range 0 300))))
  in
  Testkit.qtest ~count:40 "mid-batch device death == singles (bytes + prefix recovery)" gen
    (fun (pre, budget, payloads) ->
      let run use_batch =
        let srv, clock, config, nvram, devices, remaining = budgeted_fixture () in
        let log = ok (Clio.Server.create_log srv "/l") in
        List.iter (fun p -> ignore (ok (Clio.Server.append srv ~log p))) pre;
        ignore (ok (Clio.Server.force srv));
        remaining := budget;
        (if use_batch then
           let items =
             List.map
               (fun p -> { Clio.Server.log; extra_members = []; payload = p })
               payloads
           in
           ignore (Clio.Server.append_batch srv items)
         else
           List.iter (fun p -> ignore (Clio.Server.append srv ~log p)) payloads);
        (* Crash: the server is gone; the devices and NVRAM survive. *)
        remaining := max_int;
        let ios =
          Hashtbl.fold (fun i d acc -> (i, d) :: acc) devices []
          |> List.sort compare
          |> List.map (fun (_, d) -> Worm.Mem_device.io d)
        in
        let alloc ~vol_index:_ =
          Error (Clio.Errors.Bad_record "no allocation after crash")
        in
        let srv' =
          ok (Clio.Server.recover ~config ~clock ~nvram ~alloc_volume:alloc ~devices:ios ())
        in
        (budgeted_images devices, all_payloads srv' ~log)
      in
      let bytes_b, seen_b = run true in
      let bytes_s, seen_s = run false in
      (* The batch path stops staging at the first device error while the
         singles path keeps trying, so only compare where both are defined:
         durable bytes and the recovered view must agree on the prefix both
         persisted, and each recovered view is a clean prefix of the
         submitted sequence. *)
      bytes_b = bytes_s && seen_b = seen_s
      && is_prefix seen_b (pre @ payloads)
      && List.length seen_b >= List.length pre)

let () =
  run "recovery"
    [
      ( "basic",
        [
          Alcotest.test_case "empty server" `Quick test_recover_empty_server;
          Alcotest.test_case "entries + catalog" `Quick test_recover_preserves_entries_and_catalog;
          Alcotest.test_case "unforced tail lost" `Quick test_unforced_tail_lost_without_nvram;
          Alcotest.test_case "NVRAM tail survives" `Quick test_nvram_tail_survives;
          Alcotest.test_case "NVRAM image forced flag" `Quick
            test_nvram_staged_image_carries_forced_flag;
          Alcotest.test_case "stale NVRAM ignored" `Quick test_stale_nvram_ignored;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "timestamps monotonic" `Quick test_timestamps_stay_monotonic_across_recovery;
          Alcotest.test_case "mixed sequences rejected" `Quick test_recover_rejects_mixed_sequences;
        ] );
      ( "initialization",
        [
          Alcotest.test_case "frontier binary search" `Quick test_recovery_without_frontier_reporting;
          Alcotest.test_case "entrymap equivalent" `Quick test_recovery_entrymap_equivalent;
          Alcotest.test_case "Figure-4 cost bound" `Quick test_recovery_cost_tracks_figure4;
        ] );
      ( "damage",
        [
          Alcotest.test_case "crash mid-entry" `Quick test_crash_mid_fragmented_entry;
          Alcotest.test_case "garbage past frontier" `Quick test_garbage_sprayed_past_frontier;
        ] );
      ("mid-batch", [ prop_midbatch_crash ]);
    ]
