(* The paper's minimal header mode (section 2.2): when per-entry timestamps
   are disabled, entries carry the 4-byte header (2 bytes on-record + 2 in
   the block index) — except the mandatory first-in-block timestamp. *)

open Testkit

let fixture () =
  make_fixture ~config:{ Clio.Config.default with timestamp_all = false } ()

let test_roundtrip () =
  let f = fixture () in
  let log = create_log f "/min" in
  let payloads = List.init 100 (fun i -> Printf.sprintf "entry %02d" i) in
  List.iter (fun p -> ignore (append f ~log p)) payloads;
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "forward" payloads (all_payloads f.srv ~log);
  check_payloads "backward" payloads (all_payloads_backward f.srv ~log)

let test_append_returns_no_timestamp_mostly () =
  let f = fixture () in
  let log = create_log f "/min" in
  let stamped, plain =
    List.init 50 (fun i -> append f ~log (string_of_int i))
    |> List.partition Option.is_some
  in
  (* Only block-starting entries get upgraded to timestamped headers. *)
  Alcotest.(check bool) "most entries unstamped" true
    (List.length plain > List.length stamped)

let test_first_in_block_still_timestamped () =
  let f = fixture () in
  let log = create_log f "/min" in
  for i = 0 to 99 do
    ignore (append f ~log (Printf.sprintf "filler %d to cross blocks eventually" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = ok (Clio.State.active st) in
  for b = 1 to Clio.Vol.written_limit v - 1 do
    match Clio.Vol.view_block v b with
    | Clio.Vol.Records recs when Array.length recs > 0 ->
      if Clio.Header.is_start recs.(0).Clio.Block_format.header then
        Alcotest.(check bool)
          (Printf.sprintf "block %d first record timestamped" b)
          true
          (recs.(0).Clio.Block_format.header.Clio.Header.timestamp <> None)
    | _ -> ()
  done

let test_header_overhead_is_minimal () =
  (* With timestamps off, per-entry header bytes approach the paper's
     2 on-record bytes (plus the occasional upgraded first-in-block). *)
  let f = fixture () in
  let log = create_log f "/min" in
  let n = 2000 in
  for i = 0 to n - 1 do
    ignore (append f ~log (Printf.sprintf "%04d0123456789012345678901234567890123456789" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let s = Clio.Server.stats f.srv in
  let per_entry = float_of_int s.Clio.Stats.bytes_header /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f header bytes/entry (minimal mode)" per_entry)
    true
    (per_entry < 4.5);
  (* And with timestamps on it is ~10. *)
  let f2 = make_fixture () in
  let log2 = create_log f2 "/full" in
  for i = 0 to n - 1 do
    ignore (append f2 ~log:log2 (Printf.sprintf "%04d0123456789012345678901234567890123456789" i))
  done;
  let s2 = Clio.Server.stats f2.srv in
  let per_entry2 = float_of_int s2.Clio.Stats.bytes_header /. float_of_int n in
  Alcotest.(check bool) "timestamped mode ~10 B/entry" true (per_entry2 > 9.0)

let test_locate_still_works () =
  let f = fixture () in
  let rare = create_log f "/rare" in
  let noise = create_log f "/noise" in
  ignore (append f ~log:rare "needle");
  for i = 0 to 999 do
    ignore (append f ~log:noise (Printf.sprintf "hay %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "found" [ "needle" ] (all_payloads f.srv ~log:rare)

let test_time_search_block_resolution () =
  (* Entries without their own timestamps are still findable to block
     resolution — "the search succeeds to a resolution of at least a single
     block". *)
  let f = fixture () in
  let log = create_log f "/tsless" in
  let mid_ts = ref 0L in
  for i = 0 to 199 do
    Sim.Clock.advance f.clock 1000L;
    let ts = append f ~log (Printf.sprintf "e%03d" i) in
    if i = 100 then mid_ts := (match ts with Some t -> t | None -> Sim.Clock.peek f.clock)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let c = ok (Clio.Server.cursor_at_time f.srv ~log !mid_ts) in
  (* Scanning forward from the seek point must reach entry 100 within one
     block's worth of entries. *)
  let rec hunt steps =
    if steps > 100 then Alcotest.fail "time seek landed too far away"
    else
      match ok (Clio.Server.next c) with
      | Some e when e.Clio.Reader.payload = "e100" -> steps
      | Some _ -> hunt (steps + 1)
      | None -> Alcotest.fail "ran out of entries"
  in
  let steps = hunt 0 in
  Alcotest.(check bool) (Printf.sprintf "reached e100 in %d steps" steps) true (steps <= 40)

let test_recovery_minimal_mode () =
  let f = fixture () in
  let log = create_log f "/min" in
  let payloads = List.init 120 (fun i -> Printf.sprintf "m%03d" i) in
  List.iter (fun p -> ignore (append f ~log p)) payloads;
  ignore (ok (Clio.Server.force f.srv));
  let srv = crash_and_recover f in
  let log = ok (Clio.Server.resolve srv "/min") in
  check_payloads "recovered" payloads (all_payloads srv ~log)

let test_fragmentation_minimal_mode () =
  let f = fixture () in
  let log = create_log f "/big" in
  let payload = String.make 1000 'z' in
  ignore (append f ~log payload);
  ignore (ok (Clio.Server.force f.srv));
  check_payloads "fragmented entry intact" [ payload ] (all_payloads f.srv ~log)

let () =
  run "minimal_headers"
    [
      ( "timestamp_all=false",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "mostly unstamped" `Quick test_append_returns_no_timestamp_mostly;
          Alcotest.test_case "first-in-block stamped" `Quick test_first_in_block_still_timestamped;
          Alcotest.test_case "header overhead minimal" `Quick test_header_overhead_is_minimal;
          Alcotest.test_case "locate works" `Quick test_locate_still_works;
          Alcotest.test_case "time search block resolution" `Quick test_time_search_block_resolution;
          Alcotest.test_case "recovery" `Quick test_recovery_minimal_mode;
          Alcotest.test_case "fragmentation" `Quick test_fragmentation_minimal_mode;
        ] );
    ]
