(* Second property batch: random sublog hierarchies, timestamp search
   against a model, asynchronous identification, and salvage faithfulness. *)

open Testkit

(* --------------------- random hierarchies + membership --------------------- *)

(* A random forest over k logs: parent.(i) < i or root. Appends go to random
   logs; reading any log must equal the model's "self + descendants,
   in append order". *)
let gen_hierarchy_scenario =
  QCheck2.Gen.(
    let nlogs = int_range 2 8 in
    nlogs >>= fun k ->
    let parents = list_repeat k (int_range 0 k) in
    (* parent.(i) in [0,i) selects a parent among earlier logs; >= i means root *)
    let appends = list_size (int_range 1 120) (pair (int_range 0 (k - 1)) (string_size ~gen:(char_range 'a' 'z') (int_range 0 30))) in
    map2 (fun ps aps -> (k, ps, aps)) parents appends)

let prop_hierarchy_membership =
  qtest ~count:80 "sublog reads = model over random forests" gen_hierarchy_scenario
    (fun (k, parents, appends) ->
      let f = make_fixture () in
      let parent_of = Array.make k (-1) in
      let logs =
        Array.init k (fun i ->
            let p = List.nth parents i in
            let parent_path =
              if p < i then Printf.sprintf "/n%d" p |> fun _ -> parent_of.(i) <- p
              else parent_of.(i) <- -1
            in
            ignore parent_path;
            (* Build the path from the parent chain. *)
            let rec path j = if j < 0 then "" else path parent_of.(j) ^ Printf.sprintf "/n%d" j in
            ok (Clio.Server.ensure_log f.srv (path i)))
      in
      List.iter (fun (l, payload) -> ignore (append f ~log:logs.(l) payload)) appends;
      (* Model: log i receives appends to i and to any descendant of i. *)
      let rec is_desc i j =
        (* is j a descendant-or-self of i *)
        j = i || (parent_of.(j) >= 0 && is_desc i parent_of.(j))
      in
      let ok_all = ref true in
      for i = 0 to k - 1 do
        let expect = List.filter_map (fun (l, p) -> if is_desc i l then Some p else None) appends in
        if all_payloads f.srv ~log:logs.(i) <> expect then ok_all := false
      done;
      !ok_all)

(* --------------------------- time search model --------------------------- *)

let gen_time_scenario =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 100) (int_range 0 5000)) (* inter-arrival gaps *)
      (list_size (int_range 1 20) (int_range 0 600_000) (* query times *)))

let prop_time_search_model =
  qtest ~count:80 "entry_at_or_after = model" gen_time_scenario (fun (gaps, queries) ->
      let f = make_fixture () in
      let log = create_log f "/t" in
      let stamps =
        List.mapi
          (fun i gap ->
            Sim.Clock.advance f.clock (Int64.of_int gap);
            (Option.get (append f ~log (string_of_int i)), i))
          gaps
      in
      ignore (ok (Clio.Server.force f.srv));
      List.for_all
        (fun q ->
          let q = Int64.of_int q in
          let model =
            List.find_opt (fun (ts, _) -> Int64.compare ts q >= 0) stamps
            |> Option.map (fun (_, i) -> string_of_int i)
          in
          let got =
            ok (Clio.Server.entry_at_or_after f.srv ~log q)
            |> Option.map (fun e -> e.Clio.Reader.payload)
          in
          model = got)
        queries)

let prop_time_search_before_model =
  qtest ~count:60 "entry_before = model" gen_time_scenario (fun (gaps, queries) ->
      let f = make_fixture () in
      let log = create_log f "/t" in
      let stamps =
        List.mapi
          (fun i gap ->
            Sim.Clock.advance f.clock (Int64.of_int gap);
            (Option.get (append f ~log (string_of_int i)), i))
          gaps
      in
      ignore (ok (Clio.Server.force f.srv));
      List.for_all
        (fun q ->
          let q = Int64.of_int q in
          let model =
            List.filter (fun (ts, _) -> Int64.compare ts q < 0) stamps
            |> List.rev
            |> function
            | (_, i) :: _ -> Some (string_of_int i)
            | [] -> None
          in
          let got =
            ok (Clio.Server.entry_before f.srv ~log q)
            |> Option.map (fun e -> e.Clio.Reader.payload)
          in
          model = got)
        queries)

(* ------------------------------ entry ids ------------------------------ *)

let prop_entry_id_always_found =
  qtest ~count:40 "async ids resolve under bounded skew"
    QCheck2.Gen.(pair (int_range 1 80) (int_range 0 900))
    (fun (n, skew) ->
      let f = make_fixture () in
      let log = create_log f "/ids" in
      let skew = Int64.of_int (skew - 450) in
      let client_ts = Array.make n 0L in
      for i = 0 to n - 1 do
        Sim.Clock.advance f.clock 1000L;
        client_ts.(i) <- Int64.add (Sim.Clock.peek f.clock) skew;
        ignore (append f ~log (Clio.Entry_id.wrap ~seq:(Int64.of_int i) (Printf.sprintf "p%d" i)))
      done;
      ignore (ok (Clio.Server.force f.srv));
      let st = Clio.Server.state f.srv in
      List.for_all
        (fun i ->
          match
            ok
              (Clio.Entry_id.find st ~log ~seq:(Int64.of_int i) ~client_ts:client_ts.(i)
                 ~max_skew_us:1000L)
          with
          | Some e -> (
            match Clio.Entry_id.unwrap e.Clio.Reader.payload with
            | Ok (s, _) -> Int64.to_int s = i
            | Error _ -> false)
          | None -> false)
        [ 0; n / 2; n - 1 ])

(* ------------------------------- salvage ------------------------------- *)

let prop_salvage_faithful =
  qtest ~count:30 "salvage preserves every log's contents"
    QCheck2.Gen.(list_size (int_range 1 60) (pair (int_range 0 3) (string_size ~gen:(char_range 'a' 'z') (int_range 0 400))))
    (fun appends ->
      let src = make_fixture ~block_size:256 () in
      let logs = Array.init 4 (fun i -> create_log src (Printf.sprintf "/s%d" i)) in
      List.iter (fun (l, p) -> ignore (append src ~log:logs.(l) p)) appends;
      ignore (ok (Clio.Server.force src.srv));
      let dst = make_fixture ~block_size:256 () in
      match Clio.Salvage.copy_sequence ~src:src.srv ~dst:dst.srv with
      | Error _ -> false
      | Ok r ->
        r.Clio.Salvage.entries_copied = List.length appends
        && Array.for_all
             (fun log -> all_payloads src.srv ~log = all_payloads dst.srv ~log)
             logs)

let () =
  run "props2"
    [
      ( "hierarchies",
        [ prop_hierarchy_membership ] );
      ( "time",
        [ prop_time_search_model; prop_time_search_before_model ] );
      ( "entry-id",
        [ prop_entry_id_always_found ] );
      ( "salvage",
        [ prop_salvage_faithful ] );
    ]
