(* Baselines: the indirect-block FS, skip-chain locate, version chains. *)

open Testkit

(* ---------------------------- indirect fs ---------------------------- *)

let mk_fs ?churn () =
  let dev = Baseline.Rw_device.create ~block_size:1024 ~capacity:200_000 () in
  (dev, Baseline.Indirect_fs.format ?churn dev)

let test_fs_write_read_roundtrip () =
  let _, fs = mk_fs () in
  let file = ok (Baseline.Indirect_fs.create_file fs "f") in
  ok (Baseline.Indirect_fs.append fs file "hello ");
  ok (Baseline.Indirect_fs.append fs file "world");
  Alcotest.(check int) "size" 11 (Baseline.Indirect_fs.size fs file);
  Alcotest.(check string) "contents" "hello world"
    (ok (Baseline.Indirect_fs.read_range fs file ~off:0 ~len:11));
  Alcotest.(check string) "subrange" "o wor" (ok (Baseline.Indirect_fs.read_range fs file ~off:4 ~len:5))

let test_fs_large_file_through_indirection () =
  let _, fs = mk_fs () in
  let file = ok (Baseline.Indirect_fs.create_file fs "big") in
  (* Past the 12 direct blocks and into the single indirect range. *)
  let chunk = String.make 1024 'a' in
  for _ = 1 to 40 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  Alcotest.(check int) "size" (40 * 1024) (Baseline.Indirect_fs.size fs file);
  let back = ok (Baseline.Indirect_fs.read_range fs file ~off:(20 * 1024) ~len:1024) in
  Alcotest.(check string) "mid-file readable" chunk back;
  Alcotest.(check int) "40 data blocks" 40 (List.length (Baseline.Indirect_fs.blocks_of_file fs file))

let test_fs_double_indirect () =
  let _, fs = mk_fs () in
  let file = ok (Baseline.Indirect_fs.create_file fs "huge") in
  (* 12 direct + 256 single-indirect = 268 blocks; write past that. *)
  let chunk = String.make 1024 'b' in
  for _ = 1 to 300 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  let back = ok (Baseline.Indirect_fs.read_range fs file ~off:(299 * 1024) ~len:1024) in
  Alcotest.(check string) "tail readable" chunk back

let test_fs_read_past_end () =
  let _, fs = mk_fs () in
  let file = ok (Baseline.Indirect_fs.create_file fs "f") in
  ok (Baseline.Indirect_fs.append fs file "abc");
  match Baseline.Indirect_fs.read_range fs file ~off:0 ~len:10 with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected read-past-end error"

let test_fs_names () =
  let _, fs = mk_fs () in
  ignore (ok (Baseline.Indirect_fs.create_file fs "f"));
  (match Baseline.Indirect_fs.create_file fs "f" with
  | Error (Clio.Errors.Log_exists _) -> ()
  | _ -> Alcotest.fail "duplicate must fail");
  (match Baseline.Indirect_fs.open_file fs "g" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | _ -> Alcotest.fail "missing must fail");
  ignore (ok (Baseline.Indirect_fs.open_file fs "f"))

let test_fs_append_write_amplification_grows () =
  (* The motivating claim: appends to a large growing file cost more device
     writes (inode + indirect-path updates) than appends to a small one. *)
  let dev, fs = mk_fs () in
  let file = ok (Baseline.Indirect_fs.create_file fs "grow") in
  let chunk = String.make 1024 'c' in
  (* Warm up within direct blocks. *)
  for _ = 1 to 5 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  Baseline.Rw_device.reset_counters dev;
  for _ = 1 to 5 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  let small_cost = Baseline.Rw_device.writes dev in
  (* Push deep into double-indirect territory. *)
  for _ = 1 to 300 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  Baseline.Rw_device.reset_counters dev;
  for _ = 1 to 5 do
    ok (Baseline.Indirect_fs.append fs file chunk)
  done;
  let big_cost = Baseline.Rw_device.writes dev in
  Alcotest.(check bool)
    (Printf.sprintf "appends cost more when large (%d > %d)" big_cost small_cost)
    true (big_cost > small_cost)

let test_fs_churn_scatters_blocks () =
  let _, fs = mk_fs ~churn:7 () in
  let file = ok (Baseline.Indirect_fs.create_file fs "scattered") in
  for _ = 1 to 20 do
    ok (Baseline.Indirect_fs.append fs file (String.make 1024 'd'))
  done;
  let blocks = Baseline.Indirect_fs.blocks_of_file fs file in
  let contiguous =
    let rec go = function
      | a :: (b :: _ as rest) -> (b = a + 1) && go rest
      | _ -> true
    in
    go blocks
  in
  Alcotest.(check bool) "blocks scattered by churn" false contiguous

(* ----------------------------- skip chain ----------------------------- *)

let test_skip_chain_hops_logarithmic () =
  let c = Baseline.Skip_chain.create ~block_entries:10 in
  for _ = 1 to 100_000 do
    Baseline.Skip_chain.append c
  done;
  let hops d = fst (Baseline.Skip_chain.locate_back c ~distance:d) in
  (* Hops = popcount of the distance; bounded by log2. *)
  Alcotest.(check int) "d=0" 0 (hops 0);
  Alcotest.(check int) "d=1" 1 (hops 1);
  Alcotest.(check int) "d=2^10" 1 (hops 1024);
  Alcotest.(check bool) "d=65535 needs 16 hops" true (hops 65535 = 16);
  Alcotest.(check bool) "bounded by log2" true (hops 99_999 <= 17)

let test_skip_chain_blocks_vs_entrymap () =
  (* The section 5.1 comparison: "our scheme requires significantly fewer
     disk read operations, on average, to locate very distant log entries."
     Skip-chain hops land on scattered old blocks — about popcount(d) ≈
     log2(d)/2 uncached reads on average — while the entrymap descent reads
     one (shared, well-known) block per level, ~log_N(d). Compare averages
     over random distances. *)
  let c = Baseline.Skip_chain.create ~block_entries:10 in
  for _ = 1 to 2_000_000 do
    Baseline.Skip_chain.append c
  done;
  let rng = Sim.Rng.create 99L in
  let samples = 200 in
  let skip_total = ref 0 and ours_total = ref 0 in
  for _ = 1 to samples do
    let d = 500_000 + Sim.Rng.int rng 1_000_000 in
    let _, blocks = Baseline.Skip_chain.locate_back c ~distance:d in
    skip_total := !skip_total + blocks;
    (* Descent reads of the entrymap tree: one per level. *)
    ours_total := !ours_total + Clio.Analysis.levels_for_distance ~fanout:16 ~distance:d
  done;
  Alcotest.(check bool)
    (Printf.sprintf "avg skip blocks %d > avg entrymap descent reads %d" !skip_total !ours_total)
    true
    (!skip_total > !ours_total)

(* ---------------------------- version chain ---------------------------- *)

let test_version_chain_costs () =
  let vc = Baseline.Version_chain.create () in
  List.iter (fun b -> Baseline.Version_chain.add_version vc ~block:b) [ 10; 500; 900; 1500; 4000 ];
  Alcotest.(check int) "versions" 5 (Baseline.Version_chain.versions vc);
  Alcotest.(check int) "back 0 free" 0 (Baseline.Version_chain.back_cost vc ~steps:0);
  Alcotest.(check int) "back 3 = 3 reads" 3 (Baseline.Version_chain.back_cost vc ~steps:3);
  (* Forward from version 1 (block 500) on a 10k-block device: everything
     after block 500 must be scanned. *)
  Alcotest.(check int) "forward scan is brutal" 9500
    (Baseline.Version_chain.forward_cost vc ~from_version:1 ~device_blocks:10_000)

let test_version_chain_vs_log_file_forward () =
  (* Our log files scan forward via the entrymap; Swallow cannot. *)
  let vc = Baseline.Version_chain.create () in
  for i = 0 to 99 do
    Baseline.Version_chain.add_version vc ~block:(i * 100)
  done;
  let swallow = Baseline.Version_chain.forward_cost vc ~from_version:0 ~device_blocks:10_000 in
  let ours = Clio.Analysis.locate_examinations ~fanout:16 ~distance:10_000 in
  Alcotest.(check bool) "orders of magnitude apart" true (swallow > 50 * ours)

(* ----------------------------- naive scan ----------------------------- *)

let test_naive_scan_counts () =
  let f = make_fixture () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  ignore (append f ~log:a "first");
  for i = 0 to 59 do
    ignore (append f ~log:b (Printf.sprintf "noise %d padding padding" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = ok (Clio.State.active st) in
  let found, examined = ok (Baseline.Naive_scan.prev_block st v ~log:a ~before:(Clio.Vol.written_limit v)) in
  Alcotest.(check (option int)) "finds block 1" (Some 1) found;
  Alcotest.(check bool) "examined nearly everything" true
    (examined >= Clio.Vol.written_limit v - 2)

let () =
  run "baseline"
    [
      ( "indirect-fs",
        [
          Alcotest.test_case "roundtrip" `Quick test_fs_write_read_roundtrip;
          Alcotest.test_case "single indirect" `Quick test_fs_large_file_through_indirection;
          Alcotest.test_case "double indirect" `Quick test_fs_double_indirect;
          Alcotest.test_case "read past end" `Quick test_fs_read_past_end;
          Alcotest.test_case "names" `Quick test_fs_names;
          Alcotest.test_case "write amplification grows" `Quick test_fs_append_write_amplification_grows;
          Alcotest.test_case "churn scatters" `Quick test_fs_churn_scatters_blocks;
        ] );
      ( "skip-chain",
        [
          Alcotest.test_case "logarithmic hops" `Quick test_skip_chain_hops_logarithmic;
          Alcotest.test_case "vs entrymap" `Quick test_skip_chain_blocks_vs_entrymap;
        ] );
      ( "version-chain",
        [
          Alcotest.test_case "costs" `Quick test_version_chain_costs;
          Alcotest.test_case "vs log files" `Quick test_version_chain_vs_log_file_forward;
        ] );
      ( "naive-scan",
        [ Alcotest.test_case "counts" `Quick test_naive_scan_counts ] );
    ]
