(* Soak: a production-shaped workload at a scale where every subsystem is
   exercised together — tens of thousands of entries across many log files,
   several volume rolls, forced writes, a mid-life crash, time queries —
   ending in a deep structural verification. *)

open Testkit

let test_soak () =
  let config = { Clio.Config.default with fanout = 16 } in
  let f = make_fixture ~config ~block_size:512 ~capacity:2048 () in
  let rng = Sim.Rng.create 20260706L in
  let nlogs = 12 in
  let logs =
    Array.init nlogs (fun i ->
        if i < 4 then create_log f (Printf.sprintf "/top%d" i)
        else ok (Clio.Server.ensure_log f.srv (Printf.sprintf "/top%d/sub%d" (i mod 4) i)))
  in
  let counts = Array.make nlogs 0 in
  let total = 30_000 in
  let mid_ts = ref 0L in
  for i = 0 to total - 1 do
    Sim.Clock.advance f.clock (Int64.of_int (Sim.Rng.int rng 2000));
    let l = Sim.Rng.int rng nlogs in
    let size = if Sim.Rng.chance rng 0.02 then 800 + Sim.Rng.int rng 1500 else Sim.Rng.int rng 120 in
    let payload = Printf.sprintf "%02d:%06d:%s" l counts.(l) (String.make size 'x') in
    let ts = append f ~log:logs.(l) ~force:(Sim.Rng.chance rng 0.01) payload in
    counts.(l) <- counts.(l) + 1;
    if i = total / 2 then mid_ts := Option.value ts ~default:0L
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "rolled several volumes" true (Clio.Server.nvols f.srv > 2);

  (* Mid-life crash + continue. *)
  let srv = crash_and_recover f in
  for i = 0 to 999 do
    let l = Sim.Rng.int rng nlogs in
    ignore (ok (Clio.Server.append srv ~log:logs.(l) (Printf.sprintf "%02d:%06d:" l counts.(l))));
    counts.(l) <- counts.(l) + 1;
    ignore i
  done;
  ignore (ok (Clio.Server.force srv));

  (* Every log's contents are complete, ordered, and self-consistent. *)
  Array.iteri
    (fun l log ->
      let got = all_payloads srv ~log in
      (* Leaf logs: sequence numbers 0..count-1 in order. *)
      if l >= 4 then begin
        Alcotest.(check int) (Printf.sprintf "log %d count" l) counts.(l) (List.length got);
        List.iteri
          (fun seq p ->
            Scanf.sscanf p "%d:%d:" (fun l' s ->
                if l' <> l || s <> seq then
                  Alcotest.failf "log %d entry %d reads %d:%d" l seq l' s))
          got
      end
      else begin
        (* Parents see their own entries plus their sublogs', interleaved. *)
        let expected =
          counts.(l)
          + Array.fold_left ( + ) 0 (Array.mapi (fun i c -> if i >= 4 && i mod 4 = l then c else 0) counts)
        in
        Alcotest.(check int) (Printf.sprintf "parent %d union" l) expected (List.length got)
      end)
    logs;

  (* Time search across the whole history. *)
  let e = ok (Clio.Server.entry_at_or_after srv ~log:Clio.Ids.root !mid_ts) in
  Alcotest.(check bool) "midpoint findable" true (e <> None);

  (* Deep verification over the full sequence. *)
  let r = ok (Clio.Server.fsck srv) in
  Alcotest.(check (list string)) "fsck clean" [] r.Clio.Fsck.errors;
  Alcotest.(check (list (pair int int))) "no corruption" [] r.Clio.Fsck.corrupt_blocks;
  Alcotest.(check bool) "entry count plausible" true
    (r.Clio.Fsck.entries >= Array.fold_left ( + ) 0 counts)

let () = run "soak" [ ("soak", [ Alcotest.test_case "30k-entry lifecycle" `Slow test_soak ]) ]
