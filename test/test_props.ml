(* Model-based property tests: a random operation sequence is run against
   both the real server and a trivial in-memory reference model; after every
   run (including crashes and recoveries) the observable entry sequences
   must match the model exactly. *)

open Testkit

type op =
  | Append of int * string * bool  (* log index, payload, forced *)
  | Force
  | Crash  (* crash + recover; un-forced suffix may be lost *)

let pp_op = function
  | Append (l, p, f) -> Printf.sprintf "Append(%d,%dB%s)" l (String.length p) (if f then ",F" else "")
  | Force -> "Force"
  | Crash -> "Crash"

let gen_ops =
  QCheck2.Gen.(
    let payload = string_size ~gen:(char_range 'a' 'z') (int_range 0 600) in
    let op =
      frequency
        [
          (12, map2 (fun l (p, f) -> Append (l, p, f)) (int_range 0 3) (pair payload bool));
          (2, return Force);
          (1, return Crash);
        ]
    in
    list_size (int_range 1 60) op)

(* The model: per log, the durable prefix and the volatile suffix. With
   NVRAM enabled, a force makes everything so-far durable; a crash drops
   whatever was appended after the last durability point... except entries
   that reached the device because their block filled. Tracking block fills
   in the model would duplicate the implementation, so the model only checks
   a weaker-but-sharp contract:
   - everything appended before the last force survives a crash, in order;
   - the surviving sequence is always a prefix of everything appended;
   - without crashes, everything survives. *)
type model = {
  mutable appended : (int * string) list;  (* newest first *)
  mutable forced_mark : int;  (* length of [appended] at the last force *)
}

let run_scenario ~nvram ops =
  let f = make_fixture ~block_size:256 ~capacity:512 ~nvram () in
  let logs = Array.init 4 (fun i -> create_log f (Printf.sprintf "/log%d" i)) in
  let m = { appended = []; forced_mark = 0 } in
  let ok_or_full = function
    | Ok _ -> true
    | Error Clio.Errors.Sequence_full -> false
    | Error e -> Alcotest.failf "scenario failed: %s" (Clio.Errors.to_string e)
  in
  let alive = ref true in
  List.iter
    (fun op ->
      if !alive then
        match op with
        | Append (l, p, forced) ->
          if ok_or_full (Clio.Server.append f.srv ~log:logs.(l) ~force:forced p) then begin
            m.appended <- (l, p) :: m.appended;
            if forced then m.forced_mark <- List.length m.appended
          end
          else alive := false
        | Force ->
          if ok_or_full (Clio.Server.force f.srv) then m.forced_mark <- List.length m.appended
          else alive := false
        | Crash ->
          ignore (crash_and_recover f);
          (* Anything not durably forced may be gone; the model keeps only
             the guaranteed prefix and resynchronizes with reality below. *)
          let survived l = all_payloads f.srv ~log:logs.(l) in
          let all = List.rev m.appended in
          let guaranteed = m.forced_mark in
          for l = 0 to 3 do
            let expect_guaranteed =
              List.filteri (fun i _ -> i < guaranteed) all
              |> List.filter_map (fun (l', p) -> if l' = l then Some p else None)
            in
            let got = survived l in
            (* guaranteed prefix present *)
            let got_prefix = List.filteri (fun i _ -> i < List.length expect_guaranteed) got in
            if got_prefix <> expect_guaranteed then
              Alcotest.failf "log %d lost forced entries after crash (ops: %s)" l
                (String.concat " " (List.map pp_op ops));
            (* whatever survived is a prefix of what was appended *)
            let expect_all = List.filter_map (fun (l', p) -> if l' = l then Some p else None) all in
            let expect_prefix = List.filteri (fun i _ -> i < List.length got) expect_all in
            if got <> expect_prefix then
              Alcotest.failf "log %d: survivors are not an append-order prefix" l
          done;
          (* Resynchronize the model with what actually survived. *)
          let survivors = Array.init 4 (fun l -> ref (survived l)) in
          let still =
            List.filter
              (fun (l, p) ->
                match !(survivors.(l)) with
                | hd :: tl when hd = p ->
                  survivors.(l) := tl;
                  true
                | _ -> false)
              all
          in
          m.appended <- List.rev still;
          m.forced_mark <- List.length still)
    ops;
  (* Final check: live server contents equal the model, forward and
     backward. *)
  if !alive then begin
    let all = List.rev m.appended in
    for l = 0 to 3 do
      let expect = List.filter_map (fun (l', p) -> if l' = l then Some p else None) all in
      if all_payloads f.srv ~log:logs.(l) <> expect then
        Alcotest.failf "log %d diverged from model (ops: %s)" l
          (String.concat " " (List.map pp_op ops));
      if all_payloads_backward f.srv ~log:logs.(l) <> expect then
        Alcotest.failf "log %d backward read diverged" l
    done
  end;
  true

let prop_model_nvram =
  qtest ~count:120 "random ops vs model (NVRAM)" gen_ops (run_scenario ~nvram:true)

let prop_model_pure_worm =
  qtest ~count:120 "random ops vs model (pure WORM)" gen_ops (run_scenario ~nvram:false)

(* Determinism: the same scenario executed twice yields identical stats. *)
let prop_deterministic =
  qtest ~count:40 "scenarios are deterministic" gen_ops (fun ops ->
      let run () =
        let f = make_fixture ~block_size:256 ~capacity:512 () in
        let logs = Array.init 4 (fun i -> create_log f (Printf.sprintf "/log%d" i)) in
        List.iter
          (fun op ->
            match op with
            | Append (l, p, forced) -> ignore (Clio.Server.append f.srv ~log:logs.(l) ~force:forced p)
            | Force -> ignore (Clio.Server.force f.srv)
            | Crash -> ignore (crash_and_recover f))
          ops;
        let s = Clio.Server.stats f.srv in
        (s.Clio.Stats.blocks_flushed, s.Clio.Stats.bytes_client, s.Clio.Stats.bytes_entrymap,
         List.map (fun l -> all_payloads f.srv ~log:l) (Array.to_list logs))
      in
      run () = run ())

(* Reading never mutates: interleaving reads does not change what is read. *)
let prop_reads_pure =
  qtest ~count:40 "reads are pure" gen_ops (fun ops ->
      let f = make_fixture ~block_size:256 ~capacity:512 () in
      let logs = Array.init 4 (fun i -> create_log f (Printf.sprintf "/log%d" i)) in
      List.iter
        (fun op ->
          match op with
          | Append (l, p, forced) ->
            ignore (Clio.Server.append f.srv ~log:logs.(l) ~force:forced p);
            ignore (all_payloads f.srv ~log:logs.(l))
          | Force -> ignore (Clio.Server.force f.srv)
          | Crash -> ())
        ops;
      let once = List.map (fun l -> all_payloads f.srv ~log:l) (Array.to_list logs) in
      let twice = List.map (fun l -> all_payloads f.srv ~log:l) (Array.to_list logs) in
      once = twice)

let () =
  run "props"
    [
      ( "model",
        [ prop_model_nvram; prop_model_pure_worm; prop_deterministic; prop_reads_pure ] );
    ]
