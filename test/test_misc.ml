(* Coverage sweep for small surfaces: config validation, error rendering,
   stats arithmetic, device stats, fsck rendering, server introspection. *)

open Testkit

let test_config_validation () =
  let bad cfg =
    match Clio.Config.validate cfg with
    | Error (Clio.Errors.Bad_record _) -> ()
    | _ -> Alcotest.fail "expected config rejection"
  in
  bad { Clio.Config.default with fanout = 1 };
  bad { Clio.Config.default with fanout = 5000 };
  bad { Clio.Config.default with block_size = 32 };
  bad { Clio.Config.default with entrymap_slack = 0 };
  bad { Clio.Config.default with cache_blocks = 0 };
  ignore (ok (Clio.Config.validate Clio.Config.default))

let test_config_levels () =
  Alcotest.(check int) "N=16 cap 4096" 3 (Clio.Config.levels { Clio.Config.default with fanout = 16 } ~capacity:4096);
  Alcotest.(check int) "N=16 cap 4097" 4 (Clio.Config.levels { Clio.Config.default with fanout = 16 } ~capacity:4097);
  Alcotest.(check int) "N=4 cap 16" 2 (Clio.Config.levels { Clio.Config.default with fanout = 4 } ~capacity:16);
  Alcotest.(check int) "at least one level" 1 (Clio.Config.levels Clio.Config.default ~capacity:2);
  Alcotest.(check int) "pow" 256 (Clio.Config.pow_fanout { Clio.Config.default with fanout = 16 } 2)

let test_error_rendering () =
  (* Every constructor renders to a nonempty, distinct string. *)
  let msgs =
    List.map Clio.Errors.to_string
      [
        Clio.Errors.Device Worm.Block_io.Out_of_space;
        Clio.Errors.Corrupt_block 7;
        Clio.Errors.Bad_record "x";
        Clio.Errors.No_such_log "/a";
        Clio.Errors.Log_exists "/a";
        Clio.Errors.Invalid_name "";
        Clio.Errors.Catalog_full;
        Clio.Errors.Entry_too_large 9;
        Clio.Errors.Volume_offline 2;
        Clio.Errors.Sequence_full;
        Clio.Errors.No_entry;
      ]
  in
  List.iter (fun m -> Alcotest.(check bool) "nonempty" true (String.length m > 0)) msgs;
  Alcotest.(check int) "all distinct" (List.length msgs)
    (List.length (List.sort_uniq compare msgs))

let test_device_error_rendering () =
  List.iter
    (fun e -> Alcotest.(check bool) "nonempty" true (String.length (Worm.Block_io.error_to_string e) > 0))
    [
      Worm.Block_io.Out_of_space;
      Worm.Block_io.Write_once_violation;
      Worm.Block_io.Unwritten 1;
      Worm.Block_io.Bad_block 2;
      Worm.Block_io.Out_of_range 3;
      Worm.Block_io.Wrong_size 4;
      Worm.Block_io.Io_error "io";
    ]

let test_stats_snapshot_diff () =
  let f = make_fixture () in
  let log = create_log f "/s" in
  let before = Clio.Stats.snapshot (Clio.Server.stats f.srv) in
  for i = 0 to 9 do
    ignore (append f ~log (Printf.sprintf "%d" i))
  done;
  let d = Clio.Stats.diff ~after:(Clio.Server.stats f.srv) ~before in
  Alcotest.(check int) "delta entries" 10 d.Clio.Stats.entries_appended;
  Alcotest.(check int) "delta client bytes" 10 d.Clio.Stats.bytes_client;
  (* snapshot is independent of the live value *)
  Alcotest.(check bool) "snapshot frozen" true
    (before.Clio.Stats.entries_appended < (Clio.Server.stats f.srv).Clio.Stats.entries_appended);
  Clio.Stats.reset (Clio.Server.stats f.srv);
  Alcotest.(check int) "reset" 0 (Clio.Server.stats f.srv).Clio.Stats.entries_appended;
  let rendered = Format.asprintf "%a" Clio.Stats.pp d in
  Alcotest.(check bool) "pp mentions entries" true
    (String.length rendered > 0)

let test_overhead_bytes_sums () =
  let s = Clio.Stats.create () in
  s.Clio.Stats.bytes_header <- 1;
  s.Clio.Stats.bytes_index <- 2;
  s.Clio.Stats.bytes_trailer <- 3;
  s.Clio.Stats.bytes_entrymap <- 4;
  s.Clio.Stats.bytes_catalog <- 5;
  s.Clio.Stats.bytes_padding <- 6;
  Alcotest.(check int) "sum" 21 (Clio.Stats.overhead_bytes s)

let test_dev_stats () =
  let s = Worm.Dev_stats.create () in
  s.Worm.Dev_stats.reads <- 5;
  s.Worm.Dev_stats.appends <- 2;
  let snap = Worm.Dev_stats.snapshot s in
  s.Worm.Dev_stats.reads <- 9;
  let d = Worm.Dev_stats.diff ~after:s ~before:snap in
  Alcotest.(check int) "read delta" 4 d.Worm.Dev_stats.reads;
  Alcotest.(check int) "append delta" 0 d.Worm.Dev_stats.appends;
  Alcotest.(check bool) "pp" true (String.length (Format.asprintf "%a" Worm.Dev_stats.pp s) > 0);
  Worm.Dev_stats.reset s;
  Alcotest.(check int) "reset" 0 s.Worm.Dev_stats.reads

let test_ids_predicates () =
  Alcotest.(check bool) "root reserved" true (Clio.Ids.is_reserved Clio.Ids.root);
  Alcotest.(check bool) "root not internal" false (Clio.Ids.is_internal Clio.Ids.root);
  Alcotest.(check bool) "entrymap internal" true (Clio.Ids.is_internal Clio.Ids.entrymap);
  Alcotest.(check bool) "client not reserved" false (Clio.Ids.is_reserved Clio.Ids.first_client);
  Alcotest.(check bool) "4095 valid" true (Clio.Ids.valid 4095);
  Alcotest.(check bool) "4096 invalid" false (Clio.Ids.valid 4096);
  Alcotest.(check bool) "-1 invalid" false (Clio.Ids.valid (-1))

let test_volume_blocks_used () =
  let f = make_fixture () in
  let before = Clio.Server.volume_blocks_used f.srv in
  let log = create_log f "/u" in
  for i = 0 to 49 do
    ignore (append f ~log (Printf.sprintf "entry %d with some padding to fill" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check bool) "usage grows" true (Clio.Server.volume_blocks_used f.srv > before)

let test_cursor_at_position () =
  let f = make_fixture () in
  let log = create_log f "/p" in
  for i = 0 to 9 do
    ignore (append f ~log (string_of_int i))
  done;
  (* Capture entry 5's position via a scan, then seek a fresh cursor to it. *)
  let pos = ref None in
  let _ = ok (Clio.Server.fold_entries f.srv ~log ~init:() (fun () e ->
      if e.Clio.Reader.payload = "5" then pos := Some e.Clio.Reader.pos)) in
  let c = Clio.Server.cursor_at f.srv ~log (Option.get !pos) in
  Alcotest.(check string) "next from position" "5"
    (Option.get (ok (Clio.Server.next c))).Clio.Reader.payload;
  let c = Clio.Server.cursor_at f.srv ~log (Option.get !pos) in
  Alcotest.(check string) "prev from position" "4"
    (Option.get (ok (Clio.Server.prev c))).Clio.Reader.payload

let test_fsck_report_pp () =
  let f = make_fixture () in
  let r = ok (Clio.Server.fsck f.srv) in
  let s = Format.asprintf "%a" Clio.Fsck.pp_report r in
  Alcotest.(check bool) "mentions volumes" true
    (String.length s > 0 && String.sub s 0 7 = "volumes")

let test_position_compare_and_pp () =
  let a = { Clio.Assemble.vol = 0; block = 5; rec_index = 2 } in
  let b = { Clio.Assemble.vol = 0; block = 5; rec_index = 3 } in
  let c = { Clio.Assemble.vol = 1; block = 0; rec_index = 0 } in
  Alcotest.(check bool) "a < b" true (Clio.Assemble.compare_position a b < 0);
  Alcotest.(check bool) "b < c" true (Clio.Assemble.compare_position b c < 0);
  Alcotest.(check int) "a = a" 0 (Clio.Assemble.compare_position a a);
  Alcotest.(check string) "pp" "v0/b5/r2" (Format.asprintf "%a" Clio.Assemble.pp_position a)

let () =
  run "misc"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "levels" `Quick test_config_levels;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "errors" `Quick test_error_rendering;
          Alcotest.test_case "device errors" `Quick test_device_error_rendering;
          Alcotest.test_case "fsck report" `Quick test_fsck_report_pp;
          Alcotest.test_case "positions" `Quick test_position_compare_and_pp;
        ] );
      ( "stats",
        [
          Alcotest.test_case "snapshot/diff" `Quick test_stats_snapshot_diff;
          Alcotest.test_case "overhead sum" `Quick test_overhead_bytes_sums;
          Alcotest.test_case "device stats" `Quick test_dev_stats;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "ids" `Quick test_ids_predicates;
          Alcotest.test_case "blocks used" `Quick test_volume_blocks_used;
          Alcotest.test_case "cursor at position" `Quick test_cursor_at_position;
        ] );
    ]
