(* The UIO RPC layer: codec roundtrips (v1 and v2), version negotiation,
   batched appends with group commit, chunked cursor reads with
   continuation tokens, cursor hygiene (LRU cap, with_cursor bracket),
   typed error propagation, and the modeled IPC accounting. *)

open Testkit

let rpc_fixture ?(latency_us = 0L) ?max_cursors ?max_version () =
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create ?max_cursors f.srv in
  let transport =
    Uio.Transport.local ~latency_us ~clock:f.clock (Uio.Rpc_server.handle rpc)
  in
  (f, rpc, Uio.Client.connect ?max_version transport, transport)

let okr = function
  | Ok v -> v
  | Error e -> Alcotest.failf "rpc error: %s" (Clio.Errors.to_string e)

(* ------------------------------- codec ------------------------------- *)

let requests_roundtrip () =
  let chunk = { Uio.Message.cursor = 7; seq = 3; max_entries = 64; max_bytes = 65536 } in
  let samples =
    [
      Uio.Message.Create_log { path = "/a/b"; perms = 0o600 };
      Uio.Message.Ensure_log { path = "/x"; perms = 0o644 };
      Uio.Message.Resolve "/a";
      Uio.Message.Path_of 42;
      Uio.Message.List_logs "/";
      Uio.Message.Set_perms { log = 7; perms = 0o400 };
      Uio.Message.Append { log = 9; extra_members = [ 10; 11 ]; force = true; data = "payload" };
      Uio.Message.Append { log = 9; extra_members = []; force = false; data = "" };
      Uio.Message.Force;
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_start };
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_end };
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_time 123456789L };
      Uio.Message.Next 3;
      Uio.Message.Prev 4;
      Uio.Message.Close_cursor 5;
      Uio.Message.Entry_at_or_after { log = 6; ts = -1L };
      Uio.Message.Entry_before { log = 6; ts = Int64.max_int };
      Uio.Message.Hello { version = 2 };
      Uio.Message.Append_batch { force = true; items = [] };
      Uio.Message.Append_batch
        {
          force = false;
          items =
            [
              { Uio.Message.log = 4; extra_members = [ 5; 6 ]; data = "one" };
              { Uio.Message.log = 7; extra_members = []; data = "" };
            ];
        };
      Uio.Message.Next_chunk chunk;
      Uio.Message.Prev_chunk { chunk with Uio.Message.seq = 0 };
      Uio.Message.List_dir "/mail";
      Uio.Message.Keyed { key = 0x1122334455667788L; req = Uio.Message.Force };
      Uio.Message.Keyed
        {
          key = -1L;
          req =
            Uio.Message.Append
              { log = 9; extra_members = [ 10 ]; force = true; data = "keyed" };
        };
      Uio.Message.Repl_frontier { epoch = 3 };
      Uio.Message.Repl_blocks
        {
          epoch = 2;
          seq_uid = 0x0102030405060708L;
          vol_index = 1;
          first_block = 17;
          blocks = [ "aaaa"; ""; "cc" ];
        };
      Uio.Message.Repl_blocks
        { epoch = 1; seq_uid = 1L; vol_index = 0; first_block = 0; blocks = [] };
      Uio.Message.Repl_tail
        { epoch = 5; seq_uid = 42L; vol_index = 2; block = 9; image = "tail image bytes" };
    ]
  in
  List.iter
    (fun r ->
      let r2 = ok (Uio.Message.decode_request (Uio.Message.encode_request r)) in
      Alcotest.(check bool) "request roundtrip" true (r = r2))
    samples;
  (* The envelope never nests: a hand-crafted Keyed-in-Keyed is refused. *)
  let nested =
    Uio.Message.Keyed
      { key = 1L; req = Uio.Message.Keyed { key = 2L; req = Uio.Message.Force } }
  in
  match Uio.Message.decode_request (Uio.Message.encode_request nested) with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "nested keyed request must be rejected"

let responses_roundtrip () =
  let e1 = { Uio.Message.log = 4; timestamp = Some 5L; payload = "body" } in
  let e2 = { Uio.Message.log = 4; timestamp = None; payload = "" } in
  let samples =
    [
      Uio.Message.R_unit;
      Uio.Message.R_id 77;
      Uio.Message.R_path "/mail/smith";
      Uio.Message.R_names [ (4, "mail", 0o644); (5, "usage", 0o600) ];
      Uio.Message.R_timestamp None;
      Uio.Message.R_timestamp (Some 99L);
      Uio.Message.R_entry None;
      Uio.Message.R_entry (Some e1);
      Uio.Message.R_entry (Some e2);
      Uio.Message.R_error "boom";
      Uio.Message.R_version 2;
      Uio.Message.R_timestamps [];
      Uio.Message.R_timestamps [ Some 1L; None; Some 3L ];
      Uio.Message.R_entries { entries = [ e1; e2 ]; seq = 9; eof = false };
      Uio.Message.R_entries { entries = []; seq = 1; eof = true };
      Uio.Message.R_dir
        [
          { Uio.Message.id = 4; path = "/mail"; perms = 0o644; entry_count = 2 };
          { Uio.Message.id = 9; path = "/mail/smith"; perms = 0o600; entry_count = 0 };
        ];
      Uio.Message.R_error_t Clio.Errors.No_entry;
      Uio.Message.R_repl_frontier
        { epoch = 4; seq_uid = 77L; vols = [ (0, 1024); (1, 17) ] };
      Uio.Message.R_repl_frontier { epoch = 1; seq_uid = 0L; vols = [] };
      Uio.Message.R_repl_ack { epoch = 4; vol_index = 1; next_block = 33 };
    ]
  in
  List.iter
    (fun r ->
      let r2 = ok (Uio.Message.decode_response (Uio.Message.encode_response r)) in
      Alcotest.(check bool) "response roundtrip" true (r = r2))
    samples

let errors_roundtrip () =
  (* Every typed error crosses the wire intact — including device errors. *)
  let samples =
    [
      Clio.Errors.Corrupt_block 17;
      Clio.Errors.Bad_record "mangled";
      Clio.Errors.No_such_log "/missing";
      Clio.Errors.Log_exists "/dup";
      Clio.Errors.Invalid_name "a/b";
      Clio.Errors.Catalog_full;
      Clio.Errors.Entry_too_large 99999;
      Clio.Errors.Volume_offline 3;
      Clio.Errors.Sequence_full;
      Clio.Errors.No_entry;
      Clio.Errors.Cursor_expired;
      Clio.Errors.Remote "something odd";
      Clio.Errors.Degraded;
      Clio.Errors.Timeout;
      Clio.Errors.Disconnected;
      Clio.Errors.Not_primary "primary-2";
      Clio.Errors.Not_primary "";
      Clio.Errors.Stale_epoch 7;
      Clio.Errors.Device Worm.Block_io.Out_of_space;
      Clio.Errors.Device Worm.Block_io.Write_once_violation;
      Clio.Errors.Device (Worm.Block_io.Unwritten 5);
      Clio.Errors.Device (Worm.Block_io.Bad_block 6);
      Clio.Errors.Device (Worm.Block_io.Out_of_range 7);
      Clio.Errors.Device (Worm.Block_io.Wrong_size 8);
      Clio.Errors.Device (Worm.Block_io.Io_error "eio");
    ]
  in
  List.iter
    (fun e ->
      match ok (Uio.Message.decode_response (Uio.Message.encode_response (Uio.Message.R_error_t e))) with
      | Uio.Message.R_error_t e2 ->
        Alcotest.(check bool) (Clio.Errors.to_string e) true (e = e2)
      | _ -> Alcotest.fail "typed error did not roundtrip")
    samples

let codec_rejects_garbage () =
  (match Uio.Message.decode_request "\xFFgarbage" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "bad request tag must fail");
  match Uio.Message.decode_response "" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "empty response must fail"

(* --------------------------- negotiation --------------------------- *)

let test_version_negotiation () =
  let _f, rpc, client, _tr = rpc_fixture () in
  Alcotest.(check int) "client negotiated v3" 3 (Uio.Client.version client);
  Alcotest.(check int) "server saw the hello" 3 (Uio.Rpc_server.peer_version rpc);
  let _f2, rpc2, client2, _tr2 = rpc_fixture ~max_version:2 () in
  Alcotest.(check int) "v2-capped client stays at v2" 2 (Uio.Client.version client2);
  Alcotest.(check int) "server honors the cap" 2 (Uio.Rpc_server.peer_version rpc2);
  let _f1, rpc1, client1, _tr1 = rpc_fixture ~max_version:1 () in
  Alcotest.(check int) "forced v1 client" 1 (Uio.Client.version client1);
  Alcotest.(check int) "server stays at v1" 1 (Uio.Rpc_server.peer_version rpc1)

let test_typed_errors_cross_the_wire () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  (match Uio.Client.resolve client "/missing" with
  | Error (Clio.Errors.No_such_log _) -> ()
  | Error e -> Alcotest.failf "expected No_such_log, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "must fail");
  ignore (okr (Uio.Client.create_log client "/dup"));
  (match Uio.Client.create_log client "/dup" with
  | Error (Clio.Errors.Log_exists _) -> ()
  | Error e -> Alcotest.failf "expected Log_exists, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "duplicate create must fail");
  (* A v1 session gets the same failures as opaque strings. *)
  let _f1, _rpc1, client1, _tr1 = rpc_fixture ~max_version:1 () in
  match Uio.Client.resolve client1 "/missing" with
  | Error (Clio.Errors.Remote msg) ->
    Alcotest.(check bool) "v1 error mentions the path" true
      (String.length msg > 0)
  | Error e -> Alcotest.failf "expected Remote, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "must fail"

(* ----------------------------- end to end ----------------------------- *)

let test_remote_write_read () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/remote") in
  let ts = okr (Uio.Client.append client ~log "over the wire") in
  Alcotest.(check bool) "timestamp returned" true (ts <> None);
  ignore (okr (Uio.Client.append client ~log "second"));
  let entries = okr (Uio.Client.fold_entries client ~log ~init:[] (fun acc e -> e :: acc)) in
  Alcotest.(check (list string)) "read back" [ "over the wire"; "second" ]
    (List.rev_map (fun e -> e.Uio.Message.payload) entries)

let test_remote_naming () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let id = okr (Uio.Client.ensure_log client "/deep/nested/log") in
  Alcotest.(check int) "resolve matches" id (okr (Uio.Client.resolve client "/deep/nested/log"));
  Alcotest.(check string) "path_of" "/deep/nested/log" (okr (Uio.Client.path_of client id));
  let names = okr (Uio.Client.list_logs client "/deep") in
  Alcotest.(check (list string)) "listing paths" [ "/deep/nested" ]
    (List.map (fun (d : Uio.Message.dir_entry) -> d.Uio.Message.path) names);
  Alcotest.(check (list int)) "sublog counts" [ 1 ]
    (List.map (fun (d : Uio.Message.dir_entry) -> d.Uio.Message.entry_count) names);
  okr (Uio.Client.set_perms client ~log:id 0o400);
  let names = okr (Uio.Client.list_logs client "/deep/nested") in
  Alcotest.(check (list int)) "perms visible" [ 0o400 ]
    (List.map (fun (d : Uio.Message.dir_entry) -> d.Uio.Message.perms) names)

let test_remote_cursors_bidirectional () =
  let _f, rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/c") in
  for i = 0 to 9 do
    ignore (okr (Uio.Client.append client ~log (string_of_int i)))
  done;
  let c = okr (Uio.Client.open_cursor client ~log Uio.Message.From_end) in
  Alcotest.(check int) "server tracks cursor" 1 (Uio.Rpc_server.open_cursors rpc);
  let p () = (Option.get (okr (Uio.Client.prev c))).Uio.Message.payload in
  let n () = (Option.get (okr (Uio.Client.next c))).Uio.Message.payload in
  Alcotest.(check string) "prev" "9" (p ());
  Alcotest.(check string) "prev" "8" (p ());
  Alcotest.(check string) "next again" "8" (n ());
  okr (Uio.Client.close_cursor c);
  Alcotest.(check int) "cursor closed" 0 (Uio.Rpc_server.open_cursors rpc);
  (match Uio.Client.next c with
  | Error Clio.Errors.Cursor_expired -> ()
  | Error e -> Alcotest.failf "expected Cursor_expired, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "closed cursor must error")

let test_remote_time_search () =
  let f, _rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/t") in
  let stamps =
    List.init 20 (fun i ->
        Sim.Clock.advance f.clock 1000L;
        Option.get (okr (Uio.Client.append client ~log (Printf.sprintf "t%d" i))))
  in
  let ts10 = List.nth stamps 10 in
  let e = Option.get (okr (Uio.Client.entry_at_or_after client ~log ts10)) in
  Alcotest.(check string) "at-or-after" "t10" e.Uio.Message.payload;
  let e = Option.get (okr (Uio.Client.entry_before client ~log ts10)) in
  Alcotest.(check string) "before" "t9" e.Uio.Message.payload;
  let c = okr (Uio.Client.open_cursor client ~log (Uio.Message.From_time ts10)) in
  let rec first_ge () =
    match Option.get (okr (Uio.Client.next c)) with
    | e when e.Uio.Message.timestamp >= Some ts10 -> e.Uio.Message.payload
    | _ -> first_ge ()
  in
  Alcotest.(check string) "cursor from time" "t10" (first_ge ())

let test_remote_multi_member_append () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let a = okr (Uio.Client.create_log client "/a") in
  let b = okr (Uio.Client.create_log client "/b") in
  ignore (okr (Uio.Client.append client ~log:a ~extra_members:[ b ] "both"));
  let in_b = okr (Uio.Client.fold_entries client ~log:b ~init:0 (fun n _ -> n + 1)) in
  Alcotest.(check int) "extra membership over the wire" 1 in_b

(* ----------------------------- batching ----------------------------- *)

let test_append_batch_basic () =
  let f, _rpc, client, _tr = rpc_fixture () in
  let a = okr (Uio.Client.create_log client "/a") in
  let b = okr (Uio.Client.create_log client "/b") in
  (* Interleaved targets in one request, applied in arrival order. *)
  let items =
    List.init 10 (fun i ->
        {
          Uio.Message.log = (if i mod 2 = 0 then a else b);
          extra_members = [];
          data = Printf.sprintf "e%d" i;
        })
  in
  let stamps = okr (Uio.Client.append_batch ~force:true client items) in
  Alcotest.(check int) "one timestamp per item" 10 (List.length stamps);
  let ts = List.map (fun t -> Option.get t) stamps in
  Alcotest.(check bool) "timestamps strictly increasing" true
    (List.for_all2 (fun x y -> Int64.compare x y < 0)
       (List.filteri (fun i _ -> i < 9) ts)
       (List.tl ts));
  let payloads log =
    List.rev (okr (Uio.Client.fold_entries client ~log ~init:[] (fun acc e ->
        e.Uio.Message.payload :: acc)))
  in
  check_payloads "even entries in /a" [ "e0"; "e2"; "e4"; "e6"; "e8" ] (payloads a);
  check_payloads "odd entries in /b" [ "e1"; "e3"; "e5"; "e7"; "e9" ] (payloads b);
  ignore f;
  Alcotest.(check int) "empty batch is a no-op" 0
    (List.length (okr (Uio.Client.append_batch client [])))

let test_append_batch_group_commit () =
  (* N forced singles cost N durability points; one forced batch costs 1. *)
  let f1, _rpc1, client1, _tr1 = rpc_fixture () in
  let log = okr (Uio.Client.create_log client1 "/gc") in
  let forces0 = (Clio.Server.stats f1.srv).Clio.Stats.forces in
  for i = 0 to 9 do
    ignore (okr (Uio.Client.append ~force:true client1 ~log (string_of_int i)))
  done;
  let singles = (Clio.Server.stats f1.srv).Clio.Stats.forces - forces0 in
  Alcotest.(check int) "10 forced singles = 10 forces" 10 singles;
  let f2, _rpc2, client2, _tr2 = rpc_fixture () in
  let log2 = okr (Uio.Client.create_log client2 "/gc") in
  let forces0 = (Clio.Server.stats f2.srv).Clio.Stats.forces in
  let items =
    List.init 10 (fun i -> { Uio.Message.log = log2; extra_members = []; data = string_of_int i })
  in
  ignore (okr (Uio.Client.append_batch ~force:true client2 items));
  let batched = (Clio.Server.stats f2.srv).Clio.Stats.forces - forces0 in
  Alcotest.(check int) "forced batch = 1 force" 1 batched

let test_append_batch_rejects_atomically () =
  let f, _rpc, client, _tr = rpc_fixture () in
  let a = okr (Uio.Client.create_log client "/a") in
  let appended0 = (Clio.Server.stats f.srv).Clio.Stats.entries_appended in
  let items =
    [
      { Uio.Message.log = a; extra_members = []; data = "good" };
      { Uio.Message.log = 0; extra_members = []; data = "bad target" };
    ]
  in
  (match Uio.Client.append_batch client items with
  | Error (Clio.Errors.Bad_record _) -> ()
  | Error e -> Alcotest.failf "expected Bad_record, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "batch with a bad target must fail");
  Alcotest.(check int) "nothing staged" appended0
    (Clio.Server.stats f.srv).Clio.Stats.entries_appended;
  Alcotest.(check int) "log /a empty" 0
    (okr (Uio.Client.fold_entries client ~log:a ~init:0 (fun n _ -> n + 1)))

(* -------------------------- chunked reads -------------------------- *)

let test_chunked_reads () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/chunks") in
  let items =
    List.init 10 (fun i -> { Uio.Message.log; extra_members = []; data = string_of_int i })
  in
  ignore (okr (Uio.Client.append_batch client items));
  let c = okr (Uio.Client.open_cursor client ~log Uio.Message.From_start) in
  let take n =
    let entries, eof = okr (Uio.Client.next_chunk ~max_entries:n c) in
    (List.map (fun e -> e.Uio.Message.payload) entries, eof)
  in
  Alcotest.(check (pair (list string) bool)) "first 4" ([ "0"; "1"; "2"; "3" ], false) (take 4);
  Alcotest.(check (pair (list string) bool)) "next 4" ([ "4"; "5"; "6"; "7" ], false) (take 4);
  Alcotest.(check (pair (list string) bool)) "last 2 + eof" ([ "8"; "9" ], true) (take 4);
  Alcotest.(check (pair (list string) bool)) "past the end" ([], true) (take 4);
  okr (Uio.Client.close_cursor c);
  (* Backwards, budgeted by bytes: 100-byte payloads against a 150-byte
     budget come back two per chunk. *)
  let log2 = okr (Uio.Client.create_log client "/bytes") in
  let big = String.make 100 'x' in
  ignore
    (okr
       (Uio.Client.append_batch client
          (List.init 4 (fun _ -> { Uio.Message.log = log2; extra_members = []; data = big }))));
  let c = okr (Uio.Client.open_cursor client ~log:log2 Uio.Message.From_end) in
  let entries, eof = okr (Uio.Client.prev_chunk ~max_bytes:150 c) in
  Alcotest.(check int) "byte budget stops at 2" 2 (List.length entries);
  Alcotest.(check bool) "not eof yet" false eof;
  okr (Uio.Client.close_cursor c)

let test_stale_continuation_token () =
  (* Raw RPC: replaying an old (cursor, seq) token is refused instead of
     silently re-reading. *)
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create f.srv in
  let h req =
    ok (Uio.Message.decode_response (Uio.Rpc_server.handle rpc (Uio.Message.encode_request req)))
  in
  let log = ok (Clio.Server.create_log f.srv "/raw") in
  for i = 0 to 5 do
    ignore (ok (Clio.Server.append f.srv ~log (string_of_int i)))
  done;
  ignore (h (Uio.Message.Hello { version = 2 }));
  let cid =
    match h (Uio.Message.Open_cursor { log; whence = Uio.Message.From_start }) with
    | Uio.Message.R_id id -> id
    | _ -> Alcotest.fail "open failed"
  in
  let chunk seq =
    h (Uio.Message.Next_chunk { Uio.Message.cursor = cid; seq; max_entries = 2; max_bytes = 1000 })
  in
  (match chunk 0 with
  | Uio.Message.R_entries { seq = 1; eof = false; entries } ->
    Alcotest.(check int) "two entries" 2 (List.length entries)
  | _ -> Alcotest.fail "first chunk failed");
  (match chunk 0 with
  | Uio.Message.R_error_t Clio.Errors.Cursor_expired -> ()
  | _ -> Alcotest.fail "replayed token must be refused");
  (match chunk 1 with
  | Uio.Message.R_entries { seq = 2; _ } -> ()
  | _ -> Alcotest.fail "fresh token must work");
  match
    h (Uio.Message.Next_chunk { Uio.Message.cursor = 9999; seq = 0; max_entries = 1; max_bytes = 1 })
  with
  | Uio.Message.R_error_t Clio.Errors.Cursor_expired -> ()
  | _ -> Alcotest.fail "unknown cursor must be Cursor_expired"

(* ------------------------- cursor hygiene ------------------------- *)

let test_cursor_lru_cap () =
  let _f, rpc, client, _tr = rpc_fixture ~max_cursors:4 () in
  let log = okr (Uio.Client.create_log client "/lru") in
  ignore (okr (Uio.Client.append client ~log "x"));
  let cursors =
    List.init 5 (fun _ -> okr (Uio.Client.open_cursor client ~log Uio.Message.From_start))
  in
  Alcotest.(check int) "capped at 4" 4 (Uio.Rpc_server.open_cursors rpc);
  (match Uio.Client.next (List.hd cursors) with
  | Error Clio.Errors.Cursor_expired -> ()
  | Error e -> Alcotest.failf "expected Cursor_expired, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "evicted cursor must be stale");
  match Uio.Client.next (List.nth cursors 4) with
  | Ok (Some e) -> Alcotest.(check string) "newest cursor still live" "x" e.Uio.Message.payload
  | _ -> Alcotest.fail "newest cursor must survive"

let test_with_cursor_bracket () =
  let _f, rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/wc") in
  ignore (okr (Uio.Client.append client ~log "x"));
  (* Normal return closes. *)
  let n =
    okr
      (Uio.Client.with_cursor client ~log Uio.Message.From_start (fun c ->
           let entries, _ = okr (Uio.Client.next_chunk c) in
           Ok (List.length entries)))
  in
  Alcotest.(check int) "body result" 1 n;
  Alcotest.(check int) "closed after Ok" 0 (Uio.Rpc_server.open_cursors rpc);
  (* Error return closes. *)
  (match
     Uio.Client.with_cursor client ~log Uio.Message.From_start (fun _ ->
         Error Clio.Errors.No_entry)
   with
  | Error Clio.Errors.No_entry -> ()
  | _ -> Alcotest.fail "body error must propagate");
  Alcotest.(check int) "closed after Error" 0 (Uio.Rpc_server.open_cursors rpc);
  (* Exception closes. *)
  (try
     ignore
       (Uio.Client.with_cursor client ~log Uio.Message.From_start (fun _ ->
            failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "closed after exception" 0 (Uio.Rpc_server.open_cursors rpc)

(* ------------------------ transport accounting ------------------------ *)

let test_transport_accounting () =
  let f, _rpc, client, tr = rpc_fixture ~latency_us:750L () in
  let t0 = Sim.Clock.peek f.clock in
  let before = Uio.Transport.counters tr in
  let log = okr (Uio.Client.create_log client "/acct") in
  ignore (okr (Uio.Client.append client ~log "fifty bytes of client data, more or less padded"));
  let d = Uio.Transport.diff ~after:(Uio.Transport.counters tr) ~before in
  Alcotest.(check int) "two round trips" 2 d.Uio.Transport.round_trips;
  let elapsed = Int64.sub (Sim.Clock.peek f.clock) t0 in
  Alcotest.(check bool) "IPC latency charged" true (Int64.compare elapsed 1500L >= 0);
  Alcotest.(check bool) "bytes counted" true (d.Uio.Transport.bytes_sent > 50)

let test_accounting_charges_failed_attempts () =
  (* Regression: the round trip and request bytes must be charged even when
     the handler dies mid-call — the request did go out on the wire. The
     old code updated the counters only after the handler returned. *)
  let clock = Sim.Clock.simulated () in
  let tr =
    Uio.Transport.local ~clock (fun req ->
        if String.length req > 3 then failwith "handler crash" else "ok")
  in
  ignore (Uio.Transport.call tr "abc");
  (try ignore (Uio.Transport.call tr "a long doomed request") with Failure _ -> ());
  let c = Uio.Transport.counters tr in
  Alcotest.(check int) "both attempts counted" 2 c.Uio.Transport.round_trips;
  Alcotest.(check int) "request bytes of both counted"
    (String.length "abc" + String.length "a long doomed request")
    c.Uio.Transport.bytes_sent;
  Alcotest.(check int) "only the successful response counted" 2 c.Uio.Transport.bytes_received

let test_dedup_replays_lost_ack () =
  (* The applied-but-ack-lost scenario, hand-driven: send a keyed append,
     throw the response away, resend the identical bytes. The server must
     not append twice, and the replayed response must be byte-identical —
     same timestamp. *)
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create f.srv in
  ignore (Uio.Rpc_server.handle rpc (Uio.Message.encode_request (Uio.Message.Hello { version = 3 })));
  let log = ok (Clio.Server.create_log f.srv "/dedup") in
  let keyed =
    Uio.Message.encode_request
      (Uio.Message.Keyed
         {
           key = 42L;
           req = Uio.Message.Append { log; extra_members = []; force = true; data = "once" };
         })
  in
  let r1 = Uio.Rpc_server.handle rpc keyed in
  let r2 = Uio.Rpc_server.handle rpc keyed in
  Alcotest.(check string) "replay is byte-identical" r1 r2;
  Alcotest.(check int) "dedup window holds the key" 1 (Uio.Rpc_server.dedup_entries rpc);
  Alcotest.(check (list string)) "applied exactly once" [ "once" ] (all_payloads f.srv ~log);
  (* A different key is a different operation. *)
  let keyed2 =
    Uio.Message.encode_request
      (Uio.Message.Keyed
         {
           key = 43L;
           req = Uio.Message.Append { log; extra_members = []; force = true; data = "twice" };
         })
  in
  ignore (Uio.Rpc_server.handle rpc keyed2);
  Alcotest.(check (list string)) "fresh key applies" [ "once"; "twice" ] (all_payloads f.srv ~log)

let test_dedup_window_eviction () =
  (* A tiny window: old keys fall out FIFO and a late retry of an evicted
     key re-runs the operation (the window is a bound, not a promise). *)
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create ~dedup_window:2 f.srv in
  ignore (Uio.Rpc_server.handle rpc (Uio.Message.encode_request (Uio.Message.Hello { version = 3 })));
  let log = ok (Clio.Server.create_log f.srv "/win") in
  let keyed k data =
    Uio.Message.encode_request
      (Uio.Message.Keyed
         { key = k; req = Uio.Message.Append { log; extra_members = []; force = false; data } })
  in
  ignore (Uio.Rpc_server.handle rpc (keyed 1L "a"));
  ignore (Uio.Rpc_server.handle rpc (keyed 2L "b"));
  ignore (Uio.Rpc_server.handle rpc (keyed 3L "c"));
  Alcotest.(check int) "window stays bounded" 2 (Uio.Rpc_server.dedup_entries rpc);
  ignore (Uio.Rpc_server.handle rpc (keyed 1L "a"));
  ignore (ok (Clio.Server.force f.srv));
  Alcotest.(check (list string)) "evicted key re-applies" [ "a"; "b"; "c"; "a" ]
    (all_payloads f.srv ~log)

let test_fold_round_trips () =
  (* 1000 entries: the chunked fold costs ceil(1000/128) = 8 reads plus the
     open/close bracket, not the V-era 1000+ — and a v1 session still gets
     the right answer, one entry per trip. *)
  let n = 1000 in
  let _f, _rpc, client, tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/bulk") in
  let batch = 250 in
  for b = 0 to (n / batch) - 1 do
    let items =
      List.init batch (fun i ->
          { Uio.Message.log; extra_members = []; data = string_of_int ((b * batch) + i) })
    in
    ignore (okr (Uio.Client.append_batch client items))
  done;
  let before = Uio.Transport.counters tr in
  let count = okr (Uio.Client.fold_entries client ~log ~init:0 (fun k _ -> k + 1)) in
  let d = Uio.Transport.diff ~after:(Uio.Transport.counters tr) ~before in
  Alcotest.(check int) "all entries seen" n count;
  let chunk = Uio.Client.default_chunk_entries in
  let ceil_chunks = (n + chunk - 1) / chunk in
  Alcotest.(check bool)
    (Printf.sprintf "fold costs <= ceil(%d/%d)+2 trips (got %d)" n chunk d.Uio.Transport.round_trips)
    true
    (d.Uio.Transport.round_trips <= ceil_chunks + 2);
  (* Same server, v1 session: correct but one entry per round trip. *)
  let srv_payloads = all_payloads _f.srv ~log in
  let rpc1 = Uio.Rpc_server.create _f.srv in
  let tr1 = Uio.Transport.local ~clock:_f.clock (Uio.Rpc_server.handle rpc1) in
  let client1 = Uio.Client.connect ~max_version:1 tr1 in
  let before = Uio.Transport.counters tr1 in
  let v1_payloads =
    List.rev
      (okr (Uio.Client.fold_entries client1 ~log ~init:[] (fun acc e ->
           e.Uio.Message.payload :: acc)))
  in
  let d1 = Uio.Transport.diff ~after:(Uio.Transport.counters tr1) ~before in
  Alcotest.(check bool) "v1 fold is per-entry" true (d1.Uio.Transport.round_trips > n);
  Alcotest.(check (list string)) "v1 and server agree" srv_payloads v1_payloads;
  Alcotest.(check bool) "v2 is >=10x fewer trips" true
    (d1.Uio.Transport.round_trips >= 10 * d.Uio.Transport.round_trips)

(* ------------------------ batch = singles bytes ------------------------ *)

let device_images f =
  List.map
    (fun io ->
      let cap = io.Worm.Block_io.capacity in
      List.init cap (fun i ->
          match io.Worm.Block_io.read i with Ok b -> Some (Bytes.to_string b) | Error _ -> None))
    (fixture_devices f)

let prop_batch_equals_singles =
  (* The same entries sent as one append_batch and as N singles leave
     byte-identical volumes, and the batch survives recovery. *)
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 30)
        (pair bool (string_size ~gen:(char_range 'a' 'z') (int_range 0 400))))
  in
  Testkit.qtest ~count:40 "append_batch == N appends (bytes + recovery)" gen (fun spec ->
      let mk () =
        let f = make_fixture ~nvram:false () in
        let a = create_log f "/a" in
        let b = create_log f "/b" in
        (f, a, b)
      in
      let f1, a1, b1 = mk () in
      let items =
        List.map
          (fun (to_a, data) ->
            { Uio.Message.log = (if to_a then a1 else b1); extra_members = []; data })
          spec
      in
      let batch_items =
        List.map
          (fun { Uio.Message.log; extra_members; data } ->
            { Clio.Server.log; extra_members; payload = data })
          items
      in
      ignore (ok (Clio.Server.append_batch ~force:true f1.srv batch_items));
      let f2, a2, b2 = mk () in
      List.iter
        (fun (to_a, data) ->
          ignore (ok (Clio.Server.append f2.srv ~log:(if to_a then a2 else b2) data)))
        spec;
      ignore (ok (Clio.Server.force f2.srv));
      let same_bytes = device_images f1 = device_images f2 in
      (* Crash the batched server and make sure recovery sees every entry. *)
      let srv1' = crash_and_recover f1 in
      let expect to_a =
        List.filter_map (fun (t, d) -> if t = to_a then Some d else None) spec
      in
      same_bytes
      && all_payloads srv1' ~log:a1 = expect true
      && all_payloads srv1' ~log:b1 = expect false)

let prop_request_fuzz =
  (* Arbitrary bytes never crash the server dispatcher. *)
  Testkit.qtest ~count:300 "dispatcher total on garbage" QCheck2.Gen.(string_size (int_range 0 64))
    (fun junk ->
      let f = make_fixture () in
      let rpc = Uio.Rpc_server.create f.srv in
      match Uio.Message.decode_response (Uio.Rpc_server.handle rpc junk) with
      | Ok _ -> true
      | Error _ -> false)

let () =
  run "uio"
    [
      ( "codec",
        [
          Alcotest.test_case "requests roundtrip" `Quick requests_roundtrip;
          Alcotest.test_case "responses roundtrip" `Quick responses_roundtrip;
          Alcotest.test_case "typed errors roundtrip" `Quick errors_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick codec_rejects_garbage;
        ] );
      ( "protocol-v2",
        [
          Alcotest.test_case "version negotiation" `Quick test_version_negotiation;
          Alcotest.test_case "typed errors" `Quick test_typed_errors_cross_the_wire;
          Alcotest.test_case "append_batch" `Quick test_append_batch_basic;
          Alcotest.test_case "group commit" `Quick test_append_batch_group_commit;
          Alcotest.test_case "batch rejects atomically" `Quick test_append_batch_rejects_atomically;
          Alcotest.test_case "chunked reads" `Quick test_chunked_reads;
          Alcotest.test_case "stale continuation token" `Quick test_stale_continuation_token;
          Alcotest.test_case "cursor LRU cap" `Quick test_cursor_lru_cap;
          Alcotest.test_case "with_cursor bracket" `Quick test_with_cursor_bracket;
          Alcotest.test_case "fold round trips" `Quick test_fold_round_trips;
          prop_batch_equals_singles;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "write/read" `Quick test_remote_write_read;
          Alcotest.test_case "naming" `Quick test_remote_naming;
          Alcotest.test_case "cursors" `Quick test_remote_cursors_bidirectional;
          Alcotest.test_case "time search" `Quick test_remote_time_search;
          Alcotest.test_case "errors propagate" `Quick test_typed_errors_cross_the_wire;
          Alcotest.test_case "transport accounting" `Quick test_transport_accounting;
          Alcotest.test_case "failed attempts charged" `Quick
            test_accounting_charges_failed_attempts;
          Alcotest.test_case "multi-member append" `Quick test_remote_multi_member_append;
          prop_request_fuzz;
        ] );
      ( "idempotency",
        [
          Alcotest.test_case "lost ack replay" `Quick test_dedup_replays_lost_ack;
          Alcotest.test_case "window eviction" `Quick test_dedup_window_eviction;
        ] );
    ]
