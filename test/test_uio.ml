(* The UIO RPC layer: codec roundtrips, end-to-end client/server behavior,
   cursor lifecycle, error propagation, and the modeled IPC accounting. *)

open Testkit

let rpc_fixture ?(latency_us = 0L) () =
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create f.srv in
  let transport =
    Uio.Transport.local ~latency_us ~clock:f.clock (Uio.Rpc_server.handle rpc)
  in
  (f, rpc, Uio.Client.connect transport, transport)

let okr = function Ok v -> v | Error msg -> Alcotest.failf "rpc error: %s" msg

(* ------------------------------- codec ------------------------------- *)

let requests_roundtrip () =
  let samples =
    [
      Uio.Message.Create_log { path = "/a/b"; perms = 0o600 };
      Uio.Message.Ensure_log { path = "/x"; perms = 0o644 };
      Uio.Message.Resolve "/a";
      Uio.Message.Path_of 42;
      Uio.Message.List_logs "/";
      Uio.Message.Set_perms { log = 7; perms = 0o400 };
      Uio.Message.Append { log = 9; extra_members = [ 10; 11 ]; force = true; data = "payload" };
      Uio.Message.Append { log = 9; extra_members = []; force = false; data = "" };
      Uio.Message.Force;
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_start };
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_end };
      Uio.Message.Open_cursor { log = 5; whence = Uio.Message.From_time 123456789L };
      Uio.Message.Next 3;
      Uio.Message.Prev 4;
      Uio.Message.Close_cursor 5;
      Uio.Message.Entry_at_or_after { log = 6; ts = -1L };
      Uio.Message.Entry_before { log = 6; ts = Int64.max_int };
    ]
  in
  List.iter
    (fun r ->
      let r2 = ok (Uio.Message.decode_request (Uio.Message.encode_request r)) in
      Alcotest.(check bool) "request roundtrip" true (r = r2))
    samples

let responses_roundtrip () =
  let samples =
    [
      Uio.Message.R_unit;
      Uio.Message.R_id 77;
      Uio.Message.R_path "/mail/smith";
      Uio.Message.R_names [ (4, "mail", 0o644); (5, "usage", 0o600) ];
      Uio.Message.R_timestamp None;
      Uio.Message.R_timestamp (Some 99L);
      Uio.Message.R_entry None;
      Uio.Message.R_entry (Some { Uio.Message.log = 4; timestamp = Some 5L; payload = "body" });
      Uio.Message.R_entry (Some { Uio.Message.log = 4; timestamp = None; payload = "" });
      Uio.Message.R_error "boom";
    ]
  in
  List.iter
    (fun r ->
      let r2 = ok (Uio.Message.decode_response (Uio.Message.encode_response r)) in
      Alcotest.(check bool) "response roundtrip" true (r = r2))
    samples

let codec_rejects_garbage () =
  (match Uio.Message.decode_request "\xFFgarbage" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "bad request tag must fail");
  match Uio.Message.decode_response "" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "empty response must fail"

(* ----------------------------- end to end ----------------------------- *)

let test_remote_write_read () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/remote") in
  let ts = okr (Uio.Client.append client ~log "over the wire") in
  Alcotest.(check bool) "timestamp returned" true (ts <> None);
  ignore (okr (Uio.Client.append client ~log "second"));
  let entries = okr (Uio.Client.fold_entries client ~log ~init:[] (fun acc e -> e :: acc)) in
  Alcotest.(check (list string)) "read back" [ "over the wire"; "second" ]
    (List.rev_map (fun e -> e.Uio.Message.payload) entries)

let test_remote_naming () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let id = okr (Uio.Client.ensure_log client "/deep/nested/log") in
  Alcotest.(check int) "resolve matches" id (okr (Uio.Client.resolve client "/deep/nested/log"));
  Alcotest.(check string) "path_of" "/deep/nested/log" (okr (Uio.Client.path_of client id));
  let names = okr (Uio.Client.list_logs client "/deep") in
  Alcotest.(check (list string)) "listing" [ "nested" ] (List.map (fun (_, n, _) -> n) names);
  okr (Uio.Client.set_perms client ~log:id 0o400);
  let names = okr (Uio.Client.list_logs client "/deep/nested") in
  Alcotest.(check (list int)) "perms visible" [ 0o400 ] (List.map (fun (_, _, p) -> p) names)

let test_remote_cursors_bidirectional () =
  let _f, rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/c") in
  for i = 0 to 9 do
    ignore (okr (Uio.Client.append client ~log (string_of_int i)))
  done;
  let c = okr (Uio.Client.open_cursor client ~log Uio.Message.From_end) in
  Alcotest.(check int) "server tracks cursor" 1 (Uio.Rpc_server.open_cursors rpc);
  let p () = (Option.get (okr (Uio.Client.prev c))).Uio.Message.payload in
  let n () = (Option.get (okr (Uio.Client.next c))).Uio.Message.payload in
  Alcotest.(check string) "prev" "9" (p ());
  Alcotest.(check string) "prev" "8" (p ());
  Alcotest.(check string) "next again" "8" (n ());
  okr (Uio.Client.close_cursor c);
  Alcotest.(check int) "cursor closed" 0 (Uio.Rpc_server.open_cursors rpc);
  (match Uio.Client.next c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "closed cursor must error")

let test_remote_time_search () =
  let f, _rpc, client, _tr = rpc_fixture () in
  let log = okr (Uio.Client.create_log client "/t") in
  let stamps =
    List.init 20 (fun i ->
        Sim.Clock.advance f.clock 1000L;
        Option.get (okr (Uio.Client.append client ~log (Printf.sprintf "t%d" i))))
  in
  let ts10 = List.nth stamps 10 in
  let e = Option.get (okr (Uio.Client.entry_at_or_after client ~log ts10)) in
  Alcotest.(check string) "at-or-after" "t10" e.Uio.Message.payload;
  let e = Option.get (okr (Uio.Client.entry_before client ~log ts10)) in
  Alcotest.(check string) "before" "t9" e.Uio.Message.payload;
  let c = okr (Uio.Client.open_cursor client ~log (Uio.Message.From_time ts10)) in
  let rec first_ge () =
    match Option.get (okr (Uio.Client.next c)) with
    | e when e.Uio.Message.timestamp >= Some ts10 -> e.Uio.Message.payload
    | _ -> first_ge ()
  in
  Alcotest.(check string) "cursor from time" "t10" (first_ge ())

let test_remote_errors_propagate () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  (match Uio.Client.resolve client "/missing" with
  | Error msg -> Alcotest.(check bool) "mentions the path" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "must fail");
  (match Uio.Client.append client ~log:0 "x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "append to root must fail remotely too");
  ignore (okr (Uio.Client.create_log client "/dup"));
  match Uio.Client.create_log client "/dup" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate create must fail"

let test_transport_accounting () =
  let f, _rpc, client, tr = rpc_fixture ~latency_us:750L () in
  let t0 = Sim.Clock.peek f.clock in
  let log = okr (Uio.Client.create_log client "/acct") in
  ignore (okr (Uio.Client.append client ~log "fifty bytes of client data, more or less padded"));
  Alcotest.(check int) "two round trips" 2 (Uio.Transport.round_trips tr);
  let elapsed = Int64.sub (Sim.Clock.peek f.clock) t0 in
  Alcotest.(check bool) "IPC latency charged" true (Int64.compare elapsed 1500L >= 0);
  Alcotest.(check bool) "bytes counted" true (Uio.Transport.bytes_sent tr > 50)

let test_remote_multi_member_append () =
  let _f, _rpc, client, _tr = rpc_fixture () in
  let a = okr (Uio.Client.create_log client "/a") in
  let b = okr (Uio.Client.create_log client "/b") in
  ignore (okr (Uio.Client.append client ~log:a ~extra_members:[ b ] "both"));
  let in_b = okr (Uio.Client.fold_entries client ~log:b ~init:0 (fun n _ -> n + 1)) in
  Alcotest.(check int) "extra membership over the wire" 1 in_b

let prop_request_fuzz =
  (* Arbitrary bytes never crash the server dispatcher. *)
  Testkit.qtest ~count:300 "dispatcher total on garbage" QCheck2.Gen.(string_size (int_range 0 64))
    (fun junk ->
      let f = make_fixture () in
      let rpc = Uio.Rpc_server.create f.srv in
      match Uio.Message.decode_response (Uio.Rpc_server.handle rpc junk) with
      | Ok _ -> true
      | Error _ -> false)

let () =
  run "uio"
    [
      ( "codec",
        [
          Alcotest.test_case "requests roundtrip" `Quick requests_roundtrip;
          Alcotest.test_case "responses roundtrip" `Quick responses_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick codec_rejects_garbage;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "write/read" `Quick test_remote_write_read;
          Alcotest.test_case "naming" `Quick test_remote_naming;
          Alcotest.test_case "cursors" `Quick test_remote_cursors_bidirectional;
          Alcotest.test_case "time search" `Quick test_remote_time_search;
          Alcotest.test_case "errors propagate" `Quick test_remote_errors_propagate;
          Alcotest.test_case "transport accounting" `Quick test_transport_accounting;
          Alcotest.test_case "multi-member append" `Quick test_remote_multi_member_append;
          prop_request_fuzz;
        ] );
    ]
