(* End-to-end fault-tolerance soak: the full client/transport/server stack
   under a lossy transport (drops, duplicates, delays, resets) and faulty
   devices, across a fixed list of seeds. The invariant everything here
   defends: every acknowledged append is readable exactly once after
   recovery, with the timestamp it was acknowledged with — and a chaos run
   whose faults are transport-only leaves volumes byte-identical to a
   fault-free run of the same operations.

   Everything is deterministic per seed (Sim.Rng drives the fault schedule,
   the jitter and the workload), so a failure message carries the seed and
   replays exactly. *)

open Testkit

(* The CI seed list: fixed, so chaos runs are reproducible in CI and a
   violation names the seed that found it. *)
let seeds = List.init 60 (fun i -> Int64.of_int ((7919 * i) + 12345))

(* Patient retry policy for soaks: chaos may eat many attempts in a row and
   every operation must eventually be acknowledged. *)
let soak_retry =
  {
    Uio.Client.max_attempts = 10_000;
    deadline_us = 1_000_000_000_000L;
    base_backoff_us = 200L;
    max_backoff_us = 5_000L;
  }

(* ----------------------------- workload ----------------------------- *)

type op = { to_a : bool; data : string; force : bool }

(* The op list is computed from the seed BEFORE any faults happen, so the
   applied-operation sequence — and therefore every server timestamp — is
   identical between a chaos run and a fault-free run. *)
let ops_of_seed seed =
  let rng = Sim.Rng.create seed in
  let n = 40 + Sim.Rng.int rng 40 in
  List.init n (fun i ->
      let to_a = Sim.Rng.bool rng in
      let len = Sim.Rng.int rng 80 in
      let data =
        Printf.sprintf "s%Ld-%d-%s" seed i
          (String.make len (Char.chr (97 + (i mod 26))))
      in
      { to_a; data; force = Sim.Rng.chance rng 0.2 })

(* Drive the whole workload through a client; every call must be Ok (the
   retry loop hides the chaos). Returns the acked timestamp per op. *)
let drive ~seed client ops =
  let okc what = function
    | Ok v -> v
    | Error e -> Alcotest.failf "seed %Ld: %s failed: %s" seed what (Clio.Errors.to_string e)
  in
  let a = okc "ensure /a" (Uio.Client.ensure_log client "/a") in
  let b = okc "ensure /b" (Uio.Client.ensure_log client "/b") in
  let acks =
    List.map
      (fun { to_a; data; force } ->
        let log = if to_a then a else b in
        okc "append" (Uio.Client.append ~force client ~log data))
      ops
  in
  okc "final force" (Uio.Client.force client);
  (a, b, acks)

let device_images f =
  List.map
    (fun io ->
      let cap = io.Worm.Block_io.capacity in
      List.init cap (fun i ->
          match io.Worm.Block_io.read i with Ok b -> Some (Bytes.to_string b) | Error _ -> None))
    (fixture_devices f)

let expected_payloads ops to_a =
  List.filter_map (fun op -> if op.to_a = to_a then Some op.data else None) ops

let read_back srv ~log =
  List.rev
    (ok
       (Clio.Server.fold_entries srv ~log ~init:[] (fun acc e ->
            (e.Clio.Reader.payload, e.Clio.Reader.timestamp) :: acc)))

(* Exactly-once + ack consistency on a (possibly recovered) server. *)
let check_log ~seed ~what srv ~log ops to_a acks =
  let expected = expected_payloads ops to_a in
  let entries = read_back srv ~log in
  let payloads = List.map fst entries in
  if payloads <> expected then
    Alcotest.failf "seed %Ld (%s): log %s entries diverge: got %d entries, want %d" seed what
      (if to_a then "/a" else "/b")
      (List.length payloads) (List.length expected);
  (* Each acked timestamp is the one read back for that op. *)
  let acked =
    List.concat
      (List.map2
         (fun op ack -> if op.to_a = to_a then [ (op.data, ack) ] else [])
         ops acks)
  in
  List.iter2
    (fun (data, ack) (payload, ts) ->
      if data <> payload || ack <> ts then
        Alcotest.failf "seed %Ld (%s): ack mismatch for %s" seed what data)
    acked entries

(* --------------------- soak 1: lossy transport --------------------- *)

(* A server whose own clock is distinct from the transport's: transport
   latency, chaos delays and client backoff then cannot perturb server
   timestamps, which depend only on the applied-op sequence — giving the
   byte-identity property something to hold onto. *)
let chaos_run seed =
  let f = make_fixture () in
  let rng = Sim.Rng.create (Int64.lognot seed) in
  let fault_rng = Sim.Rng.split rng in
  let jitter_rng = Sim.Rng.split rng in
  let rpc = Uio.Rpc_server.create f.srv in
  let transport_clock = Sim.Clock.simulated () in
  let inner =
    Uio.Transport.local ~latency_us:750L ~clock:transport_clock (Uio.Rpc_server.handle rpc)
  in
  let tr = Uio.Transport.lossy ~rng:fault_rng inner in
  let client = Uio.Client.connect ~retry:soak_retry ~rng:jitter_rng tr in
  (f, rpc, tr, client)

let plain_run seed =
  ignore seed;
  let f = make_fixture () in
  let rpc = Uio.Rpc_server.create f.srv in
  let transport_clock = Sim.Clock.simulated () in
  let inner =
    Uio.Transport.local ~latency_us:750L ~clock:transport_clock (Uio.Rpc_server.handle rpc)
  in
  (f, Uio.Client.connect inner)

let test_lossy_transport_soak () =
  let total_retries = ref 0 in
  let total_faults = ref 0 in
  let total_dedup = ref 0 in
  List.iter
    (fun seed ->
      let ops = ops_of_seed seed in
      (* Chaos run. *)
      let f, rpc, tr, client = chaos_run seed in
      if Uio.Client.version client <> 3 then
        Alcotest.failf "seed %Ld: expected a v3 session, got v%d" seed
          (Uio.Client.version client);
      let a, b, acks = drive ~seed client ops in
      (* Fault-free run of the same ops. *)
      let f0, client0 = plain_run seed in
      let a0, b0, acks0 = drive ~seed client0 ops in
      if (a, b) <> (a0, b0) then Alcotest.failf "seed %Ld: log ids diverge" seed;
      if acks <> acks0 then Alcotest.failf "seed %Ld: acked timestamps diverge" seed;
      if device_images f <> device_images f0 then
        Alcotest.failf "seed %Ld: volumes not byte-identical to the fault-free run" seed;
      (* Read counters before recovery replaces the server (and its metrics
         registry). *)
      total_dedup :=
        !total_dedup
        + Obs.Metrics.counter_value
            (Obs.Metrics.counter (Clio.Server.metrics f.srv) "rpc_dedup_hits");
      (* Exactly-once across a crash. *)
      let srv' = crash_and_recover f in
      check_log ~seed ~what:"chaos+recovery" srv' ~log:a ops true acks;
      check_log ~seed ~what:"chaos+recovery" srv' ~log:b ops false acks;
      let s = Uio.Client.stats client in
      total_retries := !total_retries + s.Uio.Client.retries;
      total_faults := !total_faults + Uio.Transport.total_faults tr;
      ignore rpc)
    seeds;
  (* The soak only means something if chaos actually bit. *)
  Alcotest.(check bool)
    (Printf.sprintf "faults injected (%d)" !total_faults)
    true (!total_faults > 100);
  Alcotest.(check bool)
    (Printf.sprintf "retries happened (%d)" !total_retries)
    true (!total_retries > 100);
  Alcotest.(check bool)
    (Printf.sprintf "dedup replays happened (%d)" !total_dedup)
    true (!total_dedup > 0)

(* ---------------- soak 2: lossy transport + bad media ---------------- *)

(* A fixture over Faulty_device-wrapped memory devices, recoverable. *)
type faulty_fixture = {
  mutable fsrv : Clio.Server.t;
  fconfig : Clio.Config.t;
  fclock : Sim.Clock.t;
  fnvram : Worm.Nvram.t option;
  fdevs : (int, Worm.Faulty_device.t) Hashtbl.t;
  falloc : vol_index:int -> (Worm.Block_io.t, Clio.Errors.t) result;
}

let make_faulty_fixture ?(config = Clio.Config.default) ?(block_size = 256) ?(capacity = 1024)
    ?(nvram = true) ~seed () =
  let config = { config with Clio.Config.block_size } in
  let clock = Sim.Clock.simulated () in
  let devs = Hashtbl.create 4 in
  let dev_rng = Sim.Rng.create (Int64.add seed 0xFA17L) in
  let alloc ~vol_index =
    let d = Worm.Mem_device.create ~block_size ~capacity () in
    let fd = Worm.Faulty_device.create ~rng:(Sim.Rng.split dev_rng) (Worm.Mem_device.io d) in
    Hashtbl.replace devs vol_index fd;
    Ok (Worm.Faulty_device.io fd)
  in
  let nvram = if nvram then Some (Worm.Nvram.create ()) else None in
  let srv = ok (Clio.Server.create ~config ~clock ?nvram ~alloc_volume:alloc ()) in
  { fsrv = srv; fconfig = config; fclock = clock; fnvram = nvram; fdevs = devs; falloc = alloc }

let faulty_devices ff =
  Hashtbl.fold (fun i d acc -> (i, d) :: acc) ff.fdevs []
  |> List.sort compare
  |> List.map snd

let faulty_crash_and_recover ff =
  let devices = List.map Worm.Faulty_device.io (faulty_devices ff) in
  let srv =
    ok
      (Clio.Server.recover ~config:ff.fconfig ~clock:ff.fclock ?nvram:ff.fnvram
         ~alloc_volume:ff.falloc ~devices ())
  in
  ff.fsrv <- srv;
  srv

let test_lossy_transport_and_media_soak () =
  (* Media faults here are the recoverable kinds — bad unwritten blocks at
     the frontier (invalidate-and-retry territory) and garbage sprayed past
     the frontier (recovery scan territory) — so no write is ever lost and
     exactly-once must still hold. Byte-identity does not (bad blocks burn
     extra space), so it is not asserted. *)
  List.iter
    (fun seed ->
      let ops = ops_of_seed seed in
      let ff = make_faulty_fixture ~seed () in
      let rng = Sim.Rng.create (Int64.mul seed 31L) in
      let fault_rng = Sim.Rng.split rng in
      let jitter_rng = Sim.Rng.split rng in
      let media_rng = Sim.Rng.split rng in
      let rpc = Uio.Rpc_server.create ff.fsrv in
      let transport_clock = Sim.Clock.simulated () in
      let inner = Uio.Transport.local ~clock:transport_clock (Uio.Rpc_server.handle rpc) in
      let tr = Uio.Transport.lossy ~rng:fault_rng inner in
      let client = Uio.Client.connect ~retry:soak_retry ~rng:jitter_rng tr in
      (* Auto bad blocks on the active device for the whole run. *)
      List.iter
        (fun fd -> Worm.Faulty_device.set_auto_faults ~bad_block_rate:0.05 fd)
        (faulty_devices ff);
      let okc what = function
        | Ok v -> v
        | Error e ->
          Alcotest.failf "seed %Ld: %s failed: %s" seed what (Clio.Errors.to_string e)
      in
      let a = okc "ensure /a" (Uio.Client.ensure_log client "/a") in
      let b = okc "ensure /b" (Uio.Client.ensure_log client "/b") in
      let acks =
        List.map
          (fun { to_a; data; force } ->
            okc "append" (Uio.Client.append ~force client ~log:(if to_a then a else b) data))
          ops
      in
      okc "final force" (Uio.Client.force client);
      (* Garbage past the frontier at crash time — the crashed-writer
         artifact the recovery scan must shrug off. (Only ever past the
         frontier: a Garbage_visible overlay on a block the server later
         writes would mask real data, which no WORM drive does.) *)
      if Sim.Rng.chance media_rng 0.5 then
        List.iter
          (fun fd -> Worm.Faulty_device.spray_garbage_after_frontier fd ~count:2)
          (faulty_devices ff);
      let srv' = faulty_crash_and_recover ff in
      check_log ~seed ~what:"media chaos+recovery" srv' ~log:a ops true acks;
      check_log ~seed ~what:"media chaos+recovery" srv' ~log:b ops false acks)
    (List.filteri (fun i _ -> i mod 3 = 0) seeds)

(* ----------------------- degraded mode (breaker) ----------------------- *)

let test_breaker_trips_to_read_only () =
  let config = { Clio.Config.default with breaker_threshold = 3 } in
  let ff = make_faulty_fixture ~config ~nvram:false ~seed:1L () in
  let srv = ff.fsrv in
  let log = ok (Clio.Server.create_log srv "/sys") in
  ignore (ok (Clio.Server.append ~force:true srv ~log "committed"));
  (* Damage the medium where the next burn must land, unfixably. *)
  let fd = List.hd (faulty_devices ff) in
  let io = Worm.Faulty_device.io fd in
  let frontier = Option.get (io.Worm.Block_io.frontier ()) in
  Worm.Faulty_device.mark_unfixable fd frontier;
  ignore (ok (Clio.Server.append srv ~log "doomed"));
  (* Each failed force spends one unit of error budget. *)
  for i = 1 to 3 do
    match Clio.Server.force srv with
    | Error (Clio.Errors.Device _) -> ()
    | Error e ->
      Alcotest.failf "force %d: expected a device error, got %s" i (Clio.Errors.to_string e)
    | Ok () -> Alcotest.fail "force over an unfixable block must fail"
  done;
  Alcotest.(check bool) "breaker tripped" true
    (Clio.Breaker.is_open (Clio.Server.breaker srv));
  (* Writes now answer Degraded without touching the device. *)
  (match Clio.Server.force srv with
  | Error Clio.Errors.Degraded -> ()
  | r ->
    Alcotest.failf "expected Degraded, got %s"
      (match r with Ok () -> "Ok" | Error e -> Clio.Errors.to_string e));
  (match Clio.Server.append srv ~log "rejected" with
  | Error Clio.Errors.Degraded -> ()
  | _ -> Alcotest.fail "append while degraded must answer Degraded");
  (match Clio.Server.create_log srv "/nope" with
  | Error Clio.Errors.Degraded -> ()
  | _ -> Alcotest.fail "create_log while degraded must answer Degraded");
  (* Reads, locate and time search keep working — including the staged
     ("doomed") entry, which is readable even though its commit is stuck. *)
  Alcotest.(check (list string)) "reads still work" [ "committed"; "doomed" ]
    (all_payloads srv ~log);
  let e = ok (Clio.Server.first_entry srv ~log) in
  Alcotest.(check bool) "locate still works" true (e <> None);
  let ts = (Option.get e).Clio.Reader.timestamp in
  (match ts with
  | Some ts ->
    let e' = ok (Clio.Server.entry_at_or_after srv ~log ts) in
    Alcotest.(check bool) "time search still works" true (e' <> None)
  | None -> Alcotest.fail "expected a timestamp");
  (* The state is visible to operators: accessors and the metrics export. *)
  Alcotest.(check bool) "metrics export carries the breaker" true
    (let js = Clio.Server.metrics_json srv in
     let contains ~affix s =
       let n = String.length affix and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
       go 0
     in
     contains ~affix:{|"breaker"|} js && contains ~affix:{|"open"|} js);
  Alcotest.(check int) "trips counted" 1 (Clio.Breaker.trips (Clio.Server.breaker srv));
  Alcotest.(check bool) "rejections counted" true
    (Clio.Breaker.rejected (Clio.Server.breaker srv) >= 3);
  (* Operator path: heal the medium, reset the breaker, write again. *)
  Worm.Faulty_device.clear_faults fd;
  Clio.Server.reset_breaker srv;
  Alcotest.(check bool) "reset closes" false (Clio.Breaker.is_open (Clio.Server.breaker srv));
  ignore (ok (Clio.Server.append ~force:true srv ~log "after-reset"));
  Alcotest.(check (list string)) "writes flow again"
    [ "committed"; "doomed"; "after-reset" ]
    (all_payloads srv ~log);
  (* trip_breaker is the operator drill: open without any device error. *)
  Clio.Server.trip_breaker srv;
  (match Clio.Server.append srv ~log "x" with
  | Error Clio.Errors.Degraded -> ()
  | _ -> Alcotest.fail "tripped breaker must reject writes");
  Clio.Server.reset_breaker srv

let test_breaker_disabled_by_zero_threshold () =
  let config = { Clio.Config.default with breaker_threshold = 0 } in
  let ff = make_faulty_fixture ~config ~nvram:false ~seed:2L () in
  let srv = ff.fsrv in
  let log = ok (Clio.Server.create_log srv "/sys") in
  ignore (ok (Clio.Server.append ~force:true srv ~log "committed"));
  let fd = List.hd (faulty_devices ff) in
  let io = Worm.Faulty_device.io fd in
  Worm.Faulty_device.mark_unfixable fd (Option.get (io.Worm.Block_io.frontier ()));
  ignore (ok (Clio.Server.append srv ~log "doomed"));
  for _ = 1 to 8 do
    match Clio.Server.force srv with
    | Error (Clio.Errors.Device _) -> ()
    | Error Clio.Errors.Degraded -> Alcotest.fail "threshold 0 must never trip"
    | Error e -> Alcotest.failf "unexpected: %s" (Clio.Errors.to_string e)
    | Ok () -> Alcotest.fail "force must fail here"
  done;
  Alcotest.(check bool) "still closed" false (Clio.Breaker.is_open (Clio.Server.breaker srv));
  Alcotest.(check int) "errors still counted" 8
    (Clio.Breaker.total_errors (Clio.Server.breaker srv))

let test_breaker_volatile_across_recovery () =
  let config = { Clio.Config.default with breaker_threshold = 3 } in
  let f = make_fixture ~config () in
  let log = create_log f "/v" in
  ignore (append f ~log ~force:true "before");
  Clio.Server.trip_breaker f.srv;
  (match Clio.Server.append f.srv ~log "x" with
  | Error Clio.Errors.Degraded -> ()
  | _ -> Alcotest.fail "must be degraded");
  let srv' = crash_and_recover f in
  Alcotest.(check bool) "recovery starts closed" false
    (Clio.Breaker.is_open (Clio.Server.breaker srv'));
  ignore (ok (Clio.Server.append ~force:true srv' ~log "after"));
  Alcotest.(check (list string)) "writes work after recovery" [ "before"; "after" ]
    (all_payloads srv' ~log)

(* ------------------------- degraded over RPC ------------------------- *)

let test_degraded_error_crosses_the_wire () =
  let f = make_fixture () in
  Clio.Server.trip_breaker f.srv;
  let rpc = Uio.Rpc_server.create f.srv in
  let tr = Uio.Transport.local ~clock:f.clock (Uio.Rpc_server.handle rpc) in
  let client = Uio.Client.connect tr in
  (match Uio.Client.create_log client "/r" with
  | Error Clio.Errors.Degraded -> ()
  | Error e -> Alcotest.failf "expected Degraded, got %s" (Clio.Errors.to_string e)
  | Ok _ -> Alcotest.fail "must be degraded");
  (* A v1 client sees the same condition as a string error. *)
  let rpc1 = Uio.Rpc_server.create f.srv in
  let tr1 = Uio.Transport.local ~clock:f.clock (Uio.Rpc_server.handle rpc1) in
  let client1 = Uio.Client.connect ~max_version:1 tr1 in
  match Uio.Client.create_log client1 "/r" with
  | Error (Clio.Errors.Remote msg) ->
    Alcotest.(check bool) "v1 message mentions degraded" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "v1 must get a string error"

let () =
  run "chaos"
    [
      ( "soak",
        [
          Alcotest.test_case "lossy transport, 60 seeds" `Quick test_lossy_transport_soak;
          Alcotest.test_case "lossy transport + bad media" `Quick
            test_lossy_transport_and_media_soak;
        ] );
      ( "degraded-mode",
        [
          Alcotest.test_case "breaker trips to read-only" `Quick test_breaker_trips_to_read_only;
          Alcotest.test_case "threshold 0 disables" `Quick test_breaker_disabled_by_zero_threshold;
          Alcotest.test_case "volatile across recovery" `Quick
            test_breaker_volatile_across_recovery;
          Alcotest.test_case "Degraded crosses the wire" `Quick
            test_degraded_error_crosses_the_wire;
        ] );
    ]
