(* Corruption fuzzing: random block damage must never crash the server,
   never corrupt what it yields, and be precisely attributed by fsck. *)

open Testkit

(* Build a store whose payloads are self-describing, damage random blocks,
   and check every safety property we promise under data loss. *)
let gen_scenario =
  QCheck2.Gen.(
    triple
      (int_range 50 300) (* entries *)
      (list_size (int_range 0 6) (int_range 1 120)) (* blocks to corrupt *)
      bool (* recover after the damage? *))

let checksum payload = Digest.to_hex (Digest.string payload)

let make_payload i =
  let body = String.make (20 + (i * 7 mod 160)) (Char.chr (97 + (i mod 26))) in
  Printf.sprintf "%06d:%s" i body

let prop_corruption_safety =
  qtest ~count:60 "random corruption is contained" gen_scenario
    (fun (entries, corrupt_blocks, do_recover) ->
      let f = make_fixture ~block_size:256 ~capacity:2048 () in
      let log = create_log f "/fz" in
      let written = List.init entries make_payload in
      List.iter (fun p -> ignore (append f ~log p)) written;
      ignore (ok (Clio.Server.force f.srv));
      let dev = Hashtbl.find f.devices 0 in
      let rng = Sim.Rng.create (Int64.of_int entries) in
      List.iter
        (fun blk ->
          (* Only damage blocks that exist. *)
          match Worm.Mem_device.raw_peek dev blk with
          | Some _ ->
            Worm.Mem_device.raw_poke dev blk
              (Bytes.init 256 (fun _ -> Char.chr (Sim.Rng.int rng 256)))
          | None -> ())
        corrupt_blocks;
      drop_caches f.srv;
      let srv = if do_recover then crash_and_recover f else f.srv in
      match Clio.Server.resolve srv "/fz" with
      | Error (Clio.Errors.No_such_log _) ->
        (* The corruption destroyed the catalog record creating /fz: the
           name is data too. Acceptable iff the damage is visible. *)
        let report = ok (Clio.Server.fsck srv) in
        report.Clio.Fsck.corrupt_blocks <> []
      | Error e -> Alcotest.failf "unexpected resolve error: %s" (Clio.Errors.to_string e)
      | Ok log ->
      let got = all_payloads srv ~log in
      (* 1. Every yielded payload is exactly one that was written (no
            silent corruption slips through the CRC). *)
      let written_set = Hashtbl.create 64 in
      List.iter (fun p -> Hashtbl.replace written_set (checksum p) ()) written;
      let all_genuine = List.for_all (fun p -> Hashtbl.mem written_set (checksum p)) got in
      (* 2. Survivors appear in their original order (subsequence). *)
      let rec is_subsequence xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xr, y :: yr -> if x = y then is_subsequence xr yr else is_subsequence xs yr
      in
      (* 3. Backward reads agree with forward reads. *)
      let backward = all_payloads_backward srv ~log in
      (* 4. fsck agrees and attributes damage to volume 0 only. *)
      let report = ok (Clio.Server.fsck srv) in
      let attribution_ok =
        List.for_all (fun (v, _) -> v = 0) report.Clio.Fsck.corrupt_blocks
      in
      (* 5. The store remains appendable after damage. *)
      let appendable = Result.is_ok (Clio.Server.append srv ~log "post-damage") in
      all_genuine && is_subsequence got written && backward = got && attribution_ok
      && appendable)

let prop_invalidation_recovers_scans =
  qtest ~count:30 "scrubbing corrupt blocks restores a healthy report" gen_scenario
    (fun (entries, corrupt_blocks, _) ->
      let f = make_fixture ~block_size:256 ~capacity:2048 () in
      let log = create_log f "/fz" in
      for i = 0 to entries - 1 do
        ignore (append f ~log (make_payload i))
      done;
      ignore (ok (Clio.Server.force f.srv));
      let dev = Hashtbl.find f.devices 0 in
      List.iter
        (fun blk ->
          match Worm.Mem_device.raw_peek dev blk with
          | Some _ -> Worm.Mem_device.raw_poke dev blk (Bytes.make 256 '\x5A')
          | None -> ())
        corrupt_blocks;
      drop_caches f.srv;
      let report = ok (Clio.Server.fsck f.srv) in
      List.iter
        (fun (v, b) -> ignore (ok (Clio.Server.scrub_block f.srv ~vol:v ~block:b)))
        report.Clio.Fsck.corrupt_blocks;
      let after = ok (Clio.Server.fsck f.srv) in
      after.Clio.Fsck.corrupt_blocks = [])

let () =
  run "fuzz"
    [
      ( "corruption",
        [ prop_corruption_safety; prop_invalidation_recovers_scans ] );
    ]
