(* Entrymap entries (codec) and the pending bitmaps (section 2.1). *)

module EM = Clio.Entrymap

let test_codec_roundtrip () =
  let bm1 = Clio.Bitmap.create 16 and bm2 = Clio.Bitmap.create 16 in
  Clio.Bitmap.set bm1 0;
  Clio.Bitmap.set bm1 15;
  Clio.Bitmap.set bm2 7;
  let e = { EM.level = 2; base = 256; maps = [ (4, bm1); (9, bm2) ] } in
  let e2 = Testkit.ok (EM.decode ~fanout:16 (EM.encode e)) in
  Alcotest.(check int) "level" 2 e2.EM.level;
  Alcotest.(check int) "base" 256 e2.EM.base;
  Alcotest.(check int) "two files" 2 (List.length e2.EM.maps);
  let b1 = List.assoc 4 e2.EM.maps in
  Alcotest.(check bool) "bit 0" true (Clio.Bitmap.get b1 0);
  Alcotest.(check bool) "bit 15" true (Clio.Bitmap.get b1 15);
  Alcotest.(check bool) "bit 7 clear" false (Clio.Bitmap.get b1 7)

let test_codec_empty_maps () =
  let e = { EM.level = 1; base = 0; maps = [] } in
  let e2 = Testkit.ok (EM.decode ~fanout:8 (EM.encode e)) in
  Alcotest.(check int) "no files" 0 (List.length e2.EM.maps)

let test_codec_truncated () =
  let bm = Clio.Bitmap.create 16 in
  let e = { EM.level = 1; base = 16; maps = [ (4, bm) ] } in
  let s = EM.encode e in
  match EM.decode ~fanout:16 (String.sub s 0 (String.length s - 1)) with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_overhead_formula_matches_encoding () =
  let bm = Clio.Bitmap.create 32 in
  let e = { EM.level = 1; base = 32; maps = [ (4, bm); (5, bm); (6, bm) ] } in
  Alcotest.(check int) "formula = actual bytes"
    (String.length (EM.encode e))
    (EM.entry_overhead_bytes ~fanout:32 ~files:3)

(* ---------------------------- pending ---------------------------- *)

let test_due_at () =
  let p = EM.Pending.create ~fanout:4 ~levels:3 in
  Alcotest.(check (list int)) "block 0 never due" [] (EM.Pending.due_at p ~block:0);
  Alcotest.(check (list int)) "non-boundary" [] (EM.Pending.due_at p ~block:3);
  Alcotest.(check (list int)) "level 1" [ 1 ] (EM.Pending.due_at p ~block:4);
  Alcotest.(check (list int)) "levels 1,2" [ 1; 2 ] (EM.Pending.due_at p ~block:16);
  Alcotest.(check (list int)) "levels 1,2,3" [ 1; 2; 3 ] (EM.Pending.due_at p ~block:64);
  Alcotest.(check (list int)) "capped at levels" [ 1; 2; 3 ] (EM.Pending.due_at p ~block:256)

let test_note_and_take () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.note_block p ~block:1 [ 4 ];
  EM.Pending.note_block p ~block:3 [ 4; 5 ];
  match EM.Pending.take p ~level:1 ~boundary:4 with
  | None -> Alcotest.fail "expected an entry"
  | Some e ->
    Alcotest.(check int) "base" 0 e.EM.base;
    let b4 = List.assoc 4 e.EM.maps in
    Alcotest.(check bool) "block 1" true (Clio.Bitmap.get b4 1);
    Alcotest.(check bool) "block 3" true (Clio.Bitmap.get b4 3);
    Alcotest.(check bool) "block 2 clear" false (Clio.Bitmap.get b4 2);
    let b5 = List.assoc 5 e.EM.maps in
    Alcotest.(check bool) "file 5 block 3" true (Clio.Bitmap.get b5 3);
    Alcotest.(check bool) "file 5 block 1 clear" false (Clio.Bitmap.get b5 1)

let test_take_clears_range () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.note_block p ~block:2 [ 4 ];
  ignore (EM.Pending.take p ~level:1 ~boundary:4);
  Alcotest.(check bool) "second take empty" true (EM.Pending.take p ~level:1 ~boundary:4 = None);
  (* After take the range advanced: it covers [4,8). *)
  Alcotest.(check bool) "covers next range" true (EM.Pending.covers p ~level:1 ~base:4)

let test_take_empty_range () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  Alcotest.(check bool) "nothing to take" true (EM.Pending.take p ~level:1 ~boundary:4 = None)

let test_take_does_not_clobber_newer_range () =
  (* Deferred emission: blocks of range [4,8) were already noted when the
     take for boundary 4 finally runs. The newer accumulation must
     survive. *)
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.note_block p ~block:5 [ 4 ];
  Alcotest.(check bool) "stale take yields nothing" true (EM.Pending.take p ~level:1 ~boundary:4 = None);
  match EM.Pending.take p ~level:1 ~boundary:8 with
  | None -> Alcotest.fail "newer range lost"
  | Some e ->
    Alcotest.(check bool) "bit for block 5 kept" true (Clio.Bitmap.get (List.assoc 4 e.EM.maps) 1)

let test_levels_accumulate_independently () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.note_block p ~block:1 [ 4 ];
  EM.Pending.note_block p ~block:9 [ 4 ];
  (* Level 2 covers [0,16): groups 0 (blocks 0-3) and 2 (blocks 8-11). *)
  match EM.Pending.take p ~level:2 ~boundary:16 with
  | None -> Alcotest.fail "expected level-2 entry"
  | Some e ->
    let bm = List.assoc 4 e.EM.maps in
    Alcotest.(check bool) "group 0" true (Clio.Bitmap.get bm 0);
    Alcotest.(check bool) "group 2" true (Clio.Bitmap.get bm 2);
    Alcotest.(check bool) "group 1 clear" false (Clio.Bitmap.get bm 1)

let test_query () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.note_block p ~block:5 [ 4 ];
  (match EM.Pending.query p ~level:1 ~base:4 4 with
  | Some bm -> Alcotest.(check bool) "bit 1" true (Clio.Bitmap.get bm 1)
  | None -> Alcotest.fail "range should be covered");
  (match EM.Pending.query p ~level:1 ~base:4 99 with
  | Some bm -> Alcotest.(check bool) "unknown file empty" true (Clio.Bitmap.is_empty bm)
  | None -> Alcotest.fail "covered range, unknown file");
  Alcotest.(check bool) "other range not covered" true (EM.Pending.query p ~level:1 ~base:0 4 = None)

let test_seed_single_level () =
  let p = EM.Pending.create ~fanout:4 ~levels:2 in
  EM.Pending.seed p ~level:2 ~block:5 [ 7 ];
  (* Level 1 untouched. *)
  Alcotest.(check (list int)) "level 1 empty" [] (EM.Pending.files_at p ~level:1);
  Alcotest.(check (list int)) "level 2 seeded" [ 7 ] (EM.Pending.files_at p ~level:2)

let test_files_at () =
  let p = EM.Pending.create ~fanout:4 ~levels:1 in
  EM.Pending.note_block p ~block:1 [ 9; 4 ];
  Alcotest.(check (list int)) "sorted files" [ 4; 9 ] (EM.Pending.files_at p ~level:1)

let prop_note_take_model =
  (* Model check: bits taken at a boundary = exactly the noted blocks of the
     completed range, per file. *)
  Testkit.qtest "take reflects notes"
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 15) (int_range 4 7)))
    (fun notes ->
      let p = EM.Pending.create ~fanout:16 ~levels:1 in
      List.iter (fun (blk, f) -> EM.Pending.note_block p ~block:blk [ f ]) notes;
      match EM.Pending.take p ~level:1 ~boundary:16 with
      | None -> notes = []
      | Some e ->
        List.for_all
          (fun (blk, f) -> Clio.Bitmap.get (List.assoc f e.EM.maps) blk)
          notes)

let () =
  Testkit.run "entrymap"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "empty maps" `Quick test_codec_empty_maps;
          Alcotest.test_case "truncated" `Quick test_codec_truncated;
          Alcotest.test_case "overhead formula" `Quick test_overhead_formula_matches_encoding;
        ] );
      ( "pending",
        [
          Alcotest.test_case "due_at" `Quick test_due_at;
          Alcotest.test_case "note and take" `Quick test_note_and_take;
          Alcotest.test_case "take clears range" `Quick test_take_clears_range;
          Alcotest.test_case "take empty range" `Quick test_take_empty_range;
          Alcotest.test_case "take keeps newer range" `Quick test_take_does_not_clobber_newer_range;
          Alcotest.test_case "levels independent" `Quick test_levels_accumulate_independently;
          Alcotest.test_case "query" `Quick test_query;
          Alcotest.test_case "seed single level" `Quick test_seed_single_level;
          Alcotest.test_case "files_at" `Quick test_files_at;
          prop_note_take_model;
        ] );
    ]
