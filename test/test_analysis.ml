(* The closed-form section-3 formulas: paper-quoted values and shapes. *)

module A = Clio.Analysis

let test_table1_examinations () =
  (* Table 1: distances N^k cost 2k-1 entrymap entries (N = 16). *)
  Alcotest.(check int) "d=0" 0 (A.locate_examinations ~fanout:16 ~distance:0);
  Alcotest.(check int) "d=N" 1 (A.locate_examinations ~fanout:16 ~distance:16);
  Alcotest.(check int) "d=N^2" 3 (A.locate_examinations ~fanout:16 ~distance:256);
  Alcotest.(check int) "d=N^3" 5 (A.locate_examinations ~fanout:16 ~distance:4096);
  Alcotest.(check int) "d=N^4" 7 (A.locate_examinations ~fanout:16 ~distance:65536);
  Alcotest.(check int) "d=N^5" 9 (A.locate_examinations ~fanout:16 ~distance:1048576)

let test_locate_monotone_in_distance () =
  let prev = ref 0 in
  List.iter
    (fun d ->
      let n = A.locate_examinations ~fanout:16 ~distance:d in
      Alcotest.(check bool) "non-decreasing" true (n >= !prev);
      prev := n)
    [ 1; 10; 100; 1000; 10_000; 100_000; 1_000_000; 10_000_000 ]

let test_figure3_bigger_fanout_cheaper_far () =
  (* Figure 3: for very distant entries, larger N examines fewer entries
     (n shrinks like 1/log N). *)
  let d = 10_000_000 in
  let n4 = A.locate_examinations ~fanout:4 ~distance:d in
  let n16 = A.locate_examinations ~fanout:16 ~distance:d in
  let n128 = A.locate_examinations ~fanout:128 ~distance:d in
  Alcotest.(check bool) "4 > 16" true (n4 > n16);
  Alcotest.(check bool) "16 >= 128" true (n16 >= n128);
  (* ... but the paper notes "little benefit in N larger than 16 or 32". *)
  Alcotest.(check bool) "diminishing returns" true (n4 - n16 > n16 - n128)

let test_figure4_recovery_cost () =
  (* Figure 4: reconstruction cost grows with N — the opposite trade-off. *)
  let b = 1_000_000.0 in
  let r4 = A.recovery_examinations_avg ~fanout:4 ~written:b in
  let r16 = A.recovery_examinations_avg ~fanout:16 ~written:b in
  let r128 = A.recovery_examinations_avg ~fanout:128 ~written:b in
  Alcotest.(check bool) "4 < 16" true (r4 < r16);
  Alcotest.(check bool) "16 < 128" true (r16 < r128);
  (* (N log_N b)/2 at N=16, b=10^6: 16 * ~4.98 / 2 ~ 39.9. *)
  Alcotest.(check bool) "N=16 value" true (r16 > 35.0 && r16 < 45.0);
  Alcotest.(check bool) "worst is twice avg" true
    (abs_float (A.recovery_examinations_worst ~fanout:16 ~written:b -. (2.0 *. r16)) < 1e-6)

let test_section35_overhead_bound () =
  (* Section 3.5's worked example: c=1/15, a=8, N=16, h=4 => < 0.16 B. *)
  let o =
    A.space_overhead_per_entry ~fanout:16 ~header_bytes:4.0 ~files_per_map:8.0
      ~entry_block_ratio:(1.0 /. 15.0)
  in
  Alcotest.(check bool) "paper's 0.16-byte bound" true (o > 0.10 && o <= 0.16)

let test_entrymap_entries_per_block () =
  Alcotest.(check bool) "1/(N-1)" true
    (abs_float (A.entrymap_entries_per_block ~fanout:16 -. (1.0 /. 15.0)) < 1e-9)

let test_header_overhead_dominates () =
  (* Section 3.5's conclusion: entrymap overhead stays below the header
     overhead unless entries are near block-sized and many files are hot. *)
  let o =
    A.space_overhead_per_entry ~fanout:16 ~header_bytes:4.0 ~files_per_map:8.0
      ~entry_block_ratio:(1.0 /. 15.0)
  in
  Alcotest.(check bool) "o_e < h" true (o < 4.0)

let test_frontier_probes_log2 () =
  Alcotest.(check int) "1M blocks -> 20 probes" 20 (A.frontier_probes ~capacity:1_048_576);
  Alcotest.(check int) "1k blocks -> 10 probes" 10 (A.frontier_probes ~capacity:1024)

let test_avg_curve_close_to_steps () =
  List.iter
    (fun d ->
      let step = float_of_int (A.locate_examinations ~fanout:16 ~distance:d) in
      let smooth = A.locate_examinations_avg ~fanout:16 ~distance:(float_of_int d) in
      Alcotest.(check bool) "within 2 of each other" true (abs_float (step -. smooth) <= 2.0))
    [ 16; 256; 4096; 65536 ]

let () =
  Testkit.run "analysis"
    [
      ( "section-3",
        [
          Alcotest.test_case "Table 1 examinations" `Quick test_table1_examinations;
          Alcotest.test_case "locate monotone" `Quick test_locate_monotone_in_distance;
          Alcotest.test_case "Figure 3 fanout trend" `Quick test_figure3_bigger_fanout_cheaper_far;
          Alcotest.test_case "Figure 4 recovery trend" `Quick test_figure4_recovery_cost;
          Alcotest.test_case "section 3.5 bound" `Quick test_section35_overhead_bound;
          Alcotest.test_case "entries per block" `Quick test_entrymap_entries_per_block;
          Alcotest.test_case "header dominates" `Quick test_header_overhead_dominates;
          Alcotest.test_case "frontier probes" `Quick test_frontier_probes_log2;
          Alcotest.test_case "avg vs step curve" `Quick test_avg_curve_close_to_steps;
        ] );
    ]
