(* The entrymap search tree: locate must agree with exhaustive scanning, at
   every fanout, and its cost must follow the section-3 analysis. *)

open Testkit

let fixture ~fanout ?(block_size = 256) ?(capacity = 4096) () =
  make_fixture ~config:{ Clio.Config.default with fanout } ~block_size ~capacity ()

let active f = ok (Clio.State.active (Clio.Server.state f.srv))

(* Write a workload of several interleaved logs; then check prev/next block
   queries against the Naive_scan ground truth from many positions. *)
let locate_agrees_with_scan ~fanout ~entries ~nlogs () =
  let f = fixture ~fanout () in
  let logs = Array.init nlogs (fun i -> create_log f (Printf.sprintf "/l%d" i)) in
  let rng = Sim.Rng.create 1234L in
  for i = 0 to entries - 1 do
    let log = logs.(Sim.Rng.int rng nlogs) in
    ignore (append f ~log (Printf.sprintf "e%d-%d" log i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  let limit = Clio.Vol.written_limit v in
  Array.iter
    (fun log ->
      let positions = List.init 20 (fun _ -> Sim.Rng.int rng (limit + 2)) in
      List.iter
        (fun pos ->
          let expect_prev, _ = ok (Baseline.Naive_scan.prev_block st v ~log ~before:pos) in
          let got_prev = ok (Clio.Locate.prev_block st v ~log ~before:pos) in
          Alcotest.(check (option int))
            (Printf.sprintf "prev log=%d before=%d" log pos)
            expect_prev got_prev;
          let expect_next, _ = ok (Baseline.Naive_scan.next_block st v ~log ~from:pos) in
          let got_next = ok (Clio.Locate.next_block st v ~log ~from:pos) in
          Alcotest.(check (option int))
            (Printf.sprintf "next log=%d from=%d" log pos)
            expect_next got_next)
        positions)
    logs

let test_agrees_n4 () = locate_agrees_with_scan ~fanout:4 ~entries:600 ~nlogs:5 ()
let test_agrees_n8 () = locate_agrees_with_scan ~fanout:8 ~entries:600 ~nlogs:3 ()
let test_agrees_n16 () = locate_agrees_with_scan ~fanout:16 ~entries:800 ~nlogs:6 ()
let test_agrees_n32 () = locate_agrees_with_scan ~fanout:32 ~entries:800 ~nlogs:2 ()

let test_agrees_with_unflushed_tail () =
  let f = fixture ~fanout:4 () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  for i = 0 to 99 do
    ignore (append f ~log:a (Printf.sprintf "a%d" i))
  done;
  (* b only exists in the open tail. *)
  ignore (append f ~log:b "tail-only");
  let st = Clio.Server.state f.srv in
  let v = active f in
  let tail = v.Clio.Vol.tail_index in
  Alcotest.(check (option int)) "tail found backward" (Some tail)
    (ok (Clio.Locate.prev_block st v ~log:b ~before:max_int));
  Alcotest.(check (option int)) "tail found forward" (Some tail)
    (ok (Clio.Locate.next_block st v ~log:b ~from:1))

let test_sparse_log_far_back () =
  (* One entry of /rare at the very beginning, then thousands of others:
     the search tree must find it without scanning everything. *)
  let f = fixture ~fanout:16 ~capacity:8192 () in
  let rare = create_log f "/rare" in
  let noise = create_log f "/noise" in
  ignore (append f ~log:rare "needle");
  for i = 0 to 4999 do
    ignore (append f ~log:noise (Printf.sprintf "hay %d" i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  let s0 = (Clio.Server.stats f.srv).Clio.Stats.locate_block_reads in
  let found = ok (Clio.Locate.prev_block st v ~log:rare ~before:(Clio.Vol.written_limit v)) in
  let reads = (Clio.Server.stats f.srv).Clio.Stats.locate_block_reads - s0 in
  let naive, examined = ok (Baseline.Naive_scan.prev_block st v ~log:rare ~before:(Clio.Vol.written_limit v)) in
  Alcotest.(check (option int)) "found the needle" naive found;
  Alcotest.(check bool) "far fewer block reads than the scan"
    true
    (reads * 5 < examined);
  check_payloads "reader finds it too" [ "needle" ] (all_payloads f.srv ~log:rare)

let test_examination_counts_follow_table1 () =
  (* Plant a /target entry, bury it under exactly d blocks of /noise, and
     compare entrymap examinations with the 2k-1 analysis. Allow slack of a
     couple: boundary effects at non-exact distances. *)
  let fanout = 4 in
  List.iter
    (fun k ->
      let d = int_of_float (float_of_int fanout ** float_of_int k) in
      let f = fixture ~fanout ~capacity:4096 ~block_size:256 () in
      let target = create_log f "/target" in
      let noise = create_log f "/noise" in
      ignore (append f ~log:target "x");
      (* Each noise entry below fills most of a block, so entries ~ blocks. *)
      let filler = String.make 190 'n' in
      for _ = 1 to d do
        ignore (append f ~log:noise filler)
      done;
      ignore (ok (Clio.Server.force f.srv));
      let st = Clio.Server.state f.srv in
      let v = active f in
      let s0 = (Clio.Server.stats f.srv).Clio.Stats.entrymap_records_examined in
      ignore (ok (Clio.Locate.prev_block st v ~log:target ~before:(Clio.Vol.written_limit v)));
      let examined = (Clio.Server.stats f.srv).Clio.Stats.entrymap_records_examined - s0 in
      let predicted = Clio.Analysis.locate_examinations ~fanout ~distance:d in
      Alcotest.(check bool)
        (Printf.sprintf "d=%d: %d examinations ~ predicted %d" d examined predicted)
        true
        (abs (examined - predicted) <= 2))
    [ 1; 2; 3; 4 ]

let test_root_log_locate () =
  let f = fixture ~fanout:4 () in
  let a = create_log f "/a" in
  for i = 0 to 49 do
    ignore (append f ~log:a (string_of_int i))
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  (* Root matches any written block. *)
  Alcotest.(check (option int)) "next from 1" (Some 1)
    (ok (Clio.Locate.next_block st v ~log:Clio.Ids.root ~from:1));
  let last = ok (Clio.Locate.prev_block st v ~log:Clio.Ids.root ~before:max_int) in
  Alcotest.(check bool) "prev finds something" true (last <> None)

let test_block_contains () =
  let f = fixture ~fanout:4 () in
  let a = create_log f "/a" in
  let b = create_log f "/b" in
  ignore (append f ~log:a "data a");
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  Alcotest.(check bool) "contains a" true (Clio.Locate.block_contains st v ~log:a 1);
  Alcotest.(check bool) "not b" false (Clio.Locate.block_contains st v ~log:b 1);
  Alcotest.(check bool) "unwritten false" false (Clio.Locate.block_contains st v ~log:a 2000)

let test_read_map_at_boundary () =
  let f = fixture ~fanout:4 () in
  let a = create_log f "/a" in
  let filler = String.make 190 'x' in
  for _ = 1 to 10 do
    ignore (append f ~log:a filler)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  (* A level-1 map must exist at block 8 covering [4,8). *)
  match ok (Clio.Locate.read_map st v ~level:1 ~boundary:8) with
  | Some e ->
    Alcotest.(check int) "level" 1 e.Clio.Entrymap.level;
    Alcotest.(check int) "base" 4 e.Clio.Entrymap.base;
    Alcotest.(check bool) "mentions /a" true (List.mem_assoc a e.Clio.Entrymap.maps)
  | None -> Alcotest.fail "expected a level-1 entrymap entry at block 8"

(* ------------------------- read-path memoization ------------------------- *)

(* Drop only the block cache, keeping the locate memo: this is the state the
   memo exists for — the facts survive even when the buffers do not. *)
let drop_block_caches_only f =
  let st = Clio.Server.state f.srv in
  Array.iter (fun v -> Blockcache.Cache.drop v.Clio.Vol.cache) st.Clio.State.vols

let dev_reads f =
  List.fold_left
    (fun acc io -> acc + io.Worm.Block_io.stats.Worm.Dev_stats.reads)
    0 (fixture_devices f)

let test_memo_repeat_locate_zero_device_reads () =
  (* A repeated locate over settled storage must be answered entirely from
     the skip index: zero device reads, even with the block cache emptied. *)
  let f = fixture ~fanout:4 () in
  let target = create_log f "/target" in
  let noise = create_log f "/noise" in
  ignore (append f ~log:target "x");
  let filler = String.make 190 'n' in
  for _ = 1 to 200 do
    ignore (append f ~log:noise filler)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  let before = Clio.Vol.written_limit v in
  let p1 = ok (Clio.Locate.prev_block st v ~log:target ~before) in
  let n1 = ok (Clio.Locate.next_block st v ~log:target ~from:1) in
  Alcotest.(check bool) "target found" true (p1 <> None && n1 <> None);
  drop_block_caches_only f;
  let r0 = dev_reads f in
  let h0 = (Clio.Server.stats f.srv).Clio.Stats.locate_memo_hits in
  Alcotest.(check (option int)) "prev repeats" p1
    (ok (Clio.Locate.prev_block st v ~log:target ~before));
  Alcotest.(check (option int)) "next repeats" n1
    (ok (Clio.Locate.next_block st v ~log:target ~from:1));
  Alcotest.(check int) "zero device reads" 0 (dev_reads f - r0);
  Alcotest.(check int) "two skip-index hits" 2
    ((Clio.Server.stats f.srv).Clio.Stats.locate_memo_hits - h0)

let test_entrymap_memo_covers_decodes () =
  (* Every entrymap read goes through the memo: re-decoding a (level,
     boundary) entry after the block cache is emptied touches no device
     blocks. *)
  let f = fixture ~fanout:4 () in
  let a = create_log f "/a" in
  let filler = String.make 190 'x' in
  for _ = 1 to 10 do
    ignore (append f ~log:a filler)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  let e1 = ok (Clio.Locate.read_map st v ~level:1 ~boundary:8) in
  Alcotest.(check bool) "entry present" true (e1 <> None);
  drop_block_caches_only f;
  let r0 = dev_reads f in
  let h0 = (Clio.Server.stats f.srv).Clio.Stats.entrymap_memo_hits in
  let e2 = ok (Clio.Locate.read_map st v ~level:1 ~boundary:8) in
  Alcotest.(check bool) "same entry" true (e1 = e2);
  Alcotest.(check int) "zero device reads" 0 (dev_reads f - r0);
  Alcotest.(check int) "served by the memo" 1
    ((Clio.Server.stats f.srv).Clio.Stats.entrymap_memo_hits - h0)

let test_memo_invalidation_aware () =
  (* Invalidating a block bumps the volume generation: a memoized answer
     pointing at the burned block must not survive. *)
  let f = fixture ~fanout:4 () in
  let target = create_log f "/target" in
  let noise = create_log f "/noise" in
  let filler = String.make 190 'n' in
  ignore (append f ~log:target "one");
  for _ = 1 to 30 do
    ignore (append f ~log:noise filler)
  done;
  ignore (append f ~log:target "two");
  for _ = 1 to 30 do
    ignore (append f ~log:noise filler)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  let b2 =
    match ok (Clio.Locate.prev_block st v ~log:target ~before:max_int) with
    | Some b -> b
    | None -> Alcotest.fail "target not found"
  in
  (* Warm the memo, then burn the found block. *)
  ignore (ok (Clio.Locate.prev_block st v ~log:target ~before:max_int));
  Result.get_ok (v.Clio.Vol.io.Worm.Block_io.invalidate b2);
  let expect, _ = ok (Baseline.Naive_scan.prev_block st v ~log:target ~before:max_int) in
  let got = ok (Clio.Locate.prev_block st v ~log:target ~before:max_int) in
  Alcotest.(check bool) "stale answer dropped" true (got <> Some b2);
  Alcotest.(check (option int)) "agrees with scan after invalidation" expect got

let test_memo_disabled_by_config () =
  let f =
    make_fixture
      ~config:{ Clio.Config.default with Clio.Config.fanout = 4; locate_memo = false }
      ~block_size:256 ~capacity:4096 ()
  in
  let target = create_log f "/target" in
  let noise = create_log f "/noise" in
  ignore (append f ~log:target "x");
  let filler = String.make 190 'n' in
  for _ = 1 to 60 do
    ignore (append f ~log:noise filler)
  done;
  ignore (ok (Clio.Server.force f.srv));
  let st = Clio.Server.state f.srv in
  let v = active f in
  ignore (ok (Clio.Locate.prev_block st v ~log:target ~before:max_int));
  drop_block_caches_only f;
  let r0 = dev_reads f in
  ignore (ok (Clio.Locate.prev_block st v ~log:target ~before:max_int));
  Alcotest.(check bool) "no memo: device reads recur" true (dev_reads f - r0 > 0);
  Alcotest.(check int) "no memo hits counted" 0
    (Clio.Server.stats f.srv).Clio.Stats.locate_memo_hits

let () =
  run "locate"
    [
      ( "equivalence",
        [
          Alcotest.test_case "N=4" `Quick test_agrees_n4;
          Alcotest.test_case "N=8" `Quick test_agrees_n8;
          Alcotest.test_case "N=16" `Quick test_agrees_n16;
          Alcotest.test_case "N=32" `Quick test_agrees_n32;
          Alcotest.test_case "unflushed tail" `Quick test_agrees_with_unflushed_tail;
          Alcotest.test_case "root log" `Quick test_root_log_locate;
        ] );
      ( "efficiency",
        [
          Alcotest.test_case "sparse log far back" `Quick test_sparse_log_far_back;
          Alcotest.test_case "Table-1 examination counts" `Quick test_examination_counts_follow_table1;
        ] );
      ( "internals",
        [
          Alcotest.test_case "block_contains" `Quick test_block_contains;
          Alcotest.test_case "read_map at boundary" `Quick test_read_map_at_boundary;
        ] );
      ( "memoization",
        [
          Alcotest.test_case "repeat locate: zero device reads" `Quick
            test_memo_repeat_locate_zero_device_reads;
          Alcotest.test_case "entrymap decodes memoized" `Quick test_entrymap_memo_covers_decodes;
          Alcotest.test_case "invalidation aware" `Quick test_memo_invalidation_aware;
          Alcotest.test_case "disabled by config" `Quick test_memo_disabled_by_config;
        ] );
    ]
