(* Entrymap bitmaps. *)

let test_set_get () =
  let b = Clio.Bitmap.create 16 in
  Alcotest.(check bool) "initially empty" true (Clio.Bitmap.is_empty b);
  Clio.Bitmap.set b 0;
  Clio.Bitmap.set b 7;
  Clio.Bitmap.set b 15;
  Alcotest.(check bool) "bit 0" true (Clio.Bitmap.get b 0);
  Alcotest.(check bool) "bit 7" true (Clio.Bitmap.get b 7);
  Alcotest.(check bool) "bit 15" true (Clio.Bitmap.get b 15);
  Alcotest.(check bool) "bit 8" false (Clio.Bitmap.get b 8);
  Alcotest.(check bool) "no longer empty" false (Clio.Bitmap.is_empty b)

let test_out_of_range_get_false () =
  let b = Clio.Bitmap.create 8 in
  Alcotest.(check bool) "negative" false (Clio.Bitmap.get b (-1));
  Alcotest.(check bool) "past end" false (Clio.Bitmap.get b 8)

let test_non_multiple_of_eight () =
  let b = Clio.Bitmap.create 5 in
  Alcotest.(check int) "one byte" 1 (Clio.Bitmap.byte_length b);
  Clio.Bitmap.set b 4;
  Alcotest.(check bool) "bit 4" true (Clio.Bitmap.get b 4)

let test_full () =
  let b = Clio.Bitmap.full 12 in
  for i = 0 to 11 do
    Alcotest.(check bool) "all set" true (Clio.Bitmap.get b i)
  done

let test_union () =
  let a = Clio.Bitmap.create 8 and b = Clio.Bitmap.create 8 in
  Clio.Bitmap.set a 1;
  Clio.Bitmap.set b 6;
  Clio.Bitmap.union a b;
  Alcotest.(check bool) "kept own" true (Clio.Bitmap.get a 1);
  Alcotest.(check bool) "gained other" true (Clio.Bitmap.get a 6);
  Alcotest.(check bool) "src untouched" false (Clio.Bitmap.get b 1)

let test_copy_is_independent () =
  let a = Clio.Bitmap.create 8 in
  let b = Clio.Bitmap.copy a in
  Clio.Bitmap.set a 3;
  Alcotest.(check bool) "copy unaffected" false (Clio.Bitmap.get b 3)

let test_highest_set_below () =
  let b = Clio.Bitmap.create 16 in
  Clio.Bitmap.set b 3;
  Clio.Bitmap.set b 9;
  Alcotest.(check (option int)) "below 16" (Some 9) (Clio.Bitmap.highest_set_below b 16);
  Alcotest.(check (option int)) "below 9" (Some 3) (Clio.Bitmap.highest_set_below b 9);
  Alcotest.(check (option int)) "below 3" None (Clio.Bitmap.highest_set_below b 3);
  Alcotest.(check (option int)) "over-large j clamps" (Some 9) (Clio.Bitmap.highest_set_below b 100)

let test_lowest_set_from () =
  let b = Clio.Bitmap.create 16 in
  Clio.Bitmap.set b 3;
  Clio.Bitmap.set b 9;
  Alcotest.(check (option int)) "from 0" (Some 3) (Clio.Bitmap.lowest_set_from b 0);
  Alcotest.(check (option int)) "from 4" (Some 9) (Clio.Bitmap.lowest_set_from b 4);
  Alcotest.(check (option int)) "from 10" None (Clio.Bitmap.lowest_set_from b 10);
  Alcotest.(check (option int)) "negative j clamps" (Some 3) (Clio.Bitmap.lowest_set_from b (-5))

let test_string_roundtrip () =
  let b = Clio.Bitmap.create 19 in
  Clio.Bitmap.set b 0;
  Clio.Bitmap.set b 18;
  let s = Clio.Bitmap.to_string b in
  let b2 = Testkit.ok (Clio.Bitmap.of_string ~width:19 s) in
  for i = 0 to 18 do
    Alcotest.(check bool) (Printf.sprintf "bit %d" i) (Clio.Bitmap.get b i) (Clio.Bitmap.get b2 i)
  done

let test_of_string_length_check () =
  match Clio.Bitmap.of_string ~width:16 "x" with
  | Error (Clio.Errors.Bad_record _) -> ()
  | _ -> Alcotest.fail "expected length mismatch"

let test_pp () =
  let b = Clio.Bitmap.create 4 in
  Clio.Bitmap.set b 2;
  Alcotest.(check string) "rendering" "0010" (Format.asprintf "%a" Clio.Bitmap.pp b)

let prop_roundtrip =
  Testkit.qtest "random bitmaps roundtrip"
    QCheck2.Gen.(pair (int_range 1 128) (list_size (int_range 0 64) (int_range 0 1000)))
    (fun (width, sets) ->
      let b = Clio.Bitmap.create width in
      List.iter (fun i -> if i < width then Clio.Bitmap.set b i) sets;
      let b2 = Testkit.ok (Clio.Bitmap.of_string ~width (Clio.Bitmap.to_string b)) in
      List.for_all (fun i -> Clio.Bitmap.get b i = Clio.Bitmap.get b2 i)
        (List.init width Fun.id))

let prop_search_consistent =
  Testkit.qtest "highest/lowest consistent with get"
    QCheck2.Gen.(pair (int_range 1 64) (list_size (int_range 0 32) (int_range 0 63)))
    (fun (width, sets) ->
      let b = Clio.Bitmap.create width in
      List.iter (fun i -> if i < width then Clio.Bitmap.set b i) sets;
      let model_high j =
        let rec go i = if i < 0 then None else if Clio.Bitmap.get b i then Some i else go (i - 1) in
        go (min (j - 1) (width - 1))
      in
      let model_low j =
        let rec go i = if i >= width then None else if Clio.Bitmap.get b i then Some i else go (i + 1) in
        go (max 0 j)
      in
      List.for_all
        (fun j ->
          Clio.Bitmap.highest_set_below b j = model_high j
          && Clio.Bitmap.lowest_set_from b j = model_low j)
        (List.init (width + 2) Fun.id))

let () =
  Testkit.run "bitmap"
    [
      ( "bitmap",
        [
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "out of range" `Quick test_out_of_range_get_false;
          Alcotest.test_case "odd width" `Quick test_non_multiple_of_eight;
          Alcotest.test_case "full" `Quick test_full;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "copy independent" `Quick test_copy_is_independent;
          Alcotest.test_case "highest_set_below" `Quick test_highest_set_below;
          Alcotest.test_case "lowest_set_from" `Quick test_lowest_set_from;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "of_string length" `Quick test_of_string_length_check;
          Alcotest.test_case "pp" `Quick test_pp;
          prop_roundtrip;
          prop_search_consistent;
        ] );
    ]
