(* clio — command-line access to a Clio log-file store kept in a directory
   of file-backed write-once volumes (vol-000.img, vol-001.img, ...).

     clio init   --dir /tmp/store
     clio mklog  --dir /tmp/store /mail/smith
     clio append --dir /tmp/store /mail/smith "hello"
     echo hi | clio append --dir /tmp/store /mail/smith -
     clio cat    --dir /tmp/store /mail/smith
     clio tail   --dir /tmp/store /mail/smith -n 5
     clio ls     --dir /tmp/store /
     clio log-stats --dir /tmp/store *)

open Cmdliner

let vol_path dir i = Filename.concat dir (Printf.sprintf "vol-%03d.img" i)

let existing_volumes dir =
  let rec go i acc =
    let p = vol_path dir i in
    if Sys.file_exists p then go (i + 1) (p :: acc) else List.rev acc
  in
  go 0 []

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("clio: " ^ s); exit 1) fmt
let ok_or_die = function Ok v -> v | Error e -> die "%s" (Clio.Errors.to_string e)

let alloc ~dir ~block_size ~capacity ~vol_index =
  match
    Worm.File_device.create ~path:(vol_path dir vol_index) ~block_size ~capacity ()
  with
  | Ok d -> Ok (Worm.File_device.io d)
  | Error e -> Error (Clio.Errors.Device e)

let open_store ~dir ~block_size ~capacity =
  let vols = existing_volumes dir in
  if vols = [] then die "no volumes in %s (run `clio init --dir %s` first)" dir dir;
  let devices =
    List.map
      (fun path ->
        match Worm.File_device.open_existing ~path with
        | Ok d -> Worm.File_device.io d
        | Error e -> die "cannot open %s: %s" path (Worm.Block_io.error_to_string e))
      vols
  in
  let config = { Clio.Config.default with block_size; cache_blocks = 4096 } in
  ok_or_die
    (Clio.Server.recover ~config ~clock:(Sim.Clock.wall ())
       ~alloc_volume:(fun ~vol_index -> alloc ~dir ~block_size ~capacity ~vol_index)
       ~devices ())

(* ------------------------------- args ------------------------------- *)

let dir_arg =
  let doc = "Directory holding the volume files." in
  Arg.(required & opt (some string) None & info [ "d"; "dir" ] ~docv:"DIR" ~doc)

let block_size_arg =
  Arg.(value & opt int 1024 & info [ "block-size" ] ~docv:"BYTES" ~doc:"Device block size.")

let capacity_arg =
  Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"BLOCKS" ~doc:"Blocks per volume.")

let path_arg p =
  Arg.(required & pos p (some string) None & info [] ~docv:"PATH" ~doc:"Log file path.")

(* ------------------------------ commands ----------------------------- *)

let init dir block_size capacity =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  if existing_volumes dir <> [] then die "%s already contains volumes" dir;
  let config = { Clio.Config.default with block_size } in
  let _srv =
    ok_or_die
      (Clio.Server.create ~config ~clock:(Sim.Clock.wall ())
         ~alloc_volume:(fun ~vol_index -> alloc ~dir ~block_size ~capacity ~vol_index)
         ())
  in
  Printf.printf "initialized %s (block size %d, %d blocks/volume)\n" dir block_size capacity

let mklog dir block_size capacity path =
  let srv = open_store ~dir ~block_size ~capacity in
  let id = ok_or_die (Clio.Server.ensure_log srv path) in
  Printf.printf "%s = log file #%d\n" path id

let append dir block_size capacity path data force =
  let srv = open_store ~dir ~block_size ~capacity in
  let data =
    if data = "-" then In_channel.input_all stdin else data
  in
  let ts = ok_or_die (Clio.Server.append_path srv ~path ~force data) in
  (* Unforced appends live in the volatile tail; a CLI process exits, so
     always make the write durable before returning. *)
  ok_or_die (Clio.Server.force srv);
  (match ts with
  | Some ts -> Printf.printf "appended %d bytes at t=%Ld\n" (String.length data) ts
  | None -> Printf.printf "appended %d bytes\n" (String.length data))

let cat dir block_size capacity path timestamps since until =
  let srv = open_store ~dir ~block_size ~capacity in
  let log = ok_or_die (Clio.Server.resolve srv path) in
  let cursor =
    match since with
    | Some ts -> ok_or_die (Clio.Server.cursor_at_time srv ~log ts)
    | None -> Clio.Server.cursor_start srv ~log
  in
  let rec go () =
    match ok_or_die (Clio.Server.next cursor) with
    | None -> ()
    | Some e ->
      let ts = e.Clio.Reader.timestamp in
      let before_since = match (since, ts) with Some s, Some t -> Int64.compare t s < 0 | _ -> false in
      let past_until = match (until, ts) with Some u, Some t -> Int64.compare t u > 0 | _ -> false in
      if past_until then ()
      else begin
        if not before_since then begin
          (match (timestamps, ts) with
          | true, Some t -> Printf.printf "[%Ld] " t
          | _ -> ());
          print_endline e.Clio.Reader.payload
        end;
        go ()
      end
  in
  go ()

let fsck dir block_size capacity deep =
  let srv = open_store ~dir ~block_size ~capacity in
  let report = ok_or_die (Clio.Server.fsck ~verify_entrymap:deep srv) in
  Format.printf "%a@." Clio.Fsck.pp_report report;
  List.iter (fun (v, b) -> Printf.printf "  corrupt: volume %d block %d\n" v b)
    report.Clio.Fsck.corrupt_blocks;
  List.iter (fun e -> Printf.printf "  ERROR: %s\n" e) report.Clio.Fsck.errors;
  if Clio.Fsck.is_healthy report then print_endline "store is healthy"
  else begin
    print_endline "store has problems";
    exit 1
  end

let tail_cmd dir block_size capacity path n =
  let srv = open_store ~dir ~block_size ~capacity in
  let log = ok_or_die (Clio.Server.resolve srv path) in
  let c = ok_or_die (Clio.Server.cursor_end srv ~log) in
  let rec collect k acc =
    if k = 0 then acc
    else
      match ok_or_die (Clio.Server.prev c) with
      | Some e -> collect (k - 1) (e.Clio.Reader.payload :: acc)
      | None -> acc
  in
  List.iter print_endline (collect n [])

let ls dir block_size capacity path =
  let srv = open_store ~dir ~block_size ~capacity in
  (* The same directory view the RPC protocol serves: id, perms, number of
     direct sublogs, full path. *)
  let logs = ok_or_die (Uio.Message.dir_entries srv path) in
  List.iter
    (fun (d : Uio.Message.dir_entry) ->
      Printf.printf "%4d  %04o  %4d  %s\n" d.Uio.Message.id d.Uio.Message.perms
        d.Uio.Message.entry_count d.Uio.Message.path)
    logs

let stats dir block_size capacity =
  let srv = open_store ~dir ~block_size ~capacity in
  Printf.printf "volumes: %d, device blocks used: %d\n" (Clio.Server.nvols srv)
    (Clio.Server.volume_blocks_used srv);
  Format.printf "%a@." Clio.Stats.pp (Clio.Server.stats srv)

let metrics_cmd_impl dir block_size capacity json =
  let srv = open_store ~dir ~block_size ~capacity in
  (* The recovery that [open_store] just performed is itself measured — the
     recover_us histogram below always has one sample. *)
  if json then print_endline (Clio.Server.metrics_json srv)
  else Format.printf "%a@." Clio.Server.dump_metrics srv

let trace_cmd_impl dir block_size capacity path json =
  let srv = open_store ~dir ~block_size ~capacity in
  Clio.Server.set_tracing srv true;
  let log = ok_or_die (Clio.Server.resolve srv path) in
  (* Drive a representative read workload under the tracer: one full scan
     (locate + read spans) and, if any entry is stamped, one time search. *)
  let c = Clio.Server.cursor_start srv ~log in
  let last_ts = ref None in
  let rec drain () =
    match ok_or_die (Clio.Server.next c) with
    | Some e ->
      (match e.Clio.Reader.timestamp with Some t -> last_ts := Some t | None -> ());
      drain ()
    | None -> ()
  in
  drain ();
  (match !last_ts with
  | Some t -> ignore (ok_or_die (Clio.Server.entry_at_or_after srv ~log t))
  | None -> ());
  if json then print_string (Clio.Server.trace_jsonl srv)
  else Format.printf "%a@?" Clio.Server.dump_trace srv

(* The breaker is volatile server state: a CLI process recovers a fresh
   (closed) breaker, so inspect/reset/trip here act on this invocation's
   server instance — the operator drill for the long-running daemon case,
   and the way tests exercise the admin path end to end. *)
let admin_breaker dir block_size capacity trip reset json =
  let srv = open_store ~dir ~block_size ~capacity in
  if trip then Clio.Server.trip_breaker srv;
  if reset then Clio.Server.reset_breaker srv;
  let b = Clio.Server.breaker srv in
  if json then print_endline (Obs.Json.to_string_pretty (Clio.Breaker.to_json b))
  else Format.printf "%a@." Clio.Breaker.pp b

(* Like the breaker drill: the replication role is volatile state, so these
   act on this invocation's server instance — [status] renders what a
   long-running daemon would report, [promote] exercises the failover path
   (epoch+1, Primary role) against a store recovered from disk. *)
let repl_json srv =
  Obs.Json.Obj
    [
      ("role", Obs.Json.Str (Clio.State.role_name (Clio.Server.role srv)));
      ("epoch", Obs.Json.Int (Clio.Server.epoch srv));
      ("lag_blocks", Obs.Json.Int (Clio.Server.repl_lag_blocks srv));
      ( "blocks_shipped",
        Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_blocks_shipped );
      ( "blocks_applied",
        Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_blocks_applied );
      ("tail_ships", Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_tail_ships);
      ( "tail_applies",
        Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_tail_applies );
      ( "catchup_rounds",
        Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_catchup_rounds );
      ( "epoch_rejects",
        Obs.Json.Int (Clio.Server.stats srv).Clio.Stats.repl_epoch_rejects );
    ]

let repl_print srv =
  let role = Clio.Server.role srv in
  (match role with
  | Clio.State.Primary _ -> Format.printf "role: primary (epoch %d)@." (Clio.Server.epoch srv)
  | Clio.State.Replica { primary_hint; _ } ->
    Format.printf "role: replica (epoch %d, primary: %s)@." (Clio.Server.epoch srv) primary_hint
  | Clio.State.Fenced { hint; _ } ->
    Format.printf "role: fenced (epoch %d, superseded by: %s)@." (Clio.Server.epoch srv) hint);
  Format.printf "lag_blocks: %d@." (Clio.Server.repl_lag_blocks srv);
  let s = Clio.Server.stats srv in
  Format.printf "blocks_shipped: %d  blocks_applied: %d@." s.Clio.Stats.repl_blocks_shipped
    s.Clio.Stats.repl_blocks_applied;
  Format.printf "tail_ships: %d  tail_applies: %d@." s.Clio.Stats.repl_tail_ships
    s.Clio.Stats.repl_tail_applies;
  Format.printf "catchup_rounds: %d  epoch_rejects: %d@." s.Clio.Stats.repl_catchup_rounds
    s.Clio.Stats.repl_epoch_rejects

let repl_status dir block_size capacity json =
  let srv = open_store ~dir ~block_size ~capacity in
  if json then print_endline (Obs.Json.to_string_pretty (repl_json srv))
  else repl_print srv

let repl_promote dir block_size capacity json =
  let srv = open_store ~dir ~block_size ~capacity in
  let next = Clio.Server.epoch srv + 1 in
  Clio.Server.set_role srv (Clio.State.Primary { epoch = next });
  if json then print_endline (Obs.Json.to_string_pretty (repl_json srv))
  else Format.printf "promoted: now primary at epoch %d@." next

(* ------------------------------- wiring ------------------------------ *)

let with_common f = Term.(const f $ dir_arg $ block_size_arg $ capacity_arg)

let init_cmd =
  Cmd.v (Cmd.info "init" ~doc:"Initialize a new volume sequence.") (with_common init)

let mklog_cmd =
  Cmd.v (Cmd.info "mklog" ~doc:"Create a log file (and missing parents).")
    Term.(with_common mklog $ path_arg 0)

let append_cmd =
  let data =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DATA" ~doc:"Entry data, or - for stdin.")
  in
  let force =
    Arg.(value & flag & info [ "f"; "force" ] ~doc:"Synchronous (forced) write.")
  in
  Cmd.v (Cmd.info "append" ~doc:"Append one entry to a log file.")
    Term.(with_common append $ path_arg 0 $ data $ force)

let cat_cmd =
  let ts = Arg.(value & flag & info [ "t"; "timestamps" ] ~doc:"Prefix entries with timestamps.") in
  let since =
    Arg.(value & opt (some int64) None & info [ "since" ] ~docv:"TS" ~doc:"Start at timestamp (us).")
  in
  let until =
    Arg.(value & opt (some int64) None & info [ "until" ] ~docv:"TS" ~doc:"Stop after timestamp (us).")
  in
  Cmd.v (Cmd.info "cat" ~doc:"Print entries of a log file, oldest first.")
    Term.(with_common cat $ path_arg 0 $ ts $ since $ until)

let fsck_cmd =
  let deep =
    Arg.(value & flag & info [ "deep" ] ~doc:"Also cross-check the entrymap tree (slow).")
  in
  Cmd.v (Cmd.info "fsck" ~doc:"Verify the store's structural invariants.")
    Term.(with_common fsck $ deep)

let tail_cmd_ =
  let n = Arg.(value & opt int 10 & info [ "n" ] ~docv:"K" ~doc:"Number of entries.") in
  Cmd.v (Cmd.info "tail" ~doc:"Print the newest K entries of a log file.")
    Term.(with_common tail_cmd $ path_arg 0 $ n)

let ls_cmd =
  let path = Arg.(value & pos 0 string "/" & info [] ~docv:"PATH" ~doc:"Directory log file.") in
  Cmd.v (Cmd.info "ls" ~doc:"List sublogs of a log file.") Term.(with_common ls $ path)

let stats_cmd =
  Cmd.v (Cmd.info "log-stats" ~doc:"Show store statistics.") (with_common stats)

let json_flag = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

let metrics_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Export server metrics: latency histograms (append/locate/read/recover \
          percentiles), cache hit/miss counts and device op counts.")
    Term.(with_common metrics_cmd_impl $ json_flag)

let admin_cmd =
  let trip =
    Arg.(value & flag & info [ "trip" ] ~doc:"Force the breaker open (operator drill).")
  in
  let reset =
    Arg.(value & flag & info [ "reset" ] ~doc:"Close the breaker and zero its error budget.")
  in
  let breaker_sub =
    Cmd.v
      (Cmd.info "breaker"
         ~doc:
           "Inspect the write-path circuit breaker (state, error budget, trip \
            and rejection totals); --trip / --reset change it first.")
      Term.(with_common admin_breaker $ trip $ reset $ json_flag)
  in
  Cmd.group (Cmd.info "admin" ~doc:"Operator controls (degraded mode).") [ breaker_sub ]

let repl_cmd =
  let status_sub =
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Show the replication role (primary/replica/fenced), epoch, lag \
            gauge and ship/apply counters.")
      Term.(with_common repl_status $ json_flag)
  in
  let promote_sub =
    Cmd.v
      (Cmd.info "promote"
         ~doc:
           "Fail over to this store: recover it (replaying the NVRAM tail) \
            and assert the primary role at the next epoch.")
      Term.(with_common repl_promote $ json_flag)
  in
  Cmd.group (Cmd.info "repl" ~doc:"Replication controls (role, promotion).")
    [ status_sub; promote_sub ]

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a traced read of a log file and print the operation spans \
          (indented by nesting; --json for JSONL).")
    Term.(with_common trace_cmd_impl $ path_arg 0 $ json_flag)

let () =
  let info = Cmd.info "clio" ~version:"1.0.0" ~doc:"Log files on write-once storage (SOSP 1987)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            init_cmd;
            mklog_cmd;
            append_cmd;
            cat_cmd;
            tail_cmd_;
            ls_cmd;
            stats_cmd;
            metrics_cmd;
            trace_cmd;
            fsck_cmd;
            admin_cmd;
            repl_cmd;
          ]))
